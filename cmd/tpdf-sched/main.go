// Command tpdf-sched builds the canonical period of a TPDF graph (§III-D)
// and list-schedules it onto a many-core platform with the control-priority
// rule, printing an ASCII Gantt chart, the makespan and PE utilization.
//
// Usage:
//
//	tpdf-sched [-builtin fig2] [-param p=4] [-platform mppa|epiphany|smp]
//	           [-pes N] [-no-ctl-priority] [file.tpdf]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/symb"
	"repro/internal/trace"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }
func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return err
	}
	p[name] = v
	return nil
}

func run() error {
	params := paramFlags{}
	builtin := flag.String("builtin", "", "schedule a built-in graph (fig2, ofdm, edge, fmradio)")
	platName := flag.String("platform", "smp", "platform: mppa, epiphany or smp")
	pes := flag.Int("pes", 8, "processing elements to use")
	noCtl := flag.Bool("no-ctl-priority", false, "disable the control-actor priority rule")
	genOut := flag.String("gen", "", "emit quasi-static Go code for the schedule to this file")
	flag.Var(params, "param", "parameter assignment name=value (repeatable)")
	flag.Parse()

	var g *core.Graph
	switch {
	case *builtin != "":
		switch *builtin {
		case "fig2":
			g = apps.Fig2()
		case "ofdm":
			g = apps.OFDMTPDF(apps.DefaultOFDM())
		case "edge":
			g = apps.EdgeDetection(500, nil).Graph
		case "fmradio":
			g = apps.FMRadioTPDF()
		default:
			return fmt.Errorf("unknown builtin %q", *builtin)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		g, err = graphio.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: tpdf-sched [flags] (-builtin name | file.tpdf)")
	}

	var plat *platform.Platform
	switch *platName {
	case "mppa":
		plat = platform.MPPA256()
	case "epiphany":
		plat = platform.Epiphany64()
	case "smp":
		plat = platform.Simple(*pes)
	default:
		return fmt.Errorf("unknown platform %q", *platName)
	}

	cg, low, err := g.Instantiate(symb.Env(params))
	if err != nil {
		return err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == core.KindControl {
			isCtl[low.ActorOf[id]] = true
		}
	}
	opts := sched.Options{
		Platform:        plat,
		PEs:             *pes,
		ControlPriority: !*noCtl,
		IsControl:       isCtl,
	}
	res, err := sched.ListSchedule(cg, prec, opts)
	if err != nil {
		return err
	}
	if err := sched.Verify(cg, prec, opts, res); err != nil {
		return fmt.Errorf("schedule failed verification: %v", err)
	}

	fmt.Printf("graph %s on %s (%d PEs used)\n", g.Name, plat, *pes)
	fmt.Printf("canonical period: %d firings, repetition vector %v\n", prec.N(), sol.Q)
	var items []trace.GanttItem
	for u := range res.Items {
		f := prec.Firings[u]
		items = append(items, trace.GanttItem{
			Lane:  res.Items[u].PE,
			Label: fmt.Sprintf("%s%d", cg.Actors[f.Actor].Name, f.K+1),
			Start: res.Items[u].Start,
			End:   res.Items[u].End,
		})
	}
	fmt.Print(trace.Gantt(items, 100))
	fmt.Printf("makespan: %d   utilization: %.2f\n", res.Makespan, res.Utilization())
	cp, _, err := prec.CriticalPath(cg)
	if err == nil {
		fmt.Printf("critical path: %d (lower bound on any schedule)\n", cp)
	}
	if mcr, err := cg.MaxCycleRatio(sol, 1e-6); err == nil {
		fmt.Printf("steady-state period bound (MCR): %.2f\n", mcr)
	}
	if *genOut != "" {
		src, err := codegen.Generate(g, codegen.Options{Env: symb.Env(params)})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*genOut, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote quasi-static schedule code to %s\n", *genOut)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-sched:", err)
		os.Exit(1)
	}
}
