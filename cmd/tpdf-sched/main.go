// Command tpdf-sched builds the canonical period of a TPDF graph (§III-D)
// and list-schedules it onto a many-core platform with the control-priority
// rule, printing an ASCII Gantt chart, the makespan and PE utilization.
//
// Usage:
//
//	tpdf-sched [-builtin fig2] [-param p=4] [-platform mppa|epiphany|smp]
//	           [-pes N] [-no-ctl-priority] [file.tpdf]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tpdf"
)

func run() error {
	params := tpdf.Params{}
	builtin := flag.String("builtin", "", "schedule a built-in graph (see tpdf.BuiltinNames)")
	platName := flag.String("platform", "smp", "platform: mppa, epiphany or smp")
	pes := flag.Int("pes", 8, "processing elements to use")
	noCtl := flag.Bool("no-ctl-priority", false, "disable the control-actor priority rule")
	genOut := flag.String("gen", "", "emit quasi-static Go code for the schedule to this file")
	flag.Var(params, "param", "parameter assignment name=value (repeatable)")
	flag.Parse()

	var g *tpdf.Graph
	var err error
	switch {
	case *builtin != "":
		g, err = tpdf.Builtin(*builtin)
	case flag.NArg() == 1:
		g, err = tpdf.LoadFile(flag.Arg(0))
	default:
		return fmt.Errorf("usage: tpdf-sched [flags] (-builtin name | file.tpdf)")
	}
	if err != nil {
		return err
	}

	var plat *tpdf.Platform
	switch *platName {
	case "mppa":
		plat = tpdf.MPPA256()
	case "epiphany":
		plat = tpdf.Epiphany64()
	case "smp":
		plat = tpdf.SMP(*pes)
	default:
		return fmt.Errorf("unknown platform %q", *platName)
	}

	opts := []tpdf.Option{
		tpdf.WithParams(params),
		tpdf.WithPlatform(plat),
		tpdf.WithProcessors(*pes),
	}
	if *noCtl {
		opts = append(opts, tpdf.WithoutControlPriority())
	}
	res, err := tpdf.Schedule(g, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("graph %s on %s (%d PEs used)\n", g.Name, plat, *pes)
	fmt.Printf("canonical period: %d firings, repetition vector %v\n", res.Firings, res.RepetitionVector)
	fmt.Print(res.Gantt(100))
	fmt.Printf("makespan: %d   utilization: %.2f\n", res.Makespan, res.Utilization)
	if res.CriticalPath > 0 {
		fmt.Printf("critical path: %d (lower bound on any schedule)\n", res.CriticalPath)
	}
	if res.MCR > 0 {
		fmt.Printf("steady-state period bound (MCR): %.2f\n", res.MCR)
	}
	if *genOut != "" {
		src, err := tpdf.GenerateCode(g, tpdf.WithParams(params))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*genOut, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote quasi-static schedule code to %s\n", *genOut)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-sched:", err)
		os.Exit(1)
	}
}
