// Command tpdf-sim executes a TPDF graph in the token-accurate virtual-time
// simulator and reports firings, completion time and per-channel buffer
// high-water marks. Built-in graphs come with their paper mode decisions
// (OFDM branch selection, edge-detection deadline).
//
// Usage:
//
//	tpdf-sim [-builtin ofdm] [-param beta=10] [-iterations 2] [-pes 0]
//	         [-trace] [file.tpdf]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tpdf"
)

func run() error {
	params := tpdf.Params{}
	builtin := flag.String("builtin", "", "simulate a built-in graph (see tpdf.BuiltinNames)")
	iters := flag.Int64("iterations", 1, "iterations to run")
	pes := flag.Int("pes", 0, "processing element limit (0 = unlimited)")
	doTrace := flag.Bool("trace", false, "print the firing trace")
	flag.Var(params, "param", "parameter assignment name=value (repeatable)")
	flag.Parse()

	var g *tpdf.Graph
	var decide map[string]tpdf.DecideFunc
	switch {
	case *builtin != "":
		scen, err := tpdf.BuiltinScenario(*builtin, params)
		if err != nil {
			return err
		}
		g, decide = scen.Graph, scen.Decide
	case flag.NArg() == 1:
		var err error
		g, err = tpdf.LoadFile(flag.Arg(0))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: tpdf-sim [flags] (-builtin name | file.tpdf)")
	}

	opts := []tpdf.Option{
		tpdf.WithParams(params),
		tpdf.WithIterations(*iters),
		tpdf.WithProcessors(*pes),
		tpdf.WithDecisions(decide),
	}
	if *doTrace {
		opts = append(opts, tpdf.WithRecord())
	}
	res, err := tpdf.Simulate(g, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("graph %s: completed at t=%d, quiescent=%v\n", g.Name, res.Time, res.Quiescent)
	var rows [][]string
	for i, n := range g.Nodes {
		rows = append(rows, []string{n.Name, fmt.Sprint(res.Firings[i])})
	}
	fmt.Print(tpdf.Table([]string{"node", "firings"}, rows))

	rows = rows[:0]
	for ei, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		rows = append(rows, []string{
			e.Name,
			src.Name + "->" + dst.Name,
			fmt.Sprint(res.HighWater[ei]),
			fmt.Sprint(res.Final[ei]),
		})
	}
	fmt.Print(tpdf.Table([]string{"edge", "route", "max tokens", "final"}, rows))
	fmt.Printf("total buffer: %d tokens\n", res.TotalBuffer())

	if *doTrace {
		for _, ev := range res.Events {
			sel := ""
			if len(ev.Selected) > 0 {
				sel = " selected " + strings.Join(ev.Selected, ",")
			}
			fmt.Printf("  [%6d..%6d] %s#%d (%s)%s\n", ev.Start, ev.End, ev.Node, ev.Firing+1, ev.Mode, sel)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-sim:", err)
		os.Exit(1)
	}
}
