// Command tpdf-sim executes a TPDF graph in the token-accurate virtual-time
// simulator and reports firings, completion time and per-channel buffer
// high-water marks. Built-in graphs come with their paper mode decisions
// (OFDM branch selection, edge-detection deadline).
//
// Usage:
//
//	tpdf-sim [-builtin ofdm] [-param beta=10] [-iterations 2] [-pes 0]
//	         [-trace] [file.tpdf]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/sim"
	"repro/internal/symb"
	"repro/internal/trace"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }
func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return err
	}
	p[name] = v
	return nil
}

func run() error {
	params := paramFlags{}
	builtin := flag.String("builtin", "", "simulate a built-in graph (fig2, ofdm, ofdm-csdf, edge, fmradio)")
	iters := flag.Int64("iterations", 1, "iterations to run")
	pes := flag.Int("pes", 0, "processing element limit (0 = unlimited)")
	doTrace := flag.Bool("trace", false, "print the firing trace")
	flag.Var(params, "param", "parameter assignment name=value (repeatable)")
	flag.Parse()

	var g *core.Graph
	var decide map[string]sim.DecideFunc
	switch {
	case *builtin != "":
		switch *builtin {
		case "fig2":
			g = apps.Fig2()
		case "ofdm":
			p := apps.DefaultOFDM()
			if v, ok := params["beta"]; ok {
				p.Beta = v
			}
			if v, ok := params["M"]; ok {
				p.M = v
			}
			if v, ok := params["N"]; ok {
				p.N = v
			}
			if v, ok := params["L"]; ok {
				p.L = v
			}
			g = apps.OFDMTPDF(p)
			var err error
			decide, err = apps.OFDMDecide(g, p.M)
			if err != nil {
				return err
			}
		case "ofdm-csdf":
			g = apps.OFDMCSDF(apps.DefaultOFDM())
		case "edge":
			app := apps.EdgeDetection(500, nil)
			g = app.Graph
			decide = app.DeadlineDecide()
		case "fmradio":
			g = apps.FMRadioTPDF()
			var err error
			decide, err = apps.FMRadioSelectBand(g, 1)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown builtin %q", *builtin)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		g, err = graphio.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: tpdf-sim [flags] (-builtin name | file.tpdf)")
	}

	res, err := sim.Run(sim.Config{
		Graph:      g,
		Env:        symb.Env(params),
		Iterations: *iters,
		Processors: *pes,
		Decide:     decide,
		Record:     *doTrace,
	})
	if err != nil {
		return err
	}

	fmt.Printf("graph %s: completed at t=%d, quiescent=%v\n", g.Name, res.Time, res.Quiescent)
	var rows [][]string
	for i, n := range g.Nodes {
		rows = append(rows, []string{n.Name, fmt.Sprint(res.Firings[i])})
	}
	fmt.Print(trace.Table([]string{"node", "firings"}, rows))

	rows = rows[:0]
	for ei, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		rows = append(rows, []string{
			e.Name,
			src.Name + "->" + dst.Name,
			fmt.Sprint(res.HighWater[ei]),
			fmt.Sprint(res.Final[ei]),
		})
	}
	fmt.Print(trace.Table([]string{"edge", "route", "max tokens", "final"}, rows))
	fmt.Printf("total buffer: %d tokens\n", res.TotalBuffer())

	if *doTrace {
		for _, ev := range res.Events {
			sel := ""
			if len(ev.Selected) > 0 {
				sel = " selected " + strings.Join(ev.Selected, ",")
			}
			fmt.Printf("  [%6d..%6d] %s#%d (%s)%s\n", ev.Start, ev.End, ev.Node, ev.Firing+1, ev.Mode, sel)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-sim:", err)
		os.Exit(1)
	}
}
