// Command gen-graphs regenerates the shipped graphs/*.tpdf files from the
// tpdf.Builtin registry. Run it after changing an application fixture; the
// output is deterministic (sorted names), so regeneration diffs are stable.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/tpdf"
)

func run() error {
	dir := "graphs"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range tpdf.BuiltinNames() {
		g, err := tpdf.Builtin(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".tpdf")
		if err := os.WriteFile(path, []byte(tpdf.Format(g)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote " + path)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gen-graphs:", err)
		os.Exit(1)
	}
}
