// Command gen-graphs regenerates the shipped graphs/*.tpdf files from the
// built-in application fixtures. Run it after changing a fixture.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/graphio"
)

func main() {
	for name, text := range map[string]string{
		"fig2":         graphio.Format(apps.Fig2()),
		"fig4a":        graphio.Format(apps.Fig4a()),
		"fig4b":        graphio.Format(apps.Fig4b()),
		"ofdm":         graphio.Format(apps.OFDMTPDF(apps.DefaultOFDM())),
		"ofdm-csdf":    graphio.Format(apps.OFDMCSDF(apps.DefaultOFDM())),
		"edge":         graphio.Format(apps.EdgeDetection(500, nil).Graph),
		"fmradio":      graphio.Format(apps.FMRadioTPDF()),
		"fmradio-csdf": graphio.Format(apps.FMRadioCSDF()),
		"vc1":          graphio.Format(apps.VC1Decoder()),
		"avc-me":       graphio.Format(apps.MotionEstimation(500, 60, 15).Graph),
	} {
		if err := os.WriteFile("graphs/"+name+".tpdf", []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gen-graphs:", err)
			os.Exit(1)
		}
		fmt.Println("wrote graphs/" + name + ".tpdf")
	}
}
