// Command tpdf-analyze loads a TPDF graph from its textual description and
// runs the full §III analysis chain: rate consistency (symbolic repetition
// vector), rate safety per control actor, liveness by cycle clustering, and
// the Theorem 2 boundedness verdict.
//
// Usage:
//
//	tpdf-analyze [-dot out.dot] [-builtin name] [file.tpdf]
//
// With -builtin, one of the repository's application graphs is analyzed
// instead of a file (see tpdf.BuiltinNames: fig2, fig4a, fig4b, ofdm,
// ofdm-csdf, edge, fmradio, fmradio-csdf, vc1, avc-me).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tpdf"
)

func run() error {
	dotOut := flag.String("dot", "", "write a Graphviz rendering to this file")
	builtin := flag.String("builtin", "", "analyze a built-in application graph instead of a file")
	flag.Parse()

	var g *tpdf.Graph
	var err error
	switch {
	case *builtin != "":
		g, err = tpdf.Builtin(*builtin)
	case flag.NArg() == 1:
		g, err = tpdf.LoadFile(flag.Arg(0))
	default:
		return fmt.Errorf("usage: tpdf-analyze [-dot out.dot] (-builtin name | file.tpdf)")
	}
	if err != nil {
		return err
	}

	rep := tpdf.Analyze(g)
	fmt.Print(rep.String())
	if rep.Err != nil {
		return rep.Err
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(tpdf.DOT(g)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if !rep.Bounded {
		os.Exit(2)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-analyze:", err)
		os.Exit(1)
	}
}
