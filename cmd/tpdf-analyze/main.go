// Command tpdf-analyze loads a TPDF graph from its textual description and
// runs the full §III analysis chain: rate consistency (symbolic repetition
// vector), rate safety per control actor, liveness by cycle clustering, and
// the Theorem 2 boundedness verdict.
//
// Usage:
//
//	tpdf-analyze [-dot out.dot] [-builtin name] [file.tpdf]
//
// With -builtin, one of the repository's application graphs is analyzed
// instead of a file: fig2, fig4a, fig4b, ofdm, ofdm-csdf, edge, fmradio,
// fmradio-csdf.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/graphio"
)

func builtinGraph(name string) (*core.Graph, error) {
	switch name {
	case "fig2":
		return apps.Fig2(), nil
	case "fig4a":
		return apps.Fig4a(), nil
	case "fig4b":
		return apps.Fig4b(), nil
	case "ofdm":
		return apps.OFDMTPDF(apps.DefaultOFDM()), nil
	case "ofdm-csdf":
		return apps.OFDMCSDF(apps.DefaultOFDM()), nil
	case "edge":
		return apps.EdgeDetection(500, nil).Graph, nil
	case "fmradio":
		return apps.FMRadioTPDF(), nil
	case "fmradio-csdf":
		return apps.FMRadioCSDF(), nil
	case "vc1":
		return apps.VC1Decoder(), nil
	case "avc-me":
		return apps.MotionEstimation(500, 60, 15).Graph, nil
	default:
		return nil, fmt.Errorf("unknown builtin %q (try fig2, fig4a, fig4b, ofdm, ofdm-csdf, edge, fmradio, fmradio-csdf, vc1, avc-me)", name)
	}
}

func run() error {
	dotOut := flag.String("dot", "", "write a Graphviz rendering to this file")
	builtin := flag.String("builtin", "", "analyze a built-in application graph instead of a file")
	flag.Parse()

	var g *core.Graph
	switch {
	case *builtin != "":
		var err error
		g, err = builtinGraph(*builtin)
		if err != nil {
			return err
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		g, err = graphio.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: tpdf-analyze [-dot out.dot] (-builtin name | file.tpdf)")
	}

	rep := analysis.Analyze(g)
	fmt.Print(rep.String())
	if rep.Err != nil {
		return rep.Err
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(graphio.DOT(g)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if !rep.Bounded {
		os.Exit(2)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-analyze:", err)
		os.Exit(1)
	}
}
