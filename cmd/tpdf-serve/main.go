// Command tpdf-serve hosts the multi-tenant streaming + analysis service:
// a fleet of persistent streaming engines (one session per client, sessions
// of the same graph sharing one compiled program) behind a small REST API,
// plus batch analyze/sweep endpoints coalesced onto a bounded worker
// budget. Admission control — bounded session slots, per-tenant quotas, a
// bounded admission queue — turns saturation into HTTP 429 instead of
// memory growth.
//
// Usage:
//
//	tpdf-serve [-addr host:port] [-admin host:port] [-max-sessions n]
//	           [-max-per-tenant n] [-admit-wait d] [-drain-timeout d]
//	           [-batch-workers n] [-data-dir dir] [-persist-every n]
//	           [-keep-snapshots k]
//
// -data-dir makes sessions durable: every session's state is snapshotted
// to <dir>/<session>/ at transaction boundaries (asynchronously, every
// -persist-every boundaries; synchronously before each pump request is
// acknowledged, so an acked pump always survives a crash) and the newest
// -keep-snapshots files are retained per session. On restart with the same
// directory the fleet is rebuilt from disk: each session's graph is
// recompiled from its recorded text and resumed at its newest valid
// snapshot — torn or corrupt files from a mid-write crash are detected by
// checksum and skipped. /healthz answers 503 "recovering" until recovery
// completes; /v1/stats reports its progress and /metrics carries the
// tpdf_durable_* families. Sessions closed by the client delete their
// snapshots; a drain keeps them for the next boot.
//
// GET /metrics serves the fleet and per-session engine counters in
// Prometheus text exposition; GET /healthz answers 503 "draining" once
// shutdown begins so load balancers stop routing here. -admin opts into a
// second listener carrying net/http/pprof and a /metrics copy — keep it on
// a loopback or private address, the profiling endpoints are not for the
// public port.
//
// A session lives across requests; parameters change only at transaction
// (iteration) boundaries, per the TPDF transaction rule:
//
//	# open a session of the built-in Fig. 2 graph
//	curl -s -X POST localhost:8080/v1/sessions \
//	     -d '{"tenant":"acme","graph":{"builtin":"fig2"}}'
//	# → {"id":"s1","tenant":"acme","graph":"fig2"}
//
//	# run 100 iterations, raising p to 4 at the opening boundary
//	curl -s -X POST localhost:8080/v1/sessions/s1/pump \
//	     -d '{"iterations":100,"params":{"p":4}}'
//
//	# analyze a graph (shares the compiled-program cache with sessions)
//	curl -s -X POST localhost:8080/v1/analyze -d '{"graph":{"builtin":"ofdm"}}'
//
//	# drain the session: stops at the next barrier, returns final firings
//	curl -s -X DELETE localhost:8080/v1/sessions/s1
//
// On SIGTERM or SIGINT the server drains gracefully: no new admissions,
// every session parks and exits at its next transaction barrier, bounded
// by -drain-timeout (stragglers are then cancelled).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/tpdf/serve"
)

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	adminAddr := flag.String("admin", "", "admin listener (pprof + /metrics); empty disables")
	maxSessions := flag.Int("max-sessions", 256, "max concurrently open sessions")
	maxPerTenant := flag.Int("max-per-tenant", 0, "max sessions per tenant (0: same as -max-sessions)")
	admitWait := flag.Duration("admit-wait", 100*time.Millisecond, "how long an opener may queue for a session slot")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown bound before sessions are cancelled")
	batchWorkers := flag.Int("batch-workers", 2, "concurrent analyze/sweep jobs")
	sweepPar := flag.Int("sweep-parallelism", 0, "worker-pool width per sweep request (0: sequential)")
	maxPrograms := flag.Int("max-programs", 1024, "distinct graphs the program cache may hold")
	maxRestarts := flag.Int("max-restarts", 3, "engine restarts per session after behavior panics (negative disables recovery)")
	chaos := flag.Bool("chaos", false, "accept seeded fault-injection specs at session open (testing only)")
	dataDir := flag.String("data-dir", "", "durable snapshot directory; empty disables persistence")
	persistEvery := flag.Int("persist-every", 1, "persist asynchronously every n transaction boundaries (acked pumps always flush synchronously)")
	keepSnapshots := flag.Int("keep-snapshots", 3, "newest snapshots retained per session")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *maxPerTenant,
		AdmitWait:            *admitWait,
		DrainTimeout:         *drainTimeout,
		BatchWorkers:         *batchWorkers,
		SweepParallelism:     *sweepPar,
		MaxPrograms:          *maxPrograms,
		MaxRestarts:          *maxRestarts,
		EnableChaos:          *chaos,
		DataDir:              *dataDir,
		PersistEvery:         *persistEvery,
		KeepSnapshots:        *keepSnapshots,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tpdf-serve: listening on %s (%d session slots)\n", bound, *maxSessions)
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "tpdf-serve: durable sessions in %s (persist every %d, keep %d)\n",
			*dataDir, *persistEvery, *keepSnapshots)
	}
	if *adminAddr != "" {
		abound, err := srv.StartAdmin(*adminAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "tpdf-serve: admin (pprof, /metrics) on %s\n", abound)
	}

	<-ctx.Done()
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "tpdf-serve: draining sessions at transaction barriers...")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "tpdf-serve: drained")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-serve:", err)
		os.Exit(1)
	}
}
