// Command tpdf-bench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes), benchmarks the concurrent streaming engine against the
// sequential runner, and gates performance regressions of the analysis
// fabric.
//
// Usage:
//
//	tpdf-bench                              # run everything (1024×1024 image for the table)
//	tpdf-bench -quick                       # reduced image size, shorter sweeps
//	tpdf-bench -exp f8                      # a single experiment (see tpdf.ExperimentNames)
//	tpdf-bench -parallel 8                  # shard sweeps + fan out experiments over 8 workers
//	tpdf-bench -json BENCH_analysis.json    # machine-readable timings + allocation counts
//	                                        # of every experiment, engine-vs-runner speedup
//	tpdf-bench -quick -json new.json -compare BENCH_analysis.json
//	                                        # regression gate: fail when any experiment got
//	                                        # >25% slower (-threshold) or allocated >50% more
//	                                        # (-alloc-threshold) than the committed baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/tpdf"
)

// experimentTiming records one artifact regeneration for the JSON report.
type experimentTiming struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp counts heap allocations during the regeneration (all
	// goroutines): the tracking metric for the simulator fast path.
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
	Error       string `json:"error,omitempty"`
}

// engineComparison reports the concurrent engine against the sequential
// runner on the same payload pipeline and behaviors.
type engineComparison struct {
	Graph          string  `json:"graph"`
	Stages         int     `json:"stages"`
	Iterations     int64   `json:"iterations"`
	StageLatencyNs int64   `json:"stage_latency_ns"`
	SequentialNs   int64   `json:"sequential_ns_per_op"`
	StreamNs       int64   `json:"stream_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

type benchReport struct {
	Quick       bool               `json:"quick"`
	Parallel    int                `json:"parallel,omitempty"`
	Experiments []experimentTiming `json:"experiments"`
	Engine      engineComparison   `json:"engine"`
}

// latencyBehaviors builds an I/O-bound behavior for every node of g: each
// firing waits d (a sensor read, a network hop) and forwards its token. A
// concurrent pipeline overlaps those waits; the sequential runner
// serializes them — the ratio is the engine speedup.
func latencyBehaviors(g *tpdf.Graph, d time.Duration) map[string]tpdf.Behavior {
	b := map[string]tpdf.Behavior{}
	for _, n := range g.Nodes {
		b[n.Name] = func(f *tpdf.Firing) error {
			time.Sleep(d)
			if in := f.In["i0"]; len(in) > 0 {
				f.Produce("o0", in[0])
			} else {
				f.Produce("o0", int(f.K))
			}
			return nil
		}
	}
	return b
}

// measureEngine times Execute versus Stream on the 5-stage payload
// pipeline, taking the best of three rounds each.
func measureEngine(quick bool) (engineComparison, error) {
	cmp := engineComparison{
		Graph:          "ofdm-payload-pipeline",
		Stages:         5,
		Iterations:     32,
		StageLatencyNs: int64(500 * time.Microsecond),
	}
	if quick {
		cmp.Iterations = 8
	}
	g := tpdf.OFDMPayloadGraph()
	d := time.Duration(cmp.StageLatencyNs)

	best := func(run func() error) (int64, error) {
		bestNs := int64(0)
		for round := 0; round < 3; round++ {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if ns := time.Since(start).Nanoseconds(); bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs, nil
	}

	var err error
	cmp.SequentialNs, err = best(func() error {
		_, err := tpdf.Execute(g, latencyBehaviors(g, d), tpdf.WithIterations(cmp.Iterations))
		return err
	})
	if err != nil {
		return cmp, fmt.Errorf("sequential run: %v", err)
	}
	cmp.StreamNs, err = best(func() error {
		_, err := tpdf.Stream(g, latencyBehaviors(g, d), tpdf.WithIterations(cmp.Iterations))
		return err
	})
	if err != nil {
		return cmp, fmt.Errorf("stream run: %v", err)
	}
	if cmp.StreamNs > 0 {
		cmp.Speedup = float64(cmp.SequentialNs) / float64(cmp.StreamNs)
	}
	return cmp, nil
}

// mallocs reads the process-wide cumulative heap-allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measureRounds is how many times each experiment regeneration is timed;
// the report keeps the best round. A single-shot measurement on a busy or
// single-core runner jitters far beyond the regression threshold, and the
// minimum is the round least polluted by scheduler noise and GC debt from
// preceding experiments.
const measureRounds = 3

// measure times every experiment (best of measureRounds, with allocation
// counts) and benchmarks engine vs runner.
func measure(quick bool, parallel int) (*benchReport, error) {
	rep := &benchReport{Quick: quick, Parallel: parallel}
	for _, name := range tpdf.ExperimentNames() {
		timing := experimentTiming{Name: name}
		for round := 0; round < measureRounds; round++ {
			before := mallocs()
			start := time.Now()
			_, err := tpdf.RunExperiment(name, quick, tpdf.WithParallelism(parallel))
			ns := time.Since(start).Nanoseconds()
			allocs := mallocs() - before
			if err != nil {
				timing.Error = err.Error()
				break
			}
			// Keep both metrics of the single fastest round, so the
			// reported pair is one a real run actually produced.
			if round == 0 || ns < timing.NsPerOp {
				timing.NsPerOp = ns
				timing.AllocsPerOp = allocs
			}
		}
		rep.Experiments = append(rep.Experiments, timing)
		fmt.Printf("%-4s %12d ns/op %12d allocs/op\n", name, timing.NsPerOp, timing.AllocsPerOp)
	}
	cmp, err := measureEngine(quick)
	if err != nil {
		return nil, err
	}
	rep.Engine = cmp
	fmt.Printf("engine vs runner on %s: sequential %d ns, stream %d ns, speedup %.2fx\n",
		cmp.Graph, cmp.SequentialNs, cmp.StreamNs, cmp.Speedup)
	return rep, nil
}

// writeJSON stores the machine-readable report.
func writeJSON(path string, rep *benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareFloorNs exempts experiments faster than this from the regression
// gate: sub-millisecond artifacts are dominated by scheduler and allocator
// noise, not by the analysis code the gate protects.
const compareFloorNs = 1_000_000

// compareFloorAllocs exempts experiments allocating less than this from
// the allocation gate: tiny counts are dominated by runtime bookkeeping
// (goroutine spin-up, map growth in the harness), not by the analysis hot
// paths the rebind layer keeps allocation-free.
const compareFloorAllocs = 1_000

// compare checks the measured report against a committed baseline and
// returns an error when any sufficiently large experiment regressed beyond
// the wall-time threshold (e.g. 0.25 = 25% slower) or grew its allocation
// count beyond allocThreshold — the simulator and rebind fast paths are
// 0 allocs/op by construction, so a creeping allocs_per_op is a real leak
// even when the wall clock hides it.
func compare(baselinePath string, rep *benchReport, threshold, allocThreshold float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %v", baselinePath, err)
	}
	baseline := map[string]experimentTiming{}
	for _, t := range base.Experiments {
		baseline[t.Name] = t
	}
	var regressions []string
	fmt.Printf("comparison vs %s (time threshold %+.0f%% above %dms, alloc threshold %+.0f%% above %d allocs):\n",
		baselinePath, threshold*100, compareFloorNs/1_000_000, allocThreshold*100, compareFloorAllocs)
	for _, t := range rep.Experiments {
		// A failed experiment must never pass the gate — its near-zero
		// wall time would otherwise read as a huge speedup.
		if t.Error != "" {
			regressions = append(regressions, fmt.Sprintf("%s: FAILED: %s", t.Name, t.Error))
			fmt.Printf("  %-4s FAILED: %s\n", t.Name, t.Error)
			continue
		}
		old, ok := baseline[t.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		delta := float64(t.NsPerOp-old.NsPerOp) / float64(old.NsPerOp)
		verdict := "ok"
		switch {
		case old.NsPerOp < compareFloorNs:
			verdict = "skipped (below floor)"
		case delta > threshold:
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d ns/op (%+.0f%%)", t.Name, old.NsPerOp, t.NsPerOp, delta*100))
		}
		allocNote := ""
		// Gate when either side clears the floor: a baseline under the
		// floor must not exempt a fast path that regresses far above it.
		if old.AllocsPerOp >= compareFloorAllocs || t.AllocsPerOp >= compareFloorAllocs {
			// Subtract in float space: the counts are uint64 and an
			// improvement must not wrap around into a huge delta.
			adelta := (float64(t.AllocsPerOp) - float64(old.AllocsPerOp)) / float64(old.AllocsPerOp)
			if adelta > allocThreshold {
				allocNote = "  ALLOC REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %d -> %d allocs/op (%+.0f%%)", t.Name, old.AllocsPerOp, t.AllocsPerOp, adelta*100))
			}
		}
		fmt.Printf("  %-4s %12d -> %12d ns/op  %+6.1f%%  %8d -> %8d allocs  %s%s\n",
			t.Name, old.NsPerOp, t.NsPerOp, delta*100, old.AllocsPerOp, t.AllocsPerOp, verdict, allocNote)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d experiment(s) regressed (time >%.0f%%, allocs >%.0f%%) or failed:\n  %s",
			len(regressions), threshold*100, allocThreshold*100, strings.Join(regressions, "\n  "))
	}
	fmt.Println("no regressions")
	return nil
}

func run() error {
	quick := flag.Bool("quick", false, "smaller image and sweeps")
	exp := flag.String("exp", "", "run one experiment: "+strings.Join(tpdf.ExperimentNames(), " "))
	parallel := flag.Int("parallel", 1, "worker pool width: fan experiments out and shard their sweeps")
	jsonPath := flag.String("json", "", "write machine-readable timings (experiment ns/op + allocs/op, engine-vs-runner speedup) to this file")
	baseline := flag.String("compare", "", "baseline JSON to compare against; exits nonzero on regression")
	threshold := flag.Float64("threshold", 0.25, "relative slowdown tolerated by -compare (0.25 = 25%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.5, "relative allocs_per_op growth tolerated by -compare (0.5 = 50%)")
	flag.Parse()

	if *jsonPath != "" || *baseline != "" {
		if *exp != "" {
			return fmt.Errorf("-exp is mutually exclusive with -json/-compare (they time every experiment)")
		}
		if *baseline != "" {
			// Fail on a missing/unreadable baseline before spending a full
			// measurement pass.
			if _, err := os.Stat(*baseline); err != nil {
				return err
			}
		}
		rep, err := measure(*quick, *parallel)
		if err != nil {
			return err
		}
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rep); err != nil {
				return err
			}
		}
		if *baseline != "" {
			return compare(*baseline, rep, *threshold, *allocThreshold)
		}
		return nil
	}
	if *exp != "" {
		out, err := tpdf.RunExperiment(*exp, *quick, tpdf.WithParallelism(*parallel))
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	out, err := tpdf.RunAllExperiments(*quick, tpdf.WithParallelism(*parallel))
	fmt.Print(out)
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-bench:", err)
		os.Exit(1)
	}
}
