// Command tpdf-bench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes).
//
// Usage:
//
//	tpdf-bench            # run everything (1024×1024 image for the table)
//	tpdf-bench -quick     # reduced image size, shorter sweeps
//	tpdf-bench -exp f8    # a single experiment (see tpdf.ExperimentNames)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tpdf"
)

func run() error {
	quick := flag.Bool("quick", false, "smaller image and sweeps")
	exp := flag.String("exp", "", "run one experiment: "+strings.Join(tpdf.ExperimentNames(), " "))
	flag.Parse()

	if *exp != "" {
		out, err := tpdf.RunExperiment(*exp, *quick)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	out, err := tpdf.RunAllExperiments(*quick)
	fmt.Print(out)
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-bench:", err)
		os.Exit(1)
	}
}
