// Command tpdf-bench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes) and benchmarks the concurrent streaming engine against the
// sequential runner.
//
// Usage:
//
//	tpdf-bench                            # run everything (1024×1024 image for the table)
//	tpdf-bench -quick                     # reduced image size, shorter sweeps
//	tpdf-bench -exp f8                    # a single experiment (see tpdf.ExperimentNames)
//	tpdf-bench -json BENCH_engine.json    # machine-readable timings of every
//	                                      # experiment + engine-vs-runner speedup
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/tpdf"
)

// experimentTiming records one artifact regeneration for the JSON report.
type experimentTiming struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Error   string `json:"error,omitempty"`
}

// engineComparison reports the concurrent engine against the sequential
// runner on the same payload pipeline and behaviors.
type engineComparison struct {
	Graph          string  `json:"graph"`
	Stages         int     `json:"stages"`
	Iterations     int64   `json:"iterations"`
	StageLatencyNs int64   `json:"stage_latency_ns"`
	SequentialNs   int64   `json:"sequential_ns_per_op"`
	StreamNs       int64   `json:"stream_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

type benchReport struct {
	Quick       bool               `json:"quick"`
	Experiments []experimentTiming `json:"experiments"`
	Engine      engineComparison   `json:"engine"`
}

// latencyBehaviors builds an I/O-bound behavior for every node of g: each
// firing waits d (a sensor read, a network hop) and forwards its token. A
// concurrent pipeline overlaps those waits; the sequential runner
// serializes them — the ratio is the engine speedup.
func latencyBehaviors(g *tpdf.Graph, d time.Duration) map[string]tpdf.Behavior {
	b := map[string]tpdf.Behavior{}
	for _, n := range g.Nodes {
		b[n.Name] = func(f *tpdf.Firing) error {
			time.Sleep(d)
			if in := f.In["i0"]; len(in) > 0 {
				f.Produce("o0", in[0])
			} else {
				f.Produce("o0", int(f.K))
			}
			return nil
		}
	}
	return b
}

// measureEngine times Execute versus Stream on the 5-stage payload
// pipeline, taking the best of three rounds each.
func measureEngine(quick bool) (engineComparison, error) {
	cmp := engineComparison{
		Graph:          "ofdm-payload-pipeline",
		Stages:         5,
		Iterations:     32,
		StageLatencyNs: int64(500 * time.Microsecond),
	}
	if quick {
		cmp.Iterations = 8
	}
	g := tpdf.OFDMPayloadGraph()
	d := time.Duration(cmp.StageLatencyNs)

	best := func(run func() error) (int64, error) {
		bestNs := int64(0)
		for round := 0; round < 3; round++ {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if ns := time.Since(start).Nanoseconds(); bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs, nil
	}

	var err error
	cmp.SequentialNs, err = best(func() error {
		_, err := tpdf.Execute(g, latencyBehaviors(g, d), tpdf.WithIterations(cmp.Iterations))
		return err
	})
	if err != nil {
		return cmp, fmt.Errorf("sequential run: %v", err)
	}
	cmp.StreamNs, err = best(func() error {
		_, err := tpdf.Stream(g, latencyBehaviors(g, d), tpdf.WithIterations(cmp.Iterations))
		return err
	})
	if err != nil {
		return cmp, fmt.Errorf("stream run: %v", err)
	}
	if cmp.StreamNs > 0 {
		cmp.Speedup = float64(cmp.SequentialNs) / float64(cmp.StreamNs)
	}
	return cmp, nil
}

// writeJSON times every experiment once, benchmarks engine vs runner, and
// writes the machine-readable report.
func writeJSON(path string, quick bool) error {
	rep := benchReport{Quick: quick}
	for _, name := range tpdf.ExperimentNames() {
		start := time.Now()
		_, err := tpdf.RunExperiment(name, quick)
		timing := experimentTiming{Name: name, NsPerOp: time.Since(start).Nanoseconds()}
		if err != nil {
			timing.Error = err.Error()
		}
		rep.Experiments = append(rep.Experiments, timing)
		fmt.Printf("%-4s %12d ns/op\n", name, timing.NsPerOp)
	}
	cmp, err := measureEngine(quick)
	if err != nil {
		return err
	}
	rep.Engine = cmp
	fmt.Printf("engine vs runner on %s: sequential %d ns, stream %d ns, speedup %.2fx\n",
		cmp.Graph, cmp.SequentialNs, cmp.StreamNs, cmp.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func run() error {
	quick := flag.Bool("quick", false, "smaller image and sweeps")
	exp := flag.String("exp", "", "run one experiment: "+strings.Join(tpdf.ExperimentNames(), " "))
	jsonPath := flag.String("json", "", "write machine-readable timings (experiment ns/op, engine-vs-runner speedup) to this file")
	flag.Parse()

	if *jsonPath != "" {
		if *exp != "" {
			return fmt.Errorf("-exp and -json are mutually exclusive (-json times every experiment)")
		}
		return writeJSON(*jsonPath, *quick)
	}
	if *exp != "" {
		out, err := tpdf.RunExperiment(*exp, *quick)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	out, err := tpdf.RunAllExperiments(*quick)
	fmt.Print(out)
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-bench:", err)
		os.Exit(1)
	}
}
