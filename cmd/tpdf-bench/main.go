// Command tpdf-bench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes).
//
// Usage:
//
//	tpdf-bench            # run everything (1024×1024 image for the table)
//	tpdf-bench -quick     # reduced image size, shorter sweeps
//	tpdf-bench -exp f8    # a single experiment: f1..f8, t6, a1..a3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func run() error {
	quick := flag.Bool("quick", false, "smaller image and sweeps")
	exp := flag.String("exp", "", "run one experiment: f1 f2 f3 f4 f5 t6 f6 f7 f8 a1 a2 a3")
	flag.Parse()

	size := 1024
	if *quick {
		size = 256
	}
	single := map[string]func() (string, error){
		"f1": experiments.F1,
		"f2": experiments.F2,
		"f3": experiments.F3,
		"f4": experiments.F4,
		"f5": experiments.F5,
		"t6": func() (string, error) { return experiments.F6Table(size, true) },
		"f6": experiments.F6Deadline,
		"f7": experiments.F7,
		"f8": func() (string, error) {
			betas := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
			if *quick {
				betas = []int64{10, 30, 50, 100}
			}
			return experiments.F8(betas)
		},
		"a1": experiments.ScheduleAblation,
		"a2": experiments.PlatformSweep,
		"a3": experiments.FMRadioComparison,
		"a4": experiments.ADFPruning,
		"a5": experiments.AVCQualityThreshold,
		"a6": experiments.ThroughputValidation,
		"a7": experiments.PipelinedScheduling,
		"a8": experiments.CapacityMinimization,
	}
	if *exp != "" {
		f, ok := single[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		out, err := f()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	out, err := experiments.All(*quick)
	fmt.Print(out)
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-bench:", err)
		os.Exit(1)
	}
}
