// Command tpdf-bench regenerates the paper's tables and figures (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes), benchmarks the concurrent streaming engine against the
// sequential runner, and gates performance regressions of the analysis
// fabric.
//
// Usage:
//
//	tpdf-bench                              # run everything (1024×1024 image for the table)
//	tpdf-bench -quick                       # reduced image size, shorter sweeps
//	tpdf-bench -exp f8                      # a single experiment (see tpdf.ExperimentNames)
//	tpdf-bench -parallel 8                  # shard sweeps + fan out experiments over 8 workers
//	tpdf-bench -json BENCH_analysis.json    # machine-readable timings + allocation counts
//	                                        # of every experiment, engine-vs-runner speedup
//	tpdf-bench -quick -json new.json -compare BENCH_analysis.json
//	                                        # regression gate: fail when any experiment got
//	                                        # >25% slower (-threshold) or allocated >50% more
//	                                        # (-alloc-threshold) than the committed baseline
//	tpdf-bench -engine -json BENCH_engine.json
//	                                        # streaming-engine mode: per-graph Stream ns/op +
//	                                        # allocs/op (transport-bound workloads) instead of
//	                                        # the analysis experiments; -compare gates it the
//	                                        # same way against the committed BENCH_engine.json.
//	                                        # Each workload is also run with a metrics registry
//	                                        # + trace journal attached ("+metrics" twin);
//	                                        # -metrics-overhead 0.02 fails the run when the
//	                                        # instrumented twin is >2% slower or allocates per
//	                                        # iteration (the zero-overhead observability gate)
//	tpdf-bench -serve -json BENCH_serve.json
//	                                        # service-tier mode: an in-process tpdf-serve is
//	                                        # soaked by the loadgen library; per-endpoint
//	                                        # median ns/op + p99 (open/pump/close/session,
//	                                        # analyze/sweep) gated against BENCH_serve.json
//	tpdf-bench -gen -json BENCH_gen.json
//	                                        # generator mode: time the property-based test
//	                                        # generators (tpdf/fuzz) over a fixed seed span —
//	                                        # graph generation, schedule generation and full
//	                                        # case assembly ns/op + allocs/op — gated against
//	                                        # BENCH_gen.json so the fuzz sweep's cost per CI
//	                                        # run stays bounded
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/tpdf"
	"repro/tpdf/fuzz"
	"repro/tpdf/obs"
	"repro/tpdf/serve"
)

// experimentTiming records one artifact regeneration for the JSON report.
type experimentTiming struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp counts heap allocations during the regeneration (all
	// goroutines): the tracking metric for the simulator fast path.
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
	// P99 is the tail latency of the endpoint (serve mode only: NsPerOp is
	// the median over many requests there, so the tail is worth keeping).
	P99 int64 `json:"p99_ns,omitempty"`
	// Iterations is the graph-iteration count of a streaming workload
	// (engine mode only); the metrics-overhead gate normalizes allocation
	// deltas per iteration with it.
	Iterations int64 `json:"iterations,omitempty"`
	// OverheadPct, set on a "+metrics" twin, is the median over the paired
	// rounds of (twin - bare)/bare wall time — a paired estimator far more
	// contention-robust than comparing the two minima (adjacent rounds
	// share their noise regime, so common-mode slowdowns cancel in the
	// per-round ratio). Pointers so a measured 0.0 still serializes.
	OverheadPct *float64 `json:"overhead_pct,omitempty"`
	// OverheadLoPct is the lower bound of the one-sided 95% confidence
	// interval around OverheadPct (MAD-based standard error of the
	// median). The overhead gate judges this bound, not the point
	// estimate: on a contended runner the median of 25 ratios still
	// wobbles a couple percent, and a gate that fails only when the
	// overhead is statistically above budget catches real regressions
	// without flaking on noise.
	OverheadLoPct *float64 `json:"overhead_lo_pct,omitempty"`
	Error         string   `json:"error,omitempty"`
}

// engineComparison reports the concurrent engine against the sequential
// runner on the same payload pipeline and behaviors.
type engineComparison struct {
	Graph          string  `json:"graph"`
	Stages         int     `json:"stages"`
	Iterations     int64   `json:"iterations"`
	StageLatencyNs int64   `json:"stage_latency_ns"`
	SequentialNs   int64   `json:"sequential_ns_per_op"`
	StreamNs       int64   `json:"stream_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

type benchReport struct {
	Quick bool `json:"quick"`
	// EngineMode marks a report produced by -engine: Experiments then
	// holds per-graph streaming timings instead of analysis artifacts.
	EngineMode bool `json:"engine_mode,omitempty"`
	// ServeMode marks a report produced by -serve: Experiments holds
	// per-endpoint service latencies and Serve the full soak report.
	ServeMode bool `json:"serve_mode,omitempty"`
	// GenMode marks a report produced by -gen: Experiments holds the
	// property-based test generator timings (tpdf/fuzz).
	GenMode     bool               `json:"gen_mode,omitempty"`
	Parallel    int                `json:"parallel,omitempty"`
	Experiments []experimentTiming `json:"experiments"`
	Engine      engineComparison   `json:"engine"`
	Serve       *serve.LoadReport  `json:"serve,omitempty"`
}

// latencyBehaviors builds an I/O-bound behavior for every node of g: each
// firing waits d (a sensor read, a network hop) and forwards its token. A
// concurrent pipeline overlaps those waits; the sequential runner
// serializes them — the ratio is the engine speedup.
func latencyBehaviors(g *tpdf.Graph, d time.Duration) map[string]tpdf.Behavior {
	b := map[string]tpdf.Behavior{}
	for _, n := range g.Nodes {
		b[n.Name] = func(f *tpdf.Firing) error {
			time.Sleep(d)
			if in := f.In["i0"]; len(in) > 0 {
				f.Produce("o0", in[0])
			} else {
				f.Produce("o0", int(f.K))
			}
			return nil
		}
	}
	return b
}

// measureEngine times Execute versus Stream on the 5-stage payload
// pipeline, taking the best of three rounds each.
func measureEngine(quick bool) (engineComparison, error) {
	cmp := engineComparison{
		Graph:          "ofdm-payload-pipeline",
		Stages:         5,
		Iterations:     32,
		StageLatencyNs: int64(500 * time.Microsecond),
	}
	if quick {
		cmp.Iterations = 8
	}
	g := tpdf.OFDMPayloadGraph()
	d := time.Duration(cmp.StageLatencyNs)

	best := func(run func() error) (int64, error) {
		bestNs := int64(0)
		for round := 0; round < 3; round++ {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if ns := time.Since(start).Nanoseconds(); bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs, nil
	}

	var err error
	cmp.SequentialNs, err = best(func() error {
		_, err := tpdf.Execute(g, latencyBehaviors(g, d), tpdf.WithIterations(cmp.Iterations))
		return err
	})
	if err != nil {
		return cmp, fmt.Errorf("sequential run: %v", err)
	}
	cmp.StreamNs, err = best(func() error {
		_, err := tpdf.Stream(g, latencyBehaviors(g, d), tpdf.WithIterations(cmp.Iterations))
		return err
	})
	if err != nil {
		return cmp, fmt.Errorf("stream run: %v", err)
	}
	if cmp.StreamNs > 0 {
		cmp.Speedup = float64(cmp.SequentialNs) / float64(cmp.StreamNs)
	}
	return cmp, nil
}

// streamWorkload is one graph the -engine mode pushes through tpdf.Stream
// with throughput-bound behaviors: no sleeps, so ns/op is dominated by the
// transport and synchronization the ring-buffer engine optimizes, and
// allocs/op by the warm firing path, which is allocation-free by
// construction.
type streamWorkload struct {
	name  string
	iters int64
	build func() (*tpdf.Graph, map[string]tpdf.Behavior, []tpdf.Option, error)
	// ckptArmed marks workloads that already run with checkpoint capture
	// on; they are their own checkpoint measurement and get no "+ckpt"
	// twin (stacking a second WithCheckpoints would invert the pair).
	ckptArmed bool
}

// passthrough forwards one payload without allocating (direct append into
// the reused scratch slice; no variadic box).
func passthrough(f *tpdf.Firing) error {
	f.Out["o0"] = append(f.Out["o0"], f.In["i0"][0])
	return nil
}

// engineWorkloads builds the -engine benchmark set: a unit-rate pipeline,
// a cyclo-static multirate chain, a fan-out, and a graph that rebinds a
// parameter at every transaction boundary.
func engineWorkloads(quick bool) []streamWorkload {
	scale := int64(1)
	if quick {
		scale = 4
	}
	return []streamWorkload{
		{name: "stream/pipe", iters: 16384 / scale, build: func() (*tpdf.Graph, map[string]tpdf.Behavior, []tpdf.Option, error) {
			g := tpdf.OFDMPayloadGraph()
			behaviors := map[string]tpdf.Behavior{
				"SRC": func(f *tpdf.Firing) error {
					f.Out["o0"] = append(f.Out["o0"], 7)
					return nil
				},
				"RCP": passthrough, "FFT": passthrough, "QAM": passthrough,
				"SNK": func(f *tpdf.Firing) error { return nil },
			}
			return g, behaviors, nil, nil
		}},
		{name: "stream/multirate", iters: 8192 / scale, build: func() (*tpdf.Graph, map[string]tpdf.Behavior, []tpdf.Option, error) {
			g, err := tpdf.NewGraph("multirate").
				Kernel("SRC", 1).Kernel("A", 1).Kernel("B", 1).Kernel("SNK", 1).
				Connect("SRC[4] -> A[3,1]").
				Connect("A[2] -> B[4]").
				Connect("B[3] -> SNK[1]").
				Build()
			if err != nil {
				return nil, nil, nil, err
			}
			behaviors := map[string]tpdf.Behavior{
				"SRC": func(f *tpdf.Firing) error {
					f.Out["o0"] = append(f.Out["o0"], 1, 2, 3, 4)
					return nil
				},
				"A": func(f *tpdf.Firing) error {
					f.Out["o0"] = append(f.Out["o0"], 5, 6)
					return nil
				},
				"B": func(f *tpdf.Firing) error {
					f.Out["o0"] = append(f.Out["o0"], 7, 8, 9)
					return nil
				},
			}
			return g, behaviors, nil, nil
		}},
		{name: "stream/fanout", iters: 8192 / scale, build: func() (*tpdf.Graph, map[string]tpdf.Behavior, []tpdf.Option, error) {
			b := tpdf.NewGraph("fanout").Kernel("SRC", 1)
			for i := 0; i < 4; i++ {
				b = b.Kernel(fmt.Sprintf("W%d", i), 1)
			}
			b = b.Kernel("SNK", 1)
			for i := 0; i < 4; i++ {
				b = b.Connect(fmt.Sprintf("SRC[1] -> W%d[1]", i)).
					Connect(fmt.Sprintf("W%d[1] -> SNK[1]", i))
			}
			g, err := b.Build()
			if err != nil {
				return nil, nil, nil, err
			}
			behaviors := map[string]tpdf.Behavior{
				"SRC": func(f *tpdf.Firing) error {
					for i := 0; i < 4; i++ {
						port := [4]string{"o0", "o1", "o2", "o3"}[i]
						f.Out[port] = append(f.Out[port], 1)
					}
					return nil
				},
			}
			for i := 0; i < 4; i++ {
				behaviors[fmt.Sprintf("W%d", i)] = passthrough
			}
			return g, behaviors, nil, nil
		}},
		// stream/reconfigure rebinds a rate parameter at every transaction
		// boundary of a pipeline doing real per-epoch work (~100 firings
		// through passthrough behaviors), so the pair measures rebind +
		// barrier machinery amortized the way any production graph
		// amortizes it — against the epochs it separates. A bare two-actor
		// micrograph would instead measure nothing but boundary cost, where
		// a single clock read is already percents of the epoch.
		{name: "stream/reconfigure", iters: 2048 / scale, build: func() (*tpdf.Graph, map[string]tpdf.Behavior, []tpdf.Option, error) {
			g, err := tpdf.NewGraph("reconf").
				Param("p", 2, 1, 8).
				Kernel("SRC", 1).Kernel("A", 1).Kernel("B", 1).Kernel("SNK", 1).
				Connect("SRC[32] -> A[1]").
				Connect("A[1] -> B[1]").
				Connect("B[1] -> SNK[p]").
				Build()
			if err != nil {
				return nil, nil, nil, err
			}
			behaviors := map[string]tpdf.Behavior{
				"SRC": func(f *tpdf.Firing) error {
					for i := 0; i < 32; i++ {
						f.Out["o0"] = append(f.Out["o0"], i)
					}
					return nil
				},
				"A": passthrough, "B": passthrough,
				"SNK": func(f *tpdf.Firing) error { return nil },
			}
			opts := []tpdf.Option{tpdf.WithReconfigure(func(completed int64) map[string]int64 {
				// Cycle consumption rates that divide SRC's 32-token burst.
				return map[string]int64{"p": [3]int64{2, 4, 8}[completed%3]}
			})}
			return g, behaviors, opts, nil
		}},
		// stream/checkpoint measures the full fault-tolerance data path:
		// the run rehydrates from a checkpoint (one restore, taken outside
		// the timed window) and then captures a full recovery point at
		// every transaction barrier, handing it to a sink that copies it
		// into a held arena — the exact shape of a supervised serve
		// session restarting and then keeping a rolling restart point. The
		// pipeline does the same ~100 firings of real per-epoch work as
		// stream/reconfigure, so the number reports restore + capture +
		// copy cost amortized the way a supervisor amortizes it.
		{name: "stream/checkpoint", iters: 2048 / scale, ckptArmed: true, build: func() (*tpdf.Graph, map[string]tpdf.Behavior, []tpdf.Option, error) {
			g, err := tpdf.NewGraph("ckpt").
				Kernel("SRC", 1).Kernel("A", 1).Kernel("B", 1).Kernel("SNK", 1).
				Connect("SRC[32] -> A[1]").
				Connect("A[1] -> B[1]").
				Connect("B[1] -> SNK[4]").
				Build()
			if err != nil {
				return nil, nil, nil, err
			}
			behaviors := map[string]tpdf.Behavior{
				"SRC": func(f *tpdf.Firing) error {
					for i := 0; i < 32; i++ {
						f.Out["o0"] = append(f.Out["o0"], i)
					}
					return nil
				},
				"A": passthrough, "B": passthrough,
				"SNK": func(f *tpdf.Firing) error { return nil },
			}
			// A no-op reconfigure hook forces a barrier per iteration so
			// every iteration produces a checkpoint, as a supervised
			// session's rolling recovery point does.
			noop := func(int64) map[string]int64 { return nil }
			// Prime the restore source outside the timed window: a short
			// checkpointed leg whose final barrier cut the measured run
			// resumes from (WithIterations is the total target, so the
			// timed run performs the remaining iterations).
			prime := &tpdf.Checkpoint{}
			if _, err := tpdf.Stream(g, behaviors,
				tpdf.WithIterations(64),
				tpdf.WithReconfigure(noop),
				tpdf.WithCheckpoints(func(ck *tpdf.Checkpoint) { ck.CopyInto(prime) })); err != nil {
				return nil, nil, nil, err
			}
			held := &tpdf.Checkpoint{}
			opts := []tpdf.Option{
				tpdf.WithReconfigure(noop),
				tpdf.WithCheckpoints(func(ck *tpdf.Checkpoint) { ck.CopyInto(held) }),
				tpdf.WithResume(prime),
			}
			return g, behaviors, opts, nil
		}},
	}
}

// measureEngineMode times every streaming workload (best of measureRounds,
// with allocation counts) plus the engine-vs-runner latency comparison:
// the regression gate for the execution hot path, the counterpart of the
// analysis gate in the default mode. Every workload is measured several
// times over — bare, with a metrics registry + trace journal attached
// ("+metrics"), and with barrier checkpointing armed but no consumer
// ("+ckpt") — so the decorated twins feed the -metrics-overhead and
// -ckpt-overhead gates proving observability and fault-tolerance arming
// cost nothing on the hot path.
func measureEngineMode(quick bool) (*benchReport, error) {
	rep := &benchReport{Quick: quick, EngineMode: true}
	for _, w := range engineWorkloads(quick) {
		w := w
		prepare := func(decorate func([]tpdf.Option) []tpdf.Option) func() (func() error, error) {
			return func() (func() error, error) {
				g, behaviors, opts, err := w.build()
				if err != nil {
					return nil, err
				}
				opts = append(opts, tpdf.WithIterations(w.iters))
				if decorate != nil {
					opts = decorate(opts)
				}
				return func() error {
					_, err := tpdf.Stream(g, behaviors, opts...)
					return err
				}, nil
			}
		}
		twins := []twinSpec{{name: w.name + "+metrics", prep: prepare(func(opts []tpdf.Option) []tpdf.Option {
			// Fresh registry and journal per round, as a server session
			// would hold them.
			return append(opts,
				tpdf.WithMetrics(obs.NewRegistry()),
				tpdf.WithTraceJournal(obs.NewJournal(256)))
		})}}
		if !w.ckptArmed {
			twins = append(twins, twinSpec{name: w.name + "+ckpt", prep: prepare(func(opts []tpdf.Option) []tpdf.Option {
				// Checkpoint capture armed with no sink: the armed-but-idle
				// configuration every supervised serve session runs in
				// between faults.
				return append(opts, tpdf.WithCheckpoints(nil))
			})})
		}
		set := measureTimingSet(w.name, prepare(nil), twins...)
		for i := range set {
			set[i].Iterations = w.iters
		}
		rep.Experiments = append(rep.Experiments, set...)
	}
	return rep, finishReport(rep, quick)
}

// metricsSetupAllocs is the fixed allocation budget a decorated twin may
// spend per run outside the firing path: for "+metrics" the registry
// snapshot slices (sized once at the first harvest), the options
// themselves, and journal construction; for "+ckpt" the checkpoint arena
// (per-edge buffers sized once to ring capacities). Everything beyond it
// must amortize to ~zero per iteration.
const metricsSetupAllocs = 512

// metricsAllocsPerIter is the per-iteration allocation delta tolerated for
// a metrics-on run (matching the engine's 0-allocs-warm-path contract; the
// epsilon absorbs runtime bookkeeping such as GC assists).
const metricsAllocsPerIter = 0.01

// gateTwinOverhead compares every engine workload against one family of
// decorated twins ("+metrics", "+ckpt") from the same report: the
// decorated run may be at most tol slower in wall time and must not
// allocate per iteration beyond the fixed setup budget — the
// zero-overhead contract, enforced in CI.
func gateTwinOverhead(rep *benchReport, suffix, what string, tol float64) error {
	byName := map[string]experimentTiming{}
	for _, t := range rep.Experiments {
		byName[t.Name] = t
	}
	var violations []string
	checked := 0
	fmt.Printf("%s overhead gate (<=%.1f%% ns/op, <=%.2f allocs/iteration beyond %d setup):\n",
		what, tol*100, metricsAllocsPerIter, metricsSetupAllocs)
	for _, off := range rep.Experiments {
		if strings.Contains(off.Name, "+") {
			continue // a twin, not a base
		}
		on, ok := byName[off.Name+suffix]
		if !ok {
			continue
		}
		checked++
		if off.Error != "" || on.Error != "" {
			violations = append(violations, fmt.Sprintf("%s: measurement failed (%s%s)", off.Name, off.Error, on.Error))
			continue
		}
		// Judge the paired per-round estimator when the run produced one —
		// the confidence lower bound if available, so only statistically
		// significant overhead fails; min-vs-min (two order statistics of
		// different noise draws) is only the fallback for reports from
		// older binaries.
		delta := float64(on.NsPerOp-off.NsPerOp) / float64(off.NsPerOp)
		if on.OverheadLoPct != nil {
			delta = *on.OverheadLoPct
		} else if on.OverheadPct != nil {
			delta = *on.OverheadPct
		}
		perIter := 0.0
		if extra := float64(on.AllocsPerOp) - float64(off.AllocsPerOp) - metricsSetupAllocs; extra > 0 && off.Iterations > 0 {
			perIter = extra / float64(off.Iterations)
		}
		verdict := "ok"
		if delta > tol {
			verdict = "TIME OVERHEAD"
			violations = append(violations, fmt.Sprintf("%s: %d -> %d ns/op (%+.1f%% > %.1f%%)",
				off.Name, off.NsPerOp, on.NsPerOp, delta*100, tol*100))
		}
		if perIter > metricsAllocsPerIter {
			verdict = "ALLOC OVERHEAD"
			violations = append(violations, fmt.Sprintf("%s: %d -> %d allocs/op (%.3f allocs/iteration)",
				off.Name, off.AllocsPerOp, on.AllocsPerOp, perIter))
		}
		fmt.Printf("  %-20s %12d -> %12d ns/op  %+6.1f%%  %8d -> %8d allocs  %s\n",
			off.Name, off.NsPerOp, on.NsPerOp, delta*100, off.AllocsPerOp, on.AllocsPerOp, verdict)
	}
	if checked == 0 {
		return fmt.Errorf("%s overhead gate matched no workload pairs", what)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%s overhead above budget on %d workload(s):\n  %s",
			what, len(violations), strings.Join(violations, "\n  "))
	}
	fmt.Printf("%s overhead within budget\n", what)
	return nil
}

// measureServeMode boots an in-process tpdf-serve, soaks it with the
// loadgen library, and reports per-endpoint service latency: the median as
// ns/op (stable enough to gate) plus the p99 tail. The run itself asserts
// the soak invariants — zero failed and zero leaked sessions — before any
// numbers are reported.
func measureServeMode(quick bool) (*benchReport, error) {
	rep := &benchReport{Quick: quick, ServeMode: true}
	srv := serve.New(serve.Config{MaxSessions: 64, AdmitWait: 5 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()

	cfg := serve.LoadConfig{
		BaseURL:     "http://" + addr,
		Sessions:    128,
		Concurrency: 32,
		Pumps:       8,
		Iterations:  16,
	}
	batch := serve.BatchLoad{BaseURL: "http://" + addr, Analyzes: 40, Sweeps: 8}
	if quick {
		cfg.Sessions, cfg.Concurrency, cfg.Pumps, cfg.Iterations = 48, 16, 4, 8
		batch.Analyzes, batch.Sweeps = 20, 4
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	lr, err := serve.RunLoad(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve soak: %v", err)
	}
	if lr.Failed > 0 || lr.Leaked > 0 {
		return nil, fmt.Errorf("serve soak: %d failed, %d leaked sessions", lr.Failed, lr.Leaked)
	}
	br, err := serve.RunBatchLoad(ctx, batch)
	if err != nil {
		return nil, fmt.Errorf("serve batch: %v", err)
	}
	rep.Serve = lr

	add := func(name string, p serve.Percentiles) {
		rep.Experiments = append(rep.Experiments,
			experimentTiming{Name: name, NsPerOp: p.P50, P99: p.P99})
		fmt.Printf("%-18s %12d ns/op %12d p99\n", name, p.P50, p.P99)
	}
	add("serve/open", lr.Open)
	add("serve/pump", lr.Pump)
	add("serve/close", lr.Close)
	add("serve/session", lr.Session)
	add("serve/analyze", br.Analyze)
	add("serve/sweep", br.Sweep)
	fmt.Printf("serve soak: %d sessions at %d concurrent, %.1f sessions/sec, 0 failed, 0 leaked\n",
		lr.Sessions, lr.Concurrency, lr.SessionsPerSec)

	// Durable twin: the same soak against a server persisting every
	// session to disk (synchronous snapshot flush on every pump ack), so
	// the gate tracks what durability costs the service path.
	dir, err := os.MkdirTemp("", "tpdf-bench-durable-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	dsrv := serve.New(serve.Config{
		MaxSessions: 64, AdmitWait: 5 * time.Second,
		DataDir: dir, PersistEvery: 1,
	})
	daddr, err := dsrv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		dsrv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()
	dcfg := cfg
	dcfg.BaseURL = "http://" + daddr
	dlr, err := serve.RunLoad(ctx, dcfg)
	if err != nil {
		return nil, fmt.Errorf("durable serve soak: %v", err)
	}
	if dlr.Failed > 0 || dlr.Leaked > 0 {
		return nil, fmt.Errorf("durable serve soak: %d failed, %d leaked sessions", dlr.Failed, dlr.Leaked)
	}
	add("serve+durable/open", dlr.Open)
	add("serve+durable/pump", dlr.Pump)
	add("serve+durable/close", dlr.Close)
	add("serve+durable/session", dlr.Session)
	fmt.Printf("durable serve soak: %d sessions, %.1f sessions/sec, 0 failed, 0 leaked\n",
		dlr.Sessions, dlr.SessionsPerSec)
	return rep, nil
}

// genSink keeps the generator workloads' outputs observably alive so the
// compiler cannot elide the work being timed.
var genSink int64

// measureGenMode times the property-based test generators (tpdf/fuzz)
// over a fixed consecutive seed span: graph generation alone, schedule
// generation alone (against one fixed graph), and full case assembly
// including the canonical text both artifacts serialize to — the exact
// per-case cost the CI fuzz sweep pays. Generation is deterministic by
// seed, so every round re-derives byte-identical artifacts and the
// numbers gate generator cost, not input variance.
func measureGenMode(quick bool) (*benchReport, error) {
	rep := &benchReport{Quick: quick, GenMode: true}
	span := int64(2048)
	if quick {
		span = 512
	}
	scheduleGraph := fuzz.Graph(1, fuzz.GraphConfig{})
	workloads := []struct {
		name string
		run  func() error
	}{
		{"gen/graph", func() error {
			for seed := int64(1); seed <= span; seed++ {
				g := fuzz.Graph(seed, fuzz.GraphConfig{})
				genSink += int64(len(g.Nodes))
			}
			return nil
		}},
		{"gen/schedule", func() error {
			for seed := int64(1); seed <= span; seed++ {
				s := fuzz.NewSchedule(seed, scheduleGraph, fuzz.ScheduleConfig{})
				genSink += s.Iterations
			}
			return nil
		}},
		{"gen/case", func() error {
			for seed := int64(1); seed <= span; seed++ {
				c := fuzz.NewCase(seed)
				genSink += int64(len(tpdf.Format(c.Graph)) + len(c.Schedule.String()))
			}
			return nil
		}},
	}
	for _, w := range workloads {
		w := w
		timing := measureTiming(w.name, func() (func() error, error) {
			return w.run, nil
		})
		timing.Iterations = span
		rep.Experiments = append(rep.Experiments, timing)
	}
	return rep, nil
}

// mallocs reads the process-wide cumulative heap-allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// measureRounds is how many times each experiment regeneration is timed;
// the report keeps the best round. A single-shot measurement on a busy or
// single-core runner jitters far beyond the regression threshold, and the
// minimum is the round least polluted by scheduler noise and GC debt from
// preceding experiments.
const measureRounds = 3

// timeRound builds one fresh run closure (its cost stays outside the
// measured window) and times it, returning wall nanoseconds and the heap
// allocations the run performed. The forced collection levels GC debt, so
// a round never pays for the garbage of whatever ran before it.
func timeRound(prepare func() (func() error, error)) (int64, uint64, error) {
	run, err := prepare()
	if err != nil {
		return 0, 0, err
	}
	runtime.GC()
	before := mallocs()
	start := time.Now()
	err = run()
	ns := time.Since(start).Nanoseconds()
	allocs := mallocs() - before
	return ns, allocs, err
}

// measureTiming runs one experiment best-of-measureRounds: the reported
// ns/op + allocs/op pair is the one the single fastest round actually
// produced.
func measureTiming(name string, prepare func() (func() error, error)) experimentTiming {
	timing := experimentTiming{Name: name}
	for round := 0; round < measureRounds; round++ {
		ns, allocs, err := timeRound(prepare)
		if err != nil {
			timing.Error = err.Error()
			break
		}
		if round == 0 || ns < timing.NsPerOp {
			timing.NsPerOp = ns
			timing.AllocsPerOp = allocs
		}
	}
	fmt.Printf("%-18s %12d ns/op %12d allocs/op\n", timing.Name, timing.NsPerOp, timing.AllocsPerOp)
	return timing
}

// pairRounds is how many rounds a paired twin measurement takes. Twins
// exist to be compared against their base at a few-percent tolerance —
// far below scheduler noise on a shared runner — so they get many more
// rounds than a standalone experiment (engine runs are milliseconds, the
// extra rounds are cheap) and every round runs all variants back to back
// so a noise burst (CPU contention, GC debt) lands on the whole round
// instead of skewing whichever variant owned that stretch of wall time.
const pairRounds = 41

// pairWarmup is how many leading rounds contribute no overhead ratio:
// the first rounds pay cold page-cache and scheduler ramp-up costs that
// land asymmetrically on whichever variant ran first, and a handful of
// discarded rounds is cheaper than letting that skew a 2% gate. The
// minimum-time estimate still considers every round.
const pairWarmup = 2

// twinSpec is one decorated variant measured against a base experiment
// inside the same interleaved round set.
type twinSpec struct {
	name string
	prep func() (func() error, error)
}

// measureTimingSet measures a base experiment and any number of decorated
// twins with interleaved rounds. Each variant reports its single fastest
// round; every twin also carries OverheadPct, the median of the per-round
// (twin-base)/base wall-time ratios — each ratio compares runs adjacent
// in time, so contention that slows the whole round cancels out of it,
// and the median discards rounds where a burst hit only one variant. The
// run order rotates every round so no variant systematically inherits the
// cache/scheduler state another left behind. Returns base followed by the
// twins in their given order.
func measureTimingSet(baseName string, basePrep func() (func() error, error), twins ...twinSpec) []experimentTiming {
	variants := 1 + len(twins)
	timings := make([]experimentTiming, variants)
	timings[0] = experimentTiming{Name: baseName}
	for i, tw := range twins {
		timings[i+1] = experimentTiming{Name: tw.name}
	}
	preps := make([]func() (func() error, error), variants)
	preps[0] = basePrep
	for i, tw := range twins {
		preps[i+1] = tw.prep
	}
	ratios := make([][]float64, len(twins))
rounds:
	for round := 0; round < pairRounds; round++ {
		ns := make([]int64, variants)
		allocs := make([]uint64, variants)
		for k := 0; k < variants; k++ {
			idx := (round + k) % variants
			n, a, err := timeRound(preps[idx])
			if err != nil {
				timings[idx].Error = err.Error()
				break rounds
			}
			ns[idx], allocs[idx] = n, a
		}
		for idx := 0; idx < variants; idx++ {
			if round == 0 || ns[idx] < timings[idx].NsPerOp {
				timings[idx].NsPerOp, timings[idx].AllocsPerOp = ns[idx], allocs[idx]
			}
		}
		if ns[0] > 0 && round >= pairWarmup {
			for i := range twins {
				ratios[i] = append(ratios[i], float64(ns[i+1]-ns[0])/float64(ns[0]))
			}
		}
	}
	for i := range twins {
		if len(ratios[i]) == 0 {
			continue
		}
		med := medianOf(ratios[i])
		timings[i+1].OverheadPct = &med
		// Robust standard error of the median: 1.4826*MAD estimates the
		// ratio spread without letting burst rounds inflate it, and
		// 1.2533*sd/sqrt(n) is the median's sampling error. The gate
		// judges med - 1.645*se, the one-sided 95% lower bound.
		dev := make([]float64, len(ratios[i]))
		for j, r := range ratios[i] {
			dev[j] = math.Abs(r - med)
		}
		se := 1.2533 * 1.4826 * medianOf(dev) / math.Sqrt(float64(len(ratios[i])))
		lo := med - 1.645*se
		timings[i+1].OverheadLoPct = &lo
	}
	for _, t := range timings {
		over := ""
		if t.OverheadPct != nil {
			over = fmt.Sprintf("   %+.1f%% paired (lo %+.1f%%)", *t.OverheadPct*100, *t.OverheadLoPct*100)
		}
		fmt.Printf("%-22s %12d ns/op %12d allocs/op%s\n", t.Name, t.NsPerOp, t.AllocsPerOp, over)
	}
	return timings
}

// medianOf returns the median; it sorts xs in place.
func medianOf(xs []float64) float64 {
	sort.Float64s(xs)
	m := xs[len(xs)/2]
	if len(xs)%2 == 0 {
		m = (m + xs[len(xs)/2-1]) / 2
	}
	return m
}

// finishReport appends the engine-vs-runner latency comparison shared by
// both modes.
func finishReport(rep *benchReport, quick bool) error {
	cmp, err := measureEngine(quick)
	if err != nil {
		return err
	}
	rep.Engine = cmp
	fmt.Printf("engine vs runner on %s: sequential %d ns, stream %d ns, speedup %.2fx\n",
		cmp.Graph, cmp.SequentialNs, cmp.StreamNs, cmp.Speedup)
	return nil
}

// measure times every experiment (best of measureRounds, with allocation
// counts) and benchmarks engine vs runner.
func measure(quick bool, parallel int) (*benchReport, error) {
	rep := &benchReport{Quick: quick, Parallel: parallel}
	for _, name := range tpdf.ExperimentNames() {
		name := name
		timing := measureTiming(name, func() (func() error, error) {
			return func() error {
				_, err := tpdf.RunExperiment(name, quick, tpdf.WithParallelism(parallel))
				return err
			}, nil
		})
		rep.Experiments = append(rep.Experiments, timing)
	}
	return rep, finishReport(rep, quick)
}

// writeJSON stores the machine-readable report.
func writeJSON(path string, rep *benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// compareFloorNs exempts experiments faster than this from the regression
// gate: sub-millisecond artifacts are dominated by scheduler and allocator
// noise, not by the analysis code the gate protects.
const compareFloorNs = 1_000_000

// compareFloorAllocs exempts experiments allocating less than this from
// the allocation gate: tiny counts are dominated by runtime bookkeeping
// (goroutine spin-up, map growth in the harness), not by the analysis hot
// paths the rebind layer keeps allocation-free.
const compareFloorAllocs = 1_000

// compare checks the measured report against a committed baseline and
// returns an error when any sufficiently large experiment regressed beyond
// the wall-time threshold (e.g. 0.25 = 25% slower) or grew its allocation
// count beyond allocThreshold — the simulator and rebind fast paths are
// 0 allocs/op by construction, so a creeping allocs_per_op is a real leak
// even when the wall clock hides it.
func compare(baselinePath string, rep *benchReport, threshold, allocThreshold float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %v", baselinePath, err)
	}
	// A baseline from another mode would share no experiment names and
	// silently gate nothing; refuse it outright.
	if base.EngineMode != rep.EngineMode || base.ServeMode != rep.ServeMode || base.GenMode != rep.GenMode {
		return fmt.Errorf("%s is a %s baseline but this run measured %s (wrong -compare file?)",
			baselinePath, modeName(&base), modeName(rep))
	}
	baseline := map[string]experimentTiming{}
	for _, t := range base.Experiments {
		baseline[t.Name] = t
	}
	var regressions []string
	matched := 0
	fmt.Printf("comparison vs %s (time threshold %+.0f%% above %dms, alloc threshold %+.0f%% above %d allocs):\n",
		baselinePath, threshold*100, compareFloorNs/1_000_000, allocThreshold*100, compareFloorAllocs)
	for _, t := range rep.Experiments {
		// A failed experiment must never pass the gate — its near-zero
		// wall time would otherwise read as a huge speedup.
		if t.Error != "" {
			regressions = append(regressions, fmt.Sprintf("%s: FAILED: %s", t.Name, t.Error))
			fmt.Printf("  %-4s FAILED: %s\n", t.Name, t.Error)
			continue
		}
		old, ok := baseline[t.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		matched++
		delta := float64(t.NsPerOp-old.NsPerOp) / float64(old.NsPerOp)
		verdict := "ok"
		switch {
		case old.NsPerOp < compareFloorNs:
			verdict = "skipped (below floor)"
		case delta > threshold:
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d ns/op (%+.0f%%)", t.Name, old.NsPerOp, t.NsPerOp, delta*100))
		}
		allocNote := ""
		// Gate when either side clears the floor: a baseline under the
		// floor must not exempt a fast path that regresses far above it.
		if old.AllocsPerOp >= compareFloorAllocs || t.AllocsPerOp >= compareFloorAllocs {
			// Subtract in float space: the counts are uint64 and an
			// improvement must not wrap around into a huge delta.
			adelta := (float64(t.AllocsPerOp) - float64(old.AllocsPerOp)) / float64(old.AllocsPerOp)
			if adelta > allocThreshold {
				allocNote = "  ALLOC REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %d -> %d allocs/op (%+.0f%%)", t.Name, old.AllocsPerOp, t.AllocsPerOp, adelta*100))
			}
		}
		fmt.Printf("  %-4s %12d -> %12d ns/op  %+6.1f%%  %8d -> %8d allocs  %s%s\n",
			t.Name, old.NsPerOp, t.NsPerOp, delta*100, old.AllocsPerOp, t.AllocsPerOp, verdict, allocNote)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d experiment(s) regressed (time >%.0f%%, allocs >%.0f%%) or failed:\n  %s",
			len(regressions), threshold*100, allocThreshold*100, strings.Join(regressions, "\n  "))
	}
	// A gate that matched nothing is a disabled gate, not a pass: the
	// baseline is stale (workload set renamed) or simply the wrong file.
	if matched == 0 {
		return fmt.Errorf("no experiment in this run matched the %s baseline; regenerate it", baselinePath)
	}
	fmt.Println("no regressions")
	return nil
}

func modeName(rep *benchReport) string {
	switch {
	case rep.ServeMode:
		return "serve"
	case rep.EngineMode:
		return "engine"
	case rep.GenMode:
		return "gen"
	default:
		return "analysis"
	}
}

func run() error {
	quick := flag.Bool("quick", false, "smaller image and sweeps")
	exp := flag.String("exp", "", "run one experiment: "+strings.Join(tpdf.ExperimentNames(), " "))
	engineMode := flag.Bool("engine", false, "benchmark the streaming engine per graph (stream ns/op + allocs/op) instead of the analysis experiments")
	serveMode := flag.Bool("serve", false, "benchmark the service tier: soak an in-process tpdf-serve and report per-endpoint median ns/op + p99")
	genMode := flag.Bool("gen", false, "benchmark the property-based test generators (tpdf/fuzz): graph/schedule/case ns/op + allocs/op over a fixed seed span")
	parallel := flag.Int("parallel", 1, "worker pool width: fan experiments out and shard their sweeps")
	jsonPath := flag.String("json", "", "write machine-readable timings (experiment ns/op + allocs/op, engine-vs-runner speedup) to this file")
	baseline := flag.String("compare", "", "baseline JSON to compare against; exits nonzero on regression")
	threshold := flag.Float64("threshold", 0.25, "relative slowdown tolerated by -compare (0.25 = 25%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.5, "relative allocs_per_op growth tolerated by -compare (0.5 = 50%)")
	metricsOverhead := flag.Float64("metrics-overhead", 0, "engine mode: max relative slowdown of each workload's +metrics twin (0.02 = 2%; 0 disables the gate)")
	ckptOverhead := flag.Float64("ckpt-overhead", 0, "engine mode: max relative slowdown of each workload's checkpoint-armed +ckpt twin (0.02 = 2%; 0 disables the gate)")
	flag.Parse()

	if *engineMode || *serveMode || *genMode {
		if *exp != "" {
			return fmt.Errorf("-exp is mutually exclusive with -engine/-serve/-gen")
		}
		modes := 0
		for _, on := range []bool{*engineMode, *serveMode, *genMode} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			return fmt.Errorf("-engine, -serve and -gen are mutually exclusive")
		}
		if *baseline != "" {
			if _, err := os.Stat(*baseline); err != nil {
				return err
			}
		}
		measureMode := measureEngineMode
		if *serveMode {
			measureMode = measureServeMode
		}
		if *genMode {
			measureMode = measureGenMode
		}
		rep, err := measureMode(*quick)
		if err != nil {
			return err
		}
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rep); err != nil {
				return err
			}
		}
		if *engineMode && *metricsOverhead > 0 {
			if err := gateTwinOverhead(rep, "+metrics", "metrics", *metricsOverhead); err != nil {
				return err
			}
		}
		if *engineMode && *ckptOverhead > 0 {
			if err := gateTwinOverhead(rep, "+ckpt", "checkpoint", *ckptOverhead); err != nil {
				return err
			}
		}
		if *baseline != "" {
			return compare(*baseline, rep, *threshold, *allocThreshold)
		}
		return nil
	}

	if *jsonPath != "" || *baseline != "" {
		if *exp != "" {
			return fmt.Errorf("-exp is mutually exclusive with -json/-compare (they time every experiment)")
		}
		if *baseline != "" {
			// Fail on a missing/unreadable baseline before spending a full
			// measurement pass.
			if _, err := os.Stat(*baseline); err != nil {
				return err
			}
		}
		rep, err := measure(*quick, *parallel)
		if err != nil {
			return err
		}
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rep); err != nil {
				return err
			}
		}
		if *baseline != "" {
			return compare(*baseline, rep, *threshold, *allocThreshold)
		}
		return nil
	}
	if *exp != "" {
		out, err := tpdf.RunExperiment(*exp, *quick, tpdf.WithParallelism(*parallel))
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	out, err := tpdf.RunAllExperiments(*quick, tpdf.WithParallelism(*parallel))
	fmt.Print(out)
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-bench:", err)
		os.Exit(1)
	}
}
