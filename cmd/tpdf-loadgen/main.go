// Command tpdf-loadgen soaks a running tpdf-serve instance: it runs many
// session lifecycles (open → pump×N → close) at a configured concurrency,
// retries admission pushback (429/503) as backpressure, and reports
// per-endpoint latency percentiles plus throughput as JSON — the numbers
// the BENCH_serve.json CI gate tracks. Mid-run it scrapes GET /metrics and
// validates the Prometheus exposition; an unparsable exposition fails the
// run like a failed session does.
//
// Usage:
//
//	tpdf-loadgen -url http://127.0.0.1:8080 \
//	             [-sessions 100] [-concurrency 32] [-tenants 4] \
//	             [-pumps 8] [-iterations 16] [-builtin fig2 | -graph file.tpdf] \
//	             [-json out.json]
//
// Exit status is non-zero if any session failed or leaked.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/tpdf/serve"
)

func run() error {
	url := flag.String("url", "http://127.0.0.1:8080", "server base URL")
	sessions := flag.Int("sessions", 100, "total session lifecycles to run")
	concurrency := flag.Int("concurrency", 32, "sessions in flight at once")
	tenants := flag.Int("tenants", 4, "tenant names to spread sessions over")
	pumps := flag.Int("pumps", 8, "pump requests per session")
	iterations := flag.Int64("iterations", 16, "graph iterations per pump")
	builtin := flag.String("builtin", "fig2", "built-in graph every session opens")
	graphFile := flag.String("graph", "", "open a .tpdf file instead of a builtin")
	jsonOut := flag.String("json", "", "write the report as JSON to this file (default stdout)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	chaos := flag.Bool("chaos", false, "inject seeded faults into every session (server must run -chaos); sessions must still complete via supervisor recovery")
	chaosSeed := flag.Int64("chaos-seed", 1, "base seed for per-session fault schedules (session i uses seed+i)")
	flag.Parse()

	spec := serve.GraphSpec{Builtin: *builtin}
	if *graphFile != "" {
		src, err := os.ReadFile(*graphFile)
		if err != nil {
			return err
		}
		spec = serve.GraphSpec{Source: string(src)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	lc := serve.LoadConfig{
		BaseURL:     *url,
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Tenants:     *tenants,
		Pumps:       *pumps,
		Iterations:  *iterations,
		Graph:       spec,
		Timeout:     *timeout,
	}
	if *chaos {
		lc.Chaos = &serve.ChaosSpec{Seed: *chaosSeed, Panics: 1, Delays: 1, RebindAborts: 1}
	}
	rep, err := serve.RunLoad(ctx, lc)
	if rep != nil {
		out, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			return merr
		}
		out = append(out, '\n')
		if *jsonOut != "" {
			if werr := os.WriteFile(*jsonOut, out, 0o644); werr != nil {
				return werr
			}
		} else {
			os.Stdout.Write(out)
		}
		fmt.Fprintf(os.Stderr,
			"tpdf-loadgen: %d sessions (%.1f/sec), %d failed, %d leaked, pump p50=%s p99=%s, metrics %d series (valid=%v)\n",
			rep.Sessions, rep.SessionsPerSec, rep.Failed, rep.Leaked,
			time.Duration(rep.Pump.P50), time.Duration(rep.Pump.P99),
			rep.MetricsSeries, rep.MetricsValid)
		if *chaos {
			fmt.Fprintf(os.Stderr,
				"tpdf-loadgen: chaos: %d panics recovered via %d restarts, %d rebind aborts\n",
				rep.Panics, rep.Restarts, rep.RebindAborts)
		}
	}
	if err != nil {
		return err
	}
	if rep.Failed > 0 || rep.Leaked > 0 {
		return fmt.Errorf("%d failed sessions, %d leaked sessions", rep.Failed, rep.Leaked)
	}
	if !rep.MetricsValid {
		return fmt.Errorf("/metrics exposition did not validate")
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-loadgen:", err)
		os.Exit(1)
	}
}
