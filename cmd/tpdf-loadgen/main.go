// Command tpdf-loadgen soaks a running tpdf-serve instance: it runs many
// session lifecycles (open → pump×N → close) at a configured concurrency,
// retries admission pushback (429/503) as backpressure, and reports
// per-endpoint latency percentiles plus throughput as JSON — the numbers
// the BENCH_serve.json CI gate tracks. Mid-run it scrapes GET /metrics and
// validates the Prometheus exposition; an unparsable exposition fails the
// run like a failed session does.
//
// Usage:
//
//	tpdf-loadgen -url http://127.0.0.1:8080 \
//	             [-sessions 100] [-concurrency 32] [-tenants 4] \
//	             [-pumps 8] [-iterations 16] [-builtin fig2 | -graph file.tpdf] \
//	             [-json out.json]
//
// Exit status is non-zero if any session failed or leaked.
//
// Crash-recovery harness (against a server started with -data-dir):
//
//	tpdf-loadgen -crash-record -state crash.json   # pump until killed
//	# ... kill -9 the server, restart it on the same -data-dir ...
//	tpdf-loadgen -crash-verify -state crash.json   # exit 0 iff no acked work lost
//
// The recorder journals every acked pump to the state file (atomically
// rewritten per ack) and exits 0 when the server dies under it; the
// verifier waits out recovery, asserts every acked iteration survived, and
// checks post-crash output is identical to an uninterrupted reference run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/tpdf/serve"
)

func run() error {
	url := flag.String("url", "http://127.0.0.1:8080", "server base URL")
	sessions := flag.Int("sessions", 100, "total session lifecycles to run")
	concurrency := flag.Int("concurrency", 32, "sessions in flight at once")
	tenants := flag.Int("tenants", 4, "tenant names to spread sessions over")
	pumps := flag.Int("pumps", 8, "pump requests per session")
	iterations := flag.Int64("iterations", 16, "graph iterations per pump")
	builtin := flag.String("builtin", "fig2", "built-in graph every session opens")
	graphFile := flag.String("graph", "", "open a .tpdf file instead of a builtin")
	jsonOut := flag.String("json", "", "write the report as JSON to this file (default stdout)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	chaos := flag.Bool("chaos", false, "inject seeded faults into every session (server must run -chaos); sessions must still complete via supervisor recovery")
	chaosSeed := flag.Int64("chaos-seed", 1, "base seed for per-session fault schedules (session i uses seed+i)")
	crashRecord := flag.Bool("crash-record", false, "crash harness: pump sessions and journal acks to -state until the server dies")
	crashVerify := flag.Bool("crash-verify", false, "crash harness: verify a restarted server against the -state journal")
	stateFile := flag.String("state", "crash-state.json", "crash harness state file")
	flag.Parse()

	spec := serve.GraphSpec{Builtin: *builtin}
	if *graphFile != "" {
		src, err := os.ReadFile(*graphFile)
		if err != nil {
			return err
		}
		spec = serve.GraphSpec{Source: string(src)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *crashRecord || *crashVerify {
		cc := serve.CrashConfig{
			BaseURL:    *url,
			StateFile:  *stateFile,
			Sessions:   *sessions,
			Tenants:    *tenants,
			Iterations: *iterations,
			Pumps:      *pumps,
			Graph:      spec,
			Timeout:    *timeout,
		}
		if *crashRecord {
			st, err := serve.RunCrashRecord(ctx, cc)
			if err != nil {
				return err
			}
			var acked int64
			for _, s := range st.Sessions {
				acked += s.Acked
			}
			fmt.Fprintf(os.Stderr, "tpdf-loadgen: recorded %d sessions, %d acked iterations to %s\n",
				len(st.Sessions), acked, *stateFile)
			return nil
		}
		rep, err := serve.RunCrashVerify(ctx, cc)
		if rep != nil {
			out, merr := json.MarshalIndent(rep, "", "  ")
			if merr != nil {
				return merr
			}
			os.Stdout.Write(append(out, '\n'))
		}
		if err != nil {
			return err
		}
		if !rep.Pass() {
			return fmt.Errorf("crash verify failed: %d/%d recovered, %d acked iterations lost, %d sink mismatches",
				rep.Recovered, rep.Sessions, rep.LostIterations, rep.SinkMismatches)
		}
		fmt.Fprintf(os.Stderr, "tpdf-loadgen: crash verify passed: %d/%d sessions recovered, 0 acked iterations lost (recovery wait %dms)\n",
			rep.Recovered, rep.Sessions, rep.HealthWaitMs)
		return nil
	}

	lc := serve.LoadConfig{
		BaseURL:     *url,
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Tenants:     *tenants,
		Pumps:       *pumps,
		Iterations:  *iterations,
		Graph:       spec,
		Timeout:     *timeout,
	}
	if *chaos {
		lc.Chaos = &serve.ChaosSpec{Seed: *chaosSeed, Panics: 1, Delays: 1, RebindAborts: 1}
	}
	rep, err := serve.RunLoad(ctx, lc)
	if rep != nil {
		out, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			return merr
		}
		out = append(out, '\n')
		if *jsonOut != "" {
			if werr := os.WriteFile(*jsonOut, out, 0o644); werr != nil {
				return werr
			}
		} else {
			os.Stdout.Write(out)
		}
		fmt.Fprintf(os.Stderr,
			"tpdf-loadgen: %d sessions (%.1f/sec), %d failed, %d leaked, pump p50=%s p99=%s, metrics %d series (valid=%v)\n",
			rep.Sessions, rep.SessionsPerSec, rep.Failed, rep.Leaked,
			time.Duration(rep.Pump.P50), time.Duration(rep.Pump.P99),
			rep.MetricsSeries, rep.MetricsValid)
		if *chaos {
			fmt.Fprintf(os.Stderr,
				"tpdf-loadgen: chaos: %d panics recovered via %d restarts, %d rebind aborts\n",
				rep.Panics, rep.Restarts, rep.RebindAborts)
		}
	}
	if err != nil {
		return err
	}
	if rep.Failed > 0 || rep.Leaked > 0 {
		return fmt.Errorf("%d failed sessions, %d leaked sessions", rep.Failed, rep.Leaked)
	}
	if !rep.MetricsValid {
		return fmt.Errorf("/metrics exposition did not validate")
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpdf-loadgen:", err)
		os.Exit(1)
	}
}
