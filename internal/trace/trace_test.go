package trace

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Method", "Time(ms)"}, [][]string{
		{"QMask", "200"},
		{"Canny", "1040"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Method") || !strings.Contains(lines[0], "Time(ms)") {
		t.Errorf("header wrong: %q", lines[0])
	}
	// Columns align: "Time(ms)" starts at the same offset everywhere.
	off := strings.Index(lines[0], "Time(ms)")
	if strings.Index(lines[2], "200") != off {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"beta", "tpdf"}, [][]string{{"10", "61441"}})
	want := "beta,tpdf\n10,61441\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestGantt(t *testing.T) {
	out := Gantt([]GanttItem{
		{Lane: 0, Label: "A1", Start: 0, End: 50},
		{Lane: 1, Label: "B1", Start: 50, End: 100},
	}, 40)
	if !strings.Contains(out, "PE0") || !strings.Contains(out, "PE1") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "A1") || !strings.Contains(out, "B1") {
		t.Errorf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "time 0..100") {
		t.Errorf("missing time span:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(nil, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("beta", []int64{10, 20}, map[string][]int64{
		"tpdf": {100, 200},
		"csdf": {150, 300},
	}, []string{"tpdf", "csdf"})
	for _, frag := range []string{"beta", "tpdf", "csdf", "10", "300"} {
		if !strings.Contains(out, frag) {
			t.Errorf("series missing %q:\n%s", frag, out)
		}
	}
}
