package trace

import (
	"strings"
	"testing"
)

func TestGanttWidthClamp(t *testing.T) {
	// Very small requested widths are clamped to something drawable.
	out := Gantt([]GanttItem{{Lane: 0, Label: "X", Start: 0, End: 10}}, 1)
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "PE0") {
			line = l
		}
	}
	if len(line) < 20 {
		t.Errorf("clamped lane too narrow: %q", line)
	}
}

func TestGanttLongLabelTruncated(t *testing.T) {
	out := Gantt([]GanttItem{
		{Lane: 0, Label: "averyveryverylongname", Start: 0, End: 1},
		{Lane: 0, Label: "B", Start: 50, End: 100},
	}, 40)
	// The long label cannot spill past its bar into B's region.
	idxB := strings.Index(out, "B")
	if idxB < 0 {
		t.Fatalf("second bar missing:\n%s", out)
	}
	if strings.Contains(out, "averyveryverylongname") {
		t.Errorf("label not truncated to its bar:\n%s", out)
	}
}

func TestGanttZeroDurationVisible(t *testing.T) {
	// Zero-duration items (control actors) still render one cell.
	out := Gantt([]GanttItem{
		{Lane: 0, Label: "C", Start: 5, End: 5},
		{Lane: 0, Label: "K", Start: 0, End: 10},
	}, 40)
	if !strings.Contains(out, "C") {
		t.Errorf("zero-duration item invisible:\n%s", out)
	}
}

func TestTableEmptyRows(t *testing.T) {
	out := Table([]string{"a", "b"}, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("empty table should have header + separator:\n%s", out)
	}
}

func TestCSVEmpty(t *testing.T) {
	if got := CSV([]string{"x"}, nil); got != "x\n" {
		t.Errorf("empty CSV = %q", got)
	}
}

func TestSeriesMissingValues(t *testing.T) {
	out := Series("x", []int64{1, 2, 3}, map[string][]int64{"y": {10, 20}}, []string{"y"})
	if !strings.Contains(out, "3") {
		t.Errorf("x column truncated:\n%s", out)
	}
}
