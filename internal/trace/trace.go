// Package trace renders the textual artifacts the benchmark harness and CLI
// tools emit: aligned tables (the paper's Fig. 6 table), CSV series (the
// Fig. 8 curves) and ASCII Gantt charts (the Fig. 5 canonical period).
package trace

import (
	"fmt"
	"strings"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header line.
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// GanttItem is one bar on a Gantt chart.
type GanttItem struct {
	Lane  int // e.g. processing element index
	Label string
	Start int64
	End   int64
}

// Gantt renders items as ASCII lanes scaled to the given width. Bars are
// labelled with as much of their label as fits.
func Gantt(items []GanttItem, width int) string {
	if len(items) == 0 {
		return "(empty schedule)\n"
	}
	var maxLane int
	var span int64
	for _, it := range items {
		if it.Lane > maxLane {
			maxLane = it.Lane
		}
		if it.End > span {
			span = it.End
		}
	}
	if span == 0 {
		span = 1
	}
	if width < 20 {
		width = 20
	}
	scale := func(t int64) int {
		c := int(t * int64(width) / span)
		if c >= width {
			c = width - 1
		}
		return c
	}
	lanes := make([][]byte, maxLane+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	// Bars first, labels second, so a zero-duration marker (control actor)
	// sharing an instant with a long bar stays visible.
	for _, it := range items {
		s, e := scale(it.Start), scale(it.End)
		if e <= s {
			e = s + 1
		}
		for c := s; c < e && c < width; c++ {
			lanes[it.Lane][c] = '#'
		}
	}
	for _, it := range items {
		s, e := scale(it.Start), scale(it.End)
		if e <= s {
			e = s + 1
		}
		for i := 0; i < len(it.Label) && s+i < width && s+i < e; i++ {
			lanes[it.Lane][s+i] = it.Label[i]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d\n", span)
	for i, lane := range lanes {
		fmt.Fprintf(&b, "PE%-3d |%s|\n", i, lane)
	}
	return b.String()
}

// Series renders an (x, y...) table for one plot, the textual stand-in for
// a paper figure: first column x, one column per named series.
func Series(xName string, xs []int64, series map[string][]int64, order []string) string {
	headers := append([]string{xName}, order...)
	var rows [][]string
	for i, x := range xs {
		row := []string{fmt.Sprint(x)}
		for _, name := range order {
			ys := series[name]
			if i < len(ys) {
				row = append(row, fmt.Sprint(ys[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return Table(headers, rows)
}
