package experiments_test

import (
	"testing"

	"repro/internal/experiments"
)

// TestAllExperimentsParallelByteIdentical is the harness-level differential
// test: the full quick experiment suite, fanned out across experiments and
// sharded within each sweep, must render byte-for-byte what the sequential
// harness renders. Measure is off so no wall-clock readings enter the
// output. The CI race job runs this under -race, which also exercises the
// worker pools for data races.
func TestAllExperimentsParallelByteIdentical(t *testing.T) {
	seq, err := experiments.AllOpts(experiments.Options{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq == "" {
		t.Fatal("sequential harness produced no output")
	}
	for _, workers := range []int{3, 8} {
		par, err := experiments.AllOpts(experiments.Options{Quick: true, Parallel: workers})
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if par != seq {
			t.Fatalf("parallel=%d: output diverged from sequential run", workers)
		}
	}
}

// TestParallelExperimentWrappers pins every parallel experiment variant to
// its sequential rendering individually, so a divergence is attributed to
// the experiment that introduced it.
func TestParallelExperimentWrappers(t *testing.T) {
	cases := []struct {
		name string
		seq  func() (string, error)
		par  func(int) (string, error)
	}{
		{"a1", experiments.ScheduleAblation, experiments.ScheduleAblationParallel},
		{"a2", experiments.PlatformSweep, experiments.PlatformSweepParallel},
		{"a3", experiments.FMRadioComparison, experiments.FMRadioComparisonParallel},
		{"a5", experiments.AVCQualityThreshold, experiments.AVCQualityThresholdParallel},
		{"a6", experiments.ThroughputValidation, experiments.ThroughputValidationParallel},
		{"a7", experiments.PipelinedScheduling, experiments.PipelinedSchedulingParallel},
		{"a8", experiments.CapacityMinimization, experiments.CapacityMinimizationParallel},
		{"f8", func() (string, error) { return experiments.F8([]int64{2, 5}) },
			func(p int) (string, error) { return experiments.F8Parallel([]int64{2, 5}, p) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.seq()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.par(4)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("parallel rendering diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s", want, got)
			}
		})
	}
}
