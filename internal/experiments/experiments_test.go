package experiments

import (
	"strings"
	"testing"
)

func TestF1(t *testing.T) {
	out, err := F1()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"[3 2 2]", "(a3)^2 (a1)^3 (a2)^2", "returns to initial state: true"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F1 missing %q:\n%s", frag, out)
		}
	}
}

func TestF2(t *testing.T) {
	out, err := F2()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Area(C) = {B,D,E,F}", "qG = p", "rate safe: true", "bounded: true"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F2 missing %q:\n%s", frag, out)
		}
	}
}

func TestF3(t *testing.T) {
	out, err := F3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "boundedness preserved: true") {
		t.Errorf("F3 wrong:\n%s", out)
	}
}

func TestF4(t *testing.T) {
	out, err := F4()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"(B B C C)", "(B C C B)", "DEADLOCK"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F4 missing %q:\n%s", frag, out)
		}
	}
}

func TestF5(t *testing.T) {
	out, err := F5()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"canonical period", "PE0", "makespan"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F5 missing %q:\n%s", frag, out)
		}
	}
}

func TestF6TableAndDeadline(t *testing.T) {
	out, err := F6Table(128, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"QMask", "Canny", "1040"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F6Table missing %q:\n%s", frag, out)
		}
	}
	dl, err := F6Deadline()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"500", "Sobel", "Canny"} {
		if !strings.Contains(dl, frag) {
			t.Errorf("F6Deadline missing %q:\n%s", frag, dl)
		}
	}
}

func TestF7(t *testing.T) {
	out, err := F7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bounded") {
		t.Errorf("F7 wrong:\n%s", out)
	}
}

func TestF8(t *testing.T) {
	out, err := F8([]int64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"N = 512", "N = 1024", "paperTPDF", "mean improvement"} {
		if !strings.Contains(out, frag) {
			t.Errorf("F8 missing %q:\n%s", frag, out)
		}
	}
	// The improvement percentage appears and is ≈ 29%.
	if !strings.Contains(out, "29.") && !strings.Contains(out, "30.") && !strings.Contains(out, "28.") {
		t.Errorf("F8 improvement not ≈29%%:\n%s", out)
	}
}

func TestExtensions(t *testing.T) {
	for name, f := range map[string]func() (string, error){
		"ScheduleAblation":     ScheduleAblation,
		"PlatformSweep":        PlatformSweep,
		"FMRadioComparison":    FMRadioComparison,
		"ADFPruning":           ADFPruning,
		"AVCQualityThreshold":  AVCQualityThreshold,
		"ThroughputValidation": ThroughputValidation,
		"PipelinedScheduling":  PipelinedScheduling,
		"CapacityMinimization": CapacityMinimization,
	} {
		out, err := f()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(out) < 50 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short")
	}
	out, err := All(true)
	if err != nil {
		t.Fatalf("%v\npartial output:\n%s", err, out)
	}
	for _, frag := range []string{"EXP-F1", "EXP-F2", "EXP-F3", "EXP-F4", "EXP-F5",
		"EXP-T6", "EXP-F6", "EXP-F7", "EXP-F8", "EXT-A1", "EXT-A2", "EXT-A3"} {
		if !strings.Contains(out, frag) {
			t.Errorf("All() missing %q", frag)
		}
	}
}
