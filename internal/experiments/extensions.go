package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/imaging"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
	"repro/internal/trace"
)

// fig2Instance instantiates Fig. 2, builds its canonical period and control
// flags; shared by the scheduling experiments.
func fig2Instance(p int64) (*csdf.Graph, *csdf.Precedence, []bool, error) {
	g := apps.Fig2()
	cg, low, err := g.Instantiate(symb.Env{"p": p})
	if err != nil {
		return nil, nil, nil, err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, nil, nil, err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return nil, nil, nil, err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 { // core.KindControl
			isCtl[low.ActorOf[id]] = true
		}
	}
	return cg, prec, isCtl, nil
}

// ScheduleAblation measures the §III-D control-priority rule: makespan of
// the Fig. 2 canonical period with and without the rule, across PE counts.
func ScheduleAblation() (string, error) { return ScheduleAblationParallel(1) }

// ScheduleAblationParallel shards the PE-count × rule grid over up to
// parallel workers (each cell is an independent list-scheduling run).
func ScheduleAblationParallel(parallel int) (string, error) {
	cg, prec, isCtl, err := fig2Instance(16)
	if err != nil {
		return "", err
	}
	pes := []int{2, 4, 8}
	rules := []bool{true, false}
	spans := make([]int64, len(pes)*len(rules))
	err = pool.Run(len(spans), parallel, func(i int) error {
		opts := sched.Options{
			Platform:        platform.Simple(pes[i/len(rules)]),
			ControlPriority: rules[i%len(rules)],
			IsControl:       isCtl,
		}
		res, err := sched.ListSchedule(cg, prec, opts)
		if err != nil {
			return err
		}
		if err := sched.Verify(cg, prec, opts, res); err != nil {
			return err
		}
		spans[i] = res.Makespan
		return nil
	})
	if err != nil {
		return "", err
	}
	var rows [][]string
	for i, pe := range pes {
		rows = append(rows, []string{
			strconv.Itoa(pe), itoa(spans[2*i]), itoa(spans[2*i+1]),
		})
	}
	var b strings.Builder
	b.WriteString("EXT-A1: control-priority scheduling rule ablation (Fig. 2, p=16)\n")
	b.WriteString(trace.Table([]string{"PEs", "makespan (rule on)", "makespan (rule off)"}, rows))
	return b.String(), nil
}

// PlatformSweep schedules the Fig. 2 canonical period over growing slices
// of the MPPA-256 and reports the makespan curve — the §III-D scalability
// story on the paper's target machine.
func PlatformSweep() (string, error) { return PlatformSweepParallel(1) }

// PlatformSweepParallel shards the PE-count sweep (each point one
// list-scheduling run of the ~450-firing canonical period) over up to
// parallel workers; the speedup column is derived after the joins, so the
// table matches the sequential rendering.
func PlatformSweepParallel(parallel int) (string, error) {
	cg, prec, isCtl, err := fig2Instance(64)
	if err != nil {
		return "", err
	}
	mppa := platform.MPPA256()
	peCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	type point struct {
		makespan    int64
		utilization float64
	}
	points := make([]point, len(peCounts))
	err = pool.Run(len(peCounts), parallel, func(i int) error {
		opts := sched.Options{
			Platform:        mppa,
			PEs:             peCounts[i],
			ControlPriority: true,
			IsControl:       isCtl,
		}
		res, err := sched.ListSchedule(cg, prec, opts)
		if err != nil {
			return err
		}
		points[i] = point{res.Makespan, res.Utilization()}
		return nil
	})
	if err != nil {
		return "", err
	}
	var rows [][]string
	base := points[0].makespan
	for i, pes := range peCounts {
		speedup := "-"
		if i > 0 && points[i].makespan > 0 {
			speedup = ftoa(float64(base) / float64(points[i].makespan))
		}
		rows = append(rows, []string{
			strconv.Itoa(pes), itoa(points[i].makespan),
			ftoa(points[i].utilization), speedup,
		})
	}
	var b strings.Builder
	b.WriteString("EXT-A2: MPPA-256 platform sweep (Fig. 2, p=64, canonical period)\n")
	b.WriteString(trace.Table([]string{"PEs", "makespan", "utilization", "speedup vs 1PE"}, rows))
	return b.String(), nil
}

// ADFPruning measures the Actor Dependence Function rule (§III-D): when the
// OFDM transaction's mode rejects the QPSK branch, the firings feeding it
// are cancelled, shrinking the canonical period and its makespan.
func ADFPruning() (string, error) {
	params := apps.OFDMParams{Beta: 4, M: 4, N: 32, L: 1}
	g := apps.OFDMTPDF(params)
	cg, low, err := g.Instantiate(symb.Env(params.Env()))
	if err != nil {
		return "", err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return "", err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return "", err
	}
	// The rejected edges under QAM mode: DUP->QPSK and QPSK->TRAN.
	rejected := map[int]bool{}
	for ei, e := range g.Edges {
		src := g.Nodes[e.Src].Name
		dst := g.Nodes[e.Dst].Name
		if (src == "DUP" && dst == "QPSK") || (src == "QPSK" && dst == "TRAN") {
			rejected[low.EdgeOf[ei]] = true
		}
	}
	keep := func(actor int) bool {
		switch cg.Actors[actor].Name {
		case "SNK", "TRAN", "CON":
			return true
		}
		return false
	}
	pruned, _ := sched.PruneForModes(cg, prec, sol, rejected, keep)

	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 {
			isCtl[low.ActorOf[id]] = true
		}
	}
	opts := sched.Options{Platform: platform.Simple(4), ControlPriority: true, IsControl: isCtl}
	fullRes, err := sched.ListSchedule(cg, prec, opts)
	if err != nil {
		return "", err
	}
	prunedRes, err := sched.ListSchedule(cg, pruned, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXT-A4: Actor Dependence Function pruning (OFDM, QAM mode)\n")
	b.WriteString(trace.Table(
		[]string{"period", "firings", "makespan"},
		[][]string{
			{"full graph", strconv.Itoa(prec.N()), itoa(fullRes.Makespan)},
			{"ADF-pruned", strconv.Itoa(pruned.N()), itoa(prunedRes.Makespan)},
		}))
	fmt.Fprintf(&b, "  firings cancelled: %d (the QPSK branch)\n", prec.N()-pruned.N())
	return b.String(), nil
}

// AVCQualityThreshold reproduces the §V AVC-encoder improvement: two real
// motion searches (exhaustive vs three-step, from internal/imaging) race
// under frame deadlines; the transaction commits the best finished result.
func AVCQualityThreshold() (string, error) { return AVCQualityThresholdParallel(1) }

// AVCQualityThresholdParallel races the two ground-truth motion searches
// on separate workers (each additionally sharding its block rows across
// imaging.Parallelism) and runs the deadline simulations concurrently —
// the exhaustive full search dominates this experiment's runtime.
func AVCQualityThresholdParallel(parallel int) (string, error) {
	// Quality ground truth from the real searches on a known shift.
	ref := imaging.Synthetic(128, 128, 7)
	cur := imaging.Shift(ref, 3, 2)
	var fullSAD, tssSAD int
	searches := []func(){
		func() { fullSAD = imaging.EstimateFrame(cur, ref, 16, 7, imaging.FullSearch) },
		func() { tssSAD = imaging.EstimateFrame(cur, ref, 16, 7, imaging.ThreeStepSearch) },
	}
	pool.Run(len(searches), parallel, func(i int) error { searches[i](); return nil })

	deadlines := []int64{30, 80}
	rows := make([][]string, len(deadlines))
	err := pool.Run(len(deadlines), parallel, func(i int) error {
		deadline := deadlines[i]
		app := apps.MotionEstimation(deadline, 60 /*full*/, 15 /*tss*/)
		res, err := sim.Run(sim.Config{
			Graph:  app.Graph,
			Decide: app.DeadlineDecide(),
			Record: true,
		})
		if err != nil {
			return err
		}
		chosen := "(none)"
		for _, ev := range res.Events {
			if ev.Node == "TRAN" && len(ev.Selected) == 1 {
				chosen = app.SearchFor(ev.Selected[0])
			}
		}
		quality := strconv.Itoa(tssSAD)
		if chosen == "ME_FULL" {
			quality = strconv.Itoa(fullSAD)
		}
		rows[i] = []string{itoa(deadline), chosen, quality}
		return nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXT-A5: AVC motion-vector quality threshold (§V)\n")
	b.WriteString(trace.Table([]string{"frame budget (ms)", "committed search", "residual SAD"}, rows))
	fmt.Fprintf(&b, "  real search quality: full %d <= three-step %d (lower is better)\n",
		fullSAD, tssSAD)
	return b.String(), nil
}

// ThroughputValidation cross-checks the analytical maximum-cycle-ratio
// period bound against the steady-state iteration period measured by the
// discrete-event simulator, for pipelines and feedback graphs. Unbounded
// self-timed execution must converge to the MCR.
func ThroughputValidation() (string, error) { return ThroughputValidationParallel(1) }

// ThroughputValidationParallel runs the validation cases (each an MCR
// computation plus two warm simulator runs) on separate workers.
func ThroughputValidationParallel(parallel int) (string, error) {
	type tcase struct {
		name  string
		graph *core.Graph
	}
	pipe := core.NewGraph("pipe")
	{
		a := pipe.AddKernel("a", 2)
		b := pipe.AddKernel("b", 5)
		c := pipe.AddKernel("c", 3)
		if _, err := pipe.Connect(a, "[1]", b, "[1]", 0); err != nil {
			return "", err
		}
		if _, err := pipe.Connect(b, "[1]", c, "[1]", 0); err != nil {
			return "", err
		}
	}
	loop := core.NewGraph("loop")
	{
		a := loop.AddKernel("a", 4)
		b := loop.AddKernel("b", 6)
		if _, err := loop.Connect(a, "[1]", b, "[1]", 0); err != nil {
			return "", err
		}
		if _, err := loop.Connect(b, "[1]", a, "[1]", 1); err != nil {
			return "", err
		}
	}
	cases := []tcase{{"3-stage pipeline", pipe}, {"feedback loop", loop}, {"Fig. 2 (p=2)", apps.Fig2()}}
	rows := make([][]string, len(cases))
	err := pool.Run(len(cases), parallel, func(i int) error {
		tc := cases[i]
		cg, _, err := tc.graph.Instantiate(symb.Env{"p": 2})
		if err != nil {
			return err
		}
		sol, err := cg.RepetitionVector()
		if err != nil {
			return err
		}
		mcr, err := cg.MaxCycleRatio(sol, 1e-6)
		if err != nil {
			return err
		}
		measured, err := sim.IterationPeriod(sim.Config{Graph: tc.graph, Env: symb.Env{"p": 2}}, 8, 16)
		if err != nil {
			return err
		}
		rows[i] = []string{tc.name, ftoa(mcr), ftoa(measured)}
		return nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXT-A6: analytical period bound (max cycle ratio) vs simulation\n")
	b.WriteString(trace.Table([]string{"graph", "MCR bound", "simulated period"}, rows))
	return b.String(), nil
}

// PipelinedScheduling schedules k unfolded iterations of the Fig. 2 graph
// (cross-period dependences included) and reports makespan per iteration:
// software pipelining across canonical periods approaches the analytical
// MCR bound.
func PipelinedScheduling() (string, error) { return PipelinedSchedulingParallel(1) }

// PipelinedSchedulingParallel shards the unfold-degree sweep over up to
// parallel workers (the k=8 unfolding dominates, so the win saturates
// early, but smaller unfoldings no longer wait behind it).
func PipelinedSchedulingParallel(parallel int) (string, error) {
	g := apps.Fig2()
	cg, low, err := g.Instantiate(symb.Env{"p": 4})
	if err != nil {
		return "", err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return "", err
	}
	mcr, err := cg.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		return "", err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 {
			isCtl[low.ActorOf[id]] = true
		}
	}
	unfolds := []int64{1, 2, 4, 8}
	rows := make([][]string, len(unfolds))
	err = pool.Run(len(unfolds), parallel, func(i int) error {
		k := unfolds[i]
		prec, err := cg.UnfoldPrecedence(sol, k)
		if err != nil {
			return err
		}
		opts := sched.Options{Platform: platform.Simple(8), ControlPriority: true, IsControl: isCtl}
		res, err := sched.ListSchedule(cg, prec, opts)
		if err != nil {
			return err
		}
		if err := sched.Verify(cg, prec, opts, res); err != nil {
			return err
		}
		rows[i] = []string{
			itoa(k),
			itoa(res.Makespan),
			ftoa(float64(res.Makespan) / float64(k)),
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXT-A7: pipelined scheduling across canonical periods (Fig. 2, p=4, 8 PEs)\n")
	b.WriteString(trace.Table([]string{"unfold k", "makespan", "makespan / iteration"}, rows))
	fmt.Fprintf(&b, "  analytical period bound (MCR): %.2f\n", mcr)
	return b.String(), nil
}

// CapacityMinimization certifies the Fig. 8 buffer totals: per-edge binary
// search under back-pressured bounded-buffer execution finds the smallest
// capacities that still complete the iteration, and their sum equals the
// paper's analytic 3 + β(12N+L).
func CapacityMinimization() (string, error) { return CapacityMinimizationParallel(1) }

// CapacityMinimizationParallel fans the feasibility probes of the binary
// search out over up to parallel pooled simulators (speculative bisection:
// identical capacities whatever the worker count).
func CapacityMinimizationParallel(parallel int) (string, error) {
	params := apps.OFDMParams{Beta: 4, M: 4, N: 64, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		return "", err
	}
	cfg := sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide}
	caps, ref, err := sim.MinimalCapacitiesRef(cfg, parallel)
	if err != nil {
		return "", err
	}
	var rows [][]string
	var total int64
	for ei, e := range g.Edges {
		src, dst := g.Nodes[e.Src].Name, g.Nodes[e.Dst].Name
		rows = append(rows, []string{
			e.Name, src + "->" + dst,
			itoa(ref.HighWater[ei]), itoa(caps[ei]),
		})
		total += caps[ei]
	}
	var b strings.Builder
	b.WriteString("EXT-A8: per-edge minimum buffer capacities (OFDM, β=4, N=64, QAM)\n")
	b.WriteString(trace.Table([]string{"edge", "route", "observed max", "minimal capacity"}, rows))
	fmt.Fprintf(&b, "  total minimal capacity: %d (paper formula 3+β(12N+L) = %d)\n",
		total, apps.PaperTPDFBuffer(params))
	return b.String(), nil
}

// FMRadioComparison is the §V StreamIt observation made concrete: the
// FM-radio pipeline with TPDF band selection against the CSDF version that
// must compute every band.
func FMRadioComparison() (string, error) { return FMRadioComparisonParallel(1) }

// FMRadioComparisonParallel runs the CSDF baseline and the TPDF band
// selection on separate workers.
func FMRadioComparisonParallel(parallel int) (string, error) {
	var cres, tres *sim.Result
	runs := []func() error{
		func() error {
			var err error
			cres, err = sim.Run(sim.Config{Graph: apps.FMRadioCSDF()})
			return err
		},
		func() error {
			tg := apps.FMRadioTPDF()
			decide, err := apps.FMRadioSelectBand(tg, 1)
			if err != nil {
				return err
			}
			tres, err = sim.Run(sim.Config{Graph: tg, Decide: decide})
			return err
		},
	}
	if err := pool.Run(len(runs), parallel, func(i int) error { return runs[i]() }); err != nil {
		return "", err
	}
	var totalFiringsCSDF, totalFiringsTPDF int64
	for _, f := range cres.Firings {
		totalFiringsCSDF += f
	}
	for _, f := range tres.Firings {
		totalFiringsTPDF += f
	}
	var b strings.Builder
	b.WriteString("EXT-A3: FM radio (StreamIt-style), CSDF vs TPDF band selection\n")
	b.WriteString(trace.Table(
		[]string{"model", "total buffer", "total firings", "completion time"},
		[][]string{
			{"CSDF (all bands)", itoa(cres.TotalBuffer()), itoa(totalFiringsCSDF), itoa(cres.Time)},
			{"TPDF (1 band)", itoa(tres.TotalBuffer()), itoa(totalFiringsTPDF), itoa(tres.Time)},
		}))
	fmt.Fprintf(&b, "  redundant work removed: %d firings, %d buffer slots\n",
		totalFiringsCSDF-totalFiringsTPDF, cres.TotalBuffer()-tres.TotalBuffer())
	return b.String(), nil
}
