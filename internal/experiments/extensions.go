package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/imaging"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
	"repro/internal/trace"
)

// fig2Instance instantiates Fig. 2, builds its canonical period and control
// flags; shared by the scheduling experiments.
func fig2Instance(p int64) (*csdf.Graph, *csdf.Precedence, []bool, error) {
	g := apps.Fig2()
	cg, low, err := g.Instantiate(symb.Env{"p": p})
	if err != nil {
		return nil, nil, nil, err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, nil, nil, err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return nil, nil, nil, err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 { // core.KindControl
			isCtl[low.ActorOf[id]] = true
		}
	}
	return cg, prec, isCtl, nil
}

// ScheduleAblation measures the §III-D control-priority rule: makespan of
// the Fig. 2 canonical period with and without the rule, across PE counts.
func ScheduleAblation() (string, error) {
	cg, prec, isCtl, err := fig2Instance(16)
	if err != nil {
		return "", err
	}
	var rows [][]string
	for _, pes := range []int{2, 4, 8} {
		var spans [2]int64
		for i, rule := range []bool{true, false} {
			opts := sched.Options{
				Platform:        platform.Simple(pes),
				ControlPriority: rule,
				IsControl:       isCtl,
			}
			res, err := sched.ListSchedule(cg, prec, opts)
			if err != nil {
				return "", err
			}
			if err := sched.Verify(cg, prec, opts, res); err != nil {
				return "", err
			}
			spans[i] = res.Makespan
		}
		rows = append(rows, []string{
			fmt.Sprint(pes), fmt.Sprint(spans[0]), fmt.Sprint(spans[1]),
		})
	}
	var b strings.Builder
	b.WriteString("EXT-A1: control-priority scheduling rule ablation (Fig. 2, p=16)\n")
	b.WriteString(trace.Table([]string{"PEs", "makespan (rule on)", "makespan (rule off)"}, rows))
	return b.String(), nil
}

// PlatformSweep schedules the Fig. 2 canonical period over growing slices
// of the MPPA-256 and reports the makespan curve — the §III-D scalability
// story on the paper's target machine.
func PlatformSweep() (string, error) {
	cg, prec, isCtl, err := fig2Instance(64)
	if err != nil {
		return "", err
	}
	mppa := platform.MPPA256()
	var rows [][]string
	var prev int64
	for _, pes := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		opts := sched.Options{
			Platform:        mppa,
			PEs:             pes,
			ControlPriority: true,
			IsControl:       isCtl,
		}
		res, err := sched.ListSchedule(cg, prec, opts)
		if err != nil {
			return "", err
		}
		speedup := "-"
		if prev > 0 {
			speedup = fmt.Sprintf("%.2f", float64(prev)/float64(res.Makespan))
		} else {
			prev = res.Makespan
		}
		rows = append(rows, []string{
			fmt.Sprint(pes), fmt.Sprint(res.Makespan),
			fmt.Sprintf("%.2f", res.Utilization()), speedup,
		})
	}
	var b strings.Builder
	b.WriteString("EXT-A2: MPPA-256 platform sweep (Fig. 2, p=64, canonical period)\n")
	b.WriteString(trace.Table([]string{"PEs", "makespan", "utilization", "speedup vs 1PE"}, rows))
	return b.String(), nil
}

// ADFPruning measures the Actor Dependence Function rule (§III-D): when the
// OFDM transaction's mode rejects the QPSK branch, the firings feeding it
// are cancelled, shrinking the canonical period and its makespan.
func ADFPruning() (string, error) {
	params := apps.OFDMParams{Beta: 4, M: 4, N: 32, L: 1}
	g := apps.OFDMTPDF(params)
	cg, low, err := g.Instantiate(symb.Env(params.Env()))
	if err != nil {
		return "", err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return "", err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return "", err
	}
	// The rejected edges under QAM mode: DUP->QPSK and QPSK->TRAN.
	rejected := map[int]bool{}
	for ei, e := range g.Edges {
		src := g.Nodes[e.Src].Name
		dst := g.Nodes[e.Dst].Name
		if (src == "DUP" && dst == "QPSK") || (src == "QPSK" && dst == "TRAN") {
			rejected[low.EdgeOf[ei]] = true
		}
	}
	keep := func(actor int) bool {
		switch cg.Actors[actor].Name {
		case "SNK", "TRAN", "CON":
			return true
		}
		return false
	}
	pruned, _ := sched.PruneForModes(cg, prec, sol, rejected, keep)

	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 {
			isCtl[low.ActorOf[id]] = true
		}
	}
	opts := sched.Options{Platform: platform.Simple(4), ControlPriority: true, IsControl: isCtl}
	fullRes, err := sched.ListSchedule(cg, prec, opts)
	if err != nil {
		return "", err
	}
	prunedRes, err := sched.ListSchedule(cg, pruned, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXT-A4: Actor Dependence Function pruning (OFDM, QAM mode)\n")
	b.WriteString(trace.Table(
		[]string{"period", "firings", "makespan"},
		[][]string{
			{"full graph", fmt.Sprint(prec.N()), fmt.Sprint(fullRes.Makespan)},
			{"ADF-pruned", fmt.Sprint(pruned.N()), fmt.Sprint(prunedRes.Makespan)},
		}))
	fmt.Fprintf(&b, "  firings cancelled: %d (the QPSK branch)\n", prec.N()-pruned.N())
	return b.String(), nil
}

// AVCQualityThreshold reproduces the §V AVC-encoder improvement: two real
// motion searches (exhaustive vs three-step, from internal/imaging) race
// under frame deadlines; the transaction commits the best finished result.
func AVCQualityThreshold() (string, error) {
	// Quality ground truth from the real searches on a known shift.
	ref := imaging.Synthetic(128, 128, 7)
	cur := imaging.Shift(ref, 3, 2)
	fullSAD := imaging.EstimateFrame(cur, ref, 16, 7, imaging.FullSearch)
	tssSAD := imaging.EstimateFrame(cur, ref, 16, 7, imaging.ThreeStepSearch)

	var rows [][]string
	for _, deadline := range []int64{30, 80} {
		app := apps.MotionEstimation(deadline, 60 /*full*/, 15 /*tss*/)
		res, err := sim.Run(sim.Config{
			Graph:  app.Graph,
			Decide: app.DeadlineDecide(),
			Record: true,
		})
		if err != nil {
			return "", err
		}
		chosen := "(none)"
		for _, ev := range res.Events {
			if ev.Node == "TRAN" && len(ev.Selected) == 1 {
				chosen = app.SearchFor(ev.Selected[0])
			}
		}
		quality := fmt.Sprint(tssSAD)
		if chosen == "ME_FULL" {
			quality = fmt.Sprint(fullSAD)
		}
		rows = append(rows, []string{fmt.Sprint(deadline), chosen, quality})
	}
	var b strings.Builder
	b.WriteString("EXT-A5: AVC motion-vector quality threshold (§V)\n")
	b.WriteString(trace.Table([]string{"frame budget (ms)", "committed search", "residual SAD"}, rows))
	fmt.Fprintf(&b, "  real search quality: full %d <= three-step %d (lower is better)\n",
		fullSAD, tssSAD)
	return b.String(), nil
}

// ThroughputValidation cross-checks the analytical maximum-cycle-ratio
// period bound against the steady-state iteration period measured by the
// discrete-event simulator, for pipelines and feedback graphs. Unbounded
// self-timed execution must converge to the MCR.
func ThroughputValidation() (string, error) {
	type tcase struct {
		name  string
		graph *core.Graph
	}
	pipe := core.NewGraph("pipe")
	{
		a := pipe.AddKernel("a", 2)
		b := pipe.AddKernel("b", 5)
		c := pipe.AddKernel("c", 3)
		if _, err := pipe.Connect(a, "[1]", b, "[1]", 0); err != nil {
			return "", err
		}
		if _, err := pipe.Connect(b, "[1]", c, "[1]", 0); err != nil {
			return "", err
		}
	}
	loop := core.NewGraph("loop")
	{
		a := loop.AddKernel("a", 4)
		b := loop.AddKernel("b", 6)
		if _, err := loop.Connect(a, "[1]", b, "[1]", 0); err != nil {
			return "", err
		}
		if _, err := loop.Connect(b, "[1]", a, "[1]", 1); err != nil {
			return "", err
		}
	}
	var rows [][]string
	for _, tc := range []tcase{{"3-stage pipeline", pipe}, {"feedback loop", loop}, {"Fig. 2 (p=2)", apps.Fig2()}} {
		cg, _, err := tc.graph.Instantiate(symb.Env{"p": 2})
		if err != nil {
			return "", err
		}
		sol, err := cg.RepetitionVector()
		if err != nil {
			return "", err
		}
		mcr, err := cg.MaxCycleRatio(sol, 1e-6)
		if err != nil {
			return "", err
		}
		measured, err := sim.IterationPeriod(sim.Config{Graph: tc.graph, Env: symb.Env{"p": 2}}, 8, 16)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			tc.name, fmt.Sprintf("%.2f", mcr), fmt.Sprintf("%.2f", measured),
		})
	}
	var b strings.Builder
	b.WriteString("EXT-A6: analytical period bound (max cycle ratio) vs simulation\n")
	b.WriteString(trace.Table([]string{"graph", "MCR bound", "simulated period"}, rows))
	return b.String(), nil
}

// PipelinedScheduling schedules k unfolded iterations of the Fig. 2 graph
// (cross-period dependences included) and reports makespan per iteration:
// software pipelining across canonical periods approaches the analytical
// MCR bound.
func PipelinedScheduling() (string, error) {
	g := apps.Fig2()
	cg, low, err := g.Instantiate(symb.Env{"p": 4})
	if err != nil {
		return "", err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return "", err
	}
	mcr, err := cg.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		return "", err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 {
			isCtl[low.ActorOf[id]] = true
		}
	}
	var rows [][]string
	for _, k := range []int64{1, 2, 4, 8} {
		prec, err := cg.UnfoldPrecedence(sol, k)
		if err != nil {
			return "", err
		}
		opts := sched.Options{Platform: platform.Simple(8), ControlPriority: true, IsControl: isCtl}
		res, err := sched.ListSchedule(cg, prec, opts)
		if err != nil {
			return "", err
		}
		if err := sched.Verify(cg, prec, opts, res); err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(res.Makespan),
			fmt.Sprintf("%.2f", float64(res.Makespan)/float64(k)),
		})
	}
	var b strings.Builder
	b.WriteString("EXT-A7: pipelined scheduling across canonical periods (Fig. 2, p=4, 8 PEs)\n")
	b.WriteString(trace.Table([]string{"unfold k", "makespan", "makespan / iteration"}, rows))
	fmt.Fprintf(&b, "  analytical period bound (MCR): %.2f\n", mcr)
	return b.String(), nil
}

// CapacityMinimization certifies the Fig. 8 buffer totals: per-edge binary
// search under back-pressured bounded-buffer execution finds the smallest
// capacities that still complete the iteration, and their sum equals the
// paper's analytic 3 + β(12N+L).
func CapacityMinimization() (string, error) {
	params := apps.OFDMParams{Beta: 4, M: 4, N: 64, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		return "", err
	}
	cfg := sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide}
	caps, err := sim.MinimalCapacities(cfg)
	if err != nil {
		return "", err
	}
	ref, err := sim.Run(cfg)
	if err != nil {
		return "", err
	}
	var rows [][]string
	var total int64
	for ei, e := range g.Edges {
		src, dst := g.Nodes[e.Src].Name, g.Nodes[e.Dst].Name
		rows = append(rows, []string{
			e.Name, src + "->" + dst,
			fmt.Sprint(ref.HighWater[ei]), fmt.Sprint(caps[ei]),
		})
		total += caps[ei]
	}
	var b strings.Builder
	b.WriteString("EXT-A8: per-edge minimum buffer capacities (OFDM, β=4, N=64, QAM)\n")
	b.WriteString(trace.Table([]string{"edge", "route", "observed max", "minimal capacity"}, rows))
	fmt.Fprintf(&b, "  total minimal capacity: %d (paper formula 3+β(12N+L) = %d)\n",
		total, apps.PaperTPDFBuffer(params))
	return b.String(), nil
}

// FMRadioComparison is the §V StreamIt observation made concrete: the
// FM-radio pipeline with TPDF band selection against the CSDF version that
// must compute every band.
func FMRadioComparison() (string, error) {
	cg := apps.FMRadioCSDF()
	cres, err := sim.Run(sim.Config{Graph: cg})
	if err != nil {
		return "", err
	}
	tg := apps.FMRadioTPDF()
	decide, err := apps.FMRadioSelectBand(tg, 1)
	if err != nil {
		return "", err
	}
	tres, err := sim.Run(sim.Config{Graph: tg, Decide: decide})
	if err != nil {
		return "", err
	}
	var totalFiringsCSDF, totalFiringsTPDF int64
	for _, f := range cres.Firings {
		totalFiringsCSDF += f
	}
	for _, f := range tres.Firings {
		totalFiringsTPDF += f
	}
	var b strings.Builder
	b.WriteString("EXT-A3: FM radio (StreamIt-style), CSDF vs TPDF band selection\n")
	b.WriteString(trace.Table(
		[]string{"model", "total buffer", "total firings", "completion time"},
		[][]string{
			{"CSDF (all bands)", fmt.Sprint(cres.TotalBuffer()), fmt.Sprint(totalFiringsCSDF), fmt.Sprint(cres.Time)},
			{"TPDF (1 band)", fmt.Sprint(tres.TotalBuffer()), fmt.Sprint(totalFiringsTPDF), fmt.Sprint(tres.Time)},
		}))
	fmt.Fprintf(&b, "  redundant work removed: %d firings, %d buffer slots\n",
		totalFiringsCSDF-totalFiringsTPDF, cres.TotalBuffer()-tres.TotalBuffer())
	return b.String(), nil
}
