// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function produces the textual equivalent of one paper
// artifact (EXP-F1 … EXP-F8 in DESIGN.md) and is driven both by the
// tpdf-bench command and by the repository's root benchmarks, so the same
// code path backs interactive reproduction and performance measurement.
package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/imaging"
	"repro/internal/platform"
	"repro/internal/pool"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
	"repro/internal/trace"
)

// Options configures the experiment harness.
type Options struct {
	// Quick selects reduced image sizes and shorter sweeps.
	Quick bool
	// Measure times the real edge detectors in the T6 table. Disable it to
	// make every experiment's output deterministic (the differential
	// parallel-vs-sequential tests rely on this).
	Measure bool
	// Parallel is the worker budget for the parameter-grid sweeps and the
	// cross-experiment fan-out; values below 2 run everything sequentially.
	// Output is byte-identical whatever the value: every sweep writes its
	// results by grid index and joins them in sequential order.
	Parallel int
}

// itoa renders an int64 for table rows without fmt's reflection overhead
// (these show up in the a2/a5/t6 sweep profiles).
func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// ftoa renders a float with 2 decimals, the tables' standard precision.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// F1 reproduces Fig. 1: the CSDF example's repetition vector and schedule.
func F1() (string, error) {
	g := apps.Fig1CSDF()
	sol, err := g.RepetitionVector()
	if err != nil {
		return "", err
	}
	s, err := g.BuildSchedule(sol, csdf.RunLength)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXP-F1 (Fig. 1): CSDF example\n")
	fmt.Fprintf(&b, "  repetition vector q = %v (paper: [3 2 2])\n", sol.Q)
	fmt.Fprintf(&b, "  schedule           = %s (paper: (a3)^2(a1)^3(a2)^2)\n", s.Format(g))
	ok, err := g.ReturnsToInitial(sol, csdf.RunLength)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  returns to initial state: %v\n", ok)
	return b.String(), nil
}

// F2 reproduces Fig. 2 and Examples 1-3: the symbolic repetition vector,
// the control area of C, its local solution and rate safety.
func F2() (string, error) {
	g := apps.Fig2()
	rep := analysis.Analyze(g)
	if rep.Err != nil {
		return "", rep.Err
	}
	var b strings.Builder
	b.WriteString("EXP-F2 (Fig. 2, Examples 1-3): TPDF running example\n")
	fmt.Fprintf(&b, "  q = %s (paper: [2, 2p, p, p, 2p, 2p] + sink)\n", rep.Solution.QString())
	fmt.Fprintf(&b, "  schedule: %s\n", rep.Solution.ScheduleString())
	for _, s := range rep.Safety {
		name := g.Nodes[s.Ctrl].Name
		fmt.Fprintf(&b, "  Area(%s) = {%s} (paper: {B,D,E,F})\n", name,
			strings.Join(analysis.Names(g, s.Area.Members), ","))
		if s.Local != nil {
			fmt.Fprintf(&b, "  qG = %s, local solution %s (paper: B^2 C D E^2 F^2 with qG = p)\n",
				s.Local.QG, s.Local.LocalString(g))
		}
		fmt.Fprintf(&b, "  rate safe: %v\n", s.Err == nil)
	}
	fmt.Fprintf(&b, "  bounded: %v\n", rep.Bounded)
	return b.String(), nil
}

// F3 reproduces Fig. 3: virtualizing a Select-duplicate's output choice
// preserves consistency and boundedness.
func F3() (string, error) {
	g, sel, ends, err := buildFig3()
	if err != nil {
		return "", err
	}
	before := analysis.Analyze(g)
	vc, vt, err := g.VirtualizeSelectDuplicate(sel, ends)
	if err != nil {
		return "", err
	}
	after := analysis.Analyze(g)
	var b strings.Builder
	b.WriteString("EXP-F3 (Fig. 3): Select-duplicate virtualization\n")
	fmt.Fprintf(&b, "  before: consistent=%v bounded=%v\n", before.Consistent, before.Bounded)
	fmt.Fprintf(&b, "  added virtual control %q and transaction %q\n",
		g.Nodes[vc].Name, g.Nodes[vt].Name)
	fmt.Fprintf(&b, "  after:  consistent=%v bounded=%v (boundedness preserved: %v)\n",
		after.Consistent, after.Bounded, before.Bounded == after.Bounded)
	return b.String(), nil
}

// buildFig3 constructs the Fig. 3 left-hand graph: A feeds a
// Select-duplicate B whose branches end at D and E.
func buildFig3() (*core.Graph, core.NodeID, []core.NodeID, error) {
	g := core.NewGraph("fig3")
	a := g.AddKernel("A", 1)
	bsel := g.AddSelectDuplicate("B", 1)
	d := g.AddKernel("D", 1)
	e := g.AddKernel("E", 1)
	if _, err := g.Connect(a, "[1]", bsel, "[1]", 0); err != nil {
		return nil, 0, nil, err
	}
	if _, err := g.Connect(bsel, "[1]", d, "[1]", 0); err != nil {
		return nil, 0, nil, err
	}
	if _, err := g.Connect(bsel, "[1]", e, "[1]", 0); err != nil {
		return nil, 0, nil, err
	}
	return g, bsel, []core.NodeID{d, e}, nil
}

// F4 reproduces Fig. 4: liveness by clustering, including the late schedule.
func F4() (string, error) {
	var b strings.Builder
	b.WriteString("EXP-F4 (Fig. 4): liveness by cycle clustering\n")
	for _, c := range []struct {
		name  string
		build func() *core.Graph
		note  string
	}{
		{"4a", apps.Fig4a, "expect live, local (B B C C), clustered A^2 (B B C C)^p"},
		{"4b", apps.Fig4b, "expect live via late schedule (B C C B)"},
		{"deadlocked", apps.Fig4Deadlocked, "expect deadlock"},
	} {
		g := c.build()
		sol, err := analysis.Consistency(g)
		if err != nil {
			return "", err
		}
		rep, err := analysis.Liveness(g, sol)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %s (%s):\n", c.name, c.note)
		for i := range rep.Cycles {
			cyc := &rep.Cycles[i]
			if cyc.Live {
				fmt.Fprintf(&b, "    cycle {%s}: live, local %s, qG = %s\n",
					strings.Join(analysis.Names(g, cyc.Members), ","),
					cyc.LocalString(g), cyc.QG)
			} else {
				fmt.Fprintf(&b, "    cycle {%s}: DEADLOCK\n",
					strings.Join(analysis.Names(g, cyc.Members), ","))
			}
		}
		if rep.Live {
			fmt.Fprintf(&b, "    clustered schedule: %s\n",
				analysis.ClusteredScheduleString(g, sol, rep))
		}
	}
	return b.String(), nil
}

// F5 reproduces Fig. 5: the canonical period of the Fig. 2 graph at p=1,
// list-scheduled with the control actor at highest priority.
func F5() (string, error) {
	g := apps.Fig2()
	cg, low, err := g.Instantiate(symb.Env{"p": 1})
	if err != nil {
		return "", err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return "", err
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		return "", err
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 {
			isCtl[low.ActorOf[id]] = true
		}
	}
	opts := sched.Options{Platform: platform.Simple(4), ControlPriority: true, IsControl: isCtl}
	res, err := sched.ListSchedule(cg, prec, opts)
	if err != nil {
		return "", err
	}
	if err := sched.Verify(cg, prec, opts, res); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("EXP-F5 (Fig. 5): canonical period at p=1\n")
	fmt.Fprintf(&b, "  firings: %d (paper shows A1 A2 B1 B2 C1 D1 E1 E2 F1 F2 + sink)\n", prec.N())
	items := make([]trace.GanttItem, 0, len(res.Items))
	for u := range res.Items {
		f := prec.Firings[u]
		items = append(items, trace.GanttItem{
			Lane:  res.Items[u].PE,
			Label: cg.Actors[f.Actor].Name + itoa(f.K+1),
			Start: res.Items[u].Start,
			End:   res.Items[u].End,
		})
	}
	b.WriteString(trace.Gantt(items, 64))
	fmt.Fprintf(&b, "  makespan %d, utilization %.2f\n", res.Makespan, res.Utilization())
	return b.String(), nil
}

// F6Table reproduces the Fig. 6 table: edge-detector execution times. With
// measure=true the four real detectors run on a size×size synthetic scene —
// each internally row-sharded across imaging.Parallelism workers, so the
// measured wall-clock times reflect the parallel pixel kernels; the paper's
// published times are printed alongside.
func F6Table(size int, measure bool) (string, error) {
	var rows [][]string
	im := imaging.Synthetic(size, size, 1)
	for _, d := range imaging.Detectors() {
		measured := "-"
		if measure {
			start := time.Now()
			d.Run(im)
			measured = strconv.FormatFloat(float64(time.Since(start).Microseconds())/1000.0, 'f', 1, 64)
		}
		rows = append(rows, []string{
			d.Name,
			itoa(apps.PaperDetectorTimes[d.Name]),
			measured,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-T6 (Fig. 6 table): edge detector times, %dx%d image\n", size, size)
	b.WriteString(trace.Table(
		[]string{"Method", "Paper ms (i3@2.53GHz)", "Measured ms (this host)"}, rows))
	b.WriteString("  expected shape: QMask < Sobel ≈ Prewitt < Canny\n")
	return b.String(), nil
}

// F6Deadline reproduces the Fig. 6 experiment: the Transaction picks the
// best detector finished at each deadline.
func F6Deadline() (string, error) {
	var rows [][]string
	for _, deadline := range []int64{250, 500, 600, 1200} {
		app := apps.EdgeDetection(deadline, nil)
		res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(), Record: true})
		if err != nil {
			return "", err
		}
		chosen := "(none)"
		for _, ev := range res.Events {
			if ev.Node == "Trans" && len(ev.Selected) == 1 {
				chosen = app.DetectorFor(ev.Selected[0])
			}
		}
		rows = append(rows, []string{itoa(deadline), chosen})
	}
	var b strings.Builder
	b.WriteString("EXP-F6 (Fig. 6): deadline-driven selection (clock + transaction)\n")
	b.WriteString(trace.Table([]string{"Deadline (ms)", "Selected"}, rows))
	b.WriteString("  paper's configuration: 500 ms -> best finished method (Sobel)\n")
	return b.String(), nil
}

// F7 reproduces Fig. 7: the OFDM demodulator graph and its full analysis.
func F7() (string, error) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	rep := analysis.Analyze(g)
	if rep.Err != nil {
		return "", rep.Err
	}
	var b strings.Builder
	b.WriteString("EXP-F7 (Fig. 7): OFDM demodulator (cognitive radio)\n")
	b.WriteString(rep.String())
	return b.String(), nil
}

// F8 reproduces Fig. 8: minimum buffer size versus vectorization degree for
// N in {512, 1024}, TPDF against the CSDF baseline, with the paper's
// analytic formulas for comparison.
func F8(betas []int64) (string, error) { return F8Parallel(betas, 1) }

// F8Parallel is F8 with the β×N simulation grid sharded across up to
// parallel workers; the rendered series are byte-identical to F8's.
func F8Parallel(betas []int64, parallel int) (string, error) {
	if len(betas) == 0 {
		betas = []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	var b strings.Builder
	b.WriteString("EXP-F8 (Fig. 8): buffer size vs vectorization degree (M=4, L=1)\n")
	var all []buffer.Point
	for _, n := range []int64{512, 1024} {
		points, err := buffer.OFDMSweepParallel(betas, []int64{n}, 4, 1, parallel)
		if err != nil {
			return "", err
		}
		all = append(all, points...)
		series := map[string][]int64{"TPDF": nil, "CSDF": nil, "paperTPDF": nil, "paperCSDF": nil, "forced": nil}
		for _, p := range points {
			series["TPDF"] = append(series["TPDF"], p.TPDF)
			series["CSDF"] = append(series["CSDF"], p.CSDF)
			series["paperTPDF"] = append(series["paperTPDF"], p.PaperTPDF)
			series["paperCSDF"] = append(series["paperCSDF"], p.PaperCSDF)
			series["forced"] = append(series["forced"], p.Forced)
		}
		fmt.Fprintf(&b, "N = %d:\n", n)
		b.WriteString(trace.Series("beta", betas, series,
			[]string{"TPDF", "CSDF", "paperTPDF", "paperCSDF", "forced"}))
	}
	fmt.Fprintf(&b, "mean improvement TPDF vs CSDF: %.1f%% (paper: 29%%)\n",
		100*buffer.MeanImprovement(all))
	return b.String(), nil
}

// All runs every experiment in paper order. quickImage shrinks the Fig. 6
// measurement image so the full suite stays fast.
func All(quickImage bool) (string, error) {
	return AllOpts(Options{Quick: quickImage, Measure: true, Parallel: 1})
}

// Steps returns every experiment as a (name, generator) list in paper
// order, configured by opts. The harness drives this both sequentially and
// fanned out across a worker pool.
func Steps(opts Options) []struct {
	Name string
	Run  func() (string, error)
} {
	size := 1024
	if opts.Quick {
		size = 256
	}
	p := opts.Parallel
	return []struct {
		Name string
		Run  func() (string, error)
	}{
		{"f1", F1}, {"f2", F2}, {"f3", F3}, {"f4", F4}, {"f5", F5},
		{"t6", func() (string, error) { return F6Table(size, opts.Measure) }},
		{"f6", F6Deadline}, {"f7", F7},
		{"f8", func() (string, error) { return F8Parallel([]int64{10, 30, 50, 70, 100}, p) }},
		{"a1", func() (string, error) { return ScheduleAblationParallel(p) }},
		{"a2", func() (string, error) { return PlatformSweepParallel(p) }},
		{"a3", func() (string, error) { return FMRadioComparisonParallel(p) }},
		{"a4", ADFPruning},
		{"a5", func() (string, error) { return AVCQualityThresholdParallel(p) }},
		{"a6", func() (string, error) { return ThroughputValidationParallel(p) }},
		{"a7", func() (string, error) { return PipelinedSchedulingParallel(p) }},
		{"a8", func() (string, error) { return CapacityMinimizationParallel(p) }},
	}
}

// AllOpts runs every experiment in paper order under the given options.
// With Parallel > 1 the experiments execute concurrently on a bounded
// worker pool (each sweep additionally sharding its own parameter grid)
// and the outputs are joined in paper order, so the rendering matches a
// sequential run byte for byte as long as Measure is off. On error the
// outputs of the experiments preceding the failed one are returned.
func AllOpts(opts Options) (string, error) {
	imaging.SetParallelism(opts.Parallel)
	steps := Steps(opts)
	outs := make([]string, len(steps))
	errs := make([]error, len(steps))
	pool.Run(len(steps), opts.Parallel, func(i int) error {
		outs[i], errs[i] = steps[i].Run()
		return nil
	})
	var b strings.Builder
	for i := range steps {
		if errs[i] != nil {
			return b.String(), errs[i]
		}
		b.WriteString(outs[i])
		b.WriteByte('\n')
	}
	return b.String(), nil
}
