// Package faultinject is the deterministic fault-injection plane behind
// the engine's chaos testing: a Plan holds a fixed schedule of faults
// (behavior panics, firing delays, rebind-validation failures) keyed to
// named injection sites, built either explicitly or from a seed. Because
// the schedule is data, not randomness consulted at fire time, the same
// Plan replayed against the same graph produces the same fault sequence —
// the property the differential recovery tests depend on.
//
// A Plan is single-use: each fault fires exactly once (at the K-th firing
// of its node, or the first rebind at or after iteration K) and is then
// spent. Firing-site lookups are coordinated per node by the single actor
// goroutine that owns the node, and rebind lookups by the engine's main
// goroutine, so no locking is needed beyond what the engine already
// provides; engine restarts are sequential on the supervisor goroutine.
package faultinject

import (
	"math/rand"
	"sort"
	"time"
)

// Kind classifies a fault.
type Kind uint8

const (
	// KindPanic makes the K-th firing of Node panic inside its behavior.
	KindPanic Kind = iota + 1
	// KindDelay stalls the K-th firing of Node for Delay before it runs.
	KindDelay
	// KindRebindAbort fails rebind validation at the first parameter
	// change at or after iteration K.
	KindRebindAbort
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindRebindAbort:
		return "rebind_abort"
	default:
		return "unknown"
	}
}

// Fault is one scheduled injection. For firing-site kinds (panic, delay)
// Node names the actor and K is the zero-based firing index at which the
// fault triggers; for KindRebindAbort K is the completed-iteration
// threshold and Node is unused.
type Fault struct {
	Kind  Kind
	Node  string
	K     int64
	Delay time.Duration

	done bool
}

// Plan is a schedule of single-shot faults. The zero Plan (and the nil
// Plan) injects nothing.
type Plan struct {
	byNode  map[string][]*Fault
	rebinds []*Fault
}

// New builds a plan from an explicit fault list.
func New(faults ...Fault) *Plan {
	p := &Plan{byNode: make(map[string][]*Fault)}
	for i := range faults {
		f := faults[i]
		switch f.Kind {
		case KindRebindAbort:
			p.rebinds = append(p.rebinds, &f)
		case KindPanic, KindDelay:
			p.byNode[f.Node] = append(p.byNode[f.Node], &f)
		}
	}
	sort.Slice(p.rebinds, func(i, j int) bool { return p.rebinds[i].K < p.rebinds[j].K })
	return p
}

// Spec parameterizes Seeded: how many faults of each kind to scatter over
// which nodes and firing horizon.
type Spec struct {
	// Nodes are the candidate sites for firing faults (behavior nodes).
	Nodes []string
	// Horizon bounds the firing index K (exclusive); min 1.
	Horizon int64
	// Panics, Delays, RebindAborts count faults of each kind.
	Panics       int
	Delays       int
	RebindAborts int
	// MaxDelay bounds injected delay durations (default 1ms).
	MaxDelay time.Duration
}

// Seeded derives a deterministic plan from a seed: the same seed and spec
// always produce the same schedule. Duplicate (node, K) sites are
// deduplicated by re-rolling, so every requested fault lands on a distinct
// firing.
func Seeded(seed int64, spec Spec) *Plan {
	rng := rand.New(rand.NewSource(seed))
	if spec.Horizon < 1 {
		spec.Horizon = 1
	}
	if spec.MaxDelay <= 0 {
		spec.MaxDelay = time.Millisecond
	}
	var faults []Fault
	if len(spec.Nodes) > 0 {
		type site struct {
			node string
			k    int64
		}
		seen := make(map[site]bool)
		pick := func(kind Kind, n int) {
			for i := 0; i < n; i++ {
				var s site
				ok := false
				// Bounded re-roll: with a tiny horizon the distinct sites
				// can run out; give up rather than loop forever.
				for try := 0; try < 64; try++ {
					s = site{spec.Nodes[rng.Intn(len(spec.Nodes))], rng.Int63n(spec.Horizon)}
					if !seen[s] {
						ok = true
						break
					}
				}
				if !ok {
					return
				}
				seen[s] = true
				f := Fault{Kind: kind, Node: s.node, K: s.k}
				if kind == KindDelay {
					f.Delay = time.Duration(1 + rng.Int63n(int64(spec.MaxDelay)))
				}
				faults = append(faults, f)
			}
		}
		pick(KindPanic, spec.Panics)
		pick(KindDelay, spec.Delays)
	}
	for i := 0; i < spec.RebindAborts; i++ {
		faults = append(faults, Fault{Kind: KindRebindAbort, K: rng.Int63n(spec.Horizon)})
	}
	return New(faults...)
}

// Behavior consults the plan at a firing site: node's k-th firing. It
// returns the delay to sleep before the behavior runs (0 for none) and
// whether the firing must panic. Called by the actor goroutine that owns
// node — per-node fault entries are only ever touched by that one
// goroutine (or sequentially across engine restarts).
func (p *Plan) Behavior(node string, k int64) (delay time.Duration, panicNow bool) {
	if p == nil {
		return 0, false
	}
	for _, f := range p.byNode[node] {
		if f.done || f.K != k {
			continue
		}
		f.done = true
		if f.Kind == KindPanic {
			return 0, true
		}
		return f.Delay, false
	}
	return 0, false
}

// RebindFault consults the plan at a rebind boundary, after completed
// iterations: the first pending rebind-abort fault with K <= completed is
// consumed and true returned. Called by the engine's main goroutine only.
func (p *Plan) RebindFault(completed int64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.rebinds {
		if !f.done && f.K <= completed {
			f.done = true
			return true
		}
	}
	return false
}

// Injected counts faults that have fired so far.
func (p *Plan) Injected() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, fs := range p.byNode {
		for _, f := range fs {
			if f.done {
				n++
			}
		}
	}
	for _, f := range p.rebinds {
		if f.done {
			n++
		}
	}
	return n
}

// Pending counts faults not yet fired.
func (p *Plan) Pending() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, fs := range p.byNode {
		n += len(fs)
	}
	return n + len(p.rebinds) - p.Injected()
}
