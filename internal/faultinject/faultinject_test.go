package faultinject

import (
	"testing"
	"time"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if d, pn := p.Behavior("x", 0); d != 0 || pn {
		t.Fatalf("nil plan injected d=%v panic=%v", d, pn)
	}
	if p.RebindFault(100) {
		t.Fatal("nil plan injected rebind fault")
	}
	if p.Injected() != 0 || p.Pending() != 0 {
		t.Fatal("nil plan has counts")
	}
}

func TestExplicitFaultsFireOnce(t *testing.T) {
	p := New(
		Fault{Kind: KindPanic, Node: "a", K: 3},
		Fault{Kind: KindDelay, Node: "a", K: 5, Delay: time.Microsecond},
		Fault{Kind: KindRebindAbort, K: 2},
	)
	if p.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", p.Pending())
	}
	for k := int64(0); k < 10; k++ {
		d, pn := p.Behavior("a", k)
		switch k {
		case 3:
			if !pn {
				t.Fatalf("firing %d: want panic", k)
			}
		case 5:
			if d != time.Microsecond || pn {
				t.Fatalf("firing %d: d=%v panic=%v", k, d, pn)
			}
		default:
			if d != 0 || pn {
				t.Fatalf("firing %d: unexpected fault", k)
			}
		}
	}
	// Second pass over the same indices: all spent.
	if _, pn := p.Behavior("a", 3); pn {
		t.Fatal("panic fault fired twice")
	}
	if p.RebindFault(1) {
		t.Fatal("rebind fault fired below threshold")
	}
	if !p.RebindFault(2) {
		t.Fatal("rebind fault did not fire at threshold")
	}
	if p.RebindFault(2) {
		t.Fatal("rebind fault fired twice")
	}
	if p.Injected() != 3 || p.Pending() != 0 {
		t.Fatalf("injected=%d pending=%d, want 3/0", p.Injected(), p.Pending())
	}
}

func TestSeededDeterministic(t *testing.T) {
	spec := Spec{Nodes: []string{"a", "b", "c"}, Horizon: 100, Panics: 2, Delays: 3, RebindAborts: 1}
	p1 := Seeded(42, spec)
	p2 := Seeded(42, spec)
	// Replaying the same firing schedule against both plans must observe
	// identical faults.
	for k := int64(0); k < 100; k++ {
		for _, n := range spec.Nodes {
			d1, pn1 := p1.Behavior(n, k)
			d2, pn2 := p2.Behavior(n, k)
			if d1 != d2 || pn1 != pn2 {
				t.Fatalf("node %s firing %d diverged: (%v,%v) vs (%v,%v)", n, k, d1, pn1, d2, pn2)
			}
		}
		if p1.RebindFault(k) != p2.RebindFault(k) {
			t.Fatalf("rebind fault diverged at %d", k)
		}
	}
	if p1.Injected() != 6 {
		t.Fatalf("injected = %d, want 6", p1.Injected())
	}
}

func TestSeededDistinctSites(t *testing.T) {
	p := Seeded(7, Spec{Nodes: []string{"a"}, Horizon: 10, Panics: 4, Delays: 4})
	fired := 0
	for k := int64(0); k < 10; k++ {
		d, pn := p.Behavior("a", k)
		if d != 0 || pn {
			fired++
		}
	}
	if fired != 8 {
		t.Fatalf("fired = %d, want 8 distinct sites", fired)
	}
}

func TestSeededTinyHorizonGivesUp(t *testing.T) {
	// 1 node x horizon 2 = 2 distinct sites; asking for 10 faults must not
	// hang and must yield at most 2.
	p := Seeded(1, Spec{Nodes: []string{"a"}, Horizon: 2, Panics: 10})
	if p.Pending() > 2 {
		t.Fatalf("pending = %d, want <= 2", p.Pending())
	}
}
