package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/symb"
)

// SafetyResult records the rate-safety check of one control actor.
type SafetyResult struct {
	Ctrl  core.NodeID
	Area  *Area
	Local *Local
	Err   error // nil when the control actor is rate safe
}

// RateSafety checks Definition 5 for every control actor: during one local
// iteration of its area, the control actor fires exactly once, i.e. for each
// actor a ∈ prec(g) ∪ succ(g) connected to g by edge e,
//
//	X_g(1) = Y_a(qL_a)   if g produces on e
//	Y_g(1) = X_a(qL_a)   if g consumes from e
//
// The cumulative rates over the (possibly symbolic) local counts are
// evaluated symbolically; sequences that cannot be summed symbolically
// (parametric count not a multiple of the sequence length) are reported as
// unverifiable, which is conservative.
func RateSafety(g *core.Graph, sol *Solution) []SafetyResult {
	var out []SafetyResult
	for id := range g.Nodes {
		if g.Nodes[id].Kind != core.KindControl {
			continue
		}
		ctrl := core.NodeID(id)
		area := ControlArea(g, ctrl)
		res := SafetyResult{Ctrl: ctrl, Area: area}
		if len(area.Members) == 0 {
			res.Err = fmt.Errorf("analysis: control actor %q has an empty area", g.Nodes[id].Name)
			out = append(out, res)
			continue
		}
		local, err := LocalSolution(sol, area.Members)
		if err != nil {
			res.Err = err
			out = append(out, res)
			continue
		}
		res.Local = local
		res.Err = checkCtrlSafety(g, sol, ctrl, local)
		out = append(out, res)
	}
	return out
}

func checkCtrlSafety(g *core.Graph, sol *Solution, ctrl core.NodeID, local *Local) error {
	name := g.Nodes[ctrl].Name
	for _, e := range g.Edges {
		switch {
		case e.Src == ctrl && e.Dst != ctrl:
			// g produces on e: X_g(1) must equal Y_dst(qL_dst).
			xg1 := g.Nodes[ctrl].Ports[e.SrcPort].RateAt(0)
			ql, ok := local.QL[e.Dst]
			if !ok {
				return fmt.Errorf("analysis: %q's successor %q outside its area", name, g.Nodes[e.Dst].Name)
			}
			ya, err := cumSymbolic(g.Nodes[e.Dst].Ports[e.DstPort].Rates, ql)
			if err != nil {
				return fmt.Errorf("analysis: edge %q: %v", e.Name, err)
			}
			if !xg1.Equal(ya) {
				return fmt.Errorf("analysis: rate-unsafe control %q on edge %q: X_%s(1)=%s ≠ Y_%s(%s)=%s",
					name, e.Name, name, xg1, g.Nodes[e.Dst].Name, ql, ya)
			}
		case e.Dst == ctrl && e.Src != ctrl:
			// g consumes from e: Y_g(1) must equal X_src(qL_src).
			yg1 := g.Nodes[ctrl].Ports[e.DstPort].RateAt(0)
			ql, ok := local.QL[e.Src]
			if !ok {
				return fmt.Errorf("analysis: %q's predecessor %q outside its area", name, g.Nodes[e.Src].Name)
			}
			xa, err := cumSymbolic(g.Nodes[e.Src].Ports[e.SrcPort].Rates, ql)
			if err != nil {
				return fmt.Errorf("analysis: edge %q: %v", e.Name, err)
			}
			if !yg1.Equal(xa) {
				return fmt.Errorf("analysis: rate-unsafe control %q on edge %q: Y_%s(1)=%s ≠ X_%s(%s)=%s",
					name, e.Name, name, yg1, g.Nodes[e.Src].Name, ql, xa)
			}
		}
	}
	return nil
}

// cumSymbolic computes the cumulative rate sum of a cyclo-static sequence
// over a symbolic firing count n:
//
//   - concrete n: direct summation;
//   - uniform sequence (all phases equal r): n·r;
//   - n divisible by the sequence length as a polynomial: (n/len)·sum(seq).
func cumSymbolic(seq []symb.Expr, n symb.Expr) (symb.Expr, error) {
	if cnt, ok := n.Int(); ok {
		if cnt < 0 {
			return symb.Expr{}, fmt.Errorf("negative firing count %d", cnt)
		}
		acc := symb.ZeroExpr()
		for k := int64(0); k < cnt; k++ {
			acc = acc.Add(seq[int(k%int64(len(seq)))])
		}
		return acc, nil
	}
	uniform := true
	for i := 1; i < len(seq); i++ {
		if !seq[i].Equal(seq[0]) {
			uniform = false
			break
		}
	}
	if uniform {
		return n.Mul(seq[0]), nil
	}
	reps := n.Div(symb.IntExpr(int64(len(seq))))
	if _, isPoly := reps.IsPoly(); isPoly {
		return reps.Mul(symb.SumExprs(seq)), nil
	}
	return symb.Expr{}, fmt.Errorf("cannot sum %d-phase sequence over symbolic count %s", len(seq), n)
}
