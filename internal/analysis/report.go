package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/symb"
)

// Report aggregates the complete §III analysis chain for a TPDF graph.
type Report struct {
	Graph      *core.Graph
	Solution   *Solution
	Safety     []SafetyResult
	Liveness   *LivenessReport
	Consistent bool
	RateSafe   bool
	Live       bool
	// Bounded is the Theorem 2 verdict: a rate-consistent, safe and live
	// TPDF graph returns to its initial state after each iteration and can
	// be scheduled in bounded memory.
	Bounded bool
	// Err holds the first fatal analysis error (e.g. inconsistency).
	Err error
}

// Analyze runs rate consistency, rate safety and liveness, probing liveness
// at the graph's representative parameter valuations plus any extra
// environments supplied.
func Analyze(g *core.Graph, extraEnvs ...symb.Env) *Report {
	return AnalyzeParallel(g, 1, extraEnvs...)
}

// AnalyzeParallel is Analyze with the concrete liveness probes fanned out
// over up to parallel workers; the symbolic passes (consistency, rate
// safety) are inherently sequential and unchanged.
func AnalyzeParallel(g *core.Graph, parallel int, extraEnvs ...symb.Env) *Report {
	rep := &Report{Graph: g}
	sol, err := Consistency(g)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Solution = sol
	rep.Consistent = true

	rep.Safety = RateSafety(g, sol)
	rep.RateSafe = true
	for _, s := range rep.Safety {
		if s.Err != nil {
			rep.RateSafe = false
		}
	}

	envs := append(probeEnvs(g), extraEnvs...)
	lr, err := LivenessParallel(g, sol, parallel, envs...)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Liveness = lr
	rep.Live = lr.Live

	rep.Bounded = rep.Consistent && rep.RateSafe && rep.Live
	return rep
}

// probeEnvs returns the valuations used for concrete checks: defaults plus
// the declared corners of each parameter range.
func probeEnvs(g *core.Graph) []symb.Env {
	def := g.DefaultEnv()
	if len(g.Params) == 0 {
		return []symb.Env{def}
	}
	lo := symb.Env{}
	hi := symb.Env{}
	for _, p := range g.Params {
		mn := p.Min
		if mn <= 0 {
			mn = 1
		}
		mx := p.Max
		if mx <= 0 {
			mx = mn + 2
		}
		lo[p.Name] = mn
		hi[p.Name] = mx
	}
	return []symb.Env{def, lo, hi}
}

// String renders the full report as the CLI prints it.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPDF analysis of %q\n", r.Graph.Name)
	if r.Err != nil {
		fmt.Fprintf(&b, "  FATAL: %v\n", r.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  consistency: OK, q = %s\n", r.Solution.QString())
	fmt.Fprintf(&b, "  schedule:    %s\n", r.Solution.ScheduleString())
	for _, s := range r.Safety {
		name := r.Graph.Nodes[s.Ctrl].Name
		fmt.Fprintf(&b, "  control %s: area {%s}", name, strings.Join(Names(r.Graph, s.Area.Members), ","))
		if s.Local != nil {
			fmt.Fprintf(&b, ", local %s", s.Local.LocalString(r.Graph))
		}
		if s.Err != nil {
			fmt.Fprintf(&b, " — UNSAFE: %v", s.Err)
		} else {
			b.WriteString(" — rate safe")
		}
		b.WriteByte('\n')
	}
	if r.Liveness != nil {
		if len(r.Liveness.Cycles) == 0 {
			b.WriteString("  liveness:    acyclic — live\n")
		} else {
			for i := range r.Liveness.Cycles {
				c := &r.Liveness.Cycles[i]
				fmt.Fprintf(&b, "  cycle {%s}: ", strings.Join(Names(r.Graph, c.Members), ","))
				if c.Live {
					fmt.Fprintf(&b, "live, local schedule %s\n", c.LocalString(r.Graph))
				} else {
					fmt.Fprintf(&b, "DEADLOCK: %v\n", c.Err)
				}
			}
			fmt.Fprintf(&b, "  clustered:   %s\n", ClusteredScheduleString(r.Graph, r.Solution, r.Liveness))
		}
	}
	verdict := "NOT BOUNDED"
	if r.Bounded {
		verdict = "bounded (Theorem 2: returns to initial state each iteration)"
	}
	fmt.Fprintf(&b, "  boundedness: %s\n", verdict)
	return b.String()
}
