// Package analysis implements the TPDF static analyses of §III:
//
//   - rate consistency (§III-A): the balance equations are solved
//     symbolically over the integer parameters, for the fully-connected
//     graph (ignoring mode-dependent configurations), yielding the
//     parametric repetition vector;
//   - boundedness (§III-B): control areas (Definition 3), local solutions
//     (Definition 4) and rate safety (Definition 5) establish Theorem 2;
//   - liveness (§III-C): cycles are clustered into single actors and checked
//     through local schedules (including the late schedule of Fig. 4b).
//
// Analyze runs the complete chain and produces a Report.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/rat"
	"repro/internal/symb"
)

// Solution is the symbolic consistency result.
type Solution struct {
	Graph *core.Graph
	// Tau is the phase count per node (concrete: sequence lengths are
	// structural, not parametric).
	Tau []int64
	// R is the normalized minimal symbolic solution of the balance
	// equations: cycles per iteration, one entry per node.
	R []symb.Expr
	// Q is the symbolic repetition vector: Q[j] = Tau[j] * R[j] (Theorem 1).
	Q []symb.Expr
}

// Tau computes the phase count of node j: the LCM of the rate-sequence
// lengths over its ports and its execution-time sequence.
func nodeTau(g *core.Graph, j core.NodeID) int64 {
	tau := int64(1)
	merge := func(l int) {
		if l == 0 {
			return
		}
		if v, ok := rat.LCM64(tau, int64(l)); ok {
			tau = v
		}
	}
	merge(len(g.Nodes[j].Exec))
	for _, p := range g.Nodes[j].Ports {
		merge(len(p.Rates))
	}
	return tau
}

// cycleRate returns the symbolic token count transferred through the port
// during one full cycle (tau firings) of its node.
func cycleRate(p *core.Port, tau int64) symb.Expr {
	sum := symb.SumExprs(p.Rates)
	reps := tau / int64(len(p.Rates))
	return sum.ScaleInt(reps)
}

// Consistency checks rate consistency (§III-A) and returns the normalized
// symbolic repetition vector. The system of balance equations must have a
// non-trivial solution for all parameter values; the solution is found by
// spanning-tree propagation with exact rational-function arithmetic and then
// verified on every edge, so inconsistency cannot hide behind normalization.
func Consistency(g *core.Graph) (*Solution, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	sol := &Solution{Graph: g, Tau: make([]int64, n)}
	for j := 0; j < n; j++ {
		sol.Tau[j] = nodeTau(g, core.NodeID(j))
	}

	ratios := make([]symb.Expr, n)
	assigned := make([]bool, n)
	adj := make([][]int, n)
	for ei, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], ei)
		if e.Dst != e.Src {
			adj[e.Dst] = append(adj[e.Dst], ei)
		}
	}

	edgeRates := func(ei int) (prod, cons symb.Expr, err error) {
		e := g.Edges[ei]
		sp := &g.Nodes[e.Src].Ports[e.SrcPort]
		dp := &g.Nodes[e.Dst].Ports[e.DstPort]
		prod = cycleRate(sp, sol.Tau[e.Src])
		cons = cycleRate(dp, sol.Tau[e.Dst])
		if prod.IsZero() || cons.IsZero() {
			return prod, cons, fmt.Errorf("analysis: edge %q has zero cycle rate", e.Name)
		}
		return prod, cons, nil
	}

	for root := 0; root < n; root++ {
		if assigned[root] {
			continue
		}
		ratios[root] = symb.OneExpr()
		assigned[root] = true
		stack := []int{root}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range adj[u] {
				e := g.Edges[ei]
				prod, cons, err := edgeRates(ei)
				if err != nil {
					return nil, err
				}
				var other int
				var val symb.Expr
				if u == int(e.Src) {
					other = int(e.Dst)
					val = ratios[u].Mul(prod).Div(cons)
				} else {
					other = int(e.Src)
					val = ratios[u].Mul(cons).Div(prod)
				}
				if !assigned[other] {
					ratios[other] = val
					assigned[other] = true
					stack = append(stack, other)
				}
			}
		}
	}

	// Verify every edge symbolically: r_src·X_src(τ) == r_dst·Y_dst(τ) must
	// hold as rational functions, i.e. for every parameter value.
	for ei, e := range g.Edges {
		prod, cons, err := edgeRates(ei)
		if err != nil {
			return nil, err
		}
		lhs := ratios[e.Src].Mul(prod)
		rhs := ratios[e.Dst].Mul(cons)
		if !lhs.Equal(rhs) {
			return nil, fmt.Errorf(
				"analysis: rate-inconsistent at edge %q: %s·%s ≠ %s·%s (as functions of %s)",
				e.Name, ratios[e.Src], prod, ratios[e.Dst], cons,
				strings.Join(g.ParamNames(), ","))
		}
	}

	norm, err := symb.NormalizeVector(ratios)
	if err != nil {
		return nil, fmt.Errorf("analysis: normalizing solution: %v", err)
	}
	sol.R = norm
	sol.Q = make([]symb.Expr, n)
	for j := range norm {
		sol.Q[j] = norm[j].ScaleInt(sol.Tau[j])
	}
	return sol, nil
}

// QString renders the symbolic repetition vector, e.g. "[2, 2*p, p, ...]".
func (s *Solution) QString() string {
	parts := make([]string, len(s.Q))
	for j, q := range s.Q {
		parts[j] = q.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// ScheduleString renders a flat symbolic schedule in the paper's notation
// ("A^2 B^2p C^p ..."), using a topological order of the condensed graph so
// producers precede consumers. Nodes inside a cycle are emitted in index
// order within their cluster.
func (s *Solution) ScheduleString() string {
	g := s.Graph
	cond := dataDigraph(g).Condense()
	// cond.Comps is in reverse topological order; walk it backwards.
	var parts []string
	for ci := len(cond.Comps) - 1; ci >= 0; ci-- {
		members := append([]int(nil), cond.Comps[ci]...)
		sortInts(members)
		for _, j := range members {
			q := s.Q[j]
			if q.IsOne() {
				parts = append(parts, g.Nodes[j].Name)
			} else {
				parts = append(parts, fmt.Sprintf("%s^%s", g.Nodes[j].Name, compact(q)))
			}
		}
	}
	return strings.Join(parts, " ")
}

func compact(e symb.Expr) string {
	s := e.String()
	s = strings.ReplaceAll(s, "*", "")
	if strings.ContainsAny(s, " +-/") {
		return "(" + s + ")"
	}
	return s
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EvalQ evaluates the symbolic repetition vector under env, returning
// concrete counts (entries must be positive integers).
func (s *Solution) EvalQ(env symb.Env) ([]int64, error) {
	out := make([]int64, len(s.Q))
	for j, q := range s.Q {
		v, err := q.EvalInt(env, 1)
		if err != nil {
			return nil, fmt.Errorf("analysis: q[%s]: %v", s.Graph.Nodes[j].Name, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("analysis: q[%s] = %d not positive", s.Graph.Nodes[j].Name, v)
		}
		out[j] = v
	}
	return out, nil
}
