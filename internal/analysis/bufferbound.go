package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/symb"
)

// EdgeTraffic returns the symbolic number of tokens transferred over each
// edge during one iteration: r_src · X_src(τ_src), as a function of the
// graph parameters.
func EdgeTraffic(g *core.Graph, sol *Solution) []symb.Expr {
	out := make([]symb.Expr, len(g.Edges))
	for ei, e := range g.Edges {
		sp := &g.Nodes[e.Src].Ports[e.SrcPort]
		out[ei] = sol.R[e.Src].Mul(cycleRate(sp, sol.Tau[e.Src]))
	}
	return out
}

// SymbolicBufferBound derives the per-iteration buffer requirement of the
// graph as a closed-form expression: the sum over the active edges of the
// tokens they carry in one iteration, plus initial tokens on inactive
// edges. For single-appearance pipelines (every actor fires its whole batch
// before the consumer starts, the structure of the paper's Fig. 7) this is
// exactly the minimum buffer size, which is how the paper's Fig. 8 formulas
//
//	TPDF: 3 + β(12N + L)      CSDF: β(17N + L)
//
// arise; the TPDF reproduction test derives both symbolically from the
// graphs. active selects the edges present under the current mode; nil
// means every edge (the CSDF view).
func SymbolicBufferBound(g *core.Graph, sol *Solution, active func(ei int, e *core.Edge) bool) symb.Expr {
	traffic := EdgeTraffic(g, sol)
	total := symb.ZeroExpr()
	for ei := range g.Edges {
		e := g.Edges[ei]
		if active == nil || active(ei, e) {
			total = total.Add(traffic[ei])
			if e.Initial > 0 {
				total = total.Add(symb.IntExpr(e.Initial))
			}
		} else if e.Initial > 0 {
			total = total.Add(symb.IntExpr(e.Initial))
		}
	}
	return total
}

// OFDMActiveEdges returns the edge filter for the Fig. 7 demodulator with
// the given demapping branch selected ("QPSK" or "QAM"): the unchosen
// branch's data edges are absent (§IV-B's removed unused edges).
func OFDMActiveEdges(g *core.Graph, branch string) (func(ei int, e *core.Edge) bool, error) {
	other := "QPSK"
	if branch == "QPSK" {
		other = "QAM"
	} else if branch != "QAM" {
		return nil, fmt.Errorf("analysis: branch %q not QPSK or QAM", branch)
	}
	off, ok := g.NodeByName(other)
	if !ok {
		return nil, fmt.Errorf("analysis: graph has no %s kernel", other)
	}
	return func(ei int, e *core.Edge) bool {
		return e.Src != off && e.Dst != off
	}, nil
}
