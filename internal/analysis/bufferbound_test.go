package analysis

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/symb"
)

// TestFig8FormulasDerivedSymbolically is the strongest form of the Fig. 8
// reproduction: the paper's closed-form buffer formulas fall out of the
// graphs as symbolic expressions, for all parameter values at once.
func TestFig8FormulasDerivedSymbolically(t *testing.T) {
	// TPDF with the QAM branch active (M = 4): 3 + β(12N + L).
	tg := apps.OFDMTPDF(apps.DefaultOFDM())
	sol, err := Consistency(tg)
	if err != nil {
		t.Fatal(err)
	}
	active, err := OFDMActiveEdges(tg, "QAM")
	if err != nil {
		t.Fatal(err)
	}
	got := SymbolicBufferBound(tg, sol, active)
	// The graph's merge stage emits beta*M*N; with QAM selected M = 4.
	want := symb.MustParseExpr("3 + beta*(12*N + L)")
	gotAtM4 := substituteM(t, got, 4)
	if !gotAtM4.Equal(want) {
		t.Errorf("TPDF bound = %s (at M=4: %s), want %s", got, gotAtM4, want)
	}

	// CSDF baseline: β(17N + L).
	cg := apps.OFDMCSDF(apps.DefaultOFDM())
	csol, err := Consistency(cg)
	if err != nil {
		t.Fatal(err)
	}
	cGot := SymbolicBufferBound(cg, csol, nil)
	cWant := symb.MustParseExpr("beta*(17*N + L)")
	if !cGot.Equal(cWant) {
		t.Errorf("CSDF bound = %s, want %s", cGot, cWant)
	}
}

// substituteM fixes the parameter M to a concrete value.
func substituteM(t *testing.T, e symb.Expr, m int64) symb.Expr {
	t.Helper()
	return e.Substitute("M", symb.IntExpr(m))
}

func TestSymbolicBoundQPSKBranch(t *testing.T) {
	// QPSK active (M = 2): 3 + β((N+L) + N + N + N + 2N + 2N) = 3 + β(8N+L)
	// — the paper only plots the QAM configuration; this is the other mode.
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	active, err := OFDMActiveEdges(g, "QPSK")
	if err != nil {
		t.Fatal(err)
	}
	got := substituteM(t, SymbolicBufferBound(g, sol, active), 2)
	want := symb.MustParseExpr("3 + beta*(8*N + L)")
	if !got.Equal(want) {
		t.Errorf("QPSK bound = %s, want %s", got, want)
	}
}

func TestEdgeTrafficFig2(t *testing.T) {
	g := apps.Fig2()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	traffic := EdgeTraffic(g, sol)
	// e1 carries 2p tokens per iteration (A fires twice producing p each).
	if !traffic[0].Equal(symb.MustParseExpr("2p")) {
		t.Errorf("e1 traffic = %s, want 2p", traffic[0])
	}
	// The control channel e5 carries 2p tokens (C fires p times at rate 2).
	if !traffic[4].Equal(symb.MustParseExpr("2p")) {
		t.Errorf("e5 traffic = %s, want 2p", traffic[4])
	}
}

func TestOFDMActiveEdgesValidation(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	if _, err := OFDMActiveEdges(g, "PAM"); err == nil {
		t.Error("unknown branch must fail")
	}
	if _, err := OFDMActiveEdges(apps.Fig2(), "QAM"); err == nil {
		t.Error("graph without the branch must fail")
	}
}
