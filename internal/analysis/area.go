package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/symb"
)

// Area is the control area of a control actor (Definition 3):
// Area(g) = prec(g) ∪ succ(g) ∪ infl(g), where infl(g) is the set of actors
// between prec(g) and succ(g) influenced by g.
type Area struct {
	Ctrl core.NodeID
	Prec []core.NodeID
	Succ []core.NodeID
	Infl []core.NodeID
	// Members is the union, sorted, without the control actor itself.
	Members []core.NodeID
}

// ControlArea computes the area of the given control actor.
func ControlArea(g *core.Graph, ctrl core.NodeID) *Area {
	prec := map[core.NodeID]bool{}
	succ := map[core.NodeID]bool{}
	for _, e := range g.Edges {
		if e.Dst == ctrl && e.Src != ctrl {
			prec[e.Src] = true
		}
		if e.Src == ctrl && e.Dst != ctrl {
			succ[e.Dst] = true
		}
	}
	// succ(prec(g)) and prec(succ(g)).
	succOfPrec := map[core.NodeID]bool{}
	precOfSucc := map[core.NodeID]bool{}
	for _, e := range g.Edges {
		if prec[e.Src] {
			succOfPrec[e.Dst] = true
		}
		if succ[e.Dst] {
			precOfSucc[e.Src] = true
		}
	}
	infl := map[core.NodeID]bool{}
	for v := range succOfPrec {
		if precOfSucc[v] && v != ctrl {
			infl[v] = true
		}
	}
	a := &Area{Ctrl: ctrl, Prec: keys(prec), Succ: keys(succ), Infl: keys(infl)}
	all := map[core.NodeID]bool{}
	for _, s := range [][]core.NodeID{a.Prec, a.Succ, a.Infl} {
		for _, v := range s {
			if v != ctrl {
				all[v] = true
			}
		}
	}
	a.Members = keys(all)
	return a
}

func keys(m map[core.NodeID]bool) []core.NodeID {
	out := make([]core.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names renders a node-id list as names.
func Names(g *core.Graph, ids []core.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Nodes[id].Name
	}
	return out
}

// Local is a local solution (Definition 4) for a subset Z of the actors:
// QG = gcd(q_ai / τ_i) over Z and QL[ai] = q_ai / QG. Local solutions act as
// a repetition vector for the subset.
type Local struct {
	QG symb.Expr
	QL map[core.NodeID]symb.Expr
}

// LocalSolution computes the local solution of the subset zs.
func LocalSolution(sol *Solution, zs []core.NodeID) (*Local, error) {
	if len(zs) == 0 {
		return nil, fmt.Errorf("analysis: empty subset for local solution")
	}
	rs := make([]symb.Expr, len(zs))
	for i, z := range zs {
		rs[i] = sol.R[z] // q_z / τ_z by construction
	}
	qg := symb.GCDExprs(rs)
	if qg.IsZero() {
		return nil, fmt.Errorf("analysis: zero gcd in local solution")
	}
	l := &Local{QG: qg, QL: map[core.NodeID]symb.Expr{}}
	for _, z := range zs {
		l.QL[z] = sol.Q[z].Div(qg)
	}
	return l, nil
}

// LocalString renders the local solution in the paper's compact form,
// e.g. "B^2 C D E^2 F^2".
func (l *Local) LocalString(g *core.Graph) string {
	ids := make([]core.NodeID, 0, len(l.QL))
	for id := range l.QL {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var parts []string
	for _, id := range ids {
		q := l.QL[id]
		if q.IsOne() {
			parts = append(parts, g.Nodes[id].Name)
		} else {
			parts = append(parts, fmt.Sprintf("%s^%s", g.Nodes[id].Name, compact(q)))
		}
	}
	return strings.Join(parts, " ")
}

// dataDigraph builds the node-level digraph over every edge (data and
// control: both impose dependences).
func dataDigraph(g *core.Graph) *graph.Digraph {
	d := graph.New(len(g.Nodes))
	for _, e := range g.Edges {
		d.AddEdge(int(e.Src), int(e.Dst))
	}
	return d
}
