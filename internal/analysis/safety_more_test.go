package analysis

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/symb"
)

func seq(strs ...string) []symb.Expr {
	out := make([]symb.Expr, len(strs))
	for i, s := range strs {
		out[i] = symb.MustParseExpr(s)
	}
	return out
}

func TestCumSymbolicConcrete(t *testing.T) {
	// [1,0,2] over 5 firings: 1+0+2+1+0 = 4.
	got, err := CumSymbolic(seq("1", "0", "2"), symb.IntExpr(5))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Int(); v != 4 {
		t.Errorf("cum = %s, want 4", got)
	}
}

func TestCumSymbolicUniform(t *testing.T) {
	// Uniform [p, p] over symbolic n: n·p even though n isn't a multiple of
	// the sequence length.
	got, err := CumSymbolic(seq("p", "p"), symb.Var("n"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(symb.MustParseExpr("n*p")) {
		t.Errorf("cum = %s, want n*p", got)
	}
}

func TestCumSymbolicDivisibleCount(t *testing.T) {
	// Non-uniform [0,2] over 2p firings: p full cycles of sum 2 -> 2p.
	got, err := CumSymbolic(seq("0", "2"), symb.MustParseExpr("2p"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(symb.MustParseExpr("2p")) {
		t.Errorf("cum = %s, want 2p", got)
	}
}

func TestCumSymbolicUnverifiable(t *testing.T) {
	// Non-uniform [0,2] over p firings (p not provably even): conservative
	// error.
	if _, err := CumSymbolic(seq("0", "2"), symb.Var("p")); err == nil {
		t.Error("odd symbolic count over 2-phase sequence must be unverifiable")
	}
}

func TestCumSymbolicNegativeCount(t *testing.T) {
	if _, err := CumSymbolic(seq("1"), symb.IntExpr(-1)); err == nil {
		t.Error("negative count must fail")
	}
}

func TestReportStringDeadlocked(t *testing.T) {
	rep := Analyze(apps.Fig4Deadlocked())
	s := rep.String()
	for _, frag := range []string{"DEADLOCK", "NOT BOUNDED"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestReportStringInconsistent(t *testing.T) {
	g := apps.Fig2()
	// Corrupting a rate on a tree edge only rescales the solution; to break
	// consistency the corruption must sit on an undirected cycle. F closes
	// the diamond B -> {D, E} -> F, so inflating its consumption from E
	// makes the two paths disagree.
	f, _ := g.NodeByName("F")
	e, _ := g.NodeByName("E")
	for _, ed := range g.Edges {
		if ed.Src == e && ed.Dst == f {
			g.Nodes[f].Ports[ed.DstPort].Rates = seq("1", "3")
		}
	}
	rep := Analyze(g)
	if rep.Err == nil {
		t.Fatal("corrupted graph should be inconsistent")
	}
	if !strings.Contains(rep.String(), "FATAL") {
		t.Errorf("report should lead with FATAL:\n%s", rep)
	}
}

func TestClusteredScheduleUnitExponent(t *testing.T) {
	// Cycle with qG = 1 renders without an exponent.
	g := apps.Fig4a()
	// Fix p to 1 by shrinking the parameter range... simpler: use the
	// graph as-is; qG = p which is not 1, so instead check the exponent
	// presence and the Ω-body ordering.
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Liveness(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	s := ClusteredScheduleString(g, sol, rep)
	if !strings.Contains(s, "(B B C C)^p") {
		t.Errorf("clustered = %q", s)
	}
	if strings.Index(s, "A^2") > strings.Index(s, "(B") {
		t.Errorf("A must precede the cluster: %q", s)
	}
}

func TestAreaOfClockActor(t *testing.T) {
	// A clock has no predecessors: prec = {}, succ = {controlled kernel}.
	app := apps.EdgeDetection(500, nil)
	area := ControlArea(app.Graph, app.Clock)
	if len(area.Prec) != 0 {
		t.Errorf("clock prec = %v", Names(app.Graph, area.Prec))
	}
	if len(area.Succ) != 1 || area.Succ[0] != app.Tran {
		t.Errorf("clock succ = %v", Names(app.Graph, area.Succ))
	}
	if len(area.Members) != 1 {
		t.Errorf("clock area = %v", Names(app.Graph, area.Members))
	}
}

func TestLocalSolutionEmptySubset(t *testing.T) {
	g := apps.Fig2()
	sol, _ := Consistency(g)
	if _, err := LocalSolution(sol, nil); err == nil {
		t.Error("empty subset must be rejected")
	}
}

func TestRateSafetyEmptyAreaError(t *testing.T) {
	// A control actor wired only to another control actor's... simplest:
	// control actor with a source and a kernel, but whose area is empty is
	// hard to build legally; instead verify the clock area (non-empty) is
	// safe and the OFDM CON remains safe at corner valuations.
	g := apps.OFDMTPDF(apps.OFDMParams{Beta: 100, M: 4, N: 1024, L: 64})
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range RateSafety(g, sol) {
		if r.Err != nil {
			t.Errorf("OFDM at corner valuation unsafe: %v", r.Err)
		}
	}
}
