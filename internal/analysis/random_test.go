package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/symb"
)

// randomTPDF generates a structurally valid, rate-consistent TPDF graph: a
// layered DAG of kernels where each node is first assigned a firing ratio
// r (an integer, optionally scaled by the parameter p), and every edge
// (u -> v) then carries production rate r_v and consumption rate r_u — the
// balance equation r_u·r_v = r_v·r_u holds identically, so the graph is
// consistent by construction for any wiring, including diamonds. This
// exercises the symbolic solver on shapes far from the hand-built fixtures.
func randomTPDF(rng *rand.Rand, layers, width int, parametric bool) *core.Graph {
	g := core.NewGraph(fmt.Sprintf("rand-%d-%d", layers, width))
	if parametric {
		g.AddParam("p", int64(rng.Intn(3)+1), 1, 8)
	}
	ratio := func() string {
		c := rng.Intn(3) + 1
		if parametric && rng.Intn(3) == 0 {
			if c == 1 {
				return "p"
			}
			return fmt.Sprintf("%d*p", c)
		}
		return fmt.Sprint(c)
	}
	ratios := map[core.NodeID]string{}
	connect := func(u, v core.NodeID) {
		if _, err := g.Connect(u, "["+ratios[v]+"]", v, "["+ratios[u]+"]", 0); err != nil {
			panic(err)
		}
	}
	var prev []core.NodeID
	for l := 0; l < layers; l++ {
		w := rng.Intn(width) + 1
		var cur []core.NodeID
		for i := 0; i < w; i++ {
			k := g.AddKernel(fmt.Sprintf("n%d_%d", l, i), int64(rng.Intn(5)))
			ratios[k] = ratio()
			cur = append(cur, k)
			if l > 0 {
				connect(prev[rng.Intn(len(prev))], k)
			}
		}
		// Every node in the previous layer must have at least one consumer
		// so no port dangles; occasionally add extra diamond edges.
		if l > 0 {
			for _, src := range prev {
				used := false
				for _, e := range g.Edges {
					if e.Src == src {
						used = true
						break
					}
				}
				if !used || rng.Intn(3) == 0 {
					connect(src, cur[rng.Intn(len(cur))])
				}
			}
		}
		prev = cur
	}
	// Terminal sink merging the last layer.
	snk := g.AddKernel("snk", 0)
	ratios[snk] = ratio()
	for _, src := range prev {
		connect(src, snk)
	}
	return g
}

func TestRandomDAGsAnalyzeCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g := randomTPDF(rng, rng.Intn(4)+2, 3, trial%2 == 0)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid graph: %v\n%s", trial, err, g)
		}
		rep := Analyze(g)
		if rep.Err != nil {
			t.Fatalf("trial %d: analysis error: %v\n%s", trial, rep.Err, g)
		}
		// Acyclic graphs without control actors are always live and
		// bounded once consistent.
		if !rep.Consistent || !rep.Live || !rep.Bounded {
			t.Fatalf("trial %d: DAG should be bounded: %+v\n%s", trial, rep, g)
		}
	}
}

func TestRandomDAGsSimulationMatchesRepetition(t *testing.T) {
	// The simulator must fire each actor exactly q times and restore every
	// channel to its initial state — Theorem 2 at machine level.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		g := randomTPDF(rng, rng.Intn(3)+2, 3, trial%3 == 0)
		sol, err := Consistency(g)
		if err != nil {
			t.Fatal(err)
		}
		env := symb.Env{"p": int64(rng.Intn(4) + 1)}
		qSym, err := sol.EvalQ(env)
		if err != nil {
			t.Fatal(err)
		}
		cg, _, err := g.Instantiate(env)
		if err != nil {
			t.Fatal(err)
		}
		csol, err := cg.RepetitionVector()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Graph: g, Env: env})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		if !res.Quiescent {
			t.Fatalf("trial %d: did not quiesce", trial)
		}
		for j := range res.Firings {
			if res.Firings[j] != csol.Q[j] {
				t.Fatalf("trial %d: node %s fired %d, q=%d\n%s",
					trial, g.Nodes[j].Name, res.Firings[j], csol.Q[j], g)
			}
			// Symbolic q is an integer multiple of the concrete minimal q.
			if qSym[j]%csol.Q[j] != 0 {
				t.Fatalf("trial %d: symbolic q %d not a multiple of concrete %d",
					trial, qSym[j], csol.Q[j])
			}
		}
		for ei, fin := range res.Final {
			if fin != g.Edges[ei].Initial {
				t.Fatalf("trial %d: edge %s final %d != initial %d",
					trial, g.Edges[ei].Name, fin, g.Edges[ei].Initial)
			}
		}
	}
}

func TestRandomGraphsScheduleStringTopological(t *testing.T) {
	// The symbolic schedule string must order producers before consumers.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := randomTPDF(rng, rng.Intn(4)+2, 3, false)
		sol, err := Consistency(g)
		if err != nil {
			t.Fatal(err)
		}
		s := sol.ScheduleString()
		pos := map[string]int{}
		for i, n := range g.Nodes {
			_ = i
			pos[n.Name] = indexOfToken(s, n.Name)
			if pos[n.Name] < 0 {
				t.Fatalf("trial %d: %s missing from schedule %q", trial, n.Name, s)
			}
		}
		for _, e := range g.Edges {
			src := g.Nodes[e.Src].Name
			dst := g.Nodes[e.Dst].Name
			if pos[src] > pos[dst] {
				t.Fatalf("trial %d: %s scheduled after consumer %s in %q", trial, src, dst, s)
			}
		}
	}
}

// indexOfToken finds name as a whole schedule token (names here never
// prefix one another except via the ^ exponent marker).
func indexOfToken(s, name string) int {
	for i := 0; i+len(name) <= len(s); i++ {
		if s[i:i+len(name)] != name {
			continue
		}
		beforeOK := i == 0 || s[i-1] == ' '
		j := i + len(name)
		afterOK := j == len(s) || s[j] == ' ' || s[j] == '^'
		if beforeOK && afterOK {
			return i
		}
	}
	return -1
}
