package analysis

import "repro/internal/symb"

// CumSymbolic exposes the cumulative-rate helper for white-box tests.
func CumSymbolic(seq []symb.Expr, n symb.Expr) (symb.Expr, error) {
	return cumSymbolic(seq, n)
}
