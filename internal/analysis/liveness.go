package analysis

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/pool"
	"repro/internal/symb"
)

// Cycle is one non-trivial strongly connected component of the TPDF graph
// together with its liveness verdict.
type Cycle struct {
	Members []core.NodeID
	// QG is the symbolic gcd of the members' firing ratios: the cluster Ω
	// fires QG times per global iteration (Fig. 4c).
	QG symb.Expr
	// LocalOrder is a valid firing order for one local iteration evaluated
	// at the default parameter valuation (the late schedule of [8] when one
	// exists under the run-length policy, e.g. (B C C B) for Fig. 4b).
	LocalOrder []core.NodeID
	// Live reports whether a local schedule exists at every probed
	// valuation.
	Live bool
	Err  error
}

// LocalString renders the cycle's local schedule, e.g. "(B C C B)".
func (c *Cycle) LocalString(g *core.Graph) string {
	if len(c.LocalOrder) == 0 {
		return "(deadlocked)"
	}
	parts := make([]string, len(c.LocalOrder))
	for i, id := range c.LocalOrder {
		parts[i] = g.Nodes[id].Name
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// LivenessReport aggregates the §III-C analysis.
type LivenessReport struct {
	Cycles []Cycle
	// Live is true when every cycle admits a local schedule. The acyclic
	// remainder of a consistent graph is always schedulable, and topology
	// changes by control tokens cannot introduce deadlock (they only reject
	// tokens), so this is the complete liveness condition.
	Live bool
}

// Liveness checks liveness by clustering (§III-C). Cycles are detected on
// the full node graph (data and control edges); each non-trivial SCC must
// admit a local iteration schedule, verified by token-accurate simulation of
// the sub-graph at each probed parameter valuation. Greedy simulation is
// complete here: firing one actor can only add tokens to another actor's
// inputs (each channel has a single consumer), so enabledness is monotone
// and a stuck maximal simulation proves deadlock.
func Liveness(g *core.Graph, sol *Solution, envs ...symb.Env) (*LivenessReport, error) {
	return LivenessParallel(g, sol, 1, envs...)
}

// LivenessParallel is Liveness with the cycle × valuation probe grid
// fanned out over up to parallel workers. The graph is compiled once per
// worker — each probe rebinds the worker's Program at its valuation
// instead of re-instantiating the graph — and programs are reused across
// cycles. Verdicts are reduced in probe order, so the report is identical
// to the sequential one.
func LivenessParallel(g *core.Graph, sol *Solution, parallel int, envs ...symb.Env) (*LivenessReport, error) {
	if len(envs) == 0 {
		envs = []symb.Env{g.DefaultEnv()}
	}
	cond := dataDigraph(g).Condense()
	rep := &LivenessReport{Live: true}
	d := dataDigraph(g)
	progs := make([]*core.Program, pool.Workers(len(envs), parallel))
	for _, comp := range cond.Comps {
		if len(comp) == 1 && !d.HasSelfLoop(comp[0]) {
			continue
		}
		members := make([]core.NodeID, len(comp))
		for i, v := range comp {
			members[i] = core.NodeID(v)
		}
		sortNodeIDs(members)
		cyc := Cycle{Members: members, Live: true}
		if local, err := LocalSolution(sol, members); err == nil {
			cyc.QG = local.QG
		}
		orders := make([][]core.NodeID, len(envs))
		errs := make([]error, len(envs))
		// Returning the probe error lets the sequential pool path keep the
		// old early-exit on the first deadlocked valuation; the parallel
		// path records per-index errors and the reduction below picks the
		// lowest-indexed one either way.
		pool.RunWorkers(len(envs), parallel, func(w, i int) error {
			if progs[w] == nil {
				if progs[w], errs[i] = core.Compile(g); errs[i] != nil {
					return errs[i]
				}
			}
			orders[i], errs[i] = localScheduleProgram(progs[w], members, envs[i])
			return errs[i]
		})
		for i := range envs {
			if errs[i] != nil {
				cyc.Live = false
				cyc.Err = errs[i]
				rep.Live = false
				break
			}
			if i == 0 {
				cyc.LocalOrder = orders[i]
			}
		}
		rep.Cycles = append(rep.Cycles, cyc)
	}
	return rep, nil
}

func sortNodeIDs(s []core.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// localScheduleProgram rebinds the compiled graph at env, builds the
// sub-CSDF graph induced by the members (internal edges only), computes the
// concrete local repetition counts qL = q / gcd(r) and returns a valid
// firing order, or an error when the cycle deadlocks.
func localScheduleProgram(prog *core.Program, members []core.NodeID, env symb.Env) ([]core.NodeID, error) {
	if err := prog.Rebind(env); err != nil {
		return nil, err
	}
	g := prog.Source()
	cg := prog.Concrete()
	low := prog.Lowering()
	csol := prog.Solution()
	inSet := map[core.NodeID]int{} // node -> local index
	for i, m := range members {
		inSet[m] = i
	}
	sub := csdf.NewGraph()
	for _, m := range members {
		n := g.Nodes[m]
		sub.AddActor(n.Name, n.Exec...)
	}
	for ei, e := range g.Edges {
		si, okS := inSet[e.Src]
		di, okD := inSet[e.Dst]
		if !okS || !okD {
			continue
		}
		ce := cg.Edges[low.EdgeOf[ei]]
		sub.ConnectNamed(ce.Name, si, ce.Prod, di, ce.Cons, ce.Initial)
	}
	// Concrete local solution: qG = gcd of r over members; qL = q / qG.
	var qg int64
	for _, m := range members {
		qg = gcd64(qg, csol.R[low.ActorOf[m]])
	}
	if qg == 0 {
		return nil, fmt.Errorf("analysis: zero local gcd")
	}
	ql := make([]int64, len(members))
	for i, m := range members {
		ql[i] = csol.Q[low.ActorOf[m]] / qg
	}
	s, err := sub.BuildSchedule(&csdf.Solution{Q: ql}, csdf.RunLength)
	if err != nil {
		// The run-length heuristic is also complete (it is a maximal greedy
		// strategy), but keep the eager fallback for defence in depth.
		s, err = sub.BuildSchedule(&csdf.Solution{Q: ql}, csdf.Eager)
		if err != nil {
			return nil, fmt.Errorf("analysis: cycle {%s} deadlocks: %v",
				strings.Join(Names(g, members), ","), err)
		}
	}
	out := make([]core.NodeID, len(s.Order))
	for i, a := range s.Order {
		out[i] = members[a]
	}
	return out, nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ClusteredScheduleString renders the global schedule after clustering each
// cycle into an Ω actor, e.g. "A^2 Ω^p" with Ω = (B C C B) (§III-C).
func ClusteredScheduleString(g *core.Graph, sol *Solution, rep *LivenessReport) string {
	inCycle := map[core.NodeID]*Cycle{}
	for i := range rep.Cycles {
		for _, m := range rep.Cycles[i].Members {
			inCycle[m] = &rep.Cycles[i]
		}
	}
	cond := dataDigraph(g).Condense()
	var parts []string
	emitted := map[*Cycle]bool{}
	for ci := len(cond.Comps) - 1; ci >= 0; ci-- {
		members := append([]int(nil), cond.Comps[ci]...)
		sortInts(members)
		for _, j := range members {
			id := core.NodeID(j)
			if cyc, ok := inCycle[id]; ok {
				if emitted[cyc] {
					continue
				}
				emitted[cyc] = true
				exp := cyc.QG
				body := cyc.LocalString(g)
				if exp.IsOne() {
					parts = append(parts, body)
				} else {
					parts = append(parts, fmt.Sprintf("%s^%s", body, compact(exp)))
				}
				continue
			}
			q := sol.Q[id]
			if q.IsOne() {
				parts = append(parts, g.Nodes[id].Name)
			} else {
				parts = append(parts, fmt.Sprintf("%s^%s", g.Nodes[id].Name, compact(q)))
			}
		}
	}
	return strings.Join(parts, " ")
}
