package analysis

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/symb"
)

func exprEq(t *testing.T, got symb.Expr, want string, label string) {
	t.Helper()
	w := symb.MustParseExpr(want)
	if !got.Equal(w) {
		t.Errorf("%s = %s, want %s", label, got, want)
	}
}

func TestFig2Consistency(t *testing.T) {
	g := apps.Fig2()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	// Example 2: r = [2, 2p, p, p, 2p, p] and q = [2, 2p, p, p, 2p, 2p]
	// (plus the added sink with q = 2p).
	names := []string{"A", "B", "C", "D", "E", "F", "SNK"}
	wantQ := []string{"2", "2p", "p", "p", "2p", "2p", "2p"}
	wantR := []string{"2", "2p", "p", "p", "2p", "p", "2p"}
	for j, n := range names {
		id, ok := g.NodeByName(n)
		if !ok {
			t.Fatalf("node %s missing", n)
		}
		exprEq(t, sol.Q[id], wantQ[j], "q["+n+"]")
		exprEq(t, sol.R[id], wantR[j], "r["+n+"]")
	}
	// F has two phases (control [1,1] and data [0,2]/[1,1] sequences).
	fID, _ := g.NodeByName("F")
	if sol.Tau[fID] != 2 {
		t.Errorf("tau[F] = %d, want 2", sol.Tau[fID])
	}
}

func TestFig2ScheduleString(t *testing.T) {
	g := apps.Fig2()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	s := sol.ScheduleString()
	for _, frag := range []string{"A^2", "B^2p", "C^p", "D^p", "E^2p", "F^2p"} {
		if !strings.Contains(s, frag) {
			t.Errorf("schedule %q missing %q", s, frag)
		}
	}
	// Producers precede consumers: A before B, B before F.
	if strings.Index(s, "A^2") > strings.Index(s, "B^2p") {
		t.Errorf("schedule %q: A must precede B", s)
	}
	if strings.Index(s, "B^2p") > strings.Index(s, "F^2p") {
		t.Errorf("schedule %q: B must precede F", s)
	}
}

func TestFig2ControlArea(t *testing.T) {
	g := apps.Fig2()
	c, _ := g.NodeByName("C")
	area := ControlArea(g, c)
	// Example 3: Area(C) = {B, D, E, F}.
	got := Names(g, area.Members)
	want := []string{"B", "D", "E", "F"}
	if len(got) != len(want) {
		t.Fatalf("Area(C) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Area(C) = %v, want %v", got, want)
		}
	}
	if len(area.Prec) != 1 || g.Nodes[area.Prec[0]].Name != "B" {
		t.Errorf("prec(C) = %v, want [B]", Names(g, area.Prec))
	}
	if len(area.Succ) != 1 || g.Nodes[area.Succ[0]].Name != "F" {
		t.Errorf("succ(C) = %v, want [F]", Names(g, area.Succ))
	}
	inflNames := Names(g, area.Infl)
	if len(inflNames) != 2 || inflNames[0] != "D" || inflNames[1] != "E" {
		t.Errorf("infl(C) = %v, want [D E]", inflNames)
	}
}

func TestFig2LocalSolution(t *testing.T) {
	g := apps.Fig2()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := g.NodeByName("C")
	area := ControlArea(g, c)
	local, err := LocalSolution(sol, area.Members)
	if err != nil {
		t.Fatal(err)
	}
	// qG({B,D,E,F}) = gcd(2p, p, 2p, p) = p; local solution B^2 D E^2 F^2
	// (C fires once per local iteration — that is rate safety).
	exprEq(t, local.QG, "p", "qG")
	wants := map[string]string{"B": "2", "D": "1", "E": "2", "F": "2"}
	for name, w := range wants {
		id, _ := g.NodeByName(name)
		exprEq(t, local.QL[id], w, "qL["+name+"]")
	}
	ls := local.LocalString(g)
	for _, frag := range []string{"B^2", "D", "E^2", "F^2"} {
		if !strings.Contains(ls, frag) {
			t.Errorf("local solution %q missing %q", ls, frag)
		}
	}
}

func TestFig2RateSafe(t *testing.T) {
	g := apps.Fig2()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	results := RateSafety(g, sol)
	if len(results) != 1 {
		t.Fatalf("expected 1 control actor, got %d", len(results))
	}
	if results[0].Err != nil {
		t.Errorf("Fig. 2 must be rate safe: %v", results[0].Err)
	}
}

func TestRateUnsafeDetected(t *testing.T) {
	// Consistent but rate-unsafe: the control actor C fires twice per local
	// iteration of its area (it consumes [0,1] from S and emits one control
	// token per firing), so X_C(1) = 1 != Y_K(qL_K) = 2 — C does not fire
	// exactly once per local iteration as Definition 5 requires.
	g := core.NewGraph("unsafe")
	s := g.AddKernel("S")
	k := g.AddTransaction("K")
	c := g.AddControlActor("C")
	z := g.AddKernel("Z")
	if _, err := g.Connect(s, "[2]", k, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(s, "[1]", c, "[0,1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectControl(c, "[1]", k, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(k, "[1]", z, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	results := RateSafety(g, sol)
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("rate-unsafe control must be detected: %+v", results)
	}
	if !strings.Contains(results[0].Err.Error(), "rate-unsafe") {
		t.Errorf("unexpected error: %v", results[0].Err)
	}
}

func TestInconsistentDetected(t *testing.T) {
	g := core.NewGraph("inconsistent")
	g.AddParam("p", 2, 1, 10)
	a := g.AddKernel("A")
	b := g.AddKernel("B")
	if _, err := g.Connect(a, "[p]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	// First edge forces r_B = p·r_A, second forces r_B = r_A: inconsistent
	// as rational functions (would only balance at p=1).
	if _, err := Consistency(g); err == nil {
		t.Fatal("parametric inconsistency must be detected")
	}
}

func TestFig4aLiveness(t *testing.T) {
	g := apps.Fig4a()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	// q = [2, 2p, 2p].
	for j, w := range []string{"2", "2p", "2p"} {
		exprEq(t, sol.Q[j], w, "q")
	}
	rep, err := Liveness(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Live || len(rep.Cycles) != 1 {
		t.Fatalf("Fig. 4a must be live with one cycle: %+v", rep)
	}
	cyc := &rep.Cycles[0]
	exprEq(t, cyc.QG, "p", "qG(B,C)")
	// Local schedule (B B C C): B's two firings consume the two initial
	// tokens, then C restores them.
	if got := cyc.LocalString(g); got != "(B B C C)" {
		t.Errorf("local schedule = %q, want (B B C C)", got)
	}
	cs := ClusteredScheduleString(g, sol, rep)
	if !strings.HasPrefix(cs, "A^2 ") || !strings.Contains(cs, "(B B C C)^p") {
		t.Errorf("clustered schedule = %q, want A^2 (B B C C)^p", cs)
	}
}

func TestFig4bLateSchedule(t *testing.T) {
	g := apps.Fig4b()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Liveness(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Live || len(rep.Cycles) != 1 {
		t.Fatalf("Fig. 4b must be live: %+v", rep)
	}
	// The late schedule of [8]: (B C C B). A naive B^2 C^2 order deadlocks
	// with a single initial token.
	if got := rep.Cycles[0].LocalString(g); got != "(B C C B)" {
		t.Errorf("local schedule = %q, want (B C C B)", got)
	}
}

func TestFig4DeadlockDetected(t *testing.T) {
	g := apps.Fig4Deadlocked()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Liveness(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live {
		t.Fatal("tokenless cycle must deadlock")
	}
	if len(rep.Cycles) != 1 || rep.Cycles[0].Err == nil {
		t.Fatalf("cycle error missing: %+v", rep.Cycles)
	}
}

func TestAnalyzeFig2EndToEnd(t *testing.T) {
	rep := Analyze(apps.Fig2())
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.Consistent || !rep.RateSafe || !rep.Live || !rep.Bounded {
		t.Fatalf("Fig. 2 must be consistent, safe, live, bounded: %+v", rep)
	}
	s := rep.String()
	for _, frag := range []string{"consistency: OK", "rate safe", "bounded"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestAnalyzeOFDM(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	rep := Analyze(g)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.Bounded {
		t.Fatalf("OFDM TPDF graph must be bounded:\n%s", rep)
	}
	// Every actor fires once per iteration: rates match exactly along the
	// pipeline for all parameter values.
	for j, q := range rep.Solution.Q {
		if !q.IsOne() {
			t.Errorf("q[%s] = %s, want 1", g.Nodes[j].Name, q)
		}
	}
}

func TestAnalyzeOFDMCSDFBaseline(t *testing.T) {
	rep := Analyze(apps.OFDMCSDF(apps.DefaultOFDM()))
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.Bounded {
		t.Fatalf("OFDM CSDF baseline must be bounded:\n%s", rep)
	}
}

func TestEvalQ(t *testing.T) {
	g := apps.Fig2()
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sol.EvalQ(symb.Env{"p": 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 6, 3, 3, 6, 6, 6}
	for j, w := range want {
		if q[j] != w {
			t.Errorf("q[%d] = %d, want %d", j, q[j], w)
		}
	}
}

func TestLivenessDetectsParamDependence(t *testing.T) {
	// Cycle whose initial tokens suffice only for p=1: the probe at the
	// upper bound must catch the deadlock at larger p.
	g := core.NewGraph("param-cycle")
	g.AddParam("p", 1, 1, 4)
	a := g.AddKernel("A")
	b := g.AddKernel("B")
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[p]", a, "[p]", 1); err != nil {
		t.Fatal(err)
	}
	sol, err := Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Liveness(g, sol, symb.Env{"p": 1}, symb.Env{"p": 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live {
		t.Fatal("cycle with p-dependent token demand must be caught at p=4")
	}
}
