package sim_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/symb"
)

// ofdmEnvs is a small grid of valuations the rebind tests cycle through:
// different vectorization degrees and symbol lengths, so every rebind
// really changes the rate tables and the repetition vector.
func ofdmEnvs() []symb.Env {
	return []symb.Env{
		{"beta": 2, "M": 4, "N": 8, "L": 1},
		{"beta": 6, "M": 4, "N": 32, "L": 1},
		{"beta": 3, "M": 4, "N": 16, "L": 2},
		{"beta": 1, "M": 4, "N": 64, "L": 1},
	}
}

// freshResult runs one valuation through the one-shot path: fresh
// Instantiate + NewSimulator, as the sweeps did before the compiled layer.
func freshResult(t *testing.T, g *core.Graph, decide map[string]sim.DecideFunc, env symb.Env) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{Graph: g, Env: env, Decide: decide, BuffersOnly: true})
	if err != nil {
		t.Fatalf("fresh run at %v: %v", env, err)
	}
	return res
}

func sameResult(a, b *sim.Result) bool {
	return a.Time == b.Time &&
		reflect.DeepEqual(a.Firings, b.Firings) &&
		reflect.DeepEqual(a.HighWater, b.HighWater) &&
		reflect.DeepEqual(a.Final, b.Final)
}

// TestRebindMatchesFreshSimulator drives one Program+Simulator pair across
// valuations and demands results identical to a fresh Instantiate +
// NewSimulator per valuation — the correctness contract of the sweep
// rebind fast path.
func TestRebindMatchesFreshSimulator(t *testing.T) {
	params := apps.DefaultOFDM()
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	envs := ofdmEnvs()
	if err := prog.Rebind(envs[0]); err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulatorFromProgram(prog, sim.Config{Decide: decide, BuffersOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // revisit valuations: rebind back and forth
		for _, env := range envs {
			if err := prog.Rebind(env); err != nil {
				t.Fatalf("rebind %v: %v", env, err)
			}
			if err := s.BindProgram(prog); err != nil {
				t.Fatal(err)
			}
			got, err := s.Run()
			if err != nil {
				t.Fatalf("rebind run at %v: %v", env, err)
			}
			if want := freshResult(t, g, decide, env); !sameResult(got, want) {
				t.Fatalf("round %d: rebind result at %v diverged from fresh simulator", round, env)
			}
		}
	}
}

// TestRebindParallelWorkers shards valuations across workers, each owning
// one Program+Simulator pair (the sweep-driver topology), and checks every
// result against the one-shot path. Run under -race this also proves the
// pairs share nothing.
func TestRebindParallelWorkers(t *testing.T) {
	params := apps.DefaultOFDM()
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		t.Fatal(err)
	}
	envs := ofdmEnvs()
	want := make([]*sim.Result, len(envs))
	for i, env := range envs {
		want[i] = freshResult(t, g, decide, env)
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prog, err := core.Compile(g)
			if err != nil {
				errs[w] = err
				return
			}
			var s *sim.Simulator
			for i := w; i < len(envs); i += workers {
				if err := prog.Rebind(envs[i]); err != nil {
					errs[w] = err
					return
				}
				if s == nil {
					if s, err = sim.NewSimulatorFromProgram(prog, sim.Config{Decide: decide, BuffersOnly: true}); err != nil {
						errs[w] = err
						return
					}
				} else if err := s.BindProgram(prog); err != nil {
					errs[w] = err
					return
				}
				got, err := s.Run()
				if err != nil {
					errs[w] = err
					return
				}
				if !sameResult(got, want[i]) {
					t.Errorf("worker %d: valuation %v diverged from fresh simulator", w, envs[i])
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestSweepSteadyStateAllocs gates the rebind fast path at zero heap
// allocations per warm sweep point: once both valuations have been run
// once (growing every queue to its high-water mark), a full
// Rebind+BindProgram+Run cycle — the per-point work of a sweep worker —
// must not allocate. The mirror of TestSimulatorSteadyStateAllocs one
// layer up.
func TestSweepSteadyStateAllocs(t *testing.T) {
	params := apps.DefaultOFDM()
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	envA := symb.Env{"beta": 2, "M": 4, "N": 16, "L": 1}
	envB := symb.Env{"beta": 5, "M": 4, "N": 32, "L": 1}
	if err := prog.Rebind(envA); err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulatorFromProgram(prog, sim.Config{Decide: decide, BuffersOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []symb.Env{envA, envB} { // warm both valuations
		if err := prog.Rebind(env); err != nil {
			t.Fatal(err)
		}
		if err := s.BindProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	flip := false
	allocs := testing.AllocsPerRun(20, func() {
		flip = !flip
		env := envA
		if flip {
			env = envB
		}
		if err := prog.Rebind(env); err != nil {
			t.Fatal(err)
		}
		if err := s.BindProgram(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm sweep point (Rebind+BindProgram+Run) allocates %.1f times, want 0", allocs)
	}
}

// TestBindProgramRejectsForeignProgram verifies the binding identity check.
func TestBindProgramRejectsForeignProgram(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	p1, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Rebind(nil); err != nil {
		t.Fatal(err)
	}
	if err := p2.Rebind(nil); err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulatorFromProgram(p1, sim.Config{BuffersOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BindProgram(p2); err == nil {
		t.Fatal("binding a simulator to a foreign program must fail")
	}
	if _, err := sim.NewSimulatorFromProgram(p1, sim.Config{}); err != nil {
		t.Fatal(err)
	}
}
