// Package sim executes TPDF graphs token-accurately in virtual time.
//
// The simulator implements the §II-B firing semantics that the static
// analyses abstract over:
//
//   - a kernel with a control port waits for a control token; the token
//     selects the mode of the firing (wait-all, select-one, select-many,
//     highest-priority) and therefore which data ports participate;
//   - rejected inputs follow the mode's semantics: highest-priority firings
//     (the racing/deadline pattern) drain the losers' tokens — immediately
//     or through a discard debt for slow producers — so the graph returns
//     to its initial state (Theorem 2); select-one/select-many firings
//     treat the unchosen edges as absent ("removing unused edges", §IV-B),
//     because their deselected producers never emit anything to drain;
//   - Select-duplicate kernels copy each input token onto the currently
//     enabled combination of outputs; Transaction kernels atomically select
//     tokens from one or several inputs — combined with a Clock control
//     actor this yields the highest-priority-at-deadline behaviour of the
//     edge-detection case study (§IV-A);
//   - Clock control actors are watchdog timers firing at multiples of their
//     period, consuming nothing;
//   - control actors win processing elements over kernels when the PE pool
//     is limited (§III-D).
//
// The engine is a deterministic discrete-event loop: firings consume their
// inputs when they start and produce at completion after the actor's
// execution time; events at equal times are processed in a fixed order, so
// every run of a configuration is reproducible.
//
// Two entry styles exist. Run builds a fresh engine per call, which is
// convenient but pays graph instantiation and state allocation every time.
// The analysis sweeps (Fig. 8 buffer grids, capacity minimization) instead
// construct one Simulator per worker and call Reset between runs: after the
// first run the event loop is allocation-free, which is what makes the
// β×N parameter grids cheap enough to shard across cores.
package sim

import (
	"context"

	"repro/internal/core"
	"repro/internal/symb"
)

// ControlToken is the value carried by control channels: the mode the
// receiving kernel must fire in, plus the names of the kernel's data ports
// enabled by selecting modes.
type ControlToken struct {
	Mode     core.Mode
	Selected []string
}

// DecideFunc lets a control actor choose the tokens it emits on its n-th
// firing, keyed by its control-output port name. Missing entries default to
// wait-all. The engine never mutates the returned map, so implementations
// may return a shared precomputed map to keep the hot path allocation-free.
type DecideFunc func(firing int64) map[string]ControlToken

// FireEvent describes one completed firing for tracing.
type FireEvent struct {
	Node     string
	Firing   int64
	Start    int64
	End      int64
	Mode     core.Mode
	Selected []string
}

// Config configures a simulation run.
type Config struct {
	Graph *core.Graph
	// Context, when non-nil, cancels the run: the engine polls it between
	// events and returns its error once it is done.
	Context context.Context
	// Env instantiates the graph's parameters (defaults used when nil).
	Env symb.Env
	// Iterations bounds the run: every node fires at most
	// Iterations × q(node) times. Default 1.
	Iterations int64
	// Processors limits concurrently executing firings; 0 means unlimited.
	Processors int
	// Decide supplies mode decisions per control-actor name.
	Decide map[string]DecideFunc
	// OnFire, when set, receives every completed firing.
	OnFire func(FireEvent)
	// Record stores completed firings in Result.Events.
	Record bool
	// MaxEvents guards against runaway simulations (default 50M).
	MaxEvents int64
	// BuffersOnly skips per-node busy-time accounting and trace
	// bookkeeping: callers that only need buffer totals (high-water marks,
	// final token counts, firing counts) get a leaner event loop. Record
	// and OnFire are ignored when set.
	BuffersOnly bool
}

// Result reports the outcome of a run.
type Result struct {
	// Time is the virtual time of the last completion.
	Time int64
	// Firings counts completed firings per node.
	Firings []int64
	// HighWater is the maximum token count observed per edge, including
	// initial tokens and control tokens: the buffer capacity the run needs.
	HighWater []int64
	// Final is the per-edge token count at the end of the run.
	Final []int64
	// Quiescent is true when the run ended because nothing could fire any
	// more (as opposed to hitting MaxEvents).
	Quiescent bool
	// Busy accumulates execution time per node (firing durations), the
	// basis for utilization accounting. Zero when BuffersOnly was set.
	Busy []int64
	// Events holds the trace when Config.Record was set.
	Events []FireEvent
}

// TotalBuffer sums the per-edge high-water marks.
func (r *Result) TotalBuffer() int64 {
	var t int64
	for _, v := range r.HighWater {
		t += v
	}
	return t
}

// rateTable holds one direction of an edge's concrete cyclic rates with an
// incremental cursor: firings of the adjacent node are queried in
// non-decreasing order (the engine serializes firings per node), so the
// common case advances the phase by at most one step instead of doing a
// 64-bit modulo per probe. Arbitrary (out-of-order) queries still work via
// the modulo fallback.
type rateTable struct {
	rates []int64
	n     int64 // len(rates), cached to avoid len/int conversions
	idx   int   // rates index corresponding to firing `at`
	at    int64 // firing number the cursor points to
}

func (t *rateTable) init(rates []int64) {
	t.rates = rates
	t.n = int64(len(rates))
	t.idx, t.at = 0, 0
}

func (t *rateTable) reset() { t.idx, t.at = 0, 0 }

// rate returns the rate at firing f.
func (t *rateTable) rate(f int64) int64 {
	if t.n == 1 {
		return t.rates[0]
	}
	switch {
	case f == t.at:
	case f == t.at+1:
		t.idx++
		if int64(t.idx) == t.n {
			t.idx = 0
		}
		t.at = f
	default:
		t.idx = int(f % t.n)
		t.at = f
	}
	return t.rates[t.idx]
}

// ctlQueue is a growable ring buffer of control tokens. Reset keeps the
// backing array, so steady-state operation never allocates.
type ctlQueue struct {
	buf  []ControlToken
	head int
	n    int
}

func (q *ctlQueue) len() int { return q.n }

func (q *ctlQueue) reset() { q.head, q.n = 0, 0 }

func (q *ctlQueue) push(t ControlToken) {
	if q.n == len(q.buf) {
		grown := make([]ControlToken, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

func (q *ctlQueue) front() ControlToken { return q.buf[q.head] }

func (q *ctlQueue) pop() ControlToken {
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return t
}

// edgeState is the runtime state of one channel.
type edgeState struct {
	tokens  int64
	ctl     ctlQueue // parallel to tokens for control edges
	debt    int64    // tokens to discard on arrival (rejected ports)
	high    int64
	init    int64 // initial tokens, restored by Reset
	prod    rateTable
	cons    rateTable
	isCtl   bool
	dstPrio int
	dstName string // destination port name (for Selected matching)
}

// arrive adds produced tokens, paying any discard debt first.
func (e *edgeState) arrive(n int64) {
	if e.debt > 0 {
		d := e.debt
		if d > n {
			d = n
		}
		e.debt -= d
		n -= d
	}
	e.tokens += n
	if e.tokens > e.high {
		e.high = e.tokens
	}
}

// pendingFiring is the in-flight firing of one node (firings are serialized
// per node, so each node has at most one).
type pendingFiring struct {
	firing int64
	tok    ControlToken
	active []int // participating data-input edges, aliases nodeState.activeBuf
	start  int64
}

type nodeState struct {
	id      core.NodeID
	fired   int64 // completed firings
	started int64 // started firings (== fired or fired+1; serialized)
	busy    bool
	// lastTok is the most recent control token; firings whose control rate
	// is 0 reuse it entirely (mode and port selection), per §II-B.
	lastTok  ControlToken
	limit    int64 // Iterations × q
	isCtl    bool
	isClock  bool
	inEdges  []int // edge indices with Dst == id, data ports only
	ctlEdge  int   // edge index feeding the control port, -1 if none
	outEdges []int // edge indices with Src == id (data and control)
	nextTick int64 // clocks: next tick time
	pf       pendingFiring
	// activeBuf is the reusable backing array for pf.active; its capacity
	// is len(inEdges), the most edges a firing can involve.
	activeBuf []int
}

type event struct {
	time int64
	seq  int64
	kind int // 0 = completion, 1 = clock tick
	node int
}

// eventQueue is a typed binary min-heap ordered by (time, seq). Unlike
// container/heap it moves events without boxing them through interface
// values, so pushes and pops never allocate once the backing array has
// grown to the run's high-water mark (bounded by one in-flight completion
// plus one scheduled tick per node).
type eventQueue struct {
	a []event
}

func (q *eventQueue) len() int { return len(q.a) }

func (q *eventQueue) reset() { q.a = q.a[:0] }

func (q *eventQueue) less(i, j int) bool {
	if q.a[i].time != q.a[j].time {
		return q.a[i].time < q.a[j].time
	}
	return q.a[i].seq < q.a[j].seq
}

func (q *eventQueue) push(ev event) {
	q.a = append(q.a, ev)
	i := len(q.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.a[i], q.a[parent] = q.a[parent], q.a[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a = q.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.a[i], q.a[smallest] = q.a[smallest], q.a[i]
		i = smallest
	}
}
