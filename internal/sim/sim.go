// Package sim executes TPDF graphs token-accurately in virtual time.
//
// The simulator implements the §II-B firing semantics that the static
// analyses abstract over:
//
//   - a kernel with a control port waits for a control token; the token
//     selects the mode of the firing (wait-all, select-one, select-many,
//     highest-priority) and therefore which data ports participate;
//   - rejected inputs follow the mode's semantics: highest-priority firings
//     (the racing/deadline pattern) drain the losers' tokens — immediately
//     or through a discard debt for slow producers — so the graph returns
//     to its initial state (Theorem 2); select-one/select-many firings
//     treat the unchosen edges as absent ("removing unused edges", §IV-B),
//     because their deselected producers never emit anything to drain;
//   - Select-duplicate kernels copy each input token onto the currently
//     enabled combination of outputs; Transaction kernels atomically select
//     tokens from one or several inputs — combined with a Clock control
//     actor this yields the highest-priority-at-deadline behaviour of the
//     edge-detection case study (§IV-A);
//   - Clock control actors are watchdog timers firing at multiples of their
//     period, consuming nothing;
//   - control actors win processing elements over kernels when the PE pool
//     is limited (§III-D).
//
// The engine is a deterministic discrete-event loop: firings consume their
// inputs when they start and produce at completion after the actor's
// execution time; events at equal times are processed in a fixed order, so
// every run of a configuration is reproducible.
package sim

import (
	"context"

	"repro/internal/core"
	"repro/internal/symb"
)

// ControlToken is the value carried by control channels: the mode the
// receiving kernel must fire in, plus the names of the kernel's data ports
// enabled by selecting modes.
type ControlToken struct {
	Mode     core.Mode
	Selected []string
}

// DecideFunc lets a control actor choose the tokens it emits on its n-th
// firing, keyed by its control-output port name. Missing entries default to
// wait-all.
type DecideFunc func(firing int64) map[string]ControlToken

// FireEvent describes one completed firing for tracing.
type FireEvent struct {
	Node     string
	Firing   int64
	Start    int64
	End      int64
	Mode     core.Mode
	Selected []string
}

// Config configures a simulation run.
type Config struct {
	Graph *core.Graph
	// Context, when non-nil, cancels the run: the engine polls it between
	// events and returns its error once it is done.
	Context context.Context
	// Env instantiates the graph's parameters (defaults used when nil).
	Env symb.Env
	// Iterations bounds the run: every node fires at most
	// Iterations × q(node) times. Default 1.
	Iterations int64
	// Processors limits concurrently executing firings; 0 means unlimited.
	Processors int
	// Decide supplies mode decisions per control-actor name.
	Decide map[string]DecideFunc
	// OnFire, when set, receives every completed firing.
	OnFire func(FireEvent)
	// Record stores completed firings in Result.Events.
	Record bool
	// MaxEvents guards against runaway simulations (default 50M).
	MaxEvents int64
}

// Result reports the outcome of a run.
type Result struct {
	// Time is the virtual time of the last completion.
	Time int64
	// Firings counts completed firings per node.
	Firings []int64
	// HighWater is the maximum token count observed per edge, including
	// initial tokens and control tokens: the buffer capacity the run needs.
	HighWater []int64
	// Final is the per-edge token count at the end of the run.
	Final []int64
	// Quiescent is true when the run ended because nothing could fire any
	// more (as opposed to hitting MaxEvents).
	Quiescent bool
	// Busy accumulates execution time per node (firing durations), the
	// basis for utilization accounting.
	Busy []int64
	// Events holds the trace when Config.Record was set.
	Events []FireEvent
}

// TotalBuffer sums the per-edge high-water marks.
func (r *Result) TotalBuffer() int64 {
	var t int64
	for _, v := range r.HighWater {
		t += v
	}
	return t
}

// edgeState is the runtime state of one channel.
type edgeState struct {
	tokens  int64
	ctl     []ControlToken // queue, parallel to tokens for control edges
	debt    int64          // tokens to discard on arrival (rejected ports)
	high    int64
	prod    []int64 // concrete production rates
	cons    []int64 // concrete consumption rates
	isCtl   bool
	dstPrio int
	dstName string // destination port name (for Selected matching)
}

func (e *edgeState) prodAt(n int64) int64 { return e.prod[int(n%int64(len(e.prod)))] }
func (e *edgeState) consAt(n int64) int64 { return e.cons[int(n%int64(len(e.cons)))] }

// arrive adds produced tokens, paying any discard debt first.
func (e *edgeState) arrive(n int64) {
	if e.debt > 0 {
		d := e.debt
		if d > n {
			d = n
		}
		e.debt -= d
		n -= d
	}
	e.tokens += n
	if e.tokens > e.high {
		e.high = e.tokens
	}
}

type nodeState struct {
	id      core.NodeID
	fired   int64 // completed firings
	started int64 // started firings (== fired or fired+1; serialized)
	busy    bool
	// lastTok is the most recent control token; firings whose control rate
	// is 0 reuse it entirely (mode and port selection), per §II-B.
	lastTok  ControlToken
	limit    int64 // Iterations × q
	isCtl    bool
	isClock  bool
	inEdges  []int // edge indices with Dst == id, data ports only
	ctlEdge  int   // edge index feeding the control port, -1 if none
	outEdges []int // edge indices with Src == id (data and control)
	nextTick int64 // clocks: next tick time
}

type event struct {
	time int64
	seq  int64
	kind int // 0 = completion, 1 = clock tick
	node int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
