package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/symb"
)

func TestSimulatorDeterministic(t *testing.T) {
	// Identical configurations produce identical traces, including event
	// order, across repeated runs.
	app := apps.EdgeDetection(500, nil)
	var first *sim.Result
	for i := 0; i < 3; i++ {
		res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(), Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(first.Events, res.Events) {
			t.Fatal("event traces differ between identical runs")
		}
		if !reflect.DeepEqual(first.HighWater, res.HighWater) {
			t.Fatal("high-water marks differ between identical runs")
		}
		if first.Time != res.Time {
			t.Fatal("completion times differ between identical runs")
		}
	}
}

func TestSimulatorDeterministicUnderContention(t *testing.T) {
	// PE contention adds scheduling choices; the fixed control-first,
	// index-order policy must keep runs reproducible.
	rng := rand.New(rand.NewSource(3))
	g := core.NewGraph("contend")
	src := g.AddKernel("src", 1)
	snk := g.AddKernel("snk", 0)
	for i := 0; i < 6; i++ {
		k := g.AddKernel(name2(i), int64(rng.Intn(20)+1))
		if _, err := g.Connect(src, "[1]", k, "[1]", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Connect(k, "[1]", snk, "[1]", 0); err != nil {
			t.Fatal(err)
		}
	}
	var ref *sim.Result
	for i := 0; i < 3; i++ {
		res, err := sim.Run(sim.Config{Graph: g, Processors: 2, Iterations: 3, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Events, res.Events) {
			t.Fatal("contended traces differ")
		}
	}
}

func name2(i int) string { return string(rune('k')) + string(rune('0'+i)) }

func TestBusyAccounting(t *testing.T) {
	g := core.NewGraph("busy")
	a := g.AddKernel("a", 7)
	b := g.AddKernel("b", 3)
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Graph: g, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Busy[0] != 28 || res.Busy[1] != 12 {
		t.Errorf("busy = %v, want [28 12]", res.Busy)
	}
}

func TestIterationPeriodValidation(t *testing.T) {
	g := apps.Fig2()
	if _, err := sim.IterationPeriod(sim.Config{Graph: g, Env: symb.Env{"p": 1}}, 0, 4); err == nil {
		t.Error("warm=0 must be rejected")
	}
	if _, err := sim.IterationPeriod(sim.Config{Graph: g, Env: symb.Env{"p": 1}}, 2, 0); err == nil {
		t.Error("span=0 must be rejected")
	}
}
