package sim

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/csdf"
)

// Run executes the configuration once and returns the metrics. It builds a
// fresh Simulator per call; sweep drivers that execute one configuration
// (or one graph) many times should construct a Simulator and Reset it
// between runs instead, which keeps the event loop allocation-free.
func Run(cfg Config) (*Result, error) {
	s, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Simulator is a reusable simulation engine: all per-run state (node and
// edge state, the event queue, result vectors) is preallocated at
// construction and restored by Reset, so repeated runs of one
// configuration do not allocate. A Simulator is not safe for concurrent
// use; sweep drivers give each worker its own.
type Simulator struct {
	cfg   Config
	g     *core.Graph
	cg    *csdf.Graph    // concrete graph whose rate slices the tables alias
	low   *core.Lowering // node/edge correspondence into cg
	q     []int64        // concrete repetition vector per node
	nodes []nodeState
	edges []edgeState
	exec  [][]int64 // per node, cyclic execution times (nil = zero)
	// ctlOrder lists node indices control actors first (§III-D), the fixed
	// scan order of startAllEnabled.
	ctlOrder []int

	events   eventQueue
	caps     []int64 // per-edge capacities; nil or <0 entries unbounded
	seq      int64
	now      int64
	inFlight int
	total    int64 // completed firings
	res      Result
	ctr      Counters
}

// Counters accumulates lightweight lifetime statistics across every run of
// one simulator (they survive Reset, unlike the Result). Plain fields,
// owned by the simulator's single goroutine; read them via Counters after
// a run. tpdf.Simulate publishes them to an obs.Registry when metrics are
// attached.
type Counters struct {
	// Runs and Resets count Run and Reset calls; Events, Firings and
	// ClockTicks count processed heap events by kind across all runs.
	Runs       int64
	Resets     int64
	Events     int64
	Firings    int64
	ClockTicks int64
	// MaxEventQueue is the event heap's high-water mark.
	MaxEventQueue int64
}

// Counters returns the lifetime counters accumulated so far.
func (s *Simulator) Counters() Counters { return s.ctr }

// NewSimulator instantiates the configured graph and preallocates every
// piece of run state.
func NewSimulator(cfg Config) (*Simulator, error) {
	g := cfg.Graph
	cg, low, err := g.Instantiate(cfg.Env)
	if err != nil {
		return nil, err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, fmt.Errorf("sim: %v", err)
	}
	return newSimulator(cfg, cg, low, sol.Q)
}

// NewSimulatorFromProgram builds a simulator over a compiled program's
// current valuation, skipping graph instantiation and the repetition-vector
// solve (the program already holds both). cfg.Graph and cfg.Env are
// ignored; the program supplies them. The simulator's rate tables alias
// the program's concrete graph: after prog.Rebind, call BindProgram to
// refresh the firing limits and reset the run state. Several simulators
// may share one program concurrently as long as nobody calls Rebind while
// any of them is running.
func NewSimulatorFromProgram(prog *core.Program, cfg Config) (*Simulator, error) {
	if !prog.Bound() {
		return nil, fmt.Errorf("sim: program is unbound; call Rebind before building a simulator")
	}
	cfg.Graph = prog.Source()
	cfg.Env = nil
	return newSimulator(cfg, prog.Concrete(), prog.Lowering(), prog.Solution().Q)
}

// newSimulator preallocates every piece of run state for the concrete
// graph. q is the repetition vector indexed by csdf actor.
func newSimulator(cfg Config, cg *csdf.Graph, low *core.Lowering, q []int64) (*Simulator, error) {
	g := cfg.Graph
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	s := &Simulator{cfg: cfg, g: g, cg: cg, low: low}
	s.nodes = make([]nodeState, len(g.Nodes))
	s.exec = make([][]int64, len(g.Nodes))
	s.q = make([]int64, len(g.Nodes))
	for i, n := range g.Nodes {
		ns := &s.nodes[i]
		ns.id = core.NodeID(i)
		ns.ctlEdge = -1
		s.q[i] = q[low.ActorOf[i]]
		ns.limit = iters * s.q[i]
		ns.isCtl = n.Kind == core.KindControl
		ns.isClock = n.Kind == core.KindControl && n.ClockPeriod > 0
		ns.lastTok = ControlToken{Mode: core.ModeWaitAll}
		s.exec[i] = n.Exec
	}
	s.edges = make([]edgeState, len(g.Edges))
	for ei, e := range g.Edges {
		ce := cg.Edges[low.EdgeOf[ei]]
		dst := g.Nodes[e.Dst]
		dp := dst.Ports[e.DstPort]
		es := &s.edges[ei]
		es.prod.init(ce.Prod)
		es.cons.init(ce.Cons)
		es.init = ce.Initial
		es.isCtl = dp.Dir == core.CtlIn
		es.dstPrio = dp.Priority
		es.dstName = dp.Name
		if es.isCtl {
			s.nodes[e.Dst].ctlEdge = ei
		} else {
			s.nodes[e.Dst].inEdges = append(s.nodes[e.Dst].inEdges, ei)
		}
		s.nodes[e.Src].outEdges = append(s.nodes[e.Src].outEdges, ei)
	}
	for i := range s.nodes {
		s.nodes[i].activeBuf = make([]int, 0, len(s.nodes[i].inEdges))
	}
	s.ctlOrder = make([]int, 0, len(s.nodes))
	for i := range s.nodes {
		if s.nodes[i].isCtl {
			s.ctlOrder = append(s.ctlOrder, i)
		}
	}
	for i := range s.nodes {
		if !s.nodes[i].isCtl {
			s.ctlOrder = append(s.ctlOrder, i)
		}
	}
	s.res = Result{
		Firings:   make([]int64, len(g.Nodes)),
		Busy:      make([]int64, len(g.Nodes)),
		HighWater: make([]int64, len(g.Edges)),
		Final:     make([]int64, len(g.Edges)),
	}
	// Serialized firings bound the queue: at most one completion in flight
	// plus one scheduled tick per node.
	s.events.a = make([]event, 0, 2*len(g.Nodes))
	s.start()
	return s, nil
}

// start restores the pre-run state: initial tokens, initial wait-all
// control tokens, clock ticks. Shared by NewSimulator and Reset.
func (s *Simulator) start() {
	for ei := range s.edges {
		es := &s.edges[ei]
		es.tokens = es.init
		es.high = es.init
		es.debt = 0
		es.prod.reset()
		es.cons.reset()
		es.ctl.reset()
		if es.isCtl {
			// Pre-existing control tokens default to wait-all.
			for k := int64(0); k < es.init; k++ {
				es.ctl.push(ControlToken{Mode: core.ModeWaitAll})
			}
		}
	}
	for i := range s.nodes {
		ns := &s.nodes[i]
		ns.fired, ns.started = 0, 0
		ns.busy = false
		ns.lastTok = ControlToken{Mode: core.ModeWaitAll}
		ns.nextTick = 0
		ns.pf = pendingFiring{}
		ns.activeBuf = ns.activeBuf[:0]
	}
	s.events.reset()
	s.seq, s.now, s.inFlight, s.total = 0, 0, 0, 0
	for i := range s.res.Firings {
		s.res.Firings[i] = 0
		s.res.Busy[i] = 0
	}
	for ei := range s.res.HighWater {
		s.res.HighWater[ei] = 0
		s.res.Final[ei] = 0
	}
	s.res.Time = 0
	s.res.Quiescent = false
	s.res.Events = s.res.Events[:0]
	// Clock initial ticks.
	for i, n := range s.g.Nodes {
		if s.nodes[i].isClock {
			s.nodes[i].nextTick = n.ClockPeriod
			s.push(event{time: n.ClockPeriod, kind: 1, node: i})
		}
	}
}

// Reset restores the simulator to its initial state so Run can execute the
// configuration again. Results returned by previous Run calls alias the
// simulator's internal vectors and are invalidated. Lifetime Counters are
// not reset.
func (s *Simulator) Reset() {
	s.ctr.Resets++
	s.start()
}

// SetCapacities installs per-edge channel capacities for subsequent runs
// (nil restores unbounded execution; a negative entry means unbounded,
// zero means the channel can never hold a token). The slice is retained,
// not copied.
func (s *Simulator) SetCapacities(caps []int64) error {
	if caps != nil && len(caps) != len(s.edges) {
		return fmt.Errorf("sim: %d capacities for %d edges", len(caps), len(s.edges))
	}
	s.caps = caps
	return nil
}

// SetDecide replaces the control-decision table for subsequent runs.
func (s *Simulator) SetDecide(decide map[string]DecideFunc) {
	s.cfg.Decide = decide
}

// SetIterations rebounds the run to n graph iterations (effective after
// the next Reset for an engine that already ran).
func (s *Simulator) SetIterations(n int64) {
	if n <= 0 {
		n = 1
	}
	s.cfg.Iterations = n
	for i := range s.nodes {
		s.nodes[i].limit = n * s.q[i]
	}
}

// SetRates installs a new repetition vector (indexed by csdf actor, as a
// Solution.Q is) after the underlying rate tables were overwritten in
// place, recomputing every node's firing limit. The rate slices themselves
// are aliased, not copied, so callers that mutate them (core.Program.Rebind
// does) need only this call plus Reset to run the new valuation.
func (s *Simulator) SetRates(q []int64) error {
	if len(q) != len(s.cg.Actors) {
		return fmt.Errorf("sim: %d repetition entries for %d actors", len(q), len(s.cg.Actors))
	}
	iters := s.cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	for i := range s.nodes {
		s.q[i] = q[s.low.ActorOf[i]]
		s.nodes[i].limit = iters * s.q[i]
	}
	return nil
}

// BindProgram refreshes the simulator after prog.Rebind moved the bound
// program to a new valuation: the rate tables already alias the program's
// concrete graph, so only the repetition vector (firing limits) needs
// re-reading, followed by a Reset. The simulator must have been built by
// NewSimulatorFromProgram over the same program. On the warm path — after
// the first run has grown every queue to its high-water mark —
// Rebind+BindProgram+Run performs zero heap allocations.
func (s *Simulator) BindProgram(prog *core.Program) error {
	if prog.Concrete() != s.cg {
		return fmt.Errorf("sim: simulator is not bound to this program")
	}
	if !prog.Bound() {
		return fmt.Errorf("sim: program is unbound (its last Rebind failed); rebind before running")
	}
	if err := s.SetRates(prog.Solution().Q); err != nil {
		return err
	}
	s.Reset()
	return nil
}

func (s *Simulator) push(ev event) {
	ev.seq = s.seq
	s.seq++
	s.events.push(ev)
}

func (s *Simulator) maxEvents() int64 {
	if s.cfg.MaxEvents > 0 {
		return s.cfg.MaxEvents
	}
	return 50_000_000
}

// Run executes until quiescence and returns the metrics. The Result points
// into the simulator's preallocated state: it remains valid until the next
// Reset. Callers that keep results across runs must copy what they need.
func (s *Simulator) Run() (*Result, error) {
	s.ctr.Runs++
	s.startAllEnabled()
	var processed int64
	for s.events.len() > 0 {
		if n := int64(s.events.len()); n > s.ctr.MaxEventQueue {
			s.ctr.MaxEventQueue = n
		}
		if processed++; processed > s.maxEvents() {
			return nil, fmt.Errorf("sim: exceeded %d events at t=%d", s.maxEvents(), s.now)
		}
		if s.cfg.Context != nil {
			if err := s.cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at t=%d: %w", s.now, err)
			}
		}
		ev := s.events.pop()
		s.now = ev.time
		s.ctr.Events++
		switch ev.kind {
		case 0:
			s.ctr.Firings++
			s.complete(ev.node)
		case 1:
			s.ctr.ClockTicks++
			s.clockTick(ev.node)
		}
		s.startAllEnabled()
	}
	s.res.Time = s.now
	s.res.Quiescent = true
	for ei := range s.edges {
		s.res.Final[ei] = s.edges[ei].tokens
		s.res.HighWater[ei] = s.edges[ei].high
	}
	return &s.res, nil
}

// startAllEnabled starts every enabled firing, control actors first
// (§III-D), respecting the PE pool.
func (s *Simulator) startAllEnabled() {
	for {
		progressed := false
		for _, i := range s.ctlOrder {
			if s.cfg.Processors > 0 && s.inFlight >= s.cfg.Processors {
				return
			}
			if s.tryStart(i) {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// tryStart begins one firing of node i if it is enabled.
func (s *Simulator) tryStart(i int) bool {
	ns := &s.nodes[i]
	if ns.busy || ns.started >= ns.limit || ns.isClock {
		return false
	}
	firing := ns.started
	if !s.outputsHaveRoom(i, firing) {
		return false // bounded-buffer back-pressure
	}

	tok := ns.lastTok
	needsCtl := false
	if ns.ctlEdge >= 0 {
		ce := &s.edges[ns.ctlEdge]
		if ce.cons.rate(firing) > 0 {
			needsCtl = true
			if ce.tokens < 1 || ce.ctl.len() == 0 {
				return false // §II-B: wait until the control port is available
			}
			tok = ce.ctl.front()
		}
	}

	active, ok := s.activeInputs(i, firing, tok)
	if !ok {
		return false
	}

	// Commit: consume control token, consume active inputs, register
	// discard debt on rejected inputs.
	if needsCtl {
		ce := &s.edges[ns.ctlEdge]
		ce.tokens--
		ce.ctl.pop()
		ns.lastTok = tok
	}
	for _, ei := range active {
		es := &s.edges[ei]
		es.tokens -= es.cons.rate(firing)
	}
	// Rejected-input handling depends on the mode's semantics:
	//
	//   - highest-priority (the racing/deadline pattern) *drains*: the
	//     losers' tokens of this round are removed — immediately if present,
	//     via discard debt if the slow producer finishes later ("remove
	//     remaining tokens", §II);
	//   - select-one/select-many reconfigure the topology: the unchosen
	//     edges are absent this iteration ("allowing to remove unused
	//     edges", §IV-B), their producers never produce, so nothing must be
	//     drained — draining would steal tokens from a later iteration that
	//     re-enables the branch.
	if tok.Mode == core.ModeHighestPriority && ns.ctlEdge >= 0 {
		for _, ei := range ns.inEdges {
			if slices.Contains(active, ei) {
				continue
			}
			es := &s.edges[ei]
			rate := es.cons.rate(firing)
			if rate == 0 {
				continue
			}
			// Remove what is present, owe the rest.
			avail := rate
			if es.tokens < avail {
				avail = es.tokens
			}
			es.tokens -= avail
			es.debt += rate - avail
		}
	}

	ns.busy = true
	ns.started++
	s.inFlight++
	dur := int64(0)
	if len(s.exec[i]) > 0 {
		dur = s.exec[i][int(firing%int64(len(s.exec[i])))]
	}
	ns.pf = pendingFiring{firing: firing, tok: tok, active: active, start: s.now}
	s.push(event{time: s.now + dur, kind: 0, node: i})
	return true
}

// activeInputs decides which data input edges participate in this firing
// under the mode, and whether the firing is enabled now. The returned
// slice aliases the node's reusable active buffer (firings are serialized
// per node, so at most one is live at a time).
func (s *Simulator) activeInputs(i int, firing int64, tok ControlToken) ([]int, bool) {
	ns := &s.nodes[i]
	mode := tok.Mode
	if ns.ctlEdge < 0 {
		mode = core.ModeWaitAll // kernels without control ports are dataflow
	}
	act := ns.activeBuf[:0]
	switch mode {
	case core.ModeWaitAll:
		for _, ei := range ns.inEdges {
			es := &s.edges[ei]
			rate := es.cons.rate(firing)
			if rate == 0 {
				continue
			}
			if es.tokens < rate {
				return nil, false
			}
			act = append(act, ei)
		}
		return act, true
	case core.ModeSelectOne, core.ModeSelectMany:
		for _, ei := range ns.inEdges {
			es := &s.edges[ei]
			rate := es.cons.rate(firing)
			if rate == 0 || !slices.Contains(tok.Selected, es.dstName) {
				continue
			}
			if es.tokens < rate {
				return nil, false
			}
			act = append(act, ei)
		}
		if len(act) == 0 {
			// Selection names no input port: for a Select-duplicate the
			// choice concerns outputs; inputs behave wait-all.
			for _, ei := range ns.inEdges {
				es := &s.edges[ei]
				rate := es.cons.rate(firing)
				if rate == 0 {
					continue
				}
				if es.tokens < rate {
					return nil, false
				}
				act = append(act, ei)
			}
		}
		return act, true
	case core.ModeHighestPriority:
		best := -1
		for _, ei := range ns.inEdges {
			es := &s.edges[ei]
			rate := es.cons.rate(firing)
			if rate == 0 || es.tokens < rate {
				continue
			}
			if best < 0 || es.dstPrio > s.edges[best].dstPrio {
				best = ei
			}
		}
		if best < 0 {
			return nil, false // wait until any input becomes available
		}
		return append(act, best), true
	default:
		return nil, false
	}
}

// complete finishes the pending firing of node i: produce outputs, emit
// control tokens, free the PE.
func (s *Simulator) complete(i int) {
	ns := &s.nodes[i]
	if !ns.busy {
		return
	}
	pf := ns.pf

	n := s.g.Nodes[i]
	firing := pf.firing

	// Output selection: select modes on a Select-duplicate choose outputs.
	selectingOutputs := n.Special == core.SpecialSelectDup &&
		(pf.tok.Mode == core.ModeSelectOne || pf.tok.Mode == core.ModeSelectMany) &&
		len(pf.tok.Selected) > 0

	var decision map[string]ControlToken
	if ns.isCtl {
		if d, ok := s.cfg.Decide[n.Name]; ok {
			decision = d(firing)
		}
	}

	for _, ei := range ns.outEdges {
		es := &s.edges[ei]
		rate := es.prod.rate(firing)
		if rate == 0 {
			continue
		}
		srcPort := s.g.Nodes[i].Ports[s.g.Edges[ei].SrcPort].Name
		if selectingOutputs && !es.isCtl && !slices.Contains(pf.tok.Selected, srcPort) {
			continue // unchosen output: tokens are never produced
		}
		if es.isCtl {
			tok := ControlToken{Mode: core.ModeWaitAll}
			if decision != nil {
				if t, ok := decision[srcPort]; ok {
					tok = t
				}
			}
			for k := int64(0); k < rate; k++ {
				es.ctl.push(tok)
			}
		}
		es.arrive(rate)
	}

	ns.busy = false
	ns.fired++
	s.inFlight--
	s.total++
	s.res.Firings[i]++
	if s.cfg.BuffersOnly {
		return
	}
	if s.res.Time < s.now {
		s.res.Time = s.now
	}
	s.res.Busy[i] += s.now - pf.start

	if s.cfg.Record || s.cfg.OnFire != nil {
		ev := FireEvent{
			Node: n.Name, Firing: firing, Start: pf.start, End: s.now,
			Mode: pf.tok.Mode, Selected: s.selectedNames(pf),
		}
		if s.cfg.Record {
			s.res.Events = append(s.res.Events, ev)
		}
		if s.cfg.OnFire != nil {
			s.cfg.OnFire(ev)
		}
	}
}

// selectedNames reports the destination port names that actually
// participated in a firing (for tracing the transaction's choice).
func (s *Simulator) selectedNames(pf pendingFiring) []string {
	if len(pf.active) == 0 {
		return nil
	}
	names := make([]string, 0, len(pf.active))
	for _, ei := range pf.active {
		names = append(names, s.edges[ei].dstName)
	}
	sort.Strings(names)
	return names
}

// clockTick fires a clock control actor: no consumption, immediate
// production of its control tokens after its execution time.
func (s *Simulator) clockTick(i int) {
	ns := &s.nodes[i]
	if ns.started >= ns.limit {
		return // clock exhausted its iteration budget; stop ticking
	}
	if ns.busy || !s.outputsHaveRoom(i, ns.started) {
		// Busy (long Exec) or back-pressured at tick time: skip to the
		// next period, as a watchdog would.
		ns.nextTick += s.g.Nodes[i].ClockPeriod
		s.push(event{time: ns.nextTick, kind: 1, node: i})
		return
	}
	ns.busy = true
	ns.started++
	s.inFlight++
	ns.pf = pendingFiring{firing: ns.started - 1, tok: ControlToken{Mode: core.ModeWaitAll}, start: s.now}
	dur := int64(0)
	if len(s.exec[i]) > 0 {
		dur = s.exec[i][int((ns.started-1)%int64(len(s.exec[i])))]
	}
	s.push(event{time: s.now + dur, kind: 0, node: i})
	if ns.started < ns.limit {
		ns.nextTick += s.g.Nodes[i].ClockPeriod
		s.push(event{time: ns.nextTick, kind: 1, node: i})
	}
}
