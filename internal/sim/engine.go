package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Run executes the configuration and returns the metrics.
func Run(cfg Config) (*Result, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	return eng.run()
}

type engine struct {
	cfg   Config
	g     *core.Graph
	nodes []nodeState
	edges []edgeState
	exec  [][]int64 // per node, cyclic execution times (nil = zero)

	events       eventHeap
	pendingModes []pendingFiring
	caps         []int64 // per-edge capacities; nil or <=0 entries unbounded
	seq          int64
	now          int64
	inFlight     int
	total        int64 // completed firings
	res          *Result
}

func newEngine(cfg Config) (*engine, error) {
	g := cfg.Graph
	cg, low, err := g.Instantiate(cfg.Env)
	if err != nil {
		return nil, err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, fmt.Errorf("sim: %v", err)
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	eng := &engine{cfg: cfg, g: g}
	eng.nodes = make([]nodeState, len(g.Nodes))
	eng.exec = make([][]int64, len(g.Nodes))
	for i, n := range g.Nodes {
		ns := &eng.nodes[i]
		ns.id = core.NodeID(i)
		ns.ctlEdge = -1
		ns.limit = iters * sol.Q[low.ActorOf[i]]
		ns.isCtl = n.Kind == core.KindControl
		ns.isClock = n.Kind == core.KindControl && n.ClockPeriod > 0
		ns.lastTok = ControlToken{Mode: core.ModeWaitAll}
		eng.exec[i] = n.Exec
	}
	eng.edges = make([]edgeState, len(g.Edges))
	for ei, e := range g.Edges {
		ce := cg.Edges[low.EdgeOf[ei]]
		dst := g.Nodes[e.Dst]
		dp := dst.Ports[e.DstPort]
		es := &eng.edges[ei]
		es.prod = ce.Prod
		es.cons = ce.Cons
		es.tokens = ce.Initial
		es.high = ce.Initial
		es.isCtl = dp.Dir == core.CtlIn
		es.dstPrio = dp.Priority
		es.dstName = dp.Name
		if es.isCtl {
			eng.nodes[e.Dst].ctlEdge = ei
			// Pre-existing control tokens default to wait-all.
			for k := int64(0); k < ce.Initial; k++ {
				es.ctl = append(es.ctl, ControlToken{Mode: core.ModeWaitAll})
			}
		} else {
			eng.nodes[e.Dst].inEdges = append(eng.nodes[e.Dst].inEdges, ei)
		}
		eng.nodes[e.Src].outEdges = append(eng.nodes[e.Src].outEdges, ei)
	}
	eng.res = &Result{
		Firings:   make([]int64, len(g.Nodes)),
		Busy:      make([]int64, len(g.Nodes)),
		HighWater: make([]int64, len(g.Edges)),
		Final:     make([]int64, len(g.Edges)),
	}
	// Clock initial ticks.
	for i, n := range g.Nodes {
		if eng.nodes[i].isClock {
			eng.nodes[i].nextTick = n.ClockPeriod
			eng.push(event{time: n.ClockPeriod, kind: 1, node: i})
		}
	}
	return eng, nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

func (e *engine) maxEvents() int64 {
	if e.cfg.MaxEvents > 0 {
		return e.cfg.MaxEvents
	}
	return 50_000_000
}

func (e *engine) run() (*Result, error) {
	e.startAllEnabled()
	var processed int64
	for e.events.Len() > 0 {
		if processed++; processed > e.maxEvents() {
			return nil, fmt.Errorf("sim: exceeded %d events at t=%d", e.maxEvents(), e.now)
		}
		if e.cfg.Context != nil {
			if err := e.cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at t=%d: %w", e.now, err)
			}
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.time
		switch ev.kind {
		case 0:
			e.complete(ev.node)
		case 1:
			e.clockTick(ev.node)
		}
		e.startAllEnabled()
	}
	e.res.Time = e.now
	e.res.Quiescent = true
	for ei := range e.edges {
		e.res.Final[ei] = e.edges[ei].tokens
		e.res.HighWater[ei] = e.edges[ei].high
	}
	return e.res, nil
}

// startAllEnabled starts every enabled firing, control actors first
// (§III-D), respecting the PE pool.
func (e *engine) startAllEnabled() {
	order := make([]int, 0, len(e.nodes))
	for i := range e.nodes {
		if e.nodes[i].isCtl {
			order = append(order, i)
		}
	}
	for i := range e.nodes {
		if !e.nodes[i].isCtl {
			order = append(order, i)
		}
	}
	for {
		progressed := false
		for _, i := range order {
			if e.cfg.Processors > 0 && e.inFlight >= e.cfg.Processors {
				return
			}
			if e.tryStart(i) {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// tryStart begins one firing of node i if it is enabled.
func (e *engine) tryStart(i int) bool {
	ns := &e.nodes[i]
	if ns.busy || ns.started >= ns.limit || ns.isClock {
		return false
	}
	firing := ns.started
	if !e.outputsHaveRoom(i, firing) {
		return false // bounded-buffer back-pressure
	}

	tok := ns.lastTok
	needsCtl := false
	if ns.ctlEdge >= 0 {
		ce := &e.edges[ns.ctlEdge]
		if ce.consAt(firing) > 0 {
			needsCtl = true
			if ce.tokens < 1 || len(ce.ctl) == 0 {
				return false // §II-B: wait until the control port is available
			}
			tok = ce.ctl[0]
		}
	}

	active, ok := e.activeInputs(i, firing, tok)
	if !ok {
		return false
	}

	// Commit: consume control token, consume active inputs, register
	// discard debt on rejected inputs.
	if needsCtl {
		ce := &e.edges[ns.ctlEdge]
		ce.tokens--
		ce.ctl = ce.ctl[1:]
		ns.lastTok = tok
	}
	activeSet := map[int]bool{}
	for _, ei := range active {
		activeSet[ei] = true
		es := &e.edges[ei]
		es.tokens -= es.consAt(firing)
	}
	// Rejected-input handling depends on the mode's semantics:
	//
	//   - highest-priority (the racing/deadline pattern) *drains*: the
	//     losers' tokens of this round are removed — immediately if present,
	//     via discard debt if the slow producer finishes later ("remove
	//     remaining tokens", §II);
	//   - select-one/select-many reconfigure the topology: the unchosen
	//     edges are absent this iteration ("allowing to remove unused
	//     edges", §IV-B), their producers never produce, so nothing must be
	//     drained — draining would steal tokens from a later iteration that
	//     re-enables the branch.
	if tok.Mode == core.ModeHighestPriority && ns.ctlEdge >= 0 {
		for _, ei := range ns.inEdges {
			if activeSet[ei] {
				continue
			}
			es := &e.edges[ei]
			rate := es.consAt(firing)
			if rate == 0 {
				continue
			}
			// Remove what is present, owe the rest.
			avail := rate
			if es.tokens < avail {
				avail = es.tokens
			}
			es.tokens -= avail
			es.debt += rate - avail
		}
	}

	ns.busy = true
	ns.started++
	e.inFlight++
	dur := int64(0)
	if len(e.exec[i]) > 0 {
		dur = e.exec[i][int(firing%int64(len(e.exec[i])))]
	}
	e.pendingModes = append(e.pendingModes, pendingFiring{node: i, firing: firing, tok: tok, active: activeSet, start: e.now})
	e.push(event{time: e.now + dur, kind: 0, node: i})
	return true
}

type pendingFiring struct {
	node   int
	firing int64
	tok    ControlToken
	active map[int]bool
	start  int64
}

// activeInputs decides which data input edges participate in this firing
// under the mode, and whether the firing is enabled now.
func (e *engine) activeInputs(i int, firing int64, tok ControlToken) ([]int, bool) {
	ns := &e.nodes[i]
	mode := tok.Mode
	if ns.ctlEdge < 0 {
		mode = core.ModeWaitAll // kernels without control ports are dataflow
	}
	needed := func(ei int) bool { return e.edges[ei].consAt(firing) > 0 }
	avail := func(ei int) bool {
		es := &e.edges[ei]
		return es.tokens >= es.consAt(firing)
	}
	switch mode {
	case core.ModeWaitAll:
		var act []int
		for _, ei := range ns.inEdges {
			if !needed(ei) {
				continue
			}
			if !avail(ei) {
				return nil, false
			}
			act = append(act, ei)
		}
		return act, true
	case core.ModeSelectOne, core.ModeSelectMany:
		sel := map[string]bool{}
		for _, s := range tok.Selected {
			sel[s] = true
		}
		var act []int
		for _, ei := range ns.inEdges {
			if !needed(ei) || !sel[e.edges[ei].dstName] {
				continue
			}
			if !avail(ei) {
				return nil, false
			}
			act = append(act, ei)
		}
		if len(act) == 0 {
			// Selection names no input port: for a Select-duplicate the
			// choice concerns outputs; inputs behave wait-all.
			for _, ei := range ns.inEdges {
				if !needed(ei) {
					continue
				}
				if !avail(ei) {
					return nil, false
				}
				act = append(act, ei)
			}
		}
		return act, true
	case core.ModeHighestPriority:
		best := -1
		for _, ei := range ns.inEdges {
			if !needed(ei) || !avail(ei) {
				continue
			}
			if best < 0 || e.edges[ei].dstPrio > e.edges[best].dstPrio {
				best = ei
			}
		}
		if best < 0 {
			return nil, false // wait until any input becomes available
		}
		return []int{best}, true
	default:
		return nil, false
	}
}

// complete finishes the oldest pending firing of node i: produce outputs,
// emit control tokens, free the PE.
func (e *engine) complete(i int) {
	ns := &e.nodes[i]
	// Find the pending firing for this node (serialized: exactly one).
	idx := -1
	for k := range e.pendingModes {
		if e.pendingModes[k].node == i {
			idx = k
			break
		}
	}
	if idx < 0 {
		return
	}
	pf := e.pendingModes[idx]
	e.pendingModes = append(e.pendingModes[:idx], e.pendingModes[idx+1:]...)

	n := e.g.Nodes[i]
	firing := pf.firing

	// Output selection: select modes on a Select-duplicate choose outputs.
	outSel := map[string]bool{}
	selectingOutputs := n.Special == core.SpecialSelectDup &&
		(pf.tok.Mode == core.ModeSelectOne || pf.tok.Mode == core.ModeSelectMany) &&
		len(pf.tok.Selected) > 0
	if selectingOutputs {
		for _, s := range pf.tok.Selected {
			outSel[s] = true
		}
	}

	var decision map[string]ControlToken
	if ns.isCtl {
		if d, ok := e.cfg.Decide[n.Name]; ok {
			decision = d(firing)
		}
	}

	for _, ei := range ns.outEdges {
		es := &e.edges[ei]
		rate := es.prodAt(firing)
		if rate == 0 {
			continue
		}
		srcPort := e.g.Nodes[i].Ports[e.g.Edges[ei].SrcPort].Name
		if selectingOutputs && !es.isCtl && !outSel[srcPort] {
			continue // unchosen output: tokens are never produced
		}
		if es.isCtl {
			tok := ControlToken{Mode: core.ModeWaitAll}
			if decision != nil {
				if t, ok := decision[srcPort]; ok {
					tok = t
				}
			}
			for k := int64(0); k < rate; k++ {
				es.ctl = append(es.ctl, tok)
			}
		}
		es.arrive(rate)
	}

	ns.busy = false
	ns.fired++
	e.inFlight--
	e.total++
	if e.res.Time < e.now {
		e.res.Time = e.now
	}
	e.res.Firings[i]++
	e.res.Busy[i] += e.now - pf.start

	ev := FireEvent{
		Node: n.Name, Firing: firing, Start: pf.start, End: e.now,
		Mode: pf.tok.Mode, Selected: e.selectedNames(pf),
	}
	if e.cfg.Record {
		e.res.Events = append(e.res.Events, ev)
	}
	if e.cfg.OnFire != nil {
		e.cfg.OnFire(ev)
	}
}

// selectedNames reports the destination port names that actually
// participated in a firing (for tracing the transaction's choice).
func (e *engine) selectedNames(pf pendingFiring) []string {
	if len(pf.active) == 0 {
		return nil
	}
	var names []string
	for ei := range pf.active {
		names = append(names, e.edges[ei].dstName)
	}
	sort.Strings(names)
	return names
}

// clockTick fires a clock control actor: no consumption, immediate
// production of its control tokens after its execution time.
func (e *engine) clockTick(i int) {
	ns := &e.nodes[i]
	if ns.started >= ns.limit {
		return // clock exhausted its iteration budget; stop ticking
	}
	if ns.busy || !e.outputsHaveRoom(i, ns.started) {
		// Busy (long Exec) or back-pressured at tick time: skip to the
		// next period, as a watchdog would.
		ns.nextTick += e.g.Nodes[i].ClockPeriod
		e.push(event{time: ns.nextTick, kind: 1, node: i})
		return
	}
	ns.busy = true
	ns.started++
	e.inFlight++
	e.pendingModes = append(e.pendingModes, pendingFiring{node: i, firing: ns.started - 1, tok: ControlToken{Mode: core.ModeWaitAll}, start: e.now})
	dur := int64(0)
	if len(e.exec[i]) > 0 {
		dur = e.exec[i][int((ns.started-1)%int64(len(e.exec[i])))]
	}
	e.push(event{time: e.now + dur, kind: 0, node: i})
	if ns.started < ns.limit {
		ns.nextTick += e.g.Nodes[i].ClockPeriod
		e.push(event{time: ns.nextTick, kind: 1, node: i})
	}
}
