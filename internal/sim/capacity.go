package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/symb"
)

// RunBounded executes the configuration with finite channel capacities:
// a firing cannot start unless every channel it produces on has room for
// the tokens it will emit (control tokens included). This models the
// back-pressure a real implementation with statically allocated buffers
// exhibits. capacities is indexed by edge id; a negative entry means
// unbounded, zero means the channel can never hold a token.
//
// The run reports whether the graph still completed (did not artificially
// deadlock) under the given capacities, so callers can check a proposed
// buffer allocation for admissibility.
func RunBounded(cfg Config, capacities []int64) (*Result, bool, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, false, err
	}
	if len(capacities) != len(eng.edges) {
		return nil, false, fmt.Errorf("sim: %d capacities for %d edges", len(capacities), len(eng.edges))
	}
	eng.caps = capacities
	res, err := eng.run()
	if err != nil {
		return nil, false, err
	}
	// Completion check: every node fired as many times as the unbounded
	// reference run, or the graph quiesced with every non-dormant node at
	// its limit. The cheap proxy used here: re-run unbounded and compare
	// firing counts.
	ref, err := Run(cfg)
	if err != nil {
		return nil, false, err
	}
	complete := true
	for i := range res.Firings {
		if res.Firings[i] != ref.Firings[i] {
			complete = false
			break
		}
	}
	return res, complete, nil
}

// MinimalCapacities searches, per edge, for the smallest channel capacity
// that still lets the configuration complete, holding other edges at their
// current bound (seeded by the unbounded run's high-water marks, which are
// always sufficient). The result is a per-edge buffer allocation in tokens;
// its sum is the minimum-buffer metric the Fig. 8 experiment compares.
//
// Per-edge binary search against a token-accurate run is exact for the
// monotone property "capacity c suffices given the other capacities";
// jointly shrinking several edges below their individual minima could in
// principle trade space between channels, so the result is a (tight) upper
// bound on the joint optimum, which matches how the paper sizes one buffer
// per channel.
func MinimalCapacities(cfg Config) ([]int64, error) {
	ref, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	caps := append([]int64(nil), ref.HighWater...)
	feasible := func(c []int64) (bool, error) {
		_, ok, err := RunBounded(cfg, c)
		return ok, err
	}
	for ei := range caps {
		lo, hi := int64(0), caps[ei] // hi is known-feasible
		// Initial tokens can never be evicted; they are a hard floor.
		if init := cfg.Graph.Edges[ei].Initial; lo < init {
			lo = init
		}
		for lo < hi {
			mid := lo + (hi-lo)/2
			trial := append([]int64(nil), caps...)
			trial[ei] = mid
			ok, err := feasible(trial)
			if err != nil {
				return nil, err
			}
			if ok {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		caps[ei] = hi
	}
	return caps, nil
}

// edgeHasRoom reports whether producing n tokens on edge ei respects its
// capacity (debt-consumed tokens never occupy buffer space).
func (e *engine) edgeHasRoom(ei int, n int64) bool {
	if e.caps == nil || ei >= len(e.caps) || e.caps[ei] < 0 {
		return true
	}
	es := &e.edges[ei]
	arriving := n - es.debt
	if arriving < 0 {
		arriving = 0
	}
	return es.tokens+arriving <= e.caps[ei]
}

// outputsHaveRoom checks all channels node i would produce on at firing n.
// Output selection cannot be known before the firing commits for
// select-duplicate kernels, so the check is conservative: every potentially
// produced-on channel needs room.
func (e *engine) outputsHaveRoom(i int, firing int64) bool {
	for _, ei := range e.nodes[i].outEdges {
		es := &e.edges[ei]
		if !e.edgeHasRoom(ei, es.prodAt(firing)) {
			return false
		}
	}
	return true
}

// IterationPeriod estimates the steady-state iteration period of the
// configuration: the asymptotic time one full graph iteration adds once the
// pipeline is warm. It runs the simulator for warm and for warm+span
// iterations and divides the completion-time delta by span.
func IterationPeriod(cfg Config, warm, span int64) (float64, error) {
	if warm < 1 || span < 1 {
		return 0, fmt.Errorf("sim: warm and span must be >= 1")
	}
	c1 := cfg
	c1.Iterations = warm
	r1, err := Run(c1)
	if err != nil {
		return 0, err
	}
	c2 := cfg
	c2.Iterations = warm + span
	r2, err := Run(c2)
	if err != nil {
		return 0, err
	}
	return float64(r2.Time-r1.Time) / float64(span), nil
}

// BoundedFromEnv is a convenience wrapper evaluating a capacity expression
// per edge under the graph's parameters; used by tests that state expected
// buffer allocations symbolically.
func BoundedFromEnv(g *core.Graph, env symb.Env, exprs []string) ([]int64, error) {
	if len(exprs) != len(g.Edges) {
		return nil, fmt.Errorf("sim: %d capacity expressions for %d edges", len(exprs), len(g.Edges))
	}
	full := g.DefaultEnv()
	for k, v := range env {
		full[k] = v
	}
	out := make([]int64, len(exprs))
	for i, s := range exprs {
		e, err := symb.ParseExpr(s)
		if err != nil {
			return nil, err
		}
		v, err := e.EvalInt(full, 1)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
