package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/symb"
)

// RunBounded executes the configuration with finite channel capacities:
// a firing cannot start unless every channel it produces on has room for
// the tokens it will emit (control tokens included). This models the
// back-pressure a real implementation with statically allocated buffers
// exhibits. capacities is indexed by edge id; a negative entry means
// unbounded, zero means the channel can never hold a token.
//
// The run reports whether the graph still completed (did not artificially
// deadlock) under the given capacities, so callers can check a proposed
// buffer allocation for admissibility.
func RunBounded(cfg Config, capacities []int64) (*Result, bool, error) {
	s, err := NewSimulator(cfg)
	if err != nil {
		return nil, false, err
	}
	if err := s.SetCapacities(capacities); err != nil {
		return nil, false, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, false, err
	}
	// Completion check: every node fired as many times as the unbounded
	// reference run, or the graph quiesced with every non-dormant node at
	// its limit. The cheap proxy used here: re-run unbounded and compare
	// firing counts.
	ref, err := Run(cfg)
	if err != nil {
		return nil, false, err
	}
	complete := true
	for i := range res.Firings {
		if res.Firings[i] != ref.Firings[i] {
			complete = false
			break
		}
	}
	return res, complete, nil
}

// MinimalCapacities searches, per edge, for the smallest channel capacity
// that still lets the configuration complete, holding other edges at their
// current bound (seeded by the unbounded run's high-water marks, which are
// always sufficient). The result is a per-edge buffer allocation in tokens;
// its sum is the minimum-buffer metric the Fig. 8 experiment compares.
//
// Per-edge binary search against a token-accurate run is exact for the
// monotone property "capacity c suffices given the other capacities";
// jointly shrinking several edges below their individual minima could in
// principle trade space between channels, so the result is a (tight) upper
// bound on the joint optimum, which matches how the paper sizes one buffer
// per channel.
func MinimalCapacities(cfg Config) ([]int64, error) {
	return MinimalCapacitiesParallel(cfg, 1)
}

// speculationDepth is how many bisection levels are evaluated at once: the
// 2^d - 1 capacities the next d sequential probes could visit, all checked
// concurrently. Capped so the speculative waste stays below the win.
func speculationDepth(parallel int) int {
	d := 1
	for d < 4 && (1<<(d+1))-1 <= parallel {
		d++
	}
	return d
}

// speculativePivots appends every capacity the sequential bisection of
// [lo, hi) could probe within the next depth steps, mirroring the walk in
// MinimalCapacitiesParallel exactly.
func speculativePivots(lo, hi int64, depth int, out []int64) []int64 {
	if lo >= hi || depth == 0 {
		return out
	}
	mid := lo + (hi-lo)/2
	out = append(out, mid)
	out = speculativePivots(lo, mid, depth-1, out)
	return speculativePivots(mid+1, hi, depth-1, out)
}

// MinimalCapacitiesParallel is MinimalCapacities with the feasibility
// probes fanned out over up to parallel workers, each owning a pooled
// Simulator that is Reset between probes. Parallelism is speculative —
// the capacities the sequential bisection *could* probe next are evaluated
// concurrently and the walk then follows the sequential decision path —
// so the result is identical to MinimalCapacities whatever the worker
// count, even if feasibility were non-monotone.
func MinimalCapacitiesParallel(cfg Config, parallel int) ([]int64, error) {
	caps, _, err := MinimalCapacitiesRef(cfg, parallel)
	return caps, err
}

// MinimalCapacitiesRef is MinimalCapacitiesParallel returning also a copy
// of the unbounded reference run the search seeds from — callers that
// report observed high-water marks next to the minimized capacities (the
// a8 experiment) get them without paying another instantiate-and-run.
//
// The graph is compiled once: the reference run and every probe simulator
// share one Program's concrete graph (read-only during the search), so
// adding workers costs per-run state, not repeated instantiations; and
// each worker owns a reusable capacity-trial buffer, so a probe allocates
// nothing once its simulator is warm.
func MinimalCapacitiesRef(cfg Config, parallel int) ([]int64, *Result, error) {
	prog, err := core.Compile(cfg.Graph)
	if err != nil {
		return nil, nil, err
	}
	if err := prog.Rebind(cfg.Env); err != nil {
		return nil, nil, err
	}
	refSim, err := NewSimulatorFromProgram(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	refRun, err := refSim.Run()
	if err != nil {
		return nil, nil, err
	}
	// The run aliases the pooled simulator; copy what outlives the search.
	ref := &Result{
		Time:      refRun.Time,
		Firings:   append([]int64(nil), refRun.Firings...),
		HighWater: append([]int64(nil), refRun.HighWater...),
		Final:     append([]int64(nil), refRun.Final...),
		Quiescent: refRun.Quiescent,
		Busy:      append([]int64(nil), refRun.Busy...),
		Events:    append([]FireEvent(nil), refRun.Events...),
	}
	refFirings := ref.Firings
	caps := append([]int64(nil), ref.HighWater...)

	// Pooled probe simulators: trace callbacks and busy-time accounting are
	// irrelevant during feasibility probes, only firing counts matter.
	probeCfg := cfg
	probeCfg.Record = false
	probeCfg.OnFire = nil
	probeCfg.BuffersOnly = true
	if parallel < 1 {
		parallel = 1
	}
	sims := make([]*Simulator, parallel)
	trials := make([][]int64, parallel)
	for w := range sims {
		if sims[w], err = NewSimulatorFromProgram(prog, probeCfg); err != nil {
			return nil, nil, err
		}
		trials[w] = make([]int64, len(caps))
		if err := sims[w].SetCapacities(trials[w]); err != nil {
			return nil, nil, err
		}
	}

	// feasible(w, ei, c) runs the bounded configuration — current caps with
	// edge ei tried at c — on worker w's simulator and compares per-node
	// firing counts with the unbounded reference.
	feasible := func(w int, ei int, c int64) (bool, error) {
		s := sims[w]
		trial := trials[w]
		copy(trial, caps)
		trial[ei] = c
		s.Reset()
		res, err := s.Run()
		if err != nil {
			return false, err
		}
		for i := range res.Firings {
			if res.Firings[i] != refFirings[i] {
				return false, nil
			}
		}
		return true, nil
	}

	depth := speculationDepth(parallel)
	var pivots []int64
	verdicts := make([]bool, 0, 1<<4)
	for ei := range caps {
		lo, hi := int64(0), caps[ei] // hi is known-feasible
		// Initial tokens can never be evicted; they are a hard floor.
		if init := cfg.Graph.Edges[ei].Initial; lo < init {
			lo = init
		}
		for lo < hi {
			pivots = speculativePivots(lo, hi, depth, pivots[:0])
			verdicts = verdicts[:0]
			for range pivots {
				verdicts = append(verdicts, false)
			}
			err := pool.RunWorkers(len(pivots), parallel, func(w, k int) error {
				ok, err := feasible(w, ei, pivots[k])
				verdicts[k] = ok
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			lookup := func(c int64) bool {
				for k, p := range pivots {
					if p == c {
						return verdicts[k]
					}
				}
				panic("sim: speculative pivot set missed a probe")
			}
			for step := 0; step < depth && lo < hi; step++ {
				mid := lo + (hi-lo)/2
				if lookup(mid) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
		}
		caps[ei] = hi
	}
	return caps, ref, nil
}

// edgeHasRoom reports whether producing n tokens on edge ei respects its
// capacity (debt-consumed tokens never occupy buffer space).
func (s *Simulator) edgeHasRoom(ei int, n int64) bool {
	if s.caps == nil || ei >= len(s.caps) || s.caps[ei] < 0 {
		return true
	}
	es := &s.edges[ei]
	arriving := n - es.debt
	if arriving < 0 {
		arriving = 0
	}
	return es.tokens+arriving <= s.caps[ei]
}

// outputsHaveRoom checks all channels node i would produce on at firing n.
// Output selection cannot be known before the firing commits for
// select-duplicate kernels, so the check is conservative: every potentially
// produced-on channel needs room.
func (s *Simulator) outputsHaveRoom(i int, firing int64) bool {
	for _, ei := range s.nodes[i].outEdges {
		es := &s.edges[ei]
		if !s.edgeHasRoom(ei, es.prod.rate(firing)) {
			return false
		}
	}
	return true
}

// IterationPeriod estimates the steady-state iteration period of the
// configuration: the asymptotic time one full graph iteration adds once the
// pipeline is warm. It runs the simulator for warm and for warm+span
// iterations and divides the completion-time delta by span.
func IterationPeriod(cfg Config, warm, span int64) (float64, error) {
	if warm < 1 || span < 1 {
		return 0, fmt.Errorf("sim: warm and span must be >= 1")
	}
	c1 := cfg
	c1.Iterations = warm
	s, err := NewSimulator(c1)
	if err != nil {
		return 0, err
	}
	r1, err := s.Run()
	if err != nil {
		return 0, err
	}
	t1 := r1.Time
	s.SetIterations(warm + span)
	s.Reset()
	r2, err := s.Run()
	if err != nil {
		return 0, err
	}
	return float64(r2.Time-t1) / float64(span), nil
}

// BoundedFromEnv is a convenience wrapper evaluating a capacity expression
// per edge under the graph's parameters; used by tests that state expected
// buffer allocations symbolically.
func BoundedFromEnv(g *core.Graph, env symb.Env, exprs []string) ([]int64, error) {
	if len(exprs) != len(g.Edges) {
		return nil, fmt.Errorf("sim: %d capacity expressions for %d edges", len(exprs), len(g.Edges))
	}
	full := g.DefaultEnv()
	for k, v := range env {
		full[k] = v
	}
	out := make([]int64, len(exprs))
	for i, s := range exprs {
		e, err := symb.ParseExpr(s)
		if err != nil {
			return nil, err
		}
		v, err := e.EvalInt(full, 1)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
