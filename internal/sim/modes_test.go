package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestControlRateZeroReusesLastMode exercises the [0,1] control-consumption
// pattern: firings whose control rate is 0 reuse the previously selected
// mode (§II-B: the kernel reads a token only when one is due).
func TestControlRateZeroReusesLastMode(t *testing.T) {
	g := core.NewGraph("lastmode")
	srcA := g.AddKernel("srcA", 0)
	srcB := g.AddKernel("srcB", 0)
	con := g.AddControlActor("con", 0)
	tick := g.AddKernel("tick", 0)
	tr := g.AddTransaction("tr", 0)
	snk := g.AddKernel("snk", 0)

	// tr fires twice per iteration; its control port consumes [1,0]: the
	// first firing reads the mode, the second reuses it.
	if _, err := g.Connect(srcA, "[2]", tr, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	var aPort string
	{
		e := g.Edges[len(g.Edges)-1]
		aPort = g.Nodes[tr].Ports[e.DstPort].Name
	}
	if _, err := g.Connect(srcB, "[2]", tr, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(tr, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(tick, "[1]", con, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	// Control port with cyclo-static consumption [1,0].
	sp, err := g.AddPort(con, "c0", core.CtlOut, "[1]", 0)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := g.AddPort(tr, "ctl", core.CtlIn, "[1,0]", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectPorts(con, sp, tr, dp, 0); err != nil {
		t.Fatal(err)
	}

	decide := map[string]sim.DecideFunc{
		"con": func(int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				"c0": {Mode: core.ModeSelectOne, Selected: []string{aPort}},
			}
		},
	}
	res, err := sim.Run(sim.Config{Graph: g, Decide: decide, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	trID, _ := g.NodeByName("tr")
	if res.Firings[trID] != 2 {
		t.Fatalf("tr fired %d, want 2", res.Firings[trID])
	}
	// Both firings must have used select-one on srcA's port.
	for _, ev := range res.Events {
		if ev.Node != "tr" {
			continue
		}
		if ev.Mode != core.ModeSelectOne {
			t.Errorf("firing %d mode = %v, want select-one (reused)", ev.Firing, ev.Mode)
		}
		if len(ev.Selected) != 1 || ev.Selected[0] != aPort {
			t.Errorf("firing %d selected %v, want [%s]", ev.Firing, ev.Selected, aPort)
		}
	}
}

func TestClockSkipsTickWhileBusy(t *testing.T) {
	// A clock with a long execution time must skip overlapping ticks and
	// resume on its period grid.
	g := core.NewGraph("busyclock")
	clk := g.AddClock("clk", 10)
	g.Nodes[clk].Exec = []int64{25} // each firing takes 2.5 periods
	tr := g.AddTransaction("tr", 0)
	src := g.AddKernel("src", 0)
	snk := g.AddKernel("snk", 0)
	if _, err := g.Connect(src, "[3]", tr, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(tr, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectControl(clk, "[1]", tr, 0); err != nil {
		t.Fatal(err)
	}
	var ends []int64
	res, err := sim.Run(sim.Config{Graph: g,
		OnFire: func(ev sim.FireEvent) {
			if ev.Node == "clk" {
				ends = append(ends, ev.End)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent {
		t.Error("must quiesce")
	}
	// First tick at 10, done at 35; ticks at 20, 30 are skipped; next at
	// 40, done 65; then 70 -> 95.
	want := []int64{35, 65, 95}
	if len(ends) != len(want) {
		t.Fatalf("clock completions %v, want %v", ends, want)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Errorf("completion %d at %d, want %d", i, ends[i], want[i])
		}
	}
}

func TestProcessorsControlPriority(t *testing.T) {
	// With 1 PE and both a kernel and a control actor ready, the control
	// actor is dispatched first (§III-D), delaying the kernel.
	g := core.NewGraph("prio")
	src := g.AddKernel("src", 0)
	heavy := g.AddKernel("heavy", 100)
	con := g.AddControlActor("con", 10)
	tr := g.AddTransaction("tr", 0)
	snk := g.AddKernel("snk", 0)
	if _, err := g.Connect(src, "[1]", heavy, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "[1]", con, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(heavy, "[1]", tr, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(tr, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectControl(con, "[1]", tr, 0); err != nil {
		t.Fatal(err)
	}
	var conStart, heavyStart int64 = -1, -1
	_, err := sim.Run(sim.Config{Graph: g, Processors: 1,
		OnFire: func(ev sim.FireEvent) {
			switch ev.Node {
			case "con":
				conStart = ev.Start
			case "heavy":
				heavyStart = ev.Start
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if conStart < 0 || heavyStart < 0 {
		t.Fatal("both must fire")
	}
	if conStart > heavyStart {
		t.Errorf("control actor started at %d after kernel at %d", conStart, heavyStart)
	}
}

func TestHighWaterIncludesInitialTokens(t *testing.T) {
	g := core.NewGraph("hw")
	a := g.AddKernel("a", 0)
	b := g.AddKernel("b", 0)
	if _, err := g.Connect(a, "[1]", b, "[1]", 5); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if res.HighWater[0] < 5 {
		t.Errorf("high water %d must include the 5 initial tokens", res.HighWater[0])
	}
}
