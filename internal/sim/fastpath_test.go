package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/symb"
)

// ofdmCfg is the sweep-shaped configuration the fast-path tests exercise:
// control tokens, a select-duplicate, a transaction, multi-rate edges.
func ofdmCfg(t *testing.T) sim.Config {
	t.Helper()
	params := apps.OFDMParams{Beta: 6, M: 4, N: 32, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide}
}

// TestSimulatorResetReproducesRun verifies that a pooled simulator cycled
// through Reset produces exactly the metrics of a fresh engine, run after
// run.
func TestSimulatorResetReproducesRun(t *testing.T) {
	cfg := ofdmCfg(t)
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if round > 0 {
			s.Reset()
		}
		got, err := s.Run()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Time != want.Time || !reflect.DeepEqual(got.Firings, want.Firings) ||
			!reflect.DeepEqual(got.HighWater, want.HighWater) ||
			!reflect.DeepEqual(got.Final, want.Final) {
			t.Fatalf("round %d: pooled run diverged from fresh run", round)
		}
	}
}

// TestSimulatorSteadyStateAllocs locks in the allocation-free fast path:
// after the first run has grown every buffer to its high-water mark, a
// Reset+Run cycle must not allocate at all.
func TestSimulatorSteadyStateAllocs(t *testing.T) {
	cfg := ofdmCfg(t)
	cfg.BuffersOnly = true
	s, err := sim.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.Reset()
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+Run allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestBuffersOnlyMatchesFullRun checks the high-water-mark-only mode
// reports the same buffer metrics and firing counts as a full run.
func TestBuffersOnlyMatchesFullRun(t *testing.T) {
	cfg := ofdmCfg(t)
	full, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BuffersOnly = true
	lean, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.HighWater, lean.HighWater) ||
		!reflect.DeepEqual(full.Final, lean.Final) ||
		!reflect.DeepEqual(full.Firings, lean.Firings) ||
		full.Time != lean.Time {
		t.Fatal("BuffersOnly run diverged from full run")
	}
}

// TestMinimalCapacitiesParallelIdentical verifies the speculative parallel
// bisection returns exactly the sequential capacities at several worker
// counts.
func TestMinimalCapacitiesParallelIdentical(t *testing.T) {
	params := apps.OFDMParams{Beta: 3, M: 4, N: 16, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide}
	want, err := sim.MinimalCapacities(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := sim.MinimalCapacitiesParallel(cfg, workers)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%d: capacities %v, want %v", workers, got, want)
		}
	}
}

// TestSetIterationsRebounds verifies a pooled simulator re-bounded to more
// iterations matches a fresh engine at that bound.
func TestSetIterationsRebounds(t *testing.T) {
	cfg := ofdmCfg(t)
	s, err := sim.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.SetIterations(3)
	s.Reset()
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 3
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || !reflect.DeepEqual(got.Firings, want.Firings) {
		t.Fatal("SetIterations(3) diverged from a fresh 3-iteration run")
	}
}
