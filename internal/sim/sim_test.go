package sim_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/symb"
)

func pipeline(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph("pipe")
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 2)
	c := g.AddKernel("C", 3)
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", c, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPipelineOneIteration(t *testing.T) {
	res, err := sim.Run(sim.Config{Graph: pipeline(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent {
		t.Error("run must quiesce")
	}
	if res.Time != 6 {
		t.Errorf("completion time = %d, want 6 (1+2+3 sequential dependencies)", res.Time)
	}
	for i, f := range res.Firings {
		if f != 1 {
			t.Errorf("firings[%d] = %d, want 1", i, f)
		}
	}
	for ei, hw := range res.HighWater {
		if hw != 1 {
			t.Errorf("highwater[%d] = %d, want 1", ei, hw)
		}
	}
	for ei, fin := range res.Final {
		if fin != 0 {
			t.Errorf("final[%d] = %d, want 0 (back to initial state)", ei, fin)
		}
	}
}

func TestMultipleIterations(t *testing.T) {
	res, err := sim.Run(sim.Config{Graph: pipeline(t), Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Firings {
		if f != 5 {
			t.Errorf("firings[%d] = %d, want 5", i, f)
		}
	}
	// Pipelined execution: C is the bottleneck (3 units each, serialized,
	// first start at t=3): completion = 3 + 5*3 = 18.
	if res.Time != 18 {
		t.Errorf("time = %d, want 18", res.Time)
	}
}

func TestProcessorsLimitSerializes(t *testing.T) {
	// Two independent sources, one PE: firings cannot overlap.
	g := core.NewGraph("par")
	a := g.AddKernel("A", 10)
	b := g.AddKernel("B", 10)
	z := g.AddKernel("Z", 0)
	if _, err := g.Connect(a, "[1]", z, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", z, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	unlimited, err := sim.Run(sim.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.Time != 10 {
		t.Errorf("unlimited time = %d, want 10 (A and B in parallel)", unlimited.Time)
	}
	one, err := sim.Run(sim.Config{Graph: g, Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Time != 20 {
		t.Errorf("1-PE time = %d, want 20 (A and B serialized)", one.Time)
	}
}

func TestCSDFPhasedRates(t *testing.T) {
	// a produces [1,0,1]: over one iteration of q_a = 3, b sees 2 tokens.
	g := core.NewGraph("phase")
	a := g.AddKernel("a", 1)
	b := g.AddKernel("b", 1)
	if _, err := g.Connect(a, "[1,0,1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := g.NodeByName("a")
	bID, _ := g.NodeByName("b")
	if res.Firings[aID] != 3 || res.Firings[bID] != 2 {
		t.Errorf("firings = %v, want a:3 b:2", res.Firings)
	}
}

func TestFig2Simulation(t *testing.T) {
	g := apps.Fig2()
	// F selects the high-priority input (e7 from E) on each firing.
	decide := map[string]sim.DecideFunc{
		"C": func(firing int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				"c4": {Mode: core.ModeHighestPriority},
			}
		},
	}
	res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"p": 2}, Decide: decide, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent {
		t.Error("Fig. 2 run must quiesce")
	}
	// A, B, C, D, E fire their full counts (p=2 minimal vector: q =
	// [1,2,1,1,2,2,2]).
	for _, w := range []struct {
		name string
		want int64
	}{{"A", 1}, {"B", 2}, {"C", 1}, {"D", 1}, {"E", 2}, {"F", 2}} {
		id, _ := g.NodeByName(w.name)
		if res.Firings[id] != w.want {
			t.Errorf("firings[%s] = %d, want %d", w.name, res.Firings[id], w.want)
		}
	}
}

func TestOFDMBufferMatchesPaperFormula(t *testing.T) {
	// EXP-F8 kernel: the simulated high-water total for the TPDF OFDM
	// demodulator must equal the paper's Buff = 3 + β(12N+L), and the CSDF
	// baseline must equal β(17N+L).
	for _, p := range []apps.OFDMParams{
		{Beta: 10, M: 4, N: 512, L: 1},
		{Beta: 40, M: 4, N: 1024, L: 1},
		{Beta: 7, M: 4, N: 256, L: 16},
	} {
		tg := apps.OFDMTPDF(p)
		decide, err := apps.OFDMDecide(tg, p.M)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Graph: tg, Env: symb.Env(p.Env()), Decide: decide})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.TotalBuffer(), apps.PaperTPDFBuffer(p); got != want {
			t.Errorf("TPDF buffer(β=%d,N=%d) = %d, want paper formula %d", p.Beta, p.N, got, want)
		}
		// QPSK must never fire when QAM is selected.
		qpsk, _ := tg.NodeByName("QPSK")
		if res.Firings[qpsk] != 0 {
			t.Errorf("QPSK fired %d times despite QAM mode", res.Firings[qpsk])
		}

		cg := apps.OFDMCSDF(p)
		cres, err := sim.Run(sim.Config{Graph: cg, Env: symb.Env(p.Env())})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cres.TotalBuffer(), apps.PaperCSDFBuffer(p); got != want {
			t.Errorf("CSDF buffer(β=%d,N=%d) = %d, want paper formula %d", p.Beta, p.N, got, want)
		}
	}
}

func TestOFDMQPSKMode(t *testing.T) {
	p := apps.OFDMParams{Beta: 5, M: 2, N: 128, L: 2}
	g := apps.OFDMTPDF(p)
	decide, err := apps.OFDMDecide(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env(p.Env()), Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	qam, _ := g.NodeByName("QAM")
	qpsk, _ := g.NodeByName("QPSK")
	snk, _ := g.NodeByName("SNK")
	if res.Firings[qam] != 0 || res.Firings[qpsk] != 1 || res.Firings[snk] != 1 {
		t.Errorf("firings QAM=%d QPSK=%d SNK=%d, want 0/1/1",
			res.Firings[qam], res.Firings[qpsk], res.Firings[snk])
	}
}

func TestEdgeDetectionDeadline(t *testing.T) {
	// EXP-F6: with the paper's measured times and a 500 ms deadline, the
	// Transaction must pick Sobel — the best method finished by the
	// deadline (Canny 1040 and Prewitt 522 are still running at t=500+ε,
	// Quick Mask 200 is outranked by Sobel 473).
	app := apps.EdgeDetection(500, nil)
	res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(), Record: true})
	if err != nil {
		t.Fatal(err)
	}
	var chosen string
	for _, ev := range res.Events {
		if ev.Node == "Trans" {
			if len(ev.Selected) != 1 {
				t.Fatalf("transaction selected %v, want exactly one", ev.Selected)
			}
			chosen = app.DetectorFor(ev.Selected[0])
		}
	}
	if chosen != "Sobel" {
		t.Errorf("selected %q at 500ms deadline, want Sobel", chosen)
	}
	// IWrite received exactly one image.
	iw, _ := app.Graph.NodeByName("IWrite")
	if res.Firings[iw] != 1 {
		t.Errorf("IWrite fired %d times, want 1", res.Firings[iw])
	}
}

func TestEdgeDetectionDeadlineSweep(t *testing.T) {
	// The chosen detector improves as the deadline is relaxed.
	wants := []struct {
		deadline int64
		best     string
	}{
		{250, "QMask"},
		{500, "Sobel"},
		{600, "Prewitt"},
		{1200, "Canny"},
	}
	for _, w := range wants {
		app := apps.EdgeDetection(w.deadline, nil)
		res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(), Record: true})
		if err != nil {
			t.Fatalf("deadline %d: %v", w.deadline, err)
		}
		var chosen string
		for _, ev := range res.Events {
			if ev.Node == "Trans" && len(ev.Selected) == 1 {
				chosen = app.DetectorFor(ev.Selected[0])
			}
		}
		if chosen != w.best {
			t.Errorf("deadline %dms: selected %q, want %q", w.deadline, chosen, w.best)
		}
	}
}

func TestClockTicksAtPeriod(t *testing.T) {
	app := apps.EdgeDetection(500, nil)
	var clockEnd int64 = -1
	res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(),
		OnFire: func(ev sim.FireEvent) {
			if ev.Node == "Clock" {
				clockEnd = ev.End
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if clockEnd != 500 {
		t.Errorf("clock fired at %d, want 500", clockEnd)
	}
	if !res.Quiescent {
		t.Error("must quiesce")
	}
}

func TestRejectedTokensDiscardedWithDebt(t *testing.T) {
	// Both branches produce, transaction picks one; the loser's tokens must
	// be discarded (debt) so the channel drains even though they arrive
	// after the transaction fired.
	g := core.NewGraph("debt")
	fast := g.AddKernel("fast", 1)
	slow := g.AddKernel("slow", 100)
	src := g.AddKernel("src", 0)
	tr := g.AddTransaction("tr", 0)
	clk := g.AddClock("clk", 10)
	z := g.AddKernel("z", 0)
	if _, err := g.Connect(src, "[1]", fast, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "[1]", slow, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	eFast, err := g.ConnectPriority(fast, "[1]", tr, "[1]", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	eSlow, err := g.ConnectPriority(slow, "[1]", tr, "[1]", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(tr, "[1]", z, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	cid, err := g.ConnectControl(clk, "[1]", tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	port := g.Nodes[clk].Ports[g.Edges[cid].SrcPort].Name
	decide := map[string]sim.DecideFunc{
		"clk": func(int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{port: {Mode: core.ModeHighestPriority}}
		},
	}
	res, err := sim.Run(sim.Config{Graph: g, Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	// At t=10 only fast has finished; tr picks it (priority is moot: slow
	// unavailable). slow completes at t=100; its token must be absorbed by
	// the discard debt, leaving the channel empty.
	if res.Final[eSlow] != 0 {
		t.Errorf("slow->tr channel final = %d, want 0 (debt absorbs late token)", res.Final[eSlow])
	}
	if res.Final[eFast] != 0 {
		t.Errorf("fast->tr channel final = %d, want 0", res.Final[eFast])
	}
}

func TestSelectManyMode(t *testing.T) {
	// Select-duplicate producing to two of three outputs.
	g := core.NewGraph("selmany")
	src := g.AddKernel("src", 0)
	dup := g.AddSelectDuplicate("dup", 0)
	con := g.AddControlActor("con", 0)
	a := g.AddKernel("a", 0)
	b := g.AddKernel("b", 0)
	c := g.AddKernel("c", 0)
	if _, err := g.Connect(src, "[1]", dup, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "[1]", con, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	var outs []string
	for _, k := range []core.NodeID{a, b, c} {
		eid, err := g.Connect(dup, "[1]", k, "[1]", 0)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, g.Nodes[dup].Ports[g.Edges[eid].SrcPort].Name)
	}
	cid, err := g.ConnectControl(con, "[1]", dup, 0)
	if err != nil {
		t.Fatal(err)
	}
	port := g.Nodes[con].Ports[g.Edges[cid].SrcPort].Name
	decide := map[string]sim.DecideFunc{
		"con": func(int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				port: {Mode: core.ModeSelectMany, Selected: []string{outs[0], outs[2]}},
			}
		},
	}
	res, err := sim.Run(sim.Config{Graph: g, Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := g.NodeByName("a")
	bID, _ := g.NodeByName("b")
	cID, _ := g.NodeByName("c")
	if res.Firings[aID] != 1 || res.Firings[bID] != 0 || res.Firings[cID] != 1 {
		t.Errorf("firings a=%d b=%d c=%d, want 1/0/1",
			res.Firings[aID], res.Firings[bID], res.Firings[cID])
	}
}

func TestDeadlockedGraphQuiescesWithoutFiring(t *testing.T) {
	g := apps.Fig4Deadlocked()
	res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"p": 1}})
	if err != nil {
		t.Fatal(err)
	}
	bID, _ := g.NodeByName("B")
	cID, _ := g.NodeByName("C")
	if res.Firings[bID] != 0 || res.Firings[cID] != 0 {
		t.Errorf("deadlocked cycle fired: %v", res.Firings)
	}
}

func TestFig4bSimulationCompletes(t *testing.T) {
	g := apps.Fig4b()
	res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"p": 3}})
	if err != nil {
		t.Fatal(err)
	}
	// q = [2, 2p, 2p] at p=3 -> [2, 6, 6]; the cycle interleaves correctly.
	want := []int64{2, 6, 6}
	for j, w := range want {
		if res.Firings[j] != w {
			t.Errorf("firings[%d] = %d, want %d", j, res.Firings[j], w)
		}
	}
	for ei, fin := range res.Final {
		if fin != g.Edges[ei].Initial {
			t.Errorf("edge %d final = %d, want initial %d", ei, fin, g.Edges[ei].Initial)
		}
	}
}

func TestMaxEventsGuard(t *testing.T) {
	g := pipeline(t)
	if _, err := sim.Run(sim.Config{Graph: g, Iterations: 100, MaxEvents: 3}); err == nil {
		t.Error("MaxEvents guard must trip")
	}
}
