package sim_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/symb"
)

// burstGraph: a produces 4 tokens per firing, b drains them one at a time
// over 4 firings.
func burstGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph("burst")
	a := g.AddKernel("a", 1)
	b := g.AddKernel("b", 1)
	if _, err := g.Connect(a, "[4]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunBoundedSufficientCapacity(t *testing.T) {
	g := burstGraph(t)
	res, complete, err := sim.RunBounded(sim.Config{Graph: g}, []int64{4})
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("capacity 4 must suffice for a 4-token burst")
	}
	if res.HighWater[0] != 4 {
		t.Errorf("highwater = %d, want 4", res.HighWater[0])
	}
}

func TestRunBoundedInsufficientCapacity(t *testing.T) {
	g := burstGraph(t)
	_, complete, err := sim.RunBounded(sim.Config{Graph: g}, []int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("capacity 3 cannot hold a 4-token burst: producer must block")
	}
}

func TestBackpressureThrottlesPipelining(t *testing.T) {
	// Fast producer, slow consumer over several iterations: with capacity 1
	// the producer serializes behind the consumer.
	g := core.NewGraph("throttle")
	a := g.AddKernel("a", 1)
	b := g.AddKernel("b", 10)
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	unbounded, err := sim.Run(sim.Config{Graph: g, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	bounded, complete, err := sim.RunBounded(sim.Config{Graph: g, Iterations: 5}, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("capacity 1 suffices for a 1-token-per-firing pipeline")
	}
	if bounded.HighWater[0] != 1 {
		t.Errorf("bounded highwater = %d, want 1", bounded.HighWater[0])
	}
	if unbounded.HighWater[0] <= 1 {
		t.Errorf("unbounded highwater = %d, want > 1 (producer runs ahead)", unbounded.HighWater[0])
	}
	if bounded.Time < unbounded.Time {
		t.Errorf("back-pressure cannot finish earlier: %d < %d", bounded.Time, unbounded.Time)
	}
}

func TestMinimalCapacitiesPipeline(t *testing.T) {
	g := burstGraph(t)
	caps, err := sim.MinimalCapacities(sim.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != 4 {
		t.Errorf("minimal capacity = %d, want 4 (the burst size)", caps[0])
	}
}

func TestMinimalCapacitiesRespectInitialTokens(t *testing.T) {
	g := core.NewGraph("init")
	a := g.AddKernel("a", 1)
	b := g.AddKernel("b", 1)
	if _, err := g.Connect(a, "[1]", b, "[1]", 3); err != nil {
		t.Fatal(err)
	}
	caps, err := sim.MinimalCapacities(sim.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] < 3 {
		t.Errorf("capacity %d below the 3 initial tokens", caps[0])
	}
}

func TestMinimalCapacitiesOFDMMatchesPaper(t *testing.T) {
	// The per-edge minimum capacities of the TPDF OFDM graph sum to the
	// paper's 3 + β(12N+L): every channel's high-water mark is its true
	// minimum because each stage transfers its whole batch at once.
	params := apps.OFDMParams{Beta: 5, M: 4, N: 64, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide}
	caps, err := sim.MinimalCapacities(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range caps {
		total += c
	}
	if want := apps.PaperTPDFBuffer(params); total != want {
		t.Errorf("minimal total capacity = %d, want paper %d", total, want)
	}
}

func TestBoundedFromEnv(t *testing.T) {
	g := burstGraph(t)
	caps, err := sim.BoundedFromEnv(g, nil, []string{"2*2"})
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != 4 {
		t.Errorf("caps = %v", caps)
	}
	if _, err := sim.BoundedFromEnv(g, nil, []string{"1", "2"}); err == nil {
		t.Error("wrong expression count must fail")
	}
}
