package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestFig1CSDFFixture(t *testing.T) {
	g := apps.Fig1CSDF()
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 2}
	for j, w := range want {
		if sol.Q[j] != w {
			t.Errorf("q[%d] = %d, want %d", j, sol.Q[j], w)
		}
	}
}

func TestOFDMPayloadGraphShape(t *testing.T) {
	g := apps.OFDMPayloadGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 5 || len(g.Edges) != 4 {
		t.Errorf("payload graph has %d nodes %d edges", len(g.Nodes), len(g.Edges))
	}
	res, err := sim.Run(sim.Config{Graph: g, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Firings {
		if f != 3 {
			t.Errorf("node %d fired %d, want 3", i, f)
		}
	}
}

func TestOFDMParamsEnv(t *testing.T) {
	env := apps.OFDMParams{Beta: 7, M: 2, N: 128, L: 4}.Env()
	if env["beta"] != 7 || env["M"] != 2 || env["N"] != 128 || env["L"] != 4 {
		t.Errorf("Env = %v", env)
	}
}

func TestMotionEstimationApp(t *testing.T) {
	app := apps.MotionEstimation(100, 200, 40)
	if err := app.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Port lookup round-trips.
	for _, name := range []string{"ME_FULL", "ME_TSS"} {
		port := app.TranPortOf[name]
		if port == "" {
			t.Fatalf("no port for %s", name)
		}
		if got := app.SearchFor(port); got != name {
			t.Errorf("SearchFor(%q) = %q, want %q", port, got, name)
		}
	}
	if app.SearchFor("nonexistent") != "" {
		t.Error("unknown port must resolve to empty")
	}
	// Tight budget commits the fast search.
	res, err := sim.Run(sim.Config{
		Graph: app.Graph,
		Decide: map[string]sim.DecideFunc{
			"CLK": func(int64) map[string]sim.ControlToken {
				return map[string]sim.ControlToken{
					app.ClockPort: {Mode: core.ModeHighestPriority},
				}
			},
		},
		Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var chosen string
	for _, ev := range res.Events {
		if ev.Node == "TRAN" && len(ev.Selected) == 1 {
			chosen = app.SearchFor(ev.Selected[0])
		}
	}
	if chosen != "ME_TSS" {
		t.Errorf("100ms budget chose %q, want ME_TSS (full takes 200)", chosen)
	}
}

func TestEdgeDetectionPortMaps(t *testing.T) {
	app := apps.EdgeDetection(500, nil)
	for _, det := range apps.DetectorNames {
		port := app.TranPortOf[det]
		if port == "" {
			t.Fatalf("no transaction port recorded for %s", det)
		}
		if app.DetectorFor(port) != det {
			t.Errorf("DetectorFor(%q) != %s", port, det)
		}
	}
	if app.DetectorFor("bogus") != "" {
		t.Error("unknown port should map to empty detector")
	}
	if app.ClockPort == "" {
		t.Error("clock port not recorded")
	}
}

func TestGraphStringsMentionStructure(t *testing.T) {
	s := apps.OFDMTPDF(apps.DefaultOFDM()).String()
	for _, frag := range []string{"ofdm-tpdf", "params", "beta", "(control)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestParamAccessors(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	names := g.ParamNames()
	if len(names) != 4 || names[0] != "beta" {
		t.Errorf("ParamNames = %v", names)
	}
	clkApp := apps.EdgeDetection(500, nil)
	clk := clkApp.Clock
	node := clkApp.Graph.Nodes[clk]
	if node.ClockPeriod != 500 || node.Kind != core.KindControl {
		t.Errorf("clock node wrong: %+v", node)
	}
	// Port rate access.
	tran := clkApp.Graph.Nodes[clkApp.Tran]
	ctl, ok := tran.ControlPort()
	if !ok {
		t.Fatal("transaction must have a control port")
	}
	r := tran.Ports[ctl].RateAt(5)
	if v, _ := r.Int(); v != 1 {
		t.Errorf("control rate = %s, want 1", r)
	}
	if len(tran.DataIns()) != 4 || len(tran.DataOuts()) != 1 {
		t.Errorf("transaction shape: %d in, %d out", len(tran.DataIns()), len(tran.DataOuts()))
	}
}
