package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// OFDMParams configures the Fig. 7 cognitive-radio OFDM demodulator.
// The four principal parameters of §IV-B:
//
//	Beta — vectorization degree: OFDM symbols per activation (1..100)
//	M    — demapping scheme: 2 = QPSK, 4 = 16-QAM
//	N    — OFDM symbol length (512 or 1024)
//	L    — cyclic prefix length
type OFDMParams struct {
	Beta int64
	M    int64
	N    int64
	L    int64
}

// DefaultOFDM returns the configuration used for the paper's buffer plots.
func DefaultOFDM() OFDMParams {
	return OFDMParams{Beta: 10, M: 4, N: 512, L: 1}
}

// OFDMTPDF builds the runtime-reconfigurable OFDM demodulator of Fig. 7 as
// a TPDF graph:
//
//	SRC -[β(N+L)]-> RCP -[βN]-> FFT -[βN]-> DUP ={QPSK|QAM}=> TRAN -[βMN]-> SNK
//
// SRC also sends one token per firing to the control actor CON, which
// selects QPSK (M=2) or QAM (M=4) by sending control tokens to the
// Select-duplicate DUP and the Transaction TRAN (the square-bracket region
// of the schedule "SRC [CON RCP FFT DUP QPSK QAM] TRAN SNK").
func OFDMTPDF(p OFDMParams) *core.Graph {
	g := core.NewGraph("ofdm-tpdf")
	g.AddParam("beta", p.Beta, 1, 100)
	g.AddParam("M", p.M, 2, 4)
	g.AddParam("N", p.N, 1, 4096)
	g.AddParam("L", p.L, 1, 64)

	src := g.AddKernel("SRC", 10)
	con := g.AddControlActor("CON", 1)
	rcp := g.AddKernel("RCP", 20)
	fft := g.AddKernel("FFT", 200)
	dup := g.AddSelectDuplicate("DUP", 5)
	qpsk := g.AddKernel("QPSK", 60)
	qam := g.AddKernel("QAM", 90)
	tran := g.AddTransaction("TRAN", 5)
	snk := g.AddKernel("SNK", 1)

	mustEdge(g.Connect(src, "beta*(N+L)", rcp, "beta*(N+L)", 0))
	mustEdge(g.Connect(rcp, "beta*N", fft, "beta*N", 0))
	mustEdge(g.Connect(fft, "beta*N", dup, "beta*N", 0))
	mustEdge(g.Connect(dup, "beta*N", qpsk, "beta*N", 0))
	mustEdge(g.Connect(dup, "beta*N", qam, "beta*N", 0))
	mustEdge(g.ConnectPriority(qpsk, "2*beta*N", tran, "2*beta*N", 0, 1))
	mustEdge(g.ConnectPriority(qam, "4*beta*N", tran, "4*beta*N", 0, 2))
	mustEdge(g.Connect(tran, "beta*M*N", snk, "beta*M*N", 0))
	mustEdge(g.Connect(src, "[1]", con, "[1]", 0))
	mustEdge(g.ConnectControl(con, "[1]", dup, 0))
	mustEdge(g.ConnectControl(con, "[1]", tran, 0))
	return g
}

// OFDMCSDF builds the static CSDF baseline used for the Fig. 8 comparison:
// the same pipeline without control actors, where both demapping branches
// are always active (redundant computation) and the merge stage must
// consume both results, exactly the topology a CSDF implementation is
// forced into when the mode cannot be expressed.
func OFDMCSDF(p OFDMParams) *core.Graph {
	g := core.NewGraph("ofdm-csdf")
	g.AddParam("beta", p.Beta, 1, 100)
	g.AddParam("M", p.M, 2, 4)
	g.AddParam("N", p.N, 1, 4096)
	g.AddParam("L", p.L, 1, 64)

	src := g.AddKernel("SRC", 10)
	rcp := g.AddKernel("RCP", 20)
	fft := g.AddKernel("FFT", 200)
	dup := g.AddKernel("DUP", 5)
	qpsk := g.AddKernel("QPSK", 60)
	qam := g.AddKernel("QAM", 90)
	mrg := g.AddKernel("MRG", 5)
	snk := g.AddKernel("SNK", 1)

	mustEdge(g.Connect(src, "beta*(N+L)", rcp, "beta*(N+L)", 0))
	mustEdge(g.Connect(rcp, "beta*N", fft, "beta*N", 0))
	mustEdge(g.Connect(fft, "beta*N", dup, "beta*N", 0))
	mustEdge(g.Connect(dup, "beta*N", qpsk, "beta*N", 0))
	mustEdge(g.Connect(dup, "beta*N", qam, "beta*N", 0))
	mustEdge(g.Connect(qpsk, "2*beta*N", mrg, "2*beta*N", 0))
	mustEdge(g.Connect(qam, "4*beta*N", mrg, "4*beta*N", 0))
	mustEdge(g.Connect(mrg, "6*beta*N", snk, "6*beta*N", 0))
	return g
}

// OFDMEnv converts the parameter struct into an evaluation environment.
func (p OFDMParams) Env() map[string]int64 {
	return map[string]int64{"beta": p.Beta, "M": p.M, "N": p.N, "L": p.L}
}

// OFDMDecide returns the CON control decision selecting the demapping
// branch: QPSK for M=2, QAM for M=4. DUP is told which output to produce on
// and TRAN which input to take, implementing the dynamic topology change of
// §IV-B ("the dynamic topology ... allows removing unused edges").
func OFDMDecide(g *core.Graph, m int64) (map[string]sim.DecideFunc, error) {
	branch := "QPSK"
	if m == 4 {
		branch = "QAM"
	} else if m != 2 {
		return nil, fmt.Errorf("apps: M must be 2 or 4, got %d", m)
	}
	con, ok := g.NodeByName("CON")
	if !ok {
		return nil, fmt.Errorf("apps: graph has no CON control actor")
	}
	dup, _ := g.NodeByName("DUP")
	tran, _ := g.NodeByName("TRAN")
	branchID, ok := g.NodeByName(branch)
	if !ok {
		return nil, fmt.Errorf("apps: graph has no %s kernel", branch)
	}

	// Resolve port names: DUP's output feeding the branch, TRAN's input fed
	// by the branch, and CON's two control-output ports.
	var dupOut, tranIn string
	var conPorts []string
	for _, e := range g.Edges {
		if e.Src == dup && e.Dst == branchID {
			dupOut = g.Nodes[dup].Ports[e.SrcPort].Name
		}
		if e.Src == branchID && e.Dst == tran {
			tranIn = g.Nodes[tran].Ports[e.DstPort].Name
		}
	}
	dupPort, tranPort := "", ""
	for _, e := range g.Edges {
		if e.Src != con {
			continue
		}
		p := g.Nodes[con].Ports[e.SrcPort].Name
		conPorts = append(conPorts, p)
		switch e.Dst {
		case dup:
			dupPort = p
		case tran:
			tranPort = p
		}
	}
	if dupOut == "" || tranIn == "" || dupPort == "" || tranPort == "" {
		return nil, fmt.Errorf("apps: OFDM graph wiring incomplete (ports %v)", conPorts)
	}
	// The decision is the same every firing; build it once and return the
	// shared map so simulation sweeps stay allocation-free (the engine
	// never mutates decision maps).
	decision := map[string]sim.ControlToken{
		dupPort:  {Mode: core.ModeSelectOne, Selected: []string{dupOut}},
		tranPort: {Mode: core.ModeSelectOne, Selected: []string{tranIn}},
	}
	return map[string]sim.DecideFunc{
		"CON": func(firing int64) map[string]sim.ControlToken { return decision },
	}, nil
}

// OFDMPayloadGraph is the single-rate payload view of the Fig. 7 pipeline
// used by the payload runner: one token carries one OFDM symbol's batch of
// samples/bits, so every stage fires once per symbol.
func OFDMPayloadGraph() *core.Graph {
	g := core.NewGraph("ofdm-payload")
	src := g.AddKernel("SRC")
	rcp := g.AddKernel("RCP")
	fft := g.AddKernel("FFT")
	qam := g.AddKernel("QAM")
	snk := g.AddKernel("SNK")
	mustEdge(g.Connect(src, "[1]", rcp, "[1]", 0))
	mustEdge(g.Connect(rcp, "[1]", fft, "[1]", 0))
	mustEdge(g.Connect(fft, "[1]", qam, "[1]", 0))
	mustEdge(g.Connect(qam, "[1]", snk, "[1]", 0))
	return g
}

// PaperTPDFBuffer is the paper's analytic minimum buffer size for the TPDF
// implementation (Fig. 8): Buff = 3 + β(12N + L).
func PaperTPDFBuffer(p OFDMParams) int64 {
	return 3 + p.Beta*(12*p.N+p.L)
}

// PaperCSDFBuffer is the paper's analytic minimum buffer size for the CSDF
// implementation (Fig. 8): Buff = β(17N + L).
func PaperCSDFBuffer(p OFDMParams) int64 {
	return p.Beta * (17*p.N + p.L)
}
