// Package apps builds the TPDF application graphs used throughout the
// paper: the running example of Fig. 2, the liveness examples of Fig. 4,
// the edge-detection application of Fig. 6, the OFDM demodulator of Fig. 7
// (with its CSDF baseline for the Fig. 8 comparison), and an FM-radio
// pipeline in the style of the StreamIt benchmarks cited in §IV-B.
package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csdf"
)

// mustEdge panics on builder errors: the graphs here are static fixtures
// whose construction cannot fail once written correctly, and a panic during
// init of a fixture is a programming error, not a runtime condition.
func mustEdge(id core.EdgeID, err error) core.EdgeID {
	if err != nil {
		panic(fmt.Sprintf("apps: building fixture: %v", err))
	}
	return id
}

// Fig1CSDF builds the paper's Fig. 1 CSDF example: three actors in a cycle
// with cyclo-static rates giving q = [3, 2, 2], two initial tokens on e2,
// and the unique admissible start (a3)^2 (a1)^3 (a2)^2.
func Fig1CSDF() *csdf.Graph {
	g := csdf.NewGraph()
	a1 := g.AddActor("a1", 1)
	a2 := g.AddActor("a2", 1)
	a3 := g.AddActor("a3", 1)
	g.ConnectNamed("e1", a1, []int64{1, 0, 1}, a2, []int64{1, 1}, 0)
	g.ConnectNamed("e2", a2, []int64{0, 2}, a3, []int64{1}, 2)
	g.ConnectNamed("e3", a3, []int64{2}, a1, []int64{1, 1, 2}, 0)
	return g
}

// Fig2 builds the paper's Fig. 2 running example: kernels A, B, D, E and a
// Transaction kernel F with parametric rate p, control actor C driving F's
// control port, plus a sink consuming F's output so every port is connected.
//
//	e1: A [p]  -> [1]   B
//	e2: B [1]  -> [2]   D
//	e3: B [1]  -> [2]   C
//	e4: B [1]  -> [1]   E
//	e5: C [2]  -> [1,1] F   (control channel)
//	e6: D [2]  -> [0,2] F
//	e7: E [1]  -> [1,1] F
//	e8: F [1]  -> [1]   SNK
//
// The symbolic repetition vector is q = [2, 2p, p, p, 2p, 2p] as derived in
// Example 2, with q_SNK = 2p for the added sink.
func Fig2() *core.Graph {
	g := core.NewGraph("fig2")
	g.AddParam("p", 2, 1, 100)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	c := g.AddControlActor("C", 1)
	d := g.AddKernel("D", 1)
	e := g.AddKernel("E", 1)
	f := g.AddTransaction("F", 1)
	snk := g.AddKernel("SNK", 0)
	mustEdge(g.Connect(a, "[p]", b, "[1]", 0))
	mustEdge(g.Connect(b, "[1]", d, "[2]", 0))
	mustEdge(g.Connect(b, "[1]", c, "[2]", 0))
	mustEdge(g.Connect(b, "[1]", e, "[1]", 0))
	mustEdge(g.ConnectControl(c, "[2]", f, 0))
	mustEdge(g.ConnectPriority(d, "[2]", f, "[0,2]", 0, 1))
	mustEdge(g.ConnectPriority(e, "[1]", f, "[1,1]", 0, 2))
	mustEdge(g.Connect(f, "[1]", snk, "[1]", 0))
	return g
}

// Fig4a builds the live cyclic TPDF graph of Fig. 4(a):
//
//	A [p,p] -> [1,1] B;  B [0,2] -> [1] C;  C [1] -> [1,1] B (2 initial)
//
// The cycle (B, C) clusters into Ω with local solution B^2 C^2 and the
// global schedule A^2 Ω^p = A^2 (B^2 C^2)^p.
func Fig4a() *core.Graph {
	g := core.NewGraph("fig4a")
	g.AddParam("p", 2, 1, 100)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	c := g.AddKernel("C", 1)
	mustEdge(g.Connect(a, "[p,p]", b, "[1,1]", 0))
	mustEdge(g.Connect(b, "[0,2]", c, "[1]", 0))
	mustEdge(g.Connect(c, "[1]", b, "[1,1]", 2))
	return g
}

// Fig4b builds the Fig. 4(b) variant: production [2,0] and a single initial
// token on the back edge. It is live only through the late schedule
// (B C C B) — the naive B^2 C^2 local order deadlocks.
func Fig4b() *core.Graph {
	g := core.NewGraph("fig4b")
	g.AddParam("p", 2, 1, 100)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	c := g.AddKernel("C", 1)
	mustEdge(g.Connect(a, "[p,p]", b, "[1,1]", 0))
	mustEdge(g.Connect(b, "[2,0]", c, "[1]", 0))
	mustEdge(g.Connect(c, "[1]", b, "[1,1]", 1))
	return g
}

// Fig4Deadlocked is Fig4b with the initial token removed: the cycle can
// never start, so liveness analysis must reject it.
func Fig4Deadlocked() *core.Graph {
	g := core.NewGraph("fig4-deadlock")
	g.AddParam("p", 2, 1, 100)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	c := g.AddKernel("C", 1)
	mustEdge(g.Connect(a, "[p,p]", b, "[1,1]", 0))
	mustEdge(g.Connect(b, "[2,0]", c, "[1]", 0))
	mustEdge(g.Connect(c, "[1]", b, "[1,1]", 0))
	return g
}
