package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// FMRadioCSDF builds the StreamIt-style FM radio pipeline as plain CSDF:
// a decimating low-pass front end, FM demodulation, and a three-band
// equalizer whose bands all execute every iteration (§IV-B notes such
// StreamIt benchmarks "must perform redundant calculations that are not
// needed with models allowing dynamic topology changes").
//
//	ANT -[8]-> LPF -[1]-> DEMOD -> {BAND1, BAND2, BAND3} -> SUM -> SPK
func FMRadioCSDF() *core.Graph {
	g := core.NewGraph("fmradio-csdf")
	ant := g.AddKernel("ANT", 1)
	lpf := g.AddKernel("LPF", 8)
	dem := g.AddKernel("DEMOD", 4)
	dup := g.AddKernel("DUP", 1)
	sum := g.AddKernel("SUM", 2)
	spk := g.AddKernel("SPK", 1)
	mustEdge(g.Connect(ant, "[8]", lpf, "[8]", 0))
	mustEdge(g.Connect(lpf, "[1]", dem, "[1]", 0))
	mustEdge(g.Connect(dem, "[1]", dup, "[1]", 0))
	for _, name := range []string{"BAND1", "BAND2", "BAND3"} {
		b := g.AddKernel(name, 6)
		mustEdge(g.Connect(dup, "[1]", b, "[1]", 0))
		mustEdge(g.Connect(b, "[1]", sum, "[1]", 0))
	}
	mustEdge(g.Connect(sum, "[1]", spk, "[1]", 0))
	return g
}

// FMRadioTPDF is the TPDF variant: a Select-duplicate distributes the
// demodulated stream and a control actor enables only the equalizer bands
// the current listening mode needs, the dynamic-topology optimization TPDF
// enables over the CSDF version.
func FMRadioTPDF() *core.Graph {
	g := core.NewGraph("fmradio-tpdf")
	ant := g.AddKernel("ANT", 1)
	lpf := g.AddKernel("LPF", 8)
	dem := g.AddKernel("DEMOD", 4)
	dup := g.AddSelectDuplicate("DUP", 1)
	con := g.AddControlActor("CON", 1)
	tran := g.AddTransaction("TRAN", 1)
	spk := g.AddKernel("SPK", 1)
	mustEdge(g.Connect(ant, "[8]", lpf, "[8]", 0))
	mustEdge(g.Connect(lpf, "[1]", dem, "[1]", 0))
	mustEdge(g.Connect(dem, "[1]", dup, "[1]", 0))
	mustEdge(g.Connect(dem, "[1]", con, "[1]", 0))
	for i, name := range []string{"BAND1", "BAND2", "BAND3"} {
		b := g.AddKernel(name, 6)
		mustEdge(g.Connect(dup, "[1]", b, "[1]", 0))
		mustEdge(g.ConnectPriority(b, "[1]", tran, "[1]", 0, i+1))
	}
	mustEdge(g.Connect(tran, "[1]", spk, "[1]", 0))
	mustEdge(g.ConnectControl(con, "[1]", dup, 0))
	mustEdge(g.ConnectControl(con, "[1]", tran, 0))
	return g
}

// FMRadioSelectBand builds the control decision enabling exactly one
// equalizer band (1-based index) on the TPDF radio: DUP produces only to
// that band and TRAN takes only its output.
func FMRadioSelectBand(g *core.Graph, band int) (map[string]sim.DecideFunc, error) {
	if band < 1 || band > 3 {
		return nil, fmt.Errorf("apps: band %d out of 1..3", band)
	}
	name := fmt.Sprintf("BAND%d", band)
	bid, ok := g.NodeByName(name)
	if !ok {
		return nil, fmt.Errorf("apps: graph has no %s", name)
	}
	dup, _ := g.NodeByName("DUP")
	tran, _ := g.NodeByName("TRAN")
	con, _ := g.NodeByName("CON")
	var dupOut, tranIn, dupPort, tranPort string
	for _, e := range g.Edges {
		switch {
		case e.Src == dup && e.Dst == bid:
			dupOut = g.Nodes[dup].Ports[e.SrcPort].Name
		case e.Src == bid && e.Dst == tran:
			tranIn = g.Nodes[tran].Ports[e.DstPort].Name
		case e.Src == con && e.Dst == dup:
			dupPort = g.Nodes[con].Ports[e.SrcPort].Name
		case e.Src == con && e.Dst == tran:
			tranPort = g.Nodes[con].Ports[e.SrcPort].Name
		}
	}
	if dupOut == "" || tranIn == "" || dupPort == "" || tranPort == "" {
		return nil, fmt.Errorf("apps: FM radio wiring incomplete")
	}
	return map[string]sim.DecideFunc{
		"CON": func(firing int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				dupPort:  {Mode: core.ModeSelectOne, Selected: []string{dupOut}},
				tranPort: {Mode: core.ModeSelectOne, Selected: []string{tranIn}},
			}
		},
	}, nil
}
