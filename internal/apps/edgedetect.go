package apps

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// PaperDetectorTimes are the execution times (ms) the paper measured for a
// 1024×1024 image on an Intel Core i3 @ 2.53 GHz (Fig. 6 table).
var PaperDetectorTimes = map[string]int64{
	"QMask":   200,
	"Sobel":   473,
	"Prewitt": 522,
	"Canny":   1040,
}

// DetectorPriorities orders the methods by result quality, the paper's
// "Canny > Prewitt > Sobel > Quick Mask".
var DetectorPriorities = map[string]int{
	"QMask":   1,
	"Sobel":   2,
	"Prewitt": 3,
	"Canny":   4,
}

// DetectorNames lists the methods in Fig. 6's table order.
var DetectorNames = []string{"QMask", "Sobel", "Prewitt", "Canny"}

// EdgeDetectionApp wraps the Fig. 6 TPDF graph with the handles needed to
// drive and observe it.
type EdgeDetectionApp struct {
	Graph *core.Graph
	Clock core.NodeID
	Tran  core.NodeID
	// TranPortOf maps detector name to the Transaction input port fed by it,
	// so simulation traces can be decoded.
	TranPortOf map[string]string
	// ClockPort is the clock's control-output port name.
	ClockPort string
}

// EdgeDetection builds the Fig. 6 application: IRead duplicates the input
// image to four edge detectors running in parallel; a Transaction kernel
// selects, at the deadline signalled by a Clock control actor, the best
// result available (highest-priority mode with Canny > Prewitt > Sobel >
// Quick Mask); IWrite consumes the chosen result.
//
// deadlineMS is the clock period (the paper uses 500 ms); execMS gives the
// per-detector execution times (PaperDetectorTimes when nil).
func EdgeDetection(deadlineMS int64, execMS map[string]int64) *EdgeDetectionApp {
	if execMS == nil {
		execMS = PaperDetectorTimes
	}
	g := core.NewGraph("edge-detection")
	iread := g.AddKernel("IRead", 10)
	idup := g.AddSelectDuplicate("IDuplicate", 1)
	tran := g.AddTransaction("Trans", 0)
	clk := g.AddClock("Clock", deadlineMS)
	iwrite := g.AddKernel("IWrite", 5)

	mustEdge(g.Connect(iread, "[1]", idup, "[1]", 0))
	app := &EdgeDetectionApp{Graph: g, Clock: clk, Tran: tran, TranPortOf: map[string]string{}}
	for _, name := range DetectorNames {
		det := g.AddKernel(name, execMS[name])
		mustEdge(g.Connect(idup, "[1]", det, "[1]", 0))
		eid := mustEdge(g.ConnectPriority(det, "[1]", tran, "[1]", 0, DetectorPriorities[name]))
		e := g.Edges[eid]
		app.TranPortOf[name] = g.Nodes[tran].Ports[e.DstPort].Name
	}
	mustEdge(g.Connect(tran, "[1]", iwrite, "[1]", 0))
	cid := mustEdge(g.ConnectControl(clk, "[1]", tran, 0))
	app.ClockPort = g.Nodes[clk].Ports[g.Edges[cid].SrcPort].Name
	return app
}

// DeadlineDecide returns the control decision driving the Transaction in
// highest-priority mode: at each clock tick, pick the best finished result.
func (a *EdgeDetectionApp) DeadlineDecide() map[string]sim.DecideFunc {
	port := a.ClockPort
	return map[string]sim.DecideFunc{
		a.Graph.Nodes[a.Clock].Name: func(firing int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				port: {Mode: core.ModeHighestPriority},
			}
		},
	}
}

// DetectorFor resolves a Transaction input port name back to the detector
// feeding it.
func (a *EdgeDetectionApp) DetectorFor(port string) string {
	for det, p := range a.TranPortOf {
		if p == port {
			return det
		}
	}
	return ""
}
