package apps_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/symb"
)

func TestVC1DecoderBounded(t *testing.T) {
	g := apps.VC1Decoder()
	rep := analysis.Analyze(g)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !rep.Bounded {
		t.Fatalf("VC-1 decoder must be bounded:\n%s", rep)
	}
	// All actors fire once per frame regardless of mb.
	for j, q := range rep.Solution.Q {
		if !q.IsOne() {
			t.Errorf("q[%s] = %s, want 1", g.Nodes[j].Name, q)
		}
	}
}

func TestVC1FrameModes(t *testing.T) {
	for _, c := range []struct {
		frame  string
		active string
		idle   string
	}{
		{"I", "INTRA", "MC"},
		{"P", "MC", "INTRA"},
	} {
		g := apps.VC1Decoder()
		decide, err := apps.VC1FrameDecide(g, c.frame)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"mb": 99}, Decide: decide})
		if err != nil {
			t.Fatal(err)
		}
		activeID, _ := g.NodeByName(c.active)
		idleID, _ := g.NodeByName(c.idle)
		outID, _ := g.NodeByName("OUT")
		if res.Firings[activeID] != 1 || res.Firings[idleID] != 0 {
			t.Errorf("%s-frame: %s fired %d, %s fired %d; want 1/0",
				c.frame, c.active, res.Firings[activeID], c.idle, res.Firings[idleID])
		}
		if res.Firings[outID] != 1 {
			t.Errorf("%s-frame: OUT fired %d, want 1", c.frame, res.Firings[outID])
		}
		// Busy accounting: the idle branch contributes zero.
		if res.Busy[idleID] != 0 {
			t.Errorf("%s-frame: idle branch busy %d, want 0", c.frame, res.Busy[idleID])
		}
		if res.Busy[activeID] <= 0 {
			t.Errorf("%s-frame: active branch busy %d, want > 0", c.frame, res.Busy[activeID])
		}
	}
	if _, err := apps.VC1FrameDecide(apps.VC1Decoder(), "B"); err == nil {
		t.Error("B frames are not modelled; must be rejected")
	}
}

func TestVC1AlternatingFramesAcrossIterations(t *testing.T) {
	// Regression: per-firing mode decisions must re-enable a previously
	// deselected branch without the earlier rejection stealing its tokens
	// (select modes treat unchosen edges as absent, not as drained).
	g := apps.VC1Decoder()
	iDecide, err := apps.VC1FrameDecide(g, "I")
	if err != nil {
		t.Fatal(err)
	}
	pDecide, err := apps.VC1FrameDecide(g, "P")
	if err != nil {
		t.Fatal(err)
	}
	decide := map[string]sim.DecideFunc{
		"CON": func(firing int64) map[string]sim.ControlToken {
			if firing%2 == 0 {
				return iDecide["CON"](firing)
			}
			return pDecide["CON"](firing)
		},
	}
	res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"mb": 5}, Iterations: 6, Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	intra, _ := g.NodeByName("INTRA")
	mc, _ := g.NodeByName("MC")
	out, _ := g.NodeByName("OUT")
	if res.Firings[out] != 6 {
		t.Fatalf("decoded %d frames, want 6 (alternation must not starve TRAN)", res.Firings[out])
	}
	if res.Firings[intra] != 3 || res.Firings[mc] != 3 {
		t.Errorf("INTRA %d / MC %d, want 3/3", res.Firings[intra], res.Firings[mc])
	}
	for ei, fin := range res.Final {
		if fin != g.Edges[ei].Initial {
			t.Errorf("edge %s final %d != initial %d", g.Edges[ei].Name, fin, g.Edges[ei].Initial)
		}
	}
}

func TestVC1BufferSavings(t *testing.T) {
	// Dynamic path selection must beat running both prediction paths.
	g := apps.VC1Decoder()
	decide, err := apps.VC1FrameDecide(g, "P")
	if err != nil {
		t.Fatal(err)
	}
	env := symb.Env{"mb": 396}
	selected, err := sim.Run(sim.Config{Graph: g, Env: env, Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	both, err := sim.Run(sim.Config{Graph: g, Env: env}) // wait-all default
	if err != nil {
		t.Fatal(err)
	}
	if selected.TotalBuffer() >= both.TotalBuffer() {
		t.Errorf("selected-path buffer %d should beat both-paths %d",
			selected.TotalBuffer(), both.TotalBuffer())
	}
}
