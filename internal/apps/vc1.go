package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// VC1Decoder builds a VC-1-style video decoder as a TPDF graph — the case
// study the paper's §V says SPDF and BPDF evaluate, replicated here
// "without introducing parameter communication and synchronization between
// firings of modifiers and users". The parameter mb is the number of
// macroblocks per frame; the control actor selects the prediction path per
// frame type:
//
//	PARSE -[mb]-> ED -> DUP ={ INTRA | MC }=> TRAN -> IDCT -> DEBLK -> OUT
//
// I-frames use intra prediction only; P-frames use motion compensation.
func VC1Decoder() *core.Graph {
	g := core.NewGraph("vc1")
	g.AddParam("mb", 396, 1, 8160) // 396 = CIF, 8160 = 1080p macroblocks

	parse := g.AddKernel("PARSE", 5)
	ed := g.AddKernel("ED", 20)
	dup := g.AddSelectDuplicate("DUP", 1)
	con := g.AddControlActor("CON", 1)
	intra := g.AddKernel("INTRA", 30)
	mc := g.AddKernel("MC", 45)
	tran := g.AddTransaction("TRAN", 1)
	idct := g.AddKernel("IDCT", 25)
	deblk := g.AddKernel("DEBLK", 15)
	out := g.AddKernel("OUT", 2)

	mustEdge(g.Connect(parse, "mb", ed, "mb", 0))
	mustEdge(g.Connect(parse, "[1]", con, "[1]", 0))
	mustEdge(g.Connect(ed, "mb", dup, "mb", 0))
	mustEdge(g.Connect(dup, "mb", intra, "mb", 0))
	mustEdge(g.Connect(dup, "mb", mc, "mb", 0))
	mustEdge(g.ConnectPriority(intra, "mb", tran, "mb", 0, 1))
	mustEdge(g.ConnectPriority(mc, "mb", tran, "mb", 0, 2))
	mustEdge(g.Connect(tran, "mb", idct, "mb", 0))
	mustEdge(g.Connect(idct, "mb", deblk, "mb", 0))
	mustEdge(g.Connect(deblk, "mb", out, "mb", 0))
	mustEdge(g.ConnectControl(con, "[1]", dup, 0))
	mustEdge(g.ConnectControl(con, "[1]", tran, 0))
	return g
}

// VC1FrameDecide returns the control decision for a frame type: "I" routes
// macroblocks through intra prediction, "P" through motion compensation.
func VC1FrameDecide(g *core.Graph, frameType string) (map[string]sim.DecideFunc, error) {
	var branch string
	switch frameType {
	case "I":
		branch = "INTRA"
	case "P":
		branch = "MC"
	default:
		return nil, fmt.Errorf("apps: frame type %q not I or P", frameType)
	}
	bid, ok := g.NodeByName(branch)
	if !ok {
		return nil, fmt.Errorf("apps: graph has no %s kernel", branch)
	}
	dup, _ := g.NodeByName("DUP")
	tran, _ := g.NodeByName("TRAN")
	con, _ := g.NodeByName("CON")
	var dupOut, tranIn, dupPort, tranPort string
	for _, e := range g.Edges {
		switch {
		case e.Src == dup && e.Dst == bid:
			dupOut = g.Nodes[dup].Ports[e.SrcPort].Name
		case e.Src == bid && e.Dst == tran:
			tranIn = g.Nodes[tran].Ports[e.DstPort].Name
		case e.Src == con && e.Dst == dup:
			dupPort = g.Nodes[con].Ports[e.SrcPort].Name
		case e.Src == con && e.Dst == tran:
			tranPort = g.Nodes[con].Ports[e.SrcPort].Name
		}
	}
	if dupOut == "" || tranIn == "" || dupPort == "" || tranPort == "" {
		return nil, fmt.Errorf("apps: VC-1 wiring incomplete")
	}
	return map[string]sim.DecideFunc{
		"CON": func(firing int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				dupPort:  {Mode: core.ModeSelectOne, Selected: []string{dupOut}},
				tranPort: {Mode: core.ModeSelectOne, Selected: []string{tranIn}},
			}
		},
	}, nil
}
