package apps_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/symb"
)

func TestAllFixturesValidate(t *testing.T) {
	for _, g := range []interface {
		Validate() error
	}{
		apps.Fig2(), apps.Fig4a(), apps.Fig4b(), apps.Fig4Deadlocked(),
		apps.OFDMTPDF(apps.DefaultOFDM()), apps.OFDMCSDF(apps.DefaultOFDM()),
		apps.FMRadioCSDF(), apps.FMRadioTPDF(),
		apps.EdgeDetection(500, nil).Graph,
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("fixture invalid: %v", err)
		}
	}
}

func TestAllFixturesBoundedExceptDeadlock(t *testing.T) {
	bounded := []func() string{
		func() string { r := analysis.Analyze(apps.Fig2()); return verdict("fig2", r.Bounded, r.Err) },
		func() string { r := analysis.Analyze(apps.Fig4a()); return verdict("fig4a", r.Bounded, r.Err) },
		func() string { r := analysis.Analyze(apps.Fig4b()); return verdict("fig4b", r.Bounded, r.Err) },
		func() string {
			r := analysis.Analyze(apps.OFDMTPDF(apps.DefaultOFDM()))
			return verdict("ofdm-tpdf", r.Bounded, r.Err)
		},
		func() string {
			r := analysis.Analyze(apps.FMRadioTPDF())
			return verdict("fmradio-tpdf", r.Bounded, r.Err)
		},
		func() string {
			r := analysis.Analyze(apps.EdgeDetection(500, nil).Graph)
			return verdict("edge-detection", r.Bounded, r.Err)
		},
	}
	for _, f := range bounded {
		if msg := f(); msg != "" {
			t.Error(msg)
		}
	}
	if r := analysis.Analyze(apps.Fig4Deadlocked()); r.Bounded {
		t.Error("deadlocked fixture must not be bounded")
	}
}

func verdict(name string, bounded bool, err error) string {
	if err != nil {
		return name + ": " + err.Error()
	}
	if !bounded {
		return name + ": expected bounded"
	}
	return ""
}

func TestPaperBufferFormulas(t *testing.T) {
	p := apps.OFDMParams{Beta: 10, M: 4, N: 512, L: 1}
	if got := apps.PaperTPDFBuffer(p); got != 3+10*(12*512+1) {
		t.Errorf("TPDF formula = %d", got)
	}
	if got := apps.PaperCSDFBuffer(p); got != 10*(17*512+1) {
		t.Errorf("CSDF formula = %d", got)
	}
	// The paper's 29% claim: 5N/(17N+L) ≈ 29.4% for large N.
	imp := 1 - float64(apps.PaperTPDFBuffer(p))/float64(apps.PaperCSDFBuffer(p))
	if imp < 0.28 || imp > 0.31 {
		t.Errorf("formula improvement = %.3f, want ≈ 0.294", imp)
	}
}

func TestOFDMDecideRejectsBadM(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	if _, err := apps.OFDMDecide(g, 3); err == nil {
		t.Error("M=3 must be rejected")
	}
}

func TestFMRadioBandSelection(t *testing.T) {
	g := apps.FMRadioTPDF()
	decide, err := apps.FMRadioSelectBand(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Graph: g, Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	for band := 1; band <= 3; band++ {
		id, _ := g.NodeByName(bandName(band))
		want := int64(0)
		if band == 2 {
			want = 1 // the LPF decimates 8 -> 1, so each band fires once
		}
		if res.Firings[id] != want {
			t.Errorf("band %d fired %d, want %d", band, res.Firings[id], want)
		}
	}
	if _, err := apps.FMRadioSelectBand(g, 9); err == nil {
		t.Error("band 9 must be rejected")
	}
}

func bandName(i int) string { return map[int]string{1: "BAND1", 2: "BAND2", 3: "BAND3"}[i] }

func TestFMRadioTPDFSavesBuffer(t *testing.T) {
	tg := apps.FMRadioTPDF()
	decide, err := apps.FMRadioSelectBand(tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := sim.Run(sim.Config{Graph: tg, Decide: decide})
	if err != nil {
		t.Fatal(err)
	}
	cg := apps.FMRadioCSDF()
	cres, err := sim.Run(sim.Config{Graph: cg})
	if err != nil {
		t.Fatal(err)
	}
	if tres.TotalBuffer() >= cres.TotalBuffer() {
		t.Errorf("TPDF radio buffer %d should beat CSDF %d",
			tres.TotalBuffer(), cres.TotalBuffer())
	}
}

func TestEdgeDetectionCustomTimes(t *testing.T) {
	times := map[string]int64{"QMask": 10, "Sobel": 20, "Prewitt": 30, "Canny": 40}
	app := apps.EdgeDetection(25, times)
	res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(), Record: true})
	if err != nil {
		t.Fatal(err)
	}
	var chosen string
	for _, ev := range res.Events {
		if ev.Node == "Trans" && len(ev.Selected) == 1 {
			chosen = app.DetectorFor(ev.Selected[0])
		}
	}
	// IRead(10) + IDup(1) + Sobel(20) = 31 > 25; QMask done at 21 < 25.
	if chosen != "QMask" {
		t.Errorf("chosen = %q, want QMask", chosen)
	}
}

func TestFig2SymbolicAgainstInstances(t *testing.T) {
	// The symbolic repetition vector evaluated at p must match the concrete
	// vector of the instantiated graph up to the global scale factor.
	g := apps.Fig2()
	sol, err := analysis.Consistency(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int64{1, 2, 3, 7, 10} {
		qSym, err := sol.EvalQ(symb.Env{"p": p})
		if err != nil {
			t.Fatal(err)
		}
		cg, _, err := g.Instantiate(symb.Env{"p": p})
		if err != nil {
			t.Fatal(err)
		}
		csol, err := cg.RepetitionVector()
		if err != nil {
			t.Fatal(err)
		}
		// qSym = k * csol.Q for a positive integer k.
		k := qSym[0] / csol.Q[0]
		if k <= 0 || qSym[0] != k*csol.Q[0] {
			t.Fatalf("p=%d: scale mismatch %v vs %v", p, qSym, csol.Q)
		}
		for j := range qSym {
			if qSym[j] != k*csol.Q[j] {
				t.Errorf("p=%d: q[%d] symbolic %d != %d×%d", p, j, qSym[j], k, csol.Q[j])
			}
		}
	}
}
