package apps

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// MotionEstimationApp is the §V AVC-encoder scenario: two motion-vector
// searches of different quality and cost race under a deadline, and a
// Transaction kernel with a quality threshold commits the best result
// available in time ("to choose dynamically the highest quality video
// available within real-time constraints").
type MotionEstimationApp struct {
	Graph *core.Graph
	Clock core.NodeID
	Tran  core.NodeID
	// TranPortOf maps search kernel name ("ME_FULL", "ME_TSS") to its
	// Transaction input port.
	TranPortOf map[string]string
	// ClockPort is the clock's control-output port.
	ClockPort string
}

// MotionEstimation builds the graph. fullMS and tssMS are the worst-case
// execution times of the exhaustive and three-step searches; deadlineMS the
// encoder's frame budget. Priorities encode quality: full search outranks
// the heuristic.
func MotionEstimation(deadlineMS, fullMS, tssMS int64) *MotionEstimationApp {
	g := core.NewGraph("avc-me")
	frame := g.AddKernel("FRAME", 1)
	dup := g.AddSelectDuplicate("DUP", 0)
	full := g.AddKernel("ME_FULL", fullMS)
	tss := g.AddKernel("ME_TSS", tssMS)
	tran := g.AddTransaction("TRAN", 0)
	clk := g.AddClock("CLK", deadlineMS)
	enc := g.AddKernel("ENC", 2)

	app := &MotionEstimationApp{Graph: g, Clock: clk, Tran: tran, TranPortOf: map[string]string{}}
	mustEdge(g.Connect(frame, "[1]", dup, "[1]", 0))
	for _, k := range []struct {
		id   core.NodeID
		name string
		prio int
	}{{full, "ME_FULL", 2}, {tss, "ME_TSS", 1}} {
		mustEdge(g.Connect(dup, "[1]", k.id, "[1]", 0))
		eid := mustEdge(g.ConnectPriority(k.id, "[1]", tran, "[1]", 0, k.prio))
		app.TranPortOf[k.name] = g.Nodes[tran].Ports[g.Edges[eid].DstPort].Name
	}
	mustEdge(g.Connect(tran, "[1]", enc, "[1]", 0))
	cid := mustEdge(g.ConnectControl(clk, "[1]", tran, 0))
	app.ClockPort = g.Nodes[clk].Ports[g.Edges[cid].SrcPort].Name
	return app
}

// DeadlineDecide returns the clock decision committing the
// highest-priority search result available when the frame budget expires.
func (a *MotionEstimationApp) DeadlineDecide() map[string]sim.DecideFunc {
	clock := a.Graph.Nodes[a.Clock].Name
	return map[string]sim.DecideFunc{
		clock: func(int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				a.ClockPort: {Mode: core.ModeHighestPriority},
			}
		},
	}
}

// SearchFor resolves a Transaction input port back to the search kernel.
func (a *MotionEstimationApp) SearchFor(port string) string {
	for name, p := range a.TranPortOf {
		if p == port {
			return name
		}
	}
	return ""
}
