package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// randomCheckpoint builds a structurally consistent checkpoint with random
// shapes and payloads drawn from the codec's supported type set.
func randomCheckpoint(rng *rand.Rand) *engine.Checkpoint {
	nNodes := 1 + rng.Intn(6)
	nEdges := rng.Intn(8)
	ck := &engine.Checkpoint{
		Graph:     fmt.Sprintf("g%d", rng.Intn(100)),
		Completed: rng.Int63n(1 << 40),
		Digest:    rng.Uint64(),
		AtEntry:   rng.Intn(2) == 0,
		Params:    map[string]int64{},
		Nodes:     make([]string, nNodes),
		Fired:     make([]int64, nNodes),
		Base:      make([]int64, nNodes),
		EdgeNames: make([]string, nEdges),
		Edges:     make([][]any, nEdges),
	}
	for i := 0; i < rng.Intn(6); i++ {
		ck.Params[fmt.Sprintf("p%d", rng.Intn(10))] = rng.Int63() - rng.Int63()
	}
	for i := range ck.Nodes {
		ck.Nodes[i] = fmt.Sprintf("n%d", i)
		ck.Fired[i] = rng.Int63n(1 << 30)
		ck.Base[i] = rng.Int63n(1 << 30)
	}
	for i := range ck.EdgeNames {
		ck.EdgeNames[i] = fmt.Sprintf("n%d->n%d#%d", rng.Intn(nNodes), rng.Intn(nNodes), i)
		toks := make([]any, rng.Intn(10))
		for j := range toks {
			toks[j] = randomValue(rng, 0)
		}
		ck.Edges[i] = toks
	}
	ck.User = randomValue(rng, 0)
	return ck
}

func randomValue(rng *rand.Rand, depth int) any {
	n := 9
	if depth >= 2 {
		n = 8 // no further nesting
	}
	switch rng.Intn(n) {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 0
	case 2:
		return int(rng.Int63()) - int(rng.Int63())
	case 3:
		return rng.Int63() - rng.Int63()
	case 4:
		return rng.NormFloat64()
	case 5:
		return strings.Repeat("x", rng.Intn(8)) + fmt.Sprint(rng.Intn(1000))
	case 6:
		b := make([]byte, rng.Intn(12))
		rng.Read(b)
		return b
	case 7:
		v := make([]int64, rng.Intn(6))
		for i := range v {
			v[i] = rng.Int63() - rng.Int63()
		}
		return v
	default:
		v := make([]any, rng.Intn(4))
		for i := range v {
			v[i] = randomValue(rng, depth+1)
		}
		return v
	}
}

// TestCodecRoundTripProperty: random snapshots round-trip with full
// structural and type fidelity, and re-encoding the decoded snapshot is
// byte-identical (deterministic encoding).
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := &Snapshot{
			SessionID:  fmt.Sprintf("s%d", i),
			Tenant:     fmt.Sprintf("t%d", rng.Intn(5)),
			GraphText:  fmt.Sprintf("graph %d {\n a -> b\n}\n", i),
			Checkpoint: randomCheckpoint(rng),
		}
		enc, err := Encode(nil, s)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.SessionID != s.SessionID || got.Tenant != s.Tenant || got.GraphText != s.GraphText {
			t.Fatalf("identity mismatch: %+v vs %+v", got, s)
		}
		if !reflect.DeepEqual(normalize(got.Checkpoint), normalize(s.Checkpoint)) {
			t.Fatalf("checkpoint mismatch at %d:\n got %#v\nwant %#v", i, got.Checkpoint, s.Checkpoint)
		}
		re, err := Encode(nil, got)
		if err != nil {
			t.Fatalf("re-encode %d: %v", i, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encode not byte-identical at %d", i)
		}
	}
}

// normalize maps empty slices/maps to a canonical form so DeepEqual
// compares content, not nil-vs-empty representation.
func normalize(ck *engine.Checkpoint) *engine.Checkpoint {
	out := ck.Clone()
	if len(out.Params) == 0 {
		out.Params = nil
	}
	if len(out.Nodes) == 0 {
		out.Nodes, out.Fired, out.Base = nil, nil, nil
	}
	if len(out.EdgeNames) == 0 {
		out.EdgeNames, out.Edges = nil, nil
	}
	for i, e := range out.Edges {
		if len(e) == 0 {
			out.Edges[i] = nil
		}
	}
	out.User = normalizeValue(out.User)
	for i := range out.Edges {
		for j := range out.Edges[i] {
			out.Edges[i][j] = normalizeValue(out.Edges[i][j])
		}
	}
	return out
}

func normalizeValue(v any) any {
	switch x := v.(type) {
	case []byte:
		if len(x) == 0 {
			return []byte{}
		}
	case []int64:
		if len(x) == 0 {
			return []int64{}
		}
	case []any:
		if len(x) == 0 {
			return []any{}
		}
		out := make([]any, len(x))
		for i := range x {
			out[i] = normalizeValue(x[i])
		}
		return out
	}
	return v
}

// TestCodecCorruptionDetectedEverywhere: flipping a bit at every byte
// offset, and truncating to every prefix length, must yield an ErrCorrupt
// (or at minimum an error) — never a silently wrong decode.
func TestCodecCorruptionDetectedEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := &Snapshot{
		SessionID:  "victim",
		Tenant:     "acme",
		GraphText:  "graph g {\n src -> sink\n}\n",
		Checkpoint: randomCheckpoint(rng),
	}
	enc, err := Encode(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc); err != nil {
		t.Fatalf("pristine decode: %v", err)
	}

	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x5a
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// TestDecodeGuardsCountPreallocations: a CRC-valid (crafted) frame whose
// count fields lie must be rejected before the decoder preallocates for
// them — a huge params/node/edge hint would otherwise OOM on make().
func TestDecodeGuardsCountPreallocations(t *testing.T) {
	var b []byte
	b = putString(b, "g")                      // Graph
	b = binary.AppendVarint(b, 1)              // Completed
	b = binary.LittleEndian.AppendUint64(b, 0) // Digest
	b = append(b, 0)                           // AtEntry
	b = binary.AppendUvarint(b, 1<<40)         // params count: absurd
	if _, err := decodeCheckpoint(b); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge param count not rejected: %v", err)
	}
}

func TestCodecRejectsUnsupportedPayload(t *testing.T) {
	ck := randomCheckpoint(rand.New(rand.NewSource(3)))
	ck.User = make(chan int)
	_, err := Encode(nil, &Snapshot{SessionID: "s", Checkpoint: ck})
	if err == nil || !strings.Contains(err.Error(), "unsupported payload type") {
		t.Fatalf("want unsupported-type error, got %v", err)
	}
}

func testSnapshot(seed int64, completed int64) *Snapshot {
	ck := randomCheckpoint(rand.New(rand.NewSource(seed)))
	ck.Completed = completed
	return &Snapshot{SessionID: "s1", Tenant: "t", GraphText: "graph g {}\n", Checkpoint: ck}
}

// TestStoreFallbackToPreviousValid: when the newest snapshot file is torn
// or corrupted, LoadNewest counts it and returns the previous valid one.
func TestStoreFallbackToPreviousValid(t *testing.T) {
	st, err := Open(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := st.Session("s1")
	if err != nil {
		t.Fatal(err)
	}
	good := testSnapshot(10, 7)
	encGood, _ := Encode(nil, good)
	if _, err := ss.Write(encGood); err != nil {
		t.Fatal(err)
	}
	encBad, _ := Encode(nil, testSnapshot(11, 9))
	if _, err := ss.Write(encBad); err != nil {
		t.Fatal(err)
	}

	seqs, _ := ss.list()
	newest := ss.path(seqs[len(seqs)-1])

	// Torn write: truncate the newest file mid-frame.
	if err := os.Truncate(newest, int64(len(encBad)/2)); err != nil {
		t.Fatal(err)
	}
	snap, discarded, err := st.LoadNewest("s1")
	if err != nil {
		t.Fatalf("load after truncation: %v", err)
	}
	if discarded != 1 || snap.Checkpoint.Completed != 7 {
		t.Fatalf("want fallback to completed=7 with 1 discard, got completed=%d discarded=%d", snap.Checkpoint.Completed, discarded)
	}

	// Bit rot: full-length file, one flipped byte.
	mut := append([]byte(nil), encBad...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(newest, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, discarded, err = st.LoadNewest("s1")
	if err != nil || discarded != 1 || snap.Checkpoint.Completed != 7 {
		t.Fatalf("want fallback after bit rot, got snap=%v discarded=%d err=%v", snap, discarded, err)
	}
}

func TestStoreNoSnapshotVsAllCorrupt(t *testing.T) {
	st, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadNewest("ghost"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
	ss, _ := st.Session("junk")
	enc, _ := Encode(nil, testSnapshot(1, 1))
	ss.Write(enc)
	seqs, _ := ss.list()
	if err := os.WriteFile(ss.path(seqs[0]), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, discarded, err := st.LoadNewest("junk")
	if err == nil || errors.Is(err, ErrNoSnapshot) || discarded != 1 {
		t.Fatalf("want hard error with 1 discard, got discarded=%d err=%v", discarded, err)
	}
}

func TestStoreRetentionAndTmpSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := st.Session("s1")
	for i := int64(1); i <= 5; i++ {
		enc, _ := Encode(nil, testSnapshot(i, i))
		if _, err := ss.Write(enc); err != nil {
			t.Fatal(err)
		}
	}
	seqs, _ := ss.list()
	if len(seqs) != 2 {
		t.Fatalf("retention: want 2 files, got %d", len(seqs))
	}
	snap, _, err := ss.LoadNewest()
	if err != nil || snap.Checkpoint.Completed != 5 {
		t.Fatalf("want newest completed=5, got %v err=%v", snap, err)
	}

	// A crash mid-write leaves a tmp file; reopening sweeps it and the
	// sequence continues past the highest committed snapshot.
	tmp := filepath.Join(dir, "s1", snapPrefix+"00000000000000ff"+snapSuffix+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := st2.Sessions()
	if err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("sessions scan: %v %v", ids, err)
	}
	ss2, err := st2.Session("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file not swept: %v", err)
	}
	enc, _ := Encode(nil, testSnapshot(6, 6))
	if _, err := ss2.Write(enc); err != nil {
		t.Fatal(err)
	}
	snap, _, err = ss2.LoadNewest()
	if err != nil || snap.Checkpoint.Completed != 6 {
		t.Fatalf("post-reopen newest: %v err=%v", snap, err)
	}

	if err := st2.Remove("s1"); err != nil {
		t.Fatal(err)
	}
	ids, _ = st2.Sessions()
	if len(ids) != 0 {
		t.Fatalf("remove left sessions: %v", ids)
	}
}

func TestWriterPersistsNewestAndFlushes(t *testing.T) {
	st, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := st.Session("s1")
	var mu sync.Mutex
	var events []PersistEvent
	w := NewWriter(ss, "s1", "acme", "graph g {}\n", 2, func(ev PersistEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	base := testSnapshot(20, 0).Checkpoint
	for i := int64(1); i <= 5; i++ {
		base.Completed = i
		w.Offer(base)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := ss.LoadNewest()
	if err != nil || snap.Checkpoint.Completed != 5 {
		t.Fatalf("flush did not persist newest: %v err=%v", snap, err)
	}
	if snap.SessionID != "s1" || snap.Tenant != "acme" || snap.GraphText != "graph g {}\n" {
		t.Fatalf("identity not carried: %+v", snap)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no persist events observed")
	}
	for _, ev := range events {
		if ev.Err != nil || ev.Bytes == 0 || ev.Dur <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
}

// TestWriterDetachesIntSliceUser: serve's snapshot hook reuses one []int64
// across captures; the writer must deep-copy it so a mutation after Offer
// cannot leak into the persisted bytes.
func TestWriterDetachesIntSliceUser(t *testing.T) {
	st, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := st.Session("s1")
	w := NewWriter(ss, "s1", "", "graph g {}\n", 1, nil)
	defer w.Close()
	ck := testSnapshot(30, 3).Checkpoint
	shared := []int64{1, 2, 3}
	ck.User = shared
	w.Offer(ck)
	shared[0] = 99 // engine reuses the slice at the next barrier
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := ss.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := snap.Checkpoint.User.([]int64)
	if !ok || got[0] != 1 {
		t.Fatalf("user state aliased the shared slice: %v", snap.Checkpoint.User)
	}
}

// TestWriterDetachesAllMutableUserTypes: the detach guarantee covers the
// whole codec-supported type set, not just []int64 — a snapshot hook may
// reuse a []byte, []any, or nested buffer across barriers, and the
// background encoder must never read memory the engine is rewriting.
func TestWriterDetachesAllMutableUserTypes(t *testing.T) {
	st, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := st.Session("s1")
	w := NewWriter(ss, "s1", "", "graph g {}\n", 1, nil)
	defer w.Close()
	ck := testSnapshot(31, 0).Checkpoint

	sharedBytes := []byte{1, 2, 3}
	nestedInts := []int64{7, 8}
	sharedAny := []any{sharedBytes, nestedInts, "ok", int64(5)}
	ck.User = sharedAny
	w.Offer(ck)
	// The engine rewrites every level of the buffer at the next barrier.
	sharedBytes[0] = 99
	nestedInts[0] = 99
	sharedAny[2] = "mutated"
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := ss.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := snap.Checkpoint.User.([]any)
	if !ok {
		t.Fatalf("user state type: %T", snap.Checkpoint.User)
	}
	if b, _ := got[0].([]byte); len(b) == 0 || b[0] != 1 {
		t.Fatalf("[]byte element aliased the shared buffer: %v", got[0])
	}
	if v, _ := got[1].([]int64); len(v) == 0 || v[0] != 7 {
		t.Fatalf("nested []int64 aliased the shared buffer: %v", got[1])
	}
	if got[2] != "ok" {
		t.Fatalf("[]any aliased the shared buffer: %v", got[2])
	}
}

// TestWriterFlushReportsBackgroundError: a failed background persist must
// surface on the next Flush even when nothing new is pending, so a pump
// ack never claims durability that did not happen.
func TestWriterFlushReportsBackgroundError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := st.Session("s1")
	w := NewWriter(ss, "s1", "", "graph g {}\n", 1, nil)
	defer w.Close()

	// Make the session directory unwritable so the next persist fails.
	sessDir := filepath.Join(dir, "s1")
	if err := os.Chmod(sessDir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(sessDir, 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root: chmod cannot induce write failure")
	}
	ck := testSnapshot(40, 4).Checkpoint
	w.Offer(ck)
	waitFor(t, func() bool { return w.Err() != nil })
	if err := w.Flush(); err == nil {
		t.Fatal("flush swallowed the background persist error")
	}
	// Recovery: once the directory is writable again a fresh offer clears it.
	os.Chmod(sessDir, 0o755)
	ck.Completed = 5
	w.Offer(ck)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestWriterOfferAllocationFree: once the double buffer is warm, Offer on
// the barrier path must not allocate — the engine's 0 allocs/op guarantee
// extends through durable persistence.
func TestWriterOfferAllocationFree(t *testing.T) {
	st, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := st.Session("s1")
	// Cadence larger than the trial count: measures the pure buffer path,
	// with no background persist racing the allocation counter.
	w := NewWriter(ss, "s1", "t", "graph g {}\n", 1<<30, nil)
	defer w.Close()
	ck := testSnapshot(50, 0).Checkpoint
	ck.User = []int64{1, 2, 3, 4}
	w.Offer(ck)
	w.Offer(ck) // warm both buffer sides
	w.Offer(ck)
	avg := testing.AllocsPerRun(200, func() {
		ck.Completed++
		w.Offer(ck)
	})
	if avg > 0 {
		t.Fatalf("Offer allocates %v allocs/op, want 0", avg)
	}
}
