package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNoSnapshot reports a session directory holding no snapshot files at
// all — distinct from one whose files are all corrupt, which is an error.
var ErrNoSnapshot = errors.New("durable: no snapshot")

// snapshot filenames are ck-<seq>.snap with a fixed-width hex sequence so
// lexical order is write order; in-flight writes use a .tmp suffix and are
// swept on open.
const (
	snapPrefix = "ck-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

// Store is the on-disk snapshot root: one subdirectory per session, each
// holding the session's newest K snapshots. Every write follows the
// crash-safe discipline — write to a temp file, fsync it, rename into
// place, fsync the directory — so a crash at any instant leaves either the
// previous snapshot set intact or a new complete snapshot, never a half
// file under the final name. (A torn rename target is still possible on
// non-atomic filesystems, which is what the CRC framing catches.)
type Store struct {
	dir  string
	keep int

	mu       sync.Mutex
	sessions map[string]*SessionStore
}

// Open creates (if needed) and opens the snapshot root. keepLast bounds
// per-session retention; values < 1 are clamped to 1.
func Open(dir string, keepLast int) (*Store, error) {
	if keepLast < 1 {
		keepLast = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open store: %w", err)
	}
	return &Store{dir: dir, keep: keepLast, sessions: map[string]*SessionStore{}}, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

// Sessions lists the session IDs with a directory in the store, sorted.
func (st *Store) Sessions() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scan store: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Session opens (creating if needed) the per-session store for id. The
// write sequence continues from the highest sequence already on disk, so
// a recovered session's new snapshots sort after its pre-crash ones.
func (st *Store) Session(id string) (*SessionStore, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ss, ok := st.sessions[id]; ok {
		return ss, nil
	}
	dir := filepath.Join(st.dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open session %s: %w", id, err)
	}
	ss := &SessionStore{dir: dir, keep: st.keep}
	seqs, err := ss.list()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		ss.seq = seqs[len(seqs)-1]
	}
	st.sessions[id] = ss
	return ss, nil
}

// LoadNewest decodes the newest valid snapshot for id, walking backward
// past torn or corrupt files (discarded counts them — each is a crash
// casualty worth a metric). ErrNoSnapshot means the session directory holds
// no snapshot files at all; a directory with files but no valid one is a
// hard error.
func (st *Store) LoadNewest(id string) (s *Snapshot, discarded int, err error) {
	ss, err := st.Session(id)
	if err != nil {
		return nil, 0, err
	}
	return ss.LoadNewest()
}

// Remove deletes every snapshot for id — called when a client closes its
// session, so a clean restart neither replays nor leaks disk.
func (st *Store) Remove(id string) error {
	st.mu.Lock()
	delete(st.sessions, id)
	st.mu.Unlock()
	if err := os.RemoveAll(filepath.Join(st.dir, id)); err != nil {
		return fmt.Errorf("durable: remove session %s: %w", id, err)
	}
	return nil
}

// SessionStore holds one session's snapshot files.
type SessionStore struct {
	dir  string
	keep int

	mu  sync.Mutex
	seq uint64
}

// list returns the sequence numbers of well-formed snapshot filenames,
// ascending, and sweeps stray .tmp files left by a crash mid-write.
func (ss *SessionStore) list() ([]uint64, error) {
	ents, err := os.ReadDir(ss.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scan session: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(ss.dir, name))
			continue
		}
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, perr := strconv.ParseUint(name[len(snapPrefix):len(name)-len(snapSuffix)], 16, 64)
		if perr != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (ss *SessionStore) path(seq uint64) string {
	return filepath.Join(ss.dir, fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix))
}

// Write persists one encoded snapshot atomically and prunes retention:
// tmp-write → fsync(file) → rename → fsync(dir), then delete snapshots
// beyond the newest keep. Returns the number of bytes written.
func (ss *SessionStore) Write(encoded []byte) (int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.seq++
	final := ss.path(ss.seq)
	tmp := final + tmpSuffix

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: write snapshot: %w", err)
	}
	if _, err = f.Write(encoded); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("durable: write snapshot: %w", err)
	}
	if d, derr := os.Open(ss.dir); derr == nil {
		// Make the rename itself durable; skip silently where directories
		// cannot be fsynced.
		d.Sync()
		d.Close()
	}

	if seqs, err := ss.list(); err == nil && len(seqs) > ss.keep {
		for _, old := range seqs[:len(seqs)-ss.keep] {
			os.Remove(ss.path(old))
		}
	}
	return len(encoded), nil
}

// LoadNewest decodes the newest valid snapshot, skipping (and counting)
// torn or corrupt files.
func (ss *SessionStore) LoadNewest() (s *Snapshot, discarded int, err error) {
	seqs, err := ss.list()
	if err != nil {
		return nil, 0, err
	}
	if len(seqs) == 0 {
		return nil, 0, ErrNoSnapshot
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(ss.path(seqs[i]))
		if rerr != nil {
			lastErr = rerr
			discarded++
			continue
		}
		snap, derr := Decode(data)
		if derr != nil {
			lastErr = derr
			discarded++
			continue
		}
		return snap, discarded, nil
	}
	return nil, discarded, fmt.Errorf("durable: all %d snapshots invalid, newest: %w", len(seqs), lastErr)
}
