package durable

import (
	"sync"
	"time"

	"repro/internal/engine"
)

// PersistEvent reports one durable snapshot write (successful or not) to
// the writer's observer.
type PersistEvent struct {
	// Completed is the checkpoint's iteration count.
	Completed int64
	// Bytes is the encoded snapshot size (0 on error).
	Bytes int
	// Dur is the persist latency: encode + write + fsync + rename.
	Dur time.Duration
	// Err is non-nil when the write failed.
	Err error
}

// Writer streams one session's checkpoints to its SessionStore without
// ever blocking the engine's barrier path. Offer copies the checkpoint
// into a double buffer (allocation-free once warm) and pokes a background
// goroutine; only the newest offered checkpoint is ever written — persists
// that fall behind simply skip intermediate cuts, which is safe because
// each snapshot is a complete state. Flush writes the pending checkpoint
// synchronously — the durability point a pump ack or drain waits on.
type Writer struct {
	ss    *SessionStore
	meta  Snapshot // SessionID/Tenant/GraphText template; Checkpoint filled per write
	every int
	onEv  func(PersistEvent)

	// mu guards the double buffer. Offer writes bufs[cur]; persist swaps
	// cur under mu, then encodes the now-private other buffer outside it.
	mu     sync.Mutex
	bufs   [2]ckBuf
	cur    int
	dirty  bool
	sinceP int

	// persistMu serializes persists and orders them: held across
	// swap+encode+write so a background persist of an older cut can never
	// land after (and thus shadow, by sequence) a Flush of a newer one.
	persistMu sync.Mutex
	encBuf    []byte
	lastErr   error

	wake      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
	loopDone  chan struct{}
}

// ckBuf is one side of the double buffer. ints backs a deep copy of an
// []int64 user state: snapshot hooks may reuse one buffer across captures
// (serve's does), so the reference CopyInto keeps would alias memory the
// engine overwrites at the next barrier while the background goroutine is
// still encoding it. boxed caches ints wrapped in an interface — re-boxing
// a slice allocates, so the warm path (stable length) reuses one box and
// just overwrites the backing array. Other mutable user-state types take
// the allocating deepCopyUser path in Offer.
type ckBuf struct {
	ck    engine.Checkpoint
	ints  []int64
	boxed any
}

// NewWriter returns a writer persisting session id's checkpoints to ss.
// every is the cadence (persist every Nth offered checkpoint; < 1 means
// every one); onEvent, when non-nil, observes every persist attempt.
func NewWriter(ss *SessionStore, sessionID, tenant, graphText string, every int, onEvent func(PersistEvent)) *Writer {
	if every < 1 {
		every = 1
	}
	w := &Writer{
		ss:       ss,
		meta:     Snapshot{SessionID: sessionID, Tenant: tenant, GraphText: graphText},
		every:    every,
		onEv:     onEvent,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go w.loop()
	return w
}

// Offer records ck as the newest persistable cut. Allocation-free once the
// double buffer is warm; never blocks on I/O. A background persist is
// triggered every Nth offer (the cadence), but every offer updates the
// buffer, so a later Flush always writes the newest cut.
func (w *Writer) Offer(ck *engine.Checkpoint) {
	w.mu.Lock()
	buf := &w.bufs[w.cur]
	ck.CopyInto(&buf.ck)
	// CopyInto keeps User by reference; detach every codec-supported
	// mutable type from memory the snapshot hook may rewrite at the next
	// barrier. []int64 (serve's type) gets the allocation-free warm path;
	// the rest deep-copy with an allocation.
	switch u := buf.ck.User.(type) {
	case nil, bool, int, int64, float64, string:
		// Immutable or held by value: safe to keep as is.
	case []int64:
		// Detach from the snapshot hook's reusable slice (see ckBuf).
		if buf.boxed == nil || len(buf.ints) != len(u) {
			if cap(buf.ints) < len(u) {
				buf.ints = make([]int64, len(u))
			}
			buf.ints = buf.ints[:len(u)]
			buf.boxed = buf.ints
		}
		copy(buf.ints, u)
		buf.ck.User = buf.boxed
	default:
		buf.ck.User = deepCopyUser(buf.ck.User)
	}
	w.dirty = true
	w.sinceP++
	trigger := w.sinceP >= w.every
	if trigger {
		w.sinceP = 0
	}
	w.mu.Unlock()
	if trigger {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// deepCopyUser clones the mutable codec-supported user-state types
// ([]byte, []any and anything nested in []any); scalars and strings are
// immutable and pass through. Unsupported types also pass through —
// Encode rejects them loudly at persist time, so aliasing them is moot.
func deepCopyUser(v any) any {
	switch x := v.(type) {
	case []byte:
		return append([]byte(nil), x...)
	case []int64:
		return append([]int64(nil), x...)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = deepCopyUser(e)
		}
		return out
	default:
		return v
	}
}

func (w *Writer) loop() {
	defer close(w.loopDone)
	for {
		select {
		case <-w.done:
			return
		case <-w.wake:
			w.persist()
		}
	}
}

// persist writes the pending checkpoint, if any. persistMu is held across
// the buffer swap and the disk write: see the field comment for why.
func (w *Writer) persist() error {
	w.persistMu.Lock()
	defer w.persistMu.Unlock()

	w.mu.Lock()
	if !w.dirty {
		err := w.lastErr
		w.mu.Unlock()
		return err
	}
	w.dirty = false
	idx := w.cur
	w.cur ^= 1
	w.mu.Unlock()

	// bufs[idx] is now private to this persist: Offer writes the other side.
	ck := &w.bufs[idx].ck
	start := time.Now()
	snap := w.meta
	snap.Checkpoint = ck
	enc, err := Encode(w.encBuf[:0], &snap)
	var n int
	if err == nil {
		w.encBuf = enc
		n, err = w.ss.Write(enc)
	}
	w.mu.Lock()
	w.lastErr = err
	w.mu.Unlock()
	if w.onEv != nil {
		w.onEv(PersistEvent{Completed: ck.Completed, Bytes: n, Dur: time.Since(start), Err: err})
	}
	return err
}

// Flush synchronously persists the newest offered checkpoint. When nothing
// is pending it returns the last persist error (nil after a success), so a
// caller acking durability still observes a failed background write.
func (w *Writer) Flush() error {
	return w.persist()
}

// Err returns the most recent persist outcome without writing anything.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// Close flushes the pending checkpoint and stops the background goroutine.
// Safe to call more than once; later calls return the first close's error.
func (w *Writer) Close() error {
	w.closeOnce.Do(func() {
		w.closeErr = w.Flush()
		close(w.done)
		<-w.loopDone
	})
	return w.closeErr
}
