// Package durable persists engine checkpoints as crash-consistent
// snapshot files: a versioned binary codec over length-prefixed,
// CRC-checksummed frames (this file), a per-session snapshot store with
// atomic write discipline and keep-last-K retention (store.go), and a
// double-buffered background writer that keeps the engine's warm firing
// path allocation-free while snapshots stream to disk (writer.go).
//
// A snapshot is self-describing: besides the engine cut (ring contents,
// firing counters, valuation + digest, user state) it carries the
// session's identity — tenant and the canonical textual graph — so a cold
// restart can recompile the skeleton and resume the run from the file
// alone. Encoding is deterministic (maps are emitted in sorted key order),
// so encode(decode(encode(x))) is byte-identical to encode(x) and
// snapshots diff cleanly.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/engine"
)

// magic opens every snapshot file; the trailing byte is the format
// version. A reader seeing any other prefix rejects the file before
// trusting a single length field.
var magic = []byte("TPDFCK\x00\x01")

// ErrCorrupt reports a snapshot file that failed structural validation:
// bad magic, a torn (truncated) frame, or a CRC mismatch. The store treats
// such files as casualties of a crash mid-write and falls back to the next
// older snapshot.
var ErrCorrupt = errors.New("durable: corrupt snapshot")

// Snapshot is one durable cut of a session: the engine checkpoint plus
// the identity a cold restart needs to rebuild the session around it.
type Snapshot struct {
	// SessionID names the session (the store keys directories by it).
	SessionID string
	// Tenant is the quota accounting owner, restored on recovery.
	Tenant string
	// GraphText is the canonical textual graph (tpdf.Format); recovery
	// re-parses and recompiles it through the shared program cache.
	GraphText string
	// Checkpoint is the engine cut captured at a quiescent barrier.
	Checkpoint *engine.Checkpoint
}

// Value tags for checkpoint payload tokens. The token set the engine
// transports is open (any), but a durable snapshot must draw a line:
// everything here round-trips byte- and type-identical; anything else
// fails Encode with a clear error instead of persisting lossy state.
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt // Go int, re-decoded as int
	tagInt64
	tagFloat64
	tagString
	tagBytes
	tagInt64Slice
	tagAnySlice
)

// Encode appends the snapshot's binary form to buf (pass buf[:0] to reuse
// an arena across persists) and returns the extended slice. The layout is
// magic, then two frames — identity and engine state — each length-
// prefixed and CRC32-guarded, so torn or bit-flipped files are detected
// at every byte offset.
func Encode(buf []byte, s *Snapshot) ([]byte, error) {
	if s.Checkpoint == nil {
		return nil, fmt.Errorf("durable: snapshot has no checkpoint")
	}
	buf = append(buf, magic...)

	frame := func(buf []byte, body func([]byte) ([]byte, error)) ([]byte, error) {
		// Reserve the length+CRC header, build the payload in place, then
		// backfill — one pass, no staging buffer.
		head := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		buf, err := body(buf)
		if err != nil {
			return nil, err
		}
		payload := buf[head+8:]
		binary.LittleEndian.PutUint32(buf[head:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[head+4:], crc32.ChecksumIEEE(payload))
		return buf, nil
	}

	var err error
	buf, err = frame(buf, func(b []byte) ([]byte, error) {
		b = putString(b, s.SessionID)
		b = putString(b, s.Tenant)
		b = putString(b, s.GraphText)
		return b, nil
	})
	if err != nil {
		return nil, err
	}
	return frame(buf, func(b []byte) ([]byte, error) {
		return encodeCheckpoint(b, s.Checkpoint)
	})
}

// Decode parses a snapshot file produced by Encode. Structural damage —
// wrong magic, truncation anywhere, a CRC mismatch on either frame —
// returns an error wrapping ErrCorrupt; the caller falls back to an older
// snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rest := data[len(magic):]
	readFrame := func() ([]byte, error) {
		if len(rest) < 8 {
			return nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		rest = rest[8:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: frame length %d exceeds remaining %d bytes", ErrCorrupt, n, len(rest))
		}
		payload := rest[:n]
		rest = rest[n:]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
		}
		return payload, nil
	}

	meta, err := readFrame()
	if err != nil {
		return nil, err
	}
	state, err := readFrame()
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}

	s := &Snapshot{}
	r := reader{buf: meta}
	s.SessionID = r.str()
	s.Tenant = r.str()
	s.GraphText = r.str()
	if r.err != nil {
		return nil, fmt.Errorf("%w: identity frame: %v", ErrCorrupt, r.err)
	}
	ck, err := decodeCheckpoint(state)
	if err != nil {
		return nil, err
	}
	s.Checkpoint = ck
	return s, nil
}

func encodeCheckpoint(b []byte, ck *engine.Checkpoint) ([]byte, error) {
	b = putString(b, ck.Graph)
	b = binary.AppendVarint(b, ck.Completed)
	b = binary.LittleEndian.AppendUint64(b, ck.Digest)
	if ck.AtEntry {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}

	keys := make([]string, 0, len(ck.Params))
	for k := range ck.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = putString(b, k)
		b = binary.AppendVarint(b, ck.Params[k])
	}

	if len(ck.Fired) != len(ck.Nodes) || len(ck.Base) != len(ck.Nodes) {
		return nil, fmt.Errorf("durable: checkpoint has %d nodes but %d/%d fired/base counters",
			len(ck.Nodes), len(ck.Fired), len(ck.Base))
	}
	b = binary.AppendUvarint(b, uint64(len(ck.Nodes)))
	for i, n := range ck.Nodes {
		b = putString(b, n)
		b = binary.AppendVarint(b, ck.Fired[i])
		b = binary.AppendVarint(b, ck.Base[i])
	}

	if len(ck.Edges) != len(ck.EdgeNames) {
		return nil, fmt.Errorf("durable: checkpoint has %d edge names but %d edges", len(ck.EdgeNames), len(ck.Edges))
	}
	b = binary.AppendUvarint(b, uint64(len(ck.EdgeNames)))
	for i, name := range ck.EdgeNames {
		b = putString(b, name)
		b = binary.AppendUvarint(b, uint64(len(ck.Edges[i])))
		var err error
		for _, v := range ck.Edges[i] {
			if b, err = putValue(b, v); err != nil {
				return nil, fmt.Errorf("edge %s: %w", name, err)
			}
		}
	}
	return putValue(b, ck.User)
}

func decodeCheckpoint(data []byte) (*engine.Checkpoint, error) {
	r := reader{buf: data}
	ck := &engine.Checkpoint{}
	ck.Graph = r.str()
	ck.Completed = r.varint()
	ck.Digest = r.fixed64()
	ck.AtEntry = r.byte() != 0

	np := r.uvarint()
	if r.err == nil && np > uint64(len(r.buf)) {
		// Same guard as the node/edge counts below: a lying length field
		// must not force a huge preallocation before any key is read.
		r.err = fmt.Errorf("param count %d exceeds frame", np)
	}
	if r.err == nil {
		ck.Params = make(map[string]int64, np)
		for i := uint64(0); i < np && r.err == nil; i++ {
			k := r.str()
			ck.Params[k] = r.varint()
		}
	}

	nn := r.uvarint()
	if r.err == nil && nn > uint64(len(r.buf)) {
		// A length field can only lie within what the CRC admitted, but
		// guard the preallocation anyway.
		r.err = fmt.Errorf("node count %d exceeds frame", nn)
	}
	if r.err == nil {
		ck.Nodes = make([]string, nn)
		ck.Fired = make([]int64, nn)
		ck.Base = make([]int64, nn)
		for i := range ck.Nodes {
			ck.Nodes[i] = r.str()
			ck.Fired[i] = r.varint()
			ck.Base[i] = r.varint()
		}
	}

	ne := r.uvarint()
	if r.err == nil && ne > uint64(len(r.buf)) {
		r.err = fmt.Errorf("edge count %d exceeds frame", ne)
	}
	if r.err == nil {
		ck.EdgeNames = make([]string, ne)
		ck.Edges = make([][]any, ne)
		for i := range ck.EdgeNames {
			ck.EdgeNames[i] = r.str()
			nt := r.uvarint()
			if r.err != nil {
				break
			}
			if nt > uint64(len(r.buf)) {
				r.err = fmt.Errorf("edge %s token count %d exceeds frame", ck.EdgeNames[i], nt)
				break
			}
			vals := make([]any, nt)
			for j := range vals {
				vals[j] = r.value(0)
			}
			ck.Edges[i] = vals
		}
	}
	ck.User = r.value(0)
	if r.err == nil && len(r.buf) != 0 {
		r.err = fmt.Errorf("%d trailing bytes", len(r.buf))
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: state frame: %v", ErrCorrupt, r.err)
	}
	return ck, nil
}

func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// putValue encodes one payload token. Types outside the supported set fail
// loudly: persisting a value the decoder cannot reproduce exactly would
// silently break the byte-identical resume guarantee.
func putValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case int:
		return binary.AppendVarint(append(b, tagInt), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(b, tagInt64), x), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(b, tagFloat64), math.Float64bits(x)), nil
	case string:
		return putString(append(b, tagString), x), nil
	case []byte:
		b = binary.AppendUvarint(append(b, tagBytes), uint64(len(x)))
		return append(b, x...), nil
	case []int64:
		b = binary.AppendUvarint(append(b, tagInt64Slice), uint64(len(x)))
		for _, n := range x {
			b = binary.AppendVarint(b, n)
		}
		return b, nil
	case []any:
		b = binary.AppendUvarint(append(b, tagAnySlice), uint64(len(x)))
		var err error
		for _, e := range x {
			if b, err = putValue(b, e); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("durable: unsupported payload type %T", v)
	}
}

// reader is a cursor over one frame; the first malformed field latches err
// and every later read returns zero values, so decode paths need a single
// error check at the end.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = errors.New(msg)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || len(r.buf) == 0 {
		r.fail("truncated byte")
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) fixed64() uint64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail("truncated fixed64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// maxValueDepth bounds recursion through nested []any so a corrupted (but
// checksum-passing) or adversarial file cannot blow the stack.
const maxValueDepth = 32

func (r *reader) value(depth int) any {
	if r.err != nil {
		return nil
	}
	if depth > maxValueDepth {
		r.fail("value nesting too deep")
		return nil
	}
	switch tag := r.byte(); tag {
	case tagNil:
		return nil
	case tagFalse:
		return false
	case tagTrue:
		return true
	case tagInt:
		return int(r.varint())
	case tagInt64:
		return r.varint()
	case tagFloat64:
		return math.Float64frombits(r.fixed64())
	case tagString:
		return r.str()
	case tagBytes:
		n := r.uvarint()
		if r.err != nil {
			return nil
		}
		if n > uint64(len(r.buf)) {
			r.fail("truncated bytes")
			return nil
		}
		v := append([]byte(nil), r.buf[:n]...)
		r.buf = r.buf[n:]
		return v
	case tagInt64Slice:
		n := r.uvarint()
		if r.err != nil {
			return nil
		}
		if n > uint64(len(r.buf)) {
			r.fail("truncated int64 slice")
			return nil
		}
		v := make([]int64, n)
		for i := range v {
			v[i] = r.varint()
		}
		return v
	case tagAnySlice:
		n := r.uvarint()
		if r.err != nil {
			return nil
		}
		if n > uint64(len(r.buf)) {
			r.fail("truncated any slice")
			return nil
		}
		v := make([]any, n)
		for i := range v {
			v[i] = r.value(depth + 1)
		}
		return v
	default:
		r.fail(fmt.Sprintf("unknown value tag %d", tag))
		return nil
	}
}
