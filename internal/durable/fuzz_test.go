package durable

import (
	"testing"

	"repro/internal/engine"
)

// fuzzSeedSnapshot builds one representative snapshot covering every
// codec value tag, for seeding the decoder fuzzer with valid frames.
func fuzzSeedSnapshot() *Snapshot {
	return &Snapshot{
		SessionID: "s1",
		Tenant:    "acme",
		GraphText: "graph g {\n  kernel a;\n}\n",
		Checkpoint: &engine.Checkpoint{
			Graph:     "g",
			Completed: 3,
			Digest:    7,
			Params:    map[string]int64{"p": 2},
			Nodes:     []string{"a", "b"},
			Fired:     []int64{3, 6},
			Base:      []int64{1, 2},
			EdgeNames: []string{"e1"},
			Edges: [][]any{{
				nil, true, int(4), int64(5), 3.5, "tok", []byte{1, 2},
				[]int64{9, 8}, []any{int64(1), "x"},
			}},
			User:    []any{[]int64{1, 2, 3}},
			AtEntry: true,
		},
	}
}

// FuzzDecode holds the snapshot decoder to its contract under arbitrary
// bytes: it returns an error — never panics, never runs away allocating —
// and anything it does accept must survive re-encoding. The seed corpus
// is a full valid encoding plus truncations and bit flips of it
// (committed under testdata/fuzz/FuzzDecode).
func FuzzDecode(f *testing.F) {
	valid, err := Encode(nil, fuzzSeedSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{0, 1, 7, 8, 12, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	for _, flip := range []int{0, 8, 16, len(valid) / 2, len(valid) - 5} {
		if flip < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[flip] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add([]byte("TPDFCK\x00\x01"))
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("Decode returned nil snapshot and nil error")
		}
		if _, err := Encode(nil, s); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
	})
}
