package buffer

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/csdf"
)

func TestOFDMPointMatchesFormulas(t *testing.T) {
	pt, err := OFDMPoint(apps.OFDMParams{Beta: 10, M: 4, N: 512, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pt.TPDF != pt.PaperTPDF {
		t.Errorf("measured TPDF %d != paper %d", pt.TPDF, pt.PaperTPDF)
	}
	if pt.CSDF != pt.PaperCSDF {
		t.Errorf("measured CSDF %d != paper %d", pt.CSDF, pt.PaperCSDF)
	}
	// The ablation sits strictly between TPDF and CSDF: forcing both
	// branches costs buffer, but the merge stage still emits only βMN.
	if !(pt.TPDF < pt.Forced && pt.Forced < pt.CSDF) {
		t.Errorf("ablation ordering violated: TPDF %d, forced %d, CSDF %d",
			pt.TPDF, pt.Forced, pt.CSDF)
	}
}

func TestOFDMSweepShape(t *testing.T) {
	betas := []int64{10, 20, 40}
	points, err := OFDMSweep(betas, []int64{512}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Linear in beta: buffer(2β)−buffer(β) is constant per step of β.
	d1 := points[1].TPDF - points[0].TPDF
	d2 := (points[2].TPDF - points[1].TPDF) / 2
	if d1 != d2 {
		t.Errorf("TPDF curve not linear in β: steps %d vs %d", d1, d2)
	}
	// Improvement ≈ 29.4% (5/17, slightly diluted by L and the +3).
	imp := MeanImprovement(points)
	if imp < 0.28 || imp > 0.31 {
		t.Errorf("mean improvement = %.4f, want ≈ 0.294", imp)
	}
}

func TestSweepNOrdering(t *testing.T) {
	points, err := OFDMSweep([]int64{10}, []int64{512, 1024}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if points[1].TPDF <= points[0].TPDF {
		t.Error("N=1024 curve must sit above N=512")
	}
}

func TestScheduleBounds(t *testing.T) {
	g := csdf.NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	c := g.AddActor("c")
	g.Connect(a, []int64{4}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, c, []int64{1}, 0)
	eager, demand, err := ScheduleBounds(g)
	if err != nil {
		t.Fatal(err)
	}
	if Total(demand) > Total(eager) {
		t.Errorf("demand total %d > eager total %d", Total(demand), Total(eager))
	}
	if demand[1] != 1 {
		t.Errorf("demand bound on b->c = %d, want 1", demand[1])
	}
}

func TestImprovementZeroGuard(t *testing.T) {
	if (Point{}).Improvement() != 0 {
		t.Error("zero CSDF must not divide by zero")
	}
	if MeanImprovement(nil) != 0 {
		t.Error("empty sweep must yield 0")
	}
}
