package buffer

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/csdf"
	"repro/internal/sim"
	"repro/internal/symb"
)

func TestOFDMPointQPSKMode(t *testing.T) {
	pt, err := OFDMPoint(apps.OFDMParams{Beta: 3, M: 2, N: 32, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The QPSK mode's active topology costs 3 + β(8N+L) (derived
	// symbolically in the analysis tests).
	want := int64(3 + 3*(8*32+1))
	if pt.TPDF != want {
		t.Errorf("QPSK-mode buffer = %d, want %d", pt.TPDF, want)
	}
	// The CSDF baseline is independent of M.
	if pt.CSDF != apps.PaperCSDFBuffer(apps.OFDMParams{Beta: 3, M: 2, N: 32, L: 1}) {
		t.Errorf("CSDF baseline changed with M: %d", pt.CSDF)
	}
}

func TestScheduleBoundsOFDMBaseline(t *testing.T) {
	g, _, err := apps.OFDMCSDF(apps.OFDMParams{Beta: 2, M: 4, N: 16, L: 1}).Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	eager, demand, err := ScheduleBounds(g)
	if err != nil {
		t.Fatal(err)
	}
	if Total(demand) > Total(eager) {
		t.Errorf("demand %d > eager %d", Total(demand), Total(eager))
	}
	// Sequential single-core execution of the chain needs the full
	// per-iteration transfer on every edge: both equal the paper total.
	if Total(eager) != 2*(17*16+1) {
		t.Errorf("eager total = %d, want %d", Total(eager), 2*(17*16+1))
	}
}

func TestScheduleBoundsDeadlockPropagates(t *testing.T) {
	g := csdf.NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, a, []int64{1}, 0)
	if _, _, err := ScheduleBounds(g); err == nil {
		t.Error("deadlocked graph must propagate an error")
	}
}

func TestMinimalCapacitiesWithModes(t *testing.T) {
	// Bounded-buffer minimization agrees with the unbounded high-water sum
	// on the FM radio with band selection (single-appearance pipeline).
	g := apps.FMRadioTPDF()
	decide, err := apps.FMRadioSelectBand(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Graph: g, Decide: decide}
	ref, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := sim.MinimalCapacities(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var capTotal int64
	for _, c := range caps {
		capTotal += c
	}
	if capTotal > ref.TotalBuffer() {
		t.Errorf("minimized %d exceeds observed %d", capTotal, ref.TotalBuffer())
	}
}

func TestPointImprovementArithmetic(t *testing.T) {
	p := Point{TPDF: 70, CSDF: 100}
	if imp := p.Improvement(); imp != 0.3 {
		t.Errorf("improvement = %g", imp)
	}
}

func TestForcedAblationMatchesFormula(t *testing.T) {
	// Forcing both branches (wait-all) costs 3 + β(15N+L): every edge of
	// the TPDF graph is live but the merge still emits only βMN.
	params := apps.OFDMParams{Beta: 2, M: 4, N: 64, L: 1}
	pt, err := OFDMPoint(params)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 + params.Beta*(15*params.N+params.L)
	if pt.Forced != want {
		t.Errorf("forced = %d, want %d", pt.Forced, want)
	}
}

func TestSymbolicTrafficConsistentWithSim(t *testing.T) {
	// Cross-check: per-edge symbolic traffic evaluated at a concrete env
	// equals the simulator's high-water marks on an always-active pipeline.
	g := apps.OFDMCSDF(apps.OFDMParams{Beta: 5, M: 4, N: 32, L: 2})
	res, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"beta": 5, "N": 32, "L": 2, "M": 4}})
	if err != nil {
		t.Fatal(err)
	}
	var graphTotal int64
	for _, hw := range res.HighWater {
		graphTotal += hw
	}
	if graphTotal != 5*(17*32+2) {
		t.Errorf("sim total %d != formula %d", graphTotal, 5*(17*32+2))
	}
}
