// Package buffer computes the minimum channel-buffer requirements that the
// paper's Fig. 8 compares: per-edge high-water marks of TPDF executions
// (with the control actor removing the unused branch) against the CSDF
// baseline where every edge stays active. It also provides the ablation in
// which the TPDF graph is forced to keep both branches live, isolating the
// contribution of dynamic topology changes.
package buffer

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/symb"
)

// Point is one Fig. 8 data point.
type Point struct {
	Beta int64
	N    int64
	// TPDF and CSDF are the measured total buffer sizes (token counts) from
	// token-accurate simulation.
	TPDF int64
	CSDF int64
	// PaperTPDF and PaperCSDF are the paper's analytic values
	// 3+β(12N+L) and β(17N+L).
	PaperTPDF int64
	PaperCSDF int64
	// Forced is the ablation: the TPDF graph executed with both branches
	// active (wait-all transaction), measuring what dynamic topology saves.
	Forced int64
}

// Improvement returns the relative buffer saving (CSDF-TPDF)/CSDF.
func (p Point) Improvement() float64 {
	if p.CSDF == 0 {
		return 0
	}
	return float64(p.CSDF-p.TPDF) / float64(p.CSDF)
}

// OFDMPoint measures one parameter combination. Three token-accurate runs
// back one point: TPDF with branch selection, the CSDF baseline, and the
// forced-wait-all ablation. The two TPDF runs share one simulator (the
// ablation is the same graph with the decisions removed), and all three
// use the buffers-only fast path since only high-water totals matter.
// One-shot convenience over a fresh ofdmSweepWorker; sweeps reuse the
// worker across points instead.
func OFDMPoint(params apps.OFDMParams) (Point, error) {
	w, err := newOFDMSweepWorker(params)
	if err != nil {
		return Point{
			Beta:      params.Beta,
			N:         params.N,
			PaperTPDF: apps.PaperTPDFBuffer(params),
			PaperCSDF: apps.PaperCSDFBuffer(params),
		}, err
	}
	return w.point(params)
}

// OFDMSweep reproduces the Fig. 8 series: buffer size as a function of the
// vectorization degree β for each symbol length N.
func OFDMSweep(betas []int64, ns []int64, m, l int64) ([]Point, error) {
	return OFDMSweepParallel(betas, ns, m, l, 1)
}

// ofdmSweepWorker is the per-worker state of the sharded Fig. 8 grid: the
// TPDF and CSDF graphs compiled once, one pooled simulator per graph, and
// the shared branch decision. Every point the worker shards is a
// Rebind+Reset+Run cycle — no graph construction, no instantiation, no
// allocation once the simulators are warm.
type ofdmSweepWorker struct {
	tprog, cprog *core.Program
	tsim, csim   *sim.Simulator
	decide       map[string]sim.DecideFunc
}

func newOFDMSweepWorker(params apps.OFDMParams) (*ofdmSweepWorker, error) {
	w := &ofdmSweepWorker{}
	tg := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(tg, params.M)
	if err != nil {
		return nil, err
	}
	w.decide = decide
	if w.tprog, err = core.Compile(tg); err != nil {
		return nil, fmt.Errorf("buffer: TPDF compile: %v", err)
	}
	if w.cprog, err = core.Compile(apps.OFDMCSDF(params)); err != nil {
		return nil, fmt.Errorf("buffer: CSDF compile: %v", err)
	}
	return w, nil
}

// point measures one parameter combination, exactly as OFDMPoint does —
// TPDF with branch selection, the CSDF baseline, the forced-wait-all
// ablation — but through the worker's compiled programs.
func (w *ofdmSweepWorker) point(params apps.OFDMParams) (Point, error) {
	pt := Point{
		Beta:      params.Beta,
		N:         params.N,
		PaperTPDF: apps.PaperTPDFBuffer(params),
		PaperCSDF: apps.PaperCSDFBuffer(params),
	}
	env := symb.Env(params.Env())

	if err := w.tprog.Rebind(env); err != nil {
		return pt, fmt.Errorf("buffer: TPDF rebind: %v", err)
	}
	if w.tsim == nil {
		ts, err := sim.NewSimulatorFromProgram(w.tprog, sim.Config{Decide: w.decide, BuffersOnly: true})
		if err != nil {
			return pt, fmt.Errorf("buffer: TPDF setup: %v", err)
		}
		w.tsim = ts
	} else {
		w.tsim.SetDecide(w.decide)
		if err := w.tsim.BindProgram(w.tprog); err != nil {
			return pt, err
		}
	}
	tres, err := w.tsim.Run()
	if err != nil {
		return pt, fmt.Errorf("buffer: TPDF run: %v", err)
	}
	pt.TPDF = tres.TotalBuffer()

	if err := w.cprog.Rebind(env); err != nil {
		return pt, fmt.Errorf("buffer: CSDF rebind: %v", err)
	}
	if w.csim == nil {
		cs, err := sim.NewSimulatorFromProgram(w.cprog, sim.Config{BuffersOnly: true})
		if err != nil {
			return pt, fmt.Errorf("buffer: CSDF setup: %v", err)
		}
		w.csim = cs
	} else if err := w.csim.BindProgram(w.cprog); err != nil {
		return pt, err
	}
	cres, err := w.csim.Run()
	if err != nil {
		return pt, fmt.Errorf("buffer: CSDF run: %v", err)
	}
	pt.CSDF = cres.TotalBuffer()

	// Ablation: same TPDF graph, no selection — every mode defaults to
	// wait-all, so both demapping branches execute and the transaction
	// needs both inputs buffered.
	w.tsim.SetDecide(nil)
	w.tsim.Reset()
	fres, err := w.tsim.Run()
	if err != nil {
		return pt, fmt.Errorf("buffer: forced run: %v", err)
	}
	pt.Forced = fres.TotalBuffer()
	return pt, nil
}

// OFDMSweepParallel shards the β×N grid across up to parallel workers.
// Points are written by grid index, so the result order — N-major, β-minor,
// exactly OFDMSweep's — is independent of the worker count and a parallel
// sweep is byte-identical to a sequential one. Each worker owns one
// compiled Program + Simulator pair per graph, reused across every point
// it shards: a point costs a rebind and three simulator runs, never a
// fresh instantiation.
func OFDMSweepParallel(betas []int64, ns []int64, m, l int64, parallel int) ([]Point, error) {
	out := make([]Point, len(ns)*len(betas))
	if len(out) == 0 {
		return out, nil
	}
	// A worker's setup compiles two graphs; insist on ≥2 points per worker
	// so the compile-once cost amortizes even on small grids.
	parallel = pool.WorkersAmortized(len(out), parallel, 2)
	workers := make([]*ofdmSweepWorker, parallel)
	err := pool.RunWorkers(len(out), parallel, func(w, i int) error {
		n, beta := ns[i/len(betas)], betas[i%len(betas)]
		params := apps.OFDMParams{Beta: beta, M: m, N: n, L: l}
		if workers[w] == nil {
			st, err := newOFDMSweepWorker(params)
			if err != nil {
				return err
			}
			workers[w] = st
		}
		pt, err := workers[w].point(params)
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MeanImprovement averages the relative saving across points.
func MeanImprovement(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	var s float64
	for _, p := range points {
		s += p.Improvement()
	}
	return s / float64(len(points))
}

// ScheduleBounds compares per-edge buffer bounds for a concrete CSDF graph
// under the eager and demand-driven sequential schedules; the smaller of
// the two is a valid single-core buffer budget for the graph.
func ScheduleBounds(g *csdf.Graph) (eager, demand []int64, err error) {
	sol, err := g.RepetitionVector()
	if err != nil {
		return nil, nil, err
	}
	se, err := g.BuildSchedule(sol, csdf.Eager)
	if err != nil {
		return nil, nil, err
	}
	sd, err := g.BuildSchedule(sol, csdf.Demand)
	if err != nil {
		return nil, nil, err
	}
	return se.MaxTokens, sd.MaxTokens, nil
}

// Total sums a per-edge bound vector.
func Total(bounds []int64) int64 {
	var t int64
	for _, b := range bounds {
		t += b
	}
	return t
}
