// Package buffer computes the minimum channel-buffer requirements that the
// paper's Fig. 8 compares: per-edge high-water marks of TPDF executions
// (with the control actor removing the unused branch) against the CSDF
// baseline where every edge stays active. It also provides the ablation in
// which the TPDF graph is forced to keep both branches live, isolating the
// contribution of dynamic topology changes.
package buffer

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/csdf"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/symb"
)

// Point is one Fig. 8 data point.
type Point struct {
	Beta int64
	N    int64
	// TPDF and CSDF are the measured total buffer sizes (token counts) from
	// token-accurate simulation.
	TPDF int64
	CSDF int64
	// PaperTPDF and PaperCSDF are the paper's analytic values
	// 3+β(12N+L) and β(17N+L).
	PaperTPDF int64
	PaperCSDF int64
	// Forced is the ablation: the TPDF graph executed with both branches
	// active (wait-all transaction), measuring what dynamic topology saves.
	Forced int64
}

// Improvement returns the relative buffer saving (CSDF-TPDF)/CSDF.
func (p Point) Improvement() float64 {
	if p.CSDF == 0 {
		return 0
	}
	return float64(p.CSDF-p.TPDF) / float64(p.CSDF)
}

// OFDMPoint measures one parameter combination. Three token-accurate runs
// back one point: TPDF with branch selection, the CSDF baseline, and the
// forced-wait-all ablation. The two TPDF runs share one simulator (the
// ablation is the same graph with the decisions removed), and all three
// use the buffers-only fast path since only high-water totals matter.
func OFDMPoint(params apps.OFDMParams) (Point, error) {
	pt := Point{
		Beta:      params.Beta,
		N:         params.N,
		PaperTPDF: apps.PaperTPDFBuffer(params),
		PaperCSDF: apps.PaperCSDFBuffer(params),
	}

	tg := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(tg, params.M)
	if err != nil {
		return pt, err
	}
	ts, err := sim.NewSimulator(sim.Config{Graph: tg, Env: symb.Env(params.Env()), Decide: decide, BuffersOnly: true})
	if err != nil {
		return pt, fmt.Errorf("buffer: TPDF setup: %v", err)
	}
	tres, err := ts.Run()
	if err != nil {
		return pt, fmt.Errorf("buffer: TPDF run: %v", err)
	}
	pt.TPDF = tres.TotalBuffer()

	cg := apps.OFDMCSDF(params)
	cres, err := sim.Run(sim.Config{Graph: cg, Env: symb.Env(params.Env()), BuffersOnly: true})
	if err != nil {
		return pt, fmt.Errorf("buffer: CSDF run: %v", err)
	}
	pt.CSDF = cres.TotalBuffer()

	// Ablation: same TPDF graph, no selection — every mode defaults to
	// wait-all, so both demapping branches execute and the transaction
	// needs both inputs buffered.
	ts.SetDecide(nil)
	ts.Reset()
	fres, err := ts.Run()
	if err != nil {
		return pt, fmt.Errorf("buffer: forced run: %v", err)
	}
	pt.Forced = fres.TotalBuffer()
	return pt, nil
}

// OFDMSweep reproduces the Fig. 8 series: buffer size as a function of the
// vectorization degree β for each symbol length N.
func OFDMSweep(betas []int64, ns []int64, m, l int64) ([]Point, error) {
	return OFDMSweepParallel(betas, ns, m, l, 1)
}

// OFDMSweepParallel shards the β×N grid across up to parallel workers.
// Points are written by grid index, so the result order — N-major, β-minor,
// exactly OFDMSweep's — is independent of the worker count and a parallel
// sweep is byte-identical to a sequential one.
func OFDMSweepParallel(betas []int64, ns []int64, m, l int64, parallel int) ([]Point, error) {
	out := make([]Point, len(ns)*len(betas))
	err := pool.Run(len(out), parallel, func(i int) error {
		n, beta := ns[i/len(betas)], betas[i%len(betas)]
		pt, err := OFDMPoint(apps.OFDMParams{Beta: beta, M: m, N: n, L: l})
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MeanImprovement averages the relative saving across points.
func MeanImprovement(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	var s float64
	for _, p := range points {
		s += p.Improvement()
	}
	return s / float64(len(points))
}

// ScheduleBounds compares per-edge buffer bounds for a concrete CSDF graph
// under the eager and demand-driven sequential schedules; the smaller of
// the two is a valid single-core buffer budget for the graph.
func ScheduleBounds(g *csdf.Graph) (eager, demand []int64, err error) {
	sol, err := g.RepetitionVector()
	if err != nil {
		return nil, nil, err
	}
	se, err := g.BuildSchedule(sol, csdf.Eager)
	if err != nil {
		return nil, nil, err
	}
	sd, err := g.BuildSchedule(sol, csdf.Demand)
	if err != nil {
		return nil, nil, err
	}
	return se.MaxTokens, sd.MaxTokens, nil
}

// Total sums a per-edge bound vector.
func Total(bounds []int64) int64 {
	var t int64
	for _, b := range bounds {
		t += b
	}
	return t
}
