package buffer_test

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/buffer"
)

// TestOFDMSweepParallelIdentical verifies the sharded Fig. 8 sweep yields
// exactly the sequential points — same values, same N-major/β-minor order
// — across several worker counts and grid shapes.
func TestOFDMSweepParallelIdentical(t *testing.T) {
	grids := []struct {
		betas []int64
		ns    []int64
	}{
		{[]int64{2, 5, 9}, []int64{16, 32}},
		{[]int64{1, 3, 4, 7, 8}, []int64{64}},
	}
	for _, grid := range grids {
		want, err := buffer.OFDMSweep(grid.betas, grid.ns, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := buffer.OFDMSweepParallel(grid.betas, grid.ns, 4, 1, workers)
			if err != nil {
				t.Fatalf("parallel=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel=%d: sweep diverged from sequential", workers)
			}
		}
	}
}

// TestOFDMSweepMatchesOneShotPoints verifies the worker-reusing sweep —
// one compiled program rebound across all the points a worker shards —
// yields exactly the points OFDMPoint produces with a fresh worker (fresh
// graphs, programs and simulators) per point.
func TestOFDMSweepMatchesOneShotPoints(t *testing.T) {
	betas := []int64{1, 4, 9}
	ns := []int64{16, 32}
	got, err := buffer.OFDMSweepParallel(betas, ns, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range got {
		n, beta := ns[i/len(betas)], betas[i%len(betas)]
		want, err := buffer.OFDMPoint(apps.OFDMParams{Beta: beta, M: 4, N: n, L: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt, want) {
			t.Fatalf("point %d (beta=%d N=%d): sweep %+v, one-shot %+v", i, beta, n, pt, want)
		}
	}
}
