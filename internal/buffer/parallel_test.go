package buffer_test

import (
	"reflect"
	"testing"

	"repro/internal/buffer"
)

// TestOFDMSweepParallelIdentical verifies the sharded Fig. 8 sweep yields
// exactly the sequential points — same values, same N-major/β-minor order
// — across several worker counts and grid shapes.
func TestOFDMSweepParallelIdentical(t *testing.T) {
	grids := []struct {
		betas []int64
		ns    []int64
	}{
		{[]int64{2, 5, 9}, []int64{16, 32}},
		{[]int64{1, 3, 4, 7, 8}, []int64{64}},
	}
	for _, grid := range grids {
		want, err := buffer.OFDMSweep(grid.betas, grid.ns, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := buffer.OFDMSweepParallel(grid.betas, grid.ns, 4, 1, workers)
			if err != nil {
				t.Fatalf("parallel=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel=%d: sweep diverged from sequential", workers)
			}
		}
	}
}
