// Package csdf implements Cyclo-Static Dataflow (Bilsen et al., 1995), the
// base model that TPDF extends (§II-A of the paper). It provides the graph
// model, the topology matrix and repetition vector of Theorem 1, validity
// checks, sequential schedule (PASS) construction with buffer accounting,
// and the firing-level precedence graph used for canonical periods.
//
// All quantities are concrete integers: parametric TPDF graphs are lowered
// to csdf.Graph by instantiating their parameters (see internal/core).
package csdf

import (
	"fmt"
	"strings"

	"repro/internal/rat"
)

// Actor is a cyclo-static actor. Its phase count τ is the least common
// multiple of the lengths of the rate sequences on its ports; rate sequences
// cycle independently, which is equivalent to padding them to τ.
type Actor struct {
	Name string
	// Exec is the execution time per phase in abstract time units
	// (nanoseconds in the simulator). Length 0 means zero cost; length 1
	// applies to every phase; otherwise it cycles like a rate sequence.
	Exec []int64
}

// ExecAt returns the execution time of firing n (0-based).
func (a *Actor) ExecAt(n int64) int64 {
	if len(a.Exec) == 0 {
		return 0
	}
	return a.Exec[int(n%int64(len(a.Exec)))]
}

// Edge is a FIFO channel from actor Src to actor Dst with cyclo-static
// production and consumption rate sequences and an initial token count.
type Edge struct {
	Name    string
	Src     int
	Dst     int
	Prod    []int64 // cyclic production rates, indexed by Src firing count
	Cons    []int64 // cyclic consumption rates, indexed by Dst firing count
	Initial int64
}

// ProdAt returns the production rate of the n-th firing of the producer.
func (e *Edge) ProdAt(n int64) int64 { return rateAt(e.Prod, n) }

// ConsAt returns the consumption rate of the n-th firing of the consumer.
func (e *Edge) ConsAt(n int64) int64 { return rateAt(e.Cons, n) }

func rateAt(seq []int64, n int64) int64 {
	if len(seq) == 0 {
		return 0
	}
	return seq[int(n%int64(len(seq)))]
}

// CumProd returns X(n): total tokens produced during the first n firings.
func (e *Edge) CumProd(n int64) int64 { return cumRate(e.Prod, n) }

// CumCons returns Y(n): total tokens consumed during the first n firings.
func (e *Edge) CumCons(n int64) int64 { return cumRate(e.Cons, n) }

func cumRate(seq []int64, n int64) int64 {
	if len(seq) == 0 || n <= 0 {
		return 0
	}
	l := int64(len(seq))
	var cycle int64
	for _, v := range seq {
		cycle += v
	}
	total := (n / l) * cycle
	for i := int64(0); i < n%l; i++ {
		total += seq[i]
	}
	return total
}

func sum64(seq []int64) int64 {
	var s int64
	for _, v := range seq {
		s += v
	}
	return s
}

// Graph is a CSDF graph.
type Graph struct {
	Actors []Actor
	Edges  []Edge

	byName map[string]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byName: map[string]int{}}
}

// AddActor adds an actor and returns its index. Exec follows Actor.Exec
// conventions. Duplicate names are rejected by Validate.
func (g *Graph) AddActor(name string, exec ...int64) int {
	g.Actors = append(g.Actors, Actor{Name: name, Exec: exec})
	if g.byName == nil {
		g.byName = map[string]int{}
	}
	if _, dup := g.byName[name]; !dup {
		g.byName[name] = len(g.Actors) - 1
	}
	return len(g.Actors) - 1
}

// ActorIndex returns the index of the named actor.
func (g *Graph) ActorIndex(name string) (int, bool) {
	i, ok := g.byName[name]
	return i, ok
}

// Connect adds an edge src -> dst with the given rate sequences and initial
// tokens, returning its index.
func (g *Graph) Connect(src int, prod []int64, dst int, cons []int64, initial int64) int {
	g.Edges = append(g.Edges, Edge{
		Name: fmt.Sprintf("e%d", len(g.Edges)+1),
		Src:  src, Dst: dst,
		Prod: prod, Cons: cons, Initial: initial,
	})
	return len(g.Edges) - 1
}

// ConnectNamed is Connect with an explicit edge name.
func (g *Graph) ConnectNamed(name string, src int, prod []int64, dst int, cons []int64, initial int64) int {
	i := g.Connect(src, prod, dst, cons, initial)
	g.Edges[i].Name = name
	return i
}

// Phases returns τ_j for actor j: the LCM of the rate-sequence lengths on
// its ports (and of its Exec sequence), at least 1.
func (g *Graph) Phases(j int) int64 {
	tau := int64(1)
	merge := func(l int) {
		if l == 0 {
			return
		}
		v, ok := rat.LCM64(tau, int64(l))
		if ok {
			tau = v
		}
	}
	merge(len(g.Actors[j].Exec))
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Src == j {
			merge(len(e.Prod))
		}
		if e.Dst == j {
			merge(len(e.Cons))
		}
	}
	return tau
}

// CycleProd returns X(τ_src): tokens produced on e during one full cycle of
// the producer.
func (g *Graph) CycleProd(e *Edge) int64 {
	tau := g.Phases(e.Src)
	if len(e.Prod) == 0 {
		return 0
	}
	return sum64(e.Prod) * (tau / int64(len(e.Prod)))
}

// CycleCons returns Y(τ_dst): tokens consumed from e during one full cycle
// of the consumer.
func (g *Graph) CycleCons(e *Edge) int64 {
	tau := g.Phases(e.Dst)
	if len(e.Cons) == 0 {
		return 0
	}
	return sum64(e.Cons) * (tau / int64(len(e.Cons)))
}

// Validate checks structural sanity: indices in range, unique actor names,
// non-negative rates and initial tokens, and at least one positive rate in
// every non-empty sequence.
func (g *Graph) Validate() error {
	names := map[string]bool{}
	for i := range g.Actors {
		n := g.Actors[i].Name
		if n == "" {
			return fmt.Errorf("csdf: actor %d has empty name", i)
		}
		if names[n] {
			return fmt.Errorf("csdf: duplicate actor name %q", n)
		}
		names[n] = true
		for _, t := range g.Actors[i].Exec {
			if t < 0 {
				return fmt.Errorf("csdf: actor %q has negative execution time", n)
			}
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Src < 0 || e.Src >= len(g.Actors) || e.Dst < 0 || e.Dst >= len(g.Actors) {
			return fmt.Errorf("csdf: edge %q endpoints out of range", e.Name)
		}
		if e.Initial < 0 {
			return fmt.Errorf("csdf: edge %q has negative initial tokens", e.Name)
		}
		if len(e.Prod) == 0 || len(e.Cons) == 0 {
			return fmt.Errorf("csdf: edge %q missing rate sequence", e.Name)
		}
		if err := checkSeq(e.Prod, e.Name, "production"); err != nil {
			return err
		}
		if err := checkSeq(e.Cons, e.Name, "consumption"); err != nil {
			return err
		}
	}
	return nil
}

func checkSeq(seq []int64, edge, kind string) error {
	pos := false
	for _, v := range seq {
		if v < 0 {
			return fmt.Errorf("csdf: edge %q has negative %s rate", edge, kind)
		}
		if v > 0 {
			pos = true
		}
	}
	if !pos {
		return fmt.Errorf("csdf: edge %q has all-zero %s sequence", edge, kind)
	}
	return nil
}

// String renders the graph compactly for debugging and reports.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "csdf.Graph{%d actors, %d edges}\n", len(g.Actors), len(g.Edges))
	for i := range g.Edges {
		e := &g.Edges[i]
		fmt.Fprintf(&b, "  %s: %s %v -> %v %s", e.Name,
			g.Actors[e.Src].Name, e.Prod, e.Cons, g.Actors[e.Dst].Name)
		if e.Initial > 0 {
			fmt.Fprintf(&b, " (init %d)", e.Initial)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for i := range g.Actors {
		out.AddActor(g.Actors[i].Name, append([]int64(nil), g.Actors[i].Exec...)...)
	}
	for i := range g.Edges {
		e := g.Edges[i]
		e.Prod = append([]int64(nil), e.Prod...)
		e.Cons = append([]int64(nil), e.Cons...)
		out.Edges = append(out.Edges, e)
	}
	return out
}
