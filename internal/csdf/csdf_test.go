package csdf

import (
	"testing"
	"testing/quick"
)

// fig1Graph reconstructs the paper's Fig. 1 CSDF example: three actors in a
// cycle a1 -> a2 -> a3 -> a1 with rate sequences chosen to give the stated
// repetition vector q = [3, 2, 2], two initial tokens on e2, and the unique
// valid start (a3)^2 (a1)^3 (a2)^2.
func fig1Graph() *Graph {
	g := NewGraph()
	a1 := g.AddActor("a1", 1)
	a2 := g.AddActor("a2", 1)
	a3 := g.AddActor("a3", 1)
	g.ConnectNamed("e1", a1, []int64{1, 0, 1}, a2, []int64{1, 1}, 0)
	g.ConnectNamed("e2", a2, []int64{0, 2}, a3, []int64{1}, 2)
	g.ConnectNamed("e3", a3, []int64{2}, a1, []int64{1, 1, 2}, 0)
	return g
}

func TestFig1RepetitionVector(t *testing.T) {
	g := fig1Graph()
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	wantQ := []int64{3, 2, 2}
	wantR := []int64{1, 1, 2}
	for j := range wantQ {
		if sol.Q[j] != wantQ[j] {
			t.Errorf("q[%d] = %d, want %d", j, sol.Q[j], wantQ[j])
		}
		if sol.R[j] != wantR[j] {
			t.Errorf("r[%d] = %d, want %d", j, sol.R[j], wantR[j])
		}
	}
}

func TestFig1Schedule(t *testing.T) {
	g := fig1Graph()
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.BuildSchedule(sol, RunLength)
	if err != nil {
		t.Fatal(err)
	}
	// The only admissible start is a3 twice, then a1 three times, then a2
	// twice — the paper's (a3)^2 (a1)^3 (a2)^2.
	if got := s.Format(g); got != "(a3)^2 (a1)^3 (a2)^2" {
		t.Errorf("schedule = %q, want (a3)^2 (a1)^3 (a2)^2", got)
	}
	// The fine-grained eager policy interleaves but must stay admissible.
	eager, err := g.BuildSchedule(sol, Eager)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReplaySchedule(eager.Order); err != nil {
		t.Errorf("eager schedule not admissible: %v", err)
	}
	// The iteration must restore the initial state.
	ok, err := g.ReturnsToInitial(sol, Eager)
	if err != nil || !ok {
		t.Errorf("ReturnsToInitial = %v, %v", ok, err)
	}
}

func TestPhases(t *testing.T) {
	g := fig1Graph()
	wants := []int64{3, 2, 1}
	for j, w := range wants {
		if got := g.Phases(j); got != w {
			t.Errorf("Phases(%s) = %d, want %d", g.Actors[j].Name, got, w)
		}
	}
}

func TestCumulativeRates(t *testing.T) {
	e := Edge{Prod: []int64{1, 0, 1}, Cons: []int64{2}}
	// X over [1,0,1]: 1,1,2 then repeats +2
	wants := []int64{0, 1, 1, 2, 3, 3, 4}
	for n, w := range wants {
		if got := e.CumProd(int64(n)); got != w {
			t.Errorf("CumProd(%d) = %d, want %d", n, got, w)
		}
	}
	if e.CumCons(5) != 10 {
		t.Errorf("CumCons(5) = %d, want 10", e.CumCons(5))
	}
	if e.ProdAt(4) != 0 { // index 4 mod 3 = 1 -> 0
		t.Errorf("ProdAt(4) = %d, want 0", e.ProdAt(4))
	}
}

func TestInconsistentGraphRejected(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{2}, b, []int64{1}, 0)
	g.Connect(a, []int64{1}, b, []int64{1}, 0) // conflicting ratio
	if _, err := g.RepetitionVector(); err == nil {
		t.Fatal("inconsistent graph must be rejected")
	}
}

func TestSDFSpecialCase(t *testing.T) {
	// Plain SDF a -2-> b -3-> c with single-phase rates.
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	c := g.AddActor("c")
	g.Connect(a, []int64{2}, b, []int64{3}, 0)
	g.Connect(b, []int64{1}, c, []int64{2}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 1}
	for j := range want {
		if sol.Q[j] != want[j] {
			t.Errorf("q = %v, want %v", sol.Q, want)
		}
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	c := g.AddActor("c")
	d := g.AddActor("d")
	g.Connect(a, []int64{1}, b, []int64{2}, 0)
	g.Connect(c, []int64{3}, d, []int64{1}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	// a:b must be 2:1 and c:d must be 1:3 within components.
	if sol.Q[0] != 2*sol.Q[1]/1 && sol.Q[0]*2 != sol.Q[1] {
		t.Errorf("q = %v", sol.Q)
	}
	if 3*sol.Q[2] != sol.Q[3] {
		t.Errorf("q = %v: want q[d] = 3*q[c]", sol.Q)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two-actor cycle with no initial tokens deadlocks.
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, a, []int64{1}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BuildSchedule(sol, Eager); err == nil {
		t.Fatal("deadlocked graph must fail scheduling")
	}
}

func TestCycleWithInitialTokensLive(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, a, []int64{1}, 1)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.BuildSchedule(sol, Eager)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Order) != 2 {
		t.Errorf("schedule length = %d, want 2", len(s.Order))
	}
}

func TestValidate(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}

	bad := NewGraph()
	x := bad.AddActor("x")
	y := bad.AddActor("y")
	bad.Connect(x, []int64{0, 0}, y, []int64{1}, 0)
	if err := bad.Validate(); err == nil {
		t.Error("all-zero production sequence must be rejected")
	}

	dup := NewGraph()
	dup.AddActor("x")
	dup.AddActor("x")
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names must be rejected")
	}

	neg := NewGraph()
	u := neg.AddActor("u")
	v := neg.AddActor("v")
	neg.Connect(u, []int64{1}, v, []int64{1}, -1)
	if err := neg.Validate(); err == nil {
		t.Error("negative initial tokens must be rejected")
	}
}

func TestDemandPolicyReducesPipelineBuffer(t *testing.T) {
	// Pipeline a -10-> b -1/1-> c: demand-driven scheduling drains b's
	// output as soon as possible; both must be admissible.
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	c := g.AddActor("c")
	g.Connect(a, []int64{10}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, c, []int64{1}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	eager, err := g.BuildSchedule(sol, Eager)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := g.BuildSchedule(sol, Demand)
	if err != nil {
		t.Fatal(err)
	}
	if demand.TotalBuffer() > eager.TotalBuffer() {
		t.Errorf("demand buffer %d > eager buffer %d", demand.TotalBuffer(), eager.TotalBuffer())
	}
	if demand.MaxTokens[1] != 1 {
		t.Errorf("demand policy should keep edge b->c at 1 token, got %d", demand.MaxTokens[1])
	}
}

func TestReplayScheduleDetectsUnderflow(t *testing.T) {
	g := fig1Graph()
	// Firing a1 first underflows e3.
	if _, err := g.ReplaySchedule([]int{0}); err == nil {
		t.Fatal("expected underflow error")
	}
	// The valid order replays cleanly.
	sol, _ := g.RepetitionVector()
	s, _ := g.BuildSchedule(sol, Eager)
	if _, err := g.ReplaySchedule(s.Order); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestBuildPrecedenceChain(t *testing.T) {
	// a -[2]-> b -[1]/[2]-> c with q = [1, 2, 1].
	g := NewGraph()
	a := g.AddActor("a", 5)
	b := g.AddActor("b", 3)
	c := g.AddActor("c", 2)
	g.Connect(a, []int64{2}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, c, []int64{2}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.BuildPrecedence(sol, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 {
		t.Fatalf("N = %d, want 4", p.N())
	}
	// b's two firings both depend on a's single firing.
	b0 := p.NodeID(b, 0)
	b1 := p.NodeID(b, 1)
	a0 := p.NodeID(a, 0)
	c0 := p.NodeID(c, 0)
	if len(p.Deps[b0]) != 1 || p.Deps[b0][0] != a0 {
		t.Errorf("deps(b0) = %v, want [a0]", p.Deps[b0])
	}
	if len(p.Deps[b1]) != 1 || p.Deps[b1][0] != a0 {
		t.Errorf("deps(b1) = %v, want [a0]", p.Deps[b1])
	}
	// c needs 2 tokens -> depends on b's second firing.
	if len(p.Deps[c0]) != 1 || p.Deps[c0][0] != b1 {
		t.Errorf("deps(c0) = %v, want [b1]", p.Deps[c0])
	}
	// Critical path: a(5) -> b(3) -> c(2) = 10.
	cp, path, err := p.CriticalPath(g)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 10 {
		t.Errorf("critical path = %d, want 10", cp)
	}
	if len(path) != 3 {
		t.Errorf("critical path nodes = %v", path)
	}
}

func TestBuildPrecedenceInitialTokensCut(t *testing.T) {
	// b's first firing is satisfied by initial tokens, so it has no deps.
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{1}, b, []int64{1}, 1)
	sol, _ := g.RepetitionVector()
	p, err := g.BuildPrecedence(sol, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Deps[p.NodeID(b, 0)]) != 0 {
		t.Errorf("b0 should have no deps, got %v", p.Deps[p.NodeID(b, 0)])
	}
}

func TestBuildPrecedenceSerialize(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{2}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	p, err := g.BuildPrecedence(sol, true)
	if err != nil {
		t.Fatal(err)
	}
	// b1 depends on b0 (chain) and on a0 (data).
	deps := p.Deps[p.NodeID(b, 1)]
	if len(deps) != 2 {
		t.Errorf("deps(b1) = %v, want chain+data", deps)
	}
}

func TestPrecedenceIsDAG(t *testing.T) {
	g := fig1Graph()
	sol, _ := g.RepetitionVector()
	p, err := g.BuildPrecedence(sol, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Digraph().IsDAG() {
		t.Fatal("canonical period must be acyclic")
	}
}

func TestClone(t *testing.T) {
	g := fig1Graph()
	c := g.Clone()
	c.Edges[0].Prod[0] = 99
	c.Actors[0].Exec[0] = 99
	if g.Edges[0].Prod[0] == 99 || g.Actors[0].Exec[0] == 99 {
		t.Error("Clone must deep-copy slices")
	}
}

// randomChain builds a random consistent chain graph for property tests.
func randomChain(rates []uint8) *Graph {
	g := NewGraph()
	prev := g.AddActor("n0")
	for i, r := range rates {
		cur := g.AddActor(nameFor(i + 1))
		p := int64(r%5) + 1
		c := int64(r%3) + 1
		g.Connect(prev, []int64{p}, cur, []int64{c}, 0)
		prev = cur
	}
	return g
}

func nameFor(i int) string { return "n" + string(rune('0'+i%10)) + string(rune('a'+i/10)) }

func TestQuickChainConsistencyAndLiveness(t *testing.T) {
	f := func(rates []uint8) bool {
		if len(rates) == 0 || len(rates) > 8 {
			return true
		}
		g := randomChain(rates)
		sol, err := g.RepetitionVector()
		if err != nil {
			return false // chains are always consistent
		}
		// Balance must hold on every edge.
		for ei := range g.Edges {
			e := &g.Edges[ei]
			if e.CumProd(sol.Q[e.Src]) != e.CumCons(sol.Q[e.Dst]) {
				return false
			}
		}
		// Acyclic graphs are always live; iteration restores initial state.
		ok, err := g.ReturnsToInitial(sol, Eager)
		return err == nil && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRepetitionVectorMinimal(t *testing.T) {
	// gcd of r entries is 1 (minimality of the normalized solution).
	f := func(rates []uint8) bool {
		if len(rates) == 0 || len(rates) > 8 {
			return true
		}
		g := randomChain(rates)
		sol, err := g.RepetitionVector()
		if err != nil {
			return false
		}
		var gcd int64
		for _, r := range sol.R {
			gcd = gcd64(gcd, r)
		}
		return gcd == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestQuickScheduleLengthMatchesQ(t *testing.T) {
	f := func(rates []uint8) bool {
		if len(rates) == 0 || len(rates) > 6 {
			return true
		}
		g := randomChain(rates)
		sol, err := g.RepetitionVector()
		if err != nil {
			return false
		}
		s, err := g.BuildSchedule(sol, Eager)
		if err != nil {
			return false
		}
		counts := make([]int64, len(g.Actors))
		for _, a := range s.Order {
			counts[a]++
		}
		for j := range counts {
			if counts[j] != sol.Q[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
