package csdf

import (
	"math"
	"testing"
)

func TestMCRSingleActorSelfPeriod(t *testing.T) {
	// One actor, exec 7, feeding itself through a sink: period = 7 (the
	// serialization self-loop).
	g := NewGraph()
	a := g.AddActor("a", 7)
	b := g.AddActor("b", 3)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcr-7) > 1e-3 {
		t.Errorf("MCR = %g, want 7 (slowest serialized actor)", mcr)
	}
}

func TestMCRPipelineBottleneck(t *testing.T) {
	// a(2) -> b(5) -> c(3): the pipeline's steady-state period is the
	// bottleneck stage, 5.
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 5)
	c := g.AddActor("c", 3)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, c, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcr-5) > 1e-3 {
		t.Errorf("MCR = %g, want 5", mcr)
	}
	thr, err := g.ThroughputBound(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thr-0.2) > 1e-3 {
		t.Errorf("throughput = %g, want 0.2", thr)
	}
}

func TestMCRFeedbackCycleDominates(t *testing.T) {
	// a(4) <-> b(6) with one token in the loop: the cycle executes
	// alternately, period = (4+6)/1 = 10, above either actor alone.
	g := NewGraph()
	a := g.AddActor("a", 4)
	b := g.AddActor("b", 6)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, a, []int64{1}, 1)
	sol, _ := g.RepetitionVector()
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcr-10) > 1e-3 {
		t.Errorf("MCR = %g, want 10 (the feedback cycle)", mcr)
	}
}

func TestMCRMoreTokensMorePipelining(t *testing.T) {
	// Same loop with two tokens: two firings in flight, period halves.
	g := NewGraph()
	a := g.AddActor("a", 4)
	b := g.AddActor("b", 6)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, a, []int64{1}, 2)
	sol, _ := g.RepetitionVector()
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle ratio (4+6)/2 = 5, but each actor's serialization loop also
	// bounds: max(4, 6, 5) = 6.
	if math.Abs(mcr-6) > 1e-3 {
		t.Errorf("MCR = %g, want 6 (actor b's own period)", mcr)
	}
}

func TestMCRMultiRate(t *testing.T) {
	// a(1) produces 2, b(3) consumes 1: q = [1, 2]; b fires twice per
	// iteration serialized -> period 6 per iteration; a contributes 1.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 3)
	g.Connect(a, []int64{2}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcr-6) > 1e-3 {
		t.Errorf("MCR = %g, want 6 (two serialized b firings)", mcr)
	}
}

func TestMCRDeadlockedGraphRejected(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, a, []int64{1}, 0) // no tokens: deadlock
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.MaxCycleRatio(sol, 1e-6); err == nil {
		t.Fatal("deadlocked graph must have no feasible period")
	}
}

func TestMCRZeroWork(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 0)
	b := g.AddActor("b", 0)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if mcr != 0 {
		t.Errorf("MCR = %g, want 0", mcr)
	}
	thr, err := g.ThroughputBound(sol, 1e-6)
	if err != nil || !math.IsInf(thr, 1) {
		t.Errorf("throughput = %g, want +Inf", thr)
	}
}

func TestUnfoldPrecedenceShape(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 5)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	p, err := g.UnfoldPrecedence(sol, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 6 {
		t.Fatalf("unfolded 3 iterations of 2 firings = %d nodes, want 6", p.N())
	}
	if !p.Digraph().IsDAG() {
		t.Fatal("unfolded precedence must be acyclic")
	}
	// b of iteration 2 depends on a of iteration 2 and b of iteration 1.
	b2 := p.NodeID(b, 2)
	if b2 < 0 {
		t.Fatal("firing lookup failed")
	}
	depActors := map[int]bool{}
	for _, d := range p.Deps[b2] {
		depActors[p.Firings[d].Actor] = true
	}
	if !depActors[a] || !depActors[b] {
		t.Errorf("deps of b@2 = %v, want data + serialization", p.Deps[b2])
	}
	if _, err := g.UnfoldPrecedence(sol, 0); err == nil {
		t.Error("unfold factor 0 must fail")
	}
}

func TestUnfoldedCriticalPathApproachesMCR(t *testing.T) {
	// Pipeline a(2) -> b(5) -> c(3): MCR = 5. The critical path of k
	// unfolded iterations is startup latency + (k-1)*MCR, so the per-
	// iteration cost converges to 5 from above.
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 5)
	c := g.AddActor("c", 3)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, c, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	var cp1, cp8 int64
	{
		p, err := g.UnfoldPrecedence(sol, 1)
		if err != nil {
			t.Fatal(err)
		}
		cp1, _, err = p.CriticalPath(g)
		if err != nil {
			t.Fatal(err)
		}
	}
	{
		p, err := g.UnfoldPrecedence(sol, 8)
		if err != nil {
			t.Fatal(err)
		}
		cp8, _, err = p.CriticalPath(g)
		if err != nil {
			t.Fatal(err)
		}
	}
	if cp1 != 10 {
		t.Errorf("one-iteration critical path = %d, want 10", cp1)
	}
	// cp8 = 10 + 7*5 = 45.
	if cp8 != 45 {
		t.Errorf("8-iteration critical path = %d, want 45 (startup + 7×MCR)", cp8)
	}
}

func TestQuickMCRAcyclicEqualsBottleneck(t *testing.T) {
	// For any acyclic graph the only cycles are the per-actor serialization
	// loops, so MCR == max over actors of q_j·exec_j (work per iteration of
	// the busiest actor).
	rng := newRand(17)
	for trial := 0; trial < 25; trial++ {
		g := NewGraph()
		n := rng()%4 + 2
		prev := g.AddActor("n0", int64(rng()%5+1))
		for i := 1; i < n; i++ {
			cur := g.AddActor(nameFor(i), int64(rng()%5+1))
			g.Connect(prev, []int64{int64(rng()%3 + 1)}, cur, []int64{int64(rng()%3 + 1)}, 0)
			prev = cur
		}
		sol, err := g.RepetitionVector()
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for j := range g.Actors {
			var w int64
			for k := int64(0); k < sol.Q[j]; k++ {
				w += g.Actors[j].ExecAt(k)
			}
			if f := float64(w); f > want {
				want = f
			}
		}
		mcr, err := g.MaxCycleRatio(sol, 1e-6)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if diff := mcr - want; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("trial %d: MCR = %g, want bottleneck %g\n%s", trial, mcr, want, g)
		}
	}
}

// newRand is a tiny deterministic generator for table-driven fuzzing
// without importing math/rand in this file.
func newRand(seed uint64) func() int {
	s := seed
	return func() int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return int((s * 0x2545F4914F6CDD1D) >> 33)
	}
}

func TestMCRInitialTokensSpanningIterations(t *testing.T) {
	// Many initial tokens decouple producer and consumer across several
	// iterations; the delays must absorb them without error.
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	g.Connect(a, []int64{1}, b, []int64{1}, 7)
	sol, _ := g.RepetitionVector()
	mcr, err := g.MaxCycleRatio(sol, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Fully decoupled for 7 iterations: each actor runs at its own rate;
	// bound is the slower actor, 3.
	if math.Abs(mcr-3) > 1e-3 {
		t.Errorf("MCR = %g, want 3", mcr)
	}
}
