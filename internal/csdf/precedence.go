package csdf

import (
	"fmt"

	"repro/internal/graph"
)

// Firing identifies the k-th firing (0-based) of an actor within one
// iteration of the graph.
type Firing struct {
	Actor int
	K     int64
}

// String renders the firing with a 1-based ordinal, matching the paper's
// notation (A1, A2, ...).
func (f Firing) Format(g *Graph) string {
	return fmt.Sprintf("%s%d", g.Actors[f.Actor].Name, f.K+1)
}

// Precedence is the canonical-period dependence graph (§III-D): one node per
// actor firing in a single iteration, one edge per data dependency between
// those firings. Dependencies satisfied by initial tokens from the previous
// period are omitted.
type Precedence struct {
	Firings []Firing
	// Deps lists, per firing node index, the node indices it depends on.
	Deps [][]int
	// base holds prefix offsets per actor for dense construction; sparse
	// precedences (after mode pruning) use the index map instead.
	base  []int64
	index map[Firing]int
}

// NewPrecedence builds a precedence relation from explicit firings and
// dependency lists, e.g. after mode-based pruning. NodeID lookups fall back
// to a map index.
func NewPrecedence(firings []Firing, deps [][]int) *Precedence {
	p := &Precedence{Firings: firings, Deps: deps, index: make(map[Firing]int, len(firings))}
	for i, f := range firings {
		p.index[f] = i
	}
	return p
}

// NodeID returns the node index of firing (actor, k), or -1 if the firing
// was pruned away.
func (p *Precedence) NodeID(actor int, k int64) int {
	if p.index != nil {
		if id, ok := p.index[Firing{Actor: actor, K: k}]; ok {
			return id
		}
		return -1
	}
	return int(p.base[actor] + k)
}

// N returns the number of firing nodes.
func (p *Precedence) N() int { return len(p.Firings) }

// BuildPrecedence constructs the canonical-period precedence graph for one
// iteration with repetition vector sol.Q.
//
// For a channel e = (i -> j), the n-th firing of j needs Y(n+1) cumulative
// tokens; with φ0 initial tokens it therefore depends on the m-th firing of
// i for the smallest m with φ0 + X(m+1) >= Y(n+1) (no dependency if the
// initial tokens alone suffice; the dependency is dropped if it falls
// outside this iteration, because the previous period provides it).
//
// When serialize is true, consecutive firings of the same actor are chained,
// modelling a sequential task as deployed by the ΣC runtime.
func (g *Graph) BuildPrecedence(sol *Solution, serialize bool) (*Precedence, error) {
	n := len(g.Actors)
	p := &Precedence{base: make([]int64, n)}
	var total int64
	for j := 0; j < n; j++ {
		p.base[j] = total
		total += sol.Q[j]
	}
	if total > 1<<22 {
		return nil, fmt.Errorf("csdf: precedence graph too large (%d firings)", total)
	}
	p.Firings = make([]Firing, total)
	p.Deps = make([][]int, total)
	for j := 0; j < n; j++ {
		for k := int64(0); k < sol.Q[j]; k++ {
			p.Firings[p.NodeID(j, k)] = Firing{Actor: j, K: k}
		}
	}

	addDep := func(to, from int) {
		p.Deps[to] = append(p.Deps[to], from)
	}

	if serialize {
		for j := 0; j < n; j++ {
			for k := int64(1); k < sol.Q[j]; k++ {
				addDep(p.NodeID(j, k), p.NodeID(j, k-1))
			}
		}
	}

	for ei := range g.Edges {
		e := &g.Edges[ei]
		if e.Src == e.Dst {
			continue // self-loop ordering is the serialization chain
		}
		var m int64 // candidate producer firing, monotone in n
		for nCons := int64(0); nCons < sol.Q[e.Dst]; nCons++ {
			need := e.CumCons(nCons + 1)
			if need <= e.Initial {
				continue
			}
			for m < sol.Q[e.Src] && e.Initial+e.CumProd(m+1) < need {
				m++
			}
			if m >= sol.Q[e.Src] {
				break // provided by the previous period
			}
			addDep(p.NodeID(e.Dst, nCons), p.NodeID(e.Src, m))
		}
	}
	return p, nil
}

// Digraph converts the precedence relation into a graph.Digraph with edges
// pointing from a dependency to its dependent (dataflow direction).
func (p *Precedence) Digraph() *graph.Digraph {
	d := graph.New(p.N())
	for to, deps := range p.Deps {
		for _, from := range deps {
			d.AddEdge(from, to)
		}
	}
	return d
}

// CriticalPath returns the longest path length through the precedence DAG
// where each node costs the actor's per-firing execution time, plus the
// node order realizing it. Used for makespan lower bounds.
func (p *Precedence) CriticalPath(g *Graph) (int64, []int, error) {
	d := p.Digraph()
	order, err := d.TopoSort()
	if err != nil {
		return 0, nil, fmt.Errorf("csdf: precedence graph is cyclic: %v", err)
	}
	dist := make([]int64, p.N())
	pred := make([]int, p.N())
	for i := range pred {
		pred[i] = -1
	}
	var best int64
	bestNode := 0
	for _, u := range order {
		f := p.Firings[u]
		cost := g.Actors[f.Actor].ExecAt(f.K)
		du := dist[u] + cost
		if du > best {
			best, bestNode = du, u
		}
		for _, v := range d.Succ(u) {
			if du > dist[v] {
				dist[v] = du
				pred[v] = u
			}
		}
	}
	var path []int
	for v := bestNode; v != -1; v = pred[v] {
		path = append(path, v)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}
