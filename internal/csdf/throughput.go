package csdf

import (
	"fmt"
	"math"
)

// Throughput analysis via maximum cycle ratio (MCR): the classical
// self-timed bound used by SDF tool chains. The firing-level dependence
// graph of one iteration is extended with inter-iteration edges (carrying
// delay 1 per iteration boundary), and the steady-state iteration period of
// unbounded self-timed execution equals the maximum over cycles of
// (total execution time) / (total delay).
//
// The MCR is computed by binary search on λ: a candidate period λ is
// feasible iff the graph with edge weights w = exec(src) − λ·delay has no
// positive cycle (checked with Bellman-Ford). The search narrows to the
// simulator's observable precision.

// ipgEdge is an edge of the inter-iteration precedence graph.
type ipgEdge struct {
	from, to int
	delay    int64 // iteration-boundary crossings (0 = same iteration)
}

// iterationGraph builds firing-level dependence edges including those that
// wrap to later iterations. For edge e = (i -> j), the n-th firing of j in
// iteration m depends on the producer firing that supplies its last token;
// cumulative production over iterations is X(k) + it·X(q_i) + initial.
func (g *Graph) iterationGraph(sol *Solution) ([]ipgEdge, []int64, error) {
	n := len(g.Actors)
	base := make([]int64, n)
	var total int64
	for j := 0; j < n; j++ {
		base[j] = total
		total += sol.Q[j]
	}
	if total > 1<<20 {
		return nil, nil, fmt.Errorf("csdf: iteration graph too large (%d firings)", total)
	}
	id := func(actor int, k int64) int { return int(base[actor] + k) }

	var edges []ipgEdge
	// Serialization of successive firings of one actor, wrapping to the
	// next iteration for the last firing.
	for j := 0; j < n; j++ {
		for k := int64(1); k < sol.Q[j]; k++ {
			edges = append(edges, ipgEdge{id(j, k-1), id(j, k), 0})
		}
		edges = append(edges, ipgEdge{id(j, sol.Q[j]-1), id(j, 0), 1})
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if e.Src == e.Dst {
			continue
		}
		q := sol.Q[e.Src]
		prodPerIter := e.CumProd(q)
		for nc := int64(0); nc < sol.Q[e.Dst]; nc++ {
			// In steady state, firing nc of the consumer in iteration t
			// needs cumulative tokens t·prodPerIter + CumCons(nc+1); the
			// producer firing supplying the last of them is the smallest
			// global index m with Initial + F(m+1) >= that, where
			// F(k·q + r) = k·prodPerIter + CumProd(r) extends the
			// cumulative production over iteration boundaries (k may be
			// negative when initial tokens cover several iterations).
			need := e.CumCons(nc+1) - e.Initial
			// Shift into positive territory: need + s·prodPerIter > 0.
			s := int64(0)
			if need <= 0 {
				s = (-need)/prodPerIter + 1
			}
			shifted := need + s*prodPerIter
			// Find the smallest m' >= 0 with F(m'+1) >= shifted; since
			// 0 < shifted <= prodPerIter + s·prodPerIter, m' < (s+1)·q.
			k := (shifted - 1) / prodPerIter // full iterations skipped
			rem := shifted - k*prodPerIter   // in (0, prodPerIter]
			rel := int64(0)
			for e.CumProd(rel+1) < rem {
				rel++
			}
			mPrime := k*q + rel
			// Undo the shift: m = m' − s·q; delay = s − m'/q iterations.
			delay := s - mPrime/q
			if delay < 0 {
				return nil, nil, fmt.Errorf("csdf: internal: negative delay on edge %q", e.Name)
			}
			edges = append(edges, ipgEdge{id(e.Src, mPrime%q), id(e.Dst, nc), delay})
		}
	}
	return edges, base, nil
}

// MaxCycleRatio returns the steady-state iteration period bound of
// unbounded self-timed execution: max over dependence cycles of
// exec-sum / delay-sum. The graph must be consistent and live. The result
// is exact to within tol.
func (g *Graph) MaxCycleRatio(sol *Solution, tol float64) (float64, error) {
	edges, base, err := g.iterationGraph(sol)
	if err != nil {
		return 0, err
	}
	n := len(g.Actors)
	var totalNodes int64
	for j := 0; j < n; j++ {
		totalNodes += sol.Q[j]
	}
	nodeExec := make([]float64, totalNodes)
	for j := 0; j < n; j++ {
		for k := int64(0); k < sol.Q[j]; k++ {
			nodeExec[base[j]+k] = float64(g.Actors[j].ExecAt(k))
		}
	}

	// Feasibility: with weights w = exec(from) − λ·delay, λ is an upper
	// bound on all cycle ratios iff no positive-weight cycle exists.
	feasible := func(lambda float64) bool {
		dist := make([]float64, totalNodes)
		// Bellman-Ford longest-path relaxation; positive cycle detection.
		for it := int64(0); it <= totalNodes; it++ {
			changed := false
			for _, e := range edges {
				w := nodeExec[e.from] - lambda*float64(e.delay)
				if nd := dist[e.from] + w; nd > dist[e.to]+1e-12 {
					dist[e.to] = nd
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		return false
	}

	// Upper bound: total work of one iteration (a cycle's exec-sum cannot
	// exceed it times its delay count's worth... total work is safe since
	// every cycle has delay >= 1 in a live graph).
	var hi float64
	for i := range nodeExec {
		hi += nodeExec[i]
	}
	if hi == 0 {
		return 0, nil
	}
	if !feasible(hi) {
		return 0, fmt.Errorf("csdf: no feasible period — graph not live")
	}
	lo := 0.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// UnfoldPrecedence builds the precedence relation of k consecutive
// iterations, including the cross-iteration dependences the single-period
// canonical graph omits. Scheduling the unfolded graph exposes pipelining
// across period boundaries: the makespan per iteration approaches the
// maximum cycle ratio as k grows.
func (g *Graph) UnfoldPrecedence(sol *Solution, k int64) (*Precedence, error) {
	if k < 1 {
		return nil, fmt.Errorf("csdf: unfold factor must be >= 1")
	}
	edges, base, err := g.iterationGraph(sol)
	if err != nil {
		return nil, err
	}
	var perIter int64
	for _, q := range sol.Q {
		perIter += q
	}
	if perIter*k > 1<<20 {
		return nil, fmt.Errorf("csdf: unfolded graph too large (%d firings)", perIter*k)
	}
	firings := make([]Firing, perIter*k)
	deps := make([][]int, perIter*k)
	for it := int64(0); it < k; it++ {
		for j := range g.Actors {
			for f := int64(0); f < sol.Q[j]; f++ {
				id := it*perIter + base[j] + f
				firings[id] = Firing{Actor: j, K: it*sol.Q[j] + f}
			}
		}
	}
	for _, e := range edges {
		for it := int64(0); it < k; it++ {
			// Producer in iteration it feeds the consumer in it+delay.
			target := it + e.delay
			if target >= k {
				continue
			}
			deps[target*perIter+int64(e.to)] = append(
				deps[target*perIter+int64(e.to)], int(it*perIter+int64(e.from)))
		}
	}
	return NewPrecedence(firings, deps), nil
}

// ThroughputBound returns iterations per time unit (1 / MCR), or +Inf for
// graphs with zero execution time.
func (g *Graph) ThroughputBound(sol *Solution, tol float64) (float64, error) {
	mcr, err := g.MaxCycleRatio(sol, tol)
	if err != nil {
		return 0, err
	}
	if mcr == 0 {
		return math.Inf(1), nil
	}
	return 1 / mcr, nil
}
