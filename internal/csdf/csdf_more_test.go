package csdf

import (
	"strings"
	"testing"
)

func TestActorExecAt(t *testing.T) {
	a := Actor{Name: "x", Exec: []int64{3, 5}}
	wants := []int64{3, 5, 3, 5}
	for n, w := range wants {
		if got := a.ExecAt(int64(n)); got != w {
			t.Errorf("ExecAt(%d) = %d, want %d", n, got, w)
		}
	}
	empty := Actor{Name: "y"}
	if empty.ExecAt(0) != 0 {
		t.Error("empty exec must cost 0")
	}
	single := Actor{Name: "z", Exec: []int64{7}}
	if single.ExecAt(42) != 7 {
		t.Error("single exec applies to every phase")
	}
}

func TestGraphString(t *testing.T) {
	g := fig1Graph()
	s := g.String()
	for _, frag := range []string{"3 actors", "3 edges", "(init 2)", "a1", "e3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q:\n%s", frag, s)
		}
	}
}

func TestScheduleFormatSingles(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	s, err := g.BuildSchedule(sol, Eager)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Format(g); got != "a b" {
		t.Errorf("Format = %q, want \"a b\" (no exponents on single firings)", got)
	}
}

func TestIterationTokens(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a")
	b := g.AddActor("b")
	ei := g.Connect(a, []int64{3}, b, []int64{2}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	// q = [2, 3]: 6 tokens per iteration.
	if got := g.IterationTokens(sol, ei); got != 6 {
		t.Errorf("IterationTokens = %d, want 6", got)
	}
}

func TestDemandPolicyDiamond(t *testing.T) {
	// Diamond: src -> {l, r} -> sink; demand scheduling must still complete
	// and keep buffers tight.
	g := NewGraph()
	src := g.AddActor("src")
	l := g.AddActor("l")
	r := g.AddActor("r")
	snk := g.AddActor("snk")
	g.Connect(src, []int64{1}, l, []int64{1}, 0)
	g.Connect(src, []int64{1}, r, []int64{1}, 0)
	g.Connect(l, []int64{1}, snk, []int64{1}, 0)
	g.Connect(r, []int64{1}, snk, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	s, err := g.BuildSchedule(sol, Demand)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalBuffer() > 4 {
		t.Errorf("diamond demand buffer = %d, want <= 4", s.TotalBuffer())
	}
}

func TestBuildScheduleMultiIterStability(t *testing.T) {
	// Running the schedule twice from the final state must reproduce the
	// same buffer bounds (the state is periodic).
	g := fig1Graph()
	sol, _ := g.RepetitionVector()
	s1, err := g.BuildSchedule(sol, Eager)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the same order twice over: admissible, same high-water marks.
	order2 := append(append([]int(nil), s1.Order...), s1.Order...)
	max2, err := g.ReplaySchedule(order2)
	if err != nil {
		t.Fatal(err)
	}
	for ei := range max2 {
		if max2[ei] != s1.MaxTokens[ei] {
			t.Errorf("edge %d: two-iteration max %d != one-iteration %d",
				ei, max2[ei], s1.MaxTokens[ei])
		}
	}
}

func TestNewPrecedenceLookup(t *testing.T) {
	p := NewPrecedence(
		[]Firing{{Actor: 2, K: 0}, {Actor: 5, K: 1}},
		[][]int{nil, {0}},
	)
	if p.NodeID(2, 0) != 0 || p.NodeID(5, 1) != 1 {
		t.Error("NodeID lookup wrong")
	}
	if p.NodeID(9, 9) != -1 {
		t.Error("missing firing must be -1")
	}
	if p.N() != 2 {
		t.Errorf("N = %d", p.N())
	}
}

func TestFiringFormat(t *testing.T) {
	g := fig1Graph()
	f := Firing{Actor: 0, K: 2}
	if got := f.Format(g); got != "a13" {
		t.Errorf("Format = %q, want a13 (1-based ordinal appended)", got)
	}
}

func TestCriticalPathOnDiamond(t *testing.T) {
	g := NewGraph()
	src := g.AddActor("src", 1)
	l := g.AddActor("l", 10)
	r := g.AddActor("r", 2)
	snk := g.AddActor("snk", 1)
	g.Connect(src, []int64{1}, l, []int64{1}, 0)
	g.Connect(src, []int64{1}, r, []int64{1}, 0)
	g.Connect(l, []int64{1}, snk, []int64{1}, 0)
	g.Connect(r, []int64{1}, snk, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	p, err := g.BuildPrecedence(sol, false)
	if err != nil {
		t.Fatal(err)
	}
	cp, path, err := p.CriticalPath(g)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 12 {
		t.Errorf("critical path = %d, want 12 (src+l+snk)", cp)
	}
	if len(path) != 3 {
		t.Errorf("path length = %d, want 3", len(path))
	}
	// The heavy branch is on the path.
	onPath := false
	for _, u := range path {
		if p.Firings[u].Actor == l {
			onPath = true
		}
	}
	if !onPath {
		t.Error("critical path must pass through the 10-cost actor")
	}
}
