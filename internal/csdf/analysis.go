package csdf

import (
	"fmt"

	"repro/internal/rat"
)

// Solution holds the consistency analysis result of a CSDF graph.
type Solution struct {
	// R is the minimal positive integer solution of the balance equations
	// Γ·r = 0 (one entry per actor): the number of full cycles per
	// iteration.
	R []int64
	// Q is the repetition vector q = P·r (Theorem 1): firings per iteration.
	Q []int64
}

// RepetitionVector solves the balance equations and returns the minimal
// solution. It returns an error if the graph is rate-inconsistent or has an
// actor not involved in any edge with a positive rate (unconstrained).
//
// Disconnected graphs are handled per weakly-connected component; each
// component is normalized independently, matching the standard treatment.
func (g *Graph) RepetitionVector() (*Solution, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Actors)
	if n == 0 {
		return &Solution{}, nil
	}
	ratios := make([]rat.Rat, n) // r_j as rationals; zero = unassigned
	assigned := make([]bool, n)

	// Undirected adjacency over edges for spanning-tree propagation.
	adj := make([][]int, n) // actor -> edge indices
	for ei := range g.Edges {
		e := &g.Edges[ei]
		adj[e.Src] = append(adj[e.Src], ei)
		if e.Dst != e.Src {
			adj[e.Dst] = append(adj[e.Dst], ei)
		}
	}

	for root := 0; root < n; root++ {
		if assigned[root] {
			continue
		}
		ratios[root] = rat.One
		assigned[root] = true
		stack := []int{root}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range adj[u] {
				e := &g.Edges[ei]
				prod := g.CycleProd(e)
				cons := g.CycleCons(e)
				if prod == 0 || cons == 0 {
					return nil, fmt.Errorf("csdf: edge %q has zero cycle rate", e.Name)
				}
				// r_src * prod == r_dst * cons
				var other int
				var val rat.Rat
				var err error
				switch u {
				case e.Src:
					other = e.Dst
					val, err = ratios[u].Mul(rat.New(prod, cons))
				default: // u == e.Dst
					other = e.Src
					val, err = ratios[u].Mul(rat.New(cons, prod))
				}
				if err != nil {
					return nil, fmt.Errorf("csdf: balance propagation overflow on edge %q: %v", e.Name, err)
				}
				if !assigned[other] {
					ratios[other] = val
					assigned[other] = true
					stack = append(stack, other)
				}
			}
		}
	}

	// Verify every edge (covers non-tree edges and self-loops).
	for ei := range g.Edges {
		e := &g.Edges[ei]
		lhs, err := ratios[e.Src].Mul(rat.FromInt(g.CycleProd(e)))
		if err != nil {
			return nil, err
		}
		rhs, err := ratios[e.Dst].Mul(rat.FromInt(g.CycleCons(e)))
		if err != nil {
			return nil, err
		}
		if !lhs.Equal(rhs) {
			return nil, fmt.Errorf("csdf: rate-inconsistent at edge %q: %s·%d ≠ %s·%d",
				e.Name, ratios[e.Src], g.CycleProd(e), ratios[e.Dst], g.CycleCons(e))
		}
	}

	// Normalize r to minimal integers (per component jointly is fine: the
	// global lcm/gcd scaling preserves each component's internal ratios and
	// matches the unique-iteration-vector convention used by the paper).
	l := int64(1)
	for _, r := range ratios {
		var ok bool
		l, ok = rat.LCM64(l, r.Den())
		if !ok {
			return nil, fmt.Errorf("csdf: repetition vector overflow (lcm of denominators)")
		}
	}
	rInts := make([]int64, n)
	var gAll int64
	for j, r := range ratios {
		v, err := r.Mul(rat.FromInt(l))
		if err != nil {
			return nil, err
		}
		iv, _ := v.Int()
		rInts[j] = iv
		gAll = rat.GCD64(gAll, iv)
	}
	if gAll > 1 {
		for j := range rInts {
			rInts[j] /= gAll
		}
	}
	q := make([]int64, n)
	for j := range rInts {
		q[j] = rInts[j] * g.Phases(j)
	}
	return &Solution{R: rInts, Q: q}, nil
}

// IsConsistent reports whether the balance equations have a non-trivial
// solution.
func (g *Graph) IsConsistent() bool {
	_, err := g.RepetitionVector()
	return err == nil
}

// IterationTokens returns the number of tokens transferred over edge ei
// during one complete iteration (q_src firings of the producer).
func (g *Graph) IterationTokens(sol *Solution, ei int) int64 {
	e := &g.Edges[ei]
	return e.CumProd(sol.Q[e.Src])
}
