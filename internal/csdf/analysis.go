package csdf

import (
	"fmt"

	"repro/internal/rat"
)

// Solution holds the consistency analysis result of a CSDF graph.
type Solution struct {
	// R is the minimal positive integer solution of the balance equations
	// Γ·r = 0 (one entry per actor): the number of full cycles per
	// iteration.
	R []int64
	// Q is the repetition vector q = P·r (Theorem 1): firings per iteration.
	Q []int64
}

// RepetitionVector solves the balance equations and returns the minimal
// solution. It returns an error if the graph is rate-inconsistent or has an
// actor not involved in any edge with a positive rate (unconstrained).
//
// Disconnected graphs are handled per weakly-connected component; each
// component is normalized independently, matching the standard treatment.
func (g *Graph) RepetitionVector() (*Solution, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.Actors)
	if n == 0 {
		return &Solution{}, nil
	}
	sol := &Solution{R: make([]int64, n), Q: make([]int64, n)}
	if err := g.SolveInto(g.NewSolverScratch(), sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// SolverScratch holds every piece of state a repetition-vector solve needs,
// split into a structural half fixed by the graph's shape (phase counts,
// adjacency) and a rate-dependent half recomputed per solve. Callers that
// re-solve one graph whose rate *values* change in place — the compile-once
// parameter programs — allocate it once and pass it to SolveInto on every
// rebind, which is then allocation-free.
type SolverScratch struct {
	tau                  []int64 // per actor, from rate-sequence lengths only
	adj                  [][]int // actor -> incident edge indices (undirected)
	cycleProd, cycleCons []int64 // per edge, recomputed by SolveInto
	ratios               []rat.Rat
	assigned             []bool
	stack                []int
}

// NewSolverScratch precomputes the structural half of a solve: phase
// counts and the undirected adjacency used for spanning-tree propagation.
// Both depend only on connectivity and rate-sequence lengths, so one
// scratch stays valid while rate values are overwritten in place.
func (g *Graph) NewSolverScratch() *SolverScratch {
	n := len(g.Actors)
	sc := &SolverScratch{
		tau:       make([]int64, n),
		adj:       make([][]int, n),
		cycleProd: make([]int64, len(g.Edges)),
		cycleCons: make([]int64, len(g.Edges)),
		ratios:    make([]rat.Rat, n),
		assigned:  make([]bool, n),
		stack:     make([]int, 0, n),
	}
	for j := 0; j < n; j++ {
		sc.tau[j] = g.Phases(j)
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		sc.adj[e.Src] = append(sc.adj[e.Src], ei)
		if e.Dst != e.Src {
			sc.adj[e.Dst] = append(sc.adj[e.Dst], ei)
		}
	}
	return sc
}

// SolveInto solves the balance equations from the graph's current rate
// tables into sol (whose R and Q must be sized to the actor count). It
// assumes the graph is structurally valid — RepetitionVector validates
// before calling it; the parameter programs validate at compile and
// rebind time — and performs no heap allocations.
func (g *Graph) SolveInto(sc *SolverScratch, sol *Solution) error {
	n := len(g.Actors)
	if n == 0 {
		return nil
	}
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if len(e.Prod) == 0 || len(e.Cons) == 0 {
			// Validate rejects this; guard so direct misuse of SolveInto
			// surfaces the classic diagnostic instead of a divide-by-zero.
			return fmt.Errorf("csdf: edge %q has zero cycle rate", e.Name)
		}
		sc.cycleProd[ei] = sum64(e.Prod) * (sc.tau[e.Src] / int64(len(e.Prod)))
		sc.cycleCons[ei] = sum64(e.Cons) * (sc.tau[e.Dst] / int64(len(e.Cons)))
	}
	for j := 0; j < n; j++ {
		sc.ratios[j] = rat.Zero // r_j as rationals; zero = unassigned
		sc.assigned[j] = false
	}
	stack := sc.stack[:0]
	for root := 0; root < n; root++ {
		if sc.assigned[root] {
			continue
		}
		sc.ratios[root] = rat.One
		sc.assigned[root] = true
		stack = append(stack, root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range sc.adj[u] {
				e := &g.Edges[ei]
				prod := sc.cycleProd[ei]
				cons := sc.cycleCons[ei]
				if prod == 0 || cons == 0 {
					return fmt.Errorf("csdf: edge %q has zero cycle rate", e.Name)
				}
				// r_src * prod == r_dst * cons
				var other int
				var val rat.Rat
				var err error
				switch u {
				case e.Src:
					other = e.Dst
					val, err = sc.ratios[u].Mul(rat.New(prod, cons))
				default: // u == e.Dst
					other = e.Src
					val, err = sc.ratios[u].Mul(rat.New(cons, prod))
				}
				if err != nil {
					return fmt.Errorf("csdf: balance propagation overflow on edge %q: %v", e.Name, err)
				}
				if !sc.assigned[other] {
					sc.ratios[other] = val
					sc.assigned[other] = true
					stack = append(stack, other)
				}
			}
		}
	}
	sc.stack = stack[:0]

	// Verify every edge (covers non-tree edges and self-loops).
	for ei := range g.Edges {
		e := &g.Edges[ei]
		lhs, err := sc.ratios[e.Src].Mul(rat.FromInt(sc.cycleProd[ei]))
		if err != nil {
			return err
		}
		rhs, err := sc.ratios[e.Dst].Mul(rat.FromInt(sc.cycleCons[ei]))
		if err != nil {
			return err
		}
		if !lhs.Equal(rhs) {
			return fmt.Errorf("csdf: rate-inconsistent at edge %q: %s·%d ≠ %s·%d",
				e.Name, sc.ratios[e.Src], sc.cycleProd[ei], sc.ratios[e.Dst], sc.cycleCons[ei])
		}
	}

	// Normalize r to minimal integers (per component jointly is fine: the
	// global lcm/gcd scaling preserves each component's internal ratios and
	// matches the unique-iteration-vector convention used by the paper).
	l := int64(1)
	for _, r := range sc.ratios {
		var ok bool
		l, ok = rat.LCM64(l, r.Den())
		if !ok {
			return fmt.Errorf("csdf: repetition vector overflow (lcm of denominators)")
		}
	}
	var gAll int64
	for j := 0; j < n; j++ {
		v, err := sc.ratios[j].Mul(rat.FromInt(l))
		if err != nil {
			return err
		}
		iv, _ := v.Int()
		sol.R[j] = iv
		gAll = rat.GCD64(gAll, iv)
	}
	if gAll > 1 {
		for j := 0; j < n; j++ {
			sol.R[j] /= gAll
		}
	}
	for j := 0; j < n; j++ {
		sol.Q[j] = sol.R[j] * sc.tau[j]
	}
	return nil
}

// IsConsistent reports whether the balance equations have a non-trivial
// solution.
func (g *Graph) IsConsistent() bool {
	_, err := g.RepetitionVector()
	return err == nil
}

// IterationTokens returns the number of tokens transferred over edge ei
// during one complete iteration (q_src firings of the producer).
func (g *Graph) IterationTokens(sol *Solution, ei int) int64 {
	e := &g.Edges[ei]
	return e.CumProd(sol.Q[e.Src])
}
