package csdf

import (
	"fmt"
	"strings"
)

// Schedule is a periodic admissible sequential schedule (PASS): a firing
// order for one iteration together with the buffer occupancy it induces.
type Schedule struct {
	// Order lists actor indices in firing order (len == sum of Q).
	Order []int
	// MaxTokens is the per-edge high-water mark reached while executing the
	// schedule starting from the initial channel state.
	MaxTokens []int64
	// Final is the per-edge token count after the full iteration; for a
	// consistent live graph it equals the initial state.
	Final []int64
}

// TotalBuffer returns the sum of per-edge high-water marks: the total buffer
// memory needed to run the schedule with one buffer per channel.
func (s *Schedule) TotalBuffer() int64 {
	var t int64
	for _, v := range s.MaxTokens {
		t += v
	}
	return t
}

// String renders the schedule in the paper's run-length notation,
// e.g. "(a3)^2 (a1)^3 (a2)^2".
func (s *Schedule) Format(g *Graph) string {
	var b strings.Builder
	i := 0
	for i < len(s.Order) {
		j := i
		for j < len(s.Order) && s.Order[j] == s.Order[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if j-i == 1 {
			b.WriteString(g.Actors[s.Order[i]].Name)
		} else {
			fmt.Fprintf(&b, "(%s)^%d", g.Actors[s.Order[i]].Name, j-i)
		}
		i = j
	}
	return b.String()
}

// SchedulePolicy selects the firing heuristic used to build a PASS.
type SchedulePolicy int

const (
	// Eager fires, at each step, the lowest-indexed enabled actor that has
	// remaining firings (ASAP; classic SDF scheduling order).
	Eager SchedulePolicy = iota
	// Demand fires the actor closest to the sink first (reverse topological
	// preference), which keeps buffers small on pipeline graphs: a consumer
	// drains tokens as soon as they become available.
	Demand
	// RunLength exhausts the chosen actor (fires it while it stays enabled)
	// before rescanning, producing flattened single-appearance-style
	// schedules such as the paper's (a3)^2 (a1)^3 (a2)^2 for Fig. 1.
	RunLength
)

// BuildSchedule constructs a PASS for one iteration under the policy.
// It returns an error if the graph deadlocks (is not live).
func (g *Graph) BuildSchedule(sol *Solution, policy SchedulePolicy) (*Schedule, error) {
	n := len(g.Actors)
	tokens := make([]int64, len(g.Edges))
	for i := range g.Edges {
		tokens[i] = g.Edges[i].Initial
	}
	maxTok := append([]int64(nil), tokens...)
	fired := make([]int64, n)
	var order []int

	var total int64
	for _, q := range sol.Q {
		total += q
	}

	// Priority order: for Demand, actors later in topological order of the
	// acyclic condensation fire first.
	prio := make([]int, n) // position -> actor index, tried in order
	for i := range prio {
		prio[i] = i
	}
	if policy == Demand {
		depth := g.sinkDistance()
		// Sort ascending by distance-to-sink: consumers (distance 0) first.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && depth[prio[j]] < depth[prio[j-1]]; j-- {
				prio[j], prio[j-1] = prio[j-1], prio[j]
			}
		}
	}

	canFire := func(a int) bool {
		if fired[a] >= sol.Q[a] {
			return false
		}
		for ei := range g.Edges {
			e := &g.Edges[ei]
			if e.Dst != a {
				continue
			}
			if tokens[ei] < e.ConsAt(fired[a]) {
				return false
			}
		}
		return true
	}
	fire := func(a int) {
		for ei := range g.Edges {
			e := &g.Edges[ei]
			if e.Dst == a {
				tokens[ei] -= e.ConsAt(fired[a])
			}
		}
		for ei := range g.Edges {
			e := &g.Edges[ei]
			if e.Src == a {
				tokens[ei] += e.ProdAt(fired[a])
				if tokens[ei] > maxTok[ei] {
					maxTok[ei] = tokens[ei]
				}
			}
		}
		fired[a]++
		order = append(order, a)
	}

	for int64(len(order)) < total {
		progressed := false
		for _, a := range prio {
			if canFire(a) {
				fire(a)
				if policy == RunLength {
					for canFire(a) {
						fire(a)
					}
				}
				progressed = true
				break
			}
		}
		if !progressed {
			return nil, fmt.Errorf("csdf: deadlock after %d of %d firings (remaining: %s)",
				len(order), total, g.remainingString(sol, fired))
		}
	}
	return &Schedule{Order: order, MaxTokens: maxTok, Final: tokens}, nil
}

func (g *Graph) remainingString(sol *Solution, fired []int64) string {
	var parts []string
	for j := range g.Actors {
		if fired[j] < sol.Q[j] {
			parts = append(parts, fmt.Sprintf("%s:%d/%d", g.Actors[j].Name, fired[j], sol.Q[j]))
		}
	}
	return strings.Join(parts, " ")
}

// sinkDistance returns, per actor, the length of the longest edge path to a
// sink, ignoring cycles (actors on cycles get the max over exits; actors on
// pure cycles get 0).
func (g *Graph) sinkDistance() []int {
	n := len(g.Actors)
	out := make([][]int, n)
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if e.Src != e.Dst {
			out[e.Src] = append(out[e.Src], e.Dst)
		}
	}
	depth := make([]int, n)
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	var dfs func(u int) int
	dfs = func(u int) int {
		switch state[u] {
		case 1:
			return 0 // cycle: cut off
		case 2:
			return depth[u]
		}
		state[u] = 1
		best := 0
		for _, v := range out[u] {
			if d := dfs(v) + 1; d > best {
				best = d
			}
		}
		state[u] = 2
		depth[u] = best
		return best
	}
	for u := 0; u < n; u++ {
		dfs(u)
	}
	return depth
}

// ReplaySchedule executes an explicit firing order from the initial state,
// returning per-edge high-water marks and verifying admissibility (no
// negative buffer). Used to check externally-constructed schedules.
func (g *Graph) ReplaySchedule(order []int) (maxTok []int64, err error) {
	tokens := make([]int64, len(g.Edges))
	for i := range g.Edges {
		tokens[i] = g.Edges[i].Initial
	}
	maxTok = append([]int64(nil), tokens...)
	fired := make([]int64, len(g.Actors))
	for step, a := range order {
		if a < 0 || a >= len(g.Actors) {
			return nil, fmt.Errorf("csdf: schedule step %d: actor %d out of range", step, a)
		}
		for ei := range g.Edges {
			e := &g.Edges[ei]
			if e.Dst == a {
				tokens[ei] -= e.ConsAt(fired[a])
				if tokens[ei] < 0 {
					return nil, fmt.Errorf("csdf: schedule step %d: edge %q underflows firing %s",
						step, e.Name, g.Actors[a].Name)
				}
			}
		}
		for ei := range g.Edges {
			e := &g.Edges[ei]
			if e.Src == a {
				tokens[ei] += e.ProdAt(fired[a])
				if tokens[ei] > maxTok[ei] {
					maxTok[ei] = tokens[ei]
				}
			}
		}
		fired[a]++
	}
	return maxTok, nil
}

// ReturnsToInitial reports whether executing one iteration restores every
// channel to its initial token count (Theorem 2 precondition).
func (g *Graph) ReturnsToInitial(sol *Solution, policy SchedulePolicy) (bool, error) {
	s, err := g.BuildSchedule(sol, policy)
	if err != nil {
		return false, err
	}
	for ei := range g.Edges {
		if s.Final[ei] != g.Edges[ei].Initial {
			return false, nil
		}
	}
	return true, nil
}
