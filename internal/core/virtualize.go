package core

import "fmt"

// VirtualizeSelectDuplicate applies the Fig. 3 construction used in the
// boundedness proof (Theorem 2): a kernel that chooses between its data
// *outputs* is rewritten so the choice happens between data *inputs* of a
// virtual Transaction kernel, leaving every producer-consumer dependence
// intact.
//
// Concretely, for a Select-duplicate kernel sel whose branches end at the
// nodes branchEnds (D and E in the figure):
//
//   - sel keeps producing on every branch (its choice becomes a signal);
//   - a virtual control actor <sel>_vc is added, receiving one signal token
//     per sel firing and emitting control tokens;
//   - a virtual Transaction kernel <sel>_vt is added, consuming one token
//     from each branch end and controlled by <sel>_vc, forwarding only the
//     data paths chosen by sel to a new sink <sel>_vsink.
//
// The transformation mutates g. It returns the ids of the added virtual
// control actor and transaction kernel.
func (g *Graph) VirtualizeSelectDuplicate(sel NodeID, branchEnds []NodeID) (NodeID, NodeID, error) {
	n := g.Nodes[sel]
	if n.Special != SpecialSelectDup {
		return 0, 0, fmt.Errorf("core: %q is not a select-duplicate kernel", n.Name)
	}
	if len(branchEnds) < 2 {
		return 0, 0, fmt.Errorf("core: virtualization needs at least two branch ends")
	}
	// The select-duplicate now always produces on all outputs.
	g.SetModes(sel, ModeWaitAll)

	vc := g.AddControlActor(n.Name + "_vc")
	vt := g.AddTransaction(n.Name + "_vt")
	vsink := g.AddKernel(n.Name + "_vsink")

	// Signal channel sel -> vc: one token per sel firing.
	sp, err := g.AddPort(sel, "sig", Out, "[1]", 0)
	if err != nil {
		return 0, 0, err
	}
	ip, err := g.AddPort(vc, "sig_in", In, "[1]", 0)
	if err != nil {
		return 0, 0, err
	}
	g.connectPorts(sel, sp, vc, ip, 0)

	// Control channel vc -> vt.
	if _, err := g.ConnectControl(vc, "[1]", vt, 0); err != nil {
		return 0, 0, err
	}

	// Each branch end feeds the virtual transaction with one token per
	// firing; vt forwards one token per firing to the virtual sink.
	for i, be := range branchEnds {
		op, err := g.AddPort(be, fmt.Sprintf("vt_o%d", i), Out, "[1]", 0)
		if err != nil {
			return 0, 0, err
		}
		tp, err := g.AddPort(vt, fmt.Sprintf("b%d", i), In, "[1]", i)
		if err != nil {
			return 0, 0, err
		}
		g.connectPorts(be, op, vt, tp, 0)
	}
	if _, err := g.Connect(vt, "[1]", vsink, "[1]", 0); err != nil {
		return 0, 0, err
	}
	return vc, vt, nil
}
