package core

import (
	"fmt"

	"repro/internal/csdf"
	"repro/internal/symb"
)

// Lowering records the correspondence between a TPDF graph and the concrete
// CSDF graph produced by Instantiate.
type Lowering struct {
	Env symb.Env
	// ActorOf maps NodeID to the csdf actor index (identity here, kept
	// explicit so callers never assume it).
	ActorOf []int
	// EdgeOf maps EdgeID to the csdf edge index.
	EdgeOf []int
	// ControlEdges flags, per csdf edge index, whether it lowers a control
	// channel.
	ControlEdges []bool
}

// Instantiate evaluates every rate of g under env (parameters missing from
// env use their declared defaults) and returns the fully-connected concrete
// CSDF graph, exactly as used by the §III-A consistency analysis and by the
// canonical-period scheduler. Modes are not applied: every edge is present.
func (g *Graph) Instantiate(env symb.Env) (*csdf.Graph, *Lowering, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	full := g.DefaultEnv()
	for k, v := range env {
		full[k] = v
	}
	for _, p := range g.Params {
		v := full[p.Name]
		if v < 1 {
			return nil, nil, fmt.Errorf("core: parameter %s = %d; parameters must be >= 1", p.Name, v)
		}
		if p.Min > 0 && v < p.Min {
			return nil, nil, fmt.Errorf("core: parameter %s = %d below declared minimum %d", p.Name, v, p.Min)
		}
		if p.Max > 0 && v > p.Max {
			return nil, nil, fmt.Errorf("core: parameter %s = %d above declared maximum %d", p.Name, v, p.Max)
		}
	}

	cg := csdf.NewGraph()
	low := &Lowering{Env: full}
	for _, n := range g.Nodes {
		low.ActorOf = append(low.ActorOf, cg.AddActor(n.Name, n.Exec...))
	}
	for _, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		prod, err := evalSeq(src.Ports[e.SrcPort].Rates, full)
		if err != nil {
			return nil, nil, fmt.Errorf("core: edge %q production: %v", e.Name, err)
		}
		cons, err := evalSeq(dst.Ports[e.DstPort].Rates, full)
		if err != nil {
			return nil, nil, fmt.Errorf("core: edge %q consumption: %v", e.Name, err)
		}
		ei := cg.ConnectNamed(e.Name, low.ActorOf[e.Src], prod, low.ActorOf[e.Dst], cons, e.Initial)
		low.EdgeOf = append(low.EdgeOf, ei)
		low.ControlEdges = append(low.ControlEdges, g.IsControlEdge(e))
	}
	if err := cg.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: instantiated graph invalid: %v", err)
	}
	return cg, low, nil
}

func evalSeq(rates []symb.Expr, env symb.Env) ([]int64, error) {
	out := make([]int64, len(rates))
	for i, r := range rates {
		v, err := r.EvalInt(env, 1)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("rate %s evaluates to negative %d", r, v)
		}
		out[i] = v
	}
	return out, nil
}
