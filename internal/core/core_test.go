package core

import (
	"strings"
	"testing"

	"repro/internal/symb"
)

// Fig2Graph builds the paper's Fig. 2 example: kernels A, B, D, E, F with
// parametric rate p, control actor C, control channel e5 (C -> F.ctl).
//
//	e1: A [p]  -> [1]   B
//	e2: B [1]  -> [2]   D
//	e3: B [1]  -> [2]   C
//	e4: B [1]  -> [1]   E
//	e5: C [2]  -> [1,1] F   (control)
//	e6: D [2]  -> [0,2] F
//	e7: E [1]  -> [1,1] F
func Fig2Graph(t *testing.T) *Graph {
	t.Helper()
	g, err := BuildFig2()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// BuildFig2 is the test fixture shared with other packages' tests.
func BuildFig2() (*Graph, error) {
	g := NewGraph("fig2")
	g.AddParam("p", 2, 1, 100)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	c := g.AddControlActor("C", 1)
	d := g.AddKernel("D", 1)
	e := g.AddKernel("E", 1)
	f := g.AddTransaction("F", 1)
	steps := []func() error{
		func() error { _, err := g.Connect(a, "[p]", b, "[1]", 0); return err },
		func() error { _, err := g.Connect(b, "[1]", d, "[2]", 0); return err },
		func() error { _, err := g.Connect(b, "[1]", c, "[2]", 0); return err },
		func() error { _, err := g.Connect(b, "[1]", e, "[1]", 0); return err },
		func() error { _, err := g.ConnectControl(c, "[2]", f, 0); return err },
		func() error { _, err := g.ConnectPriority(d, "[2]", f, "[0,2]", 0, 1); return err },
		func() error { _, err := g.ConnectPriority(e, "[1]", f, "[1,1]", 0, 2); return err },
		func() error { _, err := g.Connect(f, "[1]", g.AddKernel("SNK", 0), "[1]", 0); return err },
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func TestFig2Validates(t *testing.T) {
	g := Fig2Graph(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig2Instantiate(t *testing.T) {
	g := Fig2Graph(t)
	for _, p := range []int64{1, 2, 5} {
		cg, low, err := g.Instantiate(symb.Env{"p": p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		sol, err := cg.RepetitionVector()
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// The paper's symbolic vector is q = [2, 2p, p, p, 2p, 2p] (+ SNK =
		// 2p). The concrete vector is its minimal integer multiple: for even
		// p the symbolic entries share a factor the concrete solver removes,
		// so check proportionality plus minimality rather than equality.
		want := []int64{2, 2 * p, p, p, 2 * p, 2 * p, 2 * p}
		g0 := gcdAll(want)
		for j, w := range want {
			if sol.Q[j]*g0 != w*gcdAll(sol.Q) {
				t.Errorf("p=%d: q[%s] = %d not proportional to paper value %d (q=%v)",
					p, cg.Actors[j].Name, sol.Q[j], w, sol.Q)
			}
		}
		if gcdAll(sol.R) != 1 {
			t.Errorf("p=%d: concrete r=%v not minimal", p, sol.R)
		}
		if len(low.EdgeOf) != len(g.Edges) {
			t.Errorf("lowering has %d edges, want %d", len(low.EdgeOf), len(g.Edges))
		}
		// e5 must be flagged as control.
		if !low.ControlEdges[4] {
			t.Error("e5 should be a control edge")
		}
	}
}

func gcdAll(xs []int64) int64 {
	var g int64
	for _, x := range xs {
		for x != 0 {
			g, x = x, g%x
		}
	}
	if g < 0 {
		g = -g
	}
	return g
}

func TestInstantiateRejectsBadParams(t *testing.T) {
	g := Fig2Graph(t)
	if _, _, err := g.Instantiate(symb.Env{"p": 0}); err == nil {
		t.Error("p=0 must be rejected (parameters are >= 1)")
	}
	if _, _, err := g.Instantiate(symb.Env{"p": 101}); err == nil {
		t.Error("p above declared max must be rejected")
	}
}

func TestParseRates(t *testing.T) {
	cases := []struct {
		in  string
		n   int
		str string
	}{
		{"[1,0,1]", 3, "[1,0,1]"},
		{"p", 1, "[p]"},
		{"[p,p]", 2, "[p,p]"},
		{"beta*(N+L)", 1, ""},
		{"[2p]", 1, "[2*p]"},
	}
	for _, c := range cases {
		seq, err := ParseRates(c.in)
		if err != nil {
			t.Errorf("ParseRates(%q): %v", c.in, err)
			continue
		}
		if len(seq) != c.n {
			t.Errorf("ParseRates(%q) len = %d, want %d", c.in, len(seq), c.n)
		}
		if c.str != "" && FormatRates(seq) != c.str {
			t.Errorf("FormatRates(%q) = %q, want %q", c.in, FormatRates(seq), c.str)
		}
	}
	for _, bad := range []string{"", "[", "[]", "[1,]x", "1+"} {
		if _, err := ParseRates(bad); err == nil {
			t.Errorf("ParseRates(%q) should fail", bad)
		}
	}
}

func TestValidateRejectsControlFromKernel(t *testing.T) {
	g := NewGraph("bad")
	k := g.AddKernel("K")
	f := g.AddTransaction("F")
	// Hand-build a control edge from a kernel (illegal).
	sp, _ := g.AddPort(k, "o", Out, "[1]", 0)
	dp, _ := g.AddPort(f, "ctl", CtlIn, "[1]", 0)
	g.connectPorts(k, sp, f, dp, 0)
	// Complete F's shape so only the control rule can fail first... F needs
	// a data output for the transaction shape rule; add both sides.
	src := g.AddKernel("S")
	if _, err := g.Connect(src, "[1]", f, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	snk := g.AddKernel("Z")
	if _, err := g.Connect(f, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "control channel") {
		t.Errorf("want control-channel error, got %v", err)
	}
}

func TestValidateRejectsTwoControlPorts(t *testing.T) {
	g := NewGraph("bad2")
	c1 := g.AddControlActor("C1")
	c2 := g.AddControlActor("C2")
	k := g.AddTransaction("K")
	if _, err := g.ConnectControl(c1, "[1]", k, 0); err != nil {
		t.Fatal(err)
	}
	// Force a second control port.
	if _, err := g.AddPort(k, "ctl2", CtlIn, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	sp, _ := g.AddPort(c2, "c0", CtlOut, "[1]", 0)
	dp, _ := g.Nodes[k].PortIndex("ctl2")
	g.connectPorts(c2, sp, k, dp, 0)
	src := g.AddKernel("S")
	if _, err := g.Connect(src, "[1]", k, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	snk := g.AddKernel("Z")
	if _, err := g.Connect(k, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "control ports") {
		t.Errorf("want at-most-one-control-port error, got %v", err)
	}
}

func TestValidateRejectsControlRateOutOfRange(t *testing.T) {
	g := NewGraph("bad3")
	c := g.AddControlActor("C")
	k := g.AddTransaction("K")
	sp, _ := g.AddPort(c, "c0", CtlOut, "[1]", 0)
	dp, _ := g.AddPort(k, "ctl", CtlIn, "[2]", 0) // rate 2: illegal
	g.connectPorts(c, sp, k, dp, 0)
	src := g.AddKernel("S")
	if _, err := g.Connect(src, "[1]", k, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	snk := g.AddKernel("Z")
	if _, err := g.Connect(k, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "{0,1}") {
		t.Errorf("want {0,1} control-rate error, got %v", err)
	}
}

func TestValidateRejectsUndeclaredParam(t *testing.T) {
	g := NewGraph("bad4")
	a := g.AddKernel("A")
	b := g.AddKernel("B")
	if _, err := g.Connect(a, "[q]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("want undeclared-parameter error, got %v", err)
	}
}

func TestValidateRejectsUnconnectedPort(t *testing.T) {
	g := NewGraph("bad5")
	a := g.AddKernel("A")
	b := g.AddKernel("B")
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddPort(a, "dangling", Out, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("want unconnected-port error, got %v", err)
	}
}

func TestValidateRejectsDoublyConnectedPort(t *testing.T) {
	g := NewGraph("bad6")
	a := g.AddKernel("A")
	b := g.AddKernel("B")
	c := g.AddKernel("C")
	sp, _ := g.AddPort(a, "o", Out, "[1]", 0)
	d1, _ := g.AddPort(b, "i", In, "[1]", 0)
	d2, _ := g.AddPort(c, "i", In, "[1]", 0)
	g.connectPorts(a, sp, b, d1, 0)
	g.connectPorts(a, sp, c, d2, 0)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "connected by both") {
		t.Errorf("want doubly-connected error, got %v", err)
	}
}

func TestSelectDuplicateShapeRule(t *testing.T) {
	g := NewGraph("dup")
	s := g.AddSelectDuplicate("S")
	a := g.AddKernel("A")
	b := g.AddKernel("B")
	c := g.AddKernel("C")
	// Two inputs violate the 1-entry rule.
	if _, err := g.Connect(a, "[1]", s, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", s, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(s, "[1]", c, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "exactly one data input") {
		t.Errorf("want select-duplicate shape error, got %v", err)
	}
}

func TestDefaultEnv(t *testing.T) {
	g := NewGraph("env")
	g.AddParam("p", 7, 1, 10)
	g.AddParam("q", 0, 0, 0)
	env := g.DefaultEnv()
	if env["p"] != 7 || env["q"] != 1 {
		t.Errorf("DefaultEnv = %v", env)
	}
}

func TestVirtualizeSelectDuplicate(t *testing.T) {
	// Fig. 3: A -> B (select-dup) -> {D, E}; virtualization adds B_vc,
	// B_vt, B_vsink, keeping the graph consistent and bounded.
	g := NewGraph("fig3")
	a := g.AddKernel("A")
	b := g.AddSelectDuplicate("B")
	d := g.AddKernel("D")
	e := g.AddKernel("E")
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", d, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", e, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	vc, vt, err := g.VirtualizeSelectDuplicate(b, []NodeID{d, e})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes[vc].Kind != KindControl {
		t.Error("virtual control actor has wrong kind")
	}
	if g.Nodes[vt].Special != SpecialTransaction {
		t.Error("virtual transaction missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("virtualized graph invalid: %v", err)
	}
	cg, _, err := g.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		t.Fatalf("virtualized graph inconsistent: %v", err)
	}
	// Homogeneous rates: everything fires once per iteration.
	for j, q := range sol.Q {
		if q != 1 {
			t.Errorf("q[%s] = %d, want 1", cg.Actors[j].Name, q)
		}
	}
	ok, err := cg.ReturnsToInitial(sol, 0)
	if err != nil || !ok {
		t.Errorf("virtualized graph must return to initial state: %v %v", ok, err)
	}
}

func TestVirtualizeRejectsNonSelectDup(t *testing.T) {
	g := NewGraph("x")
	k := g.AddKernel("K")
	if _, _, err := g.VirtualizeSelectDuplicate(k, []NodeID{k, k}); err == nil {
		t.Error("virtualizing a plain kernel must fail")
	}
}

func TestGraphString(t *testing.T) {
	g := Fig2Graph(t)
	s := g.String()
	for _, want := range []string{"fig2", "A.o0 [p]", "(control)", "F.ctl"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModeWaitAll:         "wait-all",
		ModeSelectOne:       "select-one",
		ModeSelectMany:      "select-many",
		ModeHighestPriority: "highest-priority",
	}
	for m, w := range names {
		if m.String() != w {
			t.Errorf("Mode %d = %q, want %q", int(m), m.String(), w)
		}
	}
}
