package core

import (
	"fmt"

	"repro/internal/csdf"
	"repro/internal/symb"
)

// Skeleton is the immutable half of the compile-once form of a parametric
// TPDF graph: the validated source graph, the fixed parameter index, the
// declared defaults and every rate expression lowered to a compiled
// coefficient/exponent table. A Skeleton holds no valuation and no concrete
// rate tables — after CompileSkeleton it is never written again, so any
// number of goroutines may share one Skeleton and stamp Programs from it
// concurrently (NewProgram). This is what lets a server host thousands of
// sessions of the same graph for the price of a single compilation: the
// expensive work (validation, symbolic lowering) lives here, the cheap
// per-engine mutable state (rate tables, repetition vector, solver scratch)
// lives in the Program each session stamps for itself.
type Skeleton struct {
	src      *Graph
	pi       *symb.ParamIndex
	defaults []int64 // per index slot

	prodC [][]*symb.CompiledExpr // per edge, per phase
	consC [][]*symb.CompiledExpr

	// actorOf/edgeOf/ctrl are the structural lowering maps, identical for
	// every stamped Program and shared read-only by their Lowerings.
	actorOf []int
	edgeOf  []int
	ctrl    []bool
}

// Program is the per-holder mutable half: the concrete CSDF rate tables,
// the current valuation, the repetition vector and the solver scratch.
// Rebind re-evaluates the whole graph at a new valuation by overwriting
// the existing rate tables and repetition vector in place — no maps, no
// fresh csdf.Graph, no allocations on the warm path.
//
// This is the engine behind the parameter sweeps: Instantiate answers "what
// is this graph at one valuation", Compile+Rebind answers the same question
// thousands of times for the price of one instantiation plus cheap
// re-evaluations. A Program is not safe for concurrent mutation: Rebind
// must never run while anything (a Simulator, another goroutine) is reading
// the program's concrete graph or solution. Sweep drivers give each worker
// its own Program; a server gives each session its own Program stamped from
// the shared Skeleton (single-writer per session, compile-once per graph).
type Program struct {
	sk  *Skeleton
	cg  *csdf.Graph
	low *Lowering

	vals []int64 // current valuation, per index slot

	// Repetition-vector solver scratch, preallocated at stamp time and
	// reused by every Rebind (its structural half — phase counts,
	// adjacency — does not change under rebinding).
	scratch *csdf.SolverScratch
	sol     csdf.Solution

	bound bool
}

// CompileSkeleton validates the graph and lowers every rate expression into
// an immutable, freely shareable compile product. It performs all the work
// of Compile except the per-holder state: stamp that with NewProgram, as
// many times as there are concurrent holders.
func CompileSkeleton(g *Graph) (*Skeleton, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// The csdf-level validation Instantiate runs on its result also rejects
	// negative execution times — the one rule core.Validate leaves to the
	// lowering. Check it here so Compile-based paths refuse exactly the
	// graphs Instantiate-based paths refuse.
	for _, n := range g.Nodes {
		for _, t := range n.Exec {
			if t < 0 {
				return nil, fmt.Errorf("core: instantiated graph invalid: csdf: actor %q has negative execution time", n.Name)
			}
		}
	}

	// Parameter index: the declared parameters in declaration order.
	// Validate has already rejected any rate referencing an undeclared
	// name, so the declared set covers every expression we compile.
	names := make([]string, 0, len(g.Params))
	for _, p := range g.Params {
		names = append(names, p.Name)
	}
	pi := symb.NewParamIndex(names)

	sk := &Skeleton{
		src:      g,
		pi:       pi,
		defaults: make([]int64, pi.Len()),
	}
	for i := range sk.defaults {
		sk.defaults[i] = 1
	}
	for _, par := range g.Params {
		slot, _ := pi.Index(par.Name)
		d := par.Default
		if d == 0 {
			d = 1
		}
		sk.defaults[slot] = d
	}

	sk.prodC = make([][]*symb.CompiledExpr, len(g.Edges))
	sk.consC = make([][]*symb.CompiledExpr, len(g.Edges))
	sk.actorOf = make([]int, len(g.Nodes))
	sk.edgeOf = make([]int, len(g.Edges))
	sk.ctrl = make([]bool, len(g.Edges))
	for i := range g.Nodes {
		// The lowering is index-preserving (AddActor below returns indices
		// in insertion order); keep the map explicit so no caller assumes
		// it.
		sk.actorOf[i] = i
	}
	for ei, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		pc, err := compileSeq(src.Ports[e.SrcPort].Rates, pi)
		if err != nil {
			return nil, fmt.Errorf("core: edge %q production: %v", e.Name, err)
		}
		cc, err := compileSeq(dst.Ports[e.DstPort].Rates, pi)
		if err != nil {
			return nil, fmt.Errorf("core: edge %q consumption: %v", e.Name, err)
		}
		sk.prodC[ei], sk.consC[ei] = pc, cc
		sk.edgeOf[ei] = ei
		sk.ctrl[ei] = g.IsControlEdge(e)
	}
	return sk, nil
}

// Source returns the TPDF graph the skeleton was compiled from.
func (sk *Skeleton) Source() *Graph { return sk.src }

// Params returns the number of indexed parameter slots.
func (sk *Skeleton) Params() int { return sk.pi.Len() }

// NewProgram stamps a fresh per-holder Program from the shared skeleton:
// a concrete CSDF graph with rate slices of the right shape (values are
// placeholders until the first Rebind), preallocated solver scratch and
// solution. The stamp is pure allocation — no validation, no expression
// compilation — so it is cheap enough to run per session/connection, and
// it never writes the skeleton, so concurrent stamps need no locking.
func (sk *Skeleton) NewProgram() *Program {
	g := sk.src
	cg := csdf.NewGraph()
	low := &Lowering{
		Env:          symb.Env{},
		ActorOf:      sk.actorOf,
		EdgeOf:       sk.edgeOf,
		ControlEdges: sk.ctrl,
	}
	for _, n := range g.Nodes {
		cg.AddActor(n.Name, n.Exec...)
	}
	for ei, e := range g.Edges {
		cg.ConnectNamed(e.Name, sk.actorOf[e.Src],
			make([]int64, len(sk.prodC[ei])), sk.actorOf[e.Dst],
			make([]int64, len(sk.consC[ei])), e.Initial)
	}

	n := len(cg.Actors)
	return &Program{
		sk:      sk,
		cg:      cg,
		low:     low,
		vals:    make([]int64, sk.pi.Len()),
		scratch: cg.NewSolverScratch(),
		sol:     csdf.Solution{R: make([]int64, n), Q: make([]int64, n)},
	}
}

// Compile validates the graph, builds the reusable concrete skeleton and
// lowers every rate expression. The returned program is unbound: call
// Rebind before reading the concrete graph or solution. Callers that will
// hold many Programs of the same graph (a session fleet) should
// CompileSkeleton once and stamp with NewProgram instead.
func Compile(g *Graph) (*Program, error) {
	sk, err := CompileSkeleton(g)
	if err != nil {
		return nil, err
	}
	return sk.NewProgram(), nil
}

func compileSeq(rates []symb.Expr, pi *symb.ParamIndex) ([]*symb.CompiledExpr, error) {
	out := make([]*symb.CompiledExpr, len(rates))
	for i, r := range rates {
		c, err := r.Compile(pi)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Rebind re-evaluates the program at the valuation (parameters missing from
// env keep their declared defaults): rate tables are overwritten in place —
// the backing arrays never move, so simulators aliasing them observe the
// new rates — and the repetition vector is re-solved into the program's
// reusable Solution. After the first successful Rebind the warm path
// performs zero heap allocations.
//
// A failed Rebind leaves the program unbound (the rate tables may hold a
// mix of the old and the rejected valuation); rebind again with a valid
// valuation before reading Concrete or Solution.
func (p *Program) Rebind(env symb.Env) error {
	p.bound = false
	copy(p.vals, p.sk.defaults)
	for name, v := range env {
		if slot, ok := p.sk.pi.Index(name); ok {
			p.vals[slot] = v
		}
	}
	// Lowering.Env mirrors the indexed parameters only (defaults overlaid
	// with env); env keys no rate references are not recorded, so rebinding
	// can never leave stale extras behind.
	for i, name := range p.sk.pi.Names() {
		p.low.Env[name] = p.vals[i]
	}
	for _, par := range p.sk.src.Params {
		slot, _ := p.sk.pi.Index(par.Name)
		v := p.vals[slot]
		if v < 1 {
			return fmt.Errorf("core: parameter %s = %d; parameters must be >= 1", par.Name, v)
		}
		if par.Min > 0 && v < par.Min {
			return fmt.Errorf("core: parameter %s = %d below declared minimum %d", par.Name, v, par.Min)
		}
		if par.Max > 0 && v > par.Max {
			return fmt.Errorf("core: parameter %s = %d above declared maximum %d", par.Name, v, par.Max)
		}
	}

	for ei := range p.cg.Edges {
		ce := &p.cg.Edges[ei]
		name := p.sk.src.Edges[ei].Name
		if err := p.rebindSeq(p.sk.prodC[ei], ce.Prod, name, "production"); err != nil {
			return err
		}
		if err := p.rebindSeq(p.sk.consC[ei], ce.Cons, name, "consumption"); err != nil {
			return err
		}
	}
	if err := p.cg.SolveInto(p.scratch, &p.sol); err != nil {
		return err
	}
	p.bound = true
	return nil
}

// rebindSeq evaluates one compiled rate sequence into its existing slice,
// enforcing the same validity rules Instantiate and csdf.Validate apply:
// no negative rates, at least one positive rate per sequence.
func (p *Program) rebindSeq(compiled []*symb.CompiledExpr, dst []int64, edge, kind string) error {
	pos := false
	for k, c := range compiled {
		if err := c.EvalIntInto(&dst[k], p.vals); err != nil {
			return fmt.Errorf("core: edge %q %s: %v", edge, kind, err)
		}
		if dst[k] < 0 {
			return fmt.Errorf("core: edge %q %s: rate evaluates to negative %d", edge, kind, dst[k])
		}
		if dst[k] > 0 {
			pos = true
		}
	}
	if !pos {
		return fmt.Errorf("core: edge %q has all-zero %s sequence", edge, kind)
	}
	return nil
}

// Bound reports whether the program has a valuation (a successful Rebind).
func (p *Program) Bound() bool { return p.bound }

// Source returns the TPDF graph the program was compiled from.
func (p *Program) Source() *Graph { return p.sk.src }

// Skeleton returns the immutable compile product the program was stamped
// from. Programs stamped from the same skeleton share it by pointer, which
// is what program caches key on to prove compile-once sharing.
func (p *Program) Skeleton() *Skeleton { return p.sk }

// Concrete returns the program's concrete CSDF graph. Its rate slices are
// overwritten by Rebind; callers that need a snapshot must copy.
func (p *Program) Concrete() *csdf.Graph { return p.cg }

// Lowering returns the TPDF→CSDF correspondence. Its Env reflects the
// current valuation.
func (p *Program) Lowering() *Lowering { return p.low }

// Solution returns the repetition vector at the current valuation. The
// slices are reused by Rebind; callers that keep them across rebinds must
// copy.
func (p *Program) Solution() *csdf.Solution { return &p.sol }
