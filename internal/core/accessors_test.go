package core

import (
	"strings"
	"testing"
)

func TestPortDirString(t *testing.T) {
	wants := map[PortDir]string{In: "in", Out: "out", CtlIn: "ctl-in", CtlOut: "ctl-out"}
	for d, w := range wants {
		if d.String() != w {
			t.Errorf("PortDir(%d) = %q, want %q", int(d), d.String(), w)
		}
	}
	if !strings.Contains(PortDir(99).String(), "99") {
		t.Error("unknown direction should include the value")
	}
	if !strings.Contains(Mode(99).String(), "99") {
		t.Error("unknown mode should include the value")
	}
}

func TestNodeByNameAndParamNames(t *testing.T) {
	g := NewGraph("acc")
	g.AddParam("x", 1, 1, 4)
	g.AddParam("y", 2, 1, 4)
	a := g.AddKernel("alpha")
	if id, ok := g.NodeByName("alpha"); !ok || id != a {
		t.Error("NodeByName lookup failed")
	}
	if _, ok := g.NodeByName("nope"); ok {
		t.Error("missing node must not resolve")
	}
	names := g.ParamNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("ParamNames = %v", names)
	}
}

func TestAddClockAndValidate(t *testing.T) {
	g := NewGraph("clk")
	clk := g.AddClock("tick", 250)
	tr := g.AddTransaction("tr")
	src := g.AddKernel("src")
	snk := g.AddKernel("snk")
	if _, err := g.Connect(src, "[1]", tr, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(tr, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectControl(clk, "[1]", tr, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Nodes[clk].ClockPeriod != 250 || g.Nodes[clk].Kind != KindControl {
		t.Error("clock attributes wrong")
	}
}

func TestRateAtCycles(t *testing.T) {
	g := NewGraph("rates")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[1,0,2]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	p := &g.Nodes[a].Ports[0]
	wants := []int64{1, 0, 2, 1, 0}
	for n, w := range wants {
		v, _ := p.RateAt(int64(n)).Int()
		if v != w {
			t.Errorf("RateAt(%d) = %d, want %d", n, v, w)
		}
	}
}

func TestConnectPortsBounds(t *testing.T) {
	g := NewGraph("cp")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	sp, _ := g.AddPort(a, "o", Out, "[1]", 0)
	dp, _ := g.AddPort(b, "i", In, "[1]", 0)
	if _, err := g.ConnectPorts(a, sp, b, dp, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectPorts(a, 99, b, dp, 0); err == nil {
		t.Error("out-of-range port must fail")
	}
	if _, err := g.ConnectPorts(NodeID(99), 0, b, dp, 0); err == nil {
		t.Error("out-of-range node must fail")
	}
}

func TestConnectBadRates(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[", b, "[1]", 0); err == nil {
		t.Error("bad production rates must fail")
	}
	if _, err := g.Connect(a, "[1]", b, "", 0); err == nil {
		t.Error("bad consumption rates must fail")
	}
}

func TestControlRateZeroOneSequencesAccepted(t *testing.T) {
	// [0,1] and [1,0] control sequences are legal (rate in {0,1}).
	g := NewGraph("zeroone")
	c := g.AddControlActor("c")
	k := g.AddTransaction("k")
	src := g.AddKernel("src")
	snk := g.AddKernel("snk")
	sp, _ := g.AddPort(c, "c0", CtlOut, "[1]", 0)
	dp, _ := g.AddPort(k, "ctl", CtlIn, "[1,0]", 0)
	if _, err := g.ConnectPorts(c, sp, k, dp, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "[2]", k, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(k, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("[1,0] control sequence rejected: %v", err)
	}
	// A parametric control rate bounded to {0,1} by its range is accepted.
	g2 := NewGraph("param01")
	g2.AddParam("m", 1, 1, 1)
	c2 := g2.AddControlActor("c")
	k2 := g2.AddTransaction("k")
	src2 := g2.AddKernel("src")
	snk2 := g2.AddKernel("snk")
	sp2, _ := g2.AddPort(c2, "c0", CtlOut, "[1]", 0)
	dp2, _ := g2.AddPort(k2, "ctl", CtlIn, "[m]", 0)
	if _, err := g2.ConnectPorts(c2, sp2, k2, dp2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Connect(src2, "[1]", k2, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Connect(k2, "[1]", snk2, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("parametric {0,1} control rate rejected: %v", err)
	}
}

func TestGraphStringNoParams(t *testing.T) {
	g := NewGraph("plain")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[1]", b, "[1]", 2); err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if strings.Contains(s, "params") {
		t.Error("parameterless graph should not list params")
	}
	if !strings.Contains(s, "init=2") {
		t.Errorf("initial tokens missing from String:\n%s", s)
	}
}
