package core

import (
	"fmt"

	"repro/internal/rat"
	"repro/internal/symb"
)

// Validate checks the structural well-formedness rules of Definition 2:
//
//   - node names are unique and non-empty;
//   - every port is connected to exactly one edge (dataflow graphs have
//     point-to-point channels);
//   - kernels have at most one control input port; control actors have none
//     of their own modes and no control input is required (they may take
//     control inputs with rate in {0,1});
//   - control channels start at control actors only (E_c ⊆ O_G × C);
//   - control-port rates are in {0,1} for every firing (R_k(m,c,n) ∈ {0,1});
//   - every parameter occurring in a rate is declared, and all rates are
//     syntactically non-negative for legal parameter values (checked at the
//     default valuation and at the bounds);
//   - kernels with modes have a control port; special kernels have the
//     required port shape (Select-duplicate: 1 data input; Transaction: 1
//     data output).
func (g *Graph) Validate() error {
	names := map[string]bool{}
	declared := map[string]bool{}
	for _, p := range g.Params {
		if p.Name == "" {
			return fmt.Errorf("core: empty parameter name")
		}
		if declared[p.Name] {
			return fmt.Errorf("core: duplicate parameter %q", p.Name)
		}
		declared[p.Name] = true
	}

	for id, n := range g.Nodes {
		if n.Name == "" {
			return fmt.Errorf("core: node %d has empty name", id)
		}
		if names[n.Name] {
			return fmt.Errorf("core: duplicate node name %q", n.Name)
		}
		names[n.Name] = true

		ctlIns := 0
		for pi := range n.Ports {
			p := &n.Ports[pi]
			if len(p.Rates) == 0 {
				return fmt.Errorf("core: port %s.%s has no rates", n.Name, p.Name)
			}
			for _, r := range p.Rates {
				for _, v := range r.Vars() {
					if !declared[v] {
						return fmt.Errorf("core: port %s.%s uses undeclared parameter %q", n.Name, p.Name, v)
					}
				}
			}
			switch p.Dir {
			case CtlIn:
				ctlIns++
				if n.Kind != KindKernel {
					return fmt.Errorf("core: control actor %q cannot have a control input port", n.Name)
				}
				if err := checkZeroOne(p.Rates, n.Name, p.Name, g); err != nil {
					return err
				}
			case CtlOut:
				if n.Kind != KindControl {
					return fmt.Errorf("core: kernel %q cannot have a control output port %q", n.Name, p.Name)
				}
			}
		}
		if ctlIns > 1 {
			return fmt.Errorf("core: kernel %q has %d control ports; at most one is allowed", n.Name, ctlIns)
		}
		// Kernels without control ports always operate dataflow-style
		// (§II-B); declared modes are then simply unreachable, so no
		// mode/control-port cross-check is required.
		switch n.Special {
		case SpecialSelectDup:
			if len(n.DataIns()) != 1 {
				return fmt.Errorf("core: select-duplicate %q must have exactly one data input", n.Name)
			}
		case SpecialTransaction:
			if len(n.DataOuts()) != 1 {
				return fmt.Errorf("core: transaction %q must have exactly one data output", n.Name)
			}
		}
		if n.Kind == KindControl && n.ClockPeriod < 0 {
			return fmt.Errorf("core: clock %q has negative period", n.Name)
		}
	}

	// Edge and port-connectivity checks.
	used := map[[2]int]string{} // (node, port) -> edge name
	for _, e := range g.Edges {
		if int(e.Src) >= len(g.Nodes) || int(e.Dst) >= len(g.Nodes) || e.Src < 0 || e.Dst < 0 {
			return fmt.Errorf("core: edge %q endpoint out of range", e.Name)
		}
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		if e.SrcPort < 0 || e.SrcPort >= len(src.Ports) || e.DstPort < 0 || e.DstPort >= len(dst.Ports) {
			return fmt.Errorf("core: edge %q port out of range", e.Name)
		}
		sp, dp := &src.Ports[e.SrcPort], &dst.Ports[e.DstPort]
		if sp.Dir != Out && sp.Dir != CtlOut {
			return fmt.Errorf("core: edge %q starts at non-output port %s.%s", e.Name, src.Name, sp.Name)
		}
		if dp.Dir != In && dp.Dir != CtlIn {
			return fmt.Errorf("core: edge %q ends at non-input port %s.%s", e.Name, dst.Name, dp.Name)
		}
		if dp.Dir == CtlIn && src.Kind != KindControl {
			return fmt.Errorf("core: control channel %q must start at a control actor, not kernel %q", e.Name, src.Name)
		}
		if e.Initial < 0 {
			return fmt.Errorf("core: edge %q has negative initial tokens", e.Name)
		}
		for _, end := range [][2]int{{int(e.Src), e.SrcPort}, {int(e.Dst), e.DstPort}} {
			if prev, dup := used[end]; dup {
				return fmt.Errorf("core: port %s.%s connected by both %q and %q",
					g.Nodes[end[0]].Name, g.Nodes[end[0]].Ports[end[1]].Name, prev, e.Name)
			}
			used[end] = e.Name
		}
	}
	for id, n := range g.Nodes {
		for pi := range n.Ports {
			if _, ok := used[[2]int{id, pi}]; !ok {
				return fmt.Errorf("core: port %s.%s is not connected", n.Name, n.Ports[pi].Name)
			}
		}
	}

	// Rates must be non-negative at representative valuations.
	for _, env := range g.representativeEnvs() {
		for _, n := range g.Nodes {
			for pi := range n.Ports {
				for _, r := range n.Ports[pi].Rates {
					v, err := r.Eval(env, 1)
					if err != nil {
						return fmt.Errorf("core: rate %s on %s.%s: %v", r, n.Name, n.Ports[pi].Name, err)
					}
					if v.Sign() < 0 {
						return fmt.Errorf("core: rate %s on %s.%s is negative at %v", r, n.Name, n.Ports[pi].Name, env)
					}
				}
			}
		}
	}
	return nil
}

// representativeEnvs returns parameter valuations probing the corners of the
// declared ranges (default, all-min, all-max).
func (g *Graph) representativeEnvs() []symb.Env {
	def := g.DefaultEnv()
	if len(g.Params) == 0 {
		return []symb.Env{def}
	}
	lo, hi := symb.Env{}, symb.Env{}
	for _, p := range g.Params {
		mn, mx := p.Min, p.Max
		if mn <= 0 {
			mn = 1
		}
		if mx <= 0 {
			mx = mn + 1
		}
		lo[p.Name] = mn
		hi[p.Name] = mx
	}
	return []symb.Env{def, lo, hi}
}

// checkZeroOne verifies that every rate in the sequence is the constant 0 or
// 1 or provably in {0,1} at representative valuations.
func checkZeroOne(seq []symb.Expr, node, port string, g *Graph) error {
	for _, r := range seq {
		if c, ok := r.Const(); ok {
			if !c.IsZero() && !c.Equal(rat.One) {
				return fmt.Errorf("core: control port %s.%s rate %s not in {0,1}", node, port, r)
			}
			continue
		}
		for _, env := range g.representativeEnvs() {
			v, err := r.Eval(env, 1)
			if err != nil {
				return fmt.Errorf("core: control port %s.%s rate %s: %v", node, port, r, err)
			}
			if !v.IsZero() && !v.Equal(rat.One) {
				return fmt.Errorf("core: control port %s.%s rate %s evaluates to %s ∉ {0,1}", node, port, r, v)
			}
		}
	}
	return nil
}
