// Package core implements the Transaction Parameterized Dataflow (TPDF)
// model of computation — the primary contribution of the paper (§II-B).
//
// TPDF extends CSDF with:
//
//   - integer parameters: port rates are symbolic expressions over declared
//     parameters (p, beta*M*N, beta*(N+L), ...);
//   - control actors, control channels and control ports: a control actor
//     sends control tokens that select the mode in which a kernel fires,
//     enabling dynamic topology changes within an iteration;
//   - special data-distribution kernels: Select-duplicate (1 input, n
//     outputs, any enabled combination receives a copy) and Transaction
//     (n inputs, 1 output, atomically selects tokens from its inputs), and
//     Clock control actors (watchdog timers emitting control tokens on
//     timeout), which together express speculation, redundancy with vote,
//     highest-priority-at-deadline and active-data-path selection.
//
// A Graph is purely structural; the static analyses live in
// internal/analysis and the executable semantics in internal/sim.
// Instantiate lowers a TPDF graph to a concrete internal/csdf graph by
// evaluating every rate under a parameter valuation, keeping every edge
// present ("ignoring all possible configurations", §III-A), which is the
// form consumed by scheduling and baseline comparisons.
package core

import (
	"fmt"
	"strings"

	"repro/internal/symb"
)

// Mode is a kernel firing mode selected by a control token (Definition 2).
type Mode int

const (
	// ModeWaitAll waits until all data inputs are available (CSDF-like).
	ModeWaitAll Mode = iota
	// ModeSelectOne selects exactly one data input (or output); tokens on
	// unselected ports are rejected without breaking dependences.
	ModeSelectOne
	// ModeSelectMany selects a subset of the data inputs (or outputs).
	ModeSelectMany
	// ModeHighestPriority selects the available data input with the highest
	// port priority at the moment the control token arrives (the
	// Transaction-at-deadline behaviour of §IV-A).
	ModeHighestPriority
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeWaitAll:
		return "wait-all"
	case ModeSelectOne:
		return "select-one"
	case ModeSelectMany:
		return "select-many"
	case ModeHighestPriority:
		return "highest-priority"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PortDir distinguishes data inputs, data outputs and control ports.
type PortDir int

const (
	// In is a data input port.
	In PortDir = iota
	// Out is a data output port.
	Out
	// CtlIn is the (unique) control input port of a kernel.
	CtlIn
	// CtlOut is a control output port of a control actor.
	CtlOut
)

// String returns the direction name.
func (d PortDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case CtlIn:
		return "ctl-in"
	case CtlOut:
		return "ctl-out"
	default:
		return fmt.Sprintf("PortDir(%d)", int(d))
	}
}

// Port is a typed connection point on a node. Rates is the cyclo-static
// sequence of symbolic rates (length >= 1); Priority is the α function of
// Definition 2 (larger = higher priority).
type Port struct {
	Name     string
	Dir      PortDir
	Rates    []symb.Expr
	Priority int
}

// RateAt returns the rate expression of the n-th firing.
func (p *Port) RateAt(n int64) symb.Expr {
	return p.Rates[int(n%int64(len(p.Rates)))]
}

// NodeKind separates kernels from control actors (K ∩ G = ∅).
type NodeKind int

const (
	// KindKernel is a computation kernel (element of K).
	KindKernel NodeKind = iota
	// KindControl is a control actor (element of G).
	KindControl
)

// SpecialKind tags the data-distribution kernels defined by TPDF.
type SpecialKind int

const (
	// SpecialNone is an ordinary kernel.
	SpecialNone SpecialKind = iota
	// SpecialSelectDup is a Select-duplicate kernel: one entry, n outputs;
	// each input token is copied to every currently-enabled output.
	SpecialSelectDup
	// SpecialTransaction is a Transaction kernel: n inputs, one output;
	// atomically selects a predefined number of tokens from one or several
	// inputs.
	SpecialTransaction
)

// NodeID identifies a node within its graph.
type NodeID int

// EdgeID identifies an edge within its graph.
type EdgeID int

// Node is a kernel or control actor.
type Node struct {
	Name  string
	Kind  NodeKind
	Ports []Port
	// Modes lists the modes a control token may select on this kernel.
	// Empty means the kernel always operates dataflow-style (wait-all).
	Modes []Mode
	// Exec is the per-firing execution time sequence (cyclic; see
	// csdf.Actor.Exec for conventions).
	Exec []int64
	// ClockPeriod > 0 makes a control actor a clock: a watchdog timer that
	// emits its control tokens each time the period elapses.
	ClockPeriod int64
	Special     SpecialKind
}

// PortIndex returns the index of the named port.
func (n *Node) PortIndex(name string) (int, bool) {
	for i := range n.Ports {
		if n.Ports[i].Name == name {
			return i, true
		}
	}
	return 0, false
}

// ControlPort returns the index of the node's control input port, if any.
func (n *Node) ControlPort() (int, bool) {
	for i := range n.Ports {
		if n.Ports[i].Dir == CtlIn {
			return i, true
		}
	}
	return 0, false
}

// DataIns returns the indices of the data input ports.
func (n *Node) DataIns() []int {
	var out []int
	for i := range n.Ports {
		if n.Ports[i].Dir == In {
			out = append(out, i)
		}
	}
	return out
}

// DataOuts returns the indices of the data output ports.
func (n *Node) DataOuts() []int {
	var out []int
	for i := range n.Ports {
		if n.Ports[i].Dir == Out {
			out = append(out, i)
		}
	}
	return out
}

// Edge is a FIFO channel between two ports. An edge is a control channel
// iff its destination port is a control port; Validate enforces that control
// channels originate at control actors (E_c ⊆ O_G × C).
type Edge struct {
	Name    string
	Src     NodeID
	SrcPort int
	Dst     NodeID
	DstPort int
	Initial int64
}

// Param is a declared integer parameter with its legal range and the default
// used when an evaluation environment omits it.
type Param struct {
	Name    string
	Default int64
	Min     int64
	Max     int64
}

// Graph is a TPDF graph (Definition 2): kernels K, control actors G, edges
// E, parameters P, rate functions (on the ports), priorities α and initial
// channel status φ*.
type Graph struct {
	Name   string
	Nodes  []*Node
	Edges  []*Edge
	Params []Param

	byName map[string]NodeID
}

// NewGraph returns an empty TPDF graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byName: map[string]NodeID{}}
}

// AddParam declares an integer parameter. Min/Max of 0 mean "unbounded
// below/above 1"; parameters are always at least 1.
func (g *Graph) AddParam(name string, def, min, max int64) {
	g.Params = append(g.Params, Param{Name: name, Default: def, Min: min, Max: max})
}

// ParamNames returns the declared parameter names in order.
func (g *Graph) ParamNames() []string {
	out := make([]string, len(g.Params))
	for i, p := range g.Params {
		out[i] = p.Name
	}
	return out
}

// DefaultEnv returns an environment with every parameter at its default.
func (g *Graph) DefaultEnv() symb.Env {
	env := symb.Env{}
	for _, p := range g.Params {
		d := p.Default
		if d == 0 {
			d = 1
		}
		env[p.Name] = d
	}
	return env
}

func (g *Graph) addNode(n *Node) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, n)
	if _, dup := g.byName[n.Name]; !dup {
		g.byName[n.Name] = id
	}
	return id
}

// AddKernel adds a computation kernel with the given cyclic execution-time
// sequence and returns its id.
func (g *Graph) AddKernel(name string, exec ...int64) NodeID {
	return g.addNode(&Node{Name: name, Kind: KindKernel, Exec: exec})
}

// AddControlActor adds a plain control actor.
func (g *Graph) AddControlActor(name string, exec ...int64) NodeID {
	return g.addNode(&Node{Name: name, Kind: KindControl, Exec: exec})
}

// AddClock adds a clock control actor: a watchdog timer with the given
// period (in the simulator's time unit) that emits control tokens each time
// it times out (§II-B c).
func (g *Graph) AddClock(name string, period int64) NodeID {
	return g.addNode(&Node{Name: name, Kind: KindControl, ClockPeriod: period})
}

// AddSelectDuplicate adds a Select-duplicate kernel (§II-B a).
func (g *Graph) AddSelectDuplicate(name string, exec ...int64) NodeID {
	id := g.addNode(&Node{Name: name, Kind: KindKernel, Special: SpecialSelectDup, Exec: exec})
	g.Nodes[id].Modes = []Mode{ModeSelectOne, ModeSelectMany, ModeWaitAll}
	return id
}

// AddTransaction adds a Transaction kernel (§II-B b).
func (g *Graph) AddTransaction(name string, exec ...int64) NodeID {
	id := g.addNode(&Node{Name: name, Kind: KindKernel, Special: SpecialTransaction, Exec: exec})
	g.Nodes[id].Modes = []Mode{ModeSelectOne, ModeSelectMany, ModeHighestPriority, ModeWaitAll}
	return id
}

// SetModes replaces the mode set of a kernel.
func (g *Graph) SetModes(id NodeID, modes ...Mode) {
	g.Nodes[id].Modes = modes
}

// NodeByName returns the id of the named node.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// AddPort adds a port to a node; rates is a rate-sequence expression (see
// ParseRates). It returns the port index.
func (g *Graph) AddPort(id NodeID, name string, dir PortDir, rates string, priority int) (int, error) {
	seq, err := ParseRates(rates)
	if err != nil {
		return 0, fmt.Errorf("core: port %s.%s: %v", g.Nodes[id].Name, name, err)
	}
	n := g.Nodes[id]
	if _, dup := n.PortIndex(name); dup {
		return 0, fmt.Errorf("core: duplicate port %s.%s", n.Name, name)
	}
	n.Ports = append(n.Ports, Port{Name: name, Dir: dir, Rates: seq, Priority: priority})
	return len(n.Ports) - 1, nil
}

// Connect adds a data edge src -> dst, creating one output port on src with
// rate sequence prodRates and one input port on dst with rate sequence
// consRates. Ports are auto-named "o<k>"/"i<k>". It returns the edge id.
func (g *Graph) Connect(src NodeID, prodRates string, dst NodeID, consRates string, initial int64) (EdgeID, error) {
	sp, err := g.AddPort(src, fmt.Sprintf("o%d", len(g.Nodes[src].DataOuts())), Out, prodRates, 0)
	if err != nil {
		return 0, err
	}
	dp, err := g.AddPort(dst, fmt.Sprintf("i%d", len(g.Nodes[dst].DataIns())), In, consRates, 0)
	if err != nil {
		return 0, err
	}
	return g.connectPorts(src, sp, dst, dp, initial), nil
}

// ConnectPriority is Connect with an explicit priority on the consumer port
// (the α function used by highest-priority modes).
func (g *Graph) ConnectPriority(src NodeID, prodRates string, dst NodeID, consRates string, initial int64, consPriority int) (EdgeID, error) {
	id, err := g.Connect(src, prodRates, dst, consRates, initial)
	if err != nil {
		return 0, err
	}
	e := g.Edges[id]
	g.Nodes[e.Dst].Ports[e.DstPort].Priority = consPriority
	return id, nil
}

// ConnectControl adds a control channel from a control actor to a kernel's
// control port (created on demand with consumption rate 1 per firing).
// prodRates is the control actor's output rate sequence.
func (g *Graph) ConnectControl(ctrl NodeID, prodRates string, dst NodeID, initial int64) (EdgeID, error) {
	sp, err := g.AddPort(ctrl, fmt.Sprintf("c%d", len(g.Nodes[ctrl].Ports)), CtlOut, prodRates, 0)
	if err != nil {
		return 0, err
	}
	n := g.Nodes[dst]
	dp, ok := n.ControlPort()
	if !ok {
		dp, err = g.AddPort(dst, "ctl", CtlIn, "[1]", 0)
		if err != nil {
			return 0, err
		}
	}
	return g.connectPorts(ctrl, sp, dst, dp, initial), nil
}

// ConnectPorts links two previously created ports directly (see AddPort);
// the general form behind the Connect convenience wrappers, needed when a
// port requires an explicit rate sequence, direction or priority.
func (g *Graph) ConnectPorts(src NodeID, srcPort int, dst NodeID, dstPort int, initial int64) (EdgeID, error) {
	if int(src) >= len(g.Nodes) || int(dst) >= len(g.Nodes) || src < 0 || dst < 0 {
		return 0, fmt.Errorf("core: ConnectPorts: node out of range")
	}
	if srcPort < 0 || srcPort >= len(g.Nodes[src].Ports) || dstPort < 0 || dstPort >= len(g.Nodes[dst].Ports) {
		return 0, fmt.Errorf("core: ConnectPorts: port out of range")
	}
	return g.connectPorts(src, srcPort, dst, dstPort, initial), nil
}

func (g *Graph) connectPorts(src NodeID, sp int, dst NodeID, dp int, initial int64) EdgeID {
	id := EdgeID(len(g.Edges))
	g.Edges = append(g.Edges, &Edge{
		Name: fmt.Sprintf("e%d", len(g.Edges)+1),
		Src:  src, SrcPort: sp,
		Dst: dst, DstPort: dp,
		Initial: initial,
	})
	return id
}

// IsControlEdge reports whether e terminates at a control port.
func (g *Graph) IsControlEdge(e *Edge) bool {
	return g.Nodes[e.Dst].Ports[e.DstPort].Dir == CtlIn
}

// ParseRates parses a rate-sequence string: either a single expression
// ("p", "2", "beta*(N+L)") or a bracketed comma list ("[1,0,1]", "[p,p]").
func ParseRates(s string) ([]symb.Expr, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated rate list %q", s)
		}
		inner := s[1 : len(s)-1]
		parts := splitTop(inner)
		if len(parts) == 0 {
			return nil, fmt.Errorf("empty rate list %q", s)
		}
		out := make([]symb.Expr, len(parts))
		for i, p := range parts {
			e, err := symb.ParseExpr(p)
			if err != nil {
				return nil, err
			}
			out[i] = e
		}
		return out, nil
	}
	e, err := symb.ParseExpr(s)
	if err != nil {
		return nil, err
	}
	return []symb.Expr{e}, nil
}

// splitTop splits on commas not nested inside parentheses.
func splitTop(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" || len(parts) > 0 {
		parts = append(parts, s[start:])
	}
	return parts
}

// FormatRates renders a rate sequence in the bracketed notation.
func FormatRates(seq []symb.Expr) string {
	if len(seq) == 1 {
		return "[" + seq[0].String() + "]"
	}
	parts := make([]string, len(seq))
	for i, e := range seq {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// String renders the graph structure.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpdf.Graph %q: %d nodes, %d edges", g.Name, len(g.Nodes), len(g.Edges))
	if len(g.Params) > 0 {
		b.WriteString(", params")
		for _, p := range g.Params {
			fmt.Fprintf(&b, " %s", p.Name)
		}
	}
	b.WriteByte('\n')
	for _, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		kind := ""
		if g.IsControlEdge(e) {
			kind = " (control)"
		}
		fmt.Fprintf(&b, "  %s: %s.%s %s -> %s %s.%s%s",
			e.Name,
			src.Name, src.Ports[e.SrcPort].Name, FormatRates(src.Ports[e.SrcPort].Rates),
			FormatRates(dst.Ports[e.DstPort].Rates), dst.Name, dst.Ports[e.DstPort].Name, kind)
		if e.Initial > 0 {
			fmt.Fprintf(&b, " init=%d", e.Initial)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
