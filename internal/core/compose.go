package core

import (
	"fmt"

	"repro/internal/symb"
)

// Merge imports every parameter, node and edge of other into g, prefixing
// node names with prefix (and parameter names only on collision with a
// different range). It returns the mapping from other's node ids to g's.
//
// Merge is the mechanism behind the paper's composability claim (§V: TPDF
// "provides a unified view of manycore systems, which is entirely
// composable" in contrast to SADF's scenario coupling): independently
// analyzed subsystems combine into one graph, and cross-subsystem channels
// are then added with the usual Connect calls.
func (g *Graph) Merge(other *Graph, prefix string) (map[NodeID]NodeID, error) {
	if g == other {
		return nil, fmt.Errorf("core: cannot merge a graph into itself")
	}
	// Parameters: identical declarations are shared; conflicting ones are
	// rejected so rate expressions never silently change meaning.
	existing := map[string]Param{}
	for _, p := range g.Params {
		existing[p.Name] = p
	}
	for _, p := range other.Params {
		if have, ok := existing[p.Name]; ok {
			if have != p {
				return nil, fmt.Errorf("core: parameter %q declared differently in both graphs", p.Name)
			}
			continue
		}
		g.AddParam(p.Name, p.Default, p.Min, p.Max)
		existing[p.Name] = p
	}

	idOf := make(map[NodeID]NodeID, len(other.Nodes))
	for i, n := range other.Nodes {
		name := prefix + n.Name
		if _, dup := g.NodeByName(name); dup {
			return nil, fmt.Errorf("core: merged node name %q collides", name)
		}
		clone := &Node{
			Name:        name,
			Kind:        n.Kind,
			Modes:       append([]Mode(nil), n.Modes...),
			Exec:        append([]int64(nil), n.Exec...),
			ClockPeriod: n.ClockPeriod,
			Special:     n.Special,
		}
		for _, p := range n.Ports {
			clone.Ports = append(clone.Ports, Port{
				Name:     p.Name,
				Dir:      p.Dir,
				Rates:    append([]symb.Expr(nil), p.Rates...),
				Priority: p.Priority,
			})
		}
		idOf[NodeID(i)] = g.addNode(clone)
	}
	for _, e := range other.Edges {
		g.connectPorts(idOf[e.Src], e.SrcPort, idOf[e.Dst], e.DstPort, e.Initial)
	}
	return idOf, nil
}
