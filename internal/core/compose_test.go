package core_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestMergeTwoPipelines(t *testing.T) {
	// Compose two independently bounded OFDM demodulators into one system:
	// the merged graph remains consistent, safe, live and bounded — the §V
	// composability claim.
	sys := apps.OFDMTPDF(apps.DefaultOFDM())
	second := apps.OFDMTPDF(apps.DefaultOFDM())
	idOf, err := sys.Merge(second, "rx2_")
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Nodes) != 18 {
		t.Fatalf("merged system has %d nodes, want 18", len(sys.Nodes))
	}
	if _, ok := sys.NodeByName("rx2_SRC"); !ok {
		t.Fatal("prefixed node missing")
	}
	// Shared parameters merged, not duplicated.
	if len(sys.Params) != 4 {
		t.Fatalf("params = %d, want 4 (shared)", len(sys.Params))
	}
	rep := analysis.Analyze(sys)
	if rep.Err != nil || !rep.Bounded {
		t.Fatalf("merged system must stay bounded: %v", rep.Err)
	}
	// The id map points at the clones.
	src2, _ := second.NodeByName("SRC")
	if sys.Nodes[idOf[src2]].Name != "rx2_SRC" {
		t.Error("id mapping wrong")
	}
	// Both receivers run side by side.
	res, err := sim.Run(sim.Config{Graph: sys})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sys.NodeByName("SNK")
	b, _ := sys.NodeByName("rx2_SNK")
	if res.Firings[a] != 1 || res.Firings[b] != 1 {
		t.Errorf("both sinks must fire: %d / %d", res.Firings[a], res.Firings[b])
	}
}

func TestMergeThenConnect(t *testing.T) {
	// Merge a producer graph into a consumer graph and wire them together.
	front := core.NewGraph("front")
	fSrc := front.AddKernel("gen", 1)
	fOut := front.AddKernel("stage", 1)
	if _, err := front.Connect(fSrc, "[4]", fOut, "[4]", 0); err != nil {
		t.Fatal(err)
	}

	sys := core.NewGraph("sys")
	proc := sys.AddKernel("proc", 2)
	snk := sys.AddKernel("snk", 0)
	if _, err := sys.Connect(proc, "[1]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	idOf, err := sys.Merge(front, "in_")
	if err != nil {
		t.Fatal(err)
	}
	stage := idOf[fOut]
	if _, err := sys.Connect(stage, "[2]", proc, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(sys)
	if rep.Err != nil || !rep.Bounded {
		t.Fatalf("connected composition must be bounded: %v", rep.Err)
	}
	res, err := sim.Run(sim.Config{Graph: sys})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings[proc] != 2 {
		t.Errorf("proc fired %d, want 2 (stage emits 2 per firing)", res.Firings[proc])
	}
}

func TestMergeRejectsConflicts(t *testing.T) {
	a := apps.Fig2()
	b := apps.Fig2()
	// Same prefix twice collides.
	if _, err := a.Merge(b, ""); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Errorf("name collision not caught: %v", err)
	}
	// Conflicting parameter declaration.
	c := core.NewGraph("c")
	c.AddParam("p", 9, 1, 9)
	if _, err := c.Merge(apps.Fig2(), "x_"); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Errorf("parameter conflict not caught: %v", err)
	}
	// Self-merge.
	if _, err := a.Merge(a, "y_"); err == nil {
		t.Error("self-merge must fail")
	}
}
