package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/symb"
)

// randomValuations draws n valuations of the graph's declared parameters,
// uniformly within each parameter's declared (capped) range, from a
// deterministic source.
func randomValuations(g *core.Graph, n int, seed int64) []symb.Env {
	rng := rand.New(rand.NewSource(seed))
	out := make([]symb.Env, 0, n)
	for i := 0; i < n; i++ {
		env := symb.Env{}
		for _, p := range g.Params {
			lo := p.Min
			if lo < 1 {
				lo = 1
			}
			hi := p.Max
			if hi <= 0 || hi > lo+16 {
				hi = lo + 16
			}
			env[p.Name] = lo + rng.Int63n(hi-lo+1)
		}
		out = append(out, env)
	}
	return out
}

// assertRebindMatchesInstantiate checks that rebinding the program at env
// reproduces a fresh Instantiate byte for byte: every rate table, the
// initial tokens, and the repetition vector.
func assertRebindMatchesInstantiate(t *testing.T, g *core.Graph, p *core.Program, env symb.Env) {
	t.Helper()
	want, _, err := g.Instantiate(env)
	if err != nil {
		t.Fatalf("instantiate at %v: %v", env, err)
	}
	wsol, err := want.RepetitionVector()
	if err != nil {
		t.Fatalf("repetition vector at %v: %v", env, err)
	}
	if err := p.Rebind(env); err != nil {
		t.Fatalf("rebind at %v: %v", env, err)
	}
	got := p.Concrete()
	for ei := range want.Edges {
		we, ge := &want.Edges[ei], &got.Edges[ei]
		if !reflect.DeepEqual(we.Prod, ge.Prod) || !reflect.DeepEqual(we.Cons, ge.Cons) || we.Initial != ge.Initial {
			t.Fatalf("edge %q at %v: rebind %v %v init=%d, instantiate %v %v init=%d",
				we.Name, env, ge.Prod, ge.Cons, ge.Initial, we.Prod, we.Cons, we.Initial)
		}
	}
	if !reflect.DeepEqual(p.Solution().Q, wsol.Q) || !reflect.DeepEqual(p.Solution().R, wsol.R) {
		t.Fatalf("at %v: rebind solution Q=%v R=%v, instantiate Q=%v R=%v",
			env, p.Solution().Q, p.Solution().R, wsol.Q, wsol.R)
	}
}

// TestProgramRebindMatchesInstantiate sweeps randomized valuations through
// one compiled program per application graph and demands byte-identical
// concrete graphs and repetition vectors versus fresh instantiation.
func TestProgramRebindMatchesInstantiate(t *testing.T) {
	graphs := map[string]*core.Graph{
		"fig2":      apps.Fig2(),
		"fig4a":     apps.Fig4a(),
		"fig4b":     apps.Fig4b(),
		"ofdm":      apps.OFDMTPDF(apps.DefaultOFDM()),
		"ofdm-csdf": apps.OFDMCSDF(apps.DefaultOFDM()),
	}
	for name, g := range graphs {
		p, err := core.Compile(g)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, env := range randomValuations(g, 8, 11) {
			assertRebindMatchesInstantiate(t, g, p, env)
		}
		// Defaults too (nil env).
		assertRebindMatchesInstantiate(t, g, p, nil)
	}
}

// TestProgramRebindAllocationFree gates the warm rebind path at zero heap
// allocations: after the first Rebind, re-evaluating the whole graph at a
// new valuation must not allocate.
func TestProgramRebindAllocationFree(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM())
	p, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	envA := symb.Env{"beta": 3, "M": 2, "N": 16, "L": 1}
	envB := symb.Env{"beta": 7, "M": 4, "N": 64, "L": 2}
	if err := p.Rebind(envA); err != nil {
		t.Fatal(err)
	}
	if err := p.Rebind(envB); err != nil {
		t.Fatal(err)
	}
	flip := false
	allocs := testing.AllocsPerRun(50, func() {
		flip = !flip
		env := envA
		if flip {
			env = envB
		}
		if err := p.Rebind(env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Rebind allocates %.1f times per call, want 0", allocs)
	}
}

// TestProgramRebindRejectsBadValuations mirrors Instantiate's parameter
// validation: out-of-range valuations must fail on both paths.
func TestProgramRebindRejectsBadValuations(t *testing.T) {
	g := apps.OFDMTPDF(apps.DefaultOFDM()) // declares beta in [1,100]
	p, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []symb.Env{
		{"beta": 0},
		{"beta": 101},
		{"N": 5000},
	} {
		if _, _, err := g.Instantiate(env); err == nil {
			t.Fatalf("instantiate at %v must fail", env)
		}
		if err := p.Rebind(env); err == nil {
			t.Fatalf("rebind at %v must fail", env)
		}
		// A failed rebind may leave mixed rate tables behind; the program
		// must report itself unbound until a valuation succeeds.
		if p.Bound() {
			t.Fatalf("program still bound after failed rebind at %v", env)
		}
	}
	// A failed rebind must not poison the program: a good valuation after a
	// bad one still matches fresh instantiation.
	assertRebindMatchesInstantiate(t, g, p, symb.Env{"beta": 2, "M": 2, "N": 8, "L": 1})
	if !p.Bound() {
		t.Fatal("program must be bound again after a successful rebind")
	}
}

// TestProgramUnboundRejected verifies the unbound state is explicit.
func TestProgramUnboundRejected(t *testing.T) {
	p, err := core.Compile(apps.Fig2())
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound() {
		t.Fatal("freshly compiled program must be unbound")
	}
	if err := p.Rebind(nil); err != nil {
		t.Fatal(err)
	}
	if !p.Bound() {
		t.Fatal("program must be bound after Rebind")
	}
}

// TestCompileRejectsNegativeExec verifies Compile refuses exactly what
// Instantiate refuses: the csdf-level negative-execution-time rule that
// core.Validate leaves to the lowering.
func TestCompileRejectsNegativeExec(t *testing.T) {
	g := core.NewGraph("bad-exec")
	a := g.AddKernel("A", -5)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Instantiate(nil); err == nil {
		t.Fatal("Instantiate must reject a negative execution time")
	}
	if _, err := core.Compile(g); err == nil {
		t.Fatal("Compile must reject a negative execution time")
	}
}
