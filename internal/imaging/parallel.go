package imaging

import (
	"sync/atomic"

	"repro/internal/pool"
)

// parallelism is the package-wide worker budget for the pixel kernels
// (detectors, blur, motion search). It is a process-level knob rather than
// a per-call parameter because detector functions flow through the
// Detector.Run interface and the simulator behaviors, whose signatures are
// part of the experiment plumbing.
var parallelism atomic.Int32

// SetParallelism sets how many workers the pixel kernels may use; values
// below 2 restore sequential execution. Every kernel shards by disjoint
// row (or block-row) bands, so results are identical whatever the setting.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the current worker budget (minimum 1).
func Parallelism() int {
	if p := int(parallelism.Load()); p > 1 {
		return p
	}
	return 1
}

// shardRows splits [0, h) into contiguous bands and runs fn on each, using
// the package parallelism. Bands are disjoint, so kernels that write only
// rows y0 <= y < y1 need no synchronization and stay deterministic.
func shardRows(h int, fn func(y0, y1 int)) {
	p := Parallelism()
	if p > h {
		p = h
	}
	if p <= 1 || h < 32 {
		fn(0, h)
		return
	}
	pool.Run(p, p, func(i int) error {
		fn(i*h/p, (i+1)*h/p)
		return nil
	})
}
