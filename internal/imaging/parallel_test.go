package imaging

import (
	"bytes"
	"testing"
)

// TestKernelsParallelDeterministic verifies every pixel kernel produces
// identical output whatever the row-band parallelism: the bands are
// disjoint, so any divergence is a sharding bug.
func TestKernelsParallelDeterministic(t *testing.T) {
	defer SetParallelism(1)
	im := Synthetic(129, 97, 5) // odd sizes exercise uneven bands
	SetParallelism(1)
	var seq []*Image
	for _, d := range Detectors() {
		seq = append(seq, d.Run(im))
	}
	seqKirsch := Kirsch(im)
	for _, workers := range []int{2, 3, 8} {
		SetParallelism(workers)
		for i, d := range Detectors() {
			got := d.Run(im)
			if !bytes.Equal(got.Pix, seq[i].Pix) {
				t.Fatalf("%s: parallel=%d output diverged", d.Name, workers)
			}
		}
		if got := Kirsch(im); !bytes.Equal(got.Pix, seqKirsch.Pix) {
			t.Fatalf("Kirsch: parallel=%d output diverged", workers)
		}
	}
}

// TestEstimateFrameParallelDeterministic verifies the sharded motion
// search total matches the sequential one for both search strategies.
func TestEstimateFrameParallelDeterministic(t *testing.T) {
	defer SetParallelism(1)
	ref := Synthetic(96, 96, 11)
	cur := Shift(ref, 2, -3)
	SetParallelism(1)
	wantFull := EstimateFrame(cur, ref, 16, 7, FullSearch)
	wantTSS := EstimateFrame(cur, ref, 16, 7, ThreeStepSearch)
	for _, workers := range []int{2, 4, 8} {
		SetParallelism(workers)
		if got := EstimateFrame(cur, ref, 16, 7, FullSearch); got != wantFull {
			t.Fatalf("FullSearch: parallel=%d total %d, want %d", workers, got, wantFull)
		}
		if got := EstimateFrame(cur, ref, 16, 7, ThreeStepSearch); got != wantTSS {
			t.Fatalf("ThreeStepSearch: parallel=%d total %d, want %d", workers, got, wantTSS)
		}
	}
}

// TestSADFastPathMatchesClamped pins the interior fast path of SAD to the
// replicate-padded reference on windows that straddle the border.
func TestSADFastPathMatchesClamped(t *testing.T) {
	cur := Synthetic(40, 40, 3)
	ref := Shift(cur, 1, 1)
	naive := func(bx, by, size, dx, dy int) int {
		acc := 0
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				d := int(cur.At(bx+x, by+y)) - int(ref.At(bx+x+dx, by+y+dy))
				if d < 0 {
					d = -d
				}
				acc += d
			}
		}
		return acc
	}
	for _, c := range [][4]int{
		{0, 0, -3, -3}, {0, 0, 0, 0}, {8, 8, 2, 1},
		{24, 24, 7, 7}, {24, 8, -7, 5}, {8, 24, 3, -6},
	} {
		bx, by, dx, dy := c[0], c[1], c[2], c[3]
		if got, want := SAD(cur, ref, bx, by, 16, dx, dy), naive(bx, by, 16, dx, dy); got != want {
			t.Fatalf("SAD(%d,%d,%d,%d) = %d, want %d", bx, by, dx, dy, got, want)
		}
	}
}
