package imaging

import (
	"testing"
	"testing/quick"
	"time"
)

func TestImageBasics(t *testing.T) {
	im := New(4, 3)
	im.Set(1, 2, 77)
	if im.At(1, 2) != 77 {
		t.Error("Set/At roundtrip failed")
	}
	// Border clamping.
	im.Set(0, 0, 10)
	if im.At(-5, -5) != 10 {
		t.Error("negative coordinates must clamp to (0,0)")
	}
	if im.At(100, 100) != im.At(3, 2) {
		t.Error("overflow coordinates must clamp to the far corner")
	}
	// Out-of-range Set is a no-op.
	im.Set(-1, -1, 99)
	if im.At(0, 0) != 10 {
		t.Error("out-of-range Set must not write")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Synthetic(16, 16, 1)
	b := a.Clone()
	b.Set(0, 0, b.At(0, 0)+1)
	if a.At(0, 0) == b.At(0, 0) {
		t.Error("Clone must copy pixels")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 64, 7)
	b := Synthetic(64, 64, 7)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("Synthetic must be deterministic per seed")
		}
	}
	c := Synthetic(64, 64, 8)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestFlatImageHasNoEdges(t *testing.T) {
	im := New(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 128
	}
	for _, d := range Detectors() {
		out := d.Run(im)
		if EdgeDensity(out, 10) != 0 {
			t.Errorf("%s found edges in a flat image", d.Name)
		}
	}
}

func TestStepEdgeDetected(t *testing.T) {
	// Vertical step: left 0, right 255.
	im := New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			im.Set(x, y, 255)
		}
	}
	for _, d := range Detectors() {
		out := d.Run(im)
		// The edge column must respond strongly somewhere near x=16.
		found := false
		for y := 8; y < 24 && !found; y++ {
			for x := 14; x <= 18; x++ {
				if out.At(x, y) >= 100 {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("%s missed a hard step edge", d.Name)
		}
	}
}

func TestDetectorsPreserveSize(t *testing.T) {
	im := Synthetic(48, 36, 3)
	for _, d := range Detectors() {
		out := d.Run(im)
		if out.W != im.W || out.H != im.H {
			t.Errorf("%s changed image size", d.Name)
		}
	}
	k := Kirsch(im)
	if k.W != im.W || k.H != im.H {
		t.Error("Kirsch changed image size")
	}
}

func TestCannyThinnerThanSobel(t *testing.T) {
	// Canny's non-maximum suppression must produce sparser edges than raw
	// Sobel magnitude on a noisy scene.
	im := Synthetic(128, 128, 5)
	sob := EdgeDensity(Sobel(im), 60)
	can := EdgeDensity(Canny(im, 40, 90), 60)
	if can >= sob {
		t.Errorf("Canny density %.4f should be below Sobel %.4f", can, sob)
	}
	if can == 0 {
		t.Error("Canny found nothing on a structured scene")
	}
}

func TestCannyHysteresisConnectsWeakEdges(t *testing.T) {
	// A diagonal ramp edge whose gradient straddles the two thresholds:
	// hysteresis should retain weak pixels connected to strong ones.
	im := New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x > y {
				im.Set(x, y, 200)
			}
		}
	}
	out := Canny(im, 20, 80)
	if EdgeDensity(out, 255) == 0 {
		t.Error("diagonal edge lost")
	}
}

func TestConvolve3x3Identity(t *testing.T) {
	im := Synthetic(20, 20, 2)
	id := Convolve3x3(im, [9]int{0, 0, 0, 0, 1, 0, 0, 0, 0}, 1)
	for i := range im.Pix {
		if id.Pix[i] != im.Pix[i] {
			t.Fatal("identity kernel must preserve the image")
		}
	}
}

func TestQuickDetectorsBounded(t *testing.T) {
	// Outputs are valid images for arbitrary small inputs.
	f := func(seed uint64, w8, h8 uint8) bool {
		w := int(w8%16) + 3
		h := int(h8%16) + 3
		im := Synthetic(w, h, seed)
		for _, d := range Detectors() {
			out := d.Run(im)
			if out.W != w || out.H != h || len(out.Pix) != w*h {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRelativeCostOrdering(t *testing.T) {
	// The Fig. 6 table's shape: Quick Mask is the cheapest method and Canny
	// the most expensive, by a clear margin. (Sobel and Prewitt sit between
	// them with nearly identical cost, so their mutual order is not
	// asserted.) Measured on a reduced image to keep the test fast.
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	im := Synthetic(512, 512, 1)
	timeOf := func(f func(*Image) *Image) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f(im)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	quickT := timeOf(QuickMask)
	sobelT := timeOf(Sobel)
	cannyT := timeOf(func(im *Image) *Image { return Canny(im, 40, 90) })
	if quickT >= sobelT {
		t.Errorf("QuickMask (%v) should be cheaper than Sobel (%v)", quickT, sobelT)
	}
	if sobelT >= cannyT {
		t.Errorf("Sobel (%v) should be cheaper than Canny (%v)", sobelT, cannyT)
	}
}
