// Package imaging provides the image-processing substrate for the edge
// detection case study (§IV-A): grayscale images, synthetic test scenes,
// and the four edge detectors of the Fig. 6 table — Quick Mask, Sobel,
// Prewitt and Canny (Kirsch is included as the paper lists it among the
// known gradient methods).
//
// The detectors are real implementations, not cost models: the benchmark
// harness times them on a 1024×1024 synthetic scene to reproduce the
// table's ordering (Quick Mask fastest, Canny slowest by a wide margin).
package imaging

import "fmt"

// Image is a grayscale 8-bit image in row-major order.
type Image struct {
	W, H int
	Pix  []uint8
}

// New returns a zeroed image of the given size.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel value, clamping coordinates to the border (replicate
// padding, the usual convolution boundary treatment).
func (im *Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// clampedRows3 returns the pixel rows y-1, y, y+1 with replicate padding
// at the vertical borders — the row pointers of a 3×3 stencil. The
// convolution kernels walk these directly instead of paying At's four
// clamp comparisons per tap.
func (im *Image) clampedRows3(y int) (rm, r0, rp []uint8) {
	ym, yp := y-1, y+1
	if ym < 0 {
		ym = 0
	}
	if yp >= im.H {
		yp = im.H - 1
	}
	w := im.W
	return im.Pix[ym*w : ym*w+w], im.Pix[y*w : y*w+w], im.Pix[yp*w : yp*w+w]
}

// clampedRow returns pixel row y clamped into the image.
func (im *Image) clampedRow(y int) []uint8 {
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W : y*im.W+im.W]
}

// clampX returns x-1 and x+1 with replicate padding at the horizontal
// borders.
func clampX(x, w int) (xm, xp int) {
	xm, xp = x-1, x+1
	if xm < 0 {
		xm = 0
	}
	if xp >= w {
		xp = w - 1
	}
	return xm, xp
}

// Set writes a pixel; out-of-range coordinates are ignored.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := New(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Mean returns the average pixel value.
func (im *Image) Mean() float64 {
	var sum int64
	for _, p := range im.Pix {
		sum += int64(p)
	}
	return float64(sum) / float64(len(im.Pix))
}

// Synthetic renders a deterministic test scene: an intensity gradient,
// rectangles, a filled circle and pseudo-random speckle noise — enough
// structure for every detector to produce meaningful edges, with the noise
// exercising Canny's smoothing advantage.
func Synthetic(w, h int, seed uint64) *Image {
	im := New(w, h)
	s := seed
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545F4914F6CDD1D
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint8((x * 160) / w) // horizontal gradient
			im.Pix[y*w+x] = v
		}
	}
	// Rectangles.
	fillRect := func(x0, y0, x1, y1 int, v uint8) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				im.Set(x, y, v)
			}
		}
	}
	fillRect(w/8, h/8, w/3, h/3, 230)
	fillRect(w/2, h/2, w-w/6, h-h/6, 40)
	// Circle.
	cx, cy, r := 2*w/3, h/4, min(w, h)/8
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				im.Set(x, y, 200)
			}
		}
	}
	// Speckle noise on ~6% of pixels.
	for i := range im.Pix {
		if next()%16 == 0 {
			delta := int(next()%31) - 15
			v := int(im.Pix[i]) + delta
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[i] = uint8(v)
		}
	}
	return im
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clamp255(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Convolve3x3 applies a 3×3 kernel (row-major) with the given divisor and
// absolute-value output, the common form for edge masks.
func Convolve3x3(im *Image, k [9]int, div int) *Image {
	if div == 0 {
		div = 1
	}
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			acc := 0
			idx := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					acc += k[idx] * int(im.At(x+dx, y+dy))
					idx++
				}
			}
			if acc < 0 {
				acc = -acc
			}
			out.Pix[y*im.W+x] = clamp255(acc / div)
		}
	}
	return out
}
