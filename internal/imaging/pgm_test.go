package imaging

import (
	"bytes"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	im := Synthetic(37, 23, 5)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("size changed: %dx%d", back.W, back.H)
	}
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel %d changed", i)
		}
	}
}

func TestPGMHeaderComments(t *testing.T) {
	src := "P5\n# a comment\n2 2\n# another\n255\n\x01\x02\x03\x04"
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 2 || im.Pix[3] != 4 {
		t.Errorf("parsed %dx%d pix %v", im.W, im.H, im.Pix)
	}
}

func TestPGMRejectsBadInput(t *testing.T) {
	cases := []string{
		"",                       // empty
		"P2\n2 2\n255\n....",     // ASCII variant unsupported
		"P5\n2 2\n65535\n\x00",   // 16-bit unsupported
		"P5\n-1 2\n255\n",        // negative size
		"P5\n2 2\n255\n\x01\x02", // truncated raster
	}
	for i, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail: %q", i, src)
		}
	}
}
