package imaging

import "repro/internal/pool"

// Block motion estimation, the §V AVC-encoder workload: the paper improves
// the encoder by racing motion-vector searches of different quality under a
// Transaction kernel with a quality threshold. Two real search strategies
// are provided — exhaustive full search (best quality, slow) and three-step
// search (fast, possibly suboptimal) — over the same SAD cost.

// MotionVector is a block displacement with its matching cost.
type MotionVector struct {
	DX, DY int
	SAD    int
}

// SAD computes the sum of absolute differences between the block at
// (bx, by) in cur and the block displaced by (dx, dy) in ref. The motion
// vector therefore points from the current block to its reference position:
// a frame translated by (+3, -2) yields vectors of (-3, +2).
func SAD(cur, ref *Image, bx, by, size, dx, dy int) int {
	// Fast path: both windows fully inside their frames — walk the pixel
	// rows directly instead of clamping every access. This is the inner
	// loop of the motion searches (size² work per candidate displacement),
	// and interior blocks, the overwhelming majority, all take it.
	if bx >= 0 && by >= 0 && bx+size <= cur.W && by+size <= cur.H &&
		bx+dx >= 0 && by+dy >= 0 && bx+dx+size <= ref.W && by+dy+size <= ref.H {
		acc := 0
		for y := 0; y < size; y++ {
			co := (by+y)*cur.W + bx
			ro := (by+dy+y)*ref.W + bx + dx
			c := cur.Pix[co : co+size]
			r := ref.Pix[ro : ro+size : ro+size]
			for i, cv := range c {
				d := int(cv) - int(r[i])
				if d < 0 {
					d = -d
				}
				acc += d
			}
		}
		return acc
	}
	acc := 0
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			a := int(cur.At(bx+x, by+y))
			b := int(ref.At(bx+x+dx, by+y+dy))
			d := a - b
			if d < 0 {
				d = -d
			}
			acc += d
		}
	}
	return acc
}

// FullSearch exhaustively scans displacements within ±radius and returns
// the best motion vector. Cost grows with radius²·size².
func FullSearch(cur, ref *Image, bx, by, size, radius int) MotionVector {
	best := MotionVector{SAD: 1 << 30}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if s := SAD(cur, ref, bx, by, size, dx, dy); s < best.SAD {
				best = MotionVector{DX: dx, DY: dy, SAD: s}
			}
		}
	}
	return best
}

// ThreeStepSearch is the classic fast block-matching heuristic: the step
// halves from radius/2 toward 1, probing the 8 neighbours at each step.
// Much cheaper than FullSearch but can fall into local minima.
func ThreeStepSearch(cur, ref *Image, bx, by, size, radius int) MotionVector {
	cx, cy := 0, 0
	best := MotionVector{SAD: SAD(cur, ref, bx, by, size, 0, 0)}
	step := radius / 2
	if step < 1 {
		step = 1
	}
	for step >= 1 {
		improved := true
		for improved {
			improved = false
			for dy := -step; dy <= step; dy += step {
				for dx := -step; dx <= step; dx += step {
					nx, ny := cx+dx, cy+dy
					if nx < -radius || nx > radius || ny < -radius || ny > radius {
						continue
					}
					if s := SAD(cur, ref, bx, by, size, nx, ny); s < best.SAD {
						best = MotionVector{DX: nx, DY: ny, SAD: s}
						cx, cy = nx, ny
						improved = true
					}
				}
			}
		}
		step /= 2
	}
	return best
}

// Shift renders the image displaced by (dx, dy), replicating borders; used
// to synthesize a "next frame" with known ground-truth motion.
func Shift(im *Image, dx, dy int) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Pix[y*im.W+x] = im.At(x-dx, y-dy)
		}
	}
	return out
}

// EstimateFrame runs a motion search over every size×size block of the
// frame pair and returns the total SAD (residual energy: lower is better
// quality) — the quality metric the §V transaction thresholds on. Block
// rows are sharded across the package parallelism; per-band partial sums
// are reduced in band order, so the total is exact and deterministic.
func EstimateFrame(cur, ref *Image, size, radius int,
	search func(cur, ref *Image, bx, by, size, radius int) MotionVector) int {
	if size <= 0 {
		return 0
	}
	blockRows := cur.H / size
	partial := make([]int, blockRows)
	// One pool item per block row (not shardRows: a frame has few block
	// rows, but each one is a full strip of motion searches — plenty of
	// work per goroutine).
	pool.Run(blockRows, Parallelism(), func(r int) error {
		by := r * size
		sum := 0
		for bx := 0; bx+size <= cur.W; bx += size {
			sum += search(cur, ref, bx, by, size, radius).SAD
		}
		partial[r] = sum
		return nil
	})
	total := 0
	for _, s := range partial {
		total += s
	}
	return total
}
