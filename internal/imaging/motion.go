package imaging

// Block motion estimation, the §V AVC-encoder workload: the paper improves
// the encoder by racing motion-vector searches of different quality under a
// Transaction kernel with a quality threshold. Two real search strategies
// are provided — exhaustive full search (best quality, slow) and three-step
// search (fast, possibly suboptimal) — over the same SAD cost.

// MotionVector is a block displacement with its matching cost.
type MotionVector struct {
	DX, DY int
	SAD    int
}

// SAD computes the sum of absolute differences between the block at
// (bx, by) in cur and the block displaced by (dx, dy) in ref. The motion
// vector therefore points from the current block to its reference position:
// a frame translated by (+3, -2) yields vectors of (-3, +2).
func SAD(cur, ref *Image, bx, by, size, dx, dy int) int {
	acc := 0
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			a := int(cur.At(bx+x, by+y))
			b := int(ref.At(bx+x+dx, by+y+dy))
			d := a - b
			if d < 0 {
				d = -d
			}
			acc += d
		}
	}
	return acc
}

// FullSearch exhaustively scans displacements within ±radius and returns
// the best motion vector. Cost grows with radius²·size².
func FullSearch(cur, ref *Image, bx, by, size, radius int) MotionVector {
	best := MotionVector{SAD: 1 << 30}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if s := SAD(cur, ref, bx, by, size, dx, dy); s < best.SAD {
				best = MotionVector{DX: dx, DY: dy, SAD: s}
			}
		}
	}
	return best
}

// ThreeStepSearch is the classic fast block-matching heuristic: the step
// halves from radius/2 toward 1, probing the 8 neighbours at each step.
// Much cheaper than FullSearch but can fall into local minima.
func ThreeStepSearch(cur, ref *Image, bx, by, size, radius int) MotionVector {
	cx, cy := 0, 0
	best := MotionVector{SAD: SAD(cur, ref, bx, by, size, 0, 0)}
	step := radius / 2
	if step < 1 {
		step = 1
	}
	for step >= 1 {
		improved := true
		for improved {
			improved = false
			for dy := -step; dy <= step; dy += step {
				for dx := -step; dx <= step; dx += step {
					nx, ny := cx+dx, cy+dy
					if nx < -radius || nx > radius || ny < -radius || ny > radius {
						continue
					}
					if s := SAD(cur, ref, bx, by, size, nx, ny); s < best.SAD {
						best = MotionVector{DX: nx, DY: ny, SAD: s}
						cx, cy = nx, ny
						improved = true
					}
				}
			}
		}
		step /= 2
	}
	return best
}

// Shift renders the image displaced by (dx, dy), replicating borders; used
// to synthesize a "next frame" with known ground-truth motion.
func Shift(im *Image, dx, dy int) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Pix[y*im.W+x] = im.At(x-dx, y-dy)
		}
	}
	return out
}

// EstimateFrame runs a motion search over every size×size block of the
// frame pair and returns the total SAD (residual energy: lower is better
// quality) — the quality metric the §V transaction thresholds on.
func EstimateFrame(cur, ref *Image, size, radius int,
	search func(cur, ref *Image, bx, by, size, radius int) MotionVector) int {
	total := 0
	for by := 0; by+size <= cur.H; by += size {
		for bx := 0; bx+size <= cur.W; bx += size {
			total += search(cur, ref, bx, by, size, radius).SAD
		}
	}
	return total
}
