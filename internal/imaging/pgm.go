package imaging

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM serializes the image as binary PGM (P5), the simplest portable
// grayscale format; viewers and converters accept it everywhere.
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPGM parses a binary PGM (P5) image with max value 255.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imaging: reading PGM magic: %v", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imaging: not a binary PGM (magic %q)", magic)
	}
	readTokenInt := func() (int, error) {
		// Skip whitespace and '#' comments between header fields.
		for {
			b, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			switch {
			case b == '#':
				if _, err := br.ReadString('\n'); err != nil {
					return 0, err
				}
			case b == ' ' || b == '\t' || b == '\n' || b == '\r':
				continue
			default:
				if err := br.UnreadByte(); err != nil {
					return 0, err
				}
				var v int
				if _, err := fmt.Fscan(br, &v); err != nil {
					return 0, err
				}
				return v, nil
			}
		}
	}
	w, err := readTokenInt()
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM width: %v", err)
	}
	h, err := readTokenInt()
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM height: %v", err)
	}
	maxv, err := readTokenInt()
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM maxval: %v", err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imaging: implausible PGM size %dx%d", w, h)
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imaging: unsupported PGM maxval %d", maxv)
	}
	// Exactly one whitespace byte separates the header from the raster.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	im := New(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imaging: PGM raster: %v", err)
	}
	return im, nil
}
