package imaging

import (
	"testing"
	"time"
)

func framePair(t *testing.T, dx, dy int) (*Image, *Image) {
	t.Helper()
	ref := Synthetic(64, 64, 3)
	cur := Shift(ref, dx, dy)
	return cur, ref
}

func TestFullSearchRecoversKnownMotion(t *testing.T) {
	// The frame moved by (+3, -2), so each block's reference position —
	// the motion vector — is (-3, +2).
	cur, ref := framePair(t, 3, -2)
	mv := FullSearch(cur, ref, 16, 16, 16, 7)
	if mv.DX != -3 || mv.DY != 2 {
		t.Errorf("full search found (%d,%d), want (-3,2)", mv.DX, mv.DY)
	}
	if mv.SAD != 0 {
		t.Errorf("pure translation must match exactly, SAD = %d", mv.SAD)
	}
}

func TestThreeStepFindsLowCostVector(t *testing.T) {
	cur, ref := framePair(t, 2, 2)
	full := FullSearch(cur, ref, 16, 16, 16, 7)
	tss := ThreeStepSearch(cur, ref, 16, 16, 16, 7)
	// TSS may be suboptimal but must never beat the exhaustive optimum.
	if tss.SAD < full.SAD {
		t.Errorf("TSS SAD %d below full-search optimum %d", tss.SAD, full.SAD)
	}
	// On a clean global shift it should still find a good match.
	if tss.SAD > 4*full.SAD+1000 {
		t.Errorf("TSS SAD %d far from optimum %d", tss.SAD, full.SAD)
	}
}

func TestSADZeroForIdenticalBlocks(t *testing.T) {
	im := Synthetic(32, 32, 9)
	if s := SAD(im, im, 8, 8, 8, 0, 0); s != 0 {
		t.Errorf("self-SAD = %d, want 0", s)
	}
}

func TestShiftGroundTruth(t *testing.T) {
	im := Synthetic(32, 32, 4)
	sh := Shift(im, 5, 0)
	if sh.At(10, 10) != im.At(5, 10) {
		t.Error("shift misplaced pixels")
	}
}

func TestEstimateFrameQualityOrdering(t *testing.T) {
	// Full search residual <= three-step residual on any frame pair.
	cur, ref := framePair(t, 3, 1)
	full := EstimateFrame(cur, ref, 16, 7, FullSearch)
	tss := EstimateFrame(cur, ref, 16, 7, ThreeStepSearch)
	if full > tss {
		t.Errorf("full-search residual %d worse than TSS %d", full, tss)
	}
}

func TestSearchCostOrdering(t *testing.T) {
	// The §V premise: the high-quality search is the slow one.
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	ref := Synthetic(256, 256, 5)
	cur := Shift(ref, 4, 3)
	tFull := timeIt(func() { EstimateFrame(cur, ref, 16, 8, FullSearch) })
	tTSS := timeIt(func() { EstimateFrame(cur, ref, 16, 8, ThreeStepSearch) })
	if tFull <= tTSS {
		t.Errorf("full search (%v) should cost more than TSS (%v)", tFull, tTSS)
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
