package imaging

import "math"

// QuickMask applies the "quick mask" edge detector (Phillips' classic
// single-pass mask), the cheapest method in the Fig. 6 table:
//
//	-1  0 -1
//	 0  4  0
//	-1  0 -1
//
// Only the five nonzero coefficients are evaluated, which is what makes the
// method "quick" relative to the full gradient operators.
func QuickMask(im *Image) *Image {
	out := New(im.W, im.H)
	w := im.W
	shardRows(im.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			rm, _, rp := im.clampedRows3(y)
			orow := out.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				xm, xp := clampX(x, w)
				acc := 4*int(im.Pix[y*w+x]) -
					int(rm[xm]) - int(rm[xp]) -
					int(rp[xm]) - int(rp[xp])
				if acc < 0 {
					acc = -acc
				}
				orow[x] = clamp255(acc)
			}
		}
	})
	return out
}

// gradient applies a horizontal and vertical mask pair and returns the
// L1 gradient magnitude image.
func gradient(im *Image, kx, ky [9]int) *Image {
	out := New(im.W, im.H)
	w := im.W
	shardRows(im.H, func(y0, y1 int) {
		var p [9]int
		for y := y0; y < y1; y++ {
			rm, r0, rp := im.clampedRows3(y)
			orow := out.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				xm, xp := clampX(x, w)
				p[0], p[1], p[2] = int(rm[xm]), int(rm[x]), int(rm[xp])
				p[3], p[4], p[5] = int(r0[xm]), int(r0[x]), int(r0[xp])
				p[6], p[7], p[8] = int(rp[xm]), int(rp[x]), int(rp[xp])
				gx, gy := 0, 0
				for i, v := range p {
					gx += kx[i] * v
					gy += ky[i] * v
				}
				if gx < 0 {
					gx = -gx
				}
				if gy < 0 {
					gy = -gy
				}
				orow[x] = clamp255(gx + gy)
			}
		}
	})
	return out
}

var (
	sobelX = [9]int{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	sobelY = [9]int{-1, -2, -1, 0, 0, 0, 1, 2, 1}

	prewittX = [9]int{-1, 0, 1, -1, 0, 1, -1, 0, 1}
	prewittY = [9]int{-1, -1, -1, 0, 0, 0, 1, 1, 1}
)

// Sobel applies the Sobel gradient operator.
func Sobel(im *Image) *Image { return gradient(im, sobelX, sobelY) }

// Prewitt applies the Prewitt gradient operator.
func Prewitt(im *Image) *Image { return gradient(im, prewittX, prewittY) }

// kirschMasks are the eight compass masks of the Kirsch detector.
var kirschMasks = [8][9]int{
	{5, 5, 5, -3, 0, -3, -3, -3, -3},
	{5, 5, -3, 5, 0, -3, -3, -3, -3},
	{5, -3, -3, 5, 0, -3, 5, -3, -3},
	{-3, -3, -3, 5, 0, -3, 5, 5, -3},
	{-3, -3, -3, -3, 0, -3, 5, 5, 5},
	{-3, -3, -3, -3, 0, 5, -3, 5, 5},
	{-3, -3, 5, -3, 0, 5, -3, -3, 5},
	{-3, 5, 5, -3, 0, 5, -3, -3, -3},
}

// Kirsch applies the 8-direction Kirsch compass detector (max response).
func Kirsch(im *Image) *Image {
	out := New(im.W, im.H)
	w := im.W
	shardRows(im.H, func(y0, y1 int) {
		var p [9]int
		for y := y0; y < y1; y++ {
			rm, r0, rp := im.clampedRows3(y)
			orow := out.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				xm, xp := clampX(x, w)
				p[0], p[1], p[2] = int(rm[xm]), int(rm[x]), int(rm[xp])
				p[3], p[4], p[5] = int(r0[xm]), int(r0[x]), int(r0[xp])
				p[6], p[7], p[8] = int(rp[xm]), int(rp[x]), int(rp[xp])
				best := 0
				for m := range kirschMasks {
					acc := 0
					for i, v := range p {
						acc += kirschMasks[m][i] * v
					}
					if acc < 0 {
						acc = -acc
					}
					if acc > best {
						best = acc
					}
				}
				orow[x] = clamp255(best / 8)
			}
		}
	})
	return out
}

// gauss5 is a 5×5 Gaussian kernel (σ ≈ 1.4), sum 159 — the standard Canny
// smoothing stage.
var gauss5 = [25]int{
	2, 4, 5, 4, 2,
	4, 9, 12, 9, 4,
	5, 12, 15, 12, 5,
	4, 9, 12, 9, 4,
	2, 4, 5, 4, 2,
}

func gaussianBlur(im *Image) *Image {
	out := New(im.W, im.H)
	w := im.W
	shardRows(im.H, func(y0, y1 int) {
		var rows [5][]uint8
		var xs [5]int
		for y := y0; y < y1; y++ {
			for dy := -2; dy <= 2; dy++ {
				rows[dy+2] = im.clampedRow(y + dy)
			}
			orow := out.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				for dx := -2; dx <= 2; dx++ {
					c := x + dx
					if c < 0 {
						c = 0
					}
					if c >= w {
						c = w - 1
					}
					xs[dx+2] = c
				}
				acc := 0
				idx := 0
				for _, row := range rows {
					for _, c := range xs {
						acc += gauss5[idx] * int(row[c])
						idx++
					}
				}
				orow[x] = uint8(acc / 159)
			}
		}
	})
	return out
}

// Canny runs the full Canny pipeline: Gaussian smoothing, Sobel gradients,
// non-maximum suppression, double thresholding and hysteresis tracking.
// low and high are the weak/strong gradient thresholds (e.g. 40, 90).
func Canny(im *Image, low, high int) *Image {
	blurred := gaussianBlur(im)
	w, h := im.W, im.H
	mag := make([]int, w*h)
	dir := make([]uint8, w*h) // 0: E-W, 1: NE-SW, 2: N-S, 3: NW-SE
	shardRows(h, func(y0, y1 int) {
		var p [9]int
		for y := y0; y < y1; y++ {
			rm, r0, rp := blurred.clampedRows3(y)
			for x := 0; x < w; x++ {
				xm, xp := clampX(x, w)
				p[0], p[1], p[2] = int(rm[xm]), int(rm[x]), int(rm[xp])
				p[3], p[4], p[5] = int(r0[xm]), int(r0[x]), int(r0[xp])
				p[6], p[7], p[8] = int(rp[xm]), int(rp[x]), int(rp[xp])
				gx, gy := 0, 0
				for i, v := range p {
					gx += sobelX[i] * v
					gy += sobelY[i] * v
				}
				m := int(math.Hypot(float64(gx), float64(gy)))
				mag[y*w+x] = m
				ang := math.Atan2(float64(gy), float64(gx)) * 180 / math.Pi
				if ang < 0 {
					ang += 180
				}
				switch {
				case ang < 22.5 || ang >= 157.5:
					dir[y*w+x] = 0
				case ang < 67.5:
					dir[y*w+x] = 1
				case ang < 112.5:
					dir[y*w+x] = 2
				default:
					dir[y*w+x] = 3
				}
			}
		}
	})
	// Non-maximum suppression.
	nms := make([]int, w*h)
	offset := [4][2][2]int{
		{{1, 0}, {-1, 0}},
		{{1, -1}, {-1, 1}},
		{{0, 1}, {0, -1}},
		{{1, 1}, {-1, -1}},
	}
	atMag := func(x, y int) int {
		if x < 0 || x >= w || y < 0 || y >= h {
			return 0
		}
		return mag[y*w+x]
	}
	shardRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				d := dir[y*w+x]
				m := mag[y*w+x]
				a := atMag(x+offset[d][0][0], y+offset[d][0][1])
				b := atMag(x+offset[d][1][0], y+offset[d][1][1])
				if m >= a && m >= b {
					nms[y*w+x] = m
				}
			}
		}
	})
	// Double threshold + hysteresis.
	const weak, strong = 1, 2
	mark := make([]uint8, w*h)
	var stack []int
	for i, m := range nms {
		switch {
		case m >= high:
			mark[i] = strong
			stack = append(stack, i)
		case m >= low:
			mark[i] = weak
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := i%w, i/w
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := x+dx, y+dy
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if mark[j] == weak {
					mark[j] = strong
					stack = append(stack, j)
				}
			}
		}
	}
	out := New(w, h)
	for i, m := range mark {
		if m == strong {
			out.Pix[i] = 255
		}
	}
	return out
}

// Detector is a named edge-detection function, the unit the Fig. 6 table
// and the deadline experiment iterate over.
type Detector struct {
	Name string
	Run  func(*Image) *Image
}

// Detectors returns the Fig. 6 methods in the table's order. Canny uses the
// standard 40/90 thresholds.
func Detectors() []Detector {
	return []Detector{
		{"QMask", QuickMask},
		{"Sobel", Sobel},
		{"Prewitt", Prewitt},
		{"Canny", func(im *Image) *Image { return Canny(im, 40, 90) }},
	}
}

// EdgeDensity returns the fraction of pixels above the threshold: a crude
// quality proxy used to sanity-check detector output in tests.
func EdgeDensity(im *Image, threshold uint8) float64 {
	cnt := 0
	for _, p := range im.Pix {
		if p >= threshold {
			cnt++
		}
	}
	return float64(cnt) / float64(len(im.Pix))
}
