package imaging

import "math"

// QuickMask applies the "quick mask" edge detector (Phillips' classic
// single-pass mask), the cheapest method in the Fig. 6 table:
//
//	-1  0 -1
//	 0  4  0
//	-1  0 -1
//
// Only the five nonzero coefficients are evaluated, which is what makes the
// method "quick" relative to the full gradient operators.
func QuickMask(im *Image) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			acc := 4*int(im.At(x, y)) -
				int(im.At(x-1, y-1)) - int(im.At(x+1, y-1)) -
				int(im.At(x-1, y+1)) - int(im.At(x+1, y+1))
			if acc < 0 {
				acc = -acc
			}
			out.Pix[y*im.W+x] = clamp255(acc)
		}
	}
	return out
}

// gradient applies a horizontal and vertical mask pair and returns the
// L1 gradient magnitude image.
func gradient(im *Image, kx, ky [9]int) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			gx, gy := 0, 0
			idx := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					v := int(im.At(x+dx, y+dy))
					gx += kx[idx] * v
					gy += ky[idx] * v
					idx++
				}
			}
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			out.Pix[y*im.W+x] = clamp255(gx + gy)
		}
	}
	return out
}

var (
	sobelX = [9]int{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	sobelY = [9]int{-1, -2, -1, 0, 0, 0, 1, 2, 1}

	prewittX = [9]int{-1, 0, 1, -1, 0, 1, -1, 0, 1}
	prewittY = [9]int{-1, -1, -1, 0, 0, 0, 1, 1, 1}
)

// Sobel applies the Sobel gradient operator.
func Sobel(im *Image) *Image { return gradient(im, sobelX, sobelY) }

// Prewitt applies the Prewitt gradient operator.
func Prewitt(im *Image) *Image { return gradient(im, prewittX, prewittY) }

// kirschMasks are the eight compass masks of the Kirsch detector.
var kirschMasks = [8][9]int{
	{5, 5, 5, -3, 0, -3, -3, -3, -3},
	{5, 5, -3, 5, 0, -3, -3, -3, -3},
	{5, -3, -3, 5, 0, -3, 5, -3, -3},
	{-3, -3, -3, 5, 0, -3, 5, 5, -3},
	{-3, -3, -3, -3, 0, -3, 5, 5, 5},
	{-3, -3, -3, -3, 0, 5, -3, 5, 5},
	{-3, -3, 5, -3, 0, 5, -3, -3, 5},
	{-3, 5, 5, -3, 0, 5, -3, -3, -3},
}

// Kirsch applies the 8-direction Kirsch compass detector (max response).
func Kirsch(im *Image) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			best := 0
			for m := range kirschMasks {
				acc := 0
				idx := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						acc += kirschMasks[m][idx] * int(im.At(x+dx, y+dy))
						idx++
					}
				}
				if acc < 0 {
					acc = -acc
				}
				if acc > best {
					best = acc
				}
			}
			out.Pix[y*im.W+x] = clamp255(best / 8)
		}
	}
	return out
}

// gauss5 is a 5×5 Gaussian kernel (σ ≈ 1.4), sum 159 — the standard Canny
// smoothing stage.
var gauss5 = [25]int{
	2, 4, 5, 4, 2,
	4, 9, 12, 9, 4,
	5, 12, 15, 12, 5,
	4, 9, 12, 9, 4,
	2, 4, 5, 4, 2,
}

func gaussianBlur(im *Image) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			acc := 0
			idx := 0
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					acc += gauss5[idx] * int(im.At(x+dx, y+dy))
					idx++
				}
			}
			out.Pix[y*im.W+x] = uint8(acc / 159)
		}
	}
	return out
}

// Canny runs the full Canny pipeline: Gaussian smoothing, Sobel gradients,
// non-maximum suppression, double thresholding and hysteresis tracking.
// low and high are the weak/strong gradient thresholds (e.g. 40, 90).
func Canny(im *Image, low, high int) *Image {
	blurred := gaussianBlur(im)
	w, h := im.W, im.H
	mag := make([]int, w*h)
	dir := make([]uint8, w*h) // 0: E-W, 1: NE-SW, 2: N-S, 3: NW-SE
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx, gy := 0, 0
			idx := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					v := int(blurred.At(x+dx, y+dy))
					gx += sobelX[idx] * v
					gy += sobelY[idx] * v
					idx++
				}
			}
			m := int(math.Hypot(float64(gx), float64(gy)))
			mag[y*w+x] = m
			ang := math.Atan2(float64(gy), float64(gx)) * 180 / math.Pi
			if ang < 0 {
				ang += 180
			}
			switch {
			case ang < 22.5 || ang >= 157.5:
				dir[y*w+x] = 0
			case ang < 67.5:
				dir[y*w+x] = 1
			case ang < 112.5:
				dir[y*w+x] = 2
			default:
				dir[y*w+x] = 3
			}
		}
	}
	// Non-maximum suppression.
	nms := make([]int, w*h)
	offset := [4][2][2]int{
		{{1, 0}, {-1, 0}},
		{{1, -1}, {-1, 1}},
		{{0, 1}, {0, -1}},
		{{1, 1}, {-1, -1}},
	}
	atMag := func(x, y int) int {
		if x < 0 || x >= w || y < 0 || y >= h {
			return 0
		}
		return mag[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := dir[y*w+x]
			m := mag[y*w+x]
			a := atMag(x+offset[d][0][0], y+offset[d][0][1])
			b := atMag(x+offset[d][1][0], y+offset[d][1][1])
			if m >= a && m >= b {
				nms[y*w+x] = m
			}
		}
	}
	// Double threshold + hysteresis.
	const weak, strong = 1, 2
	mark := make([]uint8, w*h)
	var stack []int
	for i, m := range nms {
		switch {
		case m >= high:
			mark[i] = strong
			stack = append(stack, i)
		case m >= low:
			mark[i] = weak
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := i%w, i/w
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := x+dx, y+dy
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if mark[j] == weak {
					mark[j] = strong
					stack = append(stack, j)
				}
			}
		}
	}
	out := New(w, h)
	for i, m := range mark {
		if m == strong {
			out.Pix[i] = 255
		}
	}
	return out
}

// Detector is a named edge-detection function, the unit the Fig. 6 table
// and the deadline experiment iterate over.
type Detector struct {
	Name string
	Run  func(*Image) *Image
}

// Detectors returns the Fig. 6 methods in the table's order. Canny uses the
// standard 40/90 thresholds.
func Detectors() []Detector {
	return []Detector{
		{"QMask", QuickMask},
		{"Sobel", Sobel},
		{"Prewitt", Prewitt},
		{"Canny", func(im *Image) *Image { return Canny(im, 40, 90) }},
	}
}

// EdgeDensity returns the fraction of pixels above the threshold: a crude
// quality proxy used to sanity-check detector output in tests.
func EdgeDensity(im *Image, threshold uint8) float64 {
	cnt := 0
	for _, p := range im.Pix {
		if p >= threshold {
			cnt++
		}
	}
	return float64(cnt) / float64(len(im.Pix))
}
