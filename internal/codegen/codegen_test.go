package codegen

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/symb"
)

// parseGenerated parses and fully type-checks the generated source (it
// imports nothing, so go/types can verify it without an importer).
func parseGenerated(t *testing.T, src string) *ast.File {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "generated.go", src, parser.AllErrors)
	if err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	conf := types.Config{}
	if _, err := conf.Check(f.Name.Name, fset, []*ast.File{f}, nil); err != nil {
		t.Fatalf("generated code does not type-check: %v\n%s", err, src)
	}
	return f
}

func TestGenerateFig2Parses(t *testing.T) {
	src, err := Generate(apps.Fig2(), Options{Env: symb.Env{"p": 2}})
	if err != nil {
		t.Fatal(err)
	}
	f := parseGenerated(t, src)
	if f.Name.Name != "schedule" {
		t.Errorf("package = %q", f.Name.Name)
	}
	// RunIteration and the support runtime must be present.
	found := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			found[fd.Name.Name] = true
		}
	}
	for _, want := range []string{"RunIteration", "fire", "appendN", "errUnderflow"} {
		if !found[want] {
			t.Errorf("generated code missing func %s", want)
		}
	}
}

func TestGenerateCustomPackage(t *testing.T) {
	src, err := Generate(apps.Fig4a(), Options{Package: "fig4a", Env: symb.Env{"p": 1}})
	if err != nil {
		t.Fatal(err)
	}
	f := parseGenerated(t, src)
	if f.Name.Name != "fig4a" {
		t.Errorf("package = %q", f.Name.Name)
	}
	// Initial tokens materialize in an init function.
	if !strings.Contains(src, "func init()") {
		t.Error("initial tokens should generate an init function")
	}
}

func TestGenerateOFDM(t *testing.T) {
	src, err := Generate(apps.OFDMTPDF(apps.OFDMParams{Beta: 2, M: 4, N: 8, L: 1}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	parseGenerated(t, src)
	// Every actor appears in firing comments; schedule metadata recorded.
	for _, name := range []string{"SRC", "RCP", "FFT", "DUP", "TRAN", "SNK", "Repetition vector", "Schedule:"} {
		if !strings.Contains(src, name) {
			t.Errorf("generated code missing %q", name)
		}
	}
}

func TestGenerateScheduleOrderMatchesDependencies(t *testing.T) {
	// In the generated source, a producer's firing block must appear before
	// its consumer's.
	g := core.NewGraph("chain")
	a := g.AddKernel("alpha")
	b := g.AddKernel("beta")
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	src, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa := strings.Index(src, "// alpha firing 1")
	pb := strings.Index(src, "// beta firing 1")
	if pa < 0 || pb < 0 || pa > pb {
		t.Errorf("firing order wrong: alpha at %d, beta at %d", pa, pb)
	}
}

func TestGenerateDeadlockedGraphFails(t *testing.T) {
	if _, err := Generate(apps.Fig4Deadlocked(), Options{Env: symb.Env{"p": 1}}); err == nil {
		t.Fatal("deadlocked graph must not generate a schedule")
	}
}
