package graphio

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Format serializes a graph back into the textual format; Parse(Format(g))
// reconstructs an equivalent graph.
func Format(g *core.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", g.Name)
	for _, p := range g.Params {
		fmt.Fprintf(&b, "  param %s = %d", p.Name, defOr1(p.Default))
		if p.Min > 0 || p.Max > 0 {
			fmt.Fprintf(&b, " range %d..%d", p.Min, p.Max)
		}
		b.WriteString(";\n")
	}
	for _, n := range g.Nodes {
		kind := "kernel"
		switch {
		case n.Kind == core.KindControl && n.ClockPeriod > 0:
			kind = "clock"
		case n.Kind == core.KindControl:
			kind = "control"
		case n.Special == core.SpecialTransaction:
			kind = "transaction"
		case n.Special == core.SpecialSelectDup:
			kind = "selectdup"
		}
		fmt.Fprintf(&b, "  %s %s", kind, n.Name)
		if len(n.Exec) > 0 {
			b.WriteString(" exec")
			for _, e := range n.Exec {
				fmt.Fprintf(&b, " %d", e)
			}
		}
		if n.ClockPeriod > 0 {
			fmt.Fprintf(&b, " period %d", n.ClockPeriod)
		}
		b.WriteString(";\n")
	}
	for _, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		sp, dp := src.Ports[e.SrcPort], dst.Ports[e.DstPort]
		fmt.Fprintf(&b, "  edge %s: %s %s -> %s %s", e.Name, src.Name,
			core.FormatRates(sp.Rates), core.FormatRates(dp.Rates), dst.Name)
		if dp.Dir == core.CtlIn {
			b.WriteString(" control")
		}
		if e.Initial != 0 {
			fmt.Fprintf(&b, " init %d", e.Initial)
		}
		if dp.Priority != 0 {
			fmt.Fprintf(&b, " prio %d", dp.Priority)
		}
		b.WriteString(";\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func defOr1(d int64) int64 {
	if d == 0 {
		return 1
	}
	return d
}

// DOT exports the graph in Graphviz format: control actors are diamonds,
// clocks double-circles, transactions trapezia, select-duplicates houses;
// control channels are dashed.
func DOT(g *core.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", g.Name)
	for _, n := range g.Nodes {
		shape := "box"
		switch {
		case n.Kind == core.KindControl && n.ClockPeriod > 0:
			shape = "doublecircle"
		case n.Kind == core.KindControl:
			shape = "diamond"
		case n.Special == core.SpecialTransaction:
			shape = "trapezium"
		case n.Special == core.SpecialSelectDup:
			shape = "house"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", n.Name, shape)
	}
	for _, e := range g.Edges {
		src, dst := g.Nodes[e.Src], g.Nodes[e.Dst]
		sp, dp := src.Ports[e.SrcPort], dst.Ports[e.DstPort]
		style := ""
		if dp.Dir == core.CtlIn {
			style = ", style=dashed"
		}
		label := core.FormatRates(sp.Rates) + "/" + core.FormatRates(dp.Rates)
		if e.Initial > 0 {
			label += fmt.Sprintf(" (%d)", e.Initial)
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", src.Name, dst.Name, label, style)
	}
	b.WriteString("}\n")
	return b.String()
}
