package graphio

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
)

const fig2Src = `
graph fig2 {
  param p = 2 range 1..100;
  kernel A exec 1;
  kernel B exec 1;
  control C exec 1;
  kernel D exec 1;
  kernel E exec 1;
  transaction F exec 1;
  kernel SNK;

  edge e1: A [p] -> [1] B;
  edge e2: B [1] -> [2] D;
  edge e3: B [1] -> [2] C;
  edge e4: B [1] -> [1] E;
  edge e5: C [2] -> [1,1] F control;
  edge e6: D [2] -> [0,2] F prio 1;
  edge e7: E [1] -> [1,1] F prio 2;
  edge e8: F [1] -> [1] SNK;
}
`

func TestParseFig2(t *testing.T) {
	g, err := Parse(fig2Src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "fig2" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Nodes) != 7 || len(g.Edges) != 8 {
		t.Fatalf("parsed %d nodes %d edges, want 7/8", len(g.Nodes), len(g.Edges))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Analysis of the parsed graph matches the hand-built fixture.
	rep := analysis.Analyze(g)
	if rep.Err != nil || !rep.Bounded {
		t.Fatalf("parsed Fig. 2 should be bounded: %v", rep.Err)
	}
	ref := analysis.Analyze(apps.Fig2())
	if rep.Solution.QString() != ref.Solution.QString() {
		t.Errorf("parsed q %s != fixture q %s", rep.Solution.QString(), ref.Solution.QString())
	}
}

func TestParseClockAndKinds(t *testing.T) {
	src := `
graph kinds {
  kernel src exec 1 2 3;
  clock clk period 500;
  selectdup dup;
  transaction tr;
  kernel z;
  edge src [1] -> [1] dup;
  edge dup [1] -> [1] tr;
  edge tr [1] -> [1] z;
  edge clk [1] -> [1] tr control;
}
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := g.NodeByName("clk")
	if g.Nodes[clk].ClockPeriod != 500 {
		t.Errorf("clock period = %d", g.Nodes[clk].ClockPeriod)
	}
	dup, _ := g.NodeByName("dup")
	if g.Nodes[dup].Special != core.SpecialSelectDup {
		t.Error("selectdup kind lost")
	}
	srcID, _ := g.NodeByName("src")
	if len(g.Nodes[srcID].Exec) != 3 {
		t.Errorf("multi-phase exec lost: %v", g.Nodes[srcID].Exec)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                     // no graph
		"graph g {",            // unterminated
		"graph g { bogus x; }", // unknown decl
		"graph g { kernel a; edge a [1] -> [1] b; }",                    // undeclared node
		"graph g { kernel a; kernel a; }",                               // duplicate
		"graph g { clock c; }",                                          // clock without period
		"graph g { kernel a ; kernel b; edge a [1 -> [1] b; }",          // bad rates
		"graph g { param p; kernel a; kernel b; edge a [q] -> [1] b; }", // undeclared param is caught by Validate, not Parse
	}
	for i, src := range cases[:7] {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse: %q", i, src)
		}
	}
	// Case 7 parses but fails validation.
	g, err := Parse(cases[7])
	if err != nil {
		t.Fatalf("case 7 should parse: %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Error("undeclared parameter must fail validation")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, build := range []func() *core.Graph{
		apps.Fig2, apps.Fig4a, apps.Fig4b,
		func() *core.Graph { return apps.OFDMTPDF(apps.DefaultOFDM()) },
		func() *core.Graph { return apps.OFDMCSDF(apps.DefaultOFDM()) },
		func() *core.Graph { return apps.EdgeDetection(500, nil).Graph },
	} {
		g := build()
		text := Format(g)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", g.Name, err, text)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: revalidate: %v", g.Name, err)
		}
		// The round-tripped graph must be analysis-equivalent.
		a1 := analysis.Analyze(g)
		a2 := analysis.Analyze(back)
		if a1.Err != nil || a2.Err != nil {
			t.Fatalf("%s: analysis errs %v / %v", g.Name, a1.Err, a2.Err)
		}
		if a1.Solution.QString() != a2.Solution.QString() {
			t.Errorf("%s: q changed across round trip: %s vs %s",
				g.Name, a1.Solution.QString(), a2.Solution.QString())
		}
		if a1.Bounded != a2.Bounded {
			t.Errorf("%s: boundedness changed across round trip", g.Name)
		}
	}
}

func TestDOT(t *testing.T) {
	dot := DOT(apps.Fig2())
	for _, frag := range []string{
		"digraph", "rankdir=LR", `"C" [shape=diamond]`, `"F" [shape=trapezium]`,
		"style=dashed", `"A" -> "B"`,
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	clockDot := DOT(apps.EdgeDetection(500, nil).Graph)
	if !strings.Contains(clockDot, "doublecircle") {
		t.Error("clock should render as doublecircle")
	}
	if !strings.Contains(clockDot, "house") {
		t.Error("select-duplicate should render as house")
	}
}

func TestFormatStable(t *testing.T) {
	// Format must be deterministic and idempotent through a parse cycle.
	g := apps.Fig2()
	t1 := Format(g)
	back, err := Parse(t1)
	if err != nil {
		t.Fatal(err)
	}
	t2 := Format(back)
	if t1 != t2 {
		t.Errorf("format not stable:\n--- first\n%s\n--- second\n%s", t1, t2)
	}
}

func TestComments(t *testing.T) {
	src := `
# leading comment
graph g { // trailing comment
  kernel a; # comment
  kernel b;
  edge a [1] -> [1] b; // done
}
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 {
		t.Errorf("nodes = %d", len(g.Nodes))
	}
}
