package graphio

import (
	"strings"
	"testing"
)

func TestParseErrorsReportLines(t *testing.T) {
	src := `graph g {
  kernel a;
  bogus b;
}`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}

func TestParseUnterminatedRates(t *testing.T) {
	_, err := Parse("graph g { kernel a; kernel b; edge a [1 -> [1] b; }")
	if err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("want unterminated-bracket error, got %v", err)
	}
}

func TestParseEdgeAttributes(t *testing.T) {
	src := `graph g {
  kernel a; kernel b;
  edge named: a [2] -> [1] b init 4 prio 7;
}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges[0]
	if e.Name != "named" {
		t.Errorf("edge name = %q", e.Name)
	}
	if e.Initial != 4 {
		t.Errorf("init = %d", e.Initial)
	}
	if g.Nodes[e.Dst].Ports[e.DstPort].Priority != 7 {
		t.Errorf("priority = %d", g.Nodes[e.Dst].Ports[e.DstPort].Priority)
	}
}

func TestParseParamDefaultsAndRange(t *testing.T) {
	g, err := Parse(`graph g {
  param p;
  param q = 5;
  param r = 2 range 1..9;
  kernel a; kernel b;
  edge a [p*q*r] -> [1] b;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Params) != 3 {
		t.Fatalf("params = %d", len(g.Params))
	}
	if g.Params[0].Default != 1 || g.Params[1].Default != 5 {
		t.Errorf("defaults wrong: %+v", g.Params)
	}
	if g.Params[2].Min != 1 || g.Params[2].Max != 9 {
		t.Errorf("range wrong: %+v", g.Params[2])
	}
}

func TestParseHyphenatedNames(t *testing.T) {
	g, err := Parse(`graph my-graph {
  kernel node-a; kernel node-b;
  edge node-a [1] -> [1] node-b;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "my-graph" {
		t.Errorf("name = %q", g.Name)
	}
	if _, ok := g.NodeByName("node-a"); !ok {
		t.Error("hyphenated node name lost")
	}
}

func TestParseUnexpectedCharacter(t *testing.T) {
	_, err := Parse("graph g { kernel a; % }")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Errorf("want character error, got %v", err)
	}
}

func TestFormatOmitsZeroDefaults(t *testing.T) {
	g, err := Parse(`graph g {
  kernel a; kernel b;
  edge a [1] -> [1] b;
}`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(g)
	if strings.Contains(out, "init") || strings.Contains(out, "prio") {
		t.Errorf("zero attributes should be omitted:\n%s", out)
	}
}
