package graphio

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// randomGraph builds a small arbitrary-but-valid TPDF graph for round-trip
// fuzzing: a random layered DAG with occasional parametric rates, priorities
// and initial tokens.
func randomGraph(rng *rand.Rand) *core.Graph {
	g := core.NewGraph(fmt.Sprintf("fuzz%d", rng.Intn(1000)))
	par := rng.Intn(2) == 0
	if par {
		g.AddParam("p", int64(rng.Intn(4)+1), 1, 16)
	}
	rate := func() string {
		switch {
		case par && rng.Intn(4) == 0:
			return "[p]"
		case rng.Intn(4) == 0:
			return fmt.Sprintf("[%d,%d]", rng.Intn(3), rng.Intn(3)+1)
		default:
			return fmt.Sprintf("[%d]", rng.Intn(3)+1)
		}
	}
	var prev []core.NodeID
	for l := 0; l < rng.Intn(3)+2; l++ {
		var cur []core.NodeID
		for i := 0; i < rng.Intn(2)+1; i++ {
			k := g.AddKernel(fmt.Sprintf("n%d_%d", l, i), int64(rng.Intn(9)))
			cur = append(cur, k)
			if l > 0 {
				// Use the same rate on both ends so the graph also stays
				// consistent (not required for round-tripping, but keeps
				// the fixture usable for analyses).
				r := rate()
				if _, err := g.Connect(prev[rng.Intn(len(prev))], r, k, r, int64(rng.Intn(3))); err != nil {
					panic(err)
				}
			}
		}
		if l > 0 {
			for _, src := range prev {
				used := false
				for _, e := range g.Edges {
					if e.Src == src {
						used = true
					}
				}
				if !used {
					r := rate()
					if _, err := g.Connect(src, r, cur[0], r, 0); err != nil {
						panic(err)
					}
				}
			}
		}
		prev = cur
	}
	snk := g.AddKernel("zz", 0)
	for _, src := range prev {
		r := rate()
		if _, err := g.Connect(src, r, snk, r, 0); err != nil {
			panic(err)
		}
	}
	return g
}

func TestQuickFormatParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: fixture invalid: %v", trial, err)
		}
		t1 := Format(g)
		back, err := Parse(t1)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, t1)
		}
		t2 := Format(back)
		if t1 != t2 {
			t.Fatalf("trial %d: format not a fixpoint:\n--- first\n%s--- second\n%s", trial, t1, t2)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("trial %d: round-tripped graph invalid: %v", trial, err)
		}
	}
}
