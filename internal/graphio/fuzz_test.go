package graphio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse holds the parser to its two contracts under arbitrary input:
// it never panics, and when it accepts an input, Format is a fixpoint —
// the canonical text reparses to a graph that formats to the same bytes.
// The seed corpus is every shipped .tpdf fixture plus hand-picked corner
// cases (committed under testdata/fuzz/FuzzParse).
func FuzzParse(f *testing.F) {
	if entries, err := os.ReadDir(filepath.Join("..", "..", "graphs")); err == nil {
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".tpdf") {
				continue
			}
			src, err := os.ReadFile(filepath.Join("..", "..", "graphs", e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Add("")
	f.Add("graph g {\n}\n")
	f.Add("graph g { param p = 2 range 1 4; kernel a exec 1; kernel b; edge e1: a [p] -> [2*p] b; }")
	f.Add("graph g { kernel a; edge e1: a [1,0,1] -> [2] a init 2; }")
	f.Add("graph g { clock c period 3; kernel k; edge e1: c [1] -> [1] k control; }")
	f.Add("graph g { kernel a # comment\n; }")
	f.Add("graph \x00 { }")
	f.Add("graph g { kernel a exec 9999999999999999999; }")
	f.Add("graph g { edge e1: a [ -> b; }")

	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(g)
		g2, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output does not reparse: %v\ninput:\n%s\nformatted:\n%s", err, src, text)
		}
		if got := Format(g2); got != text {
			t.Fatalf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
	})
}
