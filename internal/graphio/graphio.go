// Package graphio reads and writes TPDF graphs in a small textual format,
// and exports them as Graphviz DOT. The format covers everything Definition
// 2 needs: parameters with ranges, the node kinds (kernel, control actor,
// clock, select-duplicate, transaction), parametric cyclo-static rate
// sequences, control channels, initial tokens and port priorities.
//
// Example:
//
//	graph fig2 {
//	  param p = 2 range 1..100;
//	  kernel A exec 1;
//	  kernel B exec 1;
//	  control C exec 1;
//	  kernel D exec 1;
//	  kernel E exec 1;
//	  transaction F exec 1;
//	  kernel SNK;
//
//	  edge e1: A [p] -> [1] B;
//	  edge e2: B [1] -> [2] D;
//	  edge e3: B [1] -> [2] C;
//	  edge e4: B [1] -> [1] E;
//	  edge e5: C [2] -> [1,1] F control;
//	  edge e6: D [2] -> [0,2] F prio 1;
//	  edge e7: E [1] -> [1,1] F prio 2;
//	  edge e8: F [1] -> [1] SNK;
//	}
//
// Comments run from '#' or '//' to end of line.
package graphio

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Parse reads a graph description.
func Parse(src string) (*core.Graph, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseGraph()
}

type tokKind int

const (
	tIdent tokKind = iota
	tNumber
	tRates // bracketed [...] text, raw
	tSym   // single-character or arrow symbol
	tEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '[':
			depth := 0
			start := i
			for i < len(src) {
				if src[i] == '[' {
					depth++
				}
				if src[i] == ']' {
					depth--
					if depth == 0 {
						break
					}
				}
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("graphio: line %d: unterminated '['", line)
			}
			i++
			toks = append(toks, token{tRates, src[start:i], line})
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tSym, "->", line})
			i += 2
		case strings.IndexByte("{};:=", c) >= 0:
			toks = append(toks, token{tSym, string(c), line})
			i++
		case c == '.' && i+1 < len(src) && src[i+1] == '.':
			toks = append(toks, token{tSym, "..", line})
			i += 2
		case c >= '0' && c <= '9' || c == '-':
			start := i
			i++
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			toks = append(toks, token{tNumber, src[start:i], line})
		case isIdentByte(c):
			start := i
			for i < len(src) {
				if isIdentByte(src[i]) {
					i++
					continue
				}
				// Interior hyphens are part of names ("ofdm-tpdf") as long
				// as they are not the start of an arrow ("->").
				if src[i] == '-' && i+1 < len(src) && isIdentByte(src[i+1]) {
					i++
					continue
				}
				break
			}
			toks = append(toks, token{tIdent, src[start:i], line})
		default:
			return nil, fmt.Errorf("graphio: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("graphio: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tSym || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tIdent {
		return "", p.errf(t, "expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) expectNumber() (int64, error) {
	t := p.next()
	if t.kind != tNumber {
		return 0, p.errf(t, "expected number, got %q", t.text)
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf(t, "bad number %q", t.text)
	}
	return v, nil
}

func (p *parser) parseGraph() (*core.Graph, error) {
	if kw, err := p.expectIdent(); err != nil || kw != "graph" {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graphio: file must start with 'graph <name>'")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("{"); err != nil {
		return nil, err
	}
	g := core.NewGraph(name)
	for {
		t := p.peek()
		if t.kind == tSym && t.text == "}" {
			p.next()
			break
		}
		if t.kind == tEOF {
			return nil, p.errf(t, "unexpected end of file (missing '}')")
		}
		kw, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "param":
			if err := p.parseParam(g); err != nil {
				return nil, err
			}
		case "kernel", "control", "clock", "transaction", "selectdup", "select_dup":
			if err := p.parseNode(g, kw); err != nil {
				return nil, err
			}
		case "edge":
			if err := p.parseEdge(g); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t, "unknown declaration %q", kw)
		}
	}
	return g, nil
}

func (p *parser) parseParam(g *core.Graph) error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	var def, mn, mx int64 = 1, 0, 0
	if t := p.peek(); t.kind == tSym && t.text == "=" {
		p.next()
		if def, err = p.expectNumber(); err != nil {
			return err
		}
	}
	if t := p.peek(); t.kind == tIdent && t.text == "range" {
		p.next()
		if mn, err = p.expectNumber(); err != nil {
			return err
		}
		if err := p.expectSym(".."); err != nil {
			return err
		}
		if mx, err = p.expectNumber(); err != nil {
			return err
		}
	}
	g.AddParam(name, def, mn, mx)
	return p.expectSym(";")
}

func (p *parser) parseNode(g *core.Graph, kind string) error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := g.NodeByName(name); dup {
		return fmt.Errorf("graphio: duplicate node %q", name)
	}
	var exec []int64
	var period int64
	for {
		t := p.peek()
		if t.kind == tSym && t.text == ";" {
			p.next()
			break
		}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch kw {
		case "exec":
			for p.peek().kind == tNumber {
				v, err := p.expectNumber()
				if err != nil {
					return err
				}
				exec = append(exec, v)
			}
		case "period":
			if period, err = p.expectNumber(); err != nil {
				return err
			}
		default:
			return p.errf(t, "unknown node attribute %q", kw)
		}
	}
	switch kind {
	case "kernel":
		g.AddKernel(name, exec...)
	case "control":
		g.AddControlActor(name, exec...)
	case "clock":
		if period <= 0 {
			return fmt.Errorf("graphio: clock %q needs 'period N'", name)
		}
		g.AddClock(name, period)
	case "transaction":
		g.AddTransaction(name, exec...)
	case "selectdup", "select_dup":
		g.AddSelectDuplicate(name, exec...)
	}
	return nil
}

func (p *parser) parseEdge(g *core.Graph) error {
	// edge [name:] SRC [rates] -> [rates] DST [control|init N|prio N]* ;
	first, err := p.expectIdent()
	if err != nil {
		return err
	}
	edgeName := ""
	src := first
	if t := p.peek(); t.kind == tSym && t.text == ":" {
		p.next()
		edgeName = first
		if src, err = p.expectIdent(); err != nil {
			return err
		}
	}
	prodTok := p.next()
	if prodTok.kind != tRates {
		return p.errf(prodTok, "expected production rates [..], got %q", prodTok.text)
	}
	if err := p.expectSym("->"); err != nil {
		return err
	}
	consTok := p.next()
	if consTok.kind != tRates {
		return p.errf(consTok, "expected consumption rates [..], got %q", consTok.text)
	}
	dst, err := p.expectIdent()
	if err != nil {
		return err
	}
	var init int64
	prio := 0
	isCtl := false
	for {
		t := p.peek()
		if t.kind == tSym && t.text == ";" {
			p.next()
			break
		}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch kw {
		case "control":
			isCtl = true
		case "init":
			if init, err = p.expectNumber(); err != nil {
				return err
			}
		case "prio":
			pv, err := p.expectNumber()
			if err != nil {
				return err
			}
			prio = int(pv)
		default:
			return p.errf(t, "unknown edge attribute %q", kw)
		}
	}
	srcID, ok := g.NodeByName(src)
	if !ok {
		return fmt.Errorf("graphio: edge references undeclared node %q", src)
	}
	dstID, ok := g.NodeByName(dst)
	if !ok {
		return fmt.Errorf("graphio: edge references undeclared node %q", dst)
	}
	var eid core.EdgeID
	if isCtl {
		eid, err = g.ConnectControl(srcID, prodTok.text, dstID, init)
	} else {
		eid, err = g.ConnectPriority(srcID, prodTok.text, dstID, consTok.text, init, prio)
	}
	if err != nil {
		return err
	}
	if edgeName != "" {
		g.Edges[eid].Name = edgeName
	}
	return nil
}
