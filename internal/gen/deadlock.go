package gen

import (
	"fmt"

	"repro/internal/core"
)

// DeadlockCase generates a graph that deadlocks under a channel-capacity
// override of 1 but runs fine at default capacities — the fixture family
// for stall-watchdog tests. The core is a fixed three-node diamond whose
// cyclo-static phases interlock fatally at capacity 1 (A's second-phase
// token to M cannot be produced until B drains A's first edge, but B
// waits on M): the seed varies everything around it — a source chain
// feeding the diamond, a sink chain draining it, and all execution times
// — so watchdog coverage isn't tied to one literal topology. Returns the
// graph and the name of a node inside the deadlocked clique (useful for
// asserting the watchdog names a relevant actor).
func DeadlockCase(seed int64) (*core.Graph, string) {
	rng := newRand(seed)
	g := core.NewGraph(fmt.Sprintf("deadlock_%x", uint64(seed)))

	exec := func() []int64 {
		e := []int64{1 + int64(rng.Intn(3))}
		if rng.Intn(3) == 0 {
			e = append(e, 1+int64(rng.Intn(3)))
		}
		return e
	}

	// Seeded prefix: 0..2 pass-through sources upstream of the diamond.
	nPre := rng.Intn(3)
	var prev core.NodeID = -1
	for i := 0; i < nPre; i++ {
		id := g.AddKernel(fmt.Sprintf("src%d", i), exec()...)
		if prev >= 0 {
			mustConnect(g, prev, "[1]", id, "[1]", 0)
		}
		prev = id
	}

	a := g.AddKernel("A", exec()...)
	m := g.AddKernel("M", exec()...)
	b := g.AddKernel("B", exec()...)
	if prev >= 0 {
		mustConnect(g, prev, "[1]", a, "[1]", 0)
	}
	mustConnect(g, m, "[1]", b, "[1,0]", 0)
	mustConnect(g, a, "[1]", b, "[1]", 0)
	mustConnect(g, a, "[0,1]", m, "[1]", 0)

	// Seeded suffix: 0..2 pass-through sinks downstream of the diamond.
	nPost := rng.Intn(3)
	prev = b
	for i := 0; i < nPost; i++ {
		id := g.AddKernel(fmt.Sprintf("dst%d", i), exec()...)
		mustConnect(g, prev, "[1]", id, "[1]", 0)
		prev = id
	}
	return g, "B"
}

func mustConnect(g *core.Graph, src core.NodeID, prodRates string, dst core.NodeID, consRates string, initial int64) {
	if _, err := g.Connect(src, prodRates, dst, consRates, initial); err != nil {
		panic(fmt.Sprintf("gen: connect: %v", err))
	}
}
