package gen

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Rebind is one scheduled reconfiguration: after transaction boundary At
// (counting completed boundaries), rebind the listed parameters.
type Rebind struct {
	At     int64
	Params map[string]int64
}

// FaultSite is one scheduled behavior panic: node's k-th firing.
type FaultSite struct {
	Node string
	K    int64
}

// Schedule is a generated execution plan for one graph: how many
// iterations to run, at which valuation, which rebinds and faults to
// inject along the way, and — for the serve harness — the pump cadence
// and crash point. Schedules render to a canonical text (String) and
// parse back (ParseSchedule), so a failing case commits to the corpus as
// a pair of plain files.
type Schedule struct {
	Seed       int64
	Iterations int64
	// Base is the initial parameter valuation (full: every declared
	// parameter appears).
	Base map[string]int64
	// Rebinds apply in order; At values are strictly increasing.
	Rebinds []Rebind
	// Pumps partitions Iterations for the serve harness (sums to
	// Iterations).
	Pumps []int64
	// Panics are behavior panic sites, injected only in the
	// recovery-under-test run.
	Panics []FaultSite
	// RebindAborts lists completed-boundary counts whose rebind is
	// forced to abort (only meaningful when Rebinds is non-empty).
	RebindAborts []int64
	// CrashAfterPump is the pump index after which the serve harness
	// abandons the manager (-1: no crash).
	CrashAfterPump int
}

// ScheduleConfig bounds schedule generation.
type ScheduleConfig struct {
	// MaxIterations caps the run length (default 6).
	MaxIterations int64
	// NoRebinds suppresses reconfiguration (and rebind aborts).
	NoRebinds bool
	// NoFaults suppresses panic sites and rebind aborts.
	NoFaults bool
}

// NewSchedule deterministically generates a schedule for g: same seed,
// graph and config, byte-identical String output.
func NewSchedule(seed int64, g *core.Graph, cfg ScheduleConfig) *Schedule {
	rng := newRand(seed)
	maxIters := cfg.MaxIterations
	if maxIters <= 0 {
		maxIters = 6
	}
	s := &Schedule{
		Seed:           seed,
		Iterations:     1 + rng.Int63n(maxIters),
		Base:           map[string]int64{},
		CrashAfterPump: -1,
	}

	// Base valuation: a draw within each declared range. Parameter order
	// follows the declaration; Base is rendered sorted, but the draws
	// themselves must not depend on render order.
	for _, p := range g.Params {
		lo, hi := p.Min, p.Max
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		s.Base[p.Name] = lo + rng.Int63n(hi-lo+1)
	}

	// Rebinds: up to 2, at strictly increasing boundaries inside the run.
	if !cfg.NoRebinds && len(g.Params) > 0 && s.Iterations >= 2 {
		nReb := rng.Intn(3)
		at := int64(0)
		for i := 0; i < nReb; i++ {
			at += 1 + rng.Int63n(2)
			if at >= s.Iterations {
				break
			}
			rb := Rebind{At: at, Params: map[string]int64{}}
			for _, p := range g.Params {
				if rng.Intn(2) == 0 {
					continue
				}
				lo, hi := p.Min, p.Max
				if lo < 1 {
					lo = 1
				}
				if hi < lo {
					hi = lo
				}
				rb.Params[p.Name] = lo + rng.Int63n(hi-lo+1)
			}
			if len(rb.Params) == 0 {
				// An empty rebind is a no-op barrier; keep it anyway so
				// the harness exercises the hook with nothing to change.
				rb.Params[g.Params[0].Name] = s.Base[g.Params[0].Name]
			}
			s.Rebinds = append(s.Rebinds, rb)
		}
	}

	// Pump cadence: split Iterations into 1..3 chunks.
	rem := s.Iterations
	for rem > 0 {
		var chunk int64
		if len(s.Pumps) == 2 || rem == 1 {
			chunk = rem
		} else {
			chunk = 1 + rng.Int63n(rem)
		}
		s.Pumps = append(s.Pumps, chunk)
		rem -= chunk
	}
	if len(s.Pumps) > 1 {
		s.CrashAfterPump = rng.Intn(len(s.Pumps) - 1)
	}

	if !cfg.NoFaults {
		// Panic sites: 0..2, at sink-node firings within the first
		// iteration's worth of firings (K counts that node's firings).
		sinks := SinkNodes(g)
		nPan := rng.Intn(3)
		for i := 0; i < nPan && len(sinks) > 0; i++ {
			s.Panics = append(s.Panics, FaultSite{
				Node: sinks[rng.Intn(len(sinks))],
				K:    rng.Int63n(3),
			})
		}
		// Rebind aborts: force at most one scheduled rebind to abort.
		if len(s.Rebinds) > 0 && rng.Intn(2) == 0 {
			s.RebindAborts = append(s.RebindAborts, s.Rebinds[rng.Intn(len(s.Rebinds))].At)
		}
	}
	sort.Slice(s.Panics, func(i, j int) bool {
		if s.Panics[i].Node != s.Panics[j].Node {
			return s.Panics[i].Node < s.Panics[j].Node
		}
		return s.Panics[i].K < s.Panics[j].K
	})
	return s
}

// String renders the schedule in its canonical text form. Maps render
// with sorted keys; the output is byte-stable for a given schedule.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule v1 seed %d\n", s.Seed)
	fmt.Fprintf(&b, "iterations %d\n", s.Iterations)
	for _, k := range sortedKeys(s.Base) {
		fmt.Fprintf(&b, "base %s=%d\n", k, s.Base[k])
	}
	for _, rb := range s.Rebinds {
		fmt.Fprintf(&b, "rebind %d", rb.At)
		for _, k := range sortedKeys(rb.Params) {
			fmt.Fprintf(&b, " %s=%d", k, rb.Params[k])
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Pumps {
		fmt.Fprintf(&b, "pump %d\n", p)
	}
	for _, f := range s.Panics {
		fmt.Fprintf(&b, "panic %s %d\n", f.Node, f.K)
	}
	for _, at := range s.RebindAborts {
		fmt.Fprintf(&b, "rebindabort %d\n", at)
	}
	if s.CrashAfterPump >= 0 {
		fmt.Fprintf(&b, "crash %d\n", s.CrashAfterPump)
	}
	return b.String()
}

// ParseSchedule parses the canonical text form; ParseSchedule(s.String())
// round-trips.
func ParseSchedule(src string) (*Schedule, error) {
	s := &Schedule{Base: map[string]int64{}, CrashAfterPump: -1}
	sc := bufio.NewScanner(strings.NewReader(src))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		bad := func(why string) error {
			return fmt.Errorf("gen: schedule line %d: %s: %q", line, why, text)
		}
		switch fields[0] {
		case "schedule":
			if len(fields) != 4 || fields[1] != "v1" || fields[2] != "seed" {
				return nil, bad("want 'schedule v1 seed N'")
			}
			v, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, bad("bad seed")
			}
			s.Seed = v
		case "iterations":
			if len(fields) != 2 {
				return nil, bad("want 'iterations N'")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || v < 1 {
				return nil, bad("bad iteration count")
			}
			s.Iterations = v
		case "base":
			if len(fields) != 2 {
				return nil, bad("want 'base name=N'")
			}
			k, v, err := parseAssign(fields[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			s.Base[k] = v
		case "rebind":
			if len(fields) < 2 {
				return nil, bad("want 'rebind AT name=N ...'")
			}
			at, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, bad("bad rebind boundary")
			}
			rb := Rebind{At: at, Params: map[string]int64{}}
			for _, f := range fields[2:] {
				k, v, err := parseAssign(f)
				if err != nil {
					return nil, bad(err.Error())
				}
				rb.Params[k] = v
			}
			s.Rebinds = append(s.Rebinds, rb)
		case "pump":
			if len(fields) != 2 {
				return nil, bad("want 'pump N'")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || v < 1 {
				return nil, bad("bad pump size")
			}
			s.Pumps = append(s.Pumps, v)
		case "panic":
			if len(fields) != 3 {
				return nil, bad("want 'panic NODE K'")
			}
			k, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || k < 0 {
				return nil, bad("bad firing index")
			}
			s.Panics = append(s.Panics, FaultSite{Node: fields[1], K: k})
		case "rebindabort":
			if len(fields) != 2 {
				return nil, bad("want 'rebindabort AT'")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, bad("bad abort boundary")
			}
			s.RebindAborts = append(s.RebindAborts, v)
		case "crash":
			if len(fields) != 2 {
				return nil, bad("want 'crash PUMPINDEX'")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, bad("bad crash index")
			}
			s.CrashAfterPump = v
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Iterations < 1 {
		return nil, fmt.Errorf("gen: schedule missing 'iterations' line")
	}
	return s, nil
}

func parseAssign(s string) (string, int64, error) {
	k, vs, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return "", 0, fmt.Errorf("want name=N, got %q", s)
	}
	v, err := strconv.ParseInt(vs, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q", s)
	}
	return k, v, nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
