// Package gen is the property-based test generator behind tpdf/fuzz: a
// seeded, fully deterministic source of valid TPDF graphs (random
// topologies, parametric cyclo-static rates, cycles with initial tokens,
// special data-distribution kernels) and of execution schedules over them
// (rebind sequences, pump cadences, fault-injection sites, crash points).
//
// Validity is by construction, not by rejection sampling: every node is
// assigned a designed repetition count and every edge's production and
// consumption rates are derived from the two endpoint counts so the
// balance equations hold at every parameter valuation (parametric edges
// multiply both ends by the same parameter, keeping the ratio fixed).
// Back edges carry one designed iteration's worth of initial tokens, so
// cycles are live, and rate phases are only split on nodes whose designed
// count the phase cycle divides. The result is always consistent, live
// and Theorem 2-bounded — asserted over a seed sweep in gen_test.go — so
// a differential harness downstream never wastes a case on an invalid
// graph.
//
// Determinism is the load-bearing property: one seed produces one graph,
// byte-identical under graphio.Format, and one schedule, byte-identical
// under Schedule.String — re-running a failed seed reproduces the failure
// exactly, which is what makes shrinking and corpus replay possible. To
// keep that true the package draws all randomness from a single
// rand.Source per artifact and never iterates a Go map.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// GraphConfig bounds graph generation. The zero value is a usable
// default: a seeded 3..8-node topology with up to two parameters, cycles
// and special kernels allowed.
type GraphConfig struct {
	// Nodes fixes the node count; 0 draws it from [3, 8].
	Nodes int
	// MaxParams caps declared parameters (default 2; negative means 0).
	MaxParams int
	// NoCycles suppresses back edges (cycles with initial tokens).
	NoCycles bool
	// NoSpecials suppresses Transaction / Select-duplicate kernels.
	NoSpecials bool
	// NoPhases suppresses multi-phase (cyclo-static) rate sequences.
	NoPhases bool
}

// shapes the topology planner can draw.
const (
	shapeChain = iota
	shapeDAG
	shapeFanOutIn
	shapeCount
)

// Graph deterministically generates a valid TPDF graph: same seed and
// config, byte-identical graphio.Format text. The graph is consistent,
// live and bounded at every valuation within its declared parameter
// ranges.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func Graph(seed int64, cfg GraphConfig) *core.Graph {
	rng := newRand(seed)
	n := cfg.Nodes
	if n <= 0 {
		n = 3 + rng.Intn(6)
	}
	if n < 2 {
		n = 2
	}
	maxParams := cfg.MaxParams
	if maxParams == 0 {
		maxParams = 2
	}
	if maxParams < 0 {
		maxParams = 0
	}

	g := core.NewGraph(fmt.Sprintf("gen_%x", uint64(seed)))

	// Parameters: small ranges keep token totals (and therefore ring
	// sizes and sim event counts) bounded across the whole range.
	nParams := 0
	if maxParams > 0 {
		nParams = rng.Intn(maxParams + 1)
	}
	type param struct {
		name string
	}
	params := make([]param, nParams)
	for i := range params {
		name := fmt.Sprintf("p%d", i)
		min := int64(1)
		max := min + 1 + rng.Int63n(3) // 2..4
		def := min + rng.Int63n(max-min+1)
		g.AddParam(name, def, min, max)
		params[i] = param{name: name}
	}

	// Designed repetition counts. Even counts admit 2-phase rate splits.
	q := make([]int64, n)
	for i := range q {
		q[i] = 1 + int64(rng.Intn(4)) // 1..4
	}

	// Topology plan: forward edges only (i < j), so the base graph is a
	// DAG and a topological order is a valid schedule by construction.
	type plannedEdge struct {
		src, dst int
		back     bool
	}
	var edges []plannedEdge
	shape := rng.Intn(shapeCount)
	switch {
	case shape == shapeFanOutIn && n >= 4:
		// 0 fans out to 1..n-2, all fan in to n-1.
		for j := 1; j < n-1; j++ {
			edges = append(edges, plannedEdge{0, j, false})
			edges = append(edges, plannedEdge{j, n - 1, false})
		}
	case shape == shapeChain:
		for j := 1; j < n; j++ {
			edges = append(edges, plannedEdge{j - 1, j, false})
		}
	default:
		// Random DAG: every node past the first picks 1..2 predecessors.
		for j := 1; j < n; j++ {
			preds := 1
			if j > 1 && rng.Intn(2) == 0 {
				preds = 2
			}
			prev := -1
			for k := 0; k < preds; k++ {
				p := rng.Intn(j)
				if p == prev {
					continue
				}
				edges = append(edges, plannedEdge{p, j, false})
				prev = p
			}
		}
	}

	// Optional back edge: from a later node to an earlier one, primed
	// with a full designed iteration of initial tokens so the cycle is
	// live and returns to its initial state each iteration.
	if !cfg.NoCycles && n >= 3 && rng.Intn(2) == 0 {
		dst := rng.Intn(n - 1)
		src := dst + 1 + rng.Intn(n-1-dst)
		edges = append(edges, plannedEdge{src, dst, true})
	}

	// Node kinds: in/out degrees are known now, so special
	// data-distribution kernels land only where their shape validates (a
	// Transaction joins >= 2 inputs into exactly one output, a
	// Select-duplicate splits exactly one input into >= 2 outputs).
	// Without control channels both fire wait-all, which keeps every
	// tier's semantics aligned while still exercising the special node
	// paths in format, analysis and lowering.
	ins := make([]int, n)
	outs := make([]int, n)
	for _, e := range edges {
		outs[e.src]++
		ins[e.dst]++
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		var exec []int64
		exec = append(exec, 1+int64(rng.Intn(3)))
		if rng.Intn(4) == 0 {
			exec = append(exec, 1+int64(rng.Intn(3)))
		}
		switch {
		case !cfg.NoSpecials && ins[i] >= 2 && outs[i] == 1 && rng.Intn(3) == 0:
			g.AddTransaction(name, exec...)
		case !cfg.NoSpecials && ins[i] == 1 && outs[i] >= 2 && rng.Intn(3) == 0:
			g.AddSelectDuplicate(name, exec...)
		default:
			g.AddKernel(name, exec...)
		}
	}

	// Rates: per-iteration token total T = c * lcm(q_src, q_dst) splits
	// into integer per-firing rates on both ends. A parametric edge
	// multiplies both ends by the same parameter, so the ratio — and with
	// it the repetition vector — is valuation-independent.
	for _, e := range edges {
		l := lcm(q[e.src], q[e.dst])
		c := int64(1 + rng.Intn(2))
		t := c * l
		prod := t / q[e.src]
		cons := t / q[e.dst]

		var pName string
		if !e.back && nParams > 0 && rng.Intn(3) == 0 {
			pName = params[rng.Intn(nParams)].name
		}
		prodStr := rateString(rng, prod, q[e.src], pName, cfg.NoPhases || e.back)
		consStr := rateString(rng, cons, q[e.dst], pName, cfg.NoPhases || e.back)

		var initial int64
		if e.back {
			initial = t
		}
		if _, err := g.Connect(core.NodeID(e.src), prodStr, core.NodeID(e.dst), consStr, initial); err != nil {
			// Construction guarantees parseable rate strings; any error
			// here is a generator bug worth failing loudly on.
			panic(fmt.Sprintf("gen: connect %d->%d: %v", e.src, e.dst, err))
		}
	}
	return g
}

// rateString renders one port's rate sequence. Constant rates on nodes
// with an even designed count may split into two phases with the same
// sum, so the balance equations see the same per-iteration total.
func rateString(rng *rand.Rand, rate, q int64, param string, noPhases bool) string {
	if param != "" {
		if rate == 1 {
			return "[" + param + "]"
		}
		return fmt.Sprintf("[%d*%s]", rate, param)
	}
	if !noPhases && q%2 == 0 && rate >= 1 && rng.Intn(3) == 0 {
		d := rng.Int63n(rate + 1)
		return fmt.Sprintf("[%d,%d]", rate-d, rate+d)
	}
	return fmt.Sprintf("[%d]", rate)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// SinkNodes lists the nodes the harness attaches recording behaviors to:
// the graph's sinks (no outgoing edges), or every node when a cycle
// leaves no sinks. Deterministic: node-declaration order.
func SinkNodes(g *core.Graph) []string {
	hasOut := make([]bool, len(g.Nodes))
	for _, e := range g.Edges {
		hasOut[e.Src] = true
	}
	var sinks []string
	for i, n := range g.Nodes {
		if !hasOut[i] {
			sinks = append(sinks, n.Name)
		}
	}
	if len(sinks) == 0 {
		for _, n := range g.Nodes {
			sinks = append(sinks, n.Name)
		}
	}
	return sinks
}
