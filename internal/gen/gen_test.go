package gen

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/graphio"
)

// Same seed, same config → byte-identical graph text and schedule text.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g1 := Graph(seed, GraphConfig{})
		g2 := Graph(seed, GraphConfig{})
		t1, t2 := graphio.Format(g1), graphio.Format(g2)
		if t1 != t2 {
			t.Fatalf("seed %d: graph text differs:\n%s\n---\n%s", seed, t1, t2)
		}
		s1 := NewSchedule(seed, g1, ScheduleConfig{})
		s2 := NewSchedule(seed, g2, ScheduleConfig{})
		if s1.String() != s2.String() {
			t.Fatalf("seed %d: schedule text differs:\n%s\n---\n%s", seed, s1, s2)
		}
	}
}

// Every generated graph is valid: parses back from its own text, is
// consistent, live, and Theorem 2-bounded.
func TestGeneratedGraphsValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		g := Graph(seed, GraphConfig{})
		text := graphio.Format(g)
		back, err := graphio.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: generated graph does not parse: %v\n%s", seed, err, text)
		}
		if got := graphio.Format(back); got != text {
			t.Fatalf("seed %d: format not a fixpoint:\n%s\n---\n%s", seed, text, got)
		}
		rep := analysis.Analyze(g)
		if !rep.Consistent {
			t.Fatalf("seed %d: inconsistent: %v\n%s", seed, rep.Err, text)
		}
		if !rep.Live {
			t.Fatalf("seed %d: not live: %v\n%s", seed, rep.Err, text)
		}
		if !rep.Bounded {
			t.Fatalf("seed %d: not bounded: %v\n%s", seed, rep.Err, text)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		g := Graph(seed, GraphConfig{})
		s := NewSchedule(seed, g, ScheduleConfig{})
		text := s.String()
		back, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("seed %d: schedule does not parse: %v\n%s", seed, err, text)
		}
		if got := back.String(); got != text {
			t.Fatalf("seed %d: schedule round-trip differs:\n%s\n---\n%s", seed, text, got)
		}
		var pumped int64
		for _, p := range s.Pumps {
			pumped += p
		}
		if pumped != s.Iterations {
			t.Fatalf("seed %d: pumps sum %d != iterations %d", seed, pumped, s.Iterations)
		}
		for _, rb := range s.Rebinds {
			if rb.At < 1 || rb.At >= s.Iterations {
				t.Fatalf("seed %d: rebind boundary %d outside (0,%d)", seed, rb.At, s.Iterations)
			}
		}
	}
}

func TestScheduleParseErrors(t *testing.T) {
	cases := []string{
		"",                        // missing iterations
		"iterations 0\n",          // bad count
		"iterations 2\nbase p0\n", // malformed assignment
		"iterations 2\nbogus 1\n", // unknown directive
		"iterations 2\npump x\n",  // non-numeric
	}
	for _, src := range cases {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("ParseSchedule(%q): want error, got nil", src)
		}
	}
}

func TestDeadlockCaseShape(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, victim := DeadlockCase(seed)
		if _, ok := g.NodeByName(victim); !ok {
			t.Fatalf("seed %d: victim %q not in graph", seed, victim)
		}
		rep := analysis.Analyze(g)
		if !rep.Consistent || !rep.Live || !rep.Bounded {
			t.Fatalf("seed %d: deadlock case must be statically valid (deadlock comes from the capacity override): %+v",
				seed, rep.Err)
		}
		t1, _ := DeadlockCase(seed)
		if graphio.Format(g) != graphio.Format(t1) {
			t.Fatalf("seed %d: DeadlockCase not deterministic", seed)
		}
	}
}

// Config knobs actually suppress what they claim to.
func TestConfigKnobs(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := Graph(seed, GraphConfig{NoCycles: true, NoSpecials: true, NoPhases: true, MaxParams: -1})
		text := graphio.Format(g)
		if strings.Contains(text, "param ") {
			t.Fatalf("seed %d: MaxParams<0 still declared params:\n%s", seed, text)
		}
		if strings.Contains(text, "init ") {
			t.Fatalf("seed %d: NoCycles still produced initial tokens:\n%s", seed, text)
		}
		if strings.Contains(text, "transaction ") || strings.Contains(text, "selectdup ") {
			t.Fatalf("seed %d: NoSpecials still produced specials:\n%s", seed, text)
		}
	}
}
