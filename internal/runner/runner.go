// Package runner executes TPDF graphs at the payload level: real data
// values flow across the channels while firings follow a valid sequential
// schedule (PASS) of the instantiated graph. It complements internal/sim —
// sim is token-count- and time-accurate, runner is value-accurate — and is
// what the examples use to push images and samples through the paper's
// application graphs.
package runner

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/symb"
)

// Firing gives a behavior access to one firing's tokens. Both executors
// (the sequential runner and the concurrent engine) reuse the Firing and
// its payload slices across firings of the same node: behaviors may keep
// the payload values, but must not retain f, f.In, f.Out or the slices in
// them past the firing.
type Firing struct {
	// Node is the firing node's name; K is the 0-based firing index.
	Node string
	K    int64
	// In holds consumed payloads per input port name.
	In map[string][]any
	// Out collects produced payloads per output port name; the runner
	// checks counts against the port rates.
	Out map[string][]any
}

// Produce appends payloads to an output port.
func (f *Firing) Produce(port string, values ...any) {
	f.Out[port] = append(f.Out[port], values...)
}

// Behavior computes one firing: read f.In, fill f.Out.
type Behavior func(f *Firing) error

// Config configures a payload run.
type Config struct {
	Graph *core.Graph
	Env   symb.Env
	// Context, when non-nil, cancels the run: it is polled between
	// firings and its error returned once it is done.
	Context context.Context
	// Behaviors maps node names to their firing functions. Nodes without a
	// behavior forward nothing (their produced tokens carry nil payloads),
	// which is fine for sources/sinks that only exist for rate structure.
	Behaviors map[string]Behavior
	// Iterations repeats the schedule (default 1).
	Iterations int64
}

// Result reports a payload run.
type Result struct {
	// Firings counts executed firings per node name.
	Firings map[string]int64
	// Remaining holds leftover payloads per edge name after the run.
	Remaining map[string][]any
}

// Run executes the configured number of iterations sequentially.
func Run(cfg Config) (*Result, error) {
	g := cfg.Graph
	cg, low, err := g.Instantiate(cfg.Env)
	if err != nil {
		return nil, err
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, err
	}
	sched, err := cg.BuildSchedule(sol, csdf.Demand)
	if err != nil {
		return nil, fmt.Errorf("runner: no sequential schedule: %v", err)
	}

	// Channel payload queues, indexed by csdf edge index.
	queues := make([][]any, len(cg.Edges))
	for ei := range cg.Edges {
		for k := int64(0); k < cg.Edges[ei].Initial; k++ {
			queues[ei] = append(queues[ei], nil)
		}
	}
	// Per node: edges in/out with port names.
	type portEdge struct {
		edge int
		port string
	}
	ins := make([][]portEdge, len(g.Nodes))
	outs := make([][]portEdge, len(g.Nodes))
	for ei, e := range g.Edges {
		ci := low.EdgeOf[ei]
		ins[e.Dst] = append(ins[e.Dst], portEdge{ci, g.Nodes[e.Dst].Ports[e.DstPort].Name})
		outs[e.Src] = append(outs[e.Src], portEdge{ci, g.Nodes[e.Src].Ports[e.SrcPort].Name})
	}

	// Reusable firing contexts, materialized only for nodes that have a
	// behavior: token-only nodes consume unobserved and emit nil
	// placeholders without ever building a Firing.
	behaviors := make([]Behavior, len(g.Nodes))
	scratches := make([]*Scratch, len(g.Nodes))
	for id, n := range g.Nodes {
		b := cfg.Behaviors[n.Name]
		if b == nil {
			continue
		}
		behaviors[id] = b
		inPorts := make([]string, len(ins[id]))
		for i, pe := range ins[id] {
			inPorts[i] = pe.port
		}
		outPorts := make([]string, len(outs[id]))
		for i, pe := range outs[id] {
			outPorts[i] = pe.port
		}
		scratches[id] = NewScratch(n.Name, inPorts, outPorts)
	}

	res := &Result{Firings: map[string]int64{}, Remaining: map[string][]any{}}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	fired := make([]int64, len(g.Nodes))
	for it := int64(0); it < iters; it++ {
		for _, actor := range sched.Order {
			if cfg.Context != nil {
				select {
				case <-cfg.Context.Done():
					return nil, cfg.Context.Err()
				default:
				}
			}
			node := actor // lowering is index-preserving; keep it explicit
			name := g.Nodes[node].Name
			k := fired[node]
			b := behaviors[node]
			if b == nil {
				// Token-only node: consume the input rates, produce nil
				// payloads at the output rates.
				for _, pe := range ins[node] {
					rate := cg.Edges[pe.edge].ConsAt(k)
					if int64(len(queues[pe.edge])) < rate {
						return nil, fmt.Errorf("runner: %s firing %d: edge %s underflow (%d < %d)",
							name, k, cg.Edges[pe.edge].Name, len(queues[pe.edge]), rate)
					}
					queues[pe.edge] = queues[pe.edge][rate:]
				}
				for _, pe := range outs[node] {
					rate := cg.Edges[pe.edge].ProdAt(k)
					for j := int64(0); j < rate; j++ {
						queues[pe.edge] = append(queues[pe.edge], nil)
					}
				}
				fired[node]++
				res.Firings[name]++
				continue
			}
			f := scratches[node].Begin(k)
			// Consume.
			for _, pe := range ins[node] {
				rate := cg.Edges[pe.edge].ConsAt(k)
				if int64(len(queues[pe.edge])) < rate {
					return nil, fmt.Errorf("runner: %s firing %d: edge %s underflow (%d < %d)",
						name, k, cg.Edges[pe.edge].Name, len(queues[pe.edge]), rate)
				}
				f.In[pe.port] = append(f.In[pe.port], queues[pe.edge][:rate]...)
				queues[pe.edge] = queues[pe.edge][rate:]
			}
			// Compute.
			if err := b(f); err != nil {
				return nil, fmt.Errorf("runner: %s firing %d: %v", name, k, err)
			}
			// Produce, checking counts.
			for _, pe := range outs[node] {
				rate := cg.Edges[pe.edge].ProdAt(k)
				vals := f.Out[pe.port]
				switch {
				case int64(len(vals)) == rate:
					queues[pe.edge] = append(queues[pe.edge], vals...)
				case len(vals) == 0:
					// No behavior output: emit nil payloads to keep the
					// token count right.
					for j := int64(0); j < rate; j++ {
						queues[pe.edge] = append(queues[pe.edge], nil)
					}
				default:
					return nil, fmt.Errorf("runner: %s firing %d: port %s produced %d payloads, rate is %d",
						name, k, pe.port, len(vals), rate)
				}
			}
			fired[node]++
			res.Firings[name]++
		}
	}
	for ei, q := range queues {
		if len(q) > 0 {
			res.Remaining[cg.Edges[ei].Name] = q
		}
	}
	return res, nil
}
