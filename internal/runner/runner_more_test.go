package runner

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/symb"
)

func TestMultiPortJoin(t *testing.T) {
	// Two sources feed a join that concatenates payloads port by port.
	g := core.NewGraph("join")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	j := g.AddKernel("j")
	if _, err := g.Connect(a, "[1]", j, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[1]", j, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	var got string
	_, err := Run(Config{
		Graph: g,
		Behaviors: map[string]Behavior{
			"a": func(f *Firing) error { f.Produce("o0", "left"); return nil },
			"b": func(f *Firing) error { f.Produce("o0", "right"); return nil },
			"j": func(f *Firing) error {
				got = f.In["i0"][0].(string) + "+" + f.In["i1"][0].(string)
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "left+right" {
		t.Errorf("join saw %q", got)
	}
}

func TestBehaviorErrorPropagates(t *testing.T) {
	g := core.NewGraph("err")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{
		Graph: g,
		Behaviors: map[string]Behavior{
			"b": func(f *Firing) error { return errBoom },
		},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("behavior error lost: %v", err)
	}
}

type boomError struct{}

func (boomError) Error() string { return "boom" }

var errBoom = boomError{}

func TestInitialTokensVisibleAsNil(t *testing.T) {
	g := core.NewGraph("init")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[1]", b, "[1]", 2); err != nil {
		t.Fatal(err)
	}
	seen := 0
	_, err := Run(Config{
		Graph: g,
		Behaviors: map[string]Behavior{
			"b": func(f *Firing) error {
				seen += len(f.In["i0"])
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One iteration: b fires once (q=1), consuming one token (an initial
	// nil placeholder or a's output depending on order; count is 1).
	if seen != 1 {
		t.Errorf("b consumed %d payloads, want 1", seen)
	}
}

func TestParametricPayloadRun(t *testing.T) {
	// The Fig. 2 graph at p=2 runs at payload level; F receives its control
	// token as a consumed payload on the control port.
	g := apps.Fig2()
	counts := map[string]int{}
	res, err := Run(Config{
		Graph: g,
		Env:   symb.Env{"p": 2},
		Behaviors: map[string]Behavior{
			"F": func(f *Firing) error {
				counts["ctl"] += len(f.In["ctl"])
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["F"] != 2 {
		t.Errorf("F fired %d, want 2", res.Firings["F"])
	}
	if counts["ctl"] != 2 {
		t.Errorf("F consumed %d control tokens, want 2", counts["ctl"])
	}
	if len(res.Remaining) != 0 {
		t.Errorf("payload leftovers: %v", res.Remaining)
	}
}
