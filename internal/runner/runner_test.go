package runner

import (
	"testing"

	"repro/internal/core"
)

func TestPayloadPipeline(t *testing.T) {
	// src emits 1..3 per firing (rate 3), doubler doubles each, sink sums.
	g := core.NewGraph("pipe")
	src := g.AddKernel("src")
	dbl := g.AddKernel("dbl")
	snk := g.AddKernel("snk")
	if _, err := g.Connect(src, "[3]", dbl, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(dbl, "[1]", snk, "[3]", 0); err != nil {
		t.Fatal(err)
	}
	var sum int
	res, err := Run(Config{
		Graph: g,
		Behaviors: map[string]Behavior{
			"src": func(f *Firing) error {
				f.Produce("o0", 1, 2, 3)
				return nil
			},
			"dbl": func(f *Firing) error {
				v := f.In["i0"][0].(int)
				f.Produce("o0", v*2)
				return nil
			},
			"snk": func(f *Firing) error {
				for _, v := range f.In["i0"] {
					sum += v.(int)
				}
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 12 {
		t.Errorf("sum = %d, want 12", sum)
	}
	if res.Firings["dbl"] != 3 {
		t.Errorf("dbl fired %d, want 3", res.Firings["dbl"])
	}
	if len(res.Remaining) != 0 {
		t.Errorf("leftover payloads: %v", res.Remaining)
	}
}

func TestProduceCountChecked(t *testing.T) {
	g := core.NewGraph("bad")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[2]", b, "[2]", 0); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{
		Graph: g,
		Behaviors: map[string]Behavior{
			"a": func(f *Firing) error {
				f.Produce("o0", 1) // rate is 2
				return nil
			},
		},
	})
	if err == nil {
		t.Fatal("wrong production count must fail")
	}
}

func TestNilBehaviorsForwardTokens(t *testing.T) {
	g := core.NewGraph("nil")
	a := g.AddKernel("a")
	b := g.AddKernel("b")
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Graph: g, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["b"] != 4 {
		t.Errorf("b fired %d, want 4", res.Firings["b"])
	}
}

func TestMultiIterationState(t *testing.T) {
	// A stateful accumulator across iterations.
	g := core.NewGraph("acc")
	src := g.AddKernel("src")
	acc := g.AddKernel("acc")
	if _, err := g.Connect(src, "[1]", acc, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	total := 0
	n := 0
	_, err := Run(Config{
		Graph:      g,
		Iterations: 5,
		Behaviors: map[string]Behavior{
			"src": func(f *Firing) error { n++; f.Produce("o0", n); return nil },
			"acc": func(f *Firing) error { total += f.In["i0"][0].(int); return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Errorf("total = %d, want 15", total)
	}
}
