package runner

// Scratch is a reusable firing context for one node: the In/Out maps are
// materialized once with the node's port names, and Begin resets them
// between firings by truncating the payload slices in place — no maps, no
// slice headers, no Firing values are allocated on the warm path.
//
// The price of reuse is a lifetime rule shared by both executors: the
// payload slices reachable through f.In and f.Out are valid only for the
// duration of the firing. Behaviors may keep the payload *values* (they are
// copied into the channel queues), but must not retain the slices
// themselves across firings.
type Scratch struct {
	f        Firing
	inPorts  []string
	outPorts []string
}

// NewScratch builds the scratch for a node with the given port names (in
// wiring order; duplicates are harmless).
func NewScratch(node string, inPorts, outPorts []string) *Scratch {
	s := &Scratch{
		inPorts:  inPorts,
		outPorts: outPorts,
		f: Firing{
			Node: node,
			In:   make(map[string][]any, len(inPorts)),
			Out:  make(map[string][]any, len(outPorts)),
		},
	}
	for _, p := range inPorts {
		s.f.In[p] = nil
	}
	for _, p := range outPorts {
		s.f.Out[p] = nil
	}
	return s
}

// Begin resets the scratch for firing k and returns the Firing to pass to
// the behavior. Every port slice is truncated to length zero with its
// backing array retained, so steady-state firings allocate nothing.
func (s *Scratch) Begin(k int64) *Firing {
	s.f.K = k
	for _, p := range s.inPorts {
		if in := s.f.In[p]; len(in) > 0 {
			s.f.In[p] = in[:0]
		}
	}
	for _, p := range s.outPorts {
		if out := s.f.Out[p]; len(out) > 0 {
			s.f.Out[p] = out[:0]
		}
	}
	return &s.f
}

// SetIn installs the consumed payloads for one input port. The slice is
// owned by the caller's transport scratch and follows the firing-lifetime
// rule above.
func (s *Scratch) SetIn(port string, vals []any) { s.f.In[port] = vals }
