package sched

import (
	"repro/internal/csdf"
)

// PruneForModes applies the Actor Dependence Function rule of §III-D: when
// a kernel is fired in a mode where some of its input edges are rejected,
// the dependencies through those edges disappear, and producer firings whose
// results are no longer consumed by anyone are cancelled transitively.
//
// rejected flags csdf edge indices whose tokens the consumer's selected mode
// discards. keep flags actors that must never be pruned (sources, sinks,
// control actors). It returns a new precedence relation containing only the
// firings that remain necessary, plus the mapping from new node ids to old.
func PruneForModes(g *csdf.Graph, prec *csdf.Precedence, sol *csdf.Solution, rejected map[int]bool, keep func(actor int) bool) (*csdf.Precedence, []int) {
	// Recompute dependencies, dropping those carried by rejected edges.
	// BuildPrecedence added an edge (src firing -> dst firing) per data
	// dependence; we rebuild the same way but skip rejected edges, then
	// drop firings with no remaining consumers (unless kept).
	n := prec.N()
	deps := make([][]int, n)
	// Serialization chains (same actor) are identified by equal actor ids.
	for u := 0; u < n; u++ {
		for _, dep := range prec.Deps[u] {
			if prec.Firings[dep].Actor == prec.Firings[u].Actor {
				deps[u] = append(deps[u], dep) // keep chains
			}
		}
	}
	for ei := range g.Edges {
		if rejected[ei] {
			continue
		}
		e := &g.Edges[ei]
		if e.Src == e.Dst {
			continue
		}
		var m int64
		for nc := int64(0); nc < sol.Q[e.Dst]; nc++ {
			need := e.CumCons(nc + 1)
			if need <= e.Initial {
				continue
			}
			for m < sol.Q[e.Src] && e.Initial+e.CumProd(m+1) < need {
				m++
			}
			if m >= sol.Q[e.Src] {
				break
			}
			deps[prec.NodeID(e.Dst, nc)] = append(deps[prec.NodeID(e.Dst, nc)], prec.NodeID(e.Src, m))
		}
	}

	// Mark live firings: kept actors' firings, then everything reachable
	// backwards through deps.
	live := make([]bool, n)
	var stack []int
	for u := 0; u < n; u++ {
		if keep != nil && keep(prec.Firings[u].Actor) {
			live[u] = true
			stack = append(stack, u)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range deps[u] {
			if !live[dep] {
				live[dep] = true
				stack = append(stack, dep)
			}
		}
	}

	// Compact.
	newID := make([]int, n)
	var oldOf []int
	for u := 0; u < n; u++ {
		if live[u] {
			newID[u] = len(oldOf)
			oldOf = append(oldOf, u)
		} else {
			newID[u] = -1
		}
	}
	firings := make([]csdf.Firing, len(oldOf))
	newDeps := make([][]int, len(oldOf))
	for i, old := range oldOf {
		firings[i] = prec.Firings[old]
		for _, dep := range deps[old] {
			if newID[dep] >= 0 {
				newDeps[i] = append(newDeps[i], newID[dep])
			}
		}
	}
	return csdf.NewPrecedence(firings, newDeps), oldOf
}
