package sched

import (
	"strings"
	"testing"

	"repro/internal/csdf"
	"repro/internal/platform"
)

func twoActorChain(t *testing.T) (*csdf.Graph, *csdf.Precedence) {
	t.Helper()
	g := csdf.NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	prec, err := g.BuildPrecedence(sol, false)
	if err != nil {
		t.Fatal(err)
	}
	return g, prec
}

func TestListScheduleNilPlatform(t *testing.T) {
	g, prec := twoActorChain(t)
	if _, err := ListSchedule(g, prec, Options{}); err == nil {
		t.Error("nil platform must be rejected")
	}
}

func TestListScheduleZeroPEs(t *testing.T) {
	g, prec := twoActorChain(t)
	p := platform.Simple(0)
	if _, err := ListSchedule(g, prec, Options{Platform: p}); err == nil {
		t.Error("zero PEs must be rejected")
	}
}

func TestUtilizationEmpty(t *testing.T) {
	var r Result
	if r.Utilization() != 0 {
		t.Error("empty result utilization must be 0")
	}
}

func TestVerifyCatchesDurationTamper(t *testing.T) {
	g, prec := twoActorChain(t)
	opts := Options{Platform: platform.Simple(2)}
	res, err := ListSchedule(g, prec, opts)
	if err != nil {
		t.Fatal(err)
	}
	res.Items[0].End += 5 // corrupt
	err = Verify(g, prec, opts, res)
	if err == nil || !strings.Contains(err.Error(), "duration") {
		t.Errorf("tampered duration not caught: %v", err)
	}
}

func TestVerifyCatchesPrecedenceViolation(t *testing.T) {
	g, prec := twoActorChain(t)
	opts := Options{Platform: platform.Simple(2)}
	res, err := ListSchedule(g, prec, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Force the consumer to start before its dependency arrives.
	var consumer int
	for u := range prec.Deps {
		if len(prec.Deps[u]) > 0 {
			consumer = u
		}
	}
	res.Items[consumer].Start = 0
	res.Items[consumer].End = res.Items[consumer].Start +
		g.Actors[prec.Firings[consumer].Actor].ExecAt(0)
	if err := Verify(g, prec, opts, res); err == nil {
		t.Error("precedence violation not caught")
	}
}

func TestMessageLatencyDelaysCrossPEStart(t *testing.T) {
	// Producer and consumer forced onto different PEs by occupancy: the
	// consumer's start must include the message latency.
	g := csdf.NewGraph()
	a := g.AddActor("a", 10)
	b := g.AddActor("b", 10)
	c := g.AddActor("c", 1)
	g.Connect(a, []int64{1}, c, []int64{1}, 0)
	g.Connect(b, []int64{1}, c, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	prec, err := g.BuildPrecedence(sol, false)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Simple(2)
	p.IntraLatency = 3
	opts := Options{Platform: p}
	res, err := ListSchedule(g, prec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, prec, opts, res); err != nil {
		t.Fatal(err)
	}
	cNode := prec.NodeID(c, 0)
	// a and b run in parallel on both PEs finishing at 10; c sits on one of
	// them but needs the other's token: start >= 10 + 3.
	if res.Items[cNode].Start < 13 {
		t.Errorf("c starts at %d, want >= 13 (message latency)", res.Items[cNode].Start)
	}
}

func TestPruneNilKeepPrunesEverything(t *testing.T) {
	g := csdf.NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	ei := g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	prec, _ := g.BuildPrecedence(sol, false)
	pruned, oldOf := PruneForModes(g, prec, sol, map[int]bool{ei: true}, nil)
	if pruned.N() != 0 || len(oldOf) != 0 {
		t.Errorf("nil keep with all edges rejected should prune everything, got %d nodes", pruned.N())
	}
}
