package sched

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/csdf"
	"repro/internal/platform"
	"repro/internal/symb"
)

// fig2Period instantiates the Fig. 2 TPDF example at the given p and builds
// its canonical period (serialized same-actor firings, as ΣC deploys tasks).
func fig2Period(t *testing.T, p int64) (*csdf.Graph, *csdf.Precedence, *csdf.Solution, []bool) {
	t.Helper()
	g := apps.Fig2()
	cg, low, err := g.Instantiate(symb.Env{"p": p})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		t.Fatal(err)
	}
	isCtl := make([]bool, len(cg.Actors))
	for id, n := range g.Nodes {
		if n.Kind == 1 { // core.KindControl
			isCtl[low.ActorOf[id]] = true
		}
	}
	return cg, prec, sol, isCtl
}

func TestFig5CanonicalPeriodShape(t *testing.T) {
	cg, prec, sol, _ := fig2Period(t, 1)
	// Fig. 5 shows A1 A2 / B1 B2 / C1 / D1 / E1 E2 / F1 F2 — ten firings
	// (plus our added sink's two firings).
	var want int64
	for _, q := range sol.Q {
		want += q
	}
	if int64(prec.N()) != want {
		t.Fatalf("period has %d firings, want %d", prec.N(), want)
	}
	aIdx, _ := cg.ActorIndex("A")
	fIdx, _ := cg.ActorIndex("F")
	cIdx, _ := cg.ActorIndex("C")
	if sol.Q[aIdx] != 2 || sol.Q[fIdx] != 2 || sol.Q[cIdx] != 1 {
		t.Fatalf("q = %v, want A:2 C:1 F:2 at p=1", sol.Q)
	}
	// F's firings depend (transitively) on C1: the control token precedes
	// the kernel firing.
	d := prec.Digraph()
	c1 := prec.NodeID(cIdx, 0)
	reach := d.Reachable(c1)
	if !reach[prec.NodeID(fIdx, 0)] || !reach[prec.NodeID(fIdx, 1)] {
		t.Error("F1/F2 must depend on the control firing C1")
	}
}

func TestListScheduleFig2Valid(t *testing.T) {
	for _, p := range []int64{1, 3} {
		cg, prec, _, isCtl := fig2Period(t, p)
		opts := Options{Platform: platform.Simple(4), ControlPriority: true, IsControl: isCtl}
		res, err := ListSchedule(cg, prec, opts)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := Verify(cg, prec, opts, res); err != nil {
			t.Fatalf("p=%d: invalid schedule: %v", p, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("p=%d: makespan = %d", p, res.Makespan)
		}
	}
}

func TestMorePEsNeverWorse(t *testing.T) {
	cg, prec, _, isCtl := fig2Period(t, 4)
	var prev int64 = 1 << 62
	for _, pes := range []int{1, 2, 4, 8} {
		opts := Options{Platform: platform.Simple(pes), ControlPriority: true, IsControl: isCtl}
		res, err := ListSchedule(cg, prec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(cg, prec, opts, res); err != nil {
			t.Fatal(err)
		}
		// List scheduling is not strictly monotone in theory, but on this
		// pipeline-ish graph adding PEs must not increase makespan by more
		// than a message-latency slack.
		if res.Makespan > prev+2 {
			t.Errorf("PEs=%d makespan %d much worse than previous %d", pes, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestSinglePEMakespanIsSum(t *testing.T) {
	// On one PE with zero-latency platform, makespan = total work.
	g := csdf.NewGraph()
	a := g.AddActor("a", 5)
	b := g.AddActor("b", 3)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	prec, err := g.BuildPrecedence(sol, true)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Simple(1)
	p.IntraLatency = 0
	opts := Options{Platform: p}
	res, err := ListSchedule(g, prec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 8 {
		t.Errorf("makespan = %d, want 8", res.Makespan)
	}
	if u := res.Utilization(); u != 1.0 {
		t.Errorf("utilization = %f, want 1.0", u)
	}
}

func TestControlPriorityWins(t *testing.T) {
	// Two independent firings, one control, one kernel, one PE: control
	// must be scheduled first when the rule is on.
	g := csdf.NewGraph()
	k := g.AddActor("K", 10)
	c := g.AddActor("CTL", 1)
	snk := g.AddActor("SNK", 0)
	g.Connect(k, []int64{1}, snk, []int64{1}, 0)
	g.Connect(c, []int64{1}, snk, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	prec, err := g.BuildPrecedence(sol, false)
	if err != nil {
		t.Fatal(err)
	}
	isCtl := []bool{false, true, false}
	one := platform.Simple(1)

	withRule, err := ListSchedule(g, prec, Options{Platform: one, ControlPriority: true, IsControl: isCtl})
	if err != nil {
		t.Fatal(err)
	}
	cNode := prec.NodeID(c, 0)
	kNode := prec.NodeID(k, 0)
	if withRule.Items[cNode].Start > withRule.Items[kNode].Start {
		t.Error("control actor must start first under the §III-D rule")
	}

	without, err := ListSchedule(g, prec, Options{Platform: one, ControlPriority: false})
	if err != nil {
		t.Fatal(err)
	}
	// Without the rule, the longer kernel has the higher HLFET rank.
	if without.Items[kNode].Start > without.Items[cNode].Start {
		t.Error("without the rule, rank order should schedule the kernel first")
	}
}

func TestPruneForModes(t *testing.T) {
	// S1 -> T <- S2 where T's mode rejects the S2 edge: S2's firing must be
	// pruned, S1's kept.
	g := csdf.NewGraph()
	s1 := g.AddActor("S1", 1)
	s2 := g.AddActor("S2", 1)
	tr := g.AddActor("T", 1)
	g.Connect(s1, []int64{1}, tr, []int64{1}, 0)
	e2 := g.Connect(s2, []int64{1}, tr, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	prec, err := g.BuildPrecedence(sol, true)
	if err != nil {
		t.Fatal(err)
	}
	pruned, oldOf := PruneForModes(g, prec, sol, map[int]bool{e2: true}, func(actor int) bool {
		return actor == tr
	})
	if pruned.N() != 2 {
		t.Fatalf("pruned period has %d firings, want 2 (T, S1)", pruned.N())
	}
	kept := map[int]bool{}
	for _, old := range oldOf {
		kept[prec.Firings[old].Actor] = true
	}
	if !kept[s1] || !kept[tr] || kept[s2] {
		t.Errorf("kept actors wrong: %v", kept)
	}
	// NodeID lookups on the pruned relation work via the map index.
	if pruned.NodeID(s2, 0) != -1 {
		t.Error("pruned firing should resolve to -1")
	}
	if pruned.NodeID(tr, 0) < 0 {
		t.Error("kept firing must resolve")
	}
}

func TestPruneKeepsTransitiveProducers(t *testing.T) {
	// Chain A -> B -> T plus rejected R -> T: pruning must keep A (feeds B)
	// and drop R.
	g := csdf.NewGraph()
	a := g.AddActor("A", 1)
	b := g.AddActor("B", 1)
	r := g.AddActor("R", 1)
	tr := g.AddActor("T", 1)
	g.Connect(a, []int64{1}, b, []int64{1}, 0)
	g.Connect(b, []int64{1}, tr, []int64{1}, 0)
	eR := g.Connect(r, []int64{1}, tr, []int64{1}, 0)
	sol, _ := g.RepetitionVector()
	prec, _ := g.BuildPrecedence(sol, true)
	pruned, _ := PruneForModes(g, prec, sol, map[int]bool{eR: true}, func(actor int) bool {
		return actor == tr
	})
	if pruned.N() != 3 {
		t.Fatalf("pruned period has %d firings, want 3 (A, B, T)", pruned.N())
	}
}

func TestMPPAScheduleFig2(t *testing.T) {
	cg, prec, _, isCtl := fig2Period(t, 8)
	opts := Options{Platform: platform.MPPA256(), PEs: 32, ControlPriority: true, IsControl: isCtl}
	res, err := ListSchedule(cg, prec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cg, prec, opts, res); err != nil {
		t.Fatal(err)
	}
}
