// Package sched implements the canonical-period scheduling heuristic of
// §III-D: the partial order of one iteration (the precedence graph built by
// internal/csdf) is mapped onto a many-core platform by list scheduling
// with two TPDF-specific rules:
//
//   - control actors are scheduled with the highest priority — when a
//     control actor and kernels are ready simultaneously, the control actor
//     is guaranteed a processing element first, and message-passing time is
//     accounted for inside the schedule so the system behaves as if control
//     distribution were instantaneous;
//   - a kernel that receives a control token is fired immediately after the
//     token arrives; if the mode it selects rejects some of its inputs, the
//     Actor Dependence Function prunes the producer firings that became
//     unnecessary (PruneForModes).
package sched

import (
	"fmt"
	"sort"

	"repro/internal/csdf"
	"repro/internal/platform"
)

// Options configures list scheduling.
type Options struct {
	// Platform supplies PE count and message latencies. Required.
	Platform *platform.Platform
	// PEs optionally restricts the number of PEs used (0 = all).
	PEs int
	// ControlPriority applies the §III-D rule that control actors win ties
	// and preempt the ready queue ordering.
	ControlPriority bool
	// IsControl flags, per graph actor index, whether it is a control
	// actor (from the TPDF lowering). Nil means no control actors.
	IsControl []bool
}

// Item is one scheduled firing.
type Item struct {
	Node  int // precedence node id
	PE    int
	Start int64
	End   int64
}

// Result is a complete static schedule of one canonical period.
type Result struct {
	Items    []Item // indexed by precedence node id
	Makespan int64
	// PEBusy is the total busy time per PE.
	PEBusy []int64
	// PEOf is the PE assignment per precedence node.
	PEOf []int
}

// Utilization returns average PE utilization over the makespan.
func (r *Result) Utilization() float64 {
	if r.Makespan == 0 || len(r.PEBusy) == 0 {
		return 0
	}
	var busy int64
	for _, b := range r.PEBusy {
		busy += b
	}
	return float64(busy) / (float64(r.Makespan) * float64(len(r.PEBusy)))
}

// readyTask is a heap entry: higher rank first.
type readyTask struct {
	node    int
	control bool
	rank    int64 // critical-path-to-sink length (larger = more urgent)
	ready   int64 // earliest data-ready time
}

// readyHeap is a typed binary min-heap under the priority order below.
// Hand-rolled rather than container/heap so pushes and pops move readyTask
// values without boxing them through interface{} — the ready queue churns
// once per firing and the platform sweep schedules hundreds of firings at
// every PE count.
type readyHeap []readyTask

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) less(i, j int) bool {
	if h[i].control != h[j].control {
		return h[i].control // control actors first (§III-D)
	}
	if h[i].rank != h[j].rank {
		return h[i].rank > h[j].rank
	}
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].node < h[j].node
}

func (h *readyHeap) push(t readyTask) {
	*h = append(*h, t)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *readyHeap) pop() readyTask {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
}

// ListSchedule maps the canonical period onto the platform. The priority
// rank is the longest path to a sink weighted by execution times (HLFET);
// ties and ordering are overridden by the control-priority rule when
// enabled. PE selection picks the PE giving the earliest start, accounting
// for message latency from every dependency's PE.
func ListSchedule(g *csdf.Graph, prec *csdf.Precedence, opts Options) (*Result, error) {
	if opts.Platform == nil {
		return nil, fmt.Errorf("sched: nil platform")
	}
	pes := opts.Platform.NumPEs()
	if opts.PEs > 0 && opts.PEs < pes {
		pes = opts.PEs
	}
	if pes <= 0 {
		return nil, fmt.Errorf("sched: no processing elements")
	}
	n := prec.N()
	d := prec.Digraph()
	order, err := d.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("sched: precedence graph cyclic: %v", err)
	}

	cost := func(node int) int64 {
		f := prec.Firings[node]
		return g.Actors[f.Actor].ExecAt(f.K)
	}
	isCtl := func(node int) bool {
		if opts.IsControl == nil {
			return false
		}
		return opts.IsControl[prec.Firings[node].Actor]
	}

	// rank: longest path to sink (inclusive of own cost).
	rank := make([]int64, n)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		var best int64
		for _, v := range d.Succ(u) {
			if rank[v] > best {
				best = rank[v]
			}
		}
		rank[u] = best + cost(u)
	}

	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range d.Succ(u) {
			indeg[v]++
		}
	}

	res := &Result{
		Items:  make([]Item, n),
		PEBusy: make([]int64, pes),
		PEOf:   make([]int, n),
	}
	peFree := make([]int64, pes)
	done := make([]bool, n)
	finish := make([]int64, n)

	// Latency lookups are the inner-loop cost: one per (dependency,
	// candidate PE) pair. Precompute the cluster-to-cluster table and each
	// PE's cluster so a lookup is one indexed load; same-PE messages cost 0
	// and are special-cased below, exactly as MessageLatency defines them.
	nc := opts.Platform.Clusters
	if nc < 1 {
		nc = 1
	}
	lat := opts.Platform.LatencyTable()
	peCluster := opts.Platform.PEClusters(pes)
	var depFinish []int64 // per dependency of the current node: finish time,
	var depPE []int       // assigned PE,
	var depRow []int64    // and its cluster's row offset into lat

	var ready readyHeap
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			ready.push(readyTask{node: u, control: opts.ControlPriority && isCtl(u), rank: rank[u]})
		}
	}

	scheduled := 0
	for ready.Len() > 0 {
		t := ready.pop()
		u := t.node
		depFinish, depPE, depRow = depFinish[:0], depPE[:0], depRow[:0]
		for _, dep := range prec.Deps[u] {
			depFinish = append(depFinish, finish[dep])
			depPE = append(depPE, res.PEOf[dep])
			depRow = append(depRow, int64(peCluster[res.PEOf[dep]]*nc))
		}
		// Choose the PE minimizing start time; break ties toward the PE of
		// the heaviest dependency (locality), then lowest index.
		bestPE, bestStart := -1, int64(0)
		for pe := 0; pe < pes; pe++ {
			start := peFree[pe]
			cpe := peCluster[pe]
			for k, f := range depFinish {
				arr := f
				if depPE[k] != pe {
					arr += lat[depRow[k]+int64(cpe)]
				}
				if arr > start {
					start = arr
				}
			}
			if bestPE == -1 || start < bestStart {
				bestPE, bestStart = pe, start
			}
		}
		end := bestStart + cost(u)
		res.Items[u] = Item{Node: u, PE: bestPE, Start: bestStart, End: end}
		res.PEOf[u] = bestPE
		res.PEBusy[bestPE] += cost(u)
		peFree[bestPE] = end
		finish[u] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		done[u] = true
		scheduled++
		for _, v := range d.Succ(u) {
			indeg[v]--
			if indeg[v] == 0 {
				ready.push(readyTask{
					node: v, control: opts.ControlPriority && isCtl(v), rank: rank[v],
				})
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: scheduled %d of %d firings (cycle?)", scheduled, n)
	}
	return res, nil
}

// Verify checks that a schedule respects precedence (with message latency)
// and never overlaps two firings on one PE.
func Verify(g *csdf.Graph, prec *csdf.Precedence, opts Options, res *Result) error {
	for u := range res.Items {
		it := res.Items[u]
		f := prec.Firings[u]
		if it.End-it.Start != g.Actors[f.Actor].ExecAt(f.K) {
			return fmt.Errorf("sched: node %d duration mismatch", u)
		}
		for _, dep := range prec.Deps[u] {
			need := res.Items[dep].End + opts.Platform.MessageLatency(res.PEOf[dep], it.PE)
			if it.Start < need {
				return fmt.Errorf("sched: node %d starts at %d before dependency %d arrives at %d",
					u, it.Start, dep, need)
			}
		}
	}
	// Per-PE non-overlap.
	byPE := map[int][]Item{}
	for _, it := range res.Items {
		byPE[it.PE] = append(byPE[it.PE], it)
	}
	for pe, items := range byPE {
		// Zero-duration firings (cost-0 control actors) occupy no time and
		// cannot overlap anything; drop them before the sweep.
		busy := items[:0]
		for _, it := range items {
			if it.End > it.Start {
				busy = append(busy, it)
			}
		}
		sort.Slice(busy, func(i, j int) bool { return busy[i].Start < busy[j].Start })
		for i := 1; i < len(busy); i++ {
			if busy[i].Start < busy[i-1].End {
				return fmt.Errorf("sched: PE %d overlap between nodes %d and %d", pe, busy[i-1].Node, busy[i].Node)
			}
		}
	}
	return nil
}
