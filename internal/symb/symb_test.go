package symb

import (
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

func TestMonoMulDiv(t *testing.T) {
	p := MonoVar("p")
	q := MonoVar("q")
	pq := p.Mul(q)
	if pq.String() != "p*q" {
		t.Errorf("p*q = %q", pq.String())
	}
	p2q := p.Mul(pq)
	if p2q.String() != "p^2*q" {
		t.Errorf("p^2*q = %q", p2q.String())
	}
	d, ok := p2q.Div(p)
	if !ok || !d.Equal(pq) {
		t.Errorf("p^2*q / p = %v, %v", d, ok)
	}
	if _, ok := p.Div(q); ok {
		t.Error("p / q should not be exact")
	}
	if _, ok := p.Div(p.Mul(p)); ok {
		t.Error("p / p^2 should not be exact")
	}
	u, ok := p.Div(p)
	if !ok || !u.IsUnit() {
		t.Errorf("p/p = %v, %v; want unit", u, ok)
	}
}

func TestMonoGCDLCM(t *testing.T) {
	a := MonoVar("p").Mul(MonoVar("p")).Mul(MonoVar("q")) // p^2 q
	b := MonoVar("p").Mul(MonoVar("r"))                   // p r
	g := a.GCD(b)
	if g.String() != "p" {
		t.Errorf("gcd = %q, want p", g.String())
	}
	l := a.LCM(b)
	if l.String() != "p^2*q*r" {
		t.Errorf("lcm = %q, want p^2*q*r", l.String())
	}
}

func TestMonoCmpTotalOrder(t *testing.T) {
	p := MonoVar("p")
	q := MonoVar("q")
	if p.Cmp(q) <= 0 {
		t.Error("p should sort above q in lex order (earlier name larger)")
	}
	if p.Cmp(p.Mul(q)) >= 0 {
		t.Error("degree dominates: p < p*q")
	}
	if UnitMono.Cmp(p) >= 0 {
		t.Error("1 < p")
	}
	if p.Cmp(p) != 0 {
		t.Error("p == p")
	}
}

func TestPolyBasics(t *testing.T) {
	p := PolyVar("p")
	two := PolyInt(2)
	sum := p.Add(two) // p + 2
	if sum.String() != "p + 2" {
		t.Errorf("p+2 = %q", sum.String())
	}
	if sum.Degree() != 1 {
		t.Errorf("degree = %d", sum.Degree())
	}
	sq := sum.Mul(sum) // p^2 + 4p + 4
	want := PolyVar("p").Mul(PolyVar("p")).Add(PolyVar("p").Scale(rat.FromInt(4))).Add(PolyInt(4))
	if !sq.Equal(want) {
		t.Errorf("(p+2)^2 = %s, want %s", sq, want)
	}
	if d := sq.Sub(sq); !d.IsZero() {
		t.Errorf("x - x = %s", d)
	}
}

func TestPolyTryDiv(t *testing.T) {
	p := PolyVar("p")
	q := PolyVar("q")
	num := p.Mul(p).Sub(q.Mul(q)) // p^2 - q^2
	den := p.Add(q)               // p + q
	quo, ok := num.TryDiv(den)    // p - q
	if !ok || !quo.Equal(p.Sub(q)) {
		t.Errorf("(p^2-q^2)/(p+q) = %v, %v", quo, ok)
	}
	if _, ok := num.TryDiv(p.Add(PolyInt(1))); ok {
		t.Error("p^2-q^2 should not be divisible by p+1")
	}
	// Division by constant.
	c, ok := p.Scale(rat.FromInt(6)).TryDiv(PolyInt(3))
	if !ok || !c.Equal(p.Scale(rat.FromInt(2))) {
		t.Errorf("6p/3 = %v, %v", c, ok)
	}
	// Zero dividend.
	z, ok := ZeroPoly().TryDiv(den)
	if !ok || !z.IsZero() {
		t.Errorf("0/(p+q) = %v, %v", z, ok)
	}
	// Division by zero fails.
	if _, ok := p.TryDiv(ZeroPoly()); ok {
		t.Error("division by zero polynomial should fail")
	}
}

func TestPolyPrimitive(t *testing.T) {
	// 6p^2q + 4pq = 2pq (3p + 2)
	p := PolyVar("p")
	q := PolyVar("q")
	poly := p.Mul(p).Mul(q).Scale(rat.FromInt(6)).Add(p.Mul(q).Scale(rat.FromInt(4)))
	prim, c, m := poly.Primitive()
	if !c.Equal(rat.FromInt(2)) {
		t.Errorf("content = %v, want 2", c)
	}
	if m.String() != "p*q" {
		t.Errorf("content mono = %q, want p*q", m.String())
	}
	want := p.Scale(rat.FromInt(3)).Add(PolyInt(2))
	if !prim.Equal(want) {
		t.Errorf("primitive = %s, want %s", prim, want)
	}
	// Negative leading coefficient: sign goes to content.
	neg := p.Scale(rat.FromInt(-2))
	prim2, c2, _ := neg.Primitive()
	if c2.Sign() >= 0 {
		t.Errorf("content sign = %v, want negative", c2)
	}
	if prim2.leadingTerm().coef.Sign() <= 0 {
		t.Error("primitive leading coefficient should be positive")
	}
}

func TestPolyEval(t *testing.T) {
	// 2p^2 + q at p=3, q=4 -> 22
	p := PolyVar("p").Mul(PolyVar("p")).Scale(rat.FromInt(2)).Add(PolyVar("q"))
	v, err := p.Eval(Env{"p": 3, "q": 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(rat.FromInt(22)) {
		t.Errorf("eval = %v, want 22", v)
	}
	// Missing parameter defaults.
	v2, err := p.Eval(Env{"p": 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Equal(rat.FromInt(19)) {
		t.Errorf("eval with default = %v, want 19", v2)
	}
}

func TestExprNormalization(t *testing.T) {
	p := Var("p")
	// p/p == 1
	if q := p.Div(p); !q.IsOne() {
		t.Errorf("p/p = %s", q)
	}
	// 2p/4 == p/2
	e := p.ScaleInt(2).Div(IntExpr(4))
	if e.String() != "p/2" {
		t.Errorf("2p/4 = %q, want p/2", e)
	}
	// (p^2-1)/(p+1) == p-1 (exact polynomial quotient)
	num := p.Mul(p).Sub(OneExpr())
	den := p.Add(OneExpr())
	q := num.Div(den)
	if !q.Equal(p.Sub(OneExpr())) {
		t.Errorf("(p^2-1)/(p+1) = %s", q)
	}
	// beta(N+L) / beta(N+L) == 1 (the OFDM rate cancellation)
	r := MustParseExpr("beta*(N+L)")
	if v := r.Div(r); !v.IsOne() {
		t.Errorf("beta(N+L)/beta(N+L) = %s", v)
	}
}

func TestExprArithmetic(t *testing.T) {
	p := Var("p")
	half := p.Div(IntExpr(2))
	if s := half.Add(half); !s.Equal(p) {
		t.Errorf("p/2+p/2 = %s", s)
	}
	if d := p.Sub(p); !d.IsZero() {
		t.Errorf("p-p = %s", d)
	}
	if m := half.Mul(IntExpr(2)); !m.Equal(p) {
		t.Errorf("(p/2)*2 = %s", m)
	}
	if i := half.Inv().Mul(half); !i.IsOne() {
		t.Errorf("(2/p)*(p/2) = %s", i)
	}
}

func TestExprEval(t *testing.T) {
	e := MustParseExpr("beta*(N+L)")
	v, err := e.EvalInt(Env{"beta": 10, "N": 512, "L": 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5130 {
		t.Errorf("beta(N+L) = %d, want 5130", v)
	}
	if _, err := MustParseExpr("p/2").EvalInt(Env{"p": 3}, 1); err == nil {
		t.Error("3/2 should not be an integer")
	}
	if _, err := MustParseExpr("1/(p-1)").Eval(Env{"p": 1}, 1); err == nil {
		t.Error("division by zero should error")
	}
}

func TestExprZeroValue(t *testing.T) {
	var e Expr
	if !e.IsZero() {
		t.Error("zero value should be zero")
	}
	if s := e.Add(OneExpr()); !s.IsOne() {
		t.Errorf("0+1 = %s", s)
	}
	if e.String() != "0" {
		t.Errorf("zero renders as %q", e.String())
	}
}

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in   string
		env  Env
		want int64
	}{
		{"2*p", Env{"p": 5}, 10},
		{"2p", Env{"p": 5}, 10},
		{"p+q", Env{"p": 1, "q": 2}, 3},
		{"p-q", Env{"p": 5, "q": 2}, 3},
		{"-p+6", Env{"p": 2}, 4},
		{"p^2", Env{"p": 3}, 9},
		{"beta(N+L)", Env{"beta": 2, "N": 3, "L": 4}, 14},
		{"beta*M*N", Env{"beta": 2, "M": 3, "N": 4}, 24},
		{"(p+1)*(p-1)", Env{"p": 4}, 15},
		{"12", nil, 12},
		{"2^3", nil, 8},
		{"6/3", nil, 2},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.in, err)
			continue
		}
		got, err := e.EvalInt(c.env, 1)
		if err != nil {
			t.Errorf("eval %q: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, in := range []string{"", "(p", "p+", "2^p", "p ^", ")", "p$q", "1/0"} {
		if _, err := ParseExpr(in); err == nil {
			t.Errorf("ParseExpr(%q) should fail", in)
		}
	}
}

func TestGCDExpr(t *testing.T) {
	p := Var("p")
	two := IntExpr(2)
	g := GCDExpr(p.ScaleInt(2), p) // gcd(2p, p) = p
	if !g.Equal(p) {
		t.Errorf("gcd(2p,p) = %s, want p", g)
	}
	g2 := GCDExpr(two.Mul(p), IntExpr(4).Mul(p).Mul(p)) // gcd(2p, 4p^2) = 2p
	if !g2.Equal(p.ScaleInt(2)) {
		t.Errorf("gcd(2p,4p^2) = %s, want 2p", g2)
	}
	// The Fig. 2 local-solution gcd: gcd(2p, p, 2p, p) = p.
	g3 := GCDExprs([]Expr{p.ScaleInt(2), p, p.ScaleInt(2), p})
	if !g3.Equal(p) {
		t.Errorf("gcd(2p,p,2p,p) = %s, want p", g3)
	}
}

func TestNormalizeVectorFig2(t *testing.T) {
	// Paper Example 2: r = [1, p, p/2, p/2, p, p/2] normalizes to
	// [2, 2p, p, p, 2p, p].
	p := Var("p")
	in := []Expr{OneExpr(), p, p.Div(IntExpr(2)), p.Div(IntExpr(2)), p, p.Div(IntExpr(2))}
	out, err := NormalizeVector(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Expr{IntExpr(2), p.ScaleInt(2), p, p, p.ScaleInt(2), p}
	for i := range want {
		if !out[i].Equal(want[i]) {
			t.Errorf("out[%d] = %s, want %s", i, out[i], want[i])
		}
	}
}

func TestNormalizeVectorCommonFactor(t *testing.T) {
	// [2p, 4p] -> [1, 2]: common content 2 and monomial p are both removed.
	p := Var("p")
	out, err := NormalizeVector([]Expr{p.ScaleInt(2), p.ScaleInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].IsOne() || !out[1].Equal(IntExpr(2)) {
		t.Errorf("normalize [2p,4p] = [%s, %s], want [1, 2]", out[0], out[1])
	}
}

func TestNormalizeVectorConstant(t *testing.T) {
	// [3, 2, 2] stays as is (Fig. 1 repetition vector is already integral).
	out, err := NormalizeVector([]Expr{IntExpr(3), IntExpr(2), IntExpr(2)})
	if err != nil {
		t.Fatal(err)
	}
	wants := []int64{3, 2, 2}
	for i, w := range wants {
		if v, _ := out[i].Int(); v != w {
			t.Errorf("out[%d] = %s, want %d", i, out[i], w)
		}
	}
}

func TestQuickExprAddSubRoundTrip(t *testing.T) {
	f := func(a, b int16, usePA, usePB bool) bool {
		x := IntExpr(int64(a))
		if usePA {
			x = x.Mul(Var("p"))
		}
		y := IntExpr(int64(b))
		if usePB {
			y = y.Mul(Var("q"))
		}
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExprMulDivRoundTrip(t *testing.T) {
	f := func(a, b int16, pExp, qExp uint8) bool {
		if a == 0 || b == 0 {
			return true
		}
		x := IntExpr(int64(a))
		for i := 0; i < int(pExp%3); i++ {
			x = x.Mul(Var("p"))
		}
		y := IntExpr(int64(b))
		for i := 0; i < int(qExp%3); i++ {
			y = y.Mul(Var("q"))
		}
		return x.Mul(y).Div(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalHomomorphism(t *testing.T) {
	// Eval(x*y) == Eval(x)*Eval(y) and Eval(x+y) == Eval(x)+Eval(y).
	f := func(a, b int8, p, q int8) bool {
		x := IntExpr(int64(a)).Mul(Var("p"))
		y := IntExpr(int64(b)).Add(Var("q"))
		env := Env{"p": int64(p), "q": int64(q)}
		xv, err1 := x.Eval(env, 1)
		yv, err2 := y.Eval(env, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		mv, err := x.Mul(y).Eval(env, 1)
		if err != nil || !mv.Equal(xv.MustMul(yv)) {
			return false
		}
		sv, err := x.Add(y).Eval(env, 1)
		return err == nil && sv.Equal(xv.MustAdd(yv))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(a int8, pExp uint8) bool {
		x := IntExpr(int64(a)).Mul(Var("p"))
		for i := 0; i < int(pExp%2); i++ {
			x = x.Mul(Var("q")).Add(IntExpr(3))
		}
		parsed, err := ParseExpr(x.String())
		return err == nil && parsed.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
