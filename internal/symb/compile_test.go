package symb

import (
	"math/rand"
	"testing"

	"repro/internal/rat"
)

// compileEnvVals builds the valuation slice an Env corresponds to, with
// missing parameters at the analyses' default of 1 (mirroring how
// core.Program overlays an Env onto its defaults slice).
func compileEnvVals(t *testing.T, pi *ParamIndex, env Env) []int64 {
	t.Helper()
	vals := make([]int64, pi.Len())
	for i := range vals {
		vals[i] = 1
	}
	for name, v := range env {
		if slot, ok := pi.Index(name); ok {
			vals[slot] = v
		}
	}
	return vals
}

// TestCompiledPolyMatchesEval cross-checks compiled evaluation against the
// map-based Poly.Eval on randomized polynomials and valuations.
func TestCompiledPolyMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"p", "q", "beta", "N"}
	pi := NewParamIndex(names)
	for trial := 0; trial < 200; trial++ {
		p := ZeroPoly()
		for term := 0; term < rng.Intn(5); term++ {
			m := UnitMono
			for _, n := range names {
				if rng.Intn(2) == 1 {
					m = m.Mul(MonoPow(n, rng.Intn(3)))
				}
			}
			p = p.Add(PolyTerm(rat.New(int64(rng.Intn(21)-10), int64(rng.Intn(4)+1)), m))
		}
		c, err := p.Compile(pi)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		env := Env{}
		for _, n := range names {
			if rng.Intn(4) > 0 { // leave some at the default
				env[n] = int64(rng.Intn(9) + 1)
			}
		}
		want, werr := p.Eval(env, 1)
		got, gerr := c.Eval(compileEnvVals(t, pi, env))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, werr, gerr)
		}
		if werr == nil && !want.Equal(got) {
			t.Fatalf("trial %d: %s at %v: compiled %s, want %s", trial, p, env, got, want)
		}
	}
}

// TestCompiledExprMatchesEvalInt cross-checks compiled rational functions
// against Expr.EvalInt on rate-shaped expressions.
func TestCompiledExprMatchesEvalInt(t *testing.T) {
	pi := NewParamIndex([]string{"beta", "M", "N", "L", "p"})
	exprs := []string{"1", "p", "2*p", "beta*(N+L)", "beta*M*N", "4*beta*N", "p/1", "(2*p)/2"}
	envs := []Env{
		{"p": 1, "beta": 1, "M": 2, "N": 1, "L": 1},
		{"p": 64, "beta": 10, "M": 4, "N": 512, "L": 1},
		{"p": 7, "beta": 3, "M": 2, "N": 33, "L": 5},
	}
	for _, src := range exprs {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := e.Compile(pi)
		if err != nil {
			t.Fatalf("%s: compile: %v", src, err)
		}
		for _, env := range envs {
			want, werr := e.EvalInt(env, 1)
			got, gerr := c.EvalInt(compileEnvVals(t, pi, env))
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s at %v: error mismatch: %v vs %v", src, env, werr, gerr)
			}
			if werr == nil && got != want {
				t.Fatalf("%s at %v: compiled %d, want %d", src, env, got, want)
			}
		}
	}
}

// TestCompileRejectsUnindexedParam verifies compilation fails loudly when a
// polynomial references a parameter the index does not cover.
func TestCompileRejectsUnindexedParam(t *testing.T) {
	pi := NewParamIndex([]string{"p"})
	if _, err := PolyVar("q").Compile(pi); err == nil {
		t.Fatal("compiling q over index {p} must fail")
	}
}

// TestCompiledEvalAllocationFree gates the hot-path property the sweep
// rebind layer is built on: evaluating a compiled expression allocates
// nothing.
func TestCompiledEvalAllocationFree(t *testing.T) {
	pi := NewParamIndex([]string{"beta", "N", "L"})
	e, err := ParseExpr("beta*(N+L)")
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.Compile(pi)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{10, 512, 1}
	var out int64
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.EvalIntInto(&out, vals); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled eval allocates %.1f times per call, want 0", allocs)
	}
	if out != 10*513 {
		t.Fatalf("beta*(N+L) = %d, want %d", out, 10*513)
	}
}

// TestCompiledOverflowMatches verifies the compiled path reports overflow
// exactly where the map-based path does.
func TestCompiledOverflowMatches(t *testing.T) {
	pi := NewParamIndex([]string{"p"})
	p := PolyVar("p").Mul(PolyVar("p")) // p^2
	c, err := p.Compile(pi)
	if err != nil {
		t.Fatal(err)
	}
	huge := int64(1) << 40
	if _, err := p.Eval(Env{"p": huge}, 1); err == nil {
		t.Fatal("map eval of p^2 at 2^40 must overflow")
	}
	if _, err := c.Eval([]int64{huge}); err == nil {
		t.Fatal("compiled eval of p^2 at 2^40 must overflow")
	}
}
