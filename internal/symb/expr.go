package symb

import (
	"fmt"

	"repro/internal/rat"
)

// Expr is a rational function Num/Den of integer parameters. It is the value
// type for parametric dataflow rates and for symbolic repetition-vector
// entries. The zero value is the expression 0.
//
// Exprs are normalized on construction: the denominator is never zero, an
// exact polynomial quotient is taken when possible, common monomial and
// rational content is cancelled, and the denominator's leading coefficient
// is positive.
type Expr struct {
	num Poly
	den Poly // nil/zero treated as 1 so the zero value is usable
}

// ZeroExpr returns the expression 0.
func ZeroExpr() Expr { return Expr{} }

// OneExpr returns the expression 1.
func OneExpr() Expr { return IntExpr(1) }

// IntExpr returns the constant expression n.
func IntExpr(n int64) Expr { return Expr{num: PolyInt(n), den: PolyInt(1)} }

// RatExpr returns the constant expression r.
func RatExpr(r rat.Rat) Expr { return Expr{num: PolyConst(r), den: PolyInt(1)} }

// Var returns the expression consisting of the single parameter name.
func Var(name string) Expr { return Expr{num: PolyVar(name), den: PolyInt(1)} }

// FromPoly returns the expression p/1.
func FromPoly(p Poly) Expr { return Expr{num: p, den: PolyInt(1)} }

// NewExpr returns the normalized rational function num/den.
// It returns an error if den is the zero polynomial.
func NewExpr(num, den Poly) (Expr, error) {
	if den.IsZero() {
		return Expr{}, fmt.Errorf("symb: zero denominator")
	}
	return normalize(num, den), nil
}

func normalize(num, den Poly) Expr {
	if num.IsZero() {
		return Expr{num: ZeroPoly(), den: PolyInt(1)}
	}
	// Exact quotient if possible. The quotient may have fractional
	// coefficients (e.g. 2p/4 -> (1/2)p); re-split so the numerator keeps
	// integer coefficients and the denominator carries the scale (p/2).
	if q, ok := num.TryDiv(den); ok {
		c := q.ContentRat()
		if c.Den() == 1 {
			return Expr{num: q, den: PolyInt(1)}
		}
		k := rat.FromInt(c.Den())
		return Expr{num: q.Scale(k), den: PolyConst(k)}
	}
	// Cancel common monomial and rational content.
	np, nc, nm := num.Primitive()
	dp, dc, dm := den.Primitive()
	gm := nm.GCD(dm)
	nmq, _ := nm.Div(gm)
	dmq, _ := dm.Div(gm)
	// Only the scalar c = nc/dc may be fractional (the primitive parts have
	// integer coprime coefficients); split it across the two sides so both
	// keep integer coefficients and the denominator stays positive-led.
	c := nc.MustDiv(dc)
	num = np.MulTerm(rat.FromInt(c.Num()), nmq)
	den = dp.MulTerm(rat.FromInt(c.Den()), dmq)
	// Final content pass to keep the pair primitive overall.
	ncont := num.ContentRat()
	dcont := den.ContentRat()
	g, err := rat.GCDRat(ncont, dcont)
	if err == nil && !g.IsZero() && !g.Equal(rat.One) {
		num = num.Scale(g.Inv())
		den = den.Scale(g.Inv())
	}
	return Expr{num: num, den: den}
}

// Num returns the numerator polynomial.
func (e Expr) Num() Poly {
	return e.normNum()
}

func (e Expr) normNum() Poly { return e.num }

// Den returns the denominator polynomial (1 for the zero value).
func (e Expr) Den() Poly {
	if e.den.IsZero() {
		return PolyInt(1)
	}
	return e.den
}

// IsZero reports whether e == 0.
func (e Expr) IsZero() bool { return e.num.IsZero() }

// IsOne reports whether e == 1.
func (e Expr) IsOne() bool {
	c, ok := e.Const()
	return ok && c.Equal(rat.One)
}

// Const returns the constant value of e if e has no parameters.
func (e Expr) Const() (rat.Rat, bool) {
	nc, ok := e.num.Const()
	if !ok {
		return rat.Rat{}, false
	}
	dc, ok := e.Den().Const()
	if !ok {
		return rat.Rat{}, false
	}
	return nc.MustDiv(dc), true
}

// Int returns the value of e as an int64 when e is a constant integer.
func (e Expr) Int() (int64, bool) {
	c, ok := e.Const()
	if !ok {
		return 0, false
	}
	return c.Int()
}

// IsPoly reports whether the denominator is 1, returning the numerator.
func (e Expr) IsPoly() (Poly, bool) {
	d, ok := e.Den().Const()
	if ok && d.Equal(rat.One) {
		return e.num, true
	}
	return Poly{}, false
}

// Vars returns the sorted parameter names in e.
func (e Expr) Vars() []string {
	set := map[string]bool{}
	for _, v := range e.num.Vars() {
		set[v] = true
	}
	for _, v := range e.Den().Vars() {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	return normalize(e.num.Mul(f.Den()).Add(f.num.Mul(e.Den())), e.Den().Mul(f.Den()))
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr { return e.Add(f.Neg()) }

// Neg returns -e.
func (e Expr) Neg() Expr { return Expr{num: e.num.Neg(), den: e.Den()} }

// Mul returns e * f.
func (e Expr) Mul(f Expr) Expr {
	return normalize(e.num.Mul(f.num), e.Den().Mul(f.Den()))
}

// Div returns e / f. It panics if f is zero (rates are validated nonzero
// before any division in the analyses).
func (e Expr) Div(f Expr) Expr {
	if f.IsZero() {
		panic("symb: division by zero expression")
	}
	return normalize(e.num.Mul(f.Den()), e.Den().Mul(f.num))
}

// Inv returns 1/e. It panics if e is zero.
func (e Expr) Inv() Expr { return OneExpr().Div(e) }

// ScaleInt returns n * e.
func (e Expr) ScaleInt(n int64) Expr { return e.Mul(IntExpr(n)) }

// Equal reports e == f (by cross multiplication, so representation
// differences cannot cause false negatives).
func (e Expr) Equal(f Expr) bool {
	return e.num.Mul(f.Den()).Equal(f.num.Mul(e.Den()))
}

// Eval evaluates e in env; parameters missing from env default to
// defaultVal. It reports an error on overflow or a zero denominator.
func (e Expr) Eval(env Env, defaultVal int64) (rat.Rat, error) {
	nv, err := e.num.Eval(env, defaultVal)
	if err != nil {
		return rat.Rat{}, err
	}
	dv, err := e.Den().Eval(env, defaultVal)
	if err != nil {
		return rat.Rat{}, err
	}
	if dv.IsZero() {
		return rat.Rat{}, fmt.Errorf("symb: denominator %s evaluates to zero", e.Den())
	}
	return nv.Div(dv)
}

// EvalInt evaluates e and requires an integer result.
func (e Expr) EvalInt(env Env, defaultVal int64) (int64, error) {
	v, err := e.Eval(env, defaultVal)
	if err != nil {
		return 0, err
	}
	n, ok := v.Int()
	if !ok {
		return 0, fmt.Errorf("symb: %s evaluates to non-integer %s", e, v)
	}
	return n, nil
}

// Substitute replaces every occurrence of the named parameter with the
// expression val, e.g. fixing M=4 in beta*M*N to get 4*beta*N.
func (e Expr) Substitute(name string, val Expr) Expr {
	num := substPoly(e.num, name, val)
	den := substPoly(e.Den(), name, val)
	return num.Div(den)
}

// substPoly substitutes into a polynomial, producing an Expr (val may be a
// rational function).
func substPoly(p Poly, name string, val Expr) Expr {
	acc := ZeroExpr()
	for _, t := range p.sortedTerms() {
		exp := t.mono.Exp(name)
		rest, _ := t.mono.Div(MonoPow(name, exp))
		term := FromPoly(PolyTerm(t.coef, rest))
		for i := 0; i < exp; i++ {
			term = term.Mul(val)
		}
		acc = acc.Add(term)
	}
	return acc
}

// String renders the expression, e.g. "2*p", "p/2", "(p + 1)/(2*q)".
func (e Expr) String() string {
	den := e.Den()
	if c, ok := den.Const(); ok && c.Equal(rat.One) {
		return e.num.String()
	}
	ns := e.num.String()
	ds := den.String()
	if e.num.NumTerms() > 1 {
		ns = "(" + ns + ")"
	}
	if den.NumTerms() > 1 {
		ds = "(" + ds + ")"
	}
	return ns + "/" + ds
}

// GCDExpr returns a best-effort symbolic gcd of two expressions, exact when
// both are single-term (monomial) expressions or when one divides the other.
// Used to compute local solutions q^L = q / gcd(q_i) (Definition 4).
func GCDExpr(a, b Expr) Expr {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	// gcd(n1/d1, n2/d2) = gcd(n1*d2, n2*d1) / (d1*d2)
	n := PolyGCD(a.num.Mul(b.Den()), b.num.Mul(a.Den()))
	return normalize(n, a.Den().Mul(b.Den()))
}

// GCDExprs folds GCDExpr over a vector.
func GCDExprs(xs []Expr) Expr {
	g := ZeroExpr()
	for _, x := range xs {
		g = GCDExpr(g, x)
		if g.IsOne() {
			break
		}
	}
	return g
}

// SumExprs returns the sum of xs.
func SumExprs(xs []Expr) Expr {
	acc := ZeroExpr()
	for _, x := range xs {
		acc = acc.Add(x)
	}
	return acc
}

// NormalizeVector scales a vector of rational-function solutions to the
// minimal integral symbolic solution, mirroring §III-A: multiply by the LCM
// of all denominators, then divide by the common content (integer and
// monomial factors shared by every entry). All entries must be nonzero.
func NormalizeVector(xs []Expr) ([]Expr, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	// LCM of denominators.
	l := PolyInt(1)
	for _, x := range xs {
		if x.IsZero() {
			return nil, fmt.Errorf("symb: zero entry in solution vector")
		}
		l = PolyLCM(l, x.Den())
	}
	scaled := make([]Poly, len(xs))
	for i, x := range xs {
		q, ok := l.TryDiv(x.Den())
		if !ok {
			// PolyLCM was conservative; multiply through instead.
			q = l
		}
		scaled[i] = x.num.Mul(q)
	}
	// Common rational content and monomial factor.
	g := rat.Zero
	gm := scaled[0].ContentMono()
	for _, p := range scaled {
		var err error
		g, err = rat.GCDRat(g, p.ContentRat())
		if err != nil {
			g = rat.One
			break
		}
		gm = gm.GCD(p.ContentMono())
	}
	if g.IsZero() {
		g = rat.One
	}
	out := make([]Expr, len(xs))
	for i, p := range scaled {
		prim := p.Scale(g.Inv())
		if !gm.IsUnit() {
			q := ZeroPoly()
			for _, t := range prim.sortedTerms() {
				dm, ok := t.mono.Div(gm)
				if !ok {
					return nil, fmt.Errorf("symb: internal: content monomial %s does not divide %s", gm, t.mono)
				}
				q = q.addTerm(dm, t.coef)
			}
			prim = q
		}
		out[i] = FromPoly(prim)
	}
	return out, nil
}
