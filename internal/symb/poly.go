package symb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rat"
)

// Poly is a multivariate polynomial with rational coefficients over integer
// parameters. The zero value is the zero polynomial. Poly values are
// immutable from the caller's perspective; operations return new values.
type Poly struct {
	terms map[string]term // canonical mono key -> term
}

type term struct {
	mono Mono
	coef rat.Rat
}

// ZeroPoly returns the zero polynomial.
func ZeroPoly() Poly { return Poly{} }

// PolyConst returns the constant polynomial c.
func PolyConst(c rat.Rat) Poly {
	p := Poly{}
	p = p.addTerm(UnitMono, c)
	return p
}

// PolyInt returns the constant polynomial n.
func PolyInt(n int64) Poly { return PolyConst(rat.FromInt(n)) }

// PolyVar returns the polynomial consisting of a single parameter.
func PolyVar(name string) Poly {
	p := Poly{}
	return p.addTerm(MonoVar(name), rat.One)
}

// PolyTerm returns the polynomial c * m.
func PolyTerm(c rat.Rat, m Mono) Poly {
	p := Poly{}
	return p.addTerm(m, c)
}

// addTerm returns p with c*m added (functional; copies the map).
func (p Poly) addTerm(m Mono, c rat.Rat) Poly {
	if c.IsZero() {
		return p
	}
	out := p.clone()
	k := m.key()
	if t, ok := out.terms[k]; ok {
		nc := t.coef.MustAdd(c)
		if nc.IsZero() {
			delete(out.terms, k)
		} else {
			out.terms[k] = term{m, nc}
		}
	} else {
		out.terms[k] = term{m, c}
	}
	return out
}

func (p Poly) clone() Poly {
	out := Poly{terms: make(map[string]term, len(p.terms)+1)}
	for k, t := range p.terms {
		out.terms[k] = t
	}
	return out
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// NumTerms returns the number of monomials with nonzero coefficient.
func (p Poly) NumTerms() int { return len(p.terms) }

// Const returns the value of p if it is a constant polynomial.
func (p Poly) Const() (rat.Rat, bool) {
	switch len(p.terms) {
	case 0:
		return rat.Zero, true
	case 1:
		if t, ok := p.terms[""]; ok {
			return t.coef, true
		}
	}
	return rat.Rat{}, false
}

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool {
	c, ok := p.Const()
	return ok && c.Equal(rat.One)
}

// Coef returns the coefficient of monomial m in p.
func (p Poly) Coef(m Mono) rat.Rat {
	if t, ok := p.terms[m.key()]; ok {
		return t.coef
	}
	return rat.Zero
}

// Vars returns the sorted set of parameter names occurring in p.
func (p Poly) Vars() []string {
	set := map[string]bool{}
	for _, t := range p.terms {
		for _, v := range t.mono.Vars() {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Degree returns the total degree of p (-1 for the zero polynomial).
func (p Poly) Degree() int {
	if p.IsZero() {
		return -1
	}
	d := 0
	for _, t := range p.terms {
		if td := t.mono.Degree(); td > d {
			d = td
		}
	}
	return d
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	out := p.clone()
	for k, t := range q.terms {
		if e, ok := out.terms[k]; ok {
			nc := e.coef.MustAdd(t.coef)
			if nc.IsZero() {
				delete(out.terms, k)
			} else {
				out.terms[k] = term{e.mono, nc}
			}
		} else {
			out.terms[k] = t
		}
	}
	return out
}

// Neg returns -p.
func (p Poly) Neg() Poly {
	out := Poly{terms: make(map[string]term, len(p.terms))}
	for k, t := range p.terms {
		out.terms[k] = term{t.mono, t.coef.Neg()}
	}
	return out
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Neg()) }

// Scale returns c * p.
func (p Poly) Scale(c rat.Rat) Poly {
	if c.IsZero() {
		return ZeroPoly()
	}
	out := Poly{terms: make(map[string]term, len(p.terms))}
	for k, t := range p.terms {
		out.terms[k] = term{t.mono, t.coef.MustMul(c)}
	}
	return out
}

// MulTerm returns p * (c * m).
func (p Poly) MulTerm(c rat.Rat, m Mono) Poly {
	if c.IsZero() {
		return ZeroPoly()
	}
	out := Poly{terms: make(map[string]term, len(p.terms))}
	for _, t := range p.terms {
		nm := t.mono.Mul(m)
		out.terms[nm.key()] = term{nm, t.coef.MustMul(c)}
	}
	return out
}

// Mul returns p * q.
func (p Poly) Mul(q Poly) Poly {
	out := ZeroPoly()
	for _, t := range q.terms {
		out = out.Add(p.MulTerm(t.coef, t.mono))
	}
	return out
}

// Equal reports whether p == q.
func (p Poly) Equal(q Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		u, ok := q.terms[k]
		if !ok || !t.coef.Equal(u.coef) {
			return false
		}
	}
	return true
}

// sortedTerms returns the terms in descending graded-lex order.
func (p Poly) sortedTerms() []term {
	out := make([]term, 0, len(p.terms))
	for _, t := range p.terms {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].mono.Cmp(out[j].mono) > 0 })
	return out
}

// leadingTerm returns the graded-lex greatest term. p must be nonzero.
func (p Poly) leadingTerm() term {
	var best term
	first := true
	for _, t := range p.terms {
		if first || t.mono.Cmp(best.mono) > 0 {
			best = t
			first = false
		}
	}
	return best
}

// TryDiv performs exact polynomial division p / d using graded-lex long
// division. It returns (q, true) iff p == q*d exactly.
func (p Poly) TryDiv(d Poly) (Poly, bool) {
	if d.IsZero() {
		return Poly{}, false
	}
	if p.IsZero() {
		return ZeroPoly(), true
	}
	if c, ok := d.Const(); ok {
		return p.Scale(c.Inv()), true
	}
	q := ZeroPoly()
	r := p
	ld := d.leadingTerm()
	for !r.IsZero() {
		lr := r.leadingTerm()
		mq, ok := lr.mono.Div(ld.mono)
		if !ok {
			return Poly{}, false
		}
		cq := lr.coef.MustDiv(ld.coef)
		q = q.addTerm(mq, cq)
		r = r.Sub(d.MulTerm(cq, mq))
	}
	return q, true
}

// Divides reports whether d divides p exactly.
func (p Poly) Divides(d Poly) bool {
	_, ok := d.TryDiv(p)
	return ok
}

// ContentMono returns the monomial gcd of all terms (unit for zero poly).
func (p Poly) ContentMono() Mono {
	var g Mono
	first := true
	for _, t := range p.terms {
		if first {
			g = t.mono
			first = false
		} else {
			g = g.GCD(t.mono)
		}
		if g.IsUnit() {
			break
		}
	}
	if first {
		return UnitMono
	}
	return g
}

// ContentRat returns the rational content: gcd of all coefficients (so that
// p / content has integer, coprime coefficients). Zero poly yields 0.
func (p Poly) ContentRat() rat.Rat {
	g := rat.Zero
	for _, t := range p.terms {
		var err error
		g, err = rat.GCDRat(g, t.coef)
		if err != nil {
			// Overflow computing gcd: fall back to 1 (valid, non-minimal).
			return rat.One
		}
	}
	return g
}

// Primitive returns p divided by its rational and monomial content, plus the
// extracted content (c, m) such that p == primitive * c * m. The primitive
// part has integer coprime coefficients and no common monomial factor, and a
// positive leading coefficient; the sign is carried by c.
func (p Poly) Primitive() (prim Poly, c rat.Rat, m Mono) {
	if p.IsZero() {
		return ZeroPoly(), rat.Zero, UnitMono
	}
	m = p.ContentMono()
	c = p.ContentRat()
	if p.leadingTerm().coef.Sign() < 0 {
		c = c.Neg()
	}
	out := Poly{terms: make(map[string]term, len(p.terms))}
	for _, t := range p.terms {
		nm, ok := t.mono.Div(m)
		if !ok {
			panic("symb: content monomial does not divide term")
		}
		out.terms[nm.key()] = term{nm, t.coef.MustDiv(c)}
	}
	return out, c, m
}

// Eval evaluates p in env; parameters missing from env default to
// defaultVal. The error reports overflow.
func (p Poly) Eval(env Env, defaultVal int64) (rat.Rat, error) {
	acc := rat.Zero
	for _, t := range p.terms {
		mv, ok := t.mono.Eval(env, defaultVal)
		if !ok {
			return rat.Rat{}, rat.ErrOverflow
		}
		tv, err := t.coef.Mul(rat.FromInt(mv))
		if err != nil {
			return rat.Rat{}, err
		}
		acc, err = acc.Add(tv)
		if err != nil {
			return rat.Rat{}, err
		}
	}
	return acc, nil
}

// String renders the polynomial in descending graded-lex term order,
// e.g. "2*p^2 + p - 3". The zero polynomial renders as "0".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	for i, t := range p.sortedTerms() {
		c := t.coef
		if i == 0 {
			if c.Sign() < 0 {
				b.WriteString("-")
				c = c.Neg()
			}
		} else {
			if c.Sign() < 0 {
				b.WriteString(" - ")
				c = c.Neg()
			} else {
				b.WriteString(" + ")
			}
		}
		switch {
		case t.mono.IsUnit():
			b.WriteString(c.String())
		case c.Equal(rat.One):
			b.WriteString(t.mono.String())
		default:
			fmt.Fprintf(&b, "%s*%s", c.String(), t.mono.String())
		}
	}
	return b.String()
}

// PolyGCD returns a best-effort gcd of two polynomials with respect to
// integer-content divisibility (the notion Definition 4 of the paper needs:
// gcd(p, 2p) = p, not 2p, because 2p does not divide p over ℤ).
//
// Each argument is split into content (rational coefficient gcd), monomial
// factor and primitive part; the result combines the rational gcd of the
// contents, the monomial gcd, and the primitive gcd — exact when one
// primitive divides the other (which covers monomials and identical sum
// expressions, the forms parametric dataflow rates take), and 1 otherwise
// (still a valid common divisor, merely conservative).
func PolyGCD(a, b Poly) Poly {
	switch {
	case a.IsZero():
		return b
	case b.IsZero():
		return a
	}
	pa, ca, ma := a.Primitive()
	pb, cb, mb := b.Primitive()
	cg, err := rat.GCDRat(ca.Abs(), cb.Abs())
	if err != nil || cg.IsZero() {
		cg = rat.One
	}
	mg := ma.GCD(mb)
	pg := PolyInt(1)
	if _, ok := pa.TryDiv(pb); ok { // pb | pa
		pg = pb
	} else if _, ok := pb.TryDiv(pa); ok { // pa | pb
		pg = pa
	}
	return pg.MulTerm(cg, mg)
}

// PolyLCM returns a*b/gcd(a,b); with the best-effort gcd this is always a
// common multiple, minimal in the exact cases.
func PolyLCM(a, b Poly) Poly {
	if a.IsZero() || b.IsZero() {
		return ZeroPoly()
	}
	g := PolyGCD(a, b)
	q, ok := a.TryDiv(g)
	if !ok {
		return a.Mul(b)
	}
	return q.Mul(b)
}
