package symb

import (
	"fmt"

	"repro/internal/rat"
)

// ParamIndex assigns a dense slot to every parameter name a compiled
// polynomial may reference. Compiling against a fixed index turns every
// subsequent evaluation into flat-slice arithmetic: no map lookups, no
// allocations — the shape the analysis sweeps need when they evaluate one
// parametric graph at thousands of valuations.
type ParamIndex struct {
	names []string
	pos   map[string]int
}

// NewParamIndex builds an index over the given names (first occurrence
// wins; duplicates are ignored).
func NewParamIndex(names []string) *ParamIndex {
	pi := &ParamIndex{pos: make(map[string]int, len(names))}
	for _, n := range names {
		if _, dup := pi.pos[n]; dup {
			continue
		}
		pi.pos[n] = len(pi.names)
		pi.names = append(pi.names, n)
	}
	return pi
}

// Len returns the number of indexed parameters.
func (pi *ParamIndex) Len() int { return len(pi.names) }

// Names returns the indexed names in slot order (shared slice; do not
// mutate).
func (pi *ParamIndex) Names() []string { return pi.names }

// Index returns the slot of the named parameter.
func (pi *ParamIndex) Index(name string) (int, bool) {
	i, ok := pi.pos[name]
	return i, ok
}

// CompiledPoly is a polynomial lowered to flat coefficient and exponent
// tables over a ParamIndex. Terms are stored in descending graded-lex order,
// so compilation is deterministic and evaluation order is reproducible.
type CompiledPoly struct {
	nparams int
	coefs   []rat.Rat
	exps    []int32 // term-major: exps[t*nparams+slot]
}

// Compile lowers p over the index. Every parameter occurring in p must be
// indexed; evaluation then reads the valuation slice positionally.
func (p Poly) Compile(pi *ParamIndex) (*CompiledPoly, error) {
	terms := p.sortedTerms()
	c := &CompiledPoly{
		nparams: pi.Len(),
		coefs:   make([]rat.Rat, len(terms)),
		exps:    make([]int32, len(terms)*pi.Len()),
	}
	for t, tm := range terms {
		c.coefs[t] = tm.coef
		row := c.exps[t*c.nparams : (t+1)*c.nparams]
		for _, v := range tm.mono.vars {
			slot, ok := pi.Index(v.name)
			if !ok {
				return nil, fmt.Errorf("symb: parameter %q not in index", v.name)
			}
			row[slot] = int32(v.exp)
		}
	}
	return c, nil
}

// NumTerms returns the number of compiled terms.
func (c *CompiledPoly) NumTerms() int { return len(c.coefs) }

// EvalInto evaluates the polynomial at the valuation (indexed by the
// ParamIndex the poly was compiled against) and stores the result in *dst.
// It performs no allocations; the error reports int64 overflow.
func (c *CompiledPoly) EvalInto(dst *rat.Rat, vals []int64) error {
	acc := rat.Zero
	for t := 0; t < len(c.coefs); t++ {
		mv := int64(1)
		row := c.exps[t*c.nparams : (t+1)*c.nparams]
		for slot, e := range row {
			if e == 0 {
				continue
			}
			v := vals[slot]
			for k := int32(0); k < e; k++ {
				prod := mv * v
				if v != 0 && prod/v != mv {
					return rat.ErrOverflow
				}
				mv = prod
			}
		}
		tv, err := c.coefs[t].Mul(rat.FromInt(mv))
		if err != nil {
			return err
		}
		acc, err = acc.Add(tv)
		if err != nil {
			return err
		}
	}
	*dst = acc
	return nil
}

// Eval is EvalInto returning the value.
func (c *CompiledPoly) Eval(vals []int64) (rat.Rat, error) {
	var out rat.Rat
	err := c.EvalInto(&out, vals)
	return out, err
}

// CompiledExpr is a rational function lowered over a ParamIndex: a compiled
// numerator/denominator pair evaluated without map lookups or allocations.
type CompiledExpr struct {
	num, den *CompiledPoly
}

// Compile lowers e over the index.
func (e Expr) Compile(pi *ParamIndex) (*CompiledExpr, error) {
	num, err := e.Num().Compile(pi)
	if err != nil {
		return nil, err
	}
	den, err := e.Den().Compile(pi)
	if err != nil {
		return nil, err
	}
	return &CompiledExpr{num: num, den: den}, nil
}

// EvalInto evaluates the expression at the valuation and stores the result
// in *dst, allocation-free. The error reports overflow or a denominator
// that evaluates to zero.
func (c *CompiledExpr) EvalInto(dst *rat.Rat, vals []int64) error {
	var nv, dv rat.Rat
	if err := c.num.EvalInto(&nv, vals); err != nil {
		return err
	}
	if err := c.den.EvalInto(&dv, vals); err != nil {
		return err
	}
	if dv.IsZero() {
		return fmt.Errorf("symb: denominator evaluates to zero")
	}
	v, err := nv.Div(dv)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// Eval is EvalInto returning the value.
func (c *CompiledExpr) Eval(vals []int64) (rat.Rat, error) {
	var out rat.Rat
	err := c.EvalInto(&out, vals)
	return out, err
}

// EvalIntInto evaluates the expression, requires an integer result, and
// stores it in *dst without allocating.
func (c *CompiledExpr) EvalIntInto(dst *int64, vals []int64) error {
	var v rat.Rat
	if err := c.EvalInto(&v, vals); err != nil {
		return err
	}
	n, ok := v.Int()
	if !ok {
		return fmt.Errorf("symb: compiled expression evaluates to non-integer %s", v)
	}
	*dst = n
	return nil
}

// EvalInt is EvalIntInto returning the value.
func (c *CompiledExpr) EvalInt(vals []int64) (int64, error) {
	var out int64
	err := c.EvalIntInto(&out, vals)
	return out, err
}
