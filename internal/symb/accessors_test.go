package symb

import (
	"testing"

	"repro/internal/rat"
)

func TestMonoPow(t *testing.T) {
	if !MonoPow("p", 0).IsUnit() {
		t.Error("p^0 must be the unit")
	}
	if MonoPow("p", 3).String() != "p^3" {
		t.Errorf("p^3 = %q", MonoPow("p", 3).String())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative exponent must panic")
		}
	}()
	MonoPow("p", -1)
}

func TestMonoExpAndVars(t *testing.T) {
	m := MonoVar("p").Mul(MonoPow("q", 2))
	if m.Exp("p") != 1 || m.Exp("q") != 2 || m.Exp("r") != 0 {
		t.Errorf("exponents wrong: p=%d q=%d r=%d", m.Exp("p"), m.Exp("q"), m.Exp("r"))
	}
	vars := m.Vars()
	if len(vars) != 2 || vars[0] != "p" || vars[1] != "q" {
		t.Errorf("Vars = %v", vars)
	}
	if m.Degree() != 3 {
		t.Errorf("degree = %d", m.Degree())
	}
}

func TestMonoEvalOverflow(t *testing.T) {
	m := MonoPow("p", 8)
	if _, ok := m.Eval(Env{"p": 1 << 40}, 1); ok {
		t.Error("p^8 at 2^40 must overflow")
	}
	v, ok := m.Eval(Env{"p": 2}, 1)
	if !ok || v != 256 {
		t.Errorf("2^8 = %d, %v", v, ok)
	}
	// Default value path.
	v, ok = m.Eval(nil, 3)
	if !ok || v != 6561 {
		t.Errorf("3^8 = %d, %v", v, ok)
	}
}

func TestEnvCloneAndNames(t *testing.T) {
	e := Env{"b": 2, "a": 1}
	c := e.Clone()
	c["a"] = 99
	if e["a"] != 1 {
		t.Error("Clone must copy")
	}
	names := e.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestRatExprAndNewExpr(t *testing.T) {
	e := RatExpr(rat.New(3, 2))
	c, ok := e.Const()
	if !ok || !c.Equal(rat.New(3, 2)) {
		t.Errorf("RatExpr = %v", e)
	}
	n, err := NewExpr(PolyVar("p"), PolyInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "p/2" {
		t.Errorf("NewExpr = %q", n.String())
	}
	if _, err := NewExpr(PolyVar("p"), ZeroPoly()); err == nil {
		t.Error("zero denominator must fail")
	}
}

func TestExprNumDenIsPoly(t *testing.T) {
	e := MustParseExpr("p/2")
	if e.Num().String() != "p" || e.Den().String() != "2" {
		t.Errorf("num/den = %s / %s", e.Num(), e.Den())
	}
	if _, ok := e.IsPoly(); ok {
		t.Error("p/2 is not a polynomial")
	}
	p := MustParseExpr("p+1")
	if poly, ok := p.IsPoly(); !ok || poly.Degree() != 1 {
		t.Error("p+1 should be a polynomial")
	}
}

func TestExprVars(t *testing.T) {
	e := MustParseExpr("beta*(N+L)/M")
	vars := e.Vars()
	want := []string{"L", "M", "N", "beta"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestSumExprs(t *testing.T) {
	s := SumExprs([]Expr{IntExpr(1), Var("p"), IntExpr(2)})
	if !s.Equal(MustParseExpr("p+3")) {
		t.Errorf("sum = %s", s)
	}
	if !SumExprs(nil).IsZero() {
		t.Error("empty sum must be zero")
	}
}

func TestExprDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero expression must panic")
		}
	}()
	Var("p").Div(ZeroExpr())
}

func TestPolyAccessors(t *testing.T) {
	p := PolyVar("p").Add(PolyInt(2)).Scale(rat.FromInt(3)) // 3p + 6
	if p.NumTerms() != 2 {
		t.Errorf("terms = %d", p.NumTerms())
	}
	if !p.Coef(MonoVar("p")).Equal(rat.FromInt(3)) {
		t.Errorf("coef p = %v", p.Coef(MonoVar("p")))
	}
	if !p.Coef(UnitMono).Equal(rat.FromInt(6)) {
		t.Errorf("coef 1 = %v", p.Coef(UnitMono))
	}
	if !p.Coef(MonoVar("q")).IsZero() {
		t.Error("absent monomial must have zero coef")
	}
	if p.IsOne() {
		t.Error("3p+6 is not one")
	}
	if !PolyInt(1).IsOne() {
		t.Error("1 must be one")
	}
	if vars := p.Vars(); len(vars) != 1 || vars[0] != "p" {
		t.Errorf("Vars = %v", vars)
	}
	if ZeroPoly().Degree() != -1 {
		t.Error("zero poly degree must be -1")
	}
}

func TestPolyLCM(t *testing.T) {
	a := PolyTerm(rat.FromInt(2), MonoVar("p"))                   // 2p
	b := PolyTerm(rat.FromInt(3), MonoVar("p").Mul(MonoVar("q"))) // 3pq
	l := PolyLCM(a, b)
	// lcm(2p, 3pq) = 6pq.
	want := PolyTerm(rat.FromInt(6), MonoVar("p").Mul(MonoVar("q")))
	if !l.Equal(want) {
		t.Errorf("lcm = %s, want %s", l, want)
	}
	if !PolyLCM(ZeroPoly(), a).IsZero() {
		t.Error("lcm with zero must be zero")
	}
}

func TestMonoLCM(t *testing.T) {
	a := MonoPow("p", 2)
	b := MonoVar("p").Mul(MonoVar("q"))
	if got := a.LCM(b).String(); got != "p^2*q" {
		t.Errorf("lcm = %q", got)
	}
}

func TestGCDExprWithZero(t *testing.T) {
	p := Var("p")
	if !GCDExpr(ZeroExpr(), p).Equal(p) {
		t.Error("gcd(0, p) = p")
	}
	if !GCDExpr(p, ZeroExpr()).Equal(p) {
		t.Error("gcd(p, 0) = p")
	}
}

func TestSubstitute(t *testing.T) {
	e := MustParseExpr("beta*M*N + 3")
	got := e.Substitute("M", IntExpr(4))
	if !got.Equal(MustParseExpr("4*beta*N + 3")) {
		t.Errorf("substitute M=4: %s", got)
	}
	// Substituting with an expression.
	f := MustParseExpr("p^2 + p")
	got = f.Substitute("p", MustParseExpr("q+1"))
	if !got.Equal(MustParseExpr("q^2 + 3q + 2")) {
		t.Errorf("substitute p=q+1: %s", got)
	}
	// Absent parameter is a no-op.
	if !e.Substitute("zz", IntExpr(9)).Equal(e) {
		t.Error("substituting an absent parameter must not change the expression")
	}
	// Substitution into a denominator.
	d := MustParseExpr("N/M")
	if !d.Substitute("M", IntExpr(2)).Equal(MustParseExpr("N/2")) {
		t.Errorf("denominator substitution: %s", d.Substitute("M", IntExpr(2)))
	}
}

func TestNormalizeVectorRejectsZeroEntry(t *testing.T) {
	if _, err := NormalizeVector([]Expr{Var("p"), ZeroExpr()}); err == nil {
		t.Error("zero entry must be rejected")
	}
	out, err := NormalizeVector(nil)
	if err != nil || out != nil {
		t.Error("empty vector is trivially normalized")
	}
}
