// Package symb implements the symbolic integer arithmetic used by the TPDF
// static analyses: named integer parameters, monomials, multivariate
// polynomials with rational coefficients, and rational functions (Expr).
//
// Parametric dataflow rates such as p, 2*p, beta*M*N or beta*(N+L) are
// represented as Expr values. Balance equations over these rates are solved
// exactly: propagation along a spanning tree produces rational-function
// firing ratios, which are then normalized to the minimal integer symbolic
// solution exactly as in §III-A of the TPDF paper.
package symb

import (
	"sort"
	"strconv"
	"strings"
)

// Mono is a monomial: a product of parameters raised to non-negative integer
// powers, e.g. p^2*q. The zero value is the unit monomial 1.
// Mono values are immutable; operations return new values.
type Mono struct {
	vars []varExp // sorted by name, exponents > 0
}

type varExp struct {
	name string
	exp  int
}

// UnitMono is the monomial 1.
var UnitMono = Mono{}

// MonoVar returns the monomial consisting of a single parameter.
func MonoVar(name string) Mono {
	return Mono{vars: []varExp{{name, 1}}}
}

// MonoPow returns name^exp. exp must be >= 0; exp == 0 yields the unit.
func MonoPow(name string, exp int) Mono {
	if exp < 0 {
		panic("symb: negative exponent in monomial")
	}
	if exp == 0 {
		return UnitMono
	}
	return Mono{vars: []varExp{{name, exp}}}
}

// IsUnit reports whether m == 1.
func (m Mono) IsUnit() bool { return len(m.vars) == 0 }

// Degree returns the total degree (sum of exponents).
func (m Mono) Degree() int {
	d := 0
	for _, v := range m.vars {
		d += v.exp
	}
	return d
}

// Exp returns the exponent of the named parameter (0 if absent).
func (m Mono) Exp(name string) int {
	for _, v := range m.vars {
		if v.name == name {
			return v.exp
		}
	}
	return 0
}

// Vars returns the parameter names occurring in m, sorted.
func (m Mono) Vars() []string {
	out := make([]string, len(m.vars))
	for i, v := range m.vars {
		out[i] = v.name
	}
	return out
}

// Mul returns m * n.
func (m Mono) Mul(n Mono) Mono {
	if m.IsUnit() {
		return n
	}
	if n.IsUnit() {
		return m
	}
	out := make([]varExp, 0, len(m.vars)+len(n.vars))
	i, j := 0, 0
	for i < len(m.vars) && j < len(n.vars) {
		switch {
		case m.vars[i].name < n.vars[j].name:
			out = append(out, m.vars[i])
			i++
		case m.vars[i].name > n.vars[j].name:
			out = append(out, n.vars[j])
			j++
		default:
			out = append(out, varExp{m.vars[i].name, m.vars[i].exp + n.vars[j].exp})
			i++
			j++
		}
	}
	out = append(out, m.vars[i:]...)
	out = append(out, n.vars[j:]...)
	return Mono{vars: out}
}

// Div returns m / n and whether the division is exact (all resulting
// exponents non-negative).
func (m Mono) Div(n Mono) (Mono, bool) {
	if n.IsUnit() {
		return m, true
	}
	out := make([]varExp, 0, len(m.vars))
	i, j := 0, 0
	for j < len(n.vars) {
		if i >= len(m.vars) || m.vars[i].name > n.vars[j].name {
			return Mono{}, false // n has a var m lacks
		}
		if m.vars[i].name < n.vars[j].name {
			out = append(out, m.vars[i])
			i++
			continue
		}
		d := m.vars[i].exp - n.vars[j].exp
		if d < 0 {
			return Mono{}, false
		}
		if d > 0 {
			out = append(out, varExp{m.vars[i].name, d})
		}
		i++
		j++
	}
	out = append(out, m.vars[i:]...)
	return Mono{vars: out}, true
}

// GCD returns the greatest common divisor of m and n (min exponents).
func (m Mono) GCD(n Mono) Mono {
	var out []varExp
	i, j := 0, 0
	for i < len(m.vars) && j < len(n.vars) {
		switch {
		case m.vars[i].name < n.vars[j].name:
			i++
		case m.vars[i].name > n.vars[j].name:
			j++
		default:
			e := m.vars[i].exp
			if n.vars[j].exp < e {
				e = n.vars[j].exp
			}
			out = append(out, varExp{m.vars[i].name, e})
			i++
			j++
		}
	}
	return Mono{vars: out}
}

// LCM returns the least common multiple of m and n (max exponents).
func (m Mono) LCM(n Mono) Mono {
	q, _ := m.Div(m.GCD(n))
	return q.Mul(n)
}

// Equal reports m == n.
func (m Mono) Equal(n Mono) bool {
	if len(m.vars) != len(n.vars) {
		return false
	}
	for i := range m.vars {
		if m.vars[i] != n.vars[i] {
			return false
		}
	}
	return true
}

// Cmp imposes a total order: graded lexicographic (degree first, then
// lexicographic). Returns -1, 0 or +1.
func (m Mono) Cmp(n Mono) int {
	dm, dn := m.Degree(), n.Degree()
	if dm != dn {
		if dm < dn {
			return -1
		}
		return 1
	}
	i, j := 0, 0
	for i < len(m.vars) && j < len(n.vars) {
		if m.vars[i].name != n.vars[j].name {
			// Earlier name with positive exponent is lexicographically larger.
			if m.vars[i].name < n.vars[j].name {
				return 1
			}
			return -1
		}
		if m.vars[i].exp != n.vars[j].exp {
			if m.vars[i].exp > n.vars[j].exp {
				return 1
			}
			return -1
		}
		i++
		j++
	}
	switch {
	case i < len(m.vars):
		return 1
	case j < len(n.vars):
		return -1
	default:
		return 0
	}
}

// key returns the canonical map key for the monomial.
func (m Mono) key() string {
	if m.IsUnit() {
		return ""
	}
	var b strings.Builder
	for i, v := range m.vars {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(v.name)
		if v.exp != 1 {
			b.WriteByte('^')
			b.WriteString(strconv.Itoa(v.exp))
		}
	}
	return b.String()
}

// String renders the monomial; the unit renders as "1".
func (m Mono) String() string {
	if m.IsUnit() {
		return "1"
	}
	return m.key()
}

// Eval evaluates the monomial in the environment. Missing parameters
// default to defaultVal (the analyses use 1, the smallest legal value).
func (m Mono) Eval(env Env, defaultVal int64) (int64, bool) {
	acc := int64(1)
	for _, v := range m.vars {
		val, ok := env[v.name]
		if !ok {
			val = defaultVal
		}
		for e := 0; e < v.exp; e++ {
			prod := acc * val
			if val != 0 && prod/val != acc {
				return 0, false
			}
			acc = prod
		}
	}
	return acc, true
}

// Env assigns concrete int64 values to parameters.
type Env map[string]int64

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Names returns the parameter names in the environment, sorted.
func (e Env) Names() []string {
	out := make([]string, 0, len(e))
	for k := range e {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
