package symb

import (
	"fmt"
	"strconv"
	"unicode"
)

// ParseExpr parses an arithmetic expression over integer literals and
// parameter names into an Expr. The grammar is
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | power
//	power  := atom ('^' INT)?
//	atom   := INT | IDENT | '(' expr ')'
//
// with implicit multiplication allowed between an atom and a following
// identifier or '(' (so "2p" and "beta(N+L)" parse as products, matching the
// rate notation used in the paper's figures).
func ParseExpr(s string) (Expr, error) {
	p := &exprParser{src: s}
	e, err := p.parseExpr()
	if err != nil {
		return Expr{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Expr{}, fmt.Errorf("symb: unexpected %q at offset %d in %q", p.src[p.pos:], p.pos, s)
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error; for literals in tests and
// built-in application graphs.
func MustParseExpr(s string) Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return Expr{}, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return Expr{}, err
			}
			left = left.Add(right)
		case '-':
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return Expr{}, err
			}
			left = left.Sub(right)
		default:
			return left, nil
		}
	}
}

func (p *exprParser) parseTerm() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return Expr{}, err
	}
	for {
		switch c := p.peek(); {
		case c == '*':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return Expr{}, err
			}
			left = left.Mul(right)
		case c == '/':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return Expr{}, err
			}
			if right.IsZero() {
				return Expr{}, fmt.Errorf("symb: division by zero in expression")
			}
			left = left.Div(right)
		case c == '(' || isIdentStart(rune(c)):
			// Implicit multiplication: "2p", "beta(N+L)".
			right, err := p.parseUnary()
			if err != nil {
				return Expr{}, err
			}
			left = left.Mul(right)
		default:
			return left, nil
		}
	}
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.peek() == '-' {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return Expr{}, err
		}
		return e.Neg(), nil
	}
	return p.parsePower()
}

func (p *exprParser) parsePower() (Expr, error) {
	base, err := p.parseAtom()
	if err != nil {
		return Expr{}, err
	}
	if p.peek() != '^' {
		return base, nil
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return Expr{}, fmt.Errorf("symb: expected integer exponent at offset %d in %q", p.pos, p.src)
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return Expr{}, fmt.Errorf("symb: bad exponent: %v", err)
	}
	out := OneExpr()
	for i := 0; i < n; i++ {
		out = out.Mul(base)
	}
	return out, nil
}

func (p *exprParser) parseAtom() (Expr, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return Expr{}, err
		}
		if p.peek() != ')' {
			return Expr{}, fmt.Errorf("symb: missing ')' at offset %d in %q", p.pos, p.src)
		}
		p.pos++
		return e, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return Expr{}, fmt.Errorf("symb: bad integer: %v", err)
		}
		return IntExpr(n), nil
	case isIdentStart(rune(c)):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(rune(p.src[p.pos])) {
			p.pos++
		}
		return Var(p.src[start:p.pos]), nil
	case c == 0:
		return Expr{}, fmt.Errorf("symb: unexpected end of expression %q", p.src)
	default:
		return Expr{}, fmt.Errorf("symb: unexpected %q at offset %d in %q", c, p.pos, p.src)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
