package platform

import "testing"

// TestLatencyTableMatchesMessageLatency proves the precomputed table the
// list scheduler indexes is exactly the closed-form MessageLatency for
// every PE pair of every modelled platform (same-PE pairs are the caller's
// special case and must remain 0 in the closed form).
func TestLatencyTableMatchesMessageLatency(t *testing.T) {
	for _, p := range []*Platform{MPPA256(), Epiphany64(), Simple(1), Simple(7)} {
		nc := p.Clusters
		if nc < 1 {
			nc = 1
		}
		lat := p.LatencyTable()
		pes := p.NumPEs()
		clusters := p.PEClusters(pes)
		for src := 0; src < pes; src++ {
			for dst := 0; dst < pes; dst++ {
				want := p.MessageLatency(src, dst)
				var got int64
				if src != dst {
					got = lat[clusters[src]*nc+clusters[dst]]
				}
				if got != want {
					t.Fatalf("%s: PE %d->%d: table %d, MessageLatency %d", p.Name, src, dst, got, want)
				}
			}
		}
	}
}
