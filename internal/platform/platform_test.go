package platform

import "testing"

func TestPresets(t *testing.T) {
	m := MPPA256()
	if m.NumPEs() != 256 {
		t.Errorf("MPPA-256 has %d PEs, want 256", m.NumPEs())
	}
	e := Epiphany64()
	if e.NumPEs() != 64 {
		t.Errorf("Epiphany has %d PEs, want 64", e.NumPEs())
	}
	s := Simple(4)
	if s.NumPEs() != 4 || s.Clusters != 1 {
		t.Errorf("Simple(4) = %+v", s)
	}
}

func TestClusterOf(t *testing.T) {
	m := MPPA256()
	if m.ClusterOf(0) != 0 || m.ClusterOf(15) != 0 || m.ClusterOf(16) != 1 || m.ClusterOf(255) != 15 {
		t.Error("ClusterOf mapping wrong")
	}
}

func TestMessageLatency(t *testing.T) {
	m := MPPA256()
	if m.MessageLatency(3, 3) != 0 {
		t.Error("same PE must be free")
	}
	if got := m.MessageLatency(0, 1); got != m.IntraLatency {
		t.Errorf("intra-cluster latency = %d, want %d", got, m.IntraLatency)
	}
	// Cluster 0 (0,0) to cluster 5 (1,1) on the 4x4 grid: 2 hops.
	got := m.MessageLatency(0, 5*16)
	want := m.IntraLatency + 2*m.HopLatency
	if got != want {
		t.Errorf("inter-cluster latency = %d, want %d", got, want)
	}
	// Symmetry.
	if m.MessageLatency(0, 80) != m.MessageLatency(80, 0) {
		t.Error("latency must be symmetric")
	}
}

func TestSimpleUniform(t *testing.T) {
	s := Simple(8)
	if s.MessageLatency(0, 7) != s.IntraLatency {
		t.Error("SMP latency must be uniform")
	}
}
