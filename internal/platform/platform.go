// Package platform models the clustered many-core targets the paper
// schedules TPDF graphs onto: the Kalray MPPA-256 (16 compute clusters of 16
// processing elements linked by a NoC) and the Adapteva Epiphany (64 cores).
//
// The scheduling heuristic of §III-D consumes only what this abstraction
// provides: the number of processing elements, and the message-passing
// latency between two PEs as a function of their placement. ISA-level
// detail is irrelevant to the analyses, so none is modelled (this is the
// documented substitution for the physical hardware).
package platform

import "fmt"

// Platform is an abstract clustered many-core machine.
type Platform struct {
	Name string
	// Clusters is the number of compute clusters.
	Clusters int
	// PEsPerCluster is the number of processing elements per cluster.
	PEsPerCluster int
	// IntraLatency is the message latency between PEs of one cluster
	// (shared-memory exchange), in time units.
	IntraLatency int64
	// HopLatency is the per-hop NoC latency between clusters.
	HopLatency int64
}

// MPPA256 returns the Kalray MPPA-256 abstraction: 16 clusters × 16 PEs,
// cheap intra-cluster shared memory, a 2D-torus-like NoC approximated by a
// per-hop cost on a 4×4 grid.
func MPPA256() *Platform {
	return &Platform{Name: "MPPA-256", Clusters: 16, PEsPerCluster: 16, IntraLatency: 1, HopLatency: 10}
}

// Epiphany64 returns the Adapteva Epiphany-IV abstraction: 64 single-PE
// tiles on an 8×8 mesh.
func Epiphany64() *Platform {
	return &Platform{Name: "Epiphany-64", Clusters: 64, PEsPerCluster: 1, IntraLatency: 0, HopLatency: 2}
}

// Simple returns an idealized n-PE shared-memory machine with uniform unit
// message latency; useful for isolating scheduling effects from topology.
func Simple(n int) *Platform {
	return &Platform{Name: fmt.Sprintf("SMP-%d", n), Clusters: 1, PEsPerCluster: n, IntraLatency: 1, HopLatency: 0}
}

// NumPEs returns the total number of processing elements.
func (p *Platform) NumPEs() int { return p.Clusters * p.PEsPerCluster }

// ClusterOf returns the cluster index of a PE.
func (p *Platform) ClusterOf(pe int) int {
	if p.PEsPerCluster == 0 {
		return 0
	}
	return pe / p.PEsPerCluster
}

// gridSide returns the side of the (square-ish) cluster grid used for hop
// distance: 4 for 16 clusters, 8 for 64.
func (p *Platform) gridSide() int {
	s := 1
	for s*s < p.Clusters {
		s++
	}
	return s
}

// clusterLatency returns the message cost between two *distinct* PEs
// living in clusters cs and cd: IntraLatency within one cluster, plus
// HopLatency times the Manhattan distance on the cluster grid otherwise.
// Shared by MessageLatency and LatencyTable so the closed form and the
// precomputed table cannot drift apart.
func (p *Platform) clusterLatency(cs, cd, side int) int64 {
	if cs == cd {
		return p.IntraLatency
	}
	dx := abs(cs%side - cd%side)
	dy := abs(cs/side - cd/side)
	return p.IntraLatency + p.HopLatency*int64(dx+dy)
}

// MessageLatency returns the cost of sending a token notification from
// srcPE to dstPE: zero on the same PE, IntraLatency within a cluster, and
// HopLatency times the Manhattan distance on the cluster grid otherwise.
func (p *Platform) MessageLatency(srcPE, dstPE int) int64 {
	if srcPE == dstPE {
		return 0
	}
	return p.clusterLatency(p.ClusterOf(srcPE), p.ClusterOf(dstPE), p.gridSide())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// LatencyTable precomputes the cluster-to-cluster message latencies as a
// flat row-major Clusters×Clusters matrix: entry [cs*Clusters+cd] equals
// MessageLatency between any two *distinct* PEs living in clusters cs and
// cd (the diagonal holds IntraLatency). Same-PE messages cost 0; callers
// on hot paths special-case that, which is exactly what the list scheduler
// does — its inner loop evaluates one latency per (dependency, candidate
// PE) pair and the closed-form grid walk in MessageLatency dominated the
// platform-sweep profile before this table existed.
func (p *Platform) LatencyTable() []int64 {
	nc := p.Clusters
	if nc < 1 {
		nc = 1
	}
	side := p.gridSide()
	t := make([]int64, nc*nc)
	for cs := 0; cs < nc; cs++ {
		for cd := 0; cd < nc; cd++ {
			t[cs*nc+cd] = p.clusterLatency(cs, cd, side)
		}
	}
	return t
}

// PEClusters returns the cluster index of each of the first n PEs, the
// companion lookup for LatencyTable.
func (p *Platform) PEClusters(n int) []int {
	out := make([]int, n)
	for pe := range out {
		out[pe] = p.ClusterOf(pe)
	}
	return out
}

// String describes the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("%s (%d clusters × %d PEs = %d)", p.Name, p.Clusters, p.PEsPerCluster, p.NumPEs())
}
