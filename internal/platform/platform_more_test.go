package platform

import (
	"strings"
	"testing"
)

func TestString(t *testing.T) {
	s := MPPA256().String()
	for _, frag := range []string{"MPPA-256", "16 clusters", "256"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}

func TestEpiphanyLatency(t *testing.T) {
	e := Epiphany64()
	// Single-PE tiles: every pair of distinct PEs crosses the mesh.
	if e.MessageLatency(0, 0) != 0 {
		t.Error("same tile must be free")
	}
	// Tiles 0 (0,0) and 9 (1,1) on the 8x8 mesh: 2 hops.
	if got := e.MessageLatency(0, 9); got != e.IntraLatency+2*e.HopLatency {
		t.Errorf("latency(0,9) = %d", got)
	}
	// Corner to corner: 14 hops.
	if got := e.MessageLatency(0, 63); got != e.IntraLatency+14*e.HopLatency {
		t.Errorf("corner latency = %d", got)
	}
}

func TestGridSideNonSquare(t *testing.T) {
	p := &Platform{Name: "odd", Clusters: 5, PEsPerCluster: 1, HopLatency: 1}
	// 5 clusters fit on a 3x3 grid; distances stay finite and symmetric.
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if p.MessageLatency(i, j) != p.MessageLatency(j, i) {
				t.Fatalf("asymmetric latency between %d and %d", i, j)
			}
		}
	}
}

func TestLatencyTriangleInequalityOnMesh(t *testing.T) {
	m := MPPA256()
	pes := []int{0, 40, 170, 255}
	for _, a := range pes {
		for _, b := range pes {
			for _, c := range pes {
				if m.MessageLatency(a, c) > m.MessageLatency(a, b)+m.MessageLatency(b, c)+m.IntraLatency {
					t.Fatalf("triangle inequality violated: %d->%d->%d", a, b, c)
				}
			}
		}
	}
}
