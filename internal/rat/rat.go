// Package rat implements exact rational arithmetic over int64.
//
// It is the numeric foundation for every balance-equation computation in the
// repository: topology matrices, repetition vectors and symbolic polynomial
// coefficients are all built from rat.Rat values. Compared to math/big.Rat it
// is allocation-free for the graph sizes handled here; every operation checks
// for int64 overflow and reports it through an explicit error so analyses
// fail loudly instead of silently wrapping.
package rat

import (
	"fmt"
	"strconv"
	"strings"
)

// Rat is a rational number num/den held in normalized form: den > 0 and
// gcd(|num|, den) == 1. The zero value is the rational 0 (0/1 after
// normalization through the constructors; methods treat den==0 as 0/1 so the
// zero value is usable directly).
type Rat struct {
	num int64
	den int64
}

// Zero and One are the additive and multiplicative identities.
var (
	Zero = Rat{0, 1}
	One  = Rat{1, 1}
)

// ErrOverflow reports that an operation exceeded the int64 range.
var ErrOverflow = fmt.Errorf("rat: int64 overflow")

// New returns the normalized rational num/den.
// It panics if den == 0; use NewChecked to detect that case as an error.
func New(num, den int64) Rat {
	r, err := NewChecked(num, den)
	if err != nil {
		panic(err)
	}
	return r
}

// NewChecked returns the normalized rational num/den, or an error if den==0.
func NewChecked(num, den int64) (Rat, error) {
	if den == 0 {
		return Rat{}, fmt.Errorf("rat: zero denominator")
	}
	if num == 0 {
		return Rat{0, 1}, nil
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := GCD64(abs64(num), den)
	return Rat{num / g, den / g}, nil
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Num returns the normalized numerator.
func (r Rat) Num() int64 { return r.num }

// Den returns the normalized denominator (always >= 1).
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1 // zero value behaves as 0/1
	}
	return r.den
}

// norm returns r with the zero-value denominator fixed up.
func (r Rat) norm() Rat {
	if r.den == 0 {
		return Rat{r.num, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Int returns the value as an int64 and whether the conversion was exact.
func (r Rat) Int() (int64, bool) {
	r = r.norm()
	if r.den != 1 {
		return 0, false
	}
	return r.num, true
}

// Sign returns -1, 0 or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// Neg returns -r.
func (r Rat) Neg() Rat {
	r = r.norm()
	return Rat{-r.num, r.den}
}

// Inv returns 1/r. It panics if r is zero.
func (r Rat) Inv() Rat {
	r = r.norm()
	if r.num == 0 {
		panic("rat: inverse of zero")
	}
	n, d := r.den, r.num
	if d < 0 {
		n, d = -n, -d
	}
	return Rat{n, d}
}

// Add returns r+s, or ErrOverflow.
func (r Rat) Add(s Rat) (Rat, error) {
	r, s = r.norm(), s.norm()
	// r.num/r.den + s.num/s.den = (r.num*s.den + s.num*r.den) / (r.den*s.den)
	a, ok := mul64(r.num, s.den)
	if !ok {
		return Rat{}, ErrOverflow
	}
	b, ok := mul64(s.num, r.den)
	if !ok {
		return Rat{}, ErrOverflow
	}
	n, ok := add64(a, b)
	if !ok {
		return Rat{}, ErrOverflow
	}
	d, ok := mul64(r.den, s.den)
	if !ok {
		return Rat{}, ErrOverflow
	}
	return NewChecked(n, d)
}

// Sub returns r-s, or ErrOverflow.
func (r Rat) Sub(s Rat) (Rat, error) { return r.Add(s.Neg()) }

// Mul returns r*s, or ErrOverflow. Cross-cancellation keeps intermediates
// small so overflow only occurs when the true result overflows.
func (r Rat) Mul(s Rat) (Rat, error) {
	r, s = r.norm(), s.norm()
	if r.num == 0 || s.num == 0 {
		return Zero, nil
	}
	g1 := GCD64(abs64(r.num), s.den)
	g2 := GCD64(abs64(s.num), r.den)
	n, ok := mul64(r.num/g1, s.num/g2)
	if !ok {
		return Rat{}, ErrOverflow
	}
	d, ok := mul64(r.den/g2, s.den/g1)
	if !ok {
		return Rat{}, ErrOverflow
	}
	return NewChecked(n, d)
}

// Div returns r/s. It panics if s is zero and propagates ErrOverflow.
func (r Rat) Div(s Rat) (Rat, error) { return r.Mul(s.Inv()) }

// MustAdd is Add that panics on overflow; for use in contexts (tests,
// literal graph construction) where overflow is impossible by construction.
func (r Rat) MustAdd(s Rat) Rat { return must(r.Add(s)) }

// MustSub is Sub that panics on overflow.
func (r Rat) MustSub(s Rat) Rat { return must(r.Sub(s)) }

// MustMul is Mul that panics on overflow.
func (r Rat) MustMul(s Rat) Rat { return must(r.Mul(s)) }

// MustDiv is Div that panics on overflow or division by zero.
func (r Rat) MustDiv(s Rat) Rat { return must(r.Div(s)) }

func must(r Rat, err error) Rat {
	if err != nil {
		panic(err)
	}
	return r
}

// Cmp compares r and s, returning -1, 0 or +1. It never overflows: it
// compares via the sign of r-s computed with cross multiplication in 128-bit
// space emulated by splitting, but since graph quantities are modest we use
// checked multiply and fall back to float comparison only on overflow.
func (r Rat) Cmp(s Rat) int {
	r, s = r.norm(), s.norm()
	a, ok1 := mul64(r.num, s.den)
	b, ok2 := mul64(s.num, r.den)
	if ok1 && ok2 {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	// Extremely large operands: compare as floats (adequate tie-breaking is
	// irrelevant at this magnitude for our use cases).
	x := float64(r.num) / float64(r.den)
	y := float64(s.num) / float64(s.den)
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool {
	r, s = r.norm(), s.norm()
	return r.num == s.num && r.den == s.den
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	r = r.norm()
	if r.num < 0 {
		return Rat{-r.num, r.den}
	}
	return r
}

// Float returns the nearest float64.
func (r Rat) Float() float64 {
	r = r.norm()
	return float64(r.num) / float64(r.den)
}

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	r = r.norm()
	if r.den == 1 {
		return strconv.FormatInt(r.num, 10)
	}
	return strconv.FormatInt(r.num, 10) + "/" + strconv.FormatInt(r.den, 10)
}

// Parse parses "n" or "n/d" (with optional surrounding spaces).
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		n, err := strconv.ParseInt(strings.TrimSpace(s[:i]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rat: parse %q: %v", s, err)
		}
		d, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rat: parse %q: %v", s, err)
		}
		return NewChecked(n, d)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Rat{}, fmt.Errorf("rat: parse %q: %v", s, err)
	}
	return FromInt(n), nil
}

// GCD64 returns the greatest common divisor of two non-negative int64s,
// with GCD64(0, 0) == 0 and GCD64(x, 0) == x.
func GCD64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 0
	}
	return a
}

// LCM64 returns the least common multiple of two non-negative int64s,
// or false on overflow. LCM64(0, x) == 0.
func LCM64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	g := GCD64(a, b)
	return mul64(a/g, b)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Sum returns the sum of rs, or ErrOverflow.
func Sum(rs ...Rat) (Rat, error) {
	acc := Zero
	var err error
	for _, r := range rs {
		acc, err = acc.Add(r)
		if err != nil {
			return Rat{}, err
		}
	}
	return acc, nil
}

// GCDRat returns the rational gcd of a and b: the largest rational g such
// that a/g and b/g are integers. gcd(a/b, c/d) = gcd(a*d, c*b)/(b*d) reduced;
// equivalently gcd(num)/lcm(den). GCDRat(0,0)==0.
func GCDRat(a, b Rat) (Rat, error) {
	a, b = a.Abs(), b.Abs()
	if a.IsZero() {
		return b, nil
	}
	if b.IsZero() {
		return a, nil
	}
	n := GCD64(a.Num(), b.Num())
	d, ok := LCM64(a.Den(), b.Den())
	if !ok {
		return Rat{}, ErrOverflow
	}
	return NewChecked(n, d)
}
