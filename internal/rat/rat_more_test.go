package rat

import (
	"math"
	"testing"
)

func TestFloat(t *testing.T) {
	if New(1, 2).Float() != 0.5 {
		t.Error("1/2 as float")
	}
	if New(-3, 4).Float() != -0.75 {
		t.Error("-3/4 as float")
	}
	var z Rat
	if z.Float() != 0 {
		t.Error("zero value as float")
	}
}

func TestAbs(t *testing.T) {
	if !New(-5, 3).Abs().Equal(New(5, 3)) {
		t.Error("abs of negative")
	}
	if !New(5, 3).Abs().Equal(New(5, 3)) {
		t.Error("abs of positive")
	}
}

func TestSign(t *testing.T) {
	cases := []struct {
		r Rat
		w int
	}{{New(1, 2), 1}, {New(-1, 2), -1}, {Zero, 0}}
	for _, c := range cases {
		if c.r.Sign() != c.w {
			t.Errorf("Sign(%v) = %d, want %d", c.r, c.r.Sign(), c.w)
		}
	}
}

func TestCmpHugeOperandsFallback(t *testing.T) {
	// Operands whose cross-products overflow fall back to float compare.
	big1 := New(1<<62, 3)
	big2 := New(1<<62, 5)
	if big1.Cmp(big2) != 1 {
		t.Error("2^62/3 > 2^62/5")
	}
	if big2.Cmp(big1) != -1 {
		t.Error("symmetric comparison")
	}
}

func TestMustOpsPanicOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMul must panic on overflow")
		}
	}()
	FromInt(1 << 62).MustMul(FromInt(4))
}

func TestSumPropagatesOverflow(t *testing.T) {
	if _, err := Sum(FromInt(1<<62), FromInt(1<<62)); err == nil {
		t.Error("sum overflow undetected")
	}
}

func TestGCDRatOverflow(t *testing.T) {
	// LCM of denominators overflows.
	a := New(1, (1<<62)+1)
	b := New(1, (1<<62)-1)
	if _, err := GCDRat(a, b); err == nil {
		t.Error("gcd denominator lcm overflow undetected")
	}
}

func TestFloatMonotone(t *testing.T) {
	// Floats preserve order for moderate rationals.
	prev := math.Inf(-1)
	for i := int64(-10); i <= 10; i++ {
		v := New(i, 7).Float()
		if v < prev {
			t.Fatal("float conversion not monotone")
		}
		prev = v
	}
}
