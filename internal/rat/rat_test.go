package rat

import (
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		n, d   int64
		wantN  int64
		wantD  int64
		wantRe string
	}{
		{1, 2, 1, 2, "1/2"},
		{2, 4, 1, 2, "1/2"},
		{-2, 4, -1, 2, "-1/2"},
		{2, -4, -1, 2, "-1/2"},
		{-2, -4, 1, 2, "1/2"},
		{0, 5, 0, 1, "0"},
		{6, 3, 2, 1, "2"},
		{7, 1, 7, 1, "7"},
	}
	for _, c := range cases {
		r := New(c.n, c.d)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wantN, c.wantD)
		}
		if got := r.String(); got != c.wantRe {
			t.Errorf("New(%d,%d).String() = %q, want %q", c.n, c.d, got, c.wantRe)
		}
	}
}

func TestNewCheckedZeroDen(t *testing.T) {
	if _, err := NewChecked(1, 0); err == nil {
		t.Fatal("NewChecked(1,0) should fail")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Error("zero value should be zero")
	}
	if z.Den() != 1 {
		t.Errorf("zero value Den = %d, want 1", z.Den())
	}
	s, err := z.Add(New(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(New(1, 3)) {
		t.Errorf("0 + 1/3 = %v", s)
	}
	if z.String() != "0" {
		t.Errorf("zero String = %q", z.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)

	if got := half.MustAdd(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v, want 5/6", got)
	}
	if got := half.MustSub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v, want 1/6", got)
	}
	if got := half.MustMul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v, want 1/6", got)
	}
	if got := half.MustDiv(third); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v, want 3/2", got)
	}
	if got := half.Neg(); !got.Equal(New(-1, 2)) {
		t.Errorf("-(1/2) = %v", got)
	}
	if got := New(-3, 7).Inv(); !got.Equal(New(-7, 3)) {
		t.Errorf("inv(-3/7) = %v, want -7/3", got)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv of zero should panic")
		}
	}()
	Zero.Inv()
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 3), 1},
		{New(1, 3), New(1, 2), -1},
		{New(2, 4), New(1, 2), 0},
		{New(-1, 2), New(1, 2), -1},
		{Zero, Zero, 0},
		{New(-1, 3), New(-1, 2), 1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntConversion(t *testing.T) {
	if v, ok := New(6, 3).Int(); !ok || v != 2 {
		t.Errorf("6/3 as int = %d,%v", v, ok)
	}
	if _, ok := New(1, 2).Int(); ok {
		t.Error("1/2 should not be an integer")
	}
	if !New(4, 2).IsInt() {
		t.Error("4/2 should be int")
	}
}

func TestOverflowDetected(t *testing.T) {
	big := FromInt(1 << 62)
	if _, err := big.Mul(big); err != ErrOverflow {
		t.Errorf("expected overflow, got %v", err)
	}
	if _, err := big.Add(big); err != ErrOverflow {
		t.Errorf("expected overflow on add, got %v", err)
	}
	// Cross-cancellation avoids bogus overflow: (2^62)/3 * 3/(2^62) == 1.
	a := New(1<<62, 3)
	b := New(3, 1<<62)
	got, err := a.Mul(b)
	if err != nil || !got.Equal(One) {
		t.Errorf("cancelling mul = %v, %v; want 1", got, err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
		ok   bool
	}{
		{"3", FromInt(3), true},
		{"-4", FromInt(-4), true},
		{"1/2", New(1, 2), true},
		{" 6 / 4 ", New(3, 2), true},
		{"x", Rat{}, false},
		{"1/0", Rat{}, false},
		{"1/x", Rat{}, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGCD64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6}, {18, 12, 6}, {5, 7, 1}, {0, 4, 4}, {4, 0, 4}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := GCD64(c.a, c.b); got != c.want {
			t.Errorf("GCD64(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM64(t *testing.T) {
	if v, ok := LCM64(4, 6); !ok || v != 12 {
		t.Errorf("LCM64(4,6) = %d,%v", v, ok)
	}
	if v, ok := LCM64(0, 6); !ok || v != 0 {
		t.Errorf("LCM64(0,6) = %d,%v", v, ok)
	}
	if _, ok := LCM64(1<<62, 3); ok {
		t.Error("LCM64 overflow not detected")
	}
}

func TestGCDRat(t *testing.T) {
	g, err := GCDRat(New(1, 2), New(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(New(1, 6)) {
		t.Errorf("gcd(1/2,1/3) = %v, want 1/6", g)
	}
	// Both divided by gcd must be integers.
	for _, r := range []Rat{New(1, 2), New(1, 3)} {
		q := r.MustDiv(g)
		if !q.IsInt() {
			t.Errorf("%v / %v = %v not integral", r, g, q)
		}
	}
	g2, _ := GCDRat(FromInt(6), FromInt(4))
	if !g2.Equal(FromInt(2)) {
		t.Errorf("gcd(6,4) = %v, want 2", g2)
	}
	g3, _ := GCDRat(Zero, New(5, 3))
	if !g3.Equal(New(5, 3)) {
		t.Errorf("gcd(0,5/3) = %v, want 5/3", g3)
	}
}

func TestSum(t *testing.T) {
	s, err := Sum(New(1, 2), New(1, 3), New(1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(One) {
		t.Errorf("sum = %v, want 1", s)
	}
}

// clamp maps an arbitrary int64 into a small nonzero range so quick tests
// never hit spurious overflow. The result is always in [1, 1<<20).
func clamp(v int64) int64 {
	const lim = 1 << 20
	v %= lim
	if v < 0 {
		v = -v
	}
	if v == 0 {
		v = 1
	}
	return v
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a := New(clamp(an), clamp(ad))
		b := New(clamp(bn), clamp(bd))
		return a.MustAdd(b).Equal(b.MustAdd(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributesOverAdd(t *testing.T) {
	f := func(an, ad, bn, bd, cn, cd int64) bool {
		a := New(clamp(an)%1000, clamp(ad)%100+1)
		b := New(clamp(bn)%1000, clamp(bd)%100+1)
		c := New(clamp(cn)%1000, clamp(cd)%100+1)
		left := a.MustMul(b.MustAdd(c))
		right := a.MustMul(b).MustAdd(a.MustMul(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDivInvertsMul(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a := New(clamp(an), clamp(ad))
		b := New(clamp(bn), clamp(bd))
		if b.IsZero() {
			return true
		}
		return a.MustMul(b).MustDiv(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGCDDividesBoth(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a := New(clamp(an), clamp(ad)).Abs()
		b := New(clamp(bn), clamp(bd)).Abs()
		g, err := GCDRat(a, b)
		if err != nil || g.IsZero() {
			return err == nil && a.IsZero() && b.IsZero()
		}
		return a.MustDiv(g).IsInt() && b.MustDiv(g).IsInt()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	f := func(an, ad int64) bool {
		a := New(clamp(an), clamp(ad))
		got, err := Parse(a.String())
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
