// Package dsp provides the signal-processing substrate behind the
// cognitive-radio case study (§IV-B): an iterative radix-2 FFT, QPSK and
// 16-QAM mapping/demapping, cyclic-prefix handling and an end-to-end OFDM
// symbol pipeline, plus a deterministic PRNG source standing in for the
// paper's sampler ("actor SRC represents a data source that generates
// random values to simulate a sampler").
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) error {
	return transform(x, false)
}

// IFFT computes the inverse FFT (normalized by 1/N).
func IFFT(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// DFT computes the naive O(N²) discrete Fourier transform; used as the
// reference implementation in tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

// AddCyclicPrefix prepends the last l samples of the symbol, the ISI guard
// of §IV-B. It returns a new slice of length len(sym)+l.
func AddCyclicPrefix(sym []complex128, l int) ([]complex128, error) {
	if l < 0 || l > len(sym) {
		return nil, fmt.Errorf("dsp: cyclic prefix %d out of range for symbol %d", l, len(sym))
	}
	out := make([]complex128, 0, len(sym)+l)
	out = append(out, sym[len(sym)-l:]...)
	return append(out, sym...), nil
}

// RemoveCyclicPrefix drops the first l samples (the RCP actor of Fig. 7).
func RemoveCyclicPrefix(sym []complex128, l int) ([]complex128, error) {
	if l < 0 || l >= len(sym) {
		return nil, fmt.Errorf("dsp: cyclic prefix %d out of range for frame %d", l, len(sym))
	}
	return sym[l:], nil
}
