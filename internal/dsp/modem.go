package dsp

import (
	"fmt"
	"math"
)

// QPSKMap maps bit pairs to QPSK constellation points (Gray-coded,
// unit energy). len(bits) must be even; bits are 0/1.
func QPSKMap(bits []byte) ([]complex128, error) {
	if len(bits)%2 != 0 {
		return nil, fmt.Errorf("dsp: QPSK needs an even bit count, got %d", len(bits))
	}
	s := math.Sqrt2 / 2
	out := make([]complex128, len(bits)/2)
	for i := 0; i < len(bits); i += 2 {
		re, im := s, s
		if bits[i] == 1 {
			re = -s
		}
		if bits[i+1] == 1 {
			im = -s
		}
		out[i/2] = complex(re, im)
	}
	return out, nil
}

// QPSKDemap hard-decides QPSK symbols back to bits (2 bits per symbol).
func QPSKDemap(syms []complex128) []byte {
	out := make([]byte, 0, 2*len(syms))
	for _, s := range syms {
		b0, b1 := byte(0), byte(0)
		if real(s) < 0 {
			b0 = 1
		}
		if imag(s) < 0 {
			b1 = 1
		}
		out = append(out, b0, b1)
	}
	return out
}

// gray16 is the 2-bit Gray code used per axis by QAM16: 00 01 11 10
// mapped onto amplitudes -3 -1 +1 +3 (then normalized).
var gray16 = [4]float64{-3, -1, 1, 3}

func grayIndex(b0, b1 byte) int {
	// 00->0(-3) 01->1(-1) 11->2(+1) 10->3(+3)
	switch {
	case b0 == 0 && b1 == 0:
		return 0
	case b0 == 0 && b1 == 1:
		return 1
	case b0 == 1 && b1 == 1:
		return 2
	default:
		return 3
	}
}

func grayBits(idx int) (byte, byte) {
	switch idx {
	case 0:
		return 0, 0
	case 1:
		return 0, 1
	case 2:
		return 1, 1
	default:
		return 1, 0
	}
}

// qamNorm normalizes average symbol energy to 1 for 16-QAM.
var qamNorm = 1 / math.Sqrt(10)

// QAM16Map maps bit quadruples to Gray-coded 16-QAM points (unit average
// energy). len(bits) must be a multiple of 4.
func QAM16Map(bits []byte) ([]complex128, error) {
	if len(bits)%4 != 0 {
		return nil, fmt.Errorf("dsp: 16-QAM needs a multiple of 4 bits, got %d", len(bits))
	}
	out := make([]complex128, len(bits)/4)
	for i := 0; i < len(bits); i += 4 {
		re := gray16[grayIndex(bits[i], bits[i+1])] * qamNorm
		im := gray16[grayIndex(bits[i+2], bits[i+3])] * qamNorm
		out[i/4] = complex(re, im)
	}
	return out, nil
}

// QAM16Demap hard-decides 16-QAM symbols back to bits (4 bits per symbol).
func QAM16Demap(syms []complex128) []byte {
	out := make([]byte, 0, 4*len(syms))
	decide := func(v float64) int {
		v /= qamNorm
		switch {
		case v < -2:
			return 0
		case v < 0:
			return 1
		case v < 2:
			return 2
		default:
			return 3
		}
	}
	for _, s := range syms {
		b0, b1 := grayBits(decide(real(s)))
		b2, b3 := grayBits(decide(imag(s)))
		out = append(out, b0, b1, b2, b3)
	}
	return out
}

// BitErrors counts positions where a and b differ; the shorter length
// bounds the comparison and any length difference counts as errors.
func BitErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := len(a) - n + len(b) - n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			errs++
		}
	}
	return errs
}

// PRNG is a small deterministic xorshift64* generator: the simulated
// sampler source. The zero value is invalid; use NewPRNG.
type PRNG struct {
	state uint64
}

// NewPRNG seeds the generator (seed 0 is remapped to a fixed constant).
func NewPRNG(seed uint64) *PRNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &PRNG{state: seed}
}

// Uint64 returns the next raw value.
func (p *PRNG) Uint64() uint64 {
	x := p.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.state = x
	return x * 0x2545F4914F6CDD1D
}

// Bits fills a slice with n random bits.
func (p *PRNG) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(p.Uint64() & 1)
	}
	return out
}

// Normal returns an approximately standard-normal sample (Irwin–Hall sum of
// 12 uniforms), adequate for AWGN-style perturbation in tests and examples.
func (p *PRNG) Normal() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += float64(p.Uint64()>>11) / (1 << 53)
	}
	return s - 6
}
