package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with internal history, processing
// streaming blocks like the StreamIt FM-radio stages.
type FIR struct {
	Taps []float64
	hist []float64
}

// NewFIR creates a filter from taps.
func NewFIR(taps []float64) *FIR {
	return &FIR{Taps: append([]float64(nil), taps...), hist: make([]float64, len(taps)-1)}
}

// Filter processes a block, maintaining history across calls.
func (f *FIR) Filter(x []float64) []float64 {
	n := len(f.Taps)
	buf := append(append([]float64(nil), f.hist...), x...)
	out := make([]float64, len(x))
	for i := range x {
		var acc float64
		for k := 0; k < n; k++ {
			acc += f.Taps[k] * buf[i+n-1-k]
		}
		out[i] = acc
	}
	if len(buf) >= n-1 {
		f.hist = append(f.hist[:0], buf[len(buf)-(n-1):]...)
	}
	return out
}

// Reset clears the filter history.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
}

// LowPassTaps designs a windowed-sinc low-pass filter with the given
// normalized cutoff (0 < cutoff < 0.5, as a fraction of the sample rate).
func LowPassTaps(cutoff float64, ntaps int) ([]float64, error) {
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, fmt.Errorf("dsp: cutoff %g out of (0, 0.5)", cutoff)
	}
	if ntaps < 3 || ntaps%2 == 0 {
		return nil, fmt.Errorf("dsp: ntaps %d must be odd and >= 3", ntaps)
	}
	taps := make([]float64, ntaps)
	mid := ntaps / 2
	var sum float64
	for i := range taps {
		x := float64(i - mid)
		var v float64
		if x == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*x) / (math.Pi * x)
		}
		// Hamming window.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(ntaps-1))
		taps[i] = v
		sum += v
	}
	for i := range taps {
		taps[i] /= sum // unity DC gain
	}
	return taps, nil
}

// BandPassTaps designs a band-pass filter between normalized low and high
// cutoffs by spectral shifting of a low-pass design.
func BandPassTaps(low, high float64, ntaps int) ([]float64, error) {
	if !(0 < low && low < high && high < 0.5) {
		return nil, fmt.Errorf("dsp: band (%g, %g) out of range", low, high)
	}
	base, err := LowPassTaps((high-low)/2, ntaps)
	if err != nil {
		return nil, err
	}
	center := (low + high) / 2
	mid := ntaps / 2
	out := make([]float64, ntaps)
	for i := range out {
		out[i] = 2 * base[i] * math.Cos(2*math.Pi*center*float64(i-mid))
	}
	return out, nil
}

// FMDemod demodulates an FM signal by phase differentiation: the output is
// proportional to the instantaneous frequency.
func FMDemod(x []complex128) []float64 {
	out := make([]float64, 0, len(x))
	var prev complex128 = 1
	for _, s := range x {
		// angle(s * conj(prev)) is the phase advance.
		d := s * complex(real(prev), -imag(prev))
		out = append(out, math.Atan2(imag(d), real(d)))
		prev = s
	}
	return out
}

// FMModulate synthesizes an FM signal from a message, with the given
// normalized frequency deviation per unit amplitude.
func FMModulate(msg []float64, deviation float64) []complex128 {
	out := make([]complex128, len(msg))
	phase := 0.0
	for i, m := range msg {
		phase += 2 * math.Pi * deviation * m
		out[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	return out
}
