package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func approxEq(a, b complex128) bool {
	return cmplx.Abs(a-b) < 1e-9
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := NewPRNG(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Normal(), rng.Normal())
		}
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if !approxEq(got[i], want[i]) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT must reject length %d", n)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := NewPRNG(7)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.Normal(), rng.Normal())
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approxEq(x[i], y[i]) {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, y[i], x[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2.
	rng := NewPRNG(3)
	x := make([]complex128, 64)
	var tp float64
	for i := range x {
		x[i] = complex(rng.Normal(), rng.Normal())
		tp += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	var fp float64
	for _, v := range y {
		fp += real(v)*real(v) + imag(v)*imag(v)
	}
	fp /= float64(len(x))
	if math.Abs(tp-fp) > 1e-6*math.Max(1, tp) {
		t.Errorf("Parseval violated: time %g vs freq %g", tp, fp)
	}
}

func TestCyclicPrefix(t *testing.T) {
	sym := []complex128{1, 2, 3, 4}
	framed, err := AddCyclicPrefix(sym, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{3, 4, 1, 2, 3, 4}
	for i := range want {
		if framed[i] != want[i] {
			t.Fatalf("framed = %v, want %v", framed, want)
		}
	}
	back, err := RemoveCyclicPrefix(framed, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sym {
		if back[i] != sym[i] {
			t.Fatalf("stripped = %v, want %v", back, sym)
		}
	}
	if _, err := AddCyclicPrefix(sym, 5); err == nil {
		t.Error("prefix longer than symbol must fail")
	}
	if _, err := RemoveCyclicPrefix(sym, 4); err == nil {
		t.Error("removing the whole frame must fail")
	}
}

func TestQPSKRoundTrip(t *testing.T) {
	bits := []byte{0, 0, 0, 1, 1, 0, 1, 1}
	syms, err := QPSKMap(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 4 {
		t.Fatalf("QPSK produced %d symbols, want 4", len(syms))
	}
	for _, s := range syms {
		if math.Abs(cmplx.Abs(s)-1) > 1e-12 {
			t.Errorf("QPSK symbol %v not unit energy", s)
		}
	}
	got := QPSKDemap(syms)
	if BitErrors(bits, got) != 0 {
		t.Errorf("QPSK roundtrip: %v -> %v", bits, got)
	}
	if _, err := QPSKMap([]byte{1}); err == nil {
		t.Error("odd bit count must fail")
	}
}

func TestQAM16RoundTrip(t *testing.T) {
	rng := NewPRNG(11)
	bits := rng.Bits(64)
	syms, err := QAM16Map(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 16 {
		t.Fatalf("QAM16 produced %d symbols, want 16", len(syms))
	}
	got := QAM16Demap(syms)
	if BitErrors(bits, got) != 0 {
		t.Errorf("QAM16 roundtrip failed: %d errors", BitErrors(bits, got))
	}
	// Average energy ~1.
	var e float64
	for _, s := range syms {
		e += real(s)*real(s) + imag(s)*imag(s)
	}
	e /= float64(len(syms))
	if e < 0.3 || e > 1.8 {
		t.Errorf("QAM16 average energy %g implausible", e)
	}
	if _, err := QAM16Map(rng.Bits(5)); err == nil {
		t.Error("non-multiple-of-4 bit count must fail")
	}
}

func TestQuickQPSKRoundTrip(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := (int(n8%32) + 1) * 2
		bits := NewPRNG(seed).Bits(n)
		syms, err := QPSKMap(bits)
		if err != nil {
			return false
		}
		return BitErrors(bits, QPSKDemap(syms)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQAM16RoundTrip(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := (int(n8%16) + 1) * 4
		bits := NewPRNG(seed).Bits(n)
		syms, err := QAM16Map(bits)
		if err != nil {
			return false
		}
		return BitErrors(bits, QAM16Demap(syms)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOFDMRoundtripClean(t *testing.T) {
	for _, s := range []Scheme{QPSK, QAM16} {
		for _, n := range []int{64, 256, 512} {
			errs, err := Roundtrip(n, 16, 3, s, 42)
			if err != nil {
				t.Fatalf("scheme %d n %d: %v", s, n, err)
			}
			if errs != 0 {
				t.Errorf("scheme %d n %d: %d bit errors on a clean channel", s, n, errs)
			}
		}
	}
}

func TestModulatorValidation(t *testing.T) {
	m := Modulator{N: 64, L: 8, S: QPSK}
	if _, err := m.Modulate(make([]byte, 10)); err == nil {
		t.Error("wrong bit count must fail")
	}
	d := Demodulator{N: 64, L: 8, S: QPSK}
	if _, err := d.Demodulate(make([]complex128, 10)); err == nil {
		t.Error("wrong frame length must fail")
	}
}

func TestBitErrors(t *testing.T) {
	if BitErrors([]byte{1, 0, 1}, []byte{1, 1, 1}) != 1 {
		t.Error("BitErrors count wrong")
	}
	if BitErrors([]byte{1, 0}, []byte{1, 0, 1}) != 1 {
		t.Error("length mismatch must count as errors")
	}
}

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(5), NewPRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("PRNG must be deterministic per seed")
		}
	}
	if NewPRNG(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestPRNGNormalMoments(t *testing.T) {
	rng := NewPRNG(9)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := rng.Normal()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("variance = %g, want ~1", variance)
	}
}
