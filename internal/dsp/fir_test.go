package dsp

import (
	"math"
	"testing"
)

func TestLowPassTapsProperties(t *testing.T) {
	taps, err := LowPassTaps(0.1, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 31 {
		t.Fatalf("got %d taps", len(taps))
	}
	// Unity DC gain: taps sum to 1.
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("DC gain = %g, want 1", sum)
	}
	// Symmetric (linear phase).
	for i := 0; i < len(taps)/2; i++ {
		if math.Abs(taps[i]-taps[len(taps)-1-i]) > 1e-12 {
			t.Errorf("taps not symmetric at %d", i)
		}
	}
}

func TestLowPassTapsValidation(t *testing.T) {
	if _, err := LowPassTaps(0.6, 31); err == nil {
		t.Error("cutoff >= 0.5 must fail")
	}
	if _, err := LowPassTaps(0.1, 30); err == nil {
		t.Error("even tap count must fail")
	}
	if _, err := LowPassTaps(0.1, 1); err == nil {
		t.Error("too few taps must fail")
	}
}

// gainAt measures the filter's steady-state amplitude response at the
// normalized frequency f.
func gainAt(taps []float64, f float64) float64 {
	fir := NewFIR(taps)
	n := 2048
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i))
	}
	y := fir.Filter(x)
	// Peak amplitude over the settled second half.
	var peak float64
	for _, v := range y[n/2:] {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	return peak
}

func TestLowPassFrequencyResponse(t *testing.T) {
	taps, err := LowPassTaps(0.1, 63)
	if err != nil {
		t.Fatal(err)
	}
	pass := gainAt(taps, 0.02)
	stop := gainAt(taps, 0.35)
	if pass < 0.9 {
		t.Errorf("passband gain %g too low", pass)
	}
	if stop > 0.05 {
		t.Errorf("stopband gain %g too high", stop)
	}
}

func TestBandPassFrequencyResponse(t *testing.T) {
	taps, err := BandPassTaps(0.1, 0.2, 101)
	if err != nil {
		t.Fatal(err)
	}
	in := gainAt(taps, 0.15)
	below := gainAt(taps, 0.02)
	above := gainAt(taps, 0.4)
	if in < 0.8 {
		t.Errorf("in-band gain %g too low", in)
	}
	if below > 0.1 || above > 0.1 {
		t.Errorf("out-of-band gains %g / %g too high", below, above)
	}
	if _, err := BandPassTaps(0.3, 0.2, 101); err == nil {
		t.Error("inverted band must fail")
	}
}

func TestFIRHistoryAcrossBlocks(t *testing.T) {
	taps, _ := LowPassTaps(0.1, 31)
	whole := NewFIR(taps)
	blocked := NewFIR(taps)
	x := make([]float64, 256)
	rng := NewPRNG(13)
	for i := range x {
		x[i] = rng.Normal()
	}
	want := whole.Filter(x)
	var got []float64
	for i := 0; i < len(x); i += 64 {
		got = append(got, blocked.Filter(x[i:i+64])...)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("block processing diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestFIRReset(t *testing.T) {
	taps, _ := LowPassTaps(0.1, 15)
	f := NewFIR(taps)
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	first := f.Filter(x)
	f.Reset()
	second := f.Filter(x)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset must restore initial state")
		}
	}
}

func TestFMRoundTrip(t *testing.T) {
	// Modulate a slow tone, demodulate, verify the tone frequency appears.
	n := 1024
	msg := make([]float64, n)
	for i := range msg {
		msg[i] = math.Sin(2 * math.Pi * 0.01 * float64(i))
	}
	rf := FMModulate(msg, 0.05)
	got := FMDemod(rf)
	// demod[i] ≈ 2π·dev·msg[i]; correlate against the message.
	var corr, e1, e2 float64
	for i := 1; i < n; i++ {
		corr += got[i] * msg[i]
		e1 += got[i] * got[i]
		e2 += msg[i] * msg[i]
	}
	rho := corr / math.Sqrt(e1*e2)
	if rho < 0.99 {
		t.Errorf("FM roundtrip correlation %g, want > 0.99", rho)
	}
}

func TestFMModulateConstantEnvelope(t *testing.T) {
	msg := []float64{0.5, -0.2, 0.9, 0}
	rf := FMModulate(msg, 0.1)
	for i, s := range rf {
		mag := math.Hypot(real(s), imag(s))
		if math.Abs(mag-1) > 1e-12 {
			t.Errorf("sample %d magnitude %g, want 1", i, mag)
		}
	}
}
