package dsp

import (
	"fmt"
)

// Scheme selects the demapping constellation of the reconfigurable
// demodulator: QPSK (M=2) or 16-QAM (M=4), matching the paper's M
// parameter.
type Scheme int

const (
	// QPSK carries 2 bits per carrier (M = 2).
	QPSK Scheme = 2
	// QAM16 carries 4 bits per carrier (M = 4).
	QAM16 Scheme = 4
)

// BitsPerSymbol returns the bits carried per OFDM carrier.
func (s Scheme) BitsPerSymbol() int { return int(s) }

// Modulator builds transmit-side OFDM symbols; it is the inverse of the
// Fig. 7 receive pipeline and exists so tests and examples can generate
// well-formed input for the demodulator.
type Modulator struct {
	N int // carriers per OFDM symbol (power of two)
	L int // cyclic prefix length
	S Scheme
}

// Demodulator is the Fig. 7 receive pipeline in library form:
// RemoveCyclicPrefix -> FFT -> demap. Each call processes one OFDM symbol.
type Demodulator struct {
	N int
	L int
	S Scheme
}

// Modulate converts bits into one time-domain OFDM frame of N+L samples.
// It needs exactly N*BitsPerSymbol bits.
func (m Modulator) Modulate(bits []byte) ([]complex128, error) {
	want := m.N * m.S.BitsPerSymbol()
	if len(bits) != want {
		return nil, fmt.Errorf("dsp: modulate needs %d bits, got %d", want, len(bits))
	}
	var carriers []complex128
	var err error
	switch m.S {
	case QPSK:
		carriers, err = QPSKMap(bits)
	case QAM16:
		carriers, err = QAM16Map(bits)
	default:
		return nil, fmt.Errorf("dsp: unknown scheme %d", m.S)
	}
	if err != nil {
		return nil, err
	}
	if err := IFFT(carriers); err != nil {
		return nil, err
	}
	return AddCyclicPrefix(carriers, m.L)
}

// Demodulate converts one received frame of N+L samples back into bits,
// mirroring the RCP -> FFT -> QPSK/QAM actors of Fig. 7.
func (d Demodulator) Demodulate(frame []complex128) ([]byte, error) {
	if len(frame) != d.N+d.L {
		return nil, fmt.Errorf("dsp: demodulate needs %d samples, got %d", d.N+d.L, len(frame))
	}
	sym, err := RemoveCyclicPrefix(frame, d.L)
	if err != nil {
		return nil, err
	}
	work := append([]complex128(nil), sym...)
	if err := FFT(work); err != nil {
		return nil, err
	}
	switch d.S {
	case QPSK:
		return QPSKDemap(work), nil
	case QAM16:
		return QAM16Demap(work), nil
	default:
		return nil, fmt.Errorf("dsp: unknown scheme %d", d.S)
	}
}

// Roundtrip pushes beta OFDM symbols of random bits through modulation and
// demodulation, returning the bit error count (0 on a clean channel). It is
// the payload-level counterpart of one TPDF iteration with vectorization
// degree beta.
func Roundtrip(n, l, beta int, s Scheme, seed uint64) (int, error) {
	rng := NewPRNG(seed)
	mod := Modulator{N: n, L: l, S: s}
	dem := Demodulator{N: n, L: l, S: s}
	errs := 0
	for b := 0; b < beta; b++ {
		bits := rng.Bits(n * s.BitsPerSymbol())
		frame, err := mod.Modulate(bits)
		if err != nil {
			return 0, err
		}
		got, err := dem.Demodulate(frame)
		if err != nil {
			return 0, err
		}
		errs += BitErrors(bits, got)
	}
	return errs, nil
}
