package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortComps(comps [][]int) {
	for _, c := range comps {
		sort.Ints(c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
}

func TestSCCSimpleCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	comps := g.SCC()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("SCC = %v, want one 3-node component", comps)
	}
}

func TestSCCChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	comps := g.SCC()
	if len(comps) != 4 {
		t.Fatalf("SCC = %v, want 4 singletons", comps)
	}
	// Reverse topological order: sinks first.
	if comps[0][0] != 3 || comps[3][0] != 0 {
		t.Errorf("SCC order = %v, want reverse topological", comps)
	}
}

func TestSCCTwoCycles(t *testing.T) {
	// 0<->1 -> 2<->3, plus isolated 4
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comps := g.SCC()
	sortComps(comps)
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if len(comps) != len(want) {
		t.Fatalf("SCC = %v, want %v", comps, want)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("SCC = %v, want %v", comps, want)
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("SCC = %v, want %v", comps, want)
			}
		}
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if !g.HasSelfLoop(0) || g.HasSelfLoop(1) {
		t.Error("self loop detection wrong")
	}
	comps := g.SCC()
	if len(comps) != 2 {
		t.Errorf("SCC with self loop = %v", comps)
	}
}

func TestTopoSort(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 4; u++ {
		for _, v := range g.Succ(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violates edge %d->%d: %v", u, v, order)
			}
		}
	}
}

func TestTopoSortCycleError(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Error("expected cycle error")
	}
	if g.IsDAG() {
		t.Error("cycle should not be a DAG")
	}
}

func TestCondense(t *testing.T) {
	// 0<->1 -> 2 -> 3<->4
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 3)
	c := g.Condense()
	if c.DAG.N() != 3 {
		t.Fatalf("condensation has %d nodes, want 3", c.DAG.N())
	}
	if !c.DAG.IsDAG() {
		t.Error("condensation must be a DAG")
	}
	if c.Comp[0] != c.Comp[1] || c.Comp[3] != c.Comp[4] || c.Comp[0] == c.Comp[2] {
		t.Errorf("component mapping wrong: %v", c.Comp)
	}
}

func TestReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Errorf("reachable from 0 = %v", r)
	}
}

func TestTranspose(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tr := g.Transpose()
	if len(tr.Succ(1)) != 1 || tr.Succ(1)[0] != 0 {
		t.Errorf("transpose wrong: %v", tr.Succ(1))
	}
	if g.NumEdges() != tr.NumEdges() {
		t.Error("transpose must preserve edge count")
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, err := g.TopoSort(); err != nil {
		t.Errorf("parallel edges should not break topo sort: %v", err)
	}
}

func TestAddEdgeBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge should panic")
		}
	}()
	New(1).AddEdge(0, 1)
}

// randomDigraph builds a reproducible random graph from a seed.
func randomDigraph(seed int64, n, m int) *Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestQuickSCCPartition(t *testing.T) {
	// Components partition the node set.
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8%40) + 1
		m := int(m8 % 120)
		g := randomDigraph(seed, n, m)
		comps := g.SCC()
		seen := map[int]int{}
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCondensationIsDAG(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8%40) + 1
		m := int(m8 % 120)
		g := randomDigraph(seed, n, m)
		return g.Condense().DAG.IsDAG()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSCCMutualReachability(t *testing.T) {
	// Two nodes share a component iff mutually reachable.
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8%16) + 1
		m := int(m8 % 48)
		g := randomDigraph(seed, n, m)
		c := g.Condense()
		reach := make([]map[int]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = g.Reachable(v)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] && reach[v][u]
				if mutual != (c.Comp[u] == c.Comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSCCOrderReverseTopological(t *testing.T) {
	// If component i can reach component j (i != j), then j appears before i
	// in the SCC output order.
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8%24) + 1
		m := int(m8 % 72)
		g := randomDigraph(seed, n, m)
		c := g.Condense()
		for u := 0; u < n; u++ {
			for _, v := range g.Succ(u) {
				if c.Comp[u] != c.Comp[v] && c.Comp[v] > c.Comp[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
