// Package graph provides the directed-multigraph algorithms shared by the
// CSDF and TPDF analyses: strongly connected components (Tarjan), topological
// ordering, condensation and reachability. Nodes are dense integer ids
// assigned by the caller; parallel edges and self-loops are allowed.
package graph

import "fmt"

// Digraph is a directed multigraph over nodes 0..N-1.
type Digraph struct {
	n   int
	adj [][]int // adjacency by node id (targets; duplicates allowed)
}

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// AddEdge adds a directed edge u -> v. Parallel edges accumulate.
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	g.adj[u] = append(g.adj[u], v)
}

// Succ returns the successor list of u (shared slice; do not mutate).
func (g *Digraph) Succ(u int) []int { return g.adj[u] }

// HasSelfLoop reports whether u has an edge to itself.
func (g *Digraph) HasSelfLoop(u int) bool {
	for _, v := range g.adj[u] {
		if v == u {
			return true
		}
	}
	return false
}

// SCC returns the strongly connected components in reverse topological
// order (Tarjan's invariant: a component is emitted only after all the
// components it can reach). Each component lists its member node ids.
func (g *Digraph) SCC() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack []int
		comps [][]int
		next  int
	)

	// Iterative Tarjan to survive deep graphs without blowing the stack.
	type frame struct {
		v  int
		ei int // next edge index to explore
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		var call []frame
		call = append(call, frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comps
}

// TopoSort returns a topological ordering of the nodes, or an error naming a
// node on a cycle if the graph is cyclic.
func (g *Digraph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			indeg[v]++
		}
	}
	var queue []int
	for u := 0; u < g.n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.n {
		for u := 0; u < g.n; u++ {
			if indeg[u] > 0 {
				return nil, fmt.Errorf("graph: cycle through node %d", u)
			}
		}
	}
	return order, nil
}

// IsDAG reports whether the graph has no directed cycle.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Condensation contracts each SCC to a single node and returns the resulting
// DAG together with the mapping node -> component index. Component indices
// follow the SCC() order (reverse topological).
type Condensation struct {
	DAG   *Digraph
	Comp  []int   // node id -> component index
	Comps [][]int // component index -> member node ids
}

// Condense computes the condensation of g.
func (g *Digraph) Condense() Condensation {
	comps := g.SCC()
	comp := make([]int, g.n)
	for ci, members := range comps {
		for _, v := range members {
			comp[v] = ci
		}
	}
	dag := New(len(comps))
	seen := map[[2]int]bool{}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			cu, cv := comp[u], comp[v]
			if cu == cv {
				continue
			}
			k := [2]int{cu, cv}
			if !seen[k] {
				seen[k] = true
				dag.AddEdge(cu, cv)
			}
		}
	}
	return Condensation{DAG: dag, Comp: comp, Comps: comps}
}

// Reachable returns the set of nodes reachable from start (including start).
func (g *Digraph) Reachable(start int) map[int]bool {
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Transpose returns the graph with every edge reversed.
func (g *Digraph) Transpose() *Digraph {
	t := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			t.AddEdge(v, u)
		}
	}
	return t
}

// NumEdges returns the total number of edges (counting multiplicity).
func (g *Digraph) NumEdges() int {
	c := 0
	for _, a := range g.adj {
		c += len(a)
	}
	return c
}
