// Package pool is the bounded worker pool behind every parallel analysis
// driver (sweep sharding, capacity search, image kernels). Work items are
// identified by index and results are written by index, so output order —
// and therefore every rendered table and series — is identical whatever
// the parallelism, and a parallel run is byte-for-byte comparable with a
// sequential one.
package pool

import "sync"

// Workers clamps the requested parallelism to the number of items:
// anything below 2 means sequential.
func Workers(n, parallel int) int {
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}
	return parallel
}

// WorkersAmortized clamps like Workers but additionally guarantees every
// worker at least minPerWorker items. Drivers whose workers pay a fixed
// setup cost (a compiled Program + pooled Simulator pair) use it so the
// setup amortizes: fanning 5 items over 4 workers would build 4 worker
// states to save 1 item of latency.
func WorkersAmortized(n, parallel, minPerWorker int) int {
	if minPerWorker > 1 && parallel > 1 {
		if maxW := n / minPerWorker; parallel > maxW {
			parallel = maxW
		}
	}
	return Workers(n, parallel)
}

// Run invokes fn(i) for every i in [0, n), using up to parallel concurrent
// workers. parallel <= 1 degenerates to a plain loop on the caller's
// goroutine. All items run even when some fail; the returned error is the
// lowest-indexed one, matching what a sequential loop that collects errors
// would report.
func Run(n, parallel int, fn func(i int) error) error {
	return RunWorkers(n, parallel, func(_, i int) error { return fn(i) })
}

// RunWorkers is Run with the worker identity exposed: fn(w, i) runs item i
// on worker w in [0, Workers(n, parallel)). Workers process disjoint items,
// so per-worker state (a pooled simulator, a scratch buffer) needs no
// locking.
func RunWorkers(n, parallel int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(n, parallel)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
