package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/tpdf/obs"
)

// TestEngineMetricsCounters checks the harvested snapshot against the
// exactly-known execution profile of the multirate pipeline: firings are
// q[id] per iteration, token counts are rate sums, rings end at their
// initial occupancy and high-water never exceeds capacity.
func TestEngineMetricsCounters(t *testing.T) {
	g := multiratePipeline(t)
	reg := obs.NewRegistry()
	j := obs.NewJournal(64)
	var sunk int64
	const iters = 10
	if _, err := Run(Config{Graph: g, Behaviors: hotBehaviors(&sunk), Iterations: iters,
		Metrics: reg, Journal: j}); err != nil {
		t.Fatal(err)
	}

	snap := reg.EngineSnapshot()
	if snap.Running {
		t.Error("Running still true after the run ended")
	}
	if snap.Completed != iters {
		t.Errorf("Completed = %d, want %d", snap.Completed, iters)
	}
	if snap.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1 (single epoch, no hook)", snap.Barriers)
	}

	// q = [SRC:1, A:2, B:1, SNK:3]; token counts are per-iteration rate
	// sums times iters.
	want := map[string]struct{ firings, in, out int64 }{
		"SRC": {1 * iters, 0, 4 * iters},
		"A":   {2 * iters, 4 * iters, 4 * iters},
		"B":   {1 * iters, 4 * iters, 3 * iters},
		"SNK": {3 * iters, 3 * iters, 0},
	}
	if len(snap.Actors) != len(want) {
		t.Fatalf("got %d actors, want %d", len(snap.Actors), len(want))
	}
	for _, a := range snap.Actors {
		w, ok := want[a.Name]
		if !ok {
			t.Errorf("unexpected actor %q", a.Name)
			continue
		}
		if a.Firings != w.firings || a.TokensIn != w.in || a.TokensOut != w.out {
			t.Errorf("%s: firings/in/out = %d/%d/%d, want %d/%d/%d",
				a.Name, a.Firings, a.TokensIn, a.TokensOut, w.firings, w.in, w.out)
		}
		if a.BusyNs < 0 || a.BlockedNs < 0 {
			t.Errorf("%s: negative time accounting busy=%d blocked=%d", a.Name, a.BusyNs, a.BlockedNs)
		}
	}

	for _, ed := range snap.Edges {
		if ed.Producer == "" || ed.Consumer == "" {
			t.Errorf("edge %s missing actor names: %+v", ed.Name, ed)
		}
		if ed.Occupancy != 0 {
			t.Errorf("edge %s: occupancy %d after a schedule that returns to empty", ed.Name, ed.Occupancy)
		}
		if ed.HighWater < 1 || ed.HighWater > ed.Capacity {
			t.Errorf("edge %s: high-water %d outside (0, capacity=%d]", ed.Name, ed.HighWater, ed.Capacity)
		}
		if ed.Grows != 0 {
			t.Errorf("edge %s: %d grows without any reconfiguration", ed.Name, ed.Grows)
		}
	}

	evs := j.Events()
	if len(evs) < 2 || evs[0].Kind != obs.EvRunStart || evs[len(evs)-1].Kind != obs.EvRunEnd {
		t.Fatalf("journal should be bracketed by run_start/run_end: %+v", evs)
	}
	if evs[len(evs)-1].Completed != iters {
		t.Errorf("run_end Completed = %d, want %d", evs[len(evs)-1].Completed, iters)
	}
}

// TestEngineMetricsRebindAndDrain drives the rebind counters and the
// journal through a parameter-changing Barrier hook that finally drains:
// every boundary is journaled, changed boundaries carry a rebind with a
// valuation digest, and the drain verdict lands at the right iteration.
func TestEngineMetricsRebindAndDrain(t *testing.T) {
	g := core.NewGraph("rebind")
	g.AddParam("p", 2, 1, 8)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	j := obs.NewJournal(64)
	const stopAt = 4
	res, err := Run(Config{Graph: g, Iterations: 100, Metrics: reg, Journal: j,
		Barrier: func(completed int64) (map[string]int64, bool) {
			if completed == stopAt {
				return nil, true
			}
			// Change p at every boundary after the first iteration.
			if completed > 0 {
				return map[string]int64{"p": 2 + completed%3}, false
			}
			return nil, false
		}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["A"] != stopAt {
		t.Fatalf("A fired %d times, want %d (drain at boundary %d)", res.Firings["A"], stopAt, stopAt)
	}

	snap := reg.EngineSnapshot()
	if snap.Completed != stopAt {
		t.Errorf("Completed = %d, want %d", snap.Completed, stopAt)
	}
	// Boundaries 1..3 change p (completed%3 = 1, 2, 0 -> p = 3, 4, 2);
	// every one of them differs from the previous value.
	if snap.Rebinds != 3 {
		t.Errorf("Rebinds = %d, want 3", snap.Rebinds)
	}
	if snap.RebindNs <= 0 {
		t.Errorf("RebindNs = %d, want > 0", snap.RebindNs)
	}
	if snap.BoundaryNs <= 0 {
		t.Errorf("BoundaryNs = %d, want > 0", snap.BoundaryNs)
	}

	var barriers, rebinds, drains int
	digests := map[uint64]bool{}
	for _, e := range j.Events() {
		switch e.Kind {
		case obs.EvBarrier:
			barriers++
		case obs.EvRebind:
			rebinds++
			if e.ParamsDigest == 0 {
				t.Error("rebind event missing params digest")
			}
			digests[e.ParamsDigest] = true
			if e.DurNs <= 0 {
				t.Error("rebind event missing duration")
			}
		case obs.EvDrain:
			drains++
			if e.Completed != stopAt {
				t.Errorf("drain at completed=%d, want %d", e.Completed, stopAt)
			}
		}
	}
	if barriers != stopAt {
		t.Errorf("journaled %d barriers, want %d", barriers, stopAt)
	}
	if rebinds != 3 {
		t.Errorf("journaled %d rebinds, want 3", rebinds)
	}
	if len(digests) != 3 {
		t.Errorf("got %d distinct digests, want 3 (p = 3, 4, 2)", len(digests))
	}
	if drains != 1 {
		t.Errorf("journaled %d drain verdicts, want 1", drains)
	}
}

// TestWatchdogStallReportNamesActor wedges a two-actor pipeline under an
// undersized capacity override and requires the watchdog's error to name
// the blocked actors, their wait direction, the edge occupancy and the
// last-progress timestamp — a diagnosable report, not just "stall".
func TestWatchdogStallReportNamesActor(t *testing.T) {
	g := core.NewGraph("stall")
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[2]", b, "[3]", 0); err != nil {
		t.Fatal(err)
	}

	j := obs.NewJournal(16)
	// Capacity 3 wedges immediately: A's second firing needs 2 free slots
	// (1 available after the first), B's first needs 3 tokens (2 present).
	_, err := Run(Config{Graph: g, Iterations: 1, Capacity: 3,
		StallTimeout: 30 * time.Millisecond, Journal: j})
	if err == nil {
		t.Fatal("expected a stall error, run completed")
	}
	msg := err.Error()
	for _, want := range []string{
		"deadlock",
		"last progress at",
		"actor A waiting for space",
		"actor B waiting for tokens",
		"(2/3 tokens)",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("stall report missing %q:\n%s", want, msg)
		}
	}

	var warns, stalls int
	for _, e := range j.Events() {
		switch e.Kind {
		case obs.EvStallWarn:
			warns++
		case obs.EvStall:
			stalls++
			if !strings.Contains(e.Detail, "waiting for") {
				t.Errorf("stall event detail lacks diagnosis: %q", e.Detail)
			}
		}
	}
	if warns < 1 {
		t.Error("no watchdog near-miss journaled before the stall")
	}
	if stalls != 1 {
		t.Errorf("journaled %d stall events, want 1", stalls)
	}
}
