package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/symb"
)

// pipeline builds SRC -> A -> B -> SNK with unit rates.
func pipeline(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph("pipe")
	src := g.AddKernel("SRC", 1)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	snk := g.AddKernel("SNK", 1)
	for _, pair := range [][2]core.NodeID{{src, a}, {a, b}, {b, snk}} {
		if _, err := g.Connect(pair[0], "[1]", pair[1], "[1]", 0); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// pipelineBehaviors threads an integer through the chain, each stage adding
// its own offset, and captures the sink values.
func pipelineBehaviors(captured *[]int) map[string]runner.Behavior {
	return map[string]runner.Behavior{
		"SRC": func(f *runner.Firing) error {
			f.Produce("o0", int(f.K))
			return nil
		},
		"A": func(f *runner.Firing) error {
			f.Produce("o0", f.In["i0"][0].(int)*10)
			return nil
		},
		"B": func(f *runner.Firing) error {
			f.Produce("o0", f.In["i0"][0].(int)+1)
			return nil
		},
		"SNK": func(f *runner.Firing) error {
			*captured = append(*captured, f.In["i0"][0].(int))
			return nil
		},
	}
}

func TestRunMatchesRunnerOnPayloadPipeline(t *testing.T) {
	g := pipeline(t)

	var seq []int
	want, err := runner.Run(runner.Config{Graph: g, Behaviors: pipelineBehaviors(&seq), Iterations: 16})
	if err != nil {
		t.Fatal(err)
	}

	var conc []int
	got, err := Run(Config{Graph: g, Behaviors: pipelineBehaviors(&conc), Iterations: 16})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want.Firings, got.Firings) {
		t.Errorf("firings: runner %v, engine %v", want.Firings, got.Firings)
	}
	if !reflect.DeepEqual(want.Remaining, got.Remaining) {
		t.Errorf("remaining: runner %v, engine %v", want.Remaining, got.Remaining)
	}
	if !reflect.DeepEqual(seq, conc) {
		t.Errorf("payload streams differ:\nrunner %v\nengine %v", seq, conc)
	}
}

func TestRunMatchesRunnerOnMultirateApps(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *core.Graph
		env  symb.Env
	}{
		{"fig2", apps.Fig2(), symb.Env{"p": 3}},
		{"ofdm", apps.OFDMTPDF(apps.DefaultOFDM()), nil},
		{"fmradio", apps.FMRadioTPDF(), nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := runner.Run(runner.Config{Graph: tc.g, Env: tc.env, Iterations: 3})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(Config{Graph: tc.g, Env: tc.env, Iterations: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Firings, got.Firings) {
				t.Errorf("firings: runner %v, engine %v", want.Firings, got.Firings)
			}
			if !reflect.DeepEqual(want.Remaining, got.Remaining) {
				t.Errorf("remaining: runner %v, engine %v", want.Remaining, got.Remaining)
			}
		})
	}
}

// TestReconfigureAtTransactionBoundaries drives a graph whose two parallel
// edges both carry p tokens per firing and reconfigures p between
// iterations: every firing must observe the same p on both ports (no mixed
// environment), following exactly the schedule of values the hook applied.
func TestReconfigureAtTransactionBoundaries(t *testing.T) {
	g := core.NewGraph("reconf")
	g.AddParam("p", 2, 1, 8)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}

	plan := []int64{2, 5, 5, 3} // p per iteration
	var observed [][2]int
	behaviors := map[string]runner.Behavior{
		"B": func(f *runner.Firing) error {
			observed = append(observed, [2]int{len(f.In["i0"]), len(f.In["i1"])})
			return nil
		},
	}
	res, err := Run(Config{
		Graph:      g,
		Env:        symb.Env{"p": plan[0]},
		Behaviors:  behaviors,
		Iterations: int64(len(plan)),
		Reconfigure: func(completed int64) map[string]int64 {
			return map[string]int64{"p": plan[completed]}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["B"] != int64(len(plan)) {
		t.Fatalf("B fired %d times, want %d", res.Firings["B"], len(plan))
	}
	for i, ob := range observed {
		if ob[0] != ob[1] {
			t.Errorf("firing %d observed mixed environment: %d vs %d tokens", i, ob[0], ob[1])
		}
		if int64(ob[0]) != plan[i] {
			t.Errorf("firing %d observed p=%d, want %d", i, ob[0], plan[i])
		}
	}
	if len(res.Remaining) != 0 {
		t.Errorf("unexpected leftovers: %v", res.Remaining)
	}
}

// TestReconfigureCarriesLeftoverTokens checks that payloads parked on an
// edge across a reconfiguration boundary survive the channel rebuild in
// FIFO order: three initial tokens keep a 3-deep backlog on e1, so values
// produced in iteration i only reach B three iterations later, across the
// parameter changes in between.
func TestReconfigureCarriesLeftoverTokens(t *testing.T) {
	g := core.NewGraph("carry")
	g.AddParam("p", 1, 1, 8)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[1]", b, "[1]", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}

	var got []any
	behaviors := map[string]runner.Behavior{
		"A": func(f *runner.Firing) error {
			f.Produce("o0", int(f.K))
			return nil
		},
		"B": func(f *runner.Firing) error {
			got = append(got, f.In["i0"][0])
			return nil
		},
	}
	res, err := Run(Config{
		Graph:      g,
		Behaviors:  behaviors,
		Iterations: 5,
		Reconfigure: func(completed int64) map[string]int64 {
			return map[string]int64{"p": completed + 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// B drains the FIFO: the three initial nils, then A's first values.
	want := []any{nil, nil, nil, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("payloads across boundaries: got %v, want %v", got, want)
	}
	if !reflect.DeepEqual(res.Remaining["e1"], []any{2, 3, 4}) {
		t.Errorf("backlog: got %v, want [2 3 4]", res.Remaining["e1"])
	}
}

func TestContextCancellation(t *testing.T) {
	g := pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snkFirings int64
	behaviors := map[string]runner.Behavior{
		"B": func(f *runner.Firing) error {
			if f.K == 0 {
				cancel()
			}
			return nil
		},
		"SNK": func(f *runner.Firing) error {
			snkFirings++
			return nil
		},
	}
	_, err := Run(Config{Graph: g, Context: ctx, Behaviors: behaviors, Iterations: 10000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if snkFirings == 10000 {
		t.Error("cancellation did not stop the run early")
	}
}

func TestBehaviorErrorAbortsRun(t *testing.T) {
	g := pipeline(t)
	boom := errors.New("boom")
	behaviors := map[string]runner.Behavior{
		"A": func(f *runner.Firing) error {
			if f.K == 3 {
				return boom
			}
			return nil
		},
	}
	_, err := Run(Config{Graph: g, Behaviors: behaviors, Iterations: 50})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("got %v, want the behavior error", err)
	}
}

// deadlockDiamond builds a graph that wedges under a capacity-1 override
// even though every per-firing rate is 1 (so the batch clamp keeps the
// override): A must push two e2 tokens before its second phase feeds M,
// but e2 only drains after B consumed M's token — a circular wait. The
// demand schedule needs e2 to hold 2 tokens, so analysis-derived
// capacities run it fine.
func deadlockDiamond(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph("dead")
	a := g.AddKernel("A", 1)
	m := g.AddKernel("M", 1)
	b := g.AddKernel("B", 1)
	// Declaration order fixes the blocking order: B reads M's edge before
	// the direct edge.
	if _, err := g.Connect(m, "[1]", b, "[1,0]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[0,1]", m, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDeadlockDetected forces an artificial deadlock with a too-small
// capacity override. The watchdog must turn the hang into an error.
func TestDeadlockDetected(t *testing.T) {
	g := deadlockDiamond(t)

	_, err := Run(Config{Graph: g, Iterations: 1, Capacity: 1, StallTimeout: 20 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("got %v, want a deadlock diagnostic", err)
	}

	// The analysis-derived capacities run the same graph fine
	// (q = [A:2, M:1, B:2]).
	res, err := Run(Config{Graph: g, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["B"] != 8 {
		t.Fatalf("B fired %d times, want 8", res.Firings["B"])
	}
}

// TestCapacityOverrideClampsToBatchRate pins the batch-transport clamp: a
// capacity-1 override on a rate-2 edge is raised to the batch size, so a
// graph the per-token engine completed under that override still
// completes instead of deadlocking on an impossible 2-token batch in a
// 1-slot ring.
func TestCapacityOverrideClampsToBatchRate(t *testing.T) {
	g := core.NewGraph("clamp")
	a := g.AddKernel("A", 1)
	m := g.AddKernel("M", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(m, "[1]", b, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[2]", b, "[2]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[1]", m, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Graph: g, Iterations: 4, Capacity: 1, StallTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["B"] != 4 {
		t.Fatalf("B fired %d times, want 4", res.Firings["B"])
	}
}

func TestWorkersBoundsConcurrency(t *testing.T) {
	g := core.NewGraph("fan")
	src := g.AddKernel("SRC", 1)
	snk := g.AddKernel("SNK", 1)
	workers := make([]core.NodeID, 4)
	for i := range workers {
		workers[i] = g.AddKernel(fmt.Sprintf("W%d", i), 1)
		if _, err := g.Connect(src, "[1]", workers[i], "[1]", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Connect(workers[i], "[1]", snk, "[1]", 0); err != nil {
			t.Fatal(err)
		}
	}

	var cur, peak atomic.Int64
	var mu sync.Mutex
	behaviors := map[string]runner.Behavior{}
	for i := range workers {
		behaviors[fmt.Sprintf("W%d", i)] = func(f *runner.Firing) error {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			f.Produce("o0", nil)
			return nil
		}
	}
	res, err := Run(Config{Graph: g, Behaviors: behaviors, Iterations: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings["SNK"] != 8 {
		t.Fatalf("SNK fired %d times, want 8", res.Firings["SNK"])
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent behaviors, want <= 2", p)
	}
}

// TestPipelineOverlapsLatency checks the point of the engine: a pipeline of
// latency-bound stages must finish in wall-clock time far below the
// sequential sum of its stage latencies.
func TestPipelineOverlapsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	g := pipeline(t)
	const delay = 2 * time.Millisecond
	const iters = 40
	behaviors := map[string]runner.Behavior{}
	for _, name := range []string{"SRC", "A", "B", "SNK"} {
		behaviors[name] = func(f *runner.Firing) error {
			time.Sleep(delay)
			if len(f.In) > 0 {
				f.Produce("o0", f.In["i0"][0])
			} else {
				f.Produce("o0", nil)
			}
			return nil
		}
	}
	start := time.Now()
	if _, err := Run(Config{Graph: g, Behaviors: behaviors, Iterations: iters}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	sequential := 4 * iters * delay
	if elapsed > sequential*3/4 {
		t.Errorf("pipeline took %v, not meaningfully below the sequential %v", elapsed, sequential)
	}
}
