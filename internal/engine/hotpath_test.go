package engine

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/runner"
	"repro/internal/symb"
	"repro/tpdf/obs"
)

// multiratePipeline builds SRC -[4]->[3,1] A -[2]->[4] B -[3]->[1] SNK: a
// consistent multirate chain (q = [1, 2, 1, 3], 7 firings per iteration)
// with a cyclo-static phase on A, whose schedule returns every edge to its
// initial state, so ring capacities do not depend on the iteration count.
func multiratePipeline(t testing.TB) *core.Graph {
	t.Helper()
	g := core.NewGraph("hot")
	src := g.AddKernel("SRC", 1)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	snk := g.AddKernel("SNK", 1)
	if _, err := g.Connect(src, "[4]", a, "[3,1]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[2]", b, "[4]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "[3]", snk, "[1]", 0); err != nil {
		t.Fatal(err)
	}
	return g
}

// firingsPerIteration of multiratePipeline: sum of q = 1+2+1+3.
const firingsPerIteration = 7

// hotBehaviors pushes pre-boxed small integers through the chain without
// allocating: payload values below 256 use the runtime's static boxes, and
// output appends reuse the scratch's retained capacity.
func hotBehaviors(sunk *int64) map[string]runner.Behavior {
	return map[string]runner.Behavior{
		"SRC": func(f *runner.Firing) error {
			out := f.Out["o0"]
			for j := 0; j < 4; j++ {
				out = append(out, j)
			}
			f.Out["o0"] = out
			return nil
		},
		"A": func(f *runner.Firing) error {
			f.Out["o0"] = append(f.Out["o0"], 1, 2)
			return nil
		},
		"B": func(f *runner.Firing) error {
			f.Out["o0"] = append(f.Out["o0"], 7, 8, 9)
			return nil
		},
		"SNK": func(f *runner.Firing) error {
			*sunk += int64(len(f.In["i0"]))
			return nil
		},
	}
}

// mallocsOfRun measures the process-wide heap allocation count of one
// engine run at the given iteration count. decorate, when non-nil, adjusts
// the config before the run (the metrics-enabled variants hook in here).
func mallocsOfRun(t testing.TB, g *core.Graph, iters int64, decorate func(*Config)) uint64 {
	t.Helper()
	var sunk int64
	behaviors := hotBehaviors(&sunk)
	cfg := Config{Graph: g, Behaviors: behaviors, Iterations: iters}
	if decorate != nil {
		decorate(&cfg)
	}
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m2)
	return m2.Mallocs - m1.Mallocs
}

// TestStreamSteadyStateAllocs pins the warm firing path at zero heap
// allocations per firing, the execution-side mirror of the analysis
// fabric's TestSweepSteadyStateAllocs: two runs differing only in
// iteration count must allocate the same, because everything a firing
// touches — ring slots, the firing scratch, the payload boxes — is
// preallocated or reused. Run setup (goroutines, rings, schedule) is
// identical in both runs and cancels out of the delta.
//
// The metrics variant proves the barrier-harvest rule: with a Registry, a
// Journal and a nil-returning Reconfigure hook attached (so every
// iteration is a separate epoch with a harvest and journal events at its
// boundary), the per-firing and per-barrier paths must still allocate
// nothing — counters are plain stores into preallocated blocks, the
// harvest reuses one stored closure and the snapshot's slices, and journal
// entries land in a preallocated ring.
func TestStreamSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting skipped in -short (race CI inflates runtime bookkeeping)")
	}
	g := multiratePipeline(t)
	const small, big = 64, 4096

	variants := []struct {
		name     string
		decorate func(*Config)
	}{
		{"plain", nil},
		{"metrics", func(cfg *Config) {
			cfg.Metrics = obs.NewRegistry()
			cfg.Journal = obs.NewJournal(128)
		}},
		{"metrics+barriers", func(cfg *Config) {
			cfg.Metrics = obs.NewRegistry()
			cfg.Journal = obs.NewJournal(128)
			cfg.Reconfigure = func(int64) map[string]int64 { return nil }
		}},
		// Checkpoint-armed variants: a capture at every transaction barrier
		// (per-iteration epochs via the nil hook) must stay off the heap —
		// counters land in the preallocated arena, ring contents are peeked
		// into reusable buffers, and the sink's CopyInto reuses its slices.
		{"checkpoint", func(cfg *Config) {
			cfg.Checkpoint = true
			cfg.Reconfigure = func(int64) map[string]int64 { return nil }
		}},
		{"checkpoint+sink", func(cfg *Config) {
			held := &Checkpoint{}
			cfg.CheckpointSink = func(ck *Checkpoint) { ck.CopyInto(held) }
			cfg.Reconfigure = func(int64) map[string]int64 { return nil }
		}},
		{"checkpoint+metrics", func(cfg *Config) {
			cfg.Checkpoint = true
			cfg.Metrics = obs.NewRegistry()
			cfg.Journal = obs.NewJournal(128)
			cfg.Reconfigure = func(int64) map[string]int64 { return nil }
		}},
		// Durable-armed shape: entry captures at every barrier feeding a
		// double-buffered sink (what the durable writer's Offer does) on top
		// of the post-hook captures — still zero heap traffic per firing.
		{"checkpoint+entry+sink", func(cfg *Config) {
			var bufs [2]Checkpoint
			cur := 0
			cfg.Checkpoint = true
			cfg.CaptureAtEntry = true
			cfg.CheckpointSink = func(ck *Checkpoint) {
				if ck.AtEntry {
					ck.CopyInto(&bufs[cur])
					cur ^= 1
				}
			}
			cfg.Reconfigure = func(int64) map[string]int64 { return nil }
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			mallocsOfRun(t, g, small, v.decorate) // warm OS/runtime one-time costs
			smallAllocs := mallocsOfRun(t, g, small, v.decorate)
			bigAllocs := mallocsOfRun(t, g, big, v.decorate)

			extraFirings := float64((big - small) * firingsPerIteration)
			perFiring := (float64(bigAllocs) - float64(smallAllocs)) / extraFirings
			t.Logf("allocs: %d @ %d iters, %d @ %d iters -> %.4f allocs/firing",
				smallAllocs, small, bigAllocs, big, perFiring)
			if perFiring > 0.01 {
				t.Errorf("warm firing path allocates %.4f allocs/firing, want 0", perFiring)
			}
		})
	}
}

// TestTokenOnlyStreamSteadyStateAllocs is the same gate for the
// behavior-less transport path (discard + writeNil, no Firing at all).
func TestTokenOnlyStreamSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting skipped in -short")
	}
	g := multiratePipeline(t)
	measure := func(iters int64) uint64 {
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		if _, err := Run(Config{Graph: g, Iterations: iters}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m2)
		return m2.Mallocs - m1.Mallocs
	}
	measure(64)
	smallAllocs := measure(64)
	bigAllocs := measure(4096)
	perFiring := (float64(bigAllocs) - float64(smallAllocs)) / float64((4096-64)*firingsPerIteration)
	t.Logf("token-only: %.4f allocs/firing", perFiring)
	if perFiring > 0.01 {
		t.Errorf("token-only firing path allocates %.4f allocs/firing, want 0", perFiring)
	}
}

// TestUnchangedReconfigureMatchesPlainStream is the reconfigure-churn
// differential: a hook that returns nil or the current values must leave
// the run byte-identical to a plain Stream — same captured payload
// sequence, same firing counts, same leftovers — while staying in one
// engine state the whole time.
func TestUnchangedReconfigureMatchesPlainStream(t *testing.T) {
	g := core.NewGraph("unchanged")
	g.AddParam("p", 3, 1, 8)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[p]", b, "[p]", 2); err != nil {
		t.Fatal(err)
	}

	capture := func(sink *[]any) map[string]runner.Behavior {
		return map[string]runner.Behavior{
			"A": func(f *runner.Firing) error {
				for j := int64(0); j < 3; j++ {
					f.Out["o0"] = append(f.Out["o0"], int(f.K*3+j))
				}
				return nil
			},
			"B": func(f *runner.Firing) error {
				*sink = append(*sink, append([]any(nil), f.In["i0"]...)...)
				return nil
			},
		}
	}

	var plainSink []any
	plain, err := Run(Config{Graph: g, Behaviors: capture(&plainSink), Iterations: 16})
	if err != nil {
		t.Fatal(err)
	}

	for name, hook := range map[string]func(int64) map[string]int64{
		"nil-hook":       func(int64) map[string]int64 { return nil },
		"unchanged-hook": func(int64) map[string]int64 { return map[string]int64{"p": 3} },
	} {
		t.Run(name, func(t *testing.T) {
			var sink []any
			calls := int64(0)
			res, err := Run(Config{Graph: g, Behaviors: capture(&sink), Iterations: 16,
				Reconfigure: func(completed int64) map[string]int64 {
					calls++
					if calls != completed {
						t.Errorf("hook called out of order: call %d reported %d completed", calls, completed)
					}
					return hook(completed)
				}})
			if err != nil {
				t.Fatal(err)
			}
			if calls != 15 {
				t.Errorf("hook called %d times, want 15 (every interior boundary)", calls)
			}
			if !reflect.DeepEqual(res.Firings, plain.Firings) {
				t.Errorf("firings diverged: %v vs plain %v", res.Firings, plain.Firings)
			}
			if !reflect.DeepEqual(res.Remaining, plain.Remaining) {
				t.Errorf("remaining diverged: %v vs plain %v", res.Remaining, plain.Remaining)
			}
			if !reflect.DeepEqual(sink, plainSink) {
				t.Errorf("payload stream diverged from plain Stream")
			}
		})
	}
}

// BenchmarkStreamReconfigure measures the cost of a transaction boundary
// that changes a parameter every iteration. The "rebind" sub-benchmark is
// the engine's path (Program.Rebind + in-place ring growth); "instantiate"
// prices what the pre-ring engine paid at every such boundary — a full
// Instantiate, repetition vector, schedule and channel rebuild — without
// executing any firings, so the two are directly comparable per boundary.
func BenchmarkStreamReconfigure(b *testing.B) {
	g := core.NewGraph("reconf")
	g.AddParam("p", 2, 1, 8)
	a := g.AddKernel("A", 1)
	s := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[p]", s, "[p]", 0); err != nil {
		b.Fatal(err)
	}
	const iters = 64
	pOf := func(completed int64) int64 { return 2 + completed%3 }

	b.Run("rebind", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := Run(Config{Graph: g, Iterations: iters,
				Reconfigure: func(completed int64) map[string]int64 {
					return map[string]int64{"p": pOf(completed)}
				}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instantiate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for it := int64(1); it < iters; it++ {
				env := symb.Env{"p": pOf(it)}
				cg, _, err := g.Instantiate(env)
				if err != nil {
					b.Fatal(err)
				}
				sol, err := cg.RepetitionVector()
				if err != nil {
					b.Fatal(err)
				}
				sch, err := cg.BuildSchedule(sol, csdf.Demand)
				if err != nil {
					b.Fatal(err)
				}
				for ci := range cg.Edges {
					ch := make(chan any, sch.MaxTokens[ci])
					_ = ch
				}
			}
		}
	})
}

// BenchmarkStreamTransport is the transport-bound benchmark: behaviors do
// no work, so ns/op is dominated by token movement and synchronization —
// the metric the ring transport is built to improve over per-token channel
// sends.
func BenchmarkStreamTransport(b *testing.B) {
	g := multiratePipeline(b)
	var sunk int64
	behaviors := hotBehaviors(&sunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Graph: g, Behaviors: behaviors, Iterations: 256}); err != nil {
			b.Fatal(err)
		}
	}
}
