package engine

import (
	"runtime"
	"sync/atomic"
	"time"
)

// spinYields is how many scheduler yields a ring op tries before the full
// flag-raise/park protocol. A yield lets the peer actor run and publish —
// on a loaded single-core box that usually satisfies the wait without any
// channel traffic, and on a multi-core box the peer is typically mid-batch
// and done by the second check.
const spinYields = 2

// ring is the engine's single-producer/single-consumer token transport: a
// fixed-capacity circular buffer of payload slots with batched, futex-style
// blocking. Each edge of the graph has exactly one producing and one
// consuming actor, so no slot is ever contended — the producer owns tail,
// the consumer owns head, and the only synchronization on the hot path is
// one atomic publish per *batch* (a whole firing's tokens), not one channel
// operation per token as with chan any.
//
// Blocking follows the classic two-phase protocol: the waiter raises its
// flag, re-checks the cursors (the peer orders its cursor publish before
// the flag check, so the Dekker pair can't both miss), and only then parks
// on its wake channel. A stale wakeup token left in the channel costs one
// spin around the loop, never a lost wakeup.
//
// Cursors are absolute token counts (monotonically increasing); occupancy
// is tail-head and slot indices are cursor mod len(buf). The plain `head`
// and `tail` fields are cached copies owned by their side; the atomic
// mirrors are the published values the other side reads.
type ring struct {
	buf []any

	// Consumer side: head is consumer-owned; atomicHead is its published
	// mirror, read by the producer to compute free space.
	head       int64
	atomicHead atomic.Int64
	// Producer side, symmetric.
	tail       int64
	atomicTail atomic.Int64

	// cwait/pwait are the raised-hand flags of the blocking protocol;
	// csig/pwake the capacity-1 wake channels they park on.
	cwait atomic.Bool
	pwait atomic.Bool
	csig  chan struct{}
	psig  chan struct{}

	// pst/cst, when non-nil, collect producer-/consumer-side metrics
	// (parks, spins, wakes, blocked time, occupancy high-water). Each is
	// written only by its owning side with plain stores and read only at
	// barriers; nil when metrics are disabled, keeping the fast paths
	// untouched.
	pst *sideStats
	cst *sideStats
}

func newRing(capacity int64) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{
		buf:  make([]any, capacity),
		csig: make(chan struct{}, 1),
		psig: make(chan struct{}, 1),
	}
}

// cap returns the ring's token capacity.
func (r *ring) cap() int64 { return int64(len(r.buf)) }

// len returns the current occupancy. Only safe when no actor is running
// (the engine calls it at barriers) or from the consumer side.
func (r *ring) len() int64 { return r.atomicTail.Load() - r.atomicHead.Load() }

// waitRead blocks until at least n tokens are published or stop closes
// (returning false). Consumer side only. The fast path is one atomic load
// and a compare; the slow path classifies metrics-enabled waits as spin or
// park with plain counter bumps and reads the clock only around sampled
// channel parks (one in parkSampleMask+1) — spin-resolved waits happen per
// firing under load and parks in a pipelining chain are frequent and
// individually cheap, so a time.Now pair around each would be the dominant
// cost of the instrumentation.
func (r *ring) waitRead(n int64, stop <-chan struct{}) bool {
	if r.atomicTail.Load()-r.head >= n {
		return true
	}
	return r.waitReadSlow(n, stop, r.cst)
}

func (r *ring) waitReadSlow(n int64, stop <-chan struct{}, st *sideStats) bool {
	for s := 0; s < spinYields; s++ {
		runtime.Gosched()
		if r.atomicTail.Load()-r.head >= n {
			if st != nil {
				st.spins++
			}
			return true
		}
	}
	for r.atomicTail.Load()-r.head < n {
		r.cwait.Store(true)
		if r.atomicTail.Load()-r.head >= n {
			r.cwait.Store(false)
			if st != nil {
				st.spins++
			}
			return true
		}
		if st != nil && st.parks&parkSampleMask == 0 {
			st.parks++
			st.timedParks++
			t0 := time.Now()
			select {
			case <-r.csig:
				st.blockedNs += int64(time.Since(t0))
			case <-stop:
				st.blockedNs += int64(time.Since(t0))
				return false
			}
		} else {
			if st != nil {
				st.parks++
			}
			select {
			case <-r.csig:
			case <-stop:
				return false
			}
		}
	}
	return true
}

// waitWrite blocks until at least n slots are free or stop closes
// (returning false). Producer side only; instrumentation follows waitRead.
func (r *ring) waitWrite(n int64, stop <-chan struct{}) bool {
	if r.cap()-(r.tail-r.atomicHead.Load()) >= n {
		return true
	}
	return r.waitWriteSlow(n, stop, r.pst)
}

func (r *ring) waitWriteSlow(n int64, stop <-chan struct{}, st *sideStats) bool {
	for s := 0; s < spinYields; s++ {
		runtime.Gosched()
		if r.cap()-(r.tail-r.atomicHead.Load()) >= n {
			if st != nil {
				st.spins++
			}
			return true
		}
	}
	for r.cap()-(r.tail-r.atomicHead.Load()) < n {
		r.pwait.Store(true)
		if r.cap()-(r.tail-r.atomicHead.Load()) >= n {
			r.pwait.Store(false)
			if st != nil {
				st.spins++
			}
			return true
		}
		if st != nil && st.parks&parkSampleMask == 0 {
			st.parks++
			st.timedParks++
			t0 := time.Now()
			select {
			case <-r.psig:
				st.blockedNs += int64(time.Since(t0))
			case <-stop:
				st.blockedNs += int64(time.Since(t0))
				return false
			}
		} else {
			if st != nil {
				st.parks++
			}
			select {
			case <-r.psig:
			case <-stop:
				return false
			}
		}
	}
	return true
}

// publish advances the producer cursor by n (after the slots were filled)
// and wakes a waiting consumer. The atomic store orders the slot writes
// before the consumer's reads. With metrics enabled the producer also
// tracks the occupancy high-water mark (one extra atomic load per batch).
func (r *ring) publish(n int64) {
	r.tail += n
	r.atomicTail.Store(r.tail)
	if st := r.pst; st != nil {
		if occ := r.tail - r.atomicHead.Load(); occ > st.highWater {
			st.highWater = occ
		}
	}
	if r.cwait.CompareAndSwap(true, false) {
		if st := r.pst; st != nil {
			st.wakes++
		}
		select {
		case r.csig <- struct{}{}:
		default:
		}
	}
}

// release advances the consumer cursor by n (after the slots were copied
// out) and wakes a waiting producer.
func (r *ring) release(n int64) {
	r.head += n
	r.atomicHead.Store(r.head)
	if r.pwait.CompareAndSwap(true, false) {
		if st := r.cst; st != nil {
			st.wakes++
		}
		select {
		case r.psig <- struct{}{}:
		default:
		}
	}
}

// read blocks for n tokens, copies them into dst[:n] in FIFO order, nils
// the vacated slots (payloads must not be retained by the ring) and
// releases them. Returns false when stop closed first.
func (r *ring) read(dst []any, n int64, stop <-chan struct{}) bool {
	if n == 0 {
		return true
	}
	if !r.waitRead(n, stop) {
		return false
	}
	size := int64(len(r.buf))
	i := r.head % size
	for j := int64(0); j < n; j++ {
		dst[j] = r.buf[i]
		r.buf[i] = nil
		if i++; i == size {
			i = 0
		}
	}
	r.release(n)
	return true
}

// discard blocks for n tokens and drops them (the behavior-less node path:
// payloads are consumed but not observed).
func (r *ring) discard(n int64, stop <-chan struct{}) bool {
	if n == 0 {
		return true
	}
	if !r.waitRead(n, stop) {
		return false
	}
	size := int64(len(r.buf))
	i := r.head % size
	for j := int64(0); j < n; j++ {
		r.buf[i] = nil
		if i++; i == size {
			i = 0
		}
	}
	r.release(n)
	return true
}

// write blocks for space and publishes the batch vals as one unit: the
// consumer observes either none or all of a firing's tokens on this edge.
func (r *ring) write(vals []any, stop <-chan struct{}) bool {
	n := int64(len(vals))
	if n == 0 {
		return true
	}
	if !r.waitWrite(n, stop) {
		return false
	}
	size := int64(len(r.buf))
	i := r.tail % size
	for j := int64(0); j < n; j++ {
		r.buf[i] = vals[j]
		if i++; i == size {
			i = 0
		}
	}
	r.publish(n)
	return true
}

// writeNil blocks for space and publishes n nil payloads (the token-only
// path: nodes without a behavior emit placeholder payloads at the port
// rates, exactly like the sequential runner).
func (r *ring) writeNil(n int64, stop <-chan struct{}) bool {
	if n == 0 {
		return true
	}
	if !r.waitWrite(n, stop) {
		return false
	}
	size := int64(len(r.buf))
	i := r.tail % size
	for j := int64(0); j < n; j++ {
		r.buf[i] = nil
		if i++; i == size {
			i = 0
		}
	}
	r.publish(n)
	return true
}

// drain empties the ring into a fresh slice in FIFO order. Only called at
// barriers (no actor running); nil when the ring is empty.
func (r *ring) drain() []any {
	n := r.len()
	if n == 0 {
		return nil
	}
	out := make([]any, n)
	size := int64(len(r.buf))
	i := r.head % size
	for j := int64(0); j < n; j++ {
		out[j] = r.buf[i]
		r.buf[i] = nil
		if i++; i == size {
			i = 0
		}
	}
	r.head += n
	r.atomicHead.Store(r.head)
	return out
}

// peek copies the ring's oldest len(dst) tokens into dst in FIFO order
// without advancing the consumer cursor. Only called at barriers (no actor
// running) — this is the checkpoint capture path, which must observe the
// ring without disturbing it.
func (r *ring) peek(dst []any) {
	n := int64(len(dst))
	size := int64(len(r.buf))
	i := r.head % size
	for j := int64(0); j < n; j++ {
		dst[j] = r.buf[i]
		if i++; i == size {
			i = 0
		}
	}
}

// restore rewrites the ring's content to exactly vals (FIFO order) and
// resets the blocking protocol: wait flags lowered, stale wake tokens
// drained. Only called at barriers or before the actors start — both
// sides' cached cursors are rewritten, and the dispatch that (re)starts the
// actors orders these writes before their reads.
func (r *ring) restore(vals []any) {
	if int64(len(vals)) > r.cap() {
		r.buf = make([]any, len(vals))
	}
	for i := range r.buf {
		r.buf[i] = nil
	}
	copy(r.buf, vals)
	r.head, r.tail = 0, int64(len(vals))
	r.atomicHead.Store(r.head)
	r.atomicTail.Store(r.tail)
	// An actor cancelled inside a ring wait may have left its flag raised
	// or a wake token pending; either would corrupt the next epoch's
	// blocking protocol.
	r.cwait.Store(false)
	r.pwait.Store(false)
	select {
	case <-r.csig:
	default:
	}
	select {
	case <-r.psig:
	default:
	}
}

// grow resizes the ring to at least capacity tokens, preserving contents in
// FIFO order. Only called at barriers: both sides' cached cursors are
// rewritten, and the dispatch that restarts the actors orders these writes
// before their reads. Shrinking never happens — a larger capacity is always
// admissible, and keeping the high-water allocation avoids churn.
func (r *ring) grow(capacity int64) {
	if capacity <= r.cap() {
		return
	}
	live := r.drain()
	r.buf = make([]any, capacity)
	r.head, r.tail = 0, int64(len(live))
	r.atomicHead.Store(r.head)
	r.atomicTail.Store(r.tail)
	copy(r.buf, live)
}
