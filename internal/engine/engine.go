// Package engine executes TPDF graphs concurrently at the payload level:
// one persistent goroutine per actor, edges wired as single-producer/
// single-consumer ring buffers that move a whole firing's token batch per
// synchronization, natural backpressure from ring capacity, and the paper's
// transaction semantics — parameter values change only at transaction
// (iteration) boundaries, so no firing ever observes a mixed environment.
//
// It is the concurrent counterpart of internal/runner: behaviors, firing
// contexts and results are shared with it, and for any graph the runner
// completes, engine.Run produces the identical Result (same firing counts,
// same leftover payloads in the same FIFO order). Determinism follows from
// the model: every edge has exactly one producer and one consumer, each
// actor fires sequentially in its own goroutine, and payload routing
// depends only on firing indices — so the execution is a conflict-free
// (hence confluent) system and every interleaving reaches the same final
// state.
//
// The hot path is allocation-free: actors are spawned once per Run and
// parked at transaction barriers, each actor reuses a runner.Scratch firing
// context (maps materialized once, payload slices truncated in place), and
// the ring transport copies interface values without boxing. The graph is
// compiled once (core.Compile); a transaction boundary that changes
// parameters is a Program.Rebind — rate tables and the repetition vector
// overwritten in place — plus in-place ring growth, never a fresh
// instantiation or channel rebuild. The engine is the Program's single
// writer: rebinding happens only while every actor is parked at the
// barrier.
//
// Ring capacities default to the per-edge high-water marks of the
// demand-driven sequential schedule (the same analysis-derived bounds
// Analyze and internal/buffer report), corrected for per-iteration token
// drift on non-returning edges. Capacities that admit one complete
// schedule make the blocking execution deadlock-free; a progress watchdog
// still guards user-overridden (possibly too small) capacities.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/symb"
	"repro/tpdf/obs"
)

// Config configures a concurrent payload run.
type Config struct {
	Graph *core.Graph
	// Skeleton, when non-nil, is the shared compile product to stamp this
	// run's Program from instead of compiling Graph: the skeleton is
	// read-only and may be shared by any number of concurrent runs (a
	// server's program cache compiles each graph once and every session
	// stamps its own Program, preserving the single-writer rule per run).
	// It must have been compiled from Graph; Graph may be nil, in which
	// case the skeleton's source graph is used.
	Skeleton *core.Skeleton
	// Env instantiates the graph's parameters (defaults used when nil).
	Env symb.Env
	// Behaviors maps node names to firing functions, exactly as in
	// runner.Config: nodes without one forward nil payloads at the port
	// rates.
	Behaviors map[string]runner.Behavior
	// Iterations repeats the graph iteration (default 1).
	Iterations int64
	// Context, when non-nil, cancels the run: every blocked ring
	// operation also waits on it, so cancellation interrupts a stalled
	// pipeline, not just the gaps between firings.
	Context context.Context
	// Workers bounds how many behaviors execute concurrently; 0 means one
	// in-flight behavior per actor (full pipeline parallelism).
	Workers int
	// Capacity, when positive, overrides every ring's token capacity
	// (clamped up to the edge's initial token count and its largest
	// per-firing rate — a whole batch must fit). Zero selects the
	// analysis-derived per-edge bounds.
	Capacity int64
	// Reconfigure, when set, is called at every transaction boundary with
	// the number of completed iterations (1, 2, ...) and may return new
	// parameter values for the remaining iterations; nil or empty keeps
	// the current environment. The engine drains the pipeline to a
	// quiescent state before applying the change, so in-flight firings
	// never observe a mix of old and new parameter values. Boundaries
	// whose hook keeps the environment unchanged stay in the same engine
	// state: no rebind, no schedule rebuild, no ring resize — just the
	// barrier itself (two channel hops per actor).
	Reconfigure func(completed int64) map[string]int64
	// Barrier is the server-grade generalization of Reconfigure: when set,
	// it is consulted at every transaction boundary *including before the
	// first iteration* (completed = 0, 1, 2, ...) and its verdict drives
	// the run. Returning stop = true ends the run cleanly at the boundary:
	// the epoch loop exits, the Result reports the firings and leftover
	// ring contents accumulated so far, and no error is raised — this is
	// how a long-running session drains at a quiescent barrier instead of
	// being cancelled mid-iteration. Returned parameters are applied
	// exactly like Reconfigure's. The hook may block (a session parked
	// between client requests blocks here waiting for the next command);
	// the engine counts boundary work as busy, so a parked session never
	// trips the stall watchdog. A blocking hook must watch the run's
	// Context itself and return stop when it is cancelled — the engine
	// cannot interrupt user code. Mutually exclusive with Reconfigure.
	Barrier func(completed int64) (params map[string]int64, stop bool)
	// StallTimeout tunes the deadlock watchdog: if no firing completes and
	// no behavior runs for two consecutive windows, the run fails with a
	// diagnostic instead of hanging. Default 500ms.
	StallTimeout time.Duration
	// Metrics, when non-nil, receives per-actor and per-edge counters.
	// Actors update private cache-line-padded blocks with plain stores on
	// the hot path; the engine copies them into the registry only at
	// transaction barriers (and at run start/end), so the warm firing path
	// stays allocation-free and the snapshot is always consistent.
	Metrics *obs.Registry
	// Journal, when non-nil, receives transaction-trace events: run
	// start/end, barrier spans, rebinds (with params digest), drain
	// verdicts and watchdog near-misses. Recording is bounded and
	// allocation-free; the hot firing path never records.
	Journal *obs.Journal
	// Checkpoint arms barrier checkpointing without a sink: the engine
	// maintains an internal arena snapshot of the quiescent state at every
	// transaction boundary — the state panic rollback restores. Arming
	// never changes the epoch structure, and warm captures reuse the arena,
	// so the firing path stays allocation-free.
	Checkpoint bool
	// CheckpointSink, when non-nil, arms checkpointing and receives the
	// arena after each capture. The pointer is valid only during the call;
	// use Checkpoint.CopyInto or Clone to keep state across calls.
	CheckpointSink func(*Checkpoint)
	// CaptureAtEntry additionally captures a checkpoint at every barrier
	// *entry* — after the previous epoch drained, before the boundary's
	// hook and rebind run — marked with Checkpoint.AtEntry. Entry captures
	// are the cuts durable persistence needs: when a Barrier hook
	// acknowledges completed work from inside the boundary, the newest
	// entry capture already covers every completed iteration, whereas the
	// regular post-hook capture for that boundary is only taken once the
	// hook has returned. Each boundary then produces two sink calls: the
	// entry cut, then the post-hook cut (which stays the rollback target).
	// Requires checkpointing to be armed; captures stay allocation-free.
	CaptureAtEntry bool
	// Resume, when non-nil, starts the run from a checkpoint instead of
	// the initial token state: ring contents, firing counters and the
	// captured valuation are installed before the first epoch. Iterations
	// is the *total* target — a run resumed at Completed=c performs
	// Iterations-c more iterations, and its output is byte-identical to an
	// uninterrupted run of the same length. A checkpoint with AtEntry set
	// re-invokes the hook of the boundary it was cut at (the hook's
	// effects are not part of the state); any other checkpoint skips that
	// boundary's hook, exactly as before.
	Resume *Checkpoint
	// PanicRetries bounds in-engine panic recovery: a behavior panic
	// aborts the in-flight transaction and, while the budget lasts (and a
	// checkpoint arena exists), rolls the run back to the last barrier
	// checkpoint and retries the epoch. At 0 (the default) a panic ends
	// the run with a BehaviorPanicError — still recovered, the process
	// never crashes.
	PanicRetries int
	// ValidateRebind, when set, is consulted at reconfiguration boundaries
	// after the rebind has been applied and re-scheduled but before it
	// takes effect; returning an error aborts the reconfiguration
	// (ErrRebindAborted) and the previous valuation is restored.
	ValidateRebind func(params map[string]int64) error
	// OnRebindAbort, when set, makes rebind aborts non-fatal: the abort is
	// reported through it and the run continues under the previous
	// valuation. When nil, an aborted rebind ends the run with the error.
	OnRebindAbort func(error)
	// SnapshotUser and RestoreUser extend checkpoints with behavior-side
	// state: SnapshotUser runs at each capture (its return value travels
	// in Checkpoint.User), RestoreUser at each rollback or resume — so a
	// stateful sink's output can be rolled back in lockstep with the
	// engine and a recovered run stays byte-identical end to end.
	SnapshotUser func() any
	RestoreUser  func(any)
	// Faults, when non-nil, injects the plan's deterministic fault
	// schedule at behavior firings and rebind boundaries. Test-only.
	Faults *faultinject.Plan
}

// portEdge pairs a concrete edge index with the port name an actor sees it
// under, mirroring internal/runner so In/Out maps are assembled in the
// same order.
type portEdge struct {
	edge int
	port string
}

// engine is one Run's execution state. The concrete CSDF graph and the
// repetition vector live in the compiled Program and are rewritten in
// place at transaction boundaries; everything else (rings, wiring,
// scratches) is built once and reused for the whole run.
type engine struct {
	cfg  Config
	prog *core.Program
	cg   *csdf.Graph

	// stop is closed on the first error/cancellation and *replaced* by a
	// panic rollback (only at a quiescent barrier, every actor parked —
	// the epoch dispatch orders the replacement before the actors' next
	// read). stopped mirrors it for branch-cheap per-firing checks. Both
	// are guarded by mu together with err.
	stop    chan struct{}
	stopped atomic.Bool
	quit    chan struct{} // closed when Run returns: actors exit
	mu      sync.Mutex
	err     error

	rings []*ring
	ins   [][]portEdge
	outs  [][]portEdge
	// behaviors and scratches are indexed by node; scratch is nil for
	// token-only nodes (no behavior), which never materialize a Firing.
	behaviors []runner.Behavior
	scratches []*runner.Scratch
	// inBuf holds, per node and input-edge position, the reusable payload
	// slice the ring batch is copied into; it backs the Firing's In map.
	inBuf [][][]any

	// fired is each node's cumulative firing count, owned by the node's
	// goroutine during an epoch and by Run between epochs. base is the
	// count at the last environment change: rate sequences index from
	// there, Firing.K stays global.
	fired []int64
	base  []int64

	// work dispatches one epoch's firing total to each actor; wg is the
	// epoch barrier.
	work []chan int64
	wg   sync.WaitGroup

	// ops counts completed firings; busy counts actors inside (or queued
	// for) a behavior plus the main goroutine while it is doing boundary
	// work. Together they let the watchdog distinguish a stalled pipeline
	// from a slow behavior or a slow reconfiguration hook.
	ops  atomic.Int64
	busy atomic.Int64
	sem  chan struct{}

	// mx/jr are the optional observability sinks (Config.Metrics/Journal);
	// edgeProd/edgeCons name the actor on each side of every concrete
	// edge, for harvest snapshots and watchdog stall diagnosis.
	mx       *engMetrics
	jr       *obs.Journal
	edgeProd []string
	edgeCons []string

	// ckpt is the preallocated checkpoint arena (nil when not armed);
	// ckptParamsStale marks the arena's valuation copy out of date, set at
	// init and at boundaries that change the environment. faults is the
	// optional injection plan; prevBinds journals one boundary's parameter
	// overwrites so an aborted rebind restores the previous valuation
	// without allocating.
	ckpt            *Checkpoint
	ckptParamsStale bool
	faults          *faultinject.Plan
	prevBinds       []prevBind
}

// prevBind is one recorded parameter overwrite: key, previous value, and
// whether the key existed before the boundary.
type prevBind struct {
	k   string
	v   int64
	had bool
}

// fail records the first error and closes the current stop channel. Not
// once-gated: a panic rollback clears the error and replaces the channel,
// after which the next failure must be recordable again.
func (e *engine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
		e.stopped.Store(true)
		close(e.stop)
	}
	e.mu.Unlock()
}

func (e *engine) firstErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Run executes the configured number of iterations concurrently and
// returns the same Result the sequential runner would.
func Run(cfg Config) (*runner.Result, error) {
	if cfg.Reconfigure != nil && cfg.Barrier != nil {
		return nil, fmt.Errorf("engine: Reconfigure and Barrier are mutually exclusive")
	}
	g := cfg.Graph
	var prog *core.Program
	if sk := cfg.Skeleton; sk != nil {
		if g == nil {
			g = sk.Source()
		} else if g != sk.Source() {
			return nil, fmt.Errorf("engine: Skeleton was compiled from a different graph than Config.Graph")
		}
		prog = sk.NewProgram()
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	env := symb.Env{}
	for k, v := range g.DefaultEnv() {
		env[k] = v
	}
	for k, v := range cfg.Env {
		env[k] = v
	}
	resume := cfg.Resume
	if resume != nil {
		// The checkpoint's valuation wins: the resumed run continues under
		// exactly the parameters active at capture.
		for k, v := range resume.Params {
			env[k] = v
		}
		if resume.Completed > iters {
			return nil, fmt.Errorf("engine: resume: checkpoint has %d completed iterations, Iterations is %d", resume.Completed, iters)
		}
	}

	if prog == nil {
		var err error
		prog, err = core.Compile(g)
		if err != nil {
			return nil, err
		}
	}
	if err := prog.Rebind(env); err != nil {
		return nil, err
	}

	cfg.Graph = g // wire/runActor read node metadata through cfg.Graph
	e := &engine{
		cfg:   cfg,
		prog:  prog,
		cg:    prog.Concrete(),
		stop:  make(chan struct{}),
		quit:  make(chan struct{}),
		fired: make([]int64, len(g.Nodes)),
		base:  make([]int64, len(g.Nodes)),
	}
	e.faults = cfg.Faults
	if cfg.Workers > 0 {
		e.sem = make(chan struct{}, cfg.Workers)
	}
	// Main counts as busy whenever it is not parked waiting for an epoch:
	// boundary work (rebinds, user hooks) must not trip the watchdog.
	e.busy.Add(1)

	start := int64(0)
	if resume != nil {
		if err := e.validateResume(resume); err != nil {
			return nil, err
		}
		start = resume.Completed
	}
	if err := e.wire(iters-start, resume); err != nil {
		return nil, err
	}
	if resume != nil {
		copy(e.fired, resume.Fired)
		copy(e.base, resume.Base)
		if cfg.RestoreUser != nil {
			cfg.RestoreUser(resume.User)
		}
	}
	armed := cfg.Checkpoint || cfg.CheckpointSink != nil || cfg.CaptureAtEntry || cfg.PanicRetries > 0 || resume != nil
	if armed {
		e.ckpt = e.newCheckpointArena()
		e.ckptParamsStale = true
		if resume != nil {
			// The rollback target must exist before the first fresh capture:
			// the restored state is the checkpoint.
			resume.CopyInto(e.ckpt)
		}
	}
	e.jr = cfg.Journal
	if cfg.Metrics != nil {
		e.mx = e.newEngMetrics(cfg.Metrics)
	}
	// Publish an initial snapshot so readers see names, capacities and the
	// seeded occupancies as soon as the run exists.
	e.harvest(start, true)
	e.record(obs.Event{Kind: obs.EvRunStart, Completed: start})

	defer close(e.quit)
	for id := range g.Nodes {
		go e.actorLoop(id)
	}
	stopWatch := e.startWatchdog()
	defer stopWatch()

	if ctx := cfg.Context; ctx != nil {
		ctxDone := make(chan struct{})
		defer close(ctxDone)
		// The watcher must not exit on e.stop: a panic rollback clears the
		// run error and the engine keeps going, so cancellation has to stay
		// armed for the whole run. A cancellation that lands while a panic
		// error is pending is a no-op here — rollbackAfterAbort re-checks
		// ctx.Err for exactly that window.
		go func() {
			select {
			case <-ctx.Done():
				e.fail(ctx.Err())
			case <-ctxDone:
			}
		}()
	}

	barrier := cfg.Barrier
	if barrier == nil && cfg.Reconfigure != nil {
		// Reconfigure keeps its documented contract — consulted only at
		// boundaries with at least one completed iteration, never stopping
		// the run — expressed as a Barrier.
		barrier = func(completed int64) (map[string]int64, bool) {
			if completed == 0 {
				return nil, false
			}
			return cfg.Reconfigure(completed), false
		}
	}
	obsOn := e.mx != nil || e.jr != nil
	// envDigest identifies the active valuation on rebind events and in
	// checkpoints. It is maintained incrementally (XOR out the old binding,
	// XOR in the new) because re-hashing the whole map at every rebind
	// boundary costs a map iteration per barrier.
	digestOn := (obsOn && barrier != nil) || armed
	var envDigest uint64
	if digestOn {
		envDigest = obs.ParamsDigest(map[string]int64(env))
	}
	completed := start
	retries := 0
	if barrier == nil {
		if armed {
			e.capture(start, env, envDigest, true)
		}
		if iters > start {
			if err := e.runGuarded(iters-start, start, &retries); err != nil {
				return nil, err
			}
		}
		completed = iters
	} else {
		// A resumed run skips the first boundary's hook, rebind and
		// capture: the checkpoint was taken after that boundary's work ran
		// (captures are post-hook, post-rebind, pre-epoch), so re-invoking
		// it would double-apply the boundary — and the restored state *is*
		// the checkpoint. An *entry* checkpoint is the opposite cut — taken
		// before the hook ran — so resuming from one must consult the hook.
		skip := resume != nil && !resume.AtEntry
	loop:
		for it := start; it < iters; it++ {
			if !skip {
				if armed && cfg.CaptureAtEntry {
					e.capture(it, env, envDigest, true)
				}
				var bt time.Time
				if obsOn {
					bt = time.Now()
				}
				over, stopNow := barrier(it)
				if stopNow {
					// Clean drain at the quiescent boundary: actors are parked,
					// leftover tokens stay on their edges and are reported in
					// Result.Remaining below.
					e.record(obs.Event{Kind: obs.EvDrain, Completed: it})
					break loop
				}
				// A hook may have blocked across a cancellation; don't start
				// another epoch on a dead run (runEpoch would catch it, but the
				// rebind below must not run either).
				if err := e.firstErr(); err != nil {
					return nil, err
				}
				// Clock discipline: time.Now costs ~50-100ns on virtualized
				// hosts, so the boundary takes at most three reads (bt above, rt
				// below, bend here) and every journal event is stamped from bend
				// rather than letting Record read the clock again.
				var bend time.Time
				if len(over) > 0 {
					changed := false
					e.prevBinds = e.prevBinds[:0]
					for k, v := range over {
						if old, ok := env[k]; !ok || old != v {
							e.prevBinds = append(e.prevBinds, prevBind{k, old, ok})
							if digestOn {
								if ok {
									envDigest ^= obs.BindingDigest(k, old)
								}
								envDigest ^= obs.BindingDigest(k, v)
							}
							env[k] = v
							changed = true
						}
					}
					if changed {
						e.ckptParamsStale = true
						var rt time.Time
						if obsOn {
							rt = time.Now()
						}
						err := e.reconfigure(env, iters-it, it)
						switch {
						case err != nil && errors.Is(err, ErrRebindAborted):
							// Speculative rebind abort: restore the previous
							// valuation (replaying the recorded bindings through
							// the XOR digest undoes it — the update is an
							// involution) and rebind the program back to it.
							// Validation ran before any ring grew, so ring
							// capacities need no repair.
							for _, pb := range e.prevBinds {
								if digestOn {
									envDigest ^= obs.BindingDigest(pb.k, env[pb.k])
									if pb.had {
										envDigest ^= obs.BindingDigest(pb.k, pb.v)
									}
								}
								if pb.had {
									env[pb.k] = pb.v
								} else {
									delete(env, pb.k)
								}
							}
							if rerr := e.prog.Rebind(env); rerr != nil {
								return nil, fmt.Errorf("engine: restoring valuation after aborted rebind: %v", rerr)
							}
							if e.mx != nil {
								e.mx.aborts++
							}
							e.record(obs.Event{Kind: obs.EvAbort, Completed: it,
								ParamsDigest: envDigest, Detail: "rebind"})
							if e.cfg.OnRebindAbort == nil {
								return nil, err
							}
							e.cfg.OnRebindAbort(err)
						case err != nil:
							return nil, err
						case obsOn:
							bend = time.Now()
							rd := int64(bend.Sub(rt))
							if e.mx != nil {
								e.mx.rebinds++
								e.mx.rebindNs += rd
							}
							e.record(obs.Event{TimeUnixNano: bend.UnixNano(),
								Kind: obs.EvRebind, Completed: it, DurNs: rd,
								ParamsDigest: envDigest})
						}
					}
				}
				if obsOn {
					if bend.IsZero() {
						bend = time.Now()
					}
					bd := int64(bend.Sub(bt))
					if e.mx != nil {
						e.mx.boundaryNs += bd
					}
					e.record(obs.Event{TimeUnixNano: bend.UnixNano(),
						Kind: obs.EvBarrier, Completed: it, DurNs: bd})
				}
				if armed {
					e.capture(it, env, envDigest, false)
				}
			}
			skip = false
			if err := e.runGuarded(1, it, &retries); err != nil {
				return nil, err
			}
			completed = it + 1
			e.harvest(completed, true)
		}
	}
	if armed {
		// The final quiescent state is a checkpoint too: a drained session
		// hands its sink the exact cut it stopped at. It is an entry cut:
		// whether the run drained at a stop verdict or exhausted its
		// iterations, the boundary at `completed` applied no work to the
		// state (a stop verdict rebinds nothing), so a resume from here
		// must consult the hook at `completed` — exactly what an
		// uninterrupted longer run would have done.
		e.capture(completed, env, envDigest, true)
	}
	e.harvest(completed, false)
	e.record(obs.Event{Kind: obs.EvRunEnd, Completed: completed})

	res := &runner.Result{Firings: map[string]int64{}, Remaining: map[string][]any{}}
	for id, n := range g.Nodes {
		if e.fired[id] > 0 {
			res.Firings[n.Name] = e.fired[id]
		}
	}
	for ci := range e.cg.Edges {
		if vals := e.rings[ci].drain(); len(vals) > 0 {
			res.Remaining[e.cg.Edges[ci].Name] = vals
		}
	}
	return res, nil
}

// capacityFor sizes one ring from the schedule's high-water mark, with
// drift headroom for edges that accumulate tokens across the remaining
// iterations, the user override, and the floor of the current content.
// Because the transport is batched — a firing's whole batch must fit in
// (or be available from) the ring at once, where the old per-token
// channels could trickle — every capacity is also clamped up to the
// edge's largest per-firing rate.
func (e *engine) capacityFor(sch *csdf.Schedule, ci int, horizon int64) int64 {
	capTok := sch.MaxTokens[ci]
	if drift := sch.Final[ci] - e.cg.Edges[ci].Initial; drift > 0 && horizon > 1 {
		capTok += (horizon - 1) * drift
	}
	if e.cfg.Capacity > 0 {
		capTok = e.cfg.Capacity
	}
	if capTok < 1 {
		capTok = 1
	}
	if capTok < e.cg.Edges[ci].Initial {
		capTok = e.cg.Edges[ci].Initial
	}
	for _, r := range e.cg.Edges[ci].Prod {
		if capTok < r {
			capTok = r
		}
	}
	for _, r := range e.cg.Edges[ci].Cons {
		if capTok < r {
			capTok = r
		}
	}
	return capTok
}

// wire builds the run-once state: rings sized for `horizon` iterations
// (seeded with the declared initial tokens, or the checkpoint's ring
// contents when resuming), per-node port wiring, and the reusable firing
// scratches of every node that has a behavior.
func (e *engine) wire(horizon int64, resume *Checkpoint) error {
	g := e.cfg.Graph
	if resume != nil {
		// The schedule (and the capacity bounds) must start from the tokens
		// actually in the checkpoint, not the declared initial state —
		// exactly as reconfigure does at a live boundary.
		for ci := range e.cg.Edges {
			e.cg.Edges[ci].Initial = int64(len(resume.Edges[ci]))
		}
	}
	sch, err := e.cg.BuildSchedule(e.prog.Solution(), csdf.Demand)
	if err != nil {
		return fmt.Errorf("engine: no sequential schedule: %v", err)
	}

	e.rings = make([]*ring, len(e.cg.Edges))
	for ci := range e.cg.Edges {
		e.rings[ci] = newRing(e.capacityFor(sch, ci, horizon))
		if resume != nil {
			e.rings[ci].restore(resume.Edges[ci])
		} else {
			e.rings[ci].writeNil(e.cg.Edges[ci].Initial, e.stop)
		}
	}

	low := e.prog.Lowering()
	e.ins = make([][]portEdge, len(g.Nodes))
	e.outs = make([][]portEdge, len(g.Nodes))
	e.edgeProd = make([]string, len(e.cg.Edges))
	e.edgeCons = make([]string, len(e.cg.Edges))
	for ei, ed := range g.Edges {
		ci := low.EdgeOf[ei]
		e.ins[ed.Dst] = append(e.ins[ed.Dst], portEdge{ci, g.Nodes[ed.Dst].Ports[ed.DstPort].Name})
		e.outs[ed.Src] = append(e.outs[ed.Src], portEdge{ci, g.Nodes[ed.Src].Ports[ed.SrcPort].Name})
		e.edgeProd[ci] = g.Nodes[ed.Src].Name
		e.edgeCons[ci] = g.Nodes[ed.Dst].Name
	}

	e.behaviors = make([]runner.Behavior, len(g.Nodes))
	e.scratches = make([]*runner.Scratch, len(g.Nodes))
	e.inBuf = make([][][]any, len(g.Nodes))
	e.work = make([]chan int64, len(g.Nodes))
	for id, n := range g.Nodes {
		e.work[id] = make(chan int64, 1)
		b := e.cfg.Behaviors[n.Name]
		if b == nil {
			continue
		}
		e.behaviors[id] = b
		inPorts := make([]string, len(e.ins[id]))
		for i, pe := range e.ins[id] {
			inPorts[i] = pe.port
		}
		outPorts := make([]string, len(e.outs[id]))
		for i, pe := range e.outs[id] {
			outPorts[i] = pe.port
		}
		e.scratches[id] = runner.NewScratch(n.Name, inPorts, outPorts)
		e.inBuf[id] = make([][]any, len(e.ins[id]))
	}
	return nil
}

// reconfigure applies a changed environment at a quiescent transaction
// boundary: the compiled program is rebound in place (rate tables and
// repetition vector overwritten, no fresh graph), ring capacities are grown
// to the new schedule's bounds, and rate-phase indexing restarts. The
// rings keep their content — leftover payloads cross the boundary in FIFO
// order without being drained and re-queued.
//
// The rebind is speculative: every failure before the commit point (a
// rebind the rate tables reject, a new valuation with no bounded schedule
// — the Theorem 2 check — an injected fault, or the user validation hook)
// returns an error wrapping ErrRebindAborted, and the caller restores the
// previous valuation. Validation deliberately precedes the ring growths,
// which are the only irreversible effect, so an aborted rebind leaves
// nothing to repair beyond the rate tables.
func (e *engine) reconfigure(env symb.Env, horizon, completed int64) error {
	if err := e.prog.Rebind(env); err != nil {
		return fmt.Errorf("%w: %v", ErrRebindAborted, err)
	}
	// The schedule (and therefore the capacity bounds and the liveness
	// check) starts from the tokens actually on the edges now, not the
	// declared initial state. The engine owns the Program, so overwriting
	// the skeleton's Initial fields at the barrier is safe.
	for ci := range e.cg.Edges {
		e.cg.Edges[ci].Initial = e.rings[ci].len()
	}
	sch, err := e.cg.BuildSchedule(e.prog.Solution(), csdf.Demand)
	if err != nil {
		return fmt.Errorf("%w: no sequential schedule: %v", ErrRebindAborted, err)
	}
	if e.faults.RebindFault(completed) {
		return fmt.Errorf("%w: injected validation failure at iteration %d", ErrRebindAborted, completed)
	}
	if v := e.cfg.ValidateRebind; v != nil {
		if verr := v(map[string]int64(env)); verr != nil {
			return fmt.Errorf("%w: %v", ErrRebindAborted, verr)
		}
	}
	for ci := range e.cg.Edges {
		before := e.rings[ci].cap()
		e.rings[ci].grow(e.capacityFor(sch, ci, horizon))
		if e.mx != nil && e.rings[ci].cap() > before {
			e.mx.grows[ci]++
		}
	}
	copy(e.base, e.fired)
	return nil
}

// runEpoch dispatches iters graph iterations to the parked actors and
// waits for the pipeline to drain to the barrier.
func (e *engine) runEpoch(iters int64) error {
	if err := e.firstErr(); err != nil {
		return err
	}
	if e.mx != nil {
		e.mx.barriers++
	}
	sol := e.prog.Solution()
	e.wg.Add(len(e.work))
	for id := range e.work {
		e.work[id] <- iters * sol.Q[id]
	}
	e.busy.Add(-1)
	e.wg.Wait()
	e.busy.Add(1)
	return e.firstErr()
}

// actorLoop is one node's persistent goroutine: spawned once per Run, it
// parks on its work channel between epochs and exits when the run is over.
func (e *engine) actorLoop(id int) {
	for {
		select {
		case total := <-e.work[id]:
			if total > 0 {
				e.runActor(id, total)
			}
			e.wg.Done()
		case <-e.quit:
			return
		}
	}
}

// runActor fires the node total times, with sampled epoch-granularity time
// accounting when metrics are enabled: one timestamp pair per sampled epoch
// (one in activeSampleMask+1, never per firing — blocked time inside ring
// waits is timed separately by the ring's slow path, and busy is estimated
// as scaled active minus blocked at harvest).
func (e *engine) runActor(id int, total int64) {
	if e.mx == nil {
		e.fireActor(id, total, nil)
		return
	}
	ah := &e.mx.actors[id]
	if ah.epochs&activeSampleMask == 0 {
		ah.epochs++
		ah.timed++
		t0 := time.Now()
		e.fireActor(id, total, ah)
		ah.activeNs += int64(time.Since(t0))
		return
	}
	ah.epochs++
	e.fireActor(id, total, ah)
}

// fireActor fires the node total times: consume the input rates, run the
// behavior, produce the output rates — blocking on ring capacity for
// backpressure. Rates and solution are read from the compiled program,
// which is only rewritten while the actor is parked. ah, when non-nil, is
// this actor's private counter block, bumped with plain stores.
func (e *engine) fireActor(id int, total int64, ah *actorHot) {
	edges := e.cg.Edges
	ins, outs := e.ins[id], e.outs[id]
	behavior := e.behaviors[id]
	stop := e.stop
	fired := e.fired[id]
	base := e.base[id]
	defer func() { e.fired[id] = fired }()

	if behavior == nil {
		// Token-only node: no Firing is materialized at all — payloads
		// are consumed unobserved and nil placeholders emitted at the
		// output rates, exactly as the sequential runner does.
		for n := int64(0); n < total; n++ {
			// Check for cancellation/failure at every firing boundary: an
			// actor whose ring operations never block would otherwise run
			// the epoch to completion.
			if e.stopped.Load() {
				return
			}
			kLocal := fired - base
			for _, pe := range ins {
				rate := edges[pe.edge].ConsAt(kLocal)
				if !e.rings[pe.edge].discard(rate, stop) {
					return
				}
				if ah != nil {
					ah.tokensIn += rate
				}
			}
			for _, pe := range outs {
				rate := edges[pe.edge].ProdAt(kLocal)
				if !e.rings[pe.edge].writeNil(rate, stop) {
					return
				}
				if ah != nil {
					ah.tokensOut += rate
				}
			}
			fired++
			if ah != nil {
				ah.firings++
			}
			e.ops.Add(1)
		}
		return
	}

	scr := e.scratches[id]
	bufs := e.inBuf[id]
	name := e.cfg.Graph.Nodes[id].Name
	for n := int64(0); n < total; n++ {
		if e.stopped.Load() {
			return
		}
		kLocal := fired - base
		f := scr.Begin(fired)

		for i, pe := range ins {
			rate := edges[pe.edge].ConsAt(kLocal)
			buf := bufs[i]
			if int64(cap(buf)) < rate {
				buf = make([]any, rate)
				bufs[i] = buf
			} else {
				buf = buf[:rate]
			}
			if !e.rings[pe.edge].read(buf, rate, stop) {
				return
			}
			if ah != nil {
				ah.tokensIn += rate
			}
			// Install even at rate 0 so the In map has the same keys the
			// sequential runner produces.
			scr.SetIn(pe.port, buf)
		}

		e.busy.Add(1)
		if e.sem != nil {
			select {
			case e.sem <- struct{}{}:
			case <-stop:
				e.busy.Add(-1)
				return
			}
		}
		err := e.callBehavior(behavior, f, name, fired)
		if e.sem != nil {
			<-e.sem
		}
		e.busy.Add(-1)
		if err != nil {
			var pe *BehaviorPanicError
			if errors.As(err, &pe) {
				// Unwrapped: the main goroutine dispatches on the concrete
				// type to decide between rollback and run failure.
				e.fail(pe)
			} else {
				e.fail(fmt.Errorf("engine: %s firing %d: %v", name, fired, err))
			}
			return
		}

		for _, pe := range outs {
			rate := edges[pe.edge].ProdAt(kLocal)
			vals := f.Out[pe.port]
			switch {
			case int64(len(vals)) == rate:
				if !e.rings[pe.edge].write(vals, stop) {
					return
				}
			case len(vals) == 0:
				// No behavior output: emit nil payloads to keep the token
				// count right, as the sequential runner does.
				if !e.rings[pe.edge].writeNil(rate, stop) {
					return
				}
			default:
				e.fail(fmt.Errorf("engine: %s firing %d: port %s produced %d payloads, rate is %d",
					name, fired, pe.port, len(vals), rate))
				return
			}
			if ah != nil {
				ah.tokensOut += rate
			}
		}

		fired++
		if ah != nil {
			ah.firings++
		}
		e.ops.Add(1)
	}
}

// callBehavior runs one behavior firing with panic isolation: a panic in
// user code (or injected by the fault plan) is recovered into a structured
// BehaviorPanicError instead of crashing the process — the actor goroutine
// returns through its normal error path and the panic becomes a
// transaction abort at the epoch barrier. The fault-injection consult
// rides here too: one nil test per firing when no plan is armed, inside
// the busy window so an injected delay never trips the stall watchdog.
func (e *engine) callBehavior(behavior runner.Behavior, f *runner.Firing, name string, k int64) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &BehaviorPanicError{Node: name, Firing: k, Value: v, Stack: debug.Stack()}
		}
	}()
	if e.faults != nil {
		if delay, panicNow := e.faults.Behavior(name, k); panicNow {
			panic(fmt.Sprintf("injected fault at firing %d", k))
		} else if delay > 0 {
			time.Sleep(delay)
		}
	}
	return behavior(f)
}

// startWatchdog returns a stopper for a goroutine that fails the run when
// it makes no progress: no firing completed, no behavior ran and no
// boundary work happened for two consecutive stall windows. With
// analysis-derived capacities this cannot trigger (they admit a complete
// schedule, and the execution is conflict-free); it turns a deadlock under
// a too-small Capacity override into an error instead of a hang.
func (e *engine) startWatchdog() func() {
	stall := e.cfg.StallTimeout
	if stall <= 0 {
		stall = 500 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(stall)
		defer tick.Stop()
		last := e.ops.Load()
		lastProgress := time.Now()
		idle := 0
		// The loop does not exit on e.stop: a panic rollback clears the run
		// error and continues, and the watchdog must keep guarding the
		// retried epochs. It exits only when Run returns (done).
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := e.ops.Load()
				if cur != last || e.busy.Load() > 0 {
					last, idle = cur, 0
					lastProgress = time.Now()
					continue
				}
				if idle++; idle >= 2 {
					msg := e.blockedReport()
					if msg == "" {
						msg = "no actor is blocked on a ring (behavior stuck?)"
					}
					e.record(obs.Event{Kind: obs.EvStall, Detail: msg})
					e.fail(fmt.Errorf("engine: deadlock: no progress for %v, last progress at %s, %d firings completed (channel capacity override too small?): %s; ring occupancy: %s",
						2*stall, lastProgress.Format(time.RFC3339Nano), cur, msg, e.ringReport()))
					return
				}
				// Near-miss: one idle window elapsed; a second consecutive
				// one fails the run. Journal it so slow-but-alive pipelines
				// leave a trace.
				e.record(obs.Event{Kind: obs.EvStallWarn, Detail: e.blockedReport()})
			}
		}
	}()
	return func() { close(done) }
}
