// Package engine executes TPDF graphs concurrently at the payload level:
// one goroutine per actor, edges wired as bounded Go channels, natural
// backpressure from channel capacity, and the paper's transaction
// semantics — parameter values change only at transaction (iteration)
// boundaries, so no firing ever observes a mixed environment.
//
// It is the concurrent counterpart of internal/runner: behaviors, firing
// contexts and results are shared with it, and for any graph the runner
// completes, engine.Run produces the identical Result (same firing counts,
// same leftover payloads in the same FIFO order). Determinism follows from
// the model: every edge has exactly one producer and one consumer, each
// actor fires sequentially in its own goroutine, and payload routing
// depends only on firing indices — so the execution is a conflict-free
// (hence confluent) system and every interleaving reaches the same final
// state.
//
// Channel capacities default to the per-edge high-water marks of the
// demand-driven sequential schedule (the same analysis-derived bounds
// Analyze and internal/buffer report), corrected for per-iteration token
// drift on non-returning edges. Capacities that admit one complete
// schedule make the blocking execution deadlock-free; a progress watchdog
// still guards user-overridden (possibly too small) capacities.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/runner"
	"repro/internal/symb"
)

// Config configures a concurrent payload run.
type Config struct {
	Graph *core.Graph
	// Env instantiates the graph's parameters (defaults used when nil).
	Env symb.Env
	// Behaviors maps node names to firing functions, exactly as in
	// runner.Config: nodes without one forward nil payloads at the port
	// rates.
	Behaviors map[string]runner.Behavior
	// Iterations repeats the graph iteration (default 1).
	Iterations int64
	// Context, when non-nil, cancels the run: every blocked channel
	// operation also waits on it, so cancellation interrupts a stalled
	// pipeline, not just the gaps between firings.
	Context context.Context
	// Workers bounds how many behaviors execute concurrently; 0 means one
	// in-flight behavior per actor (full pipeline parallelism).
	Workers int
	// Capacity, when positive, overrides every channel's token capacity
	// (clamped up to the edge's initial token count). Zero selects the
	// analysis-derived per-edge bounds.
	Capacity int64
	// Reconfigure, when set, is called at every transaction boundary with
	// the number of completed iterations (1, 2, ...) and may return new
	// parameter values for the remaining iterations; nil or empty keeps
	// the current environment. The engine drains the pipeline to a
	// quiescent state before applying the change, so in-flight firings
	// never observe a mix of old and new parameter values.
	Reconfigure func(completed int64) map[string]int64
	// StallTimeout tunes the deadlock watchdog: if no token moves and no
	// behavior runs for two consecutive windows, the run fails with a
	// diagnostic instead of hanging. Default 500ms.
	StallTimeout time.Duration
}

// portEdge pairs a concrete edge index with the port name an actor sees it
// under, mirroring internal/runner so In/Out maps are assembled in the
// same order.
type portEdge struct {
	edge int
	port string
}

// state is one instantiation of the graph: the concrete CSDF lowering, its
// channels, and the per-node wiring. Reconfiguration replaces the state
// wholesale at a transaction boundary.
type state struct {
	cg    *csdf.Graph
	q     []int64
	chans []chan any
	ins   [][]portEdge
	outs  [][]portEdge
	// edgeOf maps graph-edge index to csdf-edge index (the Lowering), so
	// leftover payloads can be re-attached across re-instantiations
	// without assuming the lowering is index-preserving.
	edgeOf []int
	// base is each node's cumulative firing count when this state was
	// installed: rate sequences index from the start of the environment,
	// Firing.K stays global.
	base []int64
}

type engine struct {
	cfg Config

	stop chan struct{}
	once sync.Once
	mu   sync.Mutex
	err  error

	// fired is each node's cumulative firing count, owned by the node's
	// goroutine during an epoch and by Run between epochs.
	fired []int64
	// ops counts token transfers and completed firings; busy counts
	// actors inside (or queued for) a behavior. Together they let the
	// watchdog distinguish a stalled pipeline from a slow behavior.
	ops  atomic.Int64
	busy atomic.Int64
	sem  chan struct{}
}

func (e *engine) fail(err error) {
	e.once.Do(func() {
		e.mu.Lock()
		e.err = err
		e.mu.Unlock()
		close(e.stop)
	})
}

func (e *engine) firstErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Run executes the configured number of iterations concurrently and
// returns the same Result the sequential runner would.
func Run(cfg Config) (*runner.Result, error) {
	g := cfg.Graph
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	env := symb.Env{}
	for k, v := range g.DefaultEnv() {
		env[k] = v
	}
	for k, v := range cfg.Env {
		env[k] = v
	}

	e := &engine{
		cfg:   cfg,
		stop:  make(chan struct{}),
		fired: make([]int64, len(g.Nodes)),
	}
	if cfg.Workers > 0 {
		e.sem = make(chan struct{}, cfg.Workers)
	}
	if ctx := cfg.Context; ctx != nil {
		ctxDone := make(chan struct{})
		defer close(ctxDone)
		go func() {
			select {
			case <-ctx.Done():
				e.fail(ctx.Err())
			case <-ctxDone:
			case <-e.stop:
			}
		}()
	}

	st, err := e.instantiate(env, nil, iters)
	if err != nil {
		return nil, err
	}

	if cfg.Reconfigure == nil {
		if err := e.runEpoch(st, iters); err != nil {
			return nil, err
		}
	} else {
		for it := int64(0); it < iters; it++ {
			if it > 0 {
				if over := cfg.Reconfigure(it); len(over) > 0 {
					changed := false
					for k, v := range over {
						if env[k] != v {
							env[k] = v
							changed = true
						}
					}
					if changed {
						st, err = e.instantiate(env, st.drainByGraphEdge(), iters-it)
						if err != nil {
							return nil, err
						}
					}
				}
			}
			if err := e.runEpoch(st, 1); err != nil {
				return nil, err
			}
		}
	}

	res := &runner.Result{Firings: map[string]int64{}, Remaining: map[string][]any{}}
	for id, n := range g.Nodes {
		if e.fired[id] > 0 {
			res.Firings[n.Name] = e.fired[id]
		}
	}
	for ei, q := range st.drain() {
		if len(q) > 0 {
			res.Remaining[st.cg.Edges[ei].Name] = q
		}
	}
	return res, nil
}

// instantiate lowers the graph under env and builds channels sized for
// `horizon` more iterations. leftover, when non-nil, is the payload
// content of every edge — indexed by graph-edge index — at the preceding
// transaction boundary; it replaces the declared initial tokens, which
// are already part of it.
func (e *engine) instantiate(env symb.Env, leftover [][]any, horizon int64) (*state, error) {
	g := e.cfg.Graph
	cg, low, err := g.Instantiate(env)
	if err != nil {
		return nil, err
	}
	if leftover != nil {
		for gi := range g.Edges {
			cg.Edges[low.EdgeOf[gi]].Initial = int64(len(leftover[gi]))
		}
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		return nil, err
	}
	sch, err := cg.BuildSchedule(sol, csdf.Demand)
	if err != nil {
		return nil, fmt.Errorf("engine: no sequential schedule: %v", err)
	}

	st := &state{
		cg:     cg,
		q:      sol.Q,
		chans:  make([]chan any, len(cg.Edges)),
		ins:    make([][]portEdge, len(g.Nodes)),
		outs:   make([][]portEdge, len(g.Nodes)),
		edgeOf: low.EdgeOf,
		base:   append([]int64(nil), e.fired...),
	}
	for ei := range cg.Edges {
		capTok := sch.MaxTokens[ei]
		// Edges that do not return to their initial state accumulate
		// tokens every iteration; give the later iterations headroom.
		if drift := sch.Final[ei] - cg.Edges[ei].Initial; drift > 0 && horizon > 1 {
			capTok += (horizon - 1) * drift
		}
		if e.cfg.Capacity > 0 {
			capTok = e.cfg.Capacity
		}
		if capTok < 1 {
			capTok = 1
		}
		if capTok < cg.Edges[ei].Initial {
			capTok = cg.Edges[ei].Initial
		}
		st.chans[ei] = make(chan any, capTok)
		if leftover == nil {
			for k := int64(0); k < cg.Edges[ei].Initial; k++ {
				st.chans[ei] <- nil
			}
		}
	}
	if leftover != nil {
		for gi := range g.Edges {
			for _, v := range leftover[gi] {
				st.chans[low.EdgeOf[gi]] <- v
			}
		}
	}
	for ei, ed := range g.Edges {
		ci := low.EdgeOf[ei]
		st.ins[ed.Dst] = append(st.ins[ed.Dst], portEdge{ci, g.Nodes[ed.Dst].Ports[ed.DstPort].Name})
		st.outs[ed.Src] = append(st.outs[ed.Src], portEdge{ci, g.Nodes[ed.Src].Ports[ed.SrcPort].Name})
	}
	return st, nil
}

// drain empties every channel, returning the leftover payloads per
// csdf-edge index in FIFO order. Only called when no actor goroutine is
// running.
func (st *state) drain() [][]any {
	out := make([][]any, len(st.chans))
	for i, ch := range st.chans {
		for {
			select {
			case v := <-ch:
				out[i] = append(out[i], v)
				continue
			default:
			}
			break
		}
	}
	return out
}

// drainByGraphEdge is drain reindexed by graph-edge index, the form
// instantiate takes leftovers in.
func (st *state) drainByGraphEdge() [][]any {
	drained := st.drain()
	out := make([][]any, len(st.edgeOf))
	for gi, ci := range st.edgeOf {
		out[gi] = drained[ci]
	}
	return out
}

// runEpoch fires every node iters×q times concurrently and waits for the
// pipeline to drain to the epoch boundary.
func (e *engine) runEpoch(st *state, iters int64) error {
	if e.firstErr() != nil {
		return e.firstErr()
	}
	stopWatch := e.startWatchdog()
	defer stopWatch()

	var wg sync.WaitGroup
	for id := range e.cfg.Graph.Nodes {
		total := iters * st.q[id]
		if total == 0 {
			continue
		}
		wg.Add(1)
		go func(id int, total int64) {
			defer wg.Done()
			e.runActor(st, id, total)
		}(id, total)
	}
	wg.Wait()
	return e.firstErr()
}

// runActor is one node's firing loop: consume the input rates, run the
// behavior, produce the output rates — blocking on channel capacity for
// backpressure.
func (e *engine) runActor(st *state, id int, total int64) {
	g := e.cfg.Graph
	name := g.Nodes[id].Name
	behavior := e.cfg.Behaviors[name]

	for n := int64(0); n < total; n++ {
		// Check for cancellation/failure at every firing boundary: an
		// actor whose channel operations never block would otherwise only
		// stop probabilistically (select picks among ready cases).
		select {
		case <-e.stop:
			return
		default:
		}
		kGlobal := e.fired[id]
		kLocal := kGlobal - st.base[id]
		f := &runner.Firing{Node: name, K: kGlobal, In: map[string][]any{}, Out: map[string][]any{}}

		for _, pe := range st.ins[id] {
			rate := st.cg.Edges[pe.edge].ConsAt(kLocal)
			ch := st.chans[pe.edge]
			buf := make([]any, 0, rate)
			for j := int64(0); j < rate; j++ {
				select {
				case v := <-ch:
					buf = append(buf, v)
					e.ops.Add(1)
				case <-e.stop:
					return
				}
			}
			// Assign even at rate 0 so the In map has the same keys the
			// sequential runner produces.
			f.In[pe.port] = append(f.In[pe.port], buf...)
		}

		if behavior != nil {
			e.busy.Add(1)
			if e.sem != nil {
				select {
				case e.sem <- struct{}{}:
				case <-e.stop:
					e.busy.Add(-1)
					return
				}
			}
			err := behavior(f)
			if e.sem != nil {
				<-e.sem
			}
			e.busy.Add(-1)
			if err != nil {
				e.fail(fmt.Errorf("engine: %s firing %d: %v", name, kGlobal, err))
				return
			}
		}

		for _, pe := range st.outs[id] {
			rate := st.cg.Edges[pe.edge].ProdAt(kLocal)
			vals := f.Out[pe.port]
			switch {
			case int64(len(vals)) == rate:
			case len(vals) == 0:
				// No behavior output: emit nil payloads to keep the token
				// count right, as the sequential runner does.
				vals = make([]any, rate)
			default:
				e.fail(fmt.Errorf("engine: %s firing %d: port %s produced %d payloads, rate is %d",
					name, kGlobal, pe.port, len(vals), rate))
				return
			}
			ch := st.chans[pe.edge]
			for _, v := range vals {
				select {
				case ch <- v:
					e.ops.Add(1)
				case <-e.stop:
					return
				}
			}
		}

		e.fired[id]++
		e.ops.Add(1)
	}
}

// startWatchdog returns a stopper for a goroutine that fails the run when
// the epoch makes no progress: no token moved, no firing completed and no
// behavior ran for two consecutive stall windows. With analysis-derived
// capacities this cannot trigger (they admit a complete schedule, and the
// execution is conflict-free); it turns a deadlock under a too-small
// Capacity override into an error instead of a hang.
func (e *engine) startWatchdog() func() {
	stall := e.cfg.StallTimeout
	if stall <= 0 {
		stall = 500 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(stall)
		defer tick.Stop()
		last := e.ops.Load()
		idle := 0
		for {
			select {
			case <-done:
				return
			case <-e.stop:
				return
			case <-tick.C:
				cur := e.ops.Load()
				if cur != last || e.busy.Load() > 0 {
					last, idle = cur, 0
					continue
				}
				if idle++; idle >= 2 {
					e.fail(fmt.Errorf("engine: deadlock: no progress for %v (channel capacity override too small?)", 2*stall))
					return
				}
			}
		}
	}()
	return func() { close(done) }
}
