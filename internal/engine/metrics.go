package engine

import (
	"strconv"
	"strings"

	"repro/tpdf/obs"
)

// Metrics follow the barrier-harvest rule: every hot counter below is
// written with plain stores by exactly one goroutine (the owning actor for
// actorHot, the producing or consuming side for sideStats) and read only
// by the engine's main goroutine at transaction barriers, after the epoch
// WaitGroup has parked every actor — the Wait is the happens-before edge,
// so no atomics and no locks appear on the firing path. Each struct is
// padded to its own cache line so two actors bumping their counters never
// write-share a line.

// cacheLine is the padding granularity; 128 covers the spatial prefetcher
// pairing lines on common x86 parts.
const cacheLine = 128

// actorHot is one actor's private counter block.
type actorHot struct {
	firings   int64
	tokensIn  int64
	tokensOut int64
	// Active time is sampled, not exhaustive: runActor times one epoch in
	// activeSampleMask+1 (always including the first), because a clock
	// read costs ~50-100ns on virtualized hosts — per-epoch pairs would
	// dominate barrier-heavy runs. epochs counts every dispatch, timed the
	// sampled ones, activeNs the wall time inside sampled epochs only;
	// the harvest scales activeNs by epochs/timed to estimate the total.
	epochs   int64
	timed    int64
	activeNs int64
	_        [cacheLine - 6*8]byte
}

// activeSampleMask selects which epochs runActor times: epoch indices with
// (epochs & mask) == 0, i.e. one in mask+1.
const activeSampleMask = 7

// sideStats is one side (producer or consumer) of one ring. The producer
// side also tracks the occupancy high-water mark, observed at publish.
// Blocked time is sampled like actor active time: one park in
// parkSampleMask+1 is timed (parks counts all of them, timedParks the
// sampled ones) and the harvest scales blockedNs by parks/timedParks —
// in a pipelining chain parks are frequent and individually cheap, so a
// clock-read pair around every one would cost more than the park itself.
type sideStats struct {
	parks      int64
	timedParks int64
	spins      int64
	wakes      int64
	blockedNs  int64
	highWater  int64
	_          [cacheLine - 6*8]byte
}

// parkSampleMask selects which parks a ring side times: park indices with
// (parks & mask) == 0, i.e. one in mask+1.
const parkSampleMask = 7

// engMetrics is the engine-owned collector: hot blocks for every actor and
// ring side, plus main-goroutine-owned boundary counters. harvestFn is the
// one closure handed to Registry.UpdateEngine, created once so a
// barrier-time harvest allocates nothing.
type engMetrics struct {
	reg    *obs.Registry
	actors []actorHot
	prod   []sideStats // indexed by concrete edge
	cons   []sideStats

	// Main-owned boundary counters.
	barriers   int64
	completed  int64
	rebinds    int64
	rebindNs   int64
	boundaryNs int64
	aborts     int64
	restores   int64
	grows      []int64
	running    bool

	harvestFn func(*obs.EngineSnapshot)
}

// blockedEstNs scales the sampled park time up to an estimate covering
// every park this side performed.
func (st *sideStats) blockedEstNs() int64 {
	if st.timedParks > 0 && st.parks > st.timedParks {
		return st.blockedNs * st.parks / st.timedParks
	}
	return st.blockedNs
}

// newEngMetrics sizes the collector for the engine's wired graph and
// attaches the ring side pointers.
func (e *engine) newEngMetrics(reg *obs.Registry) *engMetrics {
	m := &engMetrics{
		reg:    reg,
		actors: make([]actorHot, len(e.cfg.Graph.Nodes)),
		prod:   make([]sideStats, len(e.cg.Edges)),
		cons:   make([]sideStats, len(e.cg.Edges)),
		grows:  make([]int64, len(e.cg.Edges)),
	}
	for ci, r := range e.rings {
		r.pst = &m.prod[ci]
		r.cst = &m.cons[ci]
		// Seeded initial tokens are the occupancy before any publish.
		m.prod[ci].highWater = r.len()
	}
	m.harvestFn = e.fillSnapshot
	return m
}

// harvest publishes the current counters into the registry. Called by the
// engine's main goroutine only, at transaction barriers and run start/end,
// when every actor is parked.
func (e *engine) harvest(completed int64, running bool) {
	m := e.mx
	if m == nil {
		return
	}
	m.completed = completed
	m.running = running
	m.reg.UpdateEngine(m.harvestFn)
}

// fillSnapshot copies the collector into the registry's snapshot in place,
// reusing the snapshot's slices after the first harvest.
func (e *engine) fillSnapshot(s *obs.EngineSnapshot) {
	m := e.mx
	g := e.cfg.Graph
	if len(s.Actors) != len(g.Nodes) {
		s.Actors = make([]obs.ActorMetrics, len(g.Nodes))
	}
	if len(s.Edges) != len(e.cg.Edges) {
		s.Edges = make([]obs.EdgeMetrics, len(e.cg.Edges))
	}
	s.Running = m.running
	s.Completed = m.completed
	s.Barriers = m.barriers
	s.Rebinds = m.rebinds
	s.RebindNs = m.rebindNs
	s.BoundaryNs = m.boundaryNs
	s.Aborts = m.aborts
	s.Restores = m.restores

	for id := range g.Nodes {
		a := &s.Actors[id]
		h := &m.actors[id]
		a.Name = g.Nodes[id].Name
		a.Firings = h.firings
		a.TokensIn = h.tokensIn
		a.TokensOut = h.tokensOut
		a.Parks, a.Spins, a.Wakes, a.BlockedNs = 0, 0, 0, 0
		// Ring waits are attributed to the actor that performed them: the
		// consumer side of its input edges, the producer side of its
		// output edges.
		for _, pe := range e.ins[id] {
			c := &m.cons[pe.edge]
			a.Parks += c.parks
			a.Spins += c.spins
			a.Wakes += c.wakes
			a.BlockedNs += c.blockedEstNs()
		}
		for _, pe := range e.outs[id] {
			p := &m.prod[pe.edge]
			a.Parks += p.parks
			a.Spins += p.spins
			a.Wakes += p.wakes
			a.BlockedNs += p.blockedEstNs()
		}
		activeNs := h.activeNs
		if h.timed > 0 && h.epochs > h.timed {
			activeNs = h.activeNs * h.epochs / h.timed
		}
		if a.BusyNs = activeNs - a.BlockedNs; a.BusyNs < 0 {
			a.BusyNs = 0
		}
	}
	for ci := range e.cg.Edges {
		ed := &s.Edges[ci]
		ed.Name = e.cg.Edges[ci].Name
		ed.Producer = e.edgeProd[ci]
		ed.Consumer = e.edgeCons[ci]
		ed.Capacity = e.rings[ci].cap()
		ed.Occupancy = e.rings[ci].len()
		ed.HighWater = m.prod[ci].highWater
		ed.Grows = m.grows[ci]
		ed.ProdBlockedNs = m.prod[ci].blockedEstNs()
		ed.ConsBlockedNs = m.cons[ci].blockedEstNs()
		ed.ProdParks = m.prod[ci].parks
		ed.ConsParks = m.cons[ci].parks
	}
}

// record appends a journal event when tracing is enabled; no-op otherwise.
func (e *engine) record(ev obs.Event) {
	if e.jr != nil {
		e.jr.Record(ev)
	}
}

// blockedReport describes, from the rings' atomic state only (safe while
// actors run), which actors are blocked and where — the watchdog's stall
// diagnosis. Returns "" when no ring wait flag is raised.
func (e *engine) blockedReport() string {
	var b strings.Builder
	for ci := range e.rings {
		r := e.rings[ci]
		occ := r.len()
		if r.cwait.Load() {
			if b.Len() > 0 {
				b.WriteString("; ")
			}
			fmtBlocked(&b, e.edgeCons[ci], "waiting for tokens", e.cg.Edges[ci].Name, occ, r.cap())
		}
		if r.pwait.Load() {
			if b.Len() > 0 {
				b.WriteString("; ")
			}
			fmtBlocked(&b, e.edgeProd[ci], "waiting for space", e.cg.Edges[ci].Name, occ, r.cap())
		}
	}
	return b.String()
}

// ringReport lists every edge's occupancy/capacity from the rings' atomic
// state (safe while actors run) — the watchdog's full-pipeline view
// attached to stall errors, where blockedReport covers only edges with a
// raised wait flag.
func (e *engine) ringReport() string {
	var b strings.Builder
	for ci := range e.rings {
		if ci > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.cg.Edges[ci].Name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(e.rings[ci].len(), 10))
		b.WriteByte('/')
		b.WriteString(strconv.FormatInt(e.rings[ci].cap(), 10))
	}
	return b.String()
}

func fmtBlocked(b *strings.Builder, actor, what, edge string, occ, capTok int64) {
	b.WriteString("actor ")
	b.WriteString(actor)
	b.WriteByte(' ')
	b.WriteString(what)
	b.WriteString(" on ")
	b.WriteString(edge)
	b.WriteString(" (")
	b.WriteString(strconv.FormatInt(occ, 10))
	b.WriteByte('/')
	b.WriteString(strconv.FormatInt(capTok, 10))
	b.WriteString(" tokens)")
}
