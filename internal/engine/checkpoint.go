package engine

import (
	"errors"
	"fmt"

	"repro/internal/runner"
	"repro/tpdf/obs"
)

// ErrRebindAborted reports a reconfiguration rejected at a transaction
// boundary: the rebind (or its validation hook) failed and the engine
// rolled its rate state back to the pre-boundary valuation instead of
// poisoning the run. Errors returned by reconfigure wrap it; test with
// errors.Is.
var ErrRebindAborted = errors.New("engine: rebind aborted")

// BehaviorPanicError is a behavior panic converted into a transaction
// abort: the actor goroutine recovered it, the in-flight epoch was
// discarded, and — when the engine is checkpoint-armed — the run rolled
// back to the last barrier checkpoint. Node and Firing locate the panic,
// Stack is the recovering goroutine's stack.
type BehaviorPanicError struct {
	Node   string
	Firing int64
	Value  any
	Stack  []byte
}

func (e *BehaviorPanicError) Error() string {
	return fmt.Sprintf("engine: %s firing %d panicked: %v", e.Node, e.Firing, e.Value)
}

// Checkpoint is a consistent cut of a run, captured at a quiescent
// transaction barrier: every actor parked, every ring's content observed
// in FIFO order, the firing counters and the active valuation as of
// Completed iterations. Transaction barriers are the only points where
// such a cut exists — mid-epoch the rings are owned by running actors —
// so checkpoints are only ever taken (and restored) there.
//
// A Checkpoint passed to CheckpointSink is the engine's reusable arena:
// valid only during the call; callers keep state across calls via
// CopyInto or Clone.
type Checkpoint struct {
	// Graph is the source graph's name, checked on resume.
	Graph string
	// Completed is the iteration count at the capture barrier.
	Completed int64
	// Digest is the valuation digest (obs.ParamsDigest) at capture.
	Digest uint64
	// Params is the full valuation at capture (defaults merged in).
	Params map[string]int64
	// Nodes / Fired / Base are per-node firing state: Nodes the names (for
	// resume validation and Result), Fired the cumulative firing counts,
	// Base the counts at the last environment change (rate phases index
	// from there).
	Nodes []string
	Fired []int64
	Base  []int64
	// EdgeNames / Edges are the per-concrete-edge ring contents in FIFO
	// order (nil payloads included — token-only traffic is part of the
	// cut).
	EdgeNames []string
	Edges     [][]any
	// User is whatever Config.SnapshotUser returned at capture — the
	// behavior-side state that must travel with the engine cut for the
	// resumed run to be byte-identical (e.g. a sink's committed output).
	User any
	// AtEntry marks a cut taken at barrier entry — after the previous
	// epoch drained, before the boundary's hook and rebind ran (or, for
	// the run's final capture, a boundary whose hook never ran at all).
	// Resuming from an entry cut re-invokes that boundary's hook instead
	// of skipping it: the hook's effects are not part of the state.
	// Entry captures exist only when Config.CaptureAtEntry is set; they
	// are the cuts durable persistence wants, because at the moment a
	// Barrier hook acknowledges completed work the entry capture already
	// covers every completed iteration.
	AtEntry bool
}

// Clone deep-copies the checkpoint (User is copied by reference; snapshot
// functions must return self-contained values).
func (ck *Checkpoint) Clone() *Checkpoint {
	out := &Checkpoint{}
	ck.CopyInto(out)
	return out
}

// CopyInto deep-copies the checkpoint into dst, reusing dst's slices and
// map when they are large enough — a warm copy between two same-shape
// checkpoints allocates nothing.
func (ck *Checkpoint) CopyInto(dst *Checkpoint) {
	dst.Graph = ck.Graph
	dst.Completed = ck.Completed
	dst.Digest = ck.Digest
	if dst.Params == nil {
		dst.Params = make(map[string]int64, len(ck.Params))
	}
	for k, v := range ck.Params {
		dst.Params[k] = v
	}
	dst.Nodes = append(dst.Nodes[:0], ck.Nodes...)
	dst.Fired = append(dst.Fired[:0], ck.Fired...)
	dst.Base = append(dst.Base[:0], ck.Base...)
	dst.EdgeNames = append(dst.EdgeNames[:0], ck.EdgeNames...)
	if cap(dst.Edges) < len(ck.Edges) {
		dst.Edges = make([][]any, len(ck.Edges))
	}
	dst.Edges = dst.Edges[:len(ck.Edges)]
	for i, vals := range ck.Edges {
		dst.Edges[i] = append(dst.Edges[i][:0], vals...)
	}
	dst.User = ck.User
	dst.AtEntry = ck.AtEntry
}

// Result renders the checkpoint as the runner.Result a run drained at the
// capture barrier would have produced — what a supervised session reports
// when it is closed while holding only a checkpoint.
func (ck *Checkpoint) Result() *runner.Result {
	res := &runner.Result{Firings: map[string]int64{}, Remaining: map[string][]any{}}
	for i, n := range ck.Nodes {
		if ck.Fired[i] > 0 {
			res.Firings[n] = ck.Fired[i]
		}
	}
	for i, name := range ck.EdgeNames {
		if len(ck.Edges[i]) > 0 {
			res.Remaining[name] = append([]any(nil), ck.Edges[i]...)
		}
	}
	return res
}

// newCheckpointArena preallocates the engine's capture arena sized for the
// wired graph, so warm captures never allocate. Per-edge buffers start at
// the current ring capacity and grow only when a ring grows.
func (e *engine) newCheckpointArena() *Checkpoint {
	g := e.cfg.Graph
	ck := &Checkpoint{
		Graph:     g.Name,
		Params:    make(map[string]int64),
		Nodes:     make([]string, len(g.Nodes)),
		Fired:     make([]int64, len(g.Nodes)),
		Base:      make([]int64, len(g.Nodes)),
		EdgeNames: make([]string, len(e.cg.Edges)),
		Edges:     make([][]any, len(e.cg.Edges)),
	}
	for id, n := range g.Nodes {
		ck.Nodes[id] = n.Name
	}
	for ci := range e.cg.Edges {
		ck.EdgeNames[ci] = e.cg.Edges[ci].Name
		ck.Edges[ci] = make([]any, 0, e.rings[ci].cap())
	}
	return ck
}

// capture snapshots the quiescent engine into the arena at a transaction
// barrier (all actors parked — the epoch WaitGroup is the happens-before
// edge, exactly as for the metrics harvest) and hands the arena to the
// sink. atEntry marks a cut taken before the boundary's hook ran (see
// Checkpoint.AtEntry). Warm captures are allocation-free: counters are
// copied into preallocated slices, ring contents peeked into reusable
// buffers, and the valuation map rewritten only at boundaries that changed
// it.
func (e *engine) capture(completed int64, env map[string]int64, digest uint64, atEntry bool) {
	ck := e.ckpt
	ck.Completed = completed
	ck.Digest = digest
	ck.AtEntry = atEntry
	if e.ckptParamsStale {
		// Valuations never remove keys, so overwriting suffices.
		for k, v := range env {
			ck.Params[k] = v
		}
		e.ckptParamsStale = false
	}
	copy(ck.Fired, e.fired)
	copy(ck.Base, e.base)
	for ci, r := range e.rings {
		n := r.len()
		buf := ck.Edges[ci]
		if int64(cap(buf)) < n {
			buf = make([]any, n)
		} else {
			buf = buf[:n]
		}
		r.peek(buf)
		ck.Edges[ci] = buf
	}
	if e.cfg.SnapshotUser != nil {
		ck.User = e.cfg.SnapshotUser()
	}
	if e.cfg.CheckpointSink != nil {
		e.cfg.CheckpointSink(ck)
	}
}

// rollbackAfterAbort restores the engine to the last barrier checkpoint
// after a behavior panic killed the in-flight epoch: the run error is
// cleared, the stop channel replaced (every actor already parked — the
// epoch WaitGroup observed them exit), and firing counters plus ring
// contents rewritten from the arena. Returns a non-nil error when the
// run's context was cancelled — a cancellation racing the abort may have
// been swallowed by the panic error, so it is re-checked here.
func (e *engine) rollbackAfterAbort() error {
	e.mu.Lock()
	e.err = nil
	e.stop = make(chan struct{})
	e.stopped.Store(false)
	e.mu.Unlock()

	ck := e.ckpt
	copy(e.fired, ck.Fired)
	copy(e.base, ck.Base)
	for ci, r := range e.rings {
		r.restore(ck.Edges[ci])
	}
	if e.cfg.RestoreUser != nil {
		e.cfg.RestoreUser(ck.User)
	}
	if ctx := e.cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			e.fail(err)
			return err
		}
	}
	return nil
}

// runGuarded runs one epoch dispatch with panic recovery: a behavior panic
// aborts the transaction (the epoch's partial effects are discarded), and
// — within the PanicRetries budget, on a checkpoint-armed engine — the
// run rolls back to the last barrier checkpoint and the epoch is retried.
// Non-panic errors pass through untouched. completed is the iteration
// count at the epoch's opening barrier, published with the abort harvest
// so /metrics readers see abort counters even when the run then dies.
func (e *engine) runGuarded(iters, completed int64, retries *int) error {
	for {
		err := e.runEpoch(iters)
		if err == nil {
			return nil
		}
		var pe *BehaviorPanicError
		if !errors.As(err, &pe) {
			return err
		}
		rollTo := int64(-1)
		if e.ckpt != nil {
			rollTo = e.ckpt.Completed
		}
		if e.mx != nil {
			e.mx.aborts++
		}
		e.record(obs.Event{Kind: obs.EvAbort, Completed: rollTo, Detail: pe.Node})
		if e.ckpt == nil || *retries >= e.cfg.PanicRetries {
			e.harvest(completed, false)
			return pe
		}
		if rerr := e.rollbackAfterAbort(); rerr != nil {
			return rerr
		}
		*retries++
		if e.mx != nil {
			e.mx.restores++
		}
		e.record(obs.Event{Kind: obs.EvRestore, Completed: rollTo, Detail: pe.Node})
		e.harvest(completed, true)
	}
}

// validateResume checks a checkpoint against the engine's wired graph
// before its state is installed: same graph name, same nodes, same
// concrete edges in the same order. Compile is deterministic, so a
// checkpoint from the same source graph always lines up; anything else is
// a caller bug worth a clear error.
func (e *engine) validateResume(ck *Checkpoint) error {
	g := e.cfg.Graph
	if ck.Graph != g.Name {
		return fmt.Errorf("engine: resume: checkpoint is for graph %q, not %q", ck.Graph, g.Name)
	}
	if len(ck.Nodes) != len(g.Nodes) || len(ck.Fired) != len(g.Nodes) || len(ck.Base) != len(g.Nodes) {
		return fmt.Errorf("engine: resume: checkpoint has %d nodes, graph has %d", len(ck.Nodes), len(g.Nodes))
	}
	for id, n := range g.Nodes {
		if ck.Nodes[id] != n.Name {
			return fmt.Errorf("engine: resume: node %d is %q in the checkpoint, %q in the graph", id, ck.Nodes[id], n.Name)
		}
	}
	if len(ck.Edges) != len(e.cg.Edges) || len(ck.EdgeNames) != len(e.cg.Edges) {
		return fmt.Errorf("engine: resume: checkpoint has %d edges, graph has %d", len(ck.Edges), len(e.cg.Edges))
	}
	for ci := range e.cg.Edges {
		if ck.EdgeNames[ci] != e.cg.Edges[ci].Name {
			return fmt.Errorf("engine: resume: edge %d is %q in the checkpoint, %q in the graph", ci, ck.EdgeNames[ci], e.cg.Edges[ci].Name)
		}
	}
	return nil
}
