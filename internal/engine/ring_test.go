package engine

import (
	"reflect"
	"sync"
	"testing"
)

// TestRingFIFOAcrossWrap pushes batches through a small ring from a
// producer goroutine while a consumer drains mismatched batch sizes, so
// every wraparound alignment is exercised; the consumer must see the exact
// FIFO sequence.
func TestRingFIFOAcrossWrap(t *testing.T) {
	const total = 10_000
	r := newRing(7)
	stop := make(chan struct{})
	var got []any

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]any, 0, 5)
		next := 0
		for next < total {
			batch = batch[:0]
			for b := 0; b < 1+next%5 && next < total; b++ {
				batch = append(batch, next)
				next++
			}
			if !r.write(batch, stop) {
				t.Error("write aborted")
				return
			}
		}
	}()

	buf := make([]any, 7)
	for len(got) < total {
		n := int64(1 + len(got)%3)
		if int64(total-len(got)) < n {
			n = int64(total - len(got))
		}
		if !r.read(buf, n, stop) {
			t.Fatal("read aborted")
		}
		got = append(got, buf[:n]...)
	}
	wg.Wait()

	for i, v := range got {
		if v.(int) != i {
			t.Fatalf("position %d: got %v, want %d", i, v, i)
		}
	}
}

// TestRingStopUnblocks parks a consumer on an empty ring and a producer on
// a full one; closing stop must release both with a false return.
func TestRingStopUnblocks(t *testing.T) {
	stop := make(chan struct{})
	empty := newRing(4)
	full := newRing(2)
	if !full.writeNil(2, stop) {
		t.Fatal("seeding the full ring blocked")
	}

	res := make(chan bool, 2)
	go func() { res <- empty.read(make([]any, 1), 1, stop) }()
	go func() { res <- full.write([]any{nil}, stop) }()
	close(stop)
	if <-res || <-res {
		t.Fatal("a blocked ring op returned true after stop")
	}
}

// TestRingGrowPreservesContent fills a ring across its wrap point, grows
// it, and checks the drained content is the untouched FIFO prefix.
func TestRingGrowPreservesContent(t *testing.T) {
	stop := make(chan struct{})
	r := newRing(4)
	if !r.write([]any{0, 1, 2}, stop) {
		t.Fatal("write blocked")
	}
	if !r.discard(2, stop) { // head now mid-buffer
		t.Fatal("discard blocked")
	}
	if !r.write([]any{3, 4, 5}, stop) { // wraps
		t.Fatal("write blocked")
	}
	r.grow(16)
	if r.cap() != 16 {
		t.Fatalf("cap after grow: %d, want 16", r.cap())
	}
	if got, want := r.drain(), []any{2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("content after grow: %v, want %v", got, want)
	}
	// Growing never shrinks.
	r.grow(2)
	if r.cap() != 16 {
		t.Fatalf("grow(2) shrank the ring to %d", r.cap())
	}
}

// TestRingWriteNilAndDiscard checks the token-only paths used by
// behavior-less nodes.
func TestRingWriteNilAndDiscard(t *testing.T) {
	stop := make(chan struct{})
	r := newRing(8)
	if !r.writeNil(5, stop) {
		t.Fatal("writeNil blocked")
	}
	if r.len() != 5 {
		t.Fatalf("len after writeNil(5): %d", r.len())
	}
	if !r.discard(3, stop) {
		t.Fatal("discard blocked")
	}
	if r.len() != 2 {
		t.Fatalf("len after discard(3): %d", r.len())
	}
	if got := r.drain(); len(got) != 2 || got[0] != nil || got[1] != nil {
		t.Fatalf("drain: %v, want two nils", got)
	}
}
