package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/symb"
	"repro/tpdf/obs"
)

// ckRun is one fault-tolerant pipeline run: sink payload sequence travels
// with the checkpoint via SnapshotUser/RestoreUser, so rolled-back or
// resumed runs keep exactly-once output.
type ckRun struct {
	seq   []int
	saved *Checkpoint
}

func (c *ckRun) snapshot() any { return append([]int(nil), c.seq...) }
func (c *ckRun) restore(u any) {
	if u == nil {
		c.seq = c.seq[:0]
		return
	}
	c.seq = append(c.seq[:0], u.([]int)...)
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	g := pipeline(t)
	const iters = 12
	const captureAt = 5

	run := func(resume *Checkpoint) (*ckRun, map[string]int64, map[string][]any, error) {
		c := &ckRun{}
		cfg := Config{
			Graph:        g,
			Behaviors:    pipelineBehaviors(&c.seq),
			Iterations:   iters,
			Resume:       resume,
			SnapshotUser: c.snapshot,
			RestoreUser:  c.restore,
			CheckpointSink: func(ck *Checkpoint) {
				if ck.Completed == captureAt && c.saved == nil {
					c.saved = ck.Clone()
				}
			},
			// A barrier hook forces per-iteration boundaries so a capture
			// exists at captureAt.
			Reconfigure: func(int64) map[string]int64 { return nil },
		}
		res, err := Run(cfg)
		if err != nil {
			return c, nil, nil, err
		}
		return c, res.Firings, res.Remaining, nil
	}

	ref, refFirings, refRemaining, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.saved == nil {
		t.Fatalf("no checkpoint captured at iteration %d", captureAt)
	}
	if ref.saved.Completed != captureAt || ref.saved.Graph != "pipe" {
		t.Fatalf("checkpoint = {%s, %d}, want {pipe, %d}", ref.saved.Graph, ref.saved.Completed, captureAt)
	}

	res, gotFirings, gotRemaining, err := run(ref.saved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFirings, refFirings) {
		t.Errorf("firings: resumed %v, uninterrupted %v", gotFirings, refFirings)
	}
	if !reflect.DeepEqual(gotRemaining, refRemaining) {
		t.Errorf("remaining: resumed %v, uninterrupted %v", gotRemaining, refRemaining)
	}
	if !reflect.DeepEqual(res.seq, ref.seq) {
		t.Errorf("payload streams differ:\nresumed       %v\nuninterrupted %v", res.seq, ref.seq)
	}
}

// TestCheckpointResumeAcrossRebinds resumes from a checkpoint taken
// between two parameter changes: the restored valuation (the checkpoint's
// Params) and the rate-phase base must both survive, or the tail diverges.
func TestCheckpointResumeAcrossRebinds(t *testing.T) {
	g := reconfGraph(t)
	plan := []int64{2, 5, 5, 3, 4, 4, 2, 6}
	const captureAt = 4 // between the p=3 and p=4 boundaries

	run := func(resume *Checkpoint) ([][2]int, *Checkpoint, error) {
		var observed [][2]int
		var saved *Checkpoint
		res, err := Run(Config{
			Graph: g,
			Env:   symb.Env{"p": plan[0]},
			Behaviors: map[string]runner.Behavior{
				"B": func(f *runner.Firing) error {
					observed = append(observed, [2]int{len(f.In["i0"]), len(f.In["i1"])})
					return nil
				},
			},
			Iterations: int64(len(plan)),
			Resume:     resume,
			Reconfigure: func(completed int64) map[string]int64 {
				return map[string]int64{"p": plan[completed]}
			},
			SnapshotUser: func() any { return append([][2]int(nil), observed...) },
			RestoreUser: func(u any) {
				observed = observed[:0]
				if u != nil {
					observed = append(observed, u.([][2]int)...)
				}
			},
			CheckpointSink: func(ck *Checkpoint) {
				if ck.Completed == captureAt && saved == nil {
					saved = ck.Clone()
				}
			},
		})
		if err != nil {
			return nil, nil, err
		}
		if got := res.Firings["B"]; got != int64(len(plan)) {
			return nil, nil, fmt.Errorf("B fired %d times, want %d", got, len(plan))
		}
		return observed, saved, nil
	}

	ref, saved, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if saved == nil {
		t.Fatal("no checkpoint captured")
	}
	if saved.Params["p"] != plan[captureAt] {
		t.Fatalf("checkpoint p = %d, want %d", saved.Params["p"], plan[captureAt])
	}
	got, _, err := run(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("observed rates differ:\nresumed       %v\nuninterrupted %v", got, ref)
	}
}

// reconfGraph is the two-parallel-edge parametric graph of
// TestReconfigureAtTransactionBoundaries.
func reconfGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph("reconf")
	g.AddParam("p", 2, 1, 8)
	a := g.AddKernel("A", 1)
	b := g.AddKernel("B", 1)
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "[p]", b, "[p]", 0); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPanicRollbackRecoversByteIdentical(t *testing.T) {
	g := pipeline(t)
	const iters = 10

	run := func(faults *faultinject.Plan, retries int) (*ckRun, map[string]int64, error) {
		c := &ckRun{}
		jr := obs.NewJournal(64)
		res, err := Run(Config{
			Graph:        g,
			Behaviors:    pipelineBehaviors(&c.seq),
			Iterations:   iters,
			Reconfigure:  func(int64) map[string]int64 { return nil },
			SnapshotUser: c.snapshot,
			RestoreUser:  c.restore,
			PanicRetries: retries,
			Faults:       faults,
			Journal:      jr,
		})
		if err != nil {
			return c, nil, err
		}
		if faults != nil {
			kinds := map[obs.EventKind]int{}
			for _, ev := range jr.Events() {
				kinds[ev.Kind]++
			}
			if kinds[obs.EvAbort] == 0 || kinds[obs.EvRestore] == 0 {
				return c, nil, fmt.Errorf("journal missing abort/restore events: %v", kinds)
			}
		}
		return c, res.Firings, nil
	}

	ref, refFirings, err := run(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.New(
		faultinject.Fault{Kind: faultinject.KindPanic, Node: "A", K: 6},
		faultinject.Fault{Kind: faultinject.KindPanic, Node: "SNK", K: 8},
	)
	got, gotFirings, err := run(faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	if faults.Pending() != 0 {
		t.Fatalf("%d faults never fired", faults.Pending())
	}
	if !reflect.DeepEqual(gotFirings, refFirings) {
		t.Errorf("firings: recovered %v, fault-free %v", gotFirings, refFirings)
	}
	if !reflect.DeepEqual(got.seq, ref.seq) {
		t.Errorf("payload streams differ:\nrecovered  %v\nfault-free %v", got.seq, ref.seq)
	}
}

func TestPanicWithoutRetriesReturnsStructuredError(t *testing.T) {
	g := pipeline(t)
	behaviors := pipelineBehaviors(new([]int))
	behaviors["A"] = func(f *runner.Firing) error {
		if f.K == 3 {
			panic("kaboom")
		}
		f.Produce("o0", f.In["i0"][0].(int)*10)
		return nil
	}
	_, err := Run(Config{Graph: g, Behaviors: behaviors, Iterations: 50})
	var pe *BehaviorPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v (%T), want *BehaviorPanicError", err, err)
	}
	if pe.Node != "A" || pe.Firing != 3 {
		t.Errorf("panic located at %s firing %d, want A firing 3", pe.Node, pe.Firing)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("panic error carries no stack")
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %q does not carry the panic value", err)
	}
}

func TestPanicRetriesExhausted(t *testing.T) {
	g := pipeline(t)
	// A deterministic panic: every replay of firing 3 hits it again, so the
	// retry budget must bound the rollback loop.
	aborts := 0
	behaviors := pipelineBehaviors(new([]int))
	behaviors["A"] = func(f *runner.Firing) error {
		if f.K == 3 {
			aborts++
			panic("always")
		}
		f.Produce("o0", f.In["i0"][0].(int)*10)
		return nil
	}
	mx := obs.NewRegistry()
	_, err := Run(Config{
		Graph: g, Behaviors: behaviors, Iterations: 50,
		Reconfigure:  func(int64) map[string]int64 { return nil },
		PanicRetries: 2,
		Metrics:      mx,
	})
	var pe *BehaviorPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *BehaviorPanicError", err)
	}
	if aborts != 3 { // initial attempt + 2 retries
		t.Errorf("behavior hit %d times, want 3 (1 + 2 retries)", aborts)
	}
	snap := mx.EngineSnapshot()
	if snap.Aborts != 3 || snap.Restores != 2 {
		t.Errorf("metrics aborts=%d restores=%d, want 3/2", snap.Aborts, snap.Restores)
	}
}

func TestRebindAbortValidation(t *testing.T) {
	g := reconfGraph(t)
	plan := []int64{2, 7, 3, 4} // p=7 will be rejected
	validate := func(params map[string]int64) error {
		if params["p"] > 6 {
			return fmt.Errorf("p=%d exceeds policy", params["p"])
		}
		return nil
	}

	t.Run("fatal without handler", func(t *testing.T) {
		_, err := Run(Config{
			Graph: g, Env: symb.Env{"p": plan[0]}, Iterations: int64(len(plan)),
			Reconfigure: func(completed int64) map[string]int64 {
				return map[string]int64{"p": plan[completed]}
			},
			ValidateRebind: validate,
		})
		if !errors.Is(err, ErrRebindAborted) {
			t.Fatalf("got %v, want ErrRebindAborted", err)
		}
	})

	t.Run("continues with handler", func(t *testing.T) {
		var observed []int
		var abortErrs []error
		res, err := Run(Config{
			Graph: g, Env: symb.Env{"p": plan[0]}, Iterations: int64(len(plan)),
			Behaviors: map[string]runner.Behavior{
				"B": func(f *runner.Firing) error {
					observed = append(observed, len(f.In["i0"]))
					return nil
				},
			},
			Reconfigure: func(completed int64) map[string]int64 {
				return map[string]int64{"p": plan[completed]}
			},
			ValidateRebind: validate,
			OnRebindAbort:  func(err error) { abortErrs = append(abortErrs, err) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(abortErrs) != 1 || !errors.Is(abortErrs[0], ErrRebindAborted) {
			t.Fatalf("abort handler got %v, want one ErrRebindAborted", abortErrs)
		}
		if res.Firings["B"] != int64(len(plan)) {
			t.Fatalf("B fired %d times, want %d", res.Firings["B"], len(plan))
		}
		// Iteration 1 runs under the *old* p=2 because p=7 was aborted;
		// later boundaries rebind normally.
		want := []int{2, 2, 3, 4}
		if !reflect.DeepEqual(observed, want) {
			t.Errorf("observed rates %v, want %v", observed, want)
		}
	})
}

func TestRebindAbortInjected(t *testing.T) {
	g := reconfGraph(t)
	plan := []int64{2, 3, 4, 5}
	faults := faultinject.New(faultinject.Fault{Kind: faultinject.KindRebindAbort, K: 2})
	var observed []int
	var aborts int
	_, err := Run(Config{
		Graph: g, Env: symb.Env{"p": plan[0]}, Iterations: int64(len(plan)),
		Behaviors: map[string]runner.Behavior{
			"B": func(f *runner.Firing) error {
				observed = append(observed, len(f.In["i0"]))
				return nil
			},
		},
		Reconfigure: func(completed int64) map[string]int64 {
			return map[string]int64{"p": plan[completed]}
		},
		OnRebindAbort: func(error) { aborts++ },
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aborts != 1 {
		t.Fatalf("%d aborts, want 1", aborts)
	}
	// The K=2 fault rejects the p=4 rebind at completed=2: iteration 2 runs
	// under the previous p=3; the p=5 rebind at completed=3 succeeds.
	want := []int{2, 3, 3, 5}
	if !reflect.DeepEqual(observed, want) {
		t.Errorf("observed rates %v, want %v", observed, want)
	}
}

// TestRollbackThenCancel exercises the cancellation-vs-abort race window:
// a context cancelled while a panic error is pending must still end the
// run even though the rollback clears the error.
func TestRollbackThenCancel(t *testing.T) {
	g := pipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	behaviors := pipelineBehaviors(new([]int))
	behaviors["A"] = func(f *runner.Firing) error {
		if f.K == 3 {
			cancel() // cancellation lands just before the panic is recorded
			panic("boom")
		}
		f.Produce("o0", f.In["i0"][0].(int)*10)
		return nil
	}
	_, err := Run(Config{
		Graph: g, Context: ctx, Behaviors: behaviors, Iterations: 1000,
		Reconfigure:  func(int64) map[string]int64 { return nil },
		PanicRetries: 100,
	})
	if err == nil {
		t.Fatal("run survived cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		// The panic error is an acceptable answer too (the race can resolve
		// either way), but the run must not hang or succeed.
		var pe *BehaviorPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("got %v, want context.Canceled or BehaviorPanicError", err)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	g := pipeline(t)
	var saved *Checkpoint
	_, err := Run(Config{
		Graph: g, Behaviors: pipelineBehaviors(new([]int)), Iterations: 4,
		Reconfigure:    func(int64) map[string]int64 { return nil },
		CheckpointSink: func(ck *Checkpoint) { saved = ck.Clone() },
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := saved.Clone()
	bad.Graph = "other"
	if _, err := Run(Config{Graph: g, Iterations: 8, Resume: bad}); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Errorf("mismatched graph name accepted: %v", err)
	}
	bad2 := saved.Clone()
	bad2.Nodes[0] = "ZZZ"
	if _, err := Run(Config{Graph: g, Iterations: 8, Resume: bad2}); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Errorf("mismatched node accepted: %v", err)
	}
	bad3 := saved.Clone()
	bad3.Completed = 100
	if _, err := Run(Config{Graph: g, Iterations: 8, Resume: bad3}); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Errorf("overshot checkpoint accepted: %v", err)
	}
}

// TestEntryCaptureResumeByteIdentical pins the AtEntry contract durable
// persistence depends on: an entry cut is taken before the boundary's hook
// runs, so at the moment a Barrier hook acknowledges completed work the
// entry capture already covers every acknowledged iteration — and resuming
// from it must re-invoke that boundary's hook (the hook's effects are not
// part of the cut) and then replay the tail byte-identically.
func TestEntryCaptureResumeByteIdentical(t *testing.T) {
	g := reconfGraph(t)
	plan := []int64{2, 5, 3, 4, 6, 2, 3, 5}
	const captureAt = 4 // entry cut at the p=6 boundary, before its rebind

	run := func(resume *Checkpoint) ([]int, []int64, *Checkpoint, error) {
		var observed []int
		var hookAt []int64
		var saved *Checkpoint
		_, err := Run(Config{
			Graph: g,
			Env:   symb.Env{"p": plan[0]},
			Behaviors: map[string]runner.Behavior{
				"B": func(f *runner.Firing) error {
					observed = append(observed, len(f.In["i0"]))
					return nil
				},
			},
			Iterations: int64(len(plan)),
			Resume:     resume,
			Reconfigure: func(completed int64) map[string]int64 {
				hookAt = append(hookAt, completed)
				return map[string]int64{"p": plan[completed]}
			},
			SnapshotUser: func() any { return append([]int(nil), observed...) },
			RestoreUser: func(u any) {
				observed = observed[:0]
				if u != nil {
					observed = append(observed, u.([]int)...)
				}
			},
			CaptureAtEntry: true,
			CheckpointSink: func(ck *Checkpoint) {
				if ck.AtEntry && ck.Completed == captureAt && saved == nil {
					saved = ck.Clone()
				}
			},
		})
		return observed, hookAt, saved, err
	}

	ref, refHooks, saved, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if saved == nil {
		t.Fatalf("no entry capture at %d", captureAt)
	}
	if !saved.AtEntry {
		t.Fatal("capture not marked AtEntry")
	}
	// The entry cut precedes the boundary's rebind: it still holds the
	// previous valuation, and the interrupted prefix never saw hook(4).
	if saved.Params["p"] != plan[captureAt-1] {
		t.Fatalf("entry capture p = %d, want pre-rebind %d", saved.Params["p"], plan[captureAt-1])
	}

	got, gotHooks, _, err := run(saved)
	if err != nil {
		t.Fatal(err)
	}
	// Resume re-invokes the boundary's hook: the resumed run starts its
	// hook sequence at captureAt, exactly where the reference run's hook
	// for that boundary fired.
	if len(gotHooks) == 0 || gotHooks[0] != captureAt {
		t.Fatalf("resumed hook calls %v, want to start at %d", gotHooks, captureAt)
	}
	if want := refHooks[captureAt-1:]; !reflect.DeepEqual(gotHooks, want) {
		t.Errorf("resumed hook sequence %v, want %v", gotHooks, want)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("observed rates differ:\nresumed       %v\nuninterrupted %v", got, ref)
	}
}

// TestEntryCaptureCoversAckedWork is the ack-ordering guarantee: when the
// Barrier hook observes `completed` iterations, an entry capture with that
// Completed count has already been handed to the sink — so a service that
// flushes the newest entry capture before acknowledging a pump can never
// ack work that no durable cut covers.
func TestEntryCaptureCoversAckedWork(t *testing.T) {
	g := pipeline(t)
	var newestEntry int64 = -1
	_, err := Run(Config{
		Graph: g, Behaviors: pipelineBehaviors(new([]int)), Iterations: 6,
		CaptureAtEntry: true,
		CheckpointSink: func(ck *Checkpoint) {
			if ck.AtEntry {
				newestEntry = ck.Completed
			}
		},
		Reconfigure: func(completed int64) map[string]int64 {
			if newestEntry < completed {
				t.Errorf("hook saw completed=%d but newest entry capture is %d", completed, newestEntry)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if newestEntry != 6 {
		t.Errorf("final entry capture at %d, want 6 (run end is an entry cut)", newestEntry)
	}
}

// TestStallErrorIncludesRingOccupancy pins the watchdog diagnostics: the
// deadlock error must name the stalled actors *and* report every edge's
// ring occupancy/capacity.
func TestStallErrorIncludesRingOccupancy(t *testing.T) {
	g := deadlockDiamond(t)
	_, err := Run(Config{Graph: g, Capacity: 1, StallTimeout: 30 * time.Millisecond})
	if err == nil {
		t.Fatal("capacity-1 diamond did not deadlock")
	}
	msg := err.Error()
	if !strings.Contains(msg, "actor ") || !strings.Contains(msg, "waiting") {
		t.Errorf("stall error names no blocked actor: %q", msg)
	}
	if !strings.Contains(msg, "ring occupancy:") {
		t.Errorf("stall error carries no ring occupancy snapshot: %q", msg)
	}
}
