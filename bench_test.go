package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablations and performance benchmarks of the analyses themselves. Run
//
//	go test -bench=. -benchmem
//
// The same artifact generators back cmd/tpdf-bench, which prints the
// regenerated tables/series; here they are exercised under the Go benchmark
// harness so regressions in analysis cost show up as benchmark deltas.

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/csdf"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/imaging"
	"repro/internal/platform"
	"repro/internal/rat"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
)

// BenchmarkFig1CSDFExample regenerates Fig. 1: repetition vector and the
// (a3)^2(a1)^3(a2)^2 schedule of the CSDF example.
func BenchmarkFig1CSDFExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.F1()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "(a3)^2 (a1)^3 (a2)^2") {
			b.Fatal("schedule mismatch")
		}
	}
}

// BenchmarkFig2TPDFExample regenerates Fig. 2 and Examples 1-3: the
// symbolic repetition vector, control area, local solution and rate safety.
func BenchmarkFig2TPDFExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.F2()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "Area(C) = {B,D,E,F}") {
			b.Fatal("area mismatch")
		}
	}
}

// BenchmarkFig3Virtualization regenerates Fig. 3: select-duplicate output
// choice rewritten as a virtual transaction's input choice.
func BenchmarkFig3Virtualization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.F3()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "boundedness preserved: true") {
			b.Fatal("virtualization broke boundedness")
		}
	}
}

// BenchmarkFig4Liveness regenerates Fig. 4: liveness by clustering with the
// late schedule (B C C B).
func BenchmarkFig4Liveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.F4()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "(B C C B)") {
			b.Fatal("late schedule missing")
		}
	}
}

// BenchmarkFig5CanonicalPeriod regenerates Fig. 5: the canonical period of
// the running example at p=1 scheduled with control priority.
func BenchmarkFig5CanonicalPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6EdgeDetectorTable regenerates the Fig. 6 table by running
// the four real detectors on a 1024×1024 synthetic scene (one sub-benchmark
// per method so per-detector times are reported like the paper's table).
func BenchmarkFig6EdgeDetectorTable(b *testing.B) {
	im := imaging.Synthetic(1024, 1024, 1)
	for _, d := range imaging.Detectors() {
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Run(im)
			}
		})
	}
}

// BenchmarkFig6DeadlineSelection regenerates the Fig. 6 experiment: the
// transaction choosing the best detector available at the 500 ms deadline.
func BenchmarkFig6DeadlineSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := apps.EdgeDetection(500, nil)
		res, err := sim.Run(sim.Config{Graph: app.Graph, Decide: app.DeadlineDecide(), Record: true})
		if err != nil {
			b.Fatal(err)
		}
		chosen := ""
		for _, ev := range res.Events {
			if ev.Node == "Trans" && len(ev.Selected) == 1 {
				chosen = app.DetectorFor(ev.Selected[0])
			}
		}
		if chosen != "Sobel" {
			b.Fatalf("selected %q, want Sobel", chosen)
		}
	}
}

// BenchmarkFig7OFDMAnalysis regenerates Fig. 7: the full analysis of the
// OFDM demodulator graph.
func BenchmarkFig7OFDMAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := analysis.Analyze(apps.OFDMTPDF(apps.DefaultOFDM()))
		if rep.Err != nil || !rep.Bounded {
			b.Fatalf("OFDM analysis failed: %v", rep.Err)
		}
	}
}

// BenchmarkFig8BufferSweep regenerates Fig. 8: buffer size versus
// vectorization degree for N in {512, 1024}, TPDF against CSDF. The
// measured totals must match the paper's formulas exactly.
func BenchmarkFig8BufferSweep(b *testing.B) {
	betas := []int64{10, 50, 100}
	for i := 0; i < b.N; i++ {
		points, err := buffer.OFDMSweep(betas, []int64{512, 1024}, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.TPDF != p.PaperTPDF || p.CSDF != p.PaperCSDF {
				b.Fatalf("buffer mismatch at beta=%d N=%d", p.Beta, p.N)
			}
		}
		imp := buffer.MeanImprovement(points)
		if imp < 0.28 || imp > 0.31 {
			b.Fatalf("improvement %.3f not ≈ 29%%", imp)
		}
	}
}

// BenchmarkAblationControlPriority measures the §III-D scheduling rule's
// effect on the Fig. 2 canonical period.
func BenchmarkAblationControlPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScheduleAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlatformSweep scales the canonical period across MPPA
// slices (1..256 PEs).
func BenchmarkAblationPlatformSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PlatformSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFMRadio compares the StreamIt-style radio with and
// without dynamic band selection.
func BenchmarkAblationFMRadio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FMRadioComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Performance benchmarks of the core machinery. ---

// BenchmarkSymbolicConsistencyFig2 measures the symbolic balance-equation
// solver on the running example.
func BenchmarkSymbolicConsistencyFig2(b *testing.B) {
	g := apps.Fig2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Consistency(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcreteRepetitionVector measures the rational solver on the
// instantiated graph.
func BenchmarkConcreteRepetitionVector(b *testing.B) {
	g := apps.Fig2()
	cg, _, err := g.Instantiate(symb.Env{"p": 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cg.RepetitionVector(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalPeriodP64 measures precedence-graph construction at
// p=64 (the canonical period has ~450 firings).
func BenchmarkCanonicalPeriodP64(b *testing.B) {
	g := apps.Fig2()
	cg, _, err := g.Instantiate(symb.Env{"p": 64})
	if err != nil {
		b.Fatal(err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cg.BuildPrecedence(sol, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListScheduleMPPA measures list scheduling of the p=64 canonical
// period onto 64 MPPA PEs.
func BenchmarkListScheduleMPPA(b *testing.B) {
	g := apps.Fig2()
	cg, _, err := g.Instantiate(symb.Env{"p": 64})
	if err != nil {
		b.Fatal(err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		b.Fatal(err)
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		b.Fatal(err)
	}
	opts := sched.Options{Platform: platform.MPPA256(), PEs: 64, ControlPriority: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ListSchedule(cg, prec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorOFDM measures a full simulator iteration of the OFDM
// demodulator at beta=100, N=1024.
func BenchmarkSimulatorOFDM(b *testing.B) {
	params := apps.OFDMParams{Beta: 100, M: 4, N: 1024, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatOps measures the rational arithmetic under every balance
// equation and repetition vector: an add/mul/div mix over non-trivial
// denominators. Must stay allocation-free (Rat is a value type).
func BenchmarkRatOps(b *testing.B) {
	b.ReportAllocs()
	a := rat.New(7, 12)
	c := rat.New(35, 9)
	var acc rat.Rat
	for i := 0; i < b.N; i++ {
		acc = a.MustAdd(c).MustMul(a).MustSub(c.Inv()).MustDiv(c)
	}
	_ = acc
}

// BenchmarkPolyAddMul measures symbolic polynomial arithmetic, the core of
// the symbolic consistency solver (Add and Mul dominate its profile).
func BenchmarkPolyAddMul(b *testing.B) {
	b.ReportAllocs()
	p := symb.PolyVar("p").Scale(rat.New(2, 1)).Add(symb.PolyInt(3))
	q := symb.PolyVar("q").Add(symb.PolyVar("p")).Add(symb.PolyInt(1))
	var acc symb.Poly
	for i := 0; i < b.N; i++ {
		acc = p.Mul(q).Add(p).Sub(q)
	}
	_ = acc
}

// BenchmarkSimReset measures one steady-state Reset+run cycle of a pooled
// simulator on the OFDM demodulator — the unit of work every sweep point
// costs. The tracked invariant is 0 allocs/op: the grid sweeps stay
// allocation-free after each worker's simulator has warmed up.
func BenchmarkSimReset(b *testing.B) {
	params := apps.OFDMParams{Beta: 10, M: 4, N: 64, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewSimulator(sim.Config{Graph: g, Env: symb.Env(params.Env()), Decide: decide, BuffersOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		b.Fatal(err) // warm the event queue and control rings
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepInstantiate measures one OFDM sweep point through the
// one-shot path a sweep driver used before the compile layer: a fresh
// graph instantiation, repetition-vector solve and simulator per
// valuation. Compare with BenchmarkSweepRebind.
func BenchmarkSweepInstantiate(b *testing.B) {
	params := apps.OFDMParams{Beta: 10, M: 4, N: 64, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		b.Fatal(err)
	}
	envs := []symb.Env{
		{"beta": 10, "M": 4, "N": 64, "L": 1},
		{"beta": 4, "M": 4, "N": 32, "L": 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.NewSimulator(sim.Config{Graph: g, Env: envs[i%2], Decide: decide, BuffersOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepRebind measures the same alternating sweep points through
// the compile-once fast path: one Program+Simulator pair, rebound in place
// per point. The delta against BenchmarkSweepInstantiate is the per-point
// saving every sweep worker banks; the tracked invariant is 0 allocs/op
// (gated by sim's TestSweepSteadyStateAllocs).
func BenchmarkSweepRebind(b *testing.B) {
	params := apps.OFDMParams{Beta: 10, M: 4, N: 64, L: 1}
	g := apps.OFDMTPDF(params)
	decide, err := apps.OFDMDecide(g, params.M)
	if err != nil {
		b.Fatal(err)
	}
	envs := []symb.Env{
		{"beta": 10, "M": 4, "N": 64, "L": 1},
		{"beta": 4, "M": 4, "N": 32, "L": 1},
	}
	prog, err := core.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := prog.Rebind(envs[0]); err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewSimulatorFromProgram(prog, sim.Config{Decide: decide, BuffersOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, env := range envs { // warm both valuations
		if err := prog.Rebind(env); err != nil {
			b.Fatal(err)
		}
		if err := s.BindProgram(prog); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prog.Rebind(envs[i%2]); err != nil {
			b.Fatal(err)
		}
		if err := s.BindProgram(prog); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOFDMSweepParallel measures the sharded Fig. 8 grid against the
// sequential driver on the same grid (the speedup is the worker scaling on
// this host).
func BenchmarkOFDMSweepParallel(b *testing.B) {
	betas := []int64{10, 30, 50}
	for _, workers := range []int{1, 4} {
		b.Run(map[bool]string{true: "sequential", false: "parallel4"}[workers == 1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := buffer.OFDMSweepParallel(betas, []int64{512}, 4, 1, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPASSConstruction measures sequential-schedule construction on a
// long CSDF chain.
func BenchmarkPASSConstruction(b *testing.B) {
	g := csdf.NewGraph()
	prev := g.AddActor("n0")
	for i := 1; i <= 12; i++ {
		cur := g.AddActor("n" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		g.Connect(prev, []int64{int64(i%3 + 1)}, cur, []int64{int64(i%2 + 1)}, 0)
		prev = cur
	}
	sol, err := g.RepetitionVector()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BuildSchedule(sol, csdf.Eager); err != nil {
			b.Fatal(err)
		}
	}
}

// streamThroughputGraph is the engine transport benchmark chain: a
// consistent multirate pipeline (q = [1, 2, 1, 3]) with a cyclo-static
// phase, matching the stream/multirate workload of tpdf-bench -engine.
func streamThroughputGraph(b *testing.B) *core.Graph {
	b.Helper()
	g := core.NewGraph("throughput")
	src := g.AddKernel("SRC", 1)
	a := g.AddKernel("A", 1)
	bb := g.AddKernel("B", 1)
	snk := g.AddKernel("SNK", 1)
	for _, c := range []struct {
		from core.NodeID
		p    string
		to   core.NodeID
		q    string
	}{
		{src, "[4]", a, "[3,1]"},
		{a, "[2]", bb, "[4]"},
		{bb, "[3]", snk, "[1]"},
	} {
		if _, err := g.Connect(c.from, c.p, c.to, c.q, 0); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// BenchmarkStreamThroughput measures the concurrent engine's transport-
// bound hot path: behaviors only move pre-boxed tokens, so ns/op is ring
// synchronization plus scheduling, and allocs/op must stay flat at the
// per-run setup cost (the warm firing path allocates nothing).
func BenchmarkStreamThroughput(b *testing.B) {
	g := streamThroughputGraph(b)
	behaviors := map[string]runner.Behavior{
		"SRC": func(f *runner.Firing) error {
			f.Out["o0"] = append(f.Out["o0"], 1, 2, 3, 4)
			return nil
		},
		"A": func(f *runner.Firing) error {
			f.Out["o0"] = append(f.Out["o0"], 5, 6)
			return nil
		},
		"B": func(f *runner.Firing) error {
			f.Out["o0"] = append(f.Out["o0"], 7, 8, 9)
			return nil
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Graph: g, Behaviors: behaviors, Iterations: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamTokenOnly is the same chain with no behaviors at all:
// pure token movement (discard + nil emission), the floor the transport
// can reach.
func BenchmarkStreamTokenOnly(b *testing.B) {
	g := streamThroughputGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(engine.Config{Graph: g, Iterations: 256}); err != nil {
			b.Fatal(err)
		}
	}
}
