// Package repro reproduces "Transaction Parameterized Dataflow: A Model for
// Context-Dependent Streaming Applications" (Do, Louise, Cohen — DATE 2016)
// as a Go library.
//
// The implementation lives under internal/:
//
//   - core: the TPDF model of computation (kernels, control actors, modes,
//     parametric rates, Select-duplicate/Transaction/Clock actors);
//   - csdf: the Cyclo-Static Dataflow base model and its classical analyses;
//   - analysis: the paper's static analyses — symbolic rate consistency,
//     control areas, local solutions, rate safety, boundedness, liveness;
//   - sched + platform: canonical-period list scheduling on MPPA-like
//     many-core abstractions with the control-priority rule;
//   - sim: token-accurate discrete-event execution of TPDF semantics;
//   - runner: payload-level execution for real data;
//   - dsp + imaging: the OFDM and edge-detection substrates of the two case
//     studies; apps wires them into the paper's graphs;
//   - buffer, experiments, trace, graphio: buffer sizing, the experiment
//     harness regenerating every table and figure, reporting, and a textual
//     graph format with DOT export.
//
// The benchmarks in bench_test.go regenerate each paper artifact; the
// tpdf-analyze, tpdf-sched, tpdf-sim and tpdf-bench commands expose the
// same functionality on the command line. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-versus-measured outcomes.
package repro
