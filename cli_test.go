package repro

// Acceptance tests for the command-line tools, run through the toolchain
// against the shipped graph files.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIAnalyzeShippedGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	out := runTool(t, "tpdf-analyze", "graphs/fig2.tpdf")
	for _, frag := range []string{"consistency: OK", "2*p", "rate safe", "bounded"} {
		if !strings.Contains(out, frag) {
			t.Errorf("analyze output missing %q:\n%s", frag, out)
		}
	}
}

func TestCLIAnalyzeDOTExport(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	dot := filepath.Join(t.TempDir(), "fig2.dot")
	runTool(t, "tpdf-analyze", "-dot", dot, "-builtin", "fig2")
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("DOT file malformed:\n%s", data)
	}
}

func TestCLISimOFDM(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	out := runTool(t, "tpdf-sim", "-builtin", "ofdm", "-param", "beta=10")
	for _, frag := range []string{"total buffer: 61453", "QPSK  0", "quiescent=true"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sim output missing %q:\n%s", frag, out)
		}
	}
}

func TestCLISchedWithCodegen(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	gen := filepath.Join(t.TempDir(), "sched.go")
	out := runTool(t, "tpdf-sched", "-builtin", "fig2", "-param", "p=2", "-pes", "4", "-gen", gen)
	for _, frag := range []string{"makespan:", "critical path:", "MCR"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sched output missing %q:\n%s", frag, out)
		}
	}
	src, err := os.ReadFile(gen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func RunIteration") {
		t.Error("generated schedule code missing RunIteration")
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	out := runTool(t, "tpdf-bench", "-exp", "f1")
	if !strings.Contains(out, "(a3)^2 (a1)^3 (a2)^2") {
		t.Errorf("bench f1 output wrong:\n%s", out)
	}
}

func TestCLIBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	runTool(t, "tpdf-bench", "-quick", "-json", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Experiments []struct {
			Name    string `json:"name"`
			NsPerOp int64  `json:"ns_per_op"`
			Error   string `json:"error"`
		} `json:"experiments"`
		Engine struct {
			SequentialNs int64   `json:"sequential_ns_per_op"`
			StreamNs     int64   `json:"stream_ns_per_op"`
			Speedup      float64 `json:"speedup"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench JSON malformed: %v\n%s", err, data)
	}
	if len(rep.Experiments) == 0 {
		t.Fatal("bench JSON has no experiments")
	}
	for _, e := range rep.Experiments {
		if e.Error != "" {
			t.Errorf("experiment %s failed: %s", e.Name, e.Error)
		}
		if e.NsPerOp <= 0 {
			t.Errorf("experiment %s has no timing", e.Name)
		}
	}
	if rep.Engine.Speedup <= 1 {
		t.Errorf("engine speedup %.2f not > 1 (sequential %d ns, stream %d ns)",
			rep.Engine.Speedup, rep.Engine.SequentialNs, rep.Engine.StreamNs)
	}
}

func TestCLIAnalyzeRejectsUnknown(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI runs skipped in -short")
	}
	cmd := exec.Command("go", "run", "./cmd/tpdf-analyze", "-builtin", "nope")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("unknown builtin should fail:\n%s", out)
	}
}
