// OFDM demodulator example (paper §IV-B): the Fig. 7 cognitive-radio graph
// is analyzed, simulated for its buffer footprint against the CSDF
// baseline, and then executed at the payload level — real bits travel
// through IFFT/CP on the transmit side and the RCP -> FFT -> QAM actors of
// the TPDF graph on the receive side.
package main

import (
	"fmt"
	"log"

	"repro/tpdf"
	"repro/tpdf/dsp"
)

func main() {
	params := tpdf.OFDMParams{Beta: 10, M: 4, N: 512, L: 16}

	// 1. Static guarantees for all parameter values.
	g := tpdf.OFDMGraph(params)
	rep := tpdf.Analyze(g)
	fmt.Print(rep.String())

	// 2. Buffer comparison against CSDF (the Fig. 8 point for this config).
	pt, err := tpdf.OFDMBufferPoint(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffers at beta=%d N=%d: TPDF %d (paper %d), CSDF %d (paper %d), saving %.1f%%\n",
		params.Beta, params.N, pt.TPDF, pt.PaperTPDF, pt.CSDF, pt.PaperCSDF, 100*pt.Improvement())

	// 3. Mode selection in the simulator: QAM path active, QPSK dormant.
	decide, err := tpdf.OFDMDecide(g, params.M)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tpdf.Simulate(g, tpdf.WithParams(params.Env()), tpdf.WithDecisions(decide))
	if err != nil {
		log.Fatal(err)
	}
	qpsk, _ := g.NodeByName("QPSK")
	qam, _ := g.NodeByName("QAM")
	fmt.Printf("simulated firings: QPSK=%d QAM=%d (dynamic topology removed the unused branch)\n",
		res.Firings[qpsk], res.Firings[qam])

	// 4. Payload-level demodulation through the same pipeline shape:
	// each graph-level token batch is one OFDM symbol's worth of data.
	n, l := 64, 8 // payload-sized symbol for the demo
	scheme := dsp.QAM16
	mod := dsp.Modulator{N: n, L: l, S: scheme}
	rng := dsp.NewPRNG(42)
	var sentBits [][]byte

	pg := tpdf.OFDMPayloadGraph()
	behaviors := map[string]tpdf.Behavior{
		"SRC": func(f *tpdf.Firing) error {
			bits := rng.Bits(n * scheme.BitsPerSymbol())
			sentBits = append(sentBits, bits)
			frame, err := mod.Modulate(bits)
			if err != nil {
				return err
			}
			f.Produce("o0", frame)
			return nil
		},
		"RCP": func(f *tpdf.Firing) error {
			frame := f.In["i0"][0].([]complex128)
			sym, err := dsp.RemoveCyclicPrefix(frame, l)
			if err != nil {
				return err
			}
			f.Produce("o0", sym)
			return nil
		},
		"FFT": func(f *tpdf.Firing) error {
			sym := append([]complex128(nil), f.In["i0"][0].([]complex128)...)
			if err := dsp.FFT(sym); err != nil {
				return err
			}
			f.Produce("o0", sym)
			return nil
		},
		"QAM": func(f *tpdf.Firing) error {
			f.Produce("o0", dsp.QAM16Demap(f.In["i0"][0].([]complex128)))
			return nil
		},
	}
	totalErrs := 0
	frames := 0
	behaviors["SNK"] = func(f *tpdf.Firing) error {
		got := f.In["i0"][0].([]byte)
		totalErrs += dsp.BitErrors(sentBits[frames], got)
		frames++
		return nil
	}
	if _, err := tpdf.Execute(pg, behaviors, tpdf.WithIterations(20)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload run: %d OFDM symbols demodulated, %d bit errors (clean channel)\n",
		frames, totalErrs)
}
