// FM radio example (the StreamIt benchmark §V cites): an FM-modulated test
// tone is demodulated and equalized at the payload level — once on the
// sequential runner and once on the concurrent streaming engine with a
// real-time paced source — and the TPDF band-selection variant is compared
// against the CSDF pipeline that must compute every band.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/tpdf"
	"repro/tpdf/dsp"
)

const (
	samples = 4096
	block   = 64
	// acquire models the RF front end delivering one block of samples in
	// real time; the concurrent engine hides the DSP behind it.
	acquire = 200 * time.Microsecond
)

// chainBehaviors wires the payload chain: paced source -> two pass-through
// stages -> band-pass equalizer -> capture sink. Each call returns fresh
// closures (and a fresh FIR: it is stateful) so sequential and concurrent
// runs are identical.
func chainBehaviors(demod []float64, captured *[]float64) (map[string]tpdf.Behavior, error) {
	taps, err := dsp.BandPassTaps(0.01, 0.05, 63)
	if err != nil {
		return nil, err
	}
	band := dsp.NewFIR(taps)
	idx := 0
	passthrough := func(f *tpdf.Firing) error {
		f.Produce("o0", f.In["i0"][0])
		return nil
	}
	return map[string]tpdf.Behavior{
		"SRC": func(f *tpdf.Firing) error {
			time.Sleep(acquire) // the antenna delivers blocks in real time
			f.Produce("o0", demod[idx*block:(idx+1)*block])
			idx++
			return nil
		},
		"RCP": passthrough,
		"FFT": passthrough,
		"QAM": func(f *tpdf.Firing) error { // equalizer band
			f.Produce("o0", band.Filter(f.In["i0"][0].([]float64)))
			return nil
		},
		"SNK": func(f *tpdf.Firing) error {
			*captured = append(*captured, f.In["i0"][0].([]float64)...)
			return nil
		},
	}, nil
}

// inBandPower sums the squared tail of the captured signal (past the FIR
// warm-up).
func inBandPower(captured []float64) float64 {
	var power float64
	for _, v := range captured[len(captured)/2:] {
		power += v * v
	}
	return power
}

func main() {
	// 1. Payload-level chain: tone -> FM modulate -> demodulate -> bandpass.
	msg := make([]float64, samples)
	for i := range msg {
		msg[i] = math.Sin(2 * math.Pi * 0.02 * float64(i)) // normalized 0.02 tone
	}
	rf := dsp.FMModulate(msg, 0.1)
	demod := dsp.FMDemod(rf)
	g := tpdf.OFDMPayloadGraph() // reuse the 5-stage single-rate pipeline shape

	// Sequential runner: every stage fires one at a time.
	var seqOut []float64
	behaviors, err := chainBehaviors(demod, &seqOut)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := tpdf.Execute(g, behaviors, tpdf.WithIterations(samples/block)); err != nil {
		log.Fatal(err)
	}
	seqTime := time.Since(start)

	// Concurrent engine: one goroutine per stage, bounded channels, the
	// DSP overlaps the paced acquisition.
	var concOut []float64
	behaviors, err = chainBehaviors(demod, &concOut)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := tpdf.Stream(g, behaviors, tpdf.WithIterations(samples/block)); err != nil {
		log.Fatal(err)
	}
	concTime := time.Since(start)

	power := inBandPower(seqOut)
	fmt.Printf("demodulated %d samples; in-band output power %.4f (tone recovered: %v)\n",
		len(seqOut), power, power > 1)
	fmt.Printf("concurrent engine: same output: %v\n", math.Abs(inBandPower(concOut)-power) < 1e-9)
	// Throughput: every iteration moves one block token across each of the
	// four pipeline edges, so tokens/sec is what the transport sustains;
	// samples/sec is the audio-rate view of the same number.
	iterations := int64(samples / block)
	tokens := iterations * 4
	tokPerSec := func(d time.Duration) float64 { return float64(tokens) / d.Seconds() }
	fmt.Printf("sequential %.1f ms (%.0f tokens/s, %.0f samples/s), concurrent %.1f ms (%.0f tokens/s, %.0f samples/s): speedup %.2fx\n",
		float64(seqTime.Microseconds())/1000, tokPerSec(seqTime), float64(samples)/seqTime.Seconds(),
		float64(concTime.Microseconds())/1000, tokPerSec(concTime), float64(samples)/concTime.Seconds(),
		float64(seqTime)/float64(concTime))

	// 2. Model-level comparison: TPDF band selection vs CSDF all-bands.
	cres, err := tpdf.Simulate(tpdf.FMRadioBaseline())
	if err != nil {
		log.Fatal(err)
	}
	tg := tpdf.FMRadioGraph()
	decide, err := tpdf.FMRadioSelectBand(tg, 2)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := tpdf.Simulate(tg, tpdf.WithDecisions(decide))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSDF radio: buffer %d tokens, finished t=%d\n", cres.TotalBuffer(), cres.Time)
	fmt.Printf("TPDF radio (1 band): buffer %d tokens, finished t=%d\n", tres.TotalBuffer(), tres.Time)
}
