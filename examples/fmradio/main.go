// FM radio example (the StreamIt benchmark §V cites): an FM-modulated test
// tone is demodulated and equalized at the payload level, and the TPDF
// band-selection variant is compared against the CSDF pipeline that must
// compute every band.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/tpdf"
	"repro/tpdf/dsp"
)

func main() {
	// 1. Payload-level chain: tone -> FM modulate -> demodulate -> bandpass.
	const samples = 4096
	msg := make([]float64, samples)
	for i := range msg {
		msg[i] = math.Sin(2 * math.Pi * 0.02 * float64(i)) // normalized 0.02 tone
	}
	rf := dsp.FMModulate(msg, 0.1)
	demod := dsp.FMDemod(rf)

	taps, err := dsp.BandPassTaps(0.01, 0.05, 63)
	if err != nil {
		log.Fatal(err)
	}
	band := dsp.NewFIR(taps)

	// Drive the samples through the payload graph in blocks of 64.
	const block = 64
	g := tpdf.OFDMPayloadGraph() // reuse the 5-stage single-rate pipeline shape
	idx := 0
	var captured []float64
	behaviors := map[string]tpdf.Behavior{
		"SRC": func(f *tpdf.Firing) error {
			f.Produce("o0", demod[idx*block:(idx+1)*block])
			idx++
			return nil
		},
		"RCP": func(f *tpdf.Firing) error { // pass-through stage
			f.Produce("o0", f.In["i0"][0])
			return nil
		},
		"FFT": func(f *tpdf.Firing) error { // pass-through stage
			f.Produce("o0", f.In["i0"][0])
			return nil
		},
		"QAM": func(f *tpdf.Firing) error { // equalizer band
			f.Produce("o0", band.Filter(f.In["i0"][0].([]float64)))
			return nil
		},
		"SNK": func(f *tpdf.Firing) error {
			captured = append(captured, f.In["i0"][0].([]float64)...)
			return nil
		},
	}
	if _, err := tpdf.Execute(g, behaviors, tpdf.WithIterations(samples/block)); err != nil {
		log.Fatal(err)
	}
	var power float64
	for _, v := range captured[len(captured)/2:] {
		power += v * v
	}
	fmt.Printf("demodulated %d samples; in-band output power %.4f (tone recovered: %v)\n",
		len(captured), power, power > 1)

	// 2. Model-level comparison: TPDF band selection vs CSDF all-bands.
	cres, err := tpdf.Simulate(tpdf.FMRadioBaseline())
	if err != nil {
		log.Fatal(err)
	}
	tg := tpdf.FMRadioGraph()
	decide, err := tpdf.FMRadioSelectBand(tg, 2)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := tpdf.Simulate(tg, tpdf.WithDecisions(decide))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSDF radio: buffer %d tokens, finished t=%d\n", cres.TotalBuffer(), cres.Time)
	fmt.Printf("TPDF radio (1 band): buffer %d tokens, finished t=%d\n", tres.TotalBuffer(), tres.Time)
}
