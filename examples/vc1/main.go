// VC-1 decoder example (§V): the control actor re-decides the prediction
// path on every frame — I-frames route macroblocks through intra
// prediction, P-frames through motion compensation. Decisions are made per
// control-actor firing, demonstrating context-dependent reconfiguration
// across iterations within one simulation.
package main

import (
	"fmt"
	"log"

	"repro/tpdf"
)

func main() {
	g := tpdf.VC1Decoder()

	rep := tpdf.Analyze(g)
	fmt.Print(rep.String())
	if !rep.Bounded {
		log.Fatal("decoder graph is not bounded")
	}

	// A GOP-like frame pattern: I P P P I P P P.
	pattern := []string{"I", "P", "P", "P", "I", "P", "P", "P"}

	// Resolve the port wiring once (any frame type gives the same ports).
	iDecide, err := tpdf.VC1FrameDecide(g, "I")
	if err != nil {
		log.Fatal(err)
	}
	pDecide, err := tpdf.VC1FrameDecide(g, "P")
	if err != nil {
		log.Fatal(err)
	}
	decide := map[string]tpdf.DecideFunc{
		"CON": func(firing int64) map[string]tpdf.ControlToken {
			if pattern[firing%int64(len(pattern))] == "I" {
				return iDecide["CON"](firing)
			}
			return pDecide["CON"](firing)
		},
	}

	res, err := tpdf.Simulate(g,
		tpdf.WithParam("mb", 396), // CIF frame
		tpdf.WithIterations(int64(len(pattern))),
		tpdf.WithDecisions(decide),
		tpdf.WithRecord())
	if err != nil {
		log.Fatal(err)
	}

	intra, _ := g.NodeByName("INTRA")
	mc, _ := g.NodeByName("MC")
	out, _ := g.NodeByName("OUT")
	fmt.Printf("\ndecoded %d frames (pattern %v)\n", res.Firings[out], pattern)
	fmt.Printf("INTRA fired %d times (I-frames), MC fired %d times (P-frames)\n",
		res.Firings[intra], res.Firings[mc])
	fmt.Printf("busy: INTRA %d, MC %d, IDCT %d time units\n",
		res.Busy[intra], res.Busy[mc], busyOf(g, res, "IDCT"))
	fmt.Printf("peak buffer demand: %d tokens across %d channels\n",
		res.TotalBuffer(), len(g.Edges))

	// The per-frame trace shows the alternating topology.
	frame := 0
	for _, ev := range res.Events {
		if ev.Node == "TRAN" && len(ev.Selected) == 1 {
			branch := "MC"
			if in, _ := g.NodeByName("INTRA"); hasEdgeTo(g, in, ev.Selected[0]) {
				branch = "INTRA"
			}
			fmt.Printf("  frame %d (%s): merged from %s at t=%d\n",
				frame, pattern[frame%len(pattern)], branch, ev.End)
			frame++
		}
	}
}

func busyOf(g *tpdf.Graph, res *tpdf.SimResult, name string) int64 {
	id, _ := g.NodeByName(name)
	return res.Busy[id]
}

// hasEdgeTo reports whether src feeds the TRAN input port named port.
func hasEdgeTo(g *tpdf.Graph, src tpdf.NodeID, port string) bool {
	tran, _ := g.NodeByName("TRAN")
	for _, e := range g.Edges {
		if e.Src == src && e.Dst == tran && g.Nodes[tran].Ports[e.DstPort].Name == port {
			return true
		}
	}
	return false
}
