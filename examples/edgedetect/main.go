// Edge detection under a deadline (paper §IV-A, Fig. 6): the four real
// detectors run on a synthetic 1024×1024 image to measure this host's
// execution times, then the TPDF graph — Transaction plus 500 ms Clock —
// selects the best result available at the deadline. A payload-level
// fan-out runs all detectors on real frames through the sequential runner
// and the concurrent streaming engine, measuring the speedup.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/tpdf"
	"repro/tpdf/imaging"
)

// payloadFanOut pushes frames frames through SRC -> {four detectors} ->
// SNK at the payload level, with run as the executor (tpdf.Execute or
// tpdf.Stream), and reports the wall-clock time. The concurrent engine
// runs the four detectors in their own goroutines; the sequential runner
// fires them one at a time.
func payloadFanOut(im *imaging.Image, frames int64,
	run func(*tpdf.Graph, map[string]tpdf.Behavior, ...tpdf.Option) (*tpdf.ExecResult, error)) (time.Duration, error) {

	detectors := imaging.Detectors()
	b := tpdf.NewGraph("edgepayload").Kernel("SRC", 1)
	for _, d := range detectors {
		b = b.Kernel(d.Name, 1)
	}
	b = b.Kernel("SNK", 1)
	for _, d := range detectors {
		b = b.Connect(fmt.Sprintf("SRC[1] -> %s[1]", d.Name)).
			Connect(fmt.Sprintf("%s[1] -> SNK[1]", d.Name))
	}
	g, err := b.Build()
	if err != nil {
		return 0, err
	}

	behaviors := map[string]tpdf.Behavior{
		"SRC": func(f *tpdf.Firing) error {
			for i := range detectors {
				f.Produce(fmt.Sprintf("o%d", i), im)
			}
			return nil
		},
	}
	for _, d := range detectors {
		run := d.Run
		behaviors[d.Name] = func(f *tpdf.Firing) error {
			f.Produce("o0", run(f.In["i0"][0].(*imaging.Image)))
			return nil
		}
	}

	start := time.Now()
	if _, err := run(g, behaviors, tpdf.WithIterations(frames)); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// writePGMFile saves an image under the given path, creating directories.
func writePGMFile(path string, im *imaging.Image) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return imaging.WritePGM(f, im)
}

func main() {
	size := flag.Int("size", 1024, "image side length")
	deadline := flag.Int64("deadline", 500, "clock deadline in ms")
	outDir := flag.String("out", "", "write input and per-detector PGM images to this directory")
	flag.Parse()

	im := imaging.Synthetic(*size, *size, 1)
	fmt.Printf("synthetic scene %dx%d, mean intensity %.1f\n", *size, *size, im.Mean())
	if *outDir != "" {
		if err := writePGMFile(filepath.Join(*outDir, "input.pgm"), im); err != nil {
			log.Fatal(err)
		}
	}

	// Measure the real detectors (the Fig. 6 table on this host).
	measured := map[string]int64{}
	fmt.Println("method   paper-ms  this-host-ms  edge-density")
	for _, d := range imaging.Detectors() {
		start := time.Now()
		out := d.Run(im)
		ms := time.Since(start).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		measured[d.Name] = ms
		fmt.Printf("%-8s %8d  %12d  %.4f\n",
			d.Name, tpdf.PaperDetectorTimes[d.Name], ms, imaging.EdgeDensity(out, 60))
		if *outDir != "" {
			name := filepath.Join(*outDir, strings.ToLower(d.Name)+".pgm")
			if err := writePGMFile(name, out); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *outDir != "" {
		fmt.Printf("wrote PGM images to %s\n", *outDir)
	}

	// Run the deadline selection twice: once with the paper's published
	// times, once with this host's measurements.
	for _, cfg := range []struct {
		label string
		times map[string]int64
	}{
		{"paper times (i3 @ 2.53GHz)", nil},
		{"measured times (this host)", measured},
	} {
		app := tpdf.EdgeDetection(*deadline, cfg.times)
		res, err := tpdf.Simulate(app.Graph,
			tpdf.WithDecisions(app.DeadlineDecide()), tpdf.WithRecord())
		if err != nil {
			log.Fatal(err)
		}
		chosen := "(none finished)"
		for _, ev := range res.Events {
			if ev.Node == "Trans" && len(ev.Selected) == 1 {
				chosen = app.DetectorFor(ev.Selected[0])
			}
		}
		fmt.Printf("deadline %d ms with %s: selected %s\n", *deadline, cfg.label, chosen)
	}

	// Payload-level fan-out: all four detectors on real frames, sequential
	// runner versus concurrent engine (one goroutine per detector).
	const frames = 4
	frame := imaging.Synthetic(256, 256, 1)
	seqTime, err := payloadFanOut(frame, frames, tpdf.Execute)
	if err != nil {
		log.Fatal(err)
	}
	concTime, err := payloadFanOut(frame, frames, tpdf.Stream)
	if err != nil {
		log.Fatal(err)
	}
	// Each frame moves 8 payload tokens (one image into each detector, one
	// result out of each), so tokens/sec reflects what the engine transport
	// plus the detector kernels sustain end to end.
	tokens := float64(frames * 8)
	fmt.Printf("payload fan-out (%d frames, 4 detectors): sequential %.1f ms (%.0f tokens/s), concurrent %.1f ms (%.0f tokens/s), speedup %.2fx\n",
		frames, float64(seqTime.Microseconds())/1000, tokens/seqTime.Seconds(),
		float64(concTime.Microseconds())/1000, tokens/concTime.Seconds(),
		float64(seqTime)/float64(concTime))
}
