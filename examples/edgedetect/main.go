// Edge detection under a deadline (paper §IV-A, Fig. 6): the four real
// detectors run on a synthetic 1024×1024 image to measure this host's
// execution times, then the TPDF graph — Transaction plus 500 ms Clock —
// selects the best result available at the deadline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/tpdf"
	"repro/tpdf/imaging"
)

// writePGMFile saves an image under the given path, creating directories.
func writePGMFile(path string, im *imaging.Image) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return imaging.WritePGM(f, im)
}

func main() {
	size := flag.Int("size", 1024, "image side length")
	deadline := flag.Int64("deadline", 500, "clock deadline in ms")
	outDir := flag.String("out", "", "write input and per-detector PGM images to this directory")
	flag.Parse()

	im := imaging.Synthetic(*size, *size, 1)
	fmt.Printf("synthetic scene %dx%d, mean intensity %.1f\n", *size, *size, im.Mean())
	if *outDir != "" {
		if err := writePGMFile(filepath.Join(*outDir, "input.pgm"), im); err != nil {
			log.Fatal(err)
		}
	}

	// Measure the real detectors (the Fig. 6 table on this host).
	measured := map[string]int64{}
	fmt.Println("method   paper-ms  this-host-ms  edge-density")
	for _, d := range imaging.Detectors() {
		start := time.Now()
		out := d.Run(im)
		ms := time.Since(start).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		measured[d.Name] = ms
		fmt.Printf("%-8s %8d  %12d  %.4f\n",
			d.Name, tpdf.PaperDetectorTimes[d.Name], ms, imaging.EdgeDensity(out, 60))
		if *outDir != "" {
			name := filepath.Join(*outDir, strings.ToLower(d.Name)+".pgm")
			if err := writePGMFile(name, out); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *outDir != "" {
		fmt.Printf("wrote PGM images to %s\n", *outDir)
	}

	// Run the deadline selection twice: once with the paper's published
	// times, once with this host's measurements.
	for _, cfg := range []struct {
		label string
		times map[string]int64
	}{
		{"paper times (i3 @ 2.53GHz)", nil},
		{"measured times (this host)", measured},
	} {
		app := tpdf.EdgeDetection(*deadline, cfg.times)
		res, err := tpdf.Simulate(app.Graph,
			tpdf.WithDecisions(app.DeadlineDecide()), tpdf.WithRecord())
		if err != nil {
			log.Fatal(err)
		}
		chosen := "(none finished)"
		for _, ev := range res.Events {
			if ev.Node == "Trans" && len(ev.Selected) == 1 {
				chosen = app.DetectorFor(ev.Selected[0])
			}
		}
		fmt.Printf("deadline %d ms with %s: selected %s\n", *deadline, cfg.label, chosen)
	}
}
