// Quickstart: build a small TPDF graph with a parametric rate and a control
// actor, run the complete static analysis chain, schedule its canonical
// period, and execute it in the token-accurate simulator — all through the
// public tpdf package.
package main

import (
	"fmt"
	"log"

	"repro/tpdf"
)

func main() {
	// A producer with a parametric rate feeding two consumers through a
	// transaction that picks whichever branch the control actor selects.
	g, err := tpdf.NewGraph("quickstart").
		Param("n", 4, 1, 64).
		Kernel("SRC", 2).
		Kernel("FAST", 1).
		Kernel("SLOW", 9).
		ControlActor("CTL", 0).
		Transaction("TR", 1).
		Kernel("SNK", 0).
		Connect("SRC[n] -> FAST[n]").
		Connect("SRC[n] -> SLOW[n]").
		Connect("SRC[1] -> CTL[1]").
		Connect("FAST[1] -> TR[1] prio=1").
		Connect("SLOW[1] -> TR[1] prio=2").
		Connect("TR[1] -> SNK[1]").
		Connect("CTL[1] => TR").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Static analysis: consistency, rate safety, liveness, boundedness.
	rep := tpdf.Analyze(g)
	fmt.Print(rep.String())
	if !rep.Bounded {
		log.Fatal("graph is not bounded")
	}

	// 2. The graph's textual form (parseable by tpdf-analyze).
	fmt.Println("--- textual form ---")
	fmt.Print(tpdf.Format(g))

	// 3. Canonical period scheduling on a 4-PE machine.
	sch, err := tpdf.Schedule(g, tpdf.WithParam("n", 4), tpdf.WithPlatform(tpdf.SMP(4)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- schedule: %d firings, makespan %d, utilization %.2f ---\n",
		sch.Firings, sch.Makespan, sch.Utilization)

	// 4. Simulate with the control actor picking the high-priority branch.
	ctlPorts, err := tpdf.ControlOutPorts(g, "CTL")
	if err != nil {
		log.Fatal(err)
	}
	decide := map[string]tpdf.DecideFunc{
		"CTL": func(firing int64) map[string]tpdf.ControlToken {
			return map[string]tpdf.ControlToken{
				ctlPorts[0]: {Mode: tpdf.ModeHighestPriority},
			}
		},
	}
	simRes, err := tpdf.Simulate(g, tpdf.WithParam("n", 4), tpdf.WithDecisions(decide))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- simulation: t=%d, total buffer %d tokens ---\n",
		simRes.Time, simRes.TotalBuffer())
	for i, n := range g.Nodes {
		fmt.Printf("  %-5s fired %d times\n", n.Name, simRes.Firings[i])
	}
}
