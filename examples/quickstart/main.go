// Quickstart: build a small TPDF graph with a parametric rate and a control
// actor, run the complete static analysis chain, schedule its canonical
// period, and execute it in the token-accurate simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
)

func main() {
	// A producer with a parametric rate feeding two consumers through a
	// transaction that picks whichever branch the control actor selects.
	g := core.NewGraph("quickstart")
	g.AddParam("n", 4, 1, 64)

	src := g.AddKernel("SRC", 2)
	fast := g.AddKernel("FAST", 1)
	slow := g.AddKernel("SLOW", 9)
	ctl := g.AddControlActor("CTL", 0)
	tr := g.AddTransaction("TR", 1)
	snk := g.AddKernel("SNK", 0)

	must := func(_ core.EdgeID, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(g.Connect(src, "[n]", fast, "[n]", 0))
	must(g.Connect(src, "[n]", slow, "[n]", 0))
	must(g.Connect(src, "[1]", ctl, "[1]", 0))
	must(g.ConnectPriority(fast, "[1]", tr, "[1]", 0, 1))
	must(g.ConnectPriority(slow, "[1]", tr, "[1]", 0, 2))
	must(g.Connect(tr, "[1]", snk, "[1]", 0))
	ctlEdge, err := g.ConnectControl(ctl, "[1]", tr, 0)
	if err != nil {
		log.Fatal(err)
	}
	ctlPort := g.Nodes[ctl].Ports[g.Edges[ctlEdge].SrcPort].Name

	// 1. Static analysis: consistency, rate safety, liveness, boundedness.
	rep := analysis.Analyze(g)
	fmt.Print(rep.String())
	if !rep.Bounded {
		log.Fatal("graph is not bounded")
	}

	// 2. The graph's textual form (parseable by tpdf-analyze).
	fmt.Println("--- textual form ---")
	fmt.Print(graphio.Format(g))

	// 3. Canonical period scheduling on a 4-PE machine.
	cg, low, err := g.Instantiate(symb.Env{"n": 4})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := cg.RepetitionVector()
	if err != nil {
		log.Fatal(err)
	}
	prec, err := cg.BuildPrecedence(sol, true)
	if err != nil {
		log.Fatal(err)
	}
	isCtl := make([]bool, len(cg.Actors))
	isCtl[low.ActorOf[ctl]] = true
	res, err := sched.ListSchedule(cg, prec, sched.Options{
		Platform: platform.Simple(4), ControlPriority: true, IsControl: isCtl,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- schedule: %d firings, makespan %d, utilization %.2f ---\n",
		prec.N(), res.Makespan, res.Utilization())

	// 4. Simulate with the control actor picking the high-priority branch.
	decide := map[string]sim.DecideFunc{
		"CTL": func(firing int64) map[string]sim.ControlToken {
			return map[string]sim.ControlToken{
				ctlPort: {Mode: core.ModeHighestPriority},
			}
		},
	}
	simRes, err := sim.Run(sim.Config{Graph: g, Env: symb.Env{"n": 4}, Decide: decide})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- simulation: t=%d, total buffer %d tokens ---\n",
		simRes.Time, simRes.TotalBuffer())
	for i, n := range g.Nodes {
		fmt.Printf("  %-5s fired %d times\n", n.Name, simRes.Firings[i])
	}
}
