// Speculation and redundancy-with-vote (paper §II-B): the Transaction
// kernel's predefined modes implement fault-tolerance patterns that plain
// dataflow cannot express. This example runs triple modular redundancy at
// the payload level — three replicas compute a checksum, one is fault
// injected, and the voter masks the fault — and then shows speculation in
// the simulator: two implementations race and the transaction takes
// whichever finishes first.
package main

import (
	"fmt"
	"log"

	"repro/tpdf"
)

// tmrGraph: SRC feeds three replicas whose results a voter combines.
func tmrGraph() *tpdf.Graph {
	b := tpdf.NewGraph("tmr").
		Kernel("SRC").
		Kernel("VOTE").
		Kernel("SNK")
	for i := 1; i <= 3; i++ {
		r := fmt.Sprintf("R%d", i)
		b.Kernel(r).
			Connect("SRC[1] -> " + r + "[1]").
			Connect(r + "[1] -> VOTE[1]")
	}
	g, err := b.Connect("VOTE[1] -> SNK[1]").Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func checksum(data []int) int {
	s := 0
	for _, v := range data {
		s = s*31 + v
	}
	return s
}

func main() {
	// --- Redundancy with vote (payload level). ---
	g := tmrGraph()
	data := []int{3, 1, 4, 1, 5, 9, 2, 6}
	faultIn := "R2"
	votes := map[string]int{}
	var voted int
	replica := func(name string) tpdf.Behavior {
		return func(f *tpdf.Firing) error {
			v := checksum(data)
			if name == faultIn {
				v ^= 0xDEAD // injected fault
			}
			f.Produce("o0", v)
			return nil
		}
	}
	behaviors := map[string]tpdf.Behavior{
		"SRC": func(f *tpdf.Firing) error {
			f.Produce("o0", 1)
			f.Produce("o1", 1)
			f.Produce("o2", 1)
			return nil
		},
		"R1": replica("R1"), "R2": replica("R2"), "R3": replica("R3"),
		"VOTE": func(f *tpdf.Firing) error {
			counts := map[int]int{}
			for _, port := range []string{"i0", "i1", "i2"} {
				v := f.In[port][0].(int)
				counts[v]++
			}
			best, bestN := 0, 0
			for v, n := range counts {
				if n > bestN {
					best, bestN = v, n
				}
			}
			votes["majority"] = bestN
			voted = best
			f.Produce("o0", best)
			return nil
		},
	}
	if _, err := tpdf.Execute(g, behaviors); err != nil {
		log.Fatal(err)
	}
	want := checksum(data)
	fmt.Printf("TMR vote: %d replicas agreed; fault in %s masked: %v (result %x, expected %x)\n",
		votes["majority"], faultIn, voted == want, voted, want)

	// --- Speculation (timing level). ---
	// Two implementations race; the transaction takes the first finisher
	// when the clock fires. With a fast heuristic (80) and a slow exact
	// method (700), a 200-unit deadline picks the heuristic.
	app := tpdf.EdgeDetection(200, map[string]int64{
		"QMask": 80, "Sobel": 700, "Prewitt": 800, "Canny": 900,
	})
	res, err := tpdf.Simulate(app.Graph,
		tpdf.WithDecisions(app.DeadlineDecide()), tpdf.WithRecord())
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range res.Events {
		if ev.Node == "Trans" && len(ev.Selected) == 1 {
			fmt.Printf("speculation: at the 200-unit deadline the transaction committed %s\n",
				app.DetectorFor(ev.Selected[0]))
		}
	}
}
