package tpdf

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/symb"
	"repro/tpdf/obs"
)

// Params is a repeatable "name=value" command-line flag collecting
// parameter assignments: register it with flag.Var and hand the result to
// WithParams (it is assignable to map[string]int64).
type Params map[string]int64

// String renders the collected assignments.
func (p Params) String() string { return fmt.Sprint(map[string]int64(p)) }

// Set parses one name=value assignment.
func (p Params) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return err
	}
	p[name] = v
	return nil
}

// config collects every knob the entry points understand. Each entry point
// reads the subset that applies to it and ignores the rest, so one option
// list can configure an Analyze + Schedule + Simulate pipeline.
type config struct {
	ctx             context.Context
	params          map[string]int64
	iterations      int64
	processors      int
	decide          map[string]DecideFunc
	record          bool
	onFire          func(FireEvent)
	maxEvents       int64
	platform        *Platform
	controlPriority bool
	probeEnvs       []map[string]int64
	workers         int
	channelCap      int64
	reconfigure     func(completed int64) map[string]int64
	barrier         func(completed int64) (map[string]int64, bool)
	compiled        *CompiledGraph
	stallTimeout    time.Duration
	parallel        int
	metrics         *obs.Registry
	journal         *obs.Journal
	checkpoint      bool
	checkpointSink  func(*Checkpoint)
	captureAtEntry  bool
	persister       *Persister
	resume          *Checkpoint
	panicRetries    int
	validateRebind  func(map[string]int64) error
	onRebindAbort   func(error)
	snapshotUser    func() any
	restoreUser     func(any)
	faults          *faultinject.Plan
}

// Option configures Analyze, Simulate, Execute, Schedule or GenerateCode.
type Option func(*config)

func buildConfig(opts []Option) config {
	cfg := config{
		iterations:      1,
		controlPriority: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// env renders the accumulated parameter assignments for the internals;
// nil (graph defaults) when none were given.
func (c *config) env() symb.Env {
	if len(c.params) == 0 {
		return nil
	}
	return symb.Env(c.params)
}

// WithContext attaches a cancellation context: long Simulate runs poll it
// between events and return its error once it is done.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithParams merges parameter assignments (name -> value) used to
// instantiate the graph's symbolic rates. Unset parameters keep their
// declared defaults.
func WithParams(params map[string]int64) Option {
	return func(c *config) {
		if c.params == nil {
			c.params = map[string]int64{}
		}
		for k, v := range params {
			c.params[k] = v
		}
	}
}

// WithParam assigns a single parameter.
func WithParam(name string, value int64) Option {
	return WithParams(map[string]int64{name: value})
}

// WithIterations bounds a run to n graph iterations (default 1): every node
// fires at most n × q(node) times.
func WithIterations(n int64) Option {
	return func(c *config) { c.iterations = n }
}

// WithProcessors limits the processing elements available: concurrently
// executing firings in Simulate, PEs used by Schedule. Zero (the default)
// means unlimited in Simulate and every platform PE in Schedule.
func WithProcessors(p int) Option {
	return func(c *config) { c.processors = p }
}

// WithDecisions supplies mode decisions per control-actor name; control
// actors without one emit wait-all tokens.
func WithDecisions(decide map[string]DecideFunc) Option {
	return func(c *config) { c.decide = decide }
}

// WithTrace streams every completed firing to fn during Simulate.
func WithTrace(fn func(FireEvent)) Option {
	return func(c *config) { c.onFire = fn }
}

// WithRecord stores the full firing trace in SimResult.Events.
func WithRecord() Option {
	return func(c *config) { c.record = true }
}

// WithMaxEvents guards Simulate against runaway graphs (default 50M
// events).
func WithMaxEvents(n int64) Option {
	return func(c *config) { c.maxEvents = n }
}

// WithPlatform selects the many-core target for Schedule (default SMP with
// the WithProcessors count, or 8 PEs).
func WithPlatform(p *Platform) Option {
	return func(c *config) { c.platform = p }
}

// WithoutControlPriority disables the §III-D rule that control actors win
// PEs over kernels in Schedule.
func WithoutControlPriority() Option {
	return func(c *config) { c.controlPriority = false }
}

// WithWorkers bounds how many Stream behaviors execute concurrently; zero
// (the default) runs one in-flight behavior per actor, i.e. full pipeline
// parallelism.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithChannelCapacity overrides the per-edge channel capacity Stream uses
// (in tokens, clamped up to each edge's initial token count and its
// largest per-firing rate — the ring transport moves whole firing batches,
// so a batch must always fit). The default, zero, sizes every channel from
// the analysis-derived buffer bounds — the per-edge high-water marks of
// the demand-driven schedule — which are guaranteed deadlock-free; smaller
// overrides trade throughput for memory and are guarded by Stream's
// deadlock watchdog.
func WithChannelCapacity(n int64) Option {
	return func(c *config) { c.channelCap = n }
}

// WithReconfigure installs a Stream reconfiguration hook, the runtime half
// of the paper's transaction semantics: after every completed graph
// iteration the hook receives the number of iterations done so far and may
// return new parameter values for the remaining ones (nil keeps the current
// environment). Stream quiesces the pipeline at the boundary before
// applying the change, so no firing ever observes a mix of old and new
// parameter values.
func WithReconfigure(fn func(completed int64) map[string]int64) Option {
	return func(c *config) { c.reconfigure = fn }
}

// WithStallTimeout tunes Stream's deadlock watchdog window (default
// 500ms): when no firing completes and no behavior runs for two
// consecutive windows, the run fails with a diagnostic instead of hanging.
// Lower it to fail fast when probing undersized WithChannelCapacity
// settings; raise it when behaviors legitimately pause longer than a
// second (a slow sensor, a network hop under retry) so the watchdog does
// not misread the pause as a deadlock. Zero or negative keeps the default.
func WithStallTimeout(d time.Duration) Option {
	return func(c *config) { c.stallTimeout = d }
}

// WithMetrics attaches an observability registry to the run. Stream
// harvests per-actor counters (firings, tokens in/out, busy and blocked
// time, park/spin/wake events) and per-edge ring gauges (occupancy,
// high-water, grow events) into it at every transaction barrier — the
// firing path itself updates only private cache-line-padded counters with
// plain stores and stays 0 allocs/op — and Simulate publishes its event
// counters after the run. Read a consistent copy at any time with
// Registry.EngineSnapshot; it is at most one transaction old. Use one
// registry per run (tpdf/serve keeps one per session) so series never mix.
func WithMetrics(r *obs.Registry) Option {
	return func(c *config) { c.metrics = r }
}

// WithTraceJournal attaches a bounded transaction-trace journal: Stream
// records run start/end, every barrier span, rebinds with their duration
// and parameter digest, drain verdicts and watchdog near-misses. The
// journal keeps the newest Cap events (older ones are overwritten) and
// recording never allocates, so it is safe to leave attached to a
// long-running session. Export with Journal.WriteChromeTrace
// (chrome://tracing) or Journal.Summary (aligned table).
func WithTraceJournal(j *obs.Journal) Option {
	return func(c *config) { c.journal = j }
}

// WithProbeEnvs adds parameter valuations at which Analyze probes the
// concrete checks (liveness), beyond the defaults and declared range
// corners.
func WithProbeEnvs(envs ...map[string]int64) Option {
	return func(c *config) { c.probeEnvs = append(c.probeEnvs, envs...) }
}

// WithParallelism bounds the worker pool the analysis fabric may use:
// Sweep shards its parameter grid, Analyze its liveness probes,
// MinimalBuffers its feasibility probes, and the experiment harness both
// fans out across experiments and shards within each sweep. The default
// (and any value below 2) runs everything sequentially on the calling
// goroutine. Results are deterministic — byte-identical to a sequential
// run — whatever the value: every parallel driver writes results by index
// and joins them in sequential order.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallel = n }
}
