package tpdf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// experimentTable maps the experiment names tpdf-bench accepts to their
// artifact generators. quick selects reduced image sizes and sweeps.
var experimentTable = map[string]func(quick bool) (string, error){
	"f1": ignoreQuick(experiments.F1),
	"f2": ignoreQuick(experiments.F2),
	"f3": ignoreQuick(experiments.F3),
	"f4": ignoreQuick(experiments.F4),
	"f5": ignoreQuick(experiments.F5),
	"t6": func(quick bool) (string, error) {
		size := 1024
		if quick {
			size = 256
		}
		return experiments.F6Table(size, true)
	},
	"f6": ignoreQuick(experiments.F6Deadline),
	"f7": ignoreQuick(experiments.F7),
	"f8": func(quick bool) (string, error) {
		betas := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		if quick {
			betas = []int64{10, 30, 50, 100}
		}
		return experiments.F8(betas)
	},
	"a1": ignoreQuick(experiments.ScheduleAblation),
	"a2": ignoreQuick(experiments.PlatformSweep),
	"a3": ignoreQuick(experiments.FMRadioComparison),
	"a4": ignoreQuick(experiments.ADFPruning),
	"a5": ignoreQuick(experiments.AVCQualityThreshold),
	"a6": ignoreQuick(experiments.ThroughputValidation),
	"a7": ignoreQuick(experiments.PipelinedScheduling),
	"a8": ignoreQuick(experiments.CapacityMinimization),
}

func ignoreQuick(f func() (string, error)) func(bool) (string, error) {
	return func(bool) (string, error) { return f() }
}

// ExperimentNames returns the sorted names of every paper artifact the
// experiment harness can regenerate (figures f1..f8, table t6, ablations
// a1..a8).
func ExperimentNames() []string {
	names := make([]string, 0, len(experimentTable))
	for n := range experimentTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunExperiment regenerates one named table or figure and returns its
// rendering. quick trades fidelity for speed (smaller image, shorter
// sweeps).
func RunExperiment(name string, quick bool) (string, error) {
	f, ok := experimentTable[name]
	if !ok {
		return "", fmt.Errorf("tpdf: unknown experiment %q (try %s)", name, strings.Join(ExperimentNames(), ", "))
	}
	return f(quick)
}

// RunAllExperiments regenerates every paper artifact in order; partial
// output is returned even on error.
func RunAllExperiments(quick bool) (string, error) {
	return experiments.All(quick)
}
