package tpdf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/imaging"
)

// experimentTable maps the experiment names tpdf-bench accepts to their
// artifact generators. quick selects reduced image sizes and sweeps;
// parallel is the worker budget for the experiment's internal sweeps.
var experimentTable = map[string]func(quick bool, parallel int) (string, error){
	"f1": ignoreOpts(experiments.F1),
	"f2": ignoreOpts(experiments.F2),
	"f3": ignoreOpts(experiments.F3),
	"f4": ignoreOpts(experiments.F4),
	"f5": ignoreOpts(experiments.F5),
	"t6": func(quick bool, parallel int) (string, error) {
		size := 1024
		if quick {
			size = 256
		}
		return experiments.F6Table(size, true)
	},
	"f6": ignoreOpts(experiments.F6Deadline),
	"f7": ignoreOpts(experiments.F7),
	"f8": func(quick bool, parallel int) (string, error) {
		betas := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		if quick {
			betas = []int64{10, 30, 50, 100}
		}
		return experiments.F8Parallel(betas, parallel)
	},
	"a1": func(_ bool, p int) (string, error) { return experiments.ScheduleAblationParallel(p) },
	"a2": func(_ bool, p int) (string, error) { return experiments.PlatformSweepParallel(p) },
	"a3": func(_ bool, p int) (string, error) { return experiments.FMRadioComparisonParallel(p) },
	"a4": ignoreOpts(experiments.ADFPruning),
	"a5": func(_ bool, p int) (string, error) { return experiments.AVCQualityThresholdParallel(p) },
	"a6": func(_ bool, p int) (string, error) { return experiments.ThroughputValidationParallel(p) },
	"a7": func(_ bool, p int) (string, error) { return experiments.PipelinedSchedulingParallel(p) },
	"a8": func(_ bool, p int) (string, error) { return experiments.CapacityMinimizationParallel(p) },
}

func ignoreOpts(f func() (string, error)) func(bool, int) (string, error) {
	return func(bool, int) (string, error) { return f() }
}

// ExperimentNames returns the sorted names of every paper artifact the
// experiment harness can regenerate (figures f1..f8, table t6, ablations
// a1..a8).
func ExperimentNames() []string {
	names := make([]string, 0, len(experimentTable))
	for n := range experimentTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunExperiment regenerates one named table or figure and returns its
// rendering. quick trades fidelity for speed (smaller image, shorter
// sweeps). WithParallelism shards the experiment's internal parameter
// sweeps across a bounded worker pool; the rendering is byte-identical to
// a sequential run (modulo measured wall-clock times in t6).
func RunExperiment(name string, quick bool, opts ...Option) (string, error) {
	f, ok := experimentTable[name]
	if !ok {
		return "", fmt.Errorf("tpdf: unknown experiment %q (try %s)", name, strings.Join(ExperimentNames(), ", "))
	}
	cfg := buildConfig(opts)
	imaging.SetParallelism(cfg.parallel)
	return f(quick, cfg.parallel)
}

// RunAllExperiments regenerates every paper artifact in order; partial
// output is returned even on error. WithParallelism fans the experiments
// out across a worker pool and additionally shards each experiment's
// parameter sweep; outputs are joined in paper order.
func RunAllExperiments(quick bool, opts ...Option) (string, error) {
	cfg := buildConfig(opts)
	return experiments.AllOpts(experiments.Options{Quick: quick, Measure: true, Parallel: cfg.parallel})
}
