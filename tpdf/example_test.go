package tpdf_test

import (
	"fmt"
	"log"

	"repro/tpdf"
)

// Example builds a parametric two-stage pipeline with the fluent builder,
// proves it bounded with the consolidated analysis, and executes one
// iteration in the token-accurate simulator.
func Example() {
	g, err := tpdf.NewGraph("demo").
		Param("p", 3, 1, 16).
		Kernel("SRC", 1).
		Kernel("WORK", 2).
		Kernel("SNK", 1).
		Connect("SRC[p] -> WORK[1]").
		Connect("WORK[1] -> SNK[1]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	rep := tpdf.Analyze(g)
	fmt.Printf("bounded: %v, q = %s\n", rep.Bounded, rep.RepetitionVector)

	res, err := tpdf.Simulate(g, tpdf.WithParam("p", 3))
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range g.Nodes {
		fmt.Printf("%s fired %d times\n", n.Name, res.Firings[i])
	}
	// Output:
	// bounded: true, q = [1, p, p]
	// SRC fired 1 times
	// WORK fired 3 times
	// SNK fired 3 times
}
