package tpdf_test

import (
	"fmt"
	"log"
	"os"

	"repro/tpdf"
	"repro/tpdf/obs"
)

// Example builds a parametric two-stage pipeline with the fluent builder,
// proves it bounded with the consolidated analysis, and executes one
// iteration in the token-accurate simulator.
func Example() {
	g, err := tpdf.NewGraph("demo").
		Param("p", 3, 1, 16).
		Kernel("SRC", 1).
		Kernel("WORK", 2).
		Kernel("SNK", 1).
		Connect("SRC[p] -> WORK[1]").
		Connect("WORK[1] -> SNK[1]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	rep := tpdf.Analyze(g)
	fmt.Printf("bounded: %v, q = %s\n", rep.Bounded, rep.RepetitionVector)

	res, err := tpdf.Simulate(g, tpdf.WithParam("p", 3))
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range g.Nodes {
		fmt.Printf("%s fired %d times\n", n.Name, res.Firings[i])
	}
	// Output:
	// bounded: true, q = [1, p, p]
	// SRC fired 1 times
	// WORK fired 3 times
	// SNK fired 3 times
}

// ExampleStream runs a payload pipeline on the concurrent engine: every
// stage executes in its own goroutine behind bounded channels, and the
// reconfiguration hook doubles the block size p at each transaction
// boundary — the pipeline quiesces first, so no firing ever sees a mix of
// old and new rates.
func ExampleStream() {
	g, err := tpdf.NewGraph("stream").
		Param("p", 2, 1, 8).
		Kernel("SRC", 1).
		Kernel("FWD", 1).
		Kernel("SNK", 1).
		Connect("SRC[p] -> FWD[p]").
		Connect("FWD[p] -> SNK[p]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	behaviors := map[string]tpdf.Behavior{
		"FWD": func(f *tpdf.Firing) error {
			f.Produce("o0", f.In["i0"]...) // forward the whole block
			return nil
		},
		"SNK": func(f *tpdf.Firing) error {
			total += len(f.In["i0"])
			return nil
		},
	}
	res, err := tpdf.Stream(g, behaviors,
		tpdf.WithIterations(3),
		tpdf.WithReconfigure(func(completed int64) map[string]int64 {
			return map[string]int64{"p": 2 << completed} // 2, 4, 8
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fired: SRC %d, FWD %d, SNK %d\n",
		res.Firings["SRC"], res.Firings["FWD"], res.Firings["SNK"])
	fmt.Printf("tokens delivered: %d\n", total)
	// Output:
	// fired: SRC 3, FWD 3, SNK 3
	// tokens delivered: 14
}

// ExampleStream_metrics attaches the observability surface to a streaming
// run: a Registry receives per-actor and per-edge counters harvested at
// every transaction barrier (never on the firing path, which stays
// allocation-free), and a bounded Journal records barrier, rebind and
// drain events for export as a Chrome trace or a table. Both are safe to
// read concurrently while the run is live; here they are read after it.
func ExampleStream_metrics() {
	g, err := tpdf.NewGraph("observed").
		Param("p", 2, 1, 8).
		Kernel("SRC", 1).
		Kernel("SNK", 1).
		Connect("SRC[p] -> SNK[p]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.NewRegistry()
	journal := obs.NewJournal(64)
	_, err = tpdf.Stream(g, nil,
		tpdf.WithIterations(4),
		tpdf.WithMetrics(reg),
		tpdf.WithTraceJournal(journal),
		tpdf.WithReconfigure(func(completed int64) map[string]int64 {
			return map[string]int64{"p": 2 + completed} // 2, 3, 4, 5
		}))
	if err != nil {
		log.Fatal(err)
	}

	snap := reg.EngineSnapshot()
	fmt.Printf("completed %d iterations, %d rebinds\n", snap.Completed, snap.Rebinds)
	for _, a := range snap.Actors {
		fmt.Printf("%s: %d firings, %d in, %d out\n",
			a.Name, a.Firings, a.TokensIn, a.TokensOut)
	}
	rebinds := 0
	for _, ev := range journal.Events() {
		if ev.Kind == obs.EvRebind {
			rebinds++
		}
	}
	fmt.Printf("journal: %d events, %d rebind records\n", journal.Len(), rebinds)
	// Output:
	// completed 4 iterations, 3 rebinds
	// SRC: 4 firings, 0 in, 14 out
	// SNK: 4 firings, 14 in, 0 out
	// journal: 9 events, 3 rebind records
}

// ExampleStream_reconfigure changes a parameter mid-stream: the hook runs
// at every transaction boundary once the pipeline is quiescent, and the
// engine rebinds the compiled graph in place — rate tables, repetition
// vector and ring capacities — so the sink observes the old block size up
// to the boundary and the new one after it, never a mixture. The hook
// fires between iterations 2 and 3, switching p from 2 to 5.
func ExampleStream_reconfigure() {
	g, err := tpdf.NewGraph("midstream").
		Param("p", 2, 1, 8).
		Kernel("SRC", 1).
		Kernel("SNK", 1).
		Connect("SRC[p] -> SNK[p]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	behaviors := map[string]tpdf.Behavior{
		"SNK": func(f *tpdf.Firing) error {
			fmt.Printf("iteration %d consumed a block of %d\n", f.K+1, len(f.In["i0"]))
			return nil
		},
	}
	_, err = tpdf.Stream(g, behaviors,
		tpdf.WithIterations(4),
		tpdf.WithReconfigure(func(completed int64) map[string]int64 {
			if completed == 2 {
				return map[string]int64{"p": 5}
			}
			return nil // keep the current environment
		}))
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// iteration 1 consumed a block of 2
	// iteration 2 consumed a block of 2
	// iteration 3 consumed a block of 5
	// iteration 4 consumed a block of 5
}

// ExampleStream_checkpoint splits one logical run across two engines: the
// first leg keeps the checkpoint captured at its final quiescent barrier
// (ring contents, firing counters, parameter valuation — a consistent cut
// of the dataflow), and a fresh engine resumes from it. WithIterations is
// the total target, so the resumed leg performs only the remaining
// iterations, and the combined output is identical to an uninterrupted
// six-iteration run.
func ExampleStream_checkpoint() {
	g, err := tpdf.NewGraph("resumable").
		Param("p", 2, 1, 8).
		Kernel("SRC", 1).
		Kernel("SNK", 1).
		Connect("SRC[p] -> SNK[p]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	behaviors := map[string]tpdf.Behavior{
		"SNK": func(f *tpdf.Firing) error {
			total += len(f.In["i0"])
			return nil
		},
	}

	var saved *tpdf.Checkpoint
	res, err := tpdf.Stream(g, behaviors,
		tpdf.WithIterations(3),
		// The sink runs at every barrier; the arena behind ck is reused,
		// so keep a Clone (or CopyInto a held arena) to outlive the call.
		tpdf.WithCheckpoints(func(ck *tpdf.Checkpoint) { saved = ck.Clone() }))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first leg: SNK fired %d times, %d tokens, checkpoint at iteration %d\n",
		res.Firings["SNK"], total, saved.Completed)

	res, err = tpdf.Stream(g, behaviors,
		tpdf.WithIterations(6), // total target, not "6 more"
		tpdf.WithResume(saved))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed leg: SNK fired %d times in total, %d tokens overall\n",
		res.Firings["SNK"], total)
	// Output:
	// first leg: SNK fired 3 times, 6 tokens, checkpoint at iteration 3
	// resumed leg: SNK fired 6 times in total, 12 tokens overall
}

// ExampleStream_durable survives a process crash: the first leg streams
// its barrier checkpoints to an on-disk snapshot store (entry cuts, copied
// into a double buffer at the barrier and fsynced by a background writer),
// then "dies". A fresh process — sharing nothing but the data directory —
// loads the newest valid snapshot, re-parses the recorded graph text, and
// resumes; the combined output is identical to an uninterrupted run. The
// token count travels in the checkpoint via WithUserState, so it is exact
// across the crash too.
func ExampleStream_durable() {
	dir, err := os.MkdirTemp("", "tpdf-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	build := func() (*tpdf.Graph, error) {
		return tpdf.NewGraph("durable").
			Param("p", 2, 1, 8).
			Kernel("SRC", 1).
			Kernel("SNK", 1).
			Connect("SRC[p] -> SNK[p]").
			Build()
	}
	g, err := build()
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	behaviors := map[string]tpdf.Behavior{
		"SNK": func(f *tpdf.Firing) error {
			total += len(f.In["i0"])
			return nil
		},
	}
	state := tpdf.WithUserState(
		func() any { return total },
		func(u any) { total = u.(int) })

	// First leg: run three iterations with durable persistence armed, then
	// crash (here: just stop — Close flushes the newest checkpoint, as a
	// real crash would rely on the per-pump flush).
	store, err := tpdf.OpenSnapshotStore(dir, 3)
	if err != nil {
		log.Fatal(err)
	}
	p, err := store.Persister("job-1", g, tpdf.PersistOptions{Tenant: "acme"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tpdf.Stream(g, behaviors, tpdf.WithIterations(3),
		tpdf.WithDurableCheckpoints(p), state); err != nil {
		log.Fatal(err)
	}
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}

	// --- process boundary: a new process knows only the data directory ---
	store2, err := tpdf.OpenSnapshotStore(dir, 3)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := store2.Load("job-1")
	if err != nil {
		log.Fatal(err)
	}
	g2, err := snap.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %s/%s at iteration %d\n", snap.Tenant, snap.ID, snap.Checkpoint.Completed)

	res, err := tpdf.Stream(g2, behaviors,
		tpdf.WithIterations(6), // total target, not "6 more"
		tpdf.WithResume(snap.Checkpoint), state)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed leg: SNK fired %d times in total, %d tokens overall\n",
		res.Firings["SNK"], total)
	// Output:
	// recovered acme/job-1 at iteration 3
	// resumed leg: SNK fired 6 times in total, 12 tokens overall
}

// ExampleStream_panicRecovery arms in-run recovery: a behavior panic is
// caught at the epoch barrier and turned into a transaction abort — the
// engine rolls every ring, counter and parameter back to the checkpoint
// of the previous quiescent barrier and retries the epoch. Behavior state
// living outside the engine must travel with the checkpoint, so the token
// count is registered with WithUserState: it is snapshotted at every
// capture and restored on rollback, keeping it exact even though the
// poisoned iteration executes twice.
func ExampleStream_panicRecovery() {
	g, err := tpdf.NewGraph("recoverable").
		Param("p", 2, 1, 8).
		Kernel("SRC", 1).
		Kernel("SNK", 1).
		Connect("SRC[p] -> SNK[p]").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	poisoned := true
	behaviors := map[string]tpdf.Behavior{
		"SNK": func(f *tpdf.Firing) error {
			if poisoned && f.K == 2 {
				poisoned = false // transient fault: the retry succeeds
				panic("corrupt block")
			}
			total += len(f.In["i0"])
			return nil
		},
	}

	res, err := tpdf.Stream(g, behaviors,
		tpdf.WithIterations(4),
		// A boundary hook makes every iteration its own transaction, so
		// the rollback repeats only the poisoned iteration.
		tpdf.WithReconfigure(func(int64) map[string]int64 { return nil }),
		tpdf.WithPanicRecovery(1),
		tpdf.WithUserState(
			func() any { return total },
			func(u any) { total = u.(int) }))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SNK fired %d times, %d tokens — the aborted epoch left no trace\n",
		res.Firings["SNK"], total)
	// Output:
	// SNK fired 4 times, 8 tokens — the aborted epoch left no trace
}
